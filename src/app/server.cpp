#include "app/server.h"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <map>
#include <stdexcept>

#include "obs/export.h"

namespace papm::app {

namespace {

// In-place request-head parse over the first segment's payload: no copy,
// no allocation beyond the key string. Returns nullopt if the head is not
// complete yet.
struct Head {
  http::Method method;
  std::string_view key;  // target without the leading "/kv/"
  std::size_t head_len;
  std::size_t body_len;
};

std::optional<Head> parse_head_inplace(std::string_view payload) {
  const std::size_t end = payload.find("\r\n\r\n");
  if (end == std::string_view::npos) return std::nullopt;
  Head h{};
  h.head_len = end + 4;
  h.body_len = 0;

  const std::size_t line_end = payload.find("\r\n");
  const std::size_t sp1 = payload.find(' ');
  if (sp1 == std::string_view::npos || sp1 > line_end) return std::nullopt;
  const std::size_t sp2 = payload.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp2 > line_end) return std::nullopt;
  const std::string_view m = payload.substr(0, sp1);
  if (m == "PUT" || m == "POST") {
    h.method = http::Method::put;
  } else if (m == "GET") {
    h.method = http::Method::get;
  } else if (m == "DELETE") {
    h.method = http::Method::del;
  } else {
    h.method = http::Method::other;
  }
  std::string_view target = payload.substr(sp1 + 1, sp2 - sp1 - 1);
  if (target.starts_with("/kv/")) target.remove_prefix(4);
  h.key = target;

  // Content-Length, if present.
  std::size_t pos = line_end + 2;
  while (pos < end) {
    std::size_t eol = payload.find("\r\n", pos);
    if (eol == std::string_view::npos || eol > end) eol = end;
    const std::string_view line = payload.substr(pos, eol - pos);
    constexpr std::string_view kCl = "Content-Length:";
    if (line.size() > kCl.size() &&
        (line.starts_with(kCl) || line.starts_with("content-length:"))) {
      std::string_view v = line.substr(kCl.size());
      while (!v.empty() && v.front() == ' ') v.remove_prefix(1);
      std::size_t n = 0;
      std::from_chars(v.data(), v.data() + v.size(), n);
      h.body_len = n;
    }
    pos = eol + 2;
  }
  return h;
}

std::string shard_name(std::string_view base, u32 shard) {
  return shard == 0 ? std::string(base)
                    : std::string(base) + ".s" + std::to_string(shard);
}

}  // namespace

KvServer::KvServer(Host& host, const ServerConfig& cfg)
    : host_(host), cfg_(cfg) {
  shards_.resize(host_.datapaths());
  for (u32 i = 0; i < host_.datapaths(); i++) {
    Shard& sh = shards_[i];
    switch (cfg.backend) {
      case Backend::discard:
        break;
      case Backend::raw_persist: {
        auto r = host_.pm_pool(i).alloc(kRawRegion);
        if (!r.ok()) throw std::runtime_error("KvServer: no PM for raw region");
        sh.raw_region = r.value();
        break;
      }
      case Backend::lsm: {
        // Carve a dedicated region for the store's own PM allocator, which
        // charges general-allocator prices (Table 1 alloc+insert row) —
        // unlike the packet pool's freelist prices. On a sharded host the
        // span adapts to the shard's slice of the device (never more than
        // half, so packet buffers keep room).
        constexpr u64 kStoreSpan = 192u << 20;
        const u64 carve =
            std::min<u64>(kStoreSpan, host_.pm_pool(i).capacity() / 2) /
            kCacheLine * kCacheLine;
        auto span = host_.pm_pool(i).alloc(carve);
        if (!span.ok()) throw std::runtime_error("KvServer: no PM for store");
        sh.store_pool = pm::PmPool::create(
            host_.pm_device(), shard_name("storepool", i),
            align_up(span.value(), kCacheLine), carve - kCacheLine);
        storage::LsmOptions o;
        o.knobs = cfg.knobs;
        o.use_wal = cfg.lsm_wal;
        sh.lsm = storage::LsmStore::create(host_.pm_device(), *sh.store_pool,
                                           shard_name("db", i), o);
        break;
      }
      case Backend::pktstore:
        sh.pktstore = core::PktStore::create(host_.pool(i),
                                             shard_name("store", i),
                                             cfg.pkt_opts);
        break;
    }
    // Group/epoch commit rides the stores' batcher hooks. The policy
    // travels in StoreKnobs for both backends (pkt_opts carries no
    // persistence policy of its own).
    if (pm::kGroupCommitCompiled && host_.pm_backed() &&
        (cfg.backend == Backend::lsm || cfg.backend == Backend::pktstore)) {
      sh.batcher.emplace(host_.pm_device(), cfg.knobs.group_commit);
      sh.batcher->register_pool(host_.pm_pool(i));
      if (sh.store_pool.has_value()) sh.batcher->register_pool(*sh.store_pool);
      if (sh.lsm.has_value()) sh.lsm->set_batcher(&*sh.batcher);
      if (sh.pktstore.has_value()) sh.pktstore->set_batcher(&*sh.batcher);
    }
    obs::MetricRegistry& reg = host_.metrics(i);
    sh.m_requests = &reg.counter("server.requests");
    sh.m_errors = &reg.counter("server.errors");
    sh.m_parsed = &reg.counter("http.requests_parsed");
    sh.m_req_ns = &reg.histogram("server.req_ns");
    if (sh.lsm.has_value()) sh.lsm->set_metrics(&reg);
    if (sh.pktstore.has_value()) sh.pktstore->set_metrics(&reg);
    // Telemetry plane (all runtime opt-in, compiled out with PAPM_OBS=OFF
    // so the flags are accepted but cost nothing — the kill-switch build
    // stays bit-identical even with the plane armed).
    if constexpr (obs::kEnabled) {
      if (cfg.trace_capacity != 0) {
        host_.trace(i).set_capacity(cfg.trace_capacity);
        host_.trace(i).set_dropped_counter(&reg.counter("obs.trace_dropped"));
      }
      if (cfg.admin) sh.m_admin = &reg.counter("admin.requests");
      if (cfg.flight_recorder && host_.pm_backed()) {
        auto fr = obs::FlightRecorder::create(
            host_.pm_device(), host_.pm_pool(i), static_cast<u16>(i),
            cfg.flightrec_capacity);
        if (!fr.ok()) {
          throw std::runtime_error("KvServer: no PM for flight recorder");
        }
        sh.flightrec.emplace(std::move(fr.value()));
        if (sh.batcher.has_value()) sh.flightrec->set_batcher(&*sh.batcher);
        sh.flightrec->set_metrics(&reg);
      }
    }
    const Status st = host_.stack(i).listen(
        cfg.port, [this, i](net::TcpConn& c) { on_accept(c, i); });
    if (!st.ok()) throw std::runtime_error("KvServer: listen failed");
  }
}

void KvServer::on_accept(net::TcpConn& conn, u32 shard) {
  conns_[&conn].shard = shard;
  conn.on_readable = [this](net::TcpConn& c) { on_readable(c); };
  conn.on_closed = [this](net::TcpConn& c) {
    auto it = conns_.find(&c);
    if (it != conns_.end()) {
      for (auto* pb : it->second.pkts) net::PktBufPool::release(pb);
      conns_.erase(it);
    }
  };
}

bool KvServer::try_parse_head(ConnState& st) {
  if (st.pkts.empty()) return false;
  // Fast path: head within the first segment (always true for the
  // paper's request sizes; requests are not pipelined).
  net::PktBuf* first = st.pkts[0];
  const auto payload = first->owner->payload(*first);
  const std::string_view view(reinterpret_cast<const char*>(payload.data()),
                              payload.size());
  auto& env = host_.env();
  const SimTime t0 = env.now();
  env.clock().advance(env.cost.scaled(env.cost.server_http_parse_ns));
  const auto head = parse_head_inplace(view);
  if (!head.has_value()) return false;
  st.parse_ts = t0;
  st.parse_dur = env.now() - t0;
  obs::inc(shards_[st.shard].m_parsed);
  st.head_parsed = true;
  st.method = head->method;
  st.key = std::string(head->key);
  st.head_len = head->head_len;
  st.body_len = head->body_len;
  return true;
}

void KvServer::arm_epoch_watchdog(u32 shard) {
  Shard& sh = shards_[shard];
  if (!sh.batcher.has_value() || sh.watchdog_armed ||
      !sh.batcher->epoch_open()) {
    return;
  }
  sh.watchdog_armed = true;
  auto& env = host_.env();
  const u64 serial = sh.batcher->epoch_serial();
  const u64 deadline =
      sh.batcher->epoch_opened_ns() + sh.batcher->policy().max_deferral_ns;
  const u64 now = static_cast<u64>(env.now());
  env.engine.schedule_in(static_cast<SimTime>(deadline > now ? deadline - now : 1),
                         [this, shard, serial] {
                           epoch_watchdog_fire(shard, serial);
                         });
}

void KvServer::epoch_watchdog_fire(u32 shard, u64 serial) {
  Shard& sh = shards_[shard];
  sh.watchdog_armed = false;
  if (!sh.batcher.has_value() || !sh.batcher->epoch_open()) return;
  if (sh.batcher->epoch_serial() != serial) {
    // A newer epoch opened since this watchdog was armed; give it its
    // own deadline instead of cutting it short.
    arm_epoch_watchdog(shard);
    return;
  }
  // Deadline passed with the epoch still open (the request stream dried
  // up): retire it as pinned CPU work — the fences and the deferred acks
  // queue behind this shard's core like any request would.
  host_.cpu().run_on(shard, [&sh] { sh.batcher->close(); });
}

void KvServer::arm_epoch_drain_check(u32 shard) {
  Shard& sh = shards_[shard];
  if (!sh.batcher.has_value() || !sh.batcher->epoch_open()) return;
  auto& env = host_.env();
  const u64 serial = sh.batcher->epoch_serial();
  const u32 ops = sh.batcher->ops_in_epoch();
  env.engine.schedule_in(
      static_cast<SimTime>(sh.batcher->policy().idle_close_ns),
      [this, shard, serial, ops] {
        Shard& sh = shards_[shard];
        if (!sh.batcher.has_value() || !sh.batcher->epoch_open()) return;
        if (sh.batcher->epoch_serial() != serial ||
            sh.batcher->ops_in_epoch() != ops) {
          return;  // a newer op joined; its own drain check follows
        }
        host_.cpu().run_on(shard, [&sh] { sh.batcher->close(); });
      });
}

Status KvServer::normalize_pkts(ConnState& st) {
  net::PktBufPool& pool = host_.pool(st.shard);
  auto& env = host_.env();
  for (net::PktBuf*& pb : st.pkts) {
    if (pb->owner == &pool) continue;
    net::PktBuf* np = pool.alloc(pb->len);
    if (np == nullptr) return Errc::out_of_space;
    env.clock().advance(env.cost.copy_cost(pb->len));
    u8* dst = pool.writable(*np, pb->len).data();
    if (pb->sliced()) {
      // Materialize contiguously in this shard's pool: header bytes from
      // the header block, payload from the slice. After a TCP trim,
      // payload_off can exceed the header block's capacity — headers are
      // never semantically read after parse, so copy what exists and
      // leave the gap zero-filled.
      const u32 hdr = std::min<u32>(pb->cap, pb->payload_off);
      std::memcpy(dst, pb->owner->arena().data(pb->data_h, hdr), hdr);
      const auto pl = pb->owner->payload(*pb);
      std::memcpy(dst + pb->payload_off, pl.data(), pl.size());
    } else {
      std::memcpy(dst, pb->owner->data(*pb), pb->len);
    }
    pool.arena().mark_dirty(np->data_h, pb->len);
    np->len = pb->len;
    np->tstamp = pb->tstamp;
    np->hw_tstamp = pb->hw_tstamp;
    np->wire_csum = pb->wire_csum;
    np->payload_csum = pb->payload_csum;
    np->csum_verified = pb->csum_verified;
    np->rss_hash = pb->rss_hash;
    np->rss_queue = static_cast<u16>(st.shard);
    np->l2_off = pb->l2_off;
    np->l3_off = pb->l3_off;
    np->l4_off = pb->l4_off;
    np->payload_off = pb->payload_off;
    np->l4_proto = pb->l4_proto;
    np->ip = pb->ip;
    np->tcp = pb->tcp;
    net::PktBufPool::release(pb);
    pb = np;
  }
  return Errc::ok;
}

void KvServer::on_flow_migrated(net::TcpConn& conn, u32 new_shard) {
  auto it = conns_.find(&conn);
  if (it == conns_.end() || new_shard >= shards_.size()) return;
  // Buffered segments keep their old-pool buffers until dispatch
  // normalizes them (pktstore) or reads them owner-routed (lsm/raw).
  it->second.shard = new_shard;
}

bool KvServer::prime(std::string_view key, std::span<const u8> value) {
  // Spread keys across shards with a seed-free FNV-1a so priming is
  // deterministic across runs and builds (std::hash makes no such
  // promise).
  u64 h = 1469598103934665603ull;
  for (const char c : key) h = (h ^ static_cast<u8>(c)) * 1099511628211ull;
  Shard& sh = shards_[h % shards_.size()];
  // Discard the charged store time: collect it into a scope the caller
  // never reads, so the global clock (and the shard cores) stay put.
  SimTime discarded = 0;
  auto& clk = host_.env().clock();
  // Close the scope even if the backend put throws (a fault plan can cut
  // the device mid-prime); a leaked scope leaves the clock reading the
  // dead `discarded` frame slot.
  struct ScopeCloser {
    sim::Clock* clk;
    ~ScopeCloser() { clk->end_scope(); }
  };
  clk.begin_scope(host_.env().now(), &discarded);
  const ScopeCloser closer{&clk};
  Status s = Errc::ok;
  switch (cfg_.backend) {
    case Backend::discard:
    case Backend::raw_persist:
      break;  // nothing to index; GETs are not served from these
    case Backend::lsm:
      s = sh.lsm->put(key, value, nullptr);
      break;
    case Backend::pktstore:
      s = sh.pktstore->put_bytes(key, value, nullptr);
      break;
  }
  return s.ok();
}

void KvServer::gate_release(const std::shared_ptr<ReplGate>& g) {
  if (!g->local || !g->remote || g->fired) return;
  g->fired = true;
  repl_gated_ops_++;
  // The tax is the wait *beyond local readiness*: without replication
  // the ack leaves at local_at (put done, or epoch committed under group
  // commit), so only the remote wait past that point is added latency.
  // Quorum acks that beat the local epoch commit cost nothing.
  const SimTime end = std::max(g->remote_at, g->local_at);
  if (g->remote_at > g->local_at) repl_tax_ns_ += g->remote_at - g->local_at;
  if (g->traced && end > g->local_at) {
    // The replication stage of this request: locally ready -> released.
    host_.trace(g->shard).record(g->req, obs::Stage::repl, g->local_at,
                                 end - g->local_at);
  }
  // The connection may have closed while its ack waited on the quorum.
  if (conns_.contains(g->conn)) respond(*g->conn, g->status);
}

void KvServer::close_epoch(u32 shard) {
  Shard& sh = shards_[shard];
  if (!sh.batcher.has_value() || !sh.batcher->epoch_open()) return;
  host_.cpu().run_on(shard, [&sh] { sh.batcher->close(); });
}

void KvServer::on_readable(net::TcpConn& conn) {
  auto it = conns_.find(&conn);
  if (it == conns_.end()) return;
  ConnState& st = it->second;

  for (net::PktBuf* pb : conn.read_pkts()) {
    if (st.pkts.empty()) st.rx_start = pb->tstamp;  // NIC ingress stamp
    st.have_bytes += pb->payload_len();
    st.pkts.push_back(pb);
  }
  if (!st.head_parsed && !try_parse_head(st)) return;
  if (st.have_bytes < st.head_len + st.body_len) return;  // body incomplete
  dispatch(conn, st);
}

KvServer::Shard* KvServer::find_pkt_shard(std::string_view key, u32 home) {
  // RSS flow affinity puts a key's writes in its writer's ingress shard,
  // so the home shard hits in the common case; the fallback sweep keeps
  // reads correct when another connection wrote the key.
  if (shards_[home].pktstore->stat(key).ok()) return &shards_[home];
  for (u32 i = 0; i < shards_.size(); i++) {
    if (i != home && shards_[i].pktstore->stat(key).ok()) return &shards_[i];
  }
  return nullptr;
}

bool KvServer::admin_dispatch(net::TcpConn& conn, ConnState& st) {
  if (!obs::kEnabled || !cfg_.admin) return false;
  if (st.method != http::Method::get) return false;
  const bool trace_recent = st.key.starts_with("/trace/recent");
  if (st.key != "/stats" && st.key != "/metrics" && !trace_recent) {
    return false;
  }
  auto& env = host_.env();

  // Snapshot via the registries' associative merge — the datapath shards
  // are never locked or paused; the admin request pays for its own copy.
  std::string body;
  if (st.key == "/metrics") {
    body = obs::prometheus_text(host_.merged_metrics());
  } else if (trace_recent) {
    body = obs::trace_recent_json(host_.merged_trace(), cfg_.trace_recent);
  } else {
    const obs::MetricRegistry merged = host_.merged_metrics();
    body = "{\"now_ns\": " + std::to_string(env.now()) +
           ", \"ops\": " + std::to_string(ops_) +
           ", \"errors\": " + std::to_string(errors_) +
           ", \"admin_requests\": " + std::to_string(admin_requests_) +
           ", \"shards\": " + std::to_string(shards_.size()) +
           ", \"shard_requests\": [";
    for (std::size_t i = 0; i < shards_.size(); i++) {
      body += (i == 0 ? "" : ", ") + std::to_string(shards_[i].requests);
    }
    body += "], \"flightrec_records\": " + std::to_string(flightrec_records()) +
            ", \"flightrec_wraps\": " + std::to_string(flightrec_wraps()) +
            ", \"metrics\": " + merged.to_json() + "}";
  }
  // The snapshot assembly is real work on this shard's core — sequential
  // DRAM string building, charged at the streaming rate (a PM-copy rate
  // here would bill telemetry like datapath persistence and blow the
  // 1%-of-p99 admin budget on every /trace/recent hit).
  env.clock().advance(env.cost.stream_cost(body.size()));
  admin_requests_++;
  obs::inc(shards_[st.shard].m_admin);
  respond(conn, 200,
          std::span<const u8>(reinterpret_cast<const u8*>(body.data()),
                              body.size()));

  for (net::PktBuf* pb : st.pkts) net::PktBufPool::release(pb);
  ConnState fresh;
  fresh.shard = st.shard;
  std::swap(conns_[&conn], fresh);
  return true;
}

void KvServer::flight_record(ConnState& st, const storage::OpBreakdown* bd,
                             u64 req, int status) {
  Shard& sh = shards_[st.shard];
  if (!sh.flightrec.has_value()) return;
  const auto ns32 = [](SimTime ns) {
    return ns <= 0 ? 0u
                   : static_cast<u32>(std::min<SimTime>(ns, 0xffffffff));
  };
  obs::FlightRecord fr;
  fr.req = req;
  fr.t0_ns = static_cast<u64>(st.rx_start);
  fr.epoch = sh.batcher.has_value() && sh.batcher->batching()
                 ? sh.batcher->epoch_serial()
                 : 0;
  if (st.rx_start != 0 && st.parse_ts >= st.rx_start) {
    fr.stage_ns[static_cast<int>(obs::Stage::rx)] =
        ns32(st.parse_ts - st.rx_start);
  }
  fr.stage_ns[static_cast<int>(obs::Stage::parse)] = ns32(st.parse_dur);
  if (bd != nullptr) {
    fr.stage_ns[static_cast<int>(obs::Stage::parse)] += ns32(bd->prep_ns);
    fr.stage_ns[static_cast<int>(obs::Stage::checksum)] = ns32(bd->checksum_ns);
    fr.stage_ns[static_cast<int>(obs::Stage::slice)] = ns32(bd->slice_ns);
    fr.stage_ns[static_cast<int>(obs::Stage::copy)] = ns32(bd->copy_ns);
    fr.stage_ns[static_cast<int>(obs::Stage::alloc_index)] =
        ns32(bd->alloc_insert_ns);
    fr.stage_ns[static_cast<int>(obs::Stage::nic_insert)] =
        ns32(bd->nic_insert_ns);
    fr.stage_ns[static_cast<int>(obs::Stage::persist)] = ns32(bd->persist_ns);
  }
  fr.result = static_cast<u16>(status);
  switch (st.method) {
    case http::Method::put: fr.op = 'P'; break;
    case http::Method::get: fr.op = 'G'; break;
    case http::Method::del: fr.op = 'D'; break;
    default: fr.op = '?'; break;
  }
  sh.flightrec->append(fr);
}

void KvServer::dispatch(net::TcpConn& conn, ConnState& st) {
  auto& env = host_.env();
  if (admin_dispatch(conn, st)) return;
  Shard& sh = shards_[st.shard];
  // Group-commit / cache-warmth regime: requests queued behind the core.
  const bool batched = host_.cpu().backlogged();
  if (sh.batcher.has_value()) {
    sh.batcher->begin_op(batched, static_cast<u64>(env.now()));
  }
  if (sh.lsm.has_value()) sh.lsm->set_batched(batched);
  if (sh.pktstore.has_value()) sh.pktstore->set_batched(batched);
  storage::OpBreakdown bd;
  storage::OpBreakdown* bdp = cfg_.collect_breakdown ? &bd : nullptr;
  int status = 200;
  std::vector<u8> resp_body;
  Shard* zero_copy_shard = nullptr;
  // Replication forwarding state (pktstore mutations with a Replicator
  // attached): the value's gather ranges, captured where the PUT path
  // has them in hand.
  const bool repl_on = repl::kReplCompiled && repl_ != nullptr &&
                       cfg_.backend == Backend::pktstore;
  std::vector<repl::Replicator::GatherSeg> repl_segs;
  bool repl_put_ok = false;

  // One Table-1 row per request: rx covers NIC ingress of the first
  // segment up to the head parse (TCP delivery, checksum verify, wakeup);
  // parse is the head-parse window recorded by try_parse_head.
  obs::TraceContext tr(env, cfg_.trace ? &host_.trace(st.shard) : nullptr,
                       next_req_++);
  if (tr.active()) {
    if (st.rx_start != 0 && st.parse_ts >= st.rx_start) {
      tr.record(obs::Stage::rx, st.rx_start, st.parse_ts - st.rx_start);
    }
    tr.record(obs::Stage::parse, st.parse_ts, st.parse_dur);
  }
  const SimTime t_backend = env.now();

  switch (cfg_.backend) {
    case Backend::discard:
      break;

    case Backend::raw_persist: {
      // The Fig. 2 "simple application that copies and persists data in
      // the PM region": one copy + one flush, no structure.
      if (st.method == http::Method::put) {
        if (sh.raw_off + st.body_len > kRawRegion) sh.raw_off = 0;
        auto& dev = host_.pm_device();
        std::size_t skip = st.head_len;
        u64 at = sh.raw_region + sh.raw_off;
        const SimTime t0 = env.now();
        for (net::PktBuf* pb : st.pkts) {
          const auto p = pb->owner->payload(*pb);
          if (skip >= p.size()) {
            skip -= p.size();
            continue;
          }
          const auto chunk = p.subspan(skip);
          skip = 0;
          env.clock().advance(env.cost.copy_cost(chunk.size()));
          dev.store(at, chunk);
          at += chunk.size();
        }
        if (bdp != nullptr) bdp->copy_ns += env.now() - t0;
        const SimTime t1 = env.now();
        dev.persist(sh.raw_region + sh.raw_off, st.body_len);
        if (bdp != nullptr) bdp->persist_ns += env.now() - t1;
        sh.raw_off += align_up(st.body_len, kCacheLine);
      }
      break;
    }

    case Backend::lsm: {
      if (st.method == http::Method::put) {
        // Write-local: the PUT lands in the ingress core's shard.
        Status s = Errc::ok;
        if (st.pkts.size() == 1) {
          // Body contiguous inside the packet: hand the view straight to
          // the store (its internal copy is the Table 1 copy row).
          net::PktBuf* pb = st.pkts[0];
          const auto p = pb->owner->payload(*pb);
          s = sh.lsm->put(st.key, p.subspan(st.head_len, st.body_len), bdp);
        } else {
          std::vector<u8> body;
          body.reserve(st.body_len);
          std::size_t skip = st.head_len;
          for (net::PktBuf* pb : st.pkts) {
            const auto p = pb->owner->payload(*pb);
            if (skip >= p.size()) {
              skip -= p.size();
              continue;
            }
            body.insert(body.end(), p.begin() + static_cast<long>(skip), p.end());
            skip = 0;
          }
          body.resize(st.body_len);
          s = sh.lsm->put(st.key, body, bdp);
        }
        if (!s.ok()) {
          status = 507;
          errors_++;
          obs::inc(sh.m_errors);
        } else {
          status = 201;
        }
      } else if (st.method == http::Method::get) {
        if (st.key.starts_with("/scan/")) {
          resp_body = scan_response(st.key);
        } else {
          // Read-merge: the ingress shard first (RSS flow affinity makes
          // it the writer's shard), then the others for keys another
          // connection wrote.
          auto v = sh.lsm->get(st.key);
          if (!v.ok() && v.errc() == Errc::not_found) {
            for (u32 i = 0; i < shards_.size(); i++) {
              if (i == st.shard) continue;
              shards_[i].lsm->set_batched(batched);
              auto w = shards_[i].lsm->get(st.key);
              if (w.ok() || w.errc() != Errc::not_found) {
                v = std::move(w);
                break;
              }
            }
          }
          if (v.ok()) {
            resp_body = std::move(v.value());
          } else {
            status = v.errc() == Errc::not_found ? 404 : 500;
          }
        }
      } else if (st.method == http::Method::del) {
        bool any = false;
        for (auto& s : shards_) any |= s.lsm->erase(st.key).ok();
        status = any ? 204 : 500;
      }
      break;
    }

    case Backend::pktstore: {
      if (st.method == http::Method::put) {
        // A request that spanned a flow migration holds segments from the
        // old shard's pool; re-home them before the chain adopts data.
        if (!normalize_pkts(st).ok()) {
          status = 507;
          errors_++;
          obs::inc(sh.m_errors);
          break;
        }
        // Zero-copy ingest: per-packet value ranges.
        std::vector<net::PktBuf*> pkts;
        std::vector<u32> offs, lens;
        std::size_t skip = st.head_len;
        std::size_t remaining = st.body_len;
        for (net::PktBuf* pb : st.pkts) {
          const u32 plen = pb->payload_len();
          if (skip >= plen) {
            skip -= plen;
            continue;
          }
          const u32 off = pb->payload_off + static_cast<u32>(skip);
          const u32 len = static_cast<u32>(
              std::min<std::size_t>(plen - skip, remaining));
          skip = 0;
          pkts.push_back(pb);
          offs.push_back(off);
          lens.push_back(len);
          remaining -= len;
          if (remaining == 0) break;
        }
        const Status s = sh.pktstore->put_pkts(st.key, pkts, offs, lens, bdp);
        if (!s.ok()) {
          status = 507;
          errors_++;
          obs::inc(sh.m_errors);
        } else {
          status = 201;
          if (repl_on) {
            // Forward the same packets' value ranges, refcounted — the
            // replicas receive the bytes the client's segments carried.
            repl_segs = repl::gather_from_pkts(pkts, offs, lens);
            repl_put_ok = true;
          }
        }
      } else if (st.method == http::Method::get) {
        if (st.key.starts_with("/scan/")) {
          resp_body = scan_response(st.key);
        } else if (Shard* owner = find_pkt_shard(st.key, st.shard)) {
          owner->pktstore->set_batched(batched);
          zero_copy_shard = owner;
        } else {
          status = 404;
        }
      } else if (st.method == http::Method::del) {
        bool any = false;
        for (auto& s : shards_) any |= s.pktstore->erase(st.key);
        status = any ? 204 : 404;
      }
      break;
    }
  }

  // Stitch the backend's OpBreakdown into contiguous stage spans laid out
  // from the backend-call start: the breakdown is a set of durations whose
  // sum never exceeds the elapsed backend time, so the stitched spans stay
  // inside [t_backend, now). prep lands on the parse stage (request
  // preparation — memtable key setup, WAL record framing).
  if (tr.active() && bdp != nullptr) {
    SimTime at = t_backend;
    const auto emit = [&](obs::Stage s, SimTime d) {
      if (d != 0) {
        tr.record(s, at, d);
        at += d;
      }
    };
    emit(obs::Stage::parse, bd.prep_ns);
    emit(obs::Stage::checksum, bd.checksum_ns);
    emit(obs::Stage::slice, bd.slice_ns);
    emit(obs::Stage::copy, bd.copy_ns);
    emit(obs::Stage::alloc_index, bd.alloc_insert_ns);
    emit(obs::Stage::nic_insert, bd.nic_insert_ns);
    emit(obs::Stage::persist, bd.persist_ns);
  }

  // The request's flight-recorder row goes down *before* the ack path:
  // under group commit its publication rides the same epoch whose close
  // releases the ack, and in pass-through mode it persists before the
  // response — either way an acked op is always recoverable.
  if constexpr (obs::kEnabled) flight_record(st, bdp, tr.req(), status);

  // Durable mutations inside an open epoch ack only once the epoch's
  // fences retire (group commit's correctness condition); reads and
  // failures that never touched durable state respond immediately.
  const bool mutation =
      st.method == http::Method::put || st.method == http::Method::del;
  const bool defer_ack =
      mutation && sh.batcher.has_value() && sh.batcher->batching();
  const bool replicate =
      repl_on && mutation && (status == 201 || status == 204) &&
      (st.method == http::Method::del || repl_put_ok);
  {
    auto tx_span = tr.span(obs::Stage::tx);
    if (zero_copy_shard != nullptr) {
      respond_value_zero_copy(conn, *zero_copy_shard, st.key);
    } else if (replicate) {
      // Quorum-gated ack: the client hears 201/204 only once the write
      // is locally durable AND a quorum of hosts holds it (or the
      // degrade deadline released it as a counted local-only ack).
      auto gate = std::make_shared<ReplGate>();
      gate->conn = &conn;
      gate->status = status;
      gate->shard = st.shard;
      gate->req = tr.req();
      gate->traced = tr.active();
      gate->t0 = env.now();
      if (defer_ack) {
        sh.batcher->on_committed([this, gate] {
          gate->local = true;
          gate->local_at = host_.env().now();
          gate_release(gate);
        });
      } else {
        gate->local = true;
        gate->local_at = env.now();
      }
      auto done = [this, gate](bool degraded) {
        gate->remote = true;
        gate->degraded = degraded;
        gate->remote_at = host_.env().now();
        gate_release(gate);
      };
      // Traced requests carry their id across the wire so the replica's
      // apply span stitches into the same Perfetto trace.
      const u64 trace_id = tr.active() ? tr.req() : 0;
      if (st.method == http::Method::put) {
        repl_->submit_put(st.key, repl_segs, static_cast<u32>(st.body_len),
                          host_.pool(st.shard), std::move(done), trace_id);
      } else {
        repl_->submit_erase(st.key, std::move(done), trace_id);
      }
      gate_release(gate);  // quorum=1 resolves synchronously
    } else if (defer_ack) {
      net::TcpConn* c = &conn;
      sh.batcher->on_committed(
          [this, c, status, body = std::move(resp_body)] {
            // The connection may have closed while its ack was queued.
            if (conns_.contains(c)) respond(*c, status, body);
          });
    } else {
      respond(conn, status, resp_body);
    }
  }
  if (sh.batcher.has_value()) {
    sh.batcher->end_op();
    arm_epoch_watchdog(st.shard);
    arm_epoch_drain_check(st.shard);
  }
  ops_++;
  sh.requests++;
  obs::inc(sh.m_requests);
  if (st.rx_start != 0) obs::observe(sh.m_req_ns, env.now() - st.rx_start);
  if (bdp != nullptr) {
    breakdown_sum_ += bd;
    breakdown_ops_++;
  }

  for (net::PktBuf* pb : st.pkts) net::PktBufPool::release(pb);
  ConnState fresh;
  fresh.shard = st.shard;
  std::swap(conns_[&conn], fresh);
}

std::vector<u8> KvServer::scan_response(std::string_view target) {
  // Range query (the §3 "efficient range query support" property):
  // target is "/scan/<from>/<to>"; the response lists "key<TAB>len" lines
  // for up to kMaxScan keys in [from, to). On a sharded store the
  // per-shard iterators are merged in key order with duplicates (the same
  // key written via two ingress cores) collapsed — each shard contributes
  // at most kMaxScan candidates, so the global cut is exact.
  constexpr std::size_t kMaxScan = 100;
  target.remove_prefix(6);  // "/scan/"
  const std::size_t slash = target.find('/');
  const std::string_view from = target.substr(0, slash);
  const std::string_view to =
      slash == std::string_view::npos ? std::string_view{}
                                      : target.substr(slash + 1);
  std::map<std::string, u64> merged;
  for (auto& sh : shards_) {
    std::size_t n = 0;
    auto collect = [&](std::string_view key, u64 len) {
      merged.emplace(std::string(key), len);
      return ++n < kMaxScan;
    };
    if (sh.lsm.has_value()) {
      sh.lsm->scan(from, to, [&](std::string_view k, std::span<const u8> v) {
        return collect(k, v.size());
      });
    } else if (sh.pktstore.has_value()) {
      sh.pktstore->scan(
          from, to, [&](std::string_view k, const core::PktStore::ValueMeta& m) {
            return collect(k, m.len);
          });
    }
  }
  std::string out;
  std::size_t n = 0;
  for (const auto& [key, len] : merged) {
    out += key;
    out += '\t';
    out += std::to_string(len);
    out += '\n';
    if (++n >= kMaxScan) break;
  }
  return {out.begin(), out.end()};
}

void KvServer::respond(net::TcpConn& conn, int status,
                       std::span<const u8> body) {
  auto& env = host_.env();
  env.clock().advance(env.cost.scaled(env.cost.server_http_build_ns));
  http::Response resp;
  resp.status = status;
  resp.body.assign(body.begin(), body.end());
  (void)conn.send(http::serialize(resp));
}

void KvServer::respond_value_zero_copy(net::TcpConn& conn, Shard& sh,
                                       std::string_view key) {
  auto& env = host_.env();
  env.clock().advance(env.cost.scaled(env.cost.server_http_build_ns));
  const auto st = sh.pktstore->stat(key);
  // Headers go through the copying send (they are tiny)...
  const std::string head = "HTTP/1.1 200 OK\r\nContent-Length: " +
                           std::to_string(st->len) + "\r\n\r\n";
  (void)conn.send(std::span<const u8>(
      reinterpret_cast<const u8*>(head.data()), head.size()));
  // ...the value leaves as frag-backed packets, zero copy (§4.2).
  auto pkts = sh.pktstore->get_as_pkts(key);
  if (!pkts.ok()) return;
  for (net::PktBuf* pb : pkts.value()) {
    if (!conn.send_pkt(pb).ok()) {
      // Window full; closed-loop benches never hit this.
      errors_++;
      obs::inc(sh.m_errors);
    }
  }
}

}  // namespace papm::app
