// Open-loop (Poisson) load generator — the production-load counterpart
// of WrkClient's closed loop.
//
// A closed loop can never overload the server: every connection waits
// for its response before issuing again, so latency feedback throttles
// the offered load and the measured tail is a best case. Serving
// millions of users looks different — arrivals come from independent
// sources at an *offered* rate that does not care how the server is
// doing. This client models that: each connection draws exponential
// interarrival gaps (a Poisson process of rate_rps / connections), and
// an arrival whose connection still has a request outstanding queues
// FIFO behind it (HTTP/1.1, no pipelining). The recorded latency is the
// *sojourn time* — arrival to response, including the time spent queued
// client-side — which is what a user experiences, and each request
// carries a deadline; responses later than deadline_ns count as misses.
//
// One OpenLoopClient drives one client host. The u16 ephemeral-port
// space caps a host at ~32k connections; bench_openloop shards bigger
// sweeps across several client hosts (distinct IPs) and merges their
// Stats.
#pragma once

#include <deque>
#include <memory>
#include <optional>

#include "app/host.h"
#include "common/stats.h"
#include "http/http.h"

namespace papm::app {

struct OpenLoopConfig {
  u32 server_ip = 0;
  u16 port = 9000;
  int connections = 1000;
  double rate_rps = 50'000;  // aggregate offered load across connections
  std::size_t value_size = 512;
  double get_ratio = 0.5;  // fraction of GETs
  u64 keyspace = 16384;
  double zipf_theta = 0.0;
  u64 seed = 1;
  SimTime deadline_ns = kNsPerMs;  // per-request response deadline
  // Connection setup is spread over this window so 10k+ SYNs don't land
  // in one burst (arrivals start per-connection once it establishes).
  SimTime connect_window_ns = 10 * kNsPerMs;
};

class OpenLoopClient {
 public:
  OpenLoopClient(Host& host, OpenLoopConfig cfg);

  // Fires on every successfully acked PUT (status < 400) with the key
  // index it wrote. The failover benches build the set of client-acked
  // writes from this — the set the promoted store must fully contain.
  std::function<void(u64 key_idx)> on_put_ok;

  void start();
  // Stops generating arrivals; queued and in-flight requests finish.
  void stop() noexcept { stopped_ = true; }

  [[nodiscard]] Stats& sojourns() noexcept { return sojourn_; }
  [[nodiscard]] u64 arrivals() const noexcept { return arrivals_; }
  [[nodiscard]] u64 completed() const noexcept { return completed_; }
  [[nodiscard]] u64 deadline_misses() const noexcept { return misses_; }
  [[nodiscard]] u64 http_errors() const noexcept { return http_errors_; }
  void reset_stats() {
    sojourn_.clear();
    arrivals_ = 0;
    completed_ = 0;
    misses_ = 0;
    http_errors_ = 0;
  }

 private:
  struct ConnCtx {
    net::TcpConn* conn = nullptr;
    http::ResponseParser parser;
    bool in_flight = false;
    SimTime current_arrival = 0;   // arrival stamp of the in-flight request
    u64 current_key = 0;           // key index of the in-flight request
    bool current_is_put = false;
    std::deque<SimTime> pending;   // arrivals queued behind it (FIFO)
    Rng rng{0};
    std::optional<Zipf> zipf;
  };

  void arrive(ConnCtx& ctx);       // one Poisson arrival; schedules the next
  void issue(ConnCtx& ctx, SimTime arrival);
  void on_readable(ConnCtx& ctx);
  [[nodiscard]] std::vector<u8> value_for(u64 key_idx) const;

  Host& host_;
  OpenLoopConfig cfg_;
  double mean_gap_ns_ = 0;  // per-connection mean interarrival
  std::vector<std::unique_ptr<ConnCtx>> conns_;
  Stats sojourn_;
  u64 arrivals_ = 0;
  u64 completed_ = 0;
  u64 misses_ = 0;
  u64 http_errors_ = 0;
  bool stopped_ = false;
  obs::Counter* m_arrivals_ = nullptr;
  obs::Counter* m_completed_ = nullptr;
  obs::Counter* m_misses_ = nullptr;
  obs::Counter* m_http_errors_ = nullptr;
  obs::Histogram* m_sojourn_ns_ = nullptr;
};

}  // namespace papm::app
