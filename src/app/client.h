// wrk-like closed-loop load generator (§3 methodology: "the client runs
// the regular Linux stack and wrk as the application to issue storage
// requests over one or more TCP connections and measure the end-to-end
// latency").
//
// Each connection runs a closed loop: issue a request, wait for the full
// response, record the application-level RTT, issue the next. Keys are
// drawn uniformly from a key space; values are deterministic per key.
#pragma once

#include <memory>

#include <optional>

#include "app/host.h"
#include "common/stats.h"
#include "http/http.h"
#include "obs/trace.h"

namespace papm::app {

struct ClientConfig {
  u32 server_ip = 0;
  u16 port = 9000;
  int connections = 1;
  std::size_t value_size = 1024;
  double get_ratio = 0.0;  // fraction of GETs (after a priming PUT per key)
  u64 keyspace = 4096;
  // Key popularity skew: 0 = uniform, else Zipfian theta (e.g. 0.99,
  // the YCSB default) — hot keys exercise the update path.
  double zipf_theta = 0.0;
  u64 seed = 1;
  // Stagger connection establishment to avoid a SYN burst at t=0.
  SimTime connect_stagger_ns = 2 * kNsPerUs;
};

class WrkClient {
 public:
  WrkClient(Host& host, ClientConfig cfg);

  // Opens the connections and starts issuing once each establishes.
  void start();

  // Stops issuing new requests (in-flight ones finish).
  void stop() noexcept { stopped_ = true; }

  [[nodiscard]] Stats& latencies() noexcept { return rtt_; }
  [[nodiscard]] u64 completed() const noexcept { return completed_; }
  [[nodiscard]] u64 http_errors() const noexcept { return http_errors_; }
  void reset_stats() {
    rtt_.clear();
    completed_ = 0;
    http_errors_ = 0;
    trace_.clear();
  }

  // Record one rtt span per completed request (issue -> response parsed)
  // on the client track of the exported trace.
  void set_tracing(bool on) noexcept { tracing_ = on; }
  [[nodiscard]] const obs::TraceLog& trace() const noexcept { return trace_; }

 private:
  struct ConnCtx {
    net::TcpConn* conn = nullptr;
    http::ResponseParser parser;
    SimTime issued_at = 0;
    bool in_flight = false;
    Rng rng{0};
    std::optional<Zipf> zipf;
  };

  void issue(ConnCtx& ctx);
  void on_readable(ConnCtx& ctx);
  [[nodiscard]] std::vector<u8> value_for(u64 key_idx) const;

  Host& host_;
  ClientConfig cfg_;
  std::vector<std::unique_ptr<ConnCtx>> conns_;
  Stats rtt_;
  u64 completed_ = 0;
  u64 http_errors_ = 0;
  u64 next_req_ = 1;  // trace request ids
  bool stopped_ = false;
  bool tracing_ = false;
  obs::TraceLog trace_;
  // Cached registrations in the client host's shard-0 registry.
  obs::Counter* m_requests_ = nullptr;
  obs::Counter* m_http_errors_ = nullptr;
  obs::Counter* m_resp_parsed_ = nullptr;
  obs::Counter* m_parse_err_ = nullptr;
  obs::Histogram* m_rtt_ns_ = nullptr;
};

}  // namespace papm::app
