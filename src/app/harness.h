// Experiment harness: builds the two-machine testbed of §3 (a busy-polling
// PM server — one datapath shard per configured core, the paper's
// configuration being one — + multi-core client over a 25 GbE fabric), runs
// a closed-loop workload and reports latency, throughput and the
// per-operation breakdown. Every bench target (Table 1, Figure 2, the
// ablations) is a thin loop over run_experiment().
#pragma once

#include "app/client.h"
#include "app/openloop.h"
#include "app/rebalance.h"
#include "app/server.h"
#include "nic/fabric.h"

namespace papm::app {

struct RunConfig {
  // Server.
  Backend backend = Backend::lsm;
  storage::StoreKnobs knobs;
  bool lsm_wal = false;
  core::PktStoreOptions pkt_opts;
  int server_cores = 1;  // "the server uses only one CPU core"
  u64 pm_size = 512u << 20;  // server PM device, split across core shards

  // Workload.
  int connections = 1;
  std::size_t value_size = 1024;
  double get_ratio = 0.0;
  u64 keyspace = 4096;
  double zipf_theta = 0.0;  // 0 = uniform keys

  // Timing. Defaults keep a single run under a second of wall time while
  // collecting thousands of samples.
  SimTime warmup_ns = 20 * kNsPerMs;
  SimTime measure_ns = 200 * kNsPerMs;

  // Scale-out rebalancing: run the shard-load monitor during the whole
  // experiment (warmup included, so the table settles before the
  // measurement window). No-op with one server core.
  bool rebalance = false;
  RebalanceConfig rebalance_cfg;

  // Replication (src/repl/): R backup hosts on the fabric; pktstore
  // mutations ack only once a quorum of hosts holds them durably.
  // Requires backend == pktstore (other backends ignore it).
  bool repl = false;
  u32 repl_replicas = 2;
  repl::ReplOptions repl_opts;

  // Environment.
  sim::CostModel cost;
  nic::Fabric::Options fabric;
  nic::Nic::Options nic;
  u64 seed = 42;

  // Observability. All are measurement-window scoped (reset at the
  // warmup boundary) and no-ops under PAPM_OBS=OFF.
  bool collect_metrics = false;  // fill metrics_report / metrics_json
  bool trace = false;            // per-request spans -> attribution + JSON
  std::size_t trace_capacity = 0;  // span ring per shard (0 = unbounded)
  // PM flight recorder (src/obs/flightrec.h): one ring per server shard,
  // written through the datapath's group-commit epochs.
  bool flight_recorder = false;
  u32 flightrec_capacity = 4096;
};

struct RunResult {
  Stats rtt;             // per-request RTT samples, ns
  double kreq_per_s;     // completed requests per second (thousands)
  u64 ops = 0;           // requests completed in the measurement window
  storage::OpBreakdown avg_breakdown;  // server-side, per op
  double server_cpu_util = 0.0;        // busy fraction of the server core
  u64 server_errors = 0;
  u64 retransmits_hint = 0;  // fabric drops (loss experiments)

  // Shard-load spread over the measurement window: requests dispatched
  // per server shard, and max/mean of that vector (1.0 = perfectly even;
  // the S1 rebalancing criterion is a >= 25% drop in this ratio).
  std::vector<u64> shard_requests;
  double imbalance = 1.0;
  // Rebalancer activity (zeros when cfg.rebalance is off).
  u64 rebalance_rounds = 0;
  u64 bucket_moves = 0;
  u64 conns_migrated = 0;

  // Replication activity (zeros when cfg.repl is off).
  u64 repl_forwards = 0;
  u64 repl_acks_rx = 0;
  u64 repl_retransmits = 0;
  u64 repl_degraded_acks = 0;
  u64 repl_tax_ns = 0;  // mean added ack latency per quorum-gated op

  // Observability results (populated per the RunConfig flags).
  obs::Attribution attribution{};       // per-stage means over the window
  pm::PmDevice::FlushEpoch flush{};     // clwb/sfence totals for the window
  std::string metrics_report;           // human table: server + client
  std::string metrics_json;             // {"server": {...}, "client": {...}}
  std::string trace_json;               // Chrome trace_events (Perfetto);
                                        // includes replica apply tracks
                                        // when repl + trace are both on
  u64 flightrec_records = 0;  // flight records appended in the window
  u64 flightrec_wraps = 0;    // ring wraps among them
  u64 trace_dropped = 0;      // spans evicted by the trace ring

  [[nodiscard]] double mean_rtt_us() const { return rtt.mean() / 1000.0; }
  [[nodiscard]] double p99_rtt_us() const {
    return const_cast<Stats&>(rtt).percentile(99) / 1000.0;
  }
};

RunResult run_experiment(const RunConfig& cfg);

// --- Open-loop (production load) experiments ------------------------------

struct OpenLoopRunConfig {
  // Server (same knobs as RunConfig).
  Backend backend = Backend::pktstore;
  storage::StoreKnobs knobs;
  bool lsm_wal = false;
  core::PktStoreOptions pkt_opts;
  int server_cores = 4;
  u64 pm_size = 512u << 20;

  // Offered load.
  int connections = 10'000;
  double rate_rps = 200'000;  // aggregate Poisson arrival rate
  std::size_t value_size = 512;
  double get_ratio = 0.5;
  u64 keyspace = 16384;
  double zipf_theta = 0.0;
  SimTime deadline_ns = kNsPerMs;

  // Timing. Warmup must cover connection setup (the harness widens the
  // connect window automatically for big sweeps).
  SimTime warmup_ns = 50 * kNsPerMs;
  SimTime measure_ns = 200 * kNsPerMs;

  // Rebalancing (as in RunConfig).
  bool rebalance = false;
  RebalanceConfig rebalance_cfg;

  // Environment.
  sim::CostModel cost;
  nic::Fabric::Options fabric;
  nic::Nic::Options nic;
  u64 seed = 42;
  bool collect_metrics = false;

  // Telemetry plane. `admin` arms /stats, /metrics and /trace/recent on
  // the server; armed-but-unscraped costs zero simulated time (the admin
  // branch only fires on admin URLs), so an --admin run without a
  // scraper is byte-identical to one without the flag. A nonzero
  // admin_interval_ns additionally runs a scrape probe from its own
  // client host, cycling the three endpoints at that period — that is
  // the configuration the <1% p99 overhead budget is measured in.
  bool admin = false;
  SimTime admin_interval_ns = 0;
  // Server-side span collection for /trace/recent: per-shard span rings
  // (bounded; obs.trace_dropped counts evictions). 0 leaves tracing off.
  std::size_t trace_capacity = 0;
  // PM flight recorder on the server datapath.
  bool flight_recorder = false;
  u32 flightrec_capacity = 4096;
};

struct OpenLoopResult {
  Stats sojourn;  // per-request sojourn times (arrival -> response), ns
  u64 arrivals = 0;   // Poisson arrivals in the measurement window
  u64 completed = 0;  // responses received in the window
  u64 deadline_misses = 0;
  double miss_rate = 0.0;  // deadline_misses / completed
  double kreq_per_s = 0.0;
  double offered_krps = 0.0;  // arrivals over the window, for comparison
  u64 errors = 0;
  double server_cpu_util = 0.0;

  // Shard balance + rebalancer activity (see RunResult).
  std::vector<u64> shard_requests;
  double imbalance = 1.0;
  u64 rebalance_rounds = 0;
  u64 bucket_moves = 0;
  u64 conns_migrated = 0;
  u64 indir_remaps = 0;

  // Telemetry plane activity (zeros unless cfg.admin / flight_recorder).
  u64 admin_requests = 0;  // admin GETs the server answered
  u64 admin_scrapes = 0;   // responses the scrape probe completed
  u64 admin_bytes = 0;     // admin response body bytes delivered
  u64 flightrec_records = 0;
  u64 flightrec_wraps = 0;
  u64 trace_dropped = 0;

  std::string metrics_report;
  std::string metrics_json;

  [[nodiscard]] double p50_us() const {
    return const_cast<Stats&>(sojourn).percentile(50) / 1000.0;
  }
  [[nodiscard]] double p99_us() const {
    return const_cast<Stats&>(sojourn).percentile(99) / 1000.0;
  }
  [[nodiscard]] double p999_us() const {
    return const_cast<Stats&>(sojourn).percentile(99.9) / 1000.0;
  }
};

// Runs the two-machine testbed under open-loop load. Beyond ~16k
// connections the client side is sharded across several hosts (distinct
// IPs; the u16 ephemeral-port space caps one host) and their sample sets
// merge into one distribution.
OpenLoopResult run_openloop(const OpenLoopRunConfig& cfg);

// --- Whole-host failover experiments (availability A4) --------------------
//
// Kill the primary mid-load and measure the cluster's recovery: how long
// until a backup declares the primary suspect, how long until the winner
// (max durable seq) is promoted with its apply pipeline drained, and —
// the invariant the quorum bought — that every write the *client* saw
// acked is present and intact on the promoted host.

struct FailoverConfig {
  // Primary (pktstore backend; replication requires it).
  core::PktStoreOptions pkt_opts;
  int server_cores = 1;
  u64 pm_size = 128u << 20;

  // Replication group.
  u32 replicas = 2;
  repl::ReplOptions repl;  // quorum, heartbeat cadence, degrade policy

  // Open-loop PUT-only load (GETs would dilute the acked-write set; the
  // keyspace is left unprimed so every byte on the backups arrived via
  // the replication stream). One client host: one seed, so the per-key
  // value convention Rng(seed * 1315423911 + k) verifies the survivors.
  int connections = 64;
  double rate_rps = 40'000;
  std::size_t value_size = 512;
  u64 keyspace = 1024;

  // The cut: at cut_at_ns the primary's NIC link drops and its forwarder
  // dies (whole-host loss — no goodbye traffic). Must leave room for the
  // client's connect ramp (connections * 5 us) before it.
  SimTime cut_at_ns = 30 * kNsPerMs;
  SimTime detect_budget_ns = 50 * kNsPerMs;  // give-up bound on suspect
  SimTime settle_budget_ns = 50 * kNsPerMs;  // give-up bound on drain

  // Environment.
  sim::CostModel cost;
  nic::Fabric::Options fabric;
  nic::Nic::Options nic;
  u64 seed = 42;
};

struct FailoverResult {
  // Client-visible acked writes before the cut, and how many of those
  // keys the promoted host is missing or holds corrupt (the headline
  // number; the quorum contract says it must be zero).
  u64 acked_puts = 0;
  u64 acked_keys = 0;  // distinct keys among them
  u64 acked_lost = 0;

  bool detected = false;  // a backup declared the primary suspect in budget
  bool settled = false;   // winner drained (durable == applied) in budget
  double detect_us = 0;   // cut -> first suspect declaration
  double failover_us = 0; // cut -> promoted winner fully durable

  u32 winner_ip = 0;
  u64 winner_durable_seq = 0;
  u64 winner_applies = 0;

  // Primary-side replication activity up to the cut.
  u64 repl_forwards = 0;
  u64 repl_acks_rx = 0;
  u64 repl_retransmits = 0;
  u64 degraded_acks = 0;
};

// Requires the repl subsystem (-DPAPM_REPL=ON); under the norepl build
// it returns a zeroed result with detected == false.
FailoverResult run_failover(const FailoverConfig& cfg);

}  // namespace papm::app
