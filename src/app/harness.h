// Experiment harness: builds the two-machine testbed of §3 (a busy-polling
// PM server — one datapath shard per configured core, the paper's
// configuration being one — + multi-core client over a 25 GbE fabric), runs
// a closed-loop workload and reports latency, throughput and the
// per-operation breakdown. Every bench target (Table 1, Figure 2, the
// ablations) is a thin loop over run_experiment().
#pragma once

#include "app/client.h"
#include "app/server.h"
#include "nic/fabric.h"

namespace papm::app {

struct RunConfig {
  // Server.
  Backend backend = Backend::lsm;
  storage::StoreKnobs knobs;
  bool lsm_wal = false;
  core::PktStoreOptions pkt_opts;
  int server_cores = 1;  // "the server uses only one CPU core"
  u64 pm_size = 512u << 20;  // server PM device, split across core shards

  // Workload.
  int connections = 1;
  std::size_t value_size = 1024;
  double get_ratio = 0.0;
  u64 keyspace = 4096;
  double zipf_theta = 0.0;  // 0 = uniform keys

  // Timing. Defaults keep a single run under a second of wall time while
  // collecting thousands of samples.
  SimTime warmup_ns = 20 * kNsPerMs;
  SimTime measure_ns = 200 * kNsPerMs;

  // Environment.
  sim::CostModel cost;
  nic::Fabric::Options fabric;
  nic::Nic::Options nic;
  u64 seed = 42;

  // Observability. Both are measurement-window scoped (reset at the
  // warmup boundary) and no-ops under PAPM_OBS=OFF.
  bool collect_metrics = false;  // fill metrics_report / metrics_json
  bool trace = false;            // per-request spans -> attribution + JSON
};

struct RunResult {
  Stats rtt;             // per-request RTT samples, ns
  double kreq_per_s;     // completed requests per second (thousands)
  u64 ops = 0;           // requests completed in the measurement window
  storage::OpBreakdown avg_breakdown;  // server-side, per op
  double server_cpu_util = 0.0;        // busy fraction of the server core
  u64 server_errors = 0;
  u64 retransmits_hint = 0;  // fabric drops (loss experiments)

  // Observability results (populated per the RunConfig flags).
  obs::Attribution attribution{};       // per-stage means over the window
  pm::PmDevice::FlushEpoch flush{};     // clwb/sfence totals for the window
  std::string metrics_report;           // human table: server + client
  std::string metrics_json;             // {"server": {...}, "client": {...}}
  std::string trace_json;               // Chrome trace_events (Perfetto)

  [[nodiscard]] double mean_rtt_us() const { return rtt.mean() / 1000.0; }
  [[nodiscard]] double p99_rtt_us() const {
    return const_cast<Stats&>(rtt).percentile(99) / 1000.0;
  }
};

RunResult run_experiment(const RunConfig& cfg);

}  // namespace papm::app
