// Shard-load monitor and flow-group migration (scale-out rebalancing).
//
// The static Toeplitz spread is only as good as the hash: with few
// connections (or a skewed port draw) whole flow groups pile onto one
// queue and the pinned-shard design turns the hottest core into the
// clock for the whole host (EXPERIMENTS.md S1 capped at 3.85x on 4
// cores). Real deployments fix this in the NIC: remap entries of the RSS
// indirection table (ETHTOOL_SRXFHINDIR) so a hot queue sheds flow
// groups to a cold one.
//
// In this stack a queue is not just a queue — it is a *shard*: a pinned
// TCP stack, a private packet pool, and a store slice. So a remap must
// carry the group's connection state across stacks (TcpStack::
// extract/adopt) and re-home its server-side residency
// (KvServer::on_flow_migrated), and it must first retire the source
// shard's open group-commit epoch (KvServer::close_epoch) so deferred
// publications and held acks drain before any request is processed on
// the new core — no in-flight request is dropped or reordered.
//
// The whole migration executes inside one simulator event: the NIC reads
// the indirection table at frame arrival and HostCpu::run_on is
// synchronous, so no packet can interleave with a half-moved group.
//
// Monitor policy: every interval_ns the rebalancer diffs the NIC's
// per-entry frame counters, sums them into per-queue loads, and — when
// max/mean exceeds trigger_ratio — greedily moves the hottest queue's
// largest bucket that fits in half the hot/cold gap (never overshoots)
// to the coldest queue, up to max_moves_per_round per tick.
#pragma once

#include "app/host.h"
#include "app/server.h"

namespace papm::app {

struct RebalanceConfig {
  SimTime interval_ns = 2'000'000;  // monitor tick (2 ms)
  double trigger_ratio = 1.15;      // max/mean per-queue load to act on
  u32 max_moves_per_round = 4;
  u64 min_frames_per_round = 256;   // ignore idle/noise intervals
  // EWMA smoothing of per-bucket loads across ticks. Poisson arrivals
  // make a single 2 ms interval noisy (at 100 kreq/s a 4-queue spread
  // jitters past trigger_ratio constantly); acting on the smoothed load
  // means only persistent skew — not one interval's draw — triggers a
  // migration. 1.0 = no smoothing (act on the raw interval).
  double ewma_alpha = 0.25;
  // Modeled per-connection handoff cost, charged once to the source core
  // (detach, cache handoff) and once to the destination (adopt).
  SimTime per_conn_handoff_ns = 400;
};

class Rebalancer {
 public:
  Rebalancer(Host& host, KvServer& server, RebalanceConfig cfg = {});

  // Schedules the periodic monitor tick. stop() lets a pending tick
  // no-op; the Rebalancer must outlive the simulation run either way.
  void start();
  void stop() noexcept { running_ = false; }

  // Remaps `bucket` from queue `from` to queue `to` and migrates every
  // connection of that flow group. Exposed for targeted tests; tick()
  // calls this with monitor-chosen buckets.
  void migrate_bucket(u32 bucket, u32 from, u32 to);

  [[nodiscard]] u64 rounds() const noexcept { return rounds_; }
  [[nodiscard]] u64 bucket_moves() const noexcept { return bucket_moves_; }
  [[nodiscard]] u64 conns_moved() const noexcept { return conns_moved_; }

 private:
  void tick();

  Host& host_;
  KvServer& server_;
  RebalanceConfig cfg_;
  bool running_ = false;
  u64 rounds_ = 0;
  u64 bucket_moves_ = 0;
  u64 conns_moved_ = 0;
  u64 last_bucket_rx_[nic::Nic::kIndirEntries] = {};
  double ewma_[nic::Nic::kIndirEntries] = {};
  bool ewma_seeded_ = false;
  obs::Counter* m_rounds_ = nullptr;
  obs::Counter* m_moves_ = nullptr;
  obs::Counter* m_conns_moved_ = nullptr;
};

}  // namespace papm::app
