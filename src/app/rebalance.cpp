#include "app/rebalance.h"

#include <algorithm>
#include <vector>

namespace papm::app {

Rebalancer::Rebalancer(Host& host, KvServer& server, RebalanceConfig cfg)
    : host_(host), server_(server), cfg_(cfg) {
  obs::MetricRegistry& reg = host_.host_metrics();
  m_rounds_ = &reg.counter("rebalance.rounds");
  m_moves_ = &reg.counter("rebalance.bucket_moves");
  m_conns_moved_ = &reg.counter("rebalance.conns_moved");
}

void Rebalancer::start() {
  if (running_) return;
  running_ = true;
  // Seed the per-bucket baseline so the first tick diffs against "now",
  // not against whatever warmup traffic preceded start().
  auto& nic = host_.nic();
  for (u32 b = 0; b < nic::Nic::kIndirEntries; b++) {
    last_bucket_rx_[b] = nic.bucket_rx_frames(b);
  }
  host_.env().engine.schedule_in(cfg_.interval_ns, [this] { tick(); });
}

void Rebalancer::tick() {
  if (!running_) return;
  rounds_++;
  obs::inc(m_rounds_);

  auto& nic = host_.nic();
  const u32 nq = host_.datapaths();
  u64 total = 0;
  for (u32 b = 0; b < nic::Nic::kIndirEntries; b++) {
    const u64 cur = nic.bucket_rx_frames(b);
    const u64 d = cur - last_bucket_rx_[b];
    last_bucket_rx_[b] = cur;
    total += d;
    // Smooth per-bucket load across ticks so one interval's Poisson draw
    // cannot look like skew. The first qualifying interval seeds the
    // EWMA outright (no cold-start bias toward zero).
    ewma_[b] = ewma_seeded_
                   ? cfg_.ewma_alpha * static_cast<double>(d) +
                         (1.0 - cfg_.ewma_alpha) * ewma_[b]
                   : static_cast<double>(d);
  }

  if (nq > 1 && total >= cfg_.min_frames_per_round) {
    ewma_seeded_ = true;
    std::vector<double> qload(nq, 0.0);
    double smoothed_total = 0.0;
    for (u32 b = 0; b < nic::Nic::kIndirEntries; b++) {
      qload[nic.indirection(b)] += ewma_[b];
      smoothed_total += ewma_[b];
    }
    for (u32 move = 0; move < cfg_.max_moves_per_round; move++) {
      const u32 hot = static_cast<u32>(
          std::max_element(qload.begin(), qload.end()) - qload.begin());
      const u32 cold = static_cast<u32>(
          std::min_element(qload.begin(), qload.end()) - qload.begin());
      const double mean = smoothed_total / nq;
      if (hot == cold || qload[hot] < cfg_.trigger_ratio * mean) break;
      // The largest bucket on the hot queue that fits in half the
      // hot/cold gap: moving it narrows the gap without flipping the
      // imbalance to the other side.
      const double gap = qload[hot] - qload[cold];
      u32 best = nic::Nic::kIndirEntries;
      double best_load = 0.0;
      for (u32 b = 0; b < nic::Nic::kIndirEntries; b++) {
        if (nic.indirection(b) != hot) continue;
        if (ewma_[b] <= 0.0 || ewma_[b] * 2.0 > gap) continue;
        if (best == nic::Nic::kIndirEntries || ewma_[b] > best_load) {
          best = b;
          best_load = ewma_[b];
        }
      }
      if (best == nic::Nic::kIndirEntries) break;  // one mega-bucket: stuck
      migrate_bucket(best, hot, cold);
      qload[hot] -= best_load;
      qload[cold] += best_load;
    }
  }

  host_.env().engine.schedule_in(cfg_.interval_ns, [this] { tick(); });
}

void Rebalancer::migrate_bucket(u32 bucket, u32 from, u32 to) {
  if (from == to || from >= host_.datapaths() || to >= host_.datapaths()) {
    return;
  }
  auto& nic = host_.nic();
  net::TcpStack& src = host_.stack(from);
  net::TcpStack& dst = host_.stack(to);

  // Retire the source shard's open epoch first: its deferred publications
  // and held acks drain on the source core before any of the group's
  // requests can be processed on the destination — ack order per flow is
  // preserved across the handoff.
  server_.close_epoch(from);

  // The flow group = every connection whose 4-tuple hashes into `bucket`.
  // (The NIC hashes received frames as src=peer, dst=us.)
  std::vector<net::TcpConn*> moving;
  src.each_conn([&](net::TcpConn& c) {
    const u32 h = nic::rss_toeplitz(c.peer_ip(), nic.ip(), c.peer_port(),
                                    c.local_port());
    if (nic::Nic::rss_bucket_of(h) == bucket) moving.push_back(&c);
  });
  std::sort(moving.begin(), moving.end(),
            [](const net::TcpConn* a, const net::TcpConn* b) {
              return std::tuple(a->peer_ip(), a->peer_port(), a->local_port()) <
                     std::tuple(b->peer_ip(), b->peer_port(), b->local_port());
            });

  // Remap the table entry — the next received frame of the group DMAs
  // into the destination queue's pool — then hand the connection state
  // across. All of this runs inside the current event, so no packet can
  // observe a half-migrated group.
  nic.set_indirection(bucket, to);
  if (!moving.empty()) {
    host_.cpu().run_on(from, [&] {
      host_.env().clock().advance(cfg_.per_conn_handoff_ns *
                                  static_cast<SimTime>(moving.size()));
    });
    host_.cpu().run_on(to, [&] {
      for (net::TcpConn* c : moving) {
        host_.env().clock().advance(cfg_.per_conn_handoff_ns);
        dst.adopt(src.extract(c));
        server_.on_flow_migrated(*c, to);
      }
    });
    conns_moved_ += moving.size();
    obs::inc(m_conns_moved_, moving.size());
  }
  bucket_moves_++;
  obs::inc(m_moves_);
}

}  // namespace papm::app
