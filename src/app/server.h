// The storage server of §3's methodology: HTTP over TCP, busy-polling
// PASTE-style stack, one of four backends:
//
//   discard      — parse and drop; measures the networking-only RTT
//                  (Table 1 row 1).
//   raw_persist  — copy the body into PM and flush; the Figure 2
//                  "Net. + persist." application.
//   lsm          — the NoveLSM-like store with all data-management steps
//                  (Figure 2 "Net. + data mgmt. + persist."), each step
//                  toggleable via StoreKnobs for the Table 1 breakdown.
//   pktstore     — the paper's proposal: requests are parsed in place and
//                  their packets become the store.
//
// All backends use the zero-copy receive path (read_pkts) — PASTE served
// the baseline in the paper too — so backend differences are pure
// data-management differences.
//
// Scale-out (S1): on a multi-queue host the server runs one complete
// pipeline per datapath shard — its own listener on that shard's pinned
// TCP stack, its own connection states, and its own backend instance
// over the shard's private PM pool. RSS flow affinity makes every PUT
// land in the ingress core's shard (write-local); GETs consult the local
// shard first and fall back to the others (read-merge) — the client's
// deterministic per-key values make cross-shard duplicates byte-
// identical, so reads stay correct without hot-path sharing. DELETE
// erases everywhere; scans merge per-shard iterators with dedup. With
// one shard all of this degenerates to the classic single-pipeline
// server.
#pragma once

#include <deque>
#include <unordered_map>

#include "app/host.h"
#include "core/pktstore.h"
#include "http/http.h"
#include "obs/flightrec.h"
#include "obs/trace.h"
#include "repl/replicator.h"
#include "storage/lsm_store.h"

namespace papm::app {

enum class Backend { discard, raw_persist, lsm, pktstore };

[[nodiscard]] constexpr std::string_view to_string(Backend b) noexcept {
  switch (b) {
    case Backend::discard: return "discard";
    case Backend::raw_persist: return "raw_persist";
    case Backend::lsm: return "lsm";
    case Backend::pktstore: return "pktstore";
  }
  return "?";
}

struct ServerConfig {
  Backend backend = Backend::lsm;
  u16 port = 9000;
  storage::StoreKnobs knobs;                 // lsm backend
  bool lsm_wal = false;                      // lsm backend
  core::PktStoreOptions pkt_opts;            // pktstore backend
  bool collect_breakdown = true;
  // Record per-request stage spans into the host's per-shard TraceLogs
  // (rx/parse/checksum/copy/alloc+index/persist/tx). Requires
  // collect_breakdown for the data-management stages.
  bool trace = false;

  // --- Telemetry plane (runtime opt-in; fully inert with PAPM_OBS=OFF,
  // and an *armed but unqueried* admin plane costs the datapath nothing
  // — the endpoint branch only runs for admin targets). ----------------
  // Serve GET /stats, /metrics (Prometheus text) and /trace/recent on
  // the KV port, from merge_from() snapshots of the shared-nothing
  // registries/logs — the hot path is never locked or paused.
  bool admin = false;
  // Span cap for one /trace/recent response.
  // /trace/recent page size. Small by design: the page is assembled and
  // sent on a datapath core, so its bytes (copy + per-segment tx) are
  // the dominant term in the admin plane's p99 footprint — 32 spans is
  // one scrape page, the full log belongs in the bench-exit trace file.
  std::size_t trace_recent = 32;
  // Per-shard TraceLog ring capacity for long-running serving (0 keeps
  // the unbounded bench-exit behaviour). Wraps count obs.trace_dropped.
  std::size_t trace_capacity = 0;
  // PM-persistent flight recorder: a per-shard ring of the last
  // flightrec_capacity request records, written through the group-commit
  // path so recovery after a cut sees every acked op (docs/OBSERVABILITY.md).
  bool flight_recorder = false;
  u32 flightrec_capacity = 4096;
};

class KvServer {
 public:
  // The host must be PM-backed for every backend except discard.
  KvServer(Host& host, const ServerConfig& cfg);

  [[nodiscard]] u64 ops() const noexcept { return ops_; }
  // Requests dispatched by one shard's pipeline — the per-shard load the
  // rebalancer reports as the imbalance signal.
  [[nodiscard]] u64 shard_requests(u32 shard) const noexcept {
    return shard < shards_.size() ? shards_[shard].requests : 0;
  }

  // --- Flow-group migration hooks (app::Rebalancer) ---------------------
  // Re-homes `conn`'s server-side state onto `new_shard`'s pipeline after
  // its TCP state moved stacks (TcpStack::extract/adopt). Segments of a
  // request in flight across the migration boundary still live in the old
  // queue's packet pool; the pktstore PUT path copies those into the new
  // shard's pool before ingest (normalize_pkts), so store residency moves
  // with the flow.
  void on_flow_migrated(net::TcpConn& conn, u32 new_shard);
  // Retires `shard`'s open group-commit epoch as pinned CPU work. Called
  // by the rebalancer before detaching a flow group so deferred
  // publications and held acks drain on the source core — nothing is
  // stranded behind an epoch whose requests migrated away.
  void close_epoch(u32 shard);

  // --- Replication (src/repl/) ------------------------------------------
  // Attaches the primary-side Replicator: pktstore mutations then ack
  // only once locally durable AND remote-quorum durable (or released by
  // the degrade deadline). Null (the default) keeps the single-host ack
  // path, bit-identical to the pre-replication build — the gate branches
  // charge nothing when no replicator is attached.
  void set_replicator(repl::Replicator* r) noexcept { repl_ = r; }
  [[nodiscard]] repl::Replicator* replicator() const noexcept { return repl_; }
  // Added ack latency attributable to replication (submit -> remote
  // quorum), summed over quorum-gated ops; the bench_repl "repl tax".
  [[nodiscard]] u64 repl_tax_ns() const noexcept { return repl_tax_ns_; }
  [[nodiscard]] u64 repl_gated_ops() const noexcept {
    return repl_gated_ops_;
  }

  // Loads a key directly into a shard store, bypassing the network path.
  // The open-loop harness primes the whole keyspace this way so measured
  // GETs read real data instead of 404ing on a cold store; the charged
  // store time is discarded (priming is setup, not workload). No-op for
  // backends without an index (discard, raw_persist).
  bool prime(std::string_view key, std::span<const u8> value);

  [[nodiscard]] const storage::OpBreakdown& breakdown_sum() const noexcept {
    return breakdown_sum_;
  }
  [[nodiscard]] u64 breakdown_ops() const noexcept { return breakdown_ops_; }
  [[nodiscard]] u64 errors() const noexcept { return errors_; }

  // --- Telemetry plane ---------------------------------------------------
  // Admin requests served (/stats + /metrics + /trace/recent). Admin
  // traffic is deliberately excluded from ops()/shard_requests(): it must
  // not perturb the load-balance signal it reports on.
  [[nodiscard]] u64 admin_requests() const noexcept { return admin_requests_; }
  [[nodiscard]] obs::FlightRecorder* flight_recorder(u32 shard) noexcept {
    return shard < shards_.size() && shards_[shard].flightrec.has_value()
               ? &*shards_[shard].flightrec
               : nullptr;
  }
  // Records appended / ring overwrites summed across the shard recorders.
  [[nodiscard]] u64 flightrec_records() const noexcept {
    u64 n = 0;
    for (const auto& sh : shards_) {
      if (sh.flightrec.has_value()) n += sh.flightrec->seq();
    }
    return n;
  }
  [[nodiscard]] u64 flightrec_wraps() const noexcept {
    u64 n = 0;
    for (const auto& sh : shards_) {
      if (sh.flightrec.has_value()) n += sh.flightrec->wraps();
    }
    return n;
  }
  void reset_stats() {
    ops_ = 0;
    errors_ = 0;
    breakdown_sum_ = {};
    breakdown_ops_ = 0;
    repl_tax_ns_ = 0;
    repl_gated_ops_ = 0;
    for (auto& sh : shards_) sh.requests = 0;
  }

 private:
  // One backend pipeline per datapath shard (always exactly one per
  // shard; a single-queue host has one of these).
  struct Shard {
    // The LSM baseline allocates from its own general-purpose PM pool
    // (the user-space PM allocator of Table 1); the packet pool stays a
    // cheap freelist for NIC RX buffers either way.
    std::optional<pm::PmPool> store_pool;
    std::optional<storage::LsmStore> lsm;
    std::optional<core::PktStore> pktstore;
    // Group/epoch commit for this shard's datapath (lsm and pktstore
    // backends on a PM host): content fences deferred, publications
    // withheld, acks released at epoch close. A deadline watchdog event
    // closes an epoch whose request stream dried up, so deferred acks can
    // never stall a closed-loop client.
    std::optional<pm::FlushBatcher> batcher;
    bool watchdog_armed = false;
    // PM flight recorder (ServerConfig::flight_recorder): the last N
    // requests of this shard survive a power cut.
    std::optional<obs::FlightRecorder> flightrec;
    // raw_persist bump region (recycled; models the Fig.2 simple app).
    u64 raw_region = 0;
    u64 raw_off = 0;
    // Requests dispatched through this shard (load signal; plain counter
    // so it exists even with observability compiled out).
    u64 requests = 0;
    // Cached registrations in the shard's MetricRegistry.
    obs::Counter* m_requests = nullptr;
    obs::Counter* m_errors = nullptr;
    obs::Counter* m_parsed = nullptr;
    obs::Histogram* m_req_ns = nullptr;
    obs::Counter* m_admin = nullptr;
  };
  static constexpr u64 kRawRegion = 4u << 20;

  // Per-connection request assembly over zero-copy packets. The request
  // head (start line + headers) must fit in the first segment — true for
  // the paper's workloads; a slow path re-assembles otherwise.
  struct ConnState {
    u32 shard = 0;                   // ingress datapath (RSS decided)
    std::vector<net::PktBuf*> pkts;  // segments of the in-flight request
    std::size_t have_bytes = 0;
    // Parsed from the head (valid once head_parsed):
    bool head_parsed = false;
    http::Method method = http::Method::other;
    std::string key;
    std::size_t head_len = 0;   // bytes before the body, within payload
    std::size_t body_len = 0;   // Content-Length
    // Trace bookkeeping: NIC ingress of the first segment, and the
    // head-parse window (the rx span ends where the parse span begins).
    SimTime rx_start = 0;
    SimTime parse_ts = 0;
    SimTime parse_dur = 0;
  };

  // Quorum-gated client ack: respond() fires only once both the local
  // commit (epoch close or pass-through persist) and the replicator's
  // quorum callback have released it. Shared because either side can
  // finish first, on different event chains.
  struct ReplGate {
    net::TcpConn* conn = nullptr;
    int status = 200;
    u32 shard = 0;
    u64 req = 0;
    bool traced = false;
    bool local = false;
    bool remote = false;
    bool fired = false;
    bool degraded = false;
    SimTime t0 = 0;        // submit time (repl span start)
    SimTime local_at = 0;
    SimTime remote_at = 0;
  };
  void gate_release(const std::shared_ptr<ReplGate>& g);

  void on_accept(net::TcpConn& conn, u32 shard);
  // Schedules (or re-schedules) the epoch-deadline close for `shard`'s
  // open epoch; fires as pinned CPU work at open + max_deferral.
  void arm_epoch_watchdog(u32 shard);
  void epoch_watchdog_fire(u32 shard, u64 serial);
  // Schedules a drain check at now + idle_close_ns: if no newer op has
  // joined the shard's epoch by then, the burst drained (closed-loop
  // clients are all blocked on the held acks) and the epoch closes
  // without waiting out the full deadline. Stale checks no-op.
  void arm_epoch_drain_check(u32 shard);
  void on_readable(net::TcpConn& conn);
  bool try_parse_head(ConnState& st);
  // Copies any buffered segment whose PktBuf came from another shard's
  // pool into `st.shard`'s pool (a request spanning a migration). The
  // pktstore chain adopts data into its own pool, so foreign buffers must
  // not reach put_pkts. No-op for requests that never crossed shards.
  Status normalize_pkts(ConnState& st);
  // Serves /stats, /metrics and /trace/recent from merged snapshots.
  // Returns true when the request was an admin target and a response
  // (including the connection-state reset) was fully handled.
  bool admin_dispatch(net::TcpConn& conn, ConnState& st);
  // Appends the request's record to the shard's flight recorder (no-op
  // without one). Runs before the ack path so the record's publication
  // rides the same commit epoch that releases the ack.
  void flight_record(ConnState& st, const storage::OpBreakdown* bd,
                     u64 req, int status);
  void dispatch(net::TcpConn& conn, ConnState& st);
  // GET routing: the shard holding `key`, preferring `home` (the ingress
  // shard, where RSS puts all of the key's PUTs from this client).
  [[nodiscard]] Shard* find_pkt_shard(std::string_view key, u32 home);
  [[nodiscard]] std::vector<u8> scan_response(std::string_view target);
  void respond(net::TcpConn& conn, int status, std::span<const u8> body = {});
  void respond_value_zero_copy(net::TcpConn& conn, Shard& sh,
                               std::string_view key);

  Host& host_;
  ServerConfig cfg_;
  std::vector<Shard> shards_;
  repl::Replicator* repl_ = nullptr;
  u64 repl_tax_ns_ = 0;
  u64 repl_gated_ops_ = 0;

  std::unordered_map<net::TcpConn*, ConnState> conns_;
  u64 ops_ = 0;
  u64 errors_ = 0;
  u64 admin_requests_ = 0;
  u64 next_req_ = 1;  // trace request ids (monotonic across shards)
  storage::OpBreakdown breakdown_sum_{};
  u64 breakdown_ops_ = 0;
};

}  // namespace papm::app
