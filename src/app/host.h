// A simulated machine: CPU cores, packet memory (DRAM or PM), NIC and
// TCP stack, wired to a fabric.
//
// Scale-out shape (S1): a host with N cores runs N independent
// *datapath shards*, one per NIC queue — a pinned core busy-polling its
// own RX/TX descriptor ring, a private PktBufPool over a private PM
// arena shard, and a private TcpStack instance. The NIC's RSS engine
// steers each flow to one queue, so on the hot path no packet buffer,
// TCP connection or pool freelist is ever shared between cores; the
// only shared resources are the wire itself and the PM device capacity.
// With one core (the paper's configuration) this degenerates to exactly
// the single-queue datapath of the Figure 2 experiments.
#pragma once

#include <deque>
#include <memory>
#include <optional>

#include "net/tcp.h"
#include "net/udp.h"
#include "nic/nic.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/cpu.h"

namespace papm::app {

struct HostConfig {
  u32 ip = 0;
  // Server: busy-polling cores, one datapath shard each (the paper's
  // configuration is cores = 1). Client: cores = 0 models the multi-core
  // client machine whose queueing the paper does not account to the
  // server — it gets a single unpinned datapath.
  int cores = 1;
  // NIC RX/TX queue pairs; 0 = one per core (min 1).
  u32 rx_queues = 0;
  bool busy_poll = false;
  // Packet buffers in PM (PASTE) vs DRAM.
  bool pm_backed = false;
  u64 pm_size = 512u << 20;
  nic::Nic::Options nic;
  u32 rcv_buf = 1 << 20;
};

class Host {
 public:
  Host(sim::Env& env, nic::Fabric& fabric, const HostConfig& cfg)
      : env_(env), cpu_(env, cfg.cores) {
    const u32 nshards =
        cfg.rx_queues != 0 ? cfg.rx_queues
                           : static_cast<u32>(std::max(1, cfg.cores));
    for (u32 i = 0; i < nshards; i++) {
      shards_.emplace_back();
      shards_.back().trace.set_track(i);
    }

    if (cfg.pm_backed) {
      pm_dev_.emplace(env, cfg.pm_size);
      pm_dev_->set_metrics(&host_metrics_);
      // Carve the device's data area into per-shard pool spans.
      const u64 base = pm_dev_->data_base();
      const u64 span =
          ((cfg.pm_size - base) / nshards) / kCacheLine * kCacheLine;
      for (u32 i = 0; i < nshards; i++) {
        Shard& sh = shards_[i];
        sh.pm_pool.emplace(pm::PmPool::create(
            *pm_dev_, i == 0 ? std::string("pkts") : "pkts.s" + std::to_string(i),
            base + i * span, span));
        // Packet pools are freelists, not general allocators (§4.2).
        sh.pm_pool->set_charges(env.cost.pool_alloc_ns,
                                env.cost.pool_alloc_ns / 2);
        sh.pm_arena.emplace(*pm_dev_, *sh.pm_pool);
        sh.arena = &*sh.pm_arena;
      }
    } else {
      for (auto& sh : shards_) {
        sh.heap_arena.emplace(env);
        sh.arena = &*sh.heap_arena;
      }
    }

    for (u32 i = 0; i < nshards; i++) {
      shards_[i].pool.emplace(env, *shards_[i].arena);
    }
    nic_.emplace(env, fabric, cfg.ip, *shards_[0].pool, cfg.nic);
    for (u32 i = 1; i < nshards; i++) nic_->add_queue(*shards_[i].pool);
    nic_->set_metrics(&host_metrics_);
    for (u32 i = 0; i < nshards; i++) {
      nic_->set_queue_metrics(i, &shards_[i].metrics);
    }

    for (u32 i = 0; i < nshards; i++) {
      net::TcpStack::Options so;
      so.ip = cfg.ip;
      so.busy_poll = cfg.busy_poll;
      so.csum_offload_tx = cfg.nic.csum_offload_tx;
      so.csum_offload_rx = cfg.nic.csum_offload_rx;
      so.rcv_buf = cfg.rcv_buf;
      // Distinct ephemeral ranges keep active opens collision-free.
      so.ephemeral_base = static_cast<u16>(33000 + 2000 * i);
      // Pin each shard to its core only in the multi-queue regime; the
      // single-queue datapath keeps the classic earliest-free scheduling
      // (bit-identical to the paper-configuration experiments).
      so.core = nshards > 1 ? static_cast<int>(i) : -1;
      so.metrics = &shards_[i].metrics;
      shards_[i].stack.emplace(env, *nic_, *shards_[i].pool, so);
      shards_[i].stack->attach_cpu(cpu_);
    }

    net::UdpStack::Options uo;
    uo.ip = cfg.ip;
    uo.kernel_bypass = cfg.busy_poll;  // bypass hosts poll datagrams too
    uo.csum_offload_tx = cfg.nic.csum_offload_tx;
    uo.csum_offload_rx = cfg.nic.csum_offload_rx;
    udp_.emplace(env, *nic_, *shards_[0].pool, uo);
    udp_->attach_cpu(cpu_);

    for (u32 i = 0; i < nshards; i++) {
      nic_->set_queue_sink(i, [this, i](net::PktBuf* pb) {
        if (pb->l4_proto == net::kIpProtoUdp) {
          udp_->rx(pb);  // datagrams are steered to queue 0
        } else {
          shards_[i].stack->rx(pb);
        }
      });
    }
  }

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  [[nodiscard]] sim::Env& env() noexcept { return env_; }
  [[nodiscard]] sim::HostCpu& cpu() noexcept { return cpu_; }
  // Datapath shards. The index-less accessors return shard 0 — the whole
  // host on a single-queue machine.
  [[nodiscard]] u32 datapaths() const noexcept {
    return static_cast<u32>(shards_.size());
  }
  [[nodiscard]] net::PktBufPool& pool(u32 shard = 0) noexcept {
    return *shards_[shard].pool;
  }
  [[nodiscard]] net::TcpStack& stack(u32 shard = 0) noexcept {
    return *shards_[shard].stack;
  }
  [[nodiscard]] pm::PmPool& pm_pool(u32 shard = 0) { return *shards_[shard].pm_pool; }
  [[nodiscard]] net::UdpStack& udp() noexcept { return *udp_; }
  [[nodiscard]] nic::Nic& nic() noexcept { return *nic_; }
  [[nodiscard]] bool pm_backed() const noexcept { return pm_dev_.has_value(); }
  [[nodiscard]] pm::PmDevice& pm_device() { return *pm_dev_; }

  // --- Observability ----------------------------------------------------
  // Shared-nothing like the datapath: one registry + trace log per shard,
  // plus a host-level registry for shard-less subsystems (the PM device,
  // NIC drop counters). Merge at report time only.
  [[nodiscard]] obs::MetricRegistry& metrics(u32 shard = 0) noexcept {
    return shards_[shard].metrics;
  }
  [[nodiscard]] obs::MetricRegistry& host_metrics() noexcept {
    return host_metrics_;
  }
  [[nodiscard]] obs::TraceLog& trace(u32 shard = 0) noexcept {
    return shards_[shard].trace;
  }
  // Report-time views: a fresh registry/log holding the merge of the
  // host-level registry and every shard.
  [[nodiscard]] obs::MetricRegistry merged_metrics() const {
    obs::MetricRegistry m;
    m.merge_from(host_metrics_);
    for (const auto& sh : shards_) m.merge_from(sh.metrics);
    return m;
  }
  [[nodiscard]] obs::TraceLog merged_trace() const {
    obs::TraceLog t;
    for (const auto& sh : shards_) t.merge_from(sh.trace);
    return t;
  }
  // Warmup/measure boundary: zero every value, keep registrations (and
  // the pointers subsystems cached) valid; drop recorded spans.
  void reset_obs() noexcept {
    host_metrics_.reset_values();
    for (auto& sh : shards_) {
      sh.metrics.reset_values();
      sh.trace.clear();
    }
    if (pm_dev_.has_value()) pm_dev_->obs_begin_epoch();
  }

 private:
  struct Shard {
    std::optional<pm::PmPool> pm_pool;
    std::optional<net::PmArena> pm_arena;
    std::optional<net::HeapArena> heap_arena;
    net::BufArena* arena = nullptr;
    std::optional<net::PktBufPool> pool;
    std::optional<net::TcpStack> stack;
    obs::MetricRegistry metrics;
    obs::TraceLog trace;
  };

  sim::Env& env_;
  sim::HostCpu cpu_;
  obs::MetricRegistry host_metrics_;
  std::optional<pm::PmDevice> pm_dev_;
  std::deque<Shard> shards_;  // deque: Shard is pinned (non-movable)
  std::optional<nic::Nic> nic_;
  std::optional<net::UdpStack> udp_;
};

}  // namespace papm::app
