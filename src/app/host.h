// A simulated machine: CPU cores, packet memory (DRAM or PM), NIC and
// TCP stack, wired to a fabric.
#pragma once

#include <memory>
#include <optional>

#include "net/tcp.h"
#include "net/udp.h"
#include "nic/nic.h"
#include "sim/cpu.h"

namespace papm::app {

struct HostConfig {
  u32 ip = 0;
  // Server: one busy-polling core (the paper's configuration). Client:
  // cores = 0 models the multi-core client machine whose queueing the
  // paper does not account to the server.
  int cores = 1;
  bool busy_poll = false;
  // Packet buffers in PM (PASTE) vs DRAM.
  bool pm_backed = false;
  u64 pm_size = 512u << 20;
  nic::Nic::Options nic;
  u32 rcv_buf = 1 << 20;
};

class Host {
 public:
  Host(sim::Env& env, nic::Fabric& fabric, const HostConfig& cfg)
      : env_(env), cpu_(env, cfg.cores) {
    if (cfg.pm_backed) {
      pm_dev_.emplace(env, cfg.pm_size);
      pm_pool_.emplace(pm::PmPool::create(*pm_dev_, "pkts", pm_dev_->data_base(),
                                          cfg.pm_size - 4096));
      // Packet pools are freelists, not general allocators (§4.2).
      pm_pool_->set_charges(env.cost.pool_alloc_ns, env.cost.pool_alloc_ns / 2);
      pm_arena_.emplace(*pm_dev_, *pm_pool_);
      arena_ = &*pm_arena_;
    } else {
      heap_arena_.emplace(env);
      arena_ = &*heap_arena_;
    }
    pool_.emplace(env, *arena_);
    nic_.emplace(env, fabric, cfg.ip, *pool_, cfg.nic);
    net::TcpStack::Options so;
    so.ip = cfg.ip;
    so.busy_poll = cfg.busy_poll;
    so.csum_offload_tx = cfg.nic.csum_offload_tx;
    so.csum_offload_rx = cfg.nic.csum_offload_rx;
    so.rcv_buf = cfg.rcv_buf;
    stack_.emplace(env, *nic_, *pool_, so);
    stack_->attach_cpu(cpu_);
    net::UdpStack::Options uo;
    uo.ip = cfg.ip;
    uo.kernel_bypass = cfg.busy_poll;  // bypass hosts poll datagrams too
    uo.csum_offload_tx = cfg.nic.csum_offload_tx;
    uo.csum_offload_rx = cfg.nic.csum_offload_rx;
    udp_.emplace(env, *nic_, *pool_, uo);
    udp_->attach_cpu(cpu_);
    nic_->set_sink([this](net::PktBuf* pb) {
      if (pb->l4_proto == net::kIpProtoUdp) {
        udp_->rx(pb);
      } else {
        stack_->rx(pb);
      }
    });
  }

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  [[nodiscard]] sim::Env& env() noexcept { return env_; }
  [[nodiscard]] sim::HostCpu& cpu() noexcept { return cpu_; }
  [[nodiscard]] net::PktBufPool& pool() noexcept { return *pool_; }
  [[nodiscard]] net::TcpStack& stack() noexcept { return *stack_; }
  [[nodiscard]] net::UdpStack& udp() noexcept { return *udp_; }
  [[nodiscard]] nic::Nic& nic() noexcept { return *nic_; }
  [[nodiscard]] bool pm_backed() const noexcept { return pm_dev_.has_value(); }
  [[nodiscard]] pm::PmDevice& pm_device() { return *pm_dev_; }
  [[nodiscard]] pm::PmPool& pm_pool() { return *pm_pool_; }

 private:
  sim::Env& env_;
  sim::HostCpu cpu_;
  std::optional<pm::PmDevice> pm_dev_;
  std::optional<pm::PmPool> pm_pool_;
  std::optional<net::PmArena> pm_arena_;
  std::optional<net::HeapArena> heap_arena_;
  net::BufArena* arena_ = nullptr;
  std::optional<net::PktBufPool> pool_;
  std::optional<nic::Nic> nic_;
  std::optional<net::TcpStack> stack_;
  std::optional<net::UdpStack> udp_;
};

}  // namespace papm::app
