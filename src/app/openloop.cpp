#include "app/openloop.h"

namespace papm::app {

OpenLoopClient::OpenLoopClient(Host& host, OpenLoopConfig cfg)
    : host_(host), cfg_(std::move(cfg)) {
  const double per_conn_rate =
      cfg_.rate_rps / std::max(1, cfg_.connections);
  mean_gap_ns_ = 1e9 / std::max(per_conn_rate, 1e-9);
  obs::MetricRegistry& reg = host_.metrics(0);
  m_arrivals_ = &reg.counter("client.arrivals");
  m_completed_ = &reg.counter("client.requests");
  m_misses_ = &reg.counter("client.deadline_misses");
  m_http_errors_ = &reg.counter("client.http_errors");
  m_sojourn_ns_ = &reg.histogram("client.sojourn_ns");
}

std::vector<u8> OpenLoopClient::value_for(u64 key_idx) const {
  // Same per-key deterministic values as WrkClient, so both generators
  // can prime/read the same store contents.
  Rng rng(cfg_.seed * 1315423911ULL + key_idx);
  std::vector<u8> v(cfg_.value_size);
  for (auto& b : v) b = static_cast<u8>(rng.next());
  return v;
}

void OpenLoopClient::start() {
  const SimTime stagger =
      cfg_.connect_window_ns / std::max(1, cfg_.connections);
  for (int i = 0; i < cfg_.connections; i++) {
    auto ctx = std::make_unique<ConnCtx>();
    ctx->rng = Rng(cfg_.seed + static_cast<u64>(i) * 7919);
    if (cfg_.zipf_theta > 0.0) {
      ctx->zipf.emplace(cfg_.keyspace, cfg_.zipf_theta,
                        cfg_.seed + static_cast<u64>(i) * 104729);
    }
    ConnCtx* raw = ctx.get();
    conns_.push_back(std::move(ctx));
    host_.env().engine.schedule_in(
        static_cast<SimTime>(i) * stagger, [this, raw] {
          raw->conn = host_.stack().connect(cfg_.server_ip, cfg_.port);
          raw->conn->on_established = [this, raw](net::TcpConn&) {
            // The Poisson process starts one gap after establishment —
            // connections don't all fire their first request at once.
            host_.env().engine.schedule_in(
                static_cast<SimTime>(raw->rng.next_exponential(mean_gap_ns_)),
                [this, raw] { arrive(*raw); });
          };
          raw->conn->on_readable = [this, raw](net::TcpConn&) {
            on_readable(*raw);
          };
        });
  }
}

void OpenLoopClient::arrive(ConnCtx& ctx) {
  if (stopped_) return;
  const SimTime now = host_.env().now();
  // Open loop: the successor is scheduled first, anchored at this
  // arrival's own timestamp — before any CPU work is charged — so the
  // offered-load process stays an exact Poisson process no matter how
  // long request processing takes.
  host_.env().engine.schedule_in(
      static_cast<SimTime>(ctx.rng.next_exponential(mean_gap_ns_)),
      [this, &ctx] { arrive(ctx); });
  arrivals_++;
  obs::inc(m_arrivals_);
  if (!ctx.in_flight) {
    // Issue through the host CPU so build/send work is charged to the
    // client machine (a scope), not to the global event clock — raw
    // advances here would dilate the whole simulation's timeline at
    // high aggregate arrival rates.
    host_.cpu().run([&] { issue(ctx, now); });
  } else {
    // The connection is busy: the request waits its turn (and the wait
    // counts toward its sojourn time).
    ctx.pending.push_back(now);
  }
}

void OpenLoopClient::issue(ConnCtx& ctx, SimTime arrival) {
  if (ctx.conn == nullptr ||
      ctx.conn->state() != net::TcpState::established) {
    return;
  }
  auto& env = host_.env();
  ctx.current_arrival = arrival;
  ctx.in_flight = true;

  const u64 key_idx = ctx.zipf.has_value() ? ctx.zipf->next()
                                           : ctx.rng.next_below(cfg_.keyspace);
  const bool is_get = ctx.rng.next_double() < cfg_.get_ratio;
  ctx.current_key = key_idx;
  ctx.current_is_put = !is_get;

  env.clock().advance(env.cost.scaled(env.cost.client_http_build_ns));
  http::Request req;
  req.method = is_get ? http::Method::get : http::Method::put;
  req.target = "/kv/key" + std::to_string(key_idx);
  if (!is_get) req.body = value_for(key_idx);
  (void)ctx.conn->send(http::serialize(req));
}

void OpenLoopClient::on_readable(ConnCtx& ctx) {
  auto& env = host_.env();
  std::vector<u8> buf(4096);
  std::size_t n;
  while ((n = ctx.conn->read(buf)) > 0) {
    const auto resp = ctx.parser.feed(std::span<const u8>(buf.data(), n));
    if (!resp.has_value()) continue;
    env.clock().advance(env.cost.scaled(env.cost.client_http_parse_ns));
    if (resp->status >= 400) {
      http_errors_++;
      obs::inc(m_http_errors_);
    }
    if (ctx.in_flight) {
      const SimTime sojourn = env.now() - ctx.current_arrival;
      sojourn_.add(static_cast<double>(sojourn));
      completed_++;
      ctx.in_flight = false;
      if (resp->status < 400 && ctx.current_is_put && on_put_ok) {
        on_put_ok(ctx.current_key);
      }
      obs::inc(m_completed_);
      obs::observe(m_sojourn_ns_, sojourn);
      if (sojourn > cfg_.deadline_ns) {
        misses_++;
        obs::inc(m_misses_);
      }
    }
    // Drain the FIFO of arrivals that queued while this one was out.
    if (!ctx.pending.empty()) {
      const SimTime next_arrival = ctx.pending.front();
      ctx.pending.pop_front();
      issue(ctx, next_arrival);
    }
    return;  // one response per readable burst in practice
  }
}

}  // namespace papm::app
