#include "app/harness.h"

namespace papm::app {

namespace {
constexpr u32 kClientIp = 0x0a000001;
constexpr u32 kServerIp = 0x0a000002;
}  // namespace

RunResult run_experiment(const RunConfig& cfg) {
  sim::Env env;
  env.cost = cfg.cost;
  env.rng = Rng(cfg.seed);

  nic::Fabric fabric(env, cfg.fabric);

  HostConfig server_cfg;
  server_cfg.ip = kServerIp;
  server_cfg.cores = cfg.server_cores;
  server_cfg.busy_poll = true;
  server_cfg.pm_backed = true;
  server_cfg.pm_size = cfg.pm_size;
  server_cfg.nic = cfg.nic;
  Host server_host(env, fabric, server_cfg);

  HostConfig client_cfg;
  client_cfg.ip = kClientIp;
  client_cfg.cores = 0;  // the client machine is not the bottleneck
  client_cfg.busy_poll = false;
  client_cfg.nic = cfg.nic;
  Host client_host(env, fabric, client_cfg);

  ServerConfig scfg;
  scfg.backend = cfg.backend;
  scfg.knobs = cfg.knobs;
  scfg.lsm_wal = cfg.lsm_wal;
  scfg.pkt_opts = cfg.pkt_opts;
  scfg.trace = cfg.trace;
  KvServer server(server_host, scfg);

  ClientConfig ccfg;
  ccfg.server_ip = kServerIp;
  ccfg.connections = cfg.connections;
  ccfg.value_size = cfg.value_size;
  ccfg.get_ratio = cfg.get_ratio;
  ccfg.keyspace = cfg.keyspace;
  ccfg.zipf_theta = cfg.zipf_theta;
  ccfg.seed = cfg.seed;
  WrkClient client(client_host, ccfg);
  client.set_tracing(cfg.trace);

  client.start();
  env.engine.run_until(cfg.warmup_ns);
  client.reset_stats();
  server.reset_stats();
  // Warmup/measure boundary: zero every counter and span so the exported
  // observability covers exactly the measurement window.
  server_host.reset_obs();
  client_host.reset_obs();
  const SimTime busy_before = server_host.cpu().busy_ns();

  env.engine.run_until(cfg.warmup_ns + cfg.measure_ns);
  client.stop();

  RunResult r;
  r.rtt = client.latencies();
  r.ops = client.completed();
  r.kreq_per_s = static_cast<double>(client.completed()) /
                 (static_cast<double>(cfg.measure_ns) / 1e9) / 1000.0;
  if (server.breakdown_ops() > 0) {
    r.avg_breakdown = server.breakdown_sum();
    r.avg_breakdown /= static_cast<SimTime>(server.breakdown_ops());
  }
  r.server_cpu_util =
      static_cast<double>(server_host.cpu().busy_ns() - busy_before) /
      static_cast<double>(cfg.measure_ns * std::max(1, cfg.server_cores));
  r.server_errors = server.errors() + client.http_errors();
  r.retransmits_hint = fabric.dropped();

  r.flush = server_host.pm_device().obs_epoch();
  if (cfg.collect_metrics) {
    // Server and client are distinct machines: report them as separate
    // sections so same-named metrics (http.parse_errors) don't merge.
    const obs::MetricRegistry sm = server_host.merged_metrics();
    const obs::MetricRegistry cm = client_host.merged_metrics();
    r.metrics_report =
        "== server ==\n" + sm.report() + "== client ==\n" + cm.report();
    r.metrics_json =
        "{\"server\": " + sm.to_json() + ", \"client\": " + cm.to_json() + "}";
  }
  if (cfg.trace) {
    obs::TraceLog merged = server_host.merged_trace();
    merged.merge_from(client.trace());
    r.attribution = obs::attribute(merged);
    r.trace_json = obs::chrome_trace_json(merged);
  }
  return r;
}

}  // namespace papm::app
