#include "app/harness.h"

#include <map>

#include "repl/replica.h"

namespace papm::app {

namespace {
constexpr u32 kClientIp = 0x0a000001;
constexpr u32 kServerIp = 0x0a000002;
// Backup hosts for cfg.repl: 10.0.0.241+, clear of clients and server.
constexpr u32 kReplicaIpBase = 0x0a0000f1;
// Open-loop client hosts: 10.1.0.x, clear of the closed-loop pair above.
constexpr u32 kOpenLoopClientBase = 0x0a010000;
// Connections one client host may open (u16 ephemeral ports from 33000
// leave ~32k; half that keeps a comfortable margin).
constexpr int kMaxConnsPerClientHost = 16'000;

// Admin host: 10.0.0.3, a dedicated machine for the scrape probe so its
// (tiny) client-side costs never touch the load generators.
constexpr u32 kAdminIp = 0x0a000003;

// Periodic scrape of the admin plane — the Prometheus-sidecar role. One
// connection cycling GET /stats -> /metrics -> /trace/recent at a fixed
// period, sharing the fabric and the server's datapath cores with the
// measured load; whatever it costs the tail is the admin overhead.
class AdminProbe {
 public:
  AdminProbe(Host& host, u32 server_ip, u16 port, SimTime period)
      : host_(host), server_ip_(server_ip), port_(port), period_(period) {}

  void start() {
    conn_ = host_.stack().connect(server_ip_, port_);
    conn_->on_established = [this](net::TcpConn&) { tick(); };
    conn_->on_readable = [this](net::TcpConn&) { on_readable(); };
  }
  void stop() noexcept { stopped_ = true; }
  [[nodiscard]] u64 scrapes() const noexcept { return scrapes_; }
  [[nodiscard]] u64 bytes() const noexcept { return bytes_; }
  void reset_stats() noexcept { scrapes_ = bytes_ = 0; }

 private:
  void tick() {
    if (stopped_ || conn_ == nullptr ||
        conn_->state() != net::TcpState::established) {
      return;
    }
    host_.env().engine.schedule_in(period_, [this] { tick(); });
    if (in_flight_) return;  // slow scrape: skip a beat, never pipeline
    in_flight_ = true;
    static constexpr const char* kTargets[3] = {"/stats", "/metrics",
                                                "/trace/recent"};
    auto& env = host_.env();
    env.clock().advance(env.cost.scaled(env.cost.client_http_build_ns));
    http::Request req;
    req.method = http::Method::get;
    req.target = kTargets[next_++ % 3];
    (void)conn_->send(http::serialize(req));
  }
  void on_readable() {
    std::vector<u8> buf(4096);
    std::size_t n;
    while ((n = conn_->read(buf)) > 0) {
      const auto resp = parser_.feed(std::span<const u8>(buf.data(), n));
      if (!resp.has_value()) continue;
      in_flight_ = false;
      scrapes_++;
      bytes_ += resp->body.size();
    }
  }

  Host& host_;
  u32 server_ip_;
  u16 port_;
  SimTime period_;
  net::TcpConn* conn_ = nullptr;
  http::ResponseParser parser_;
  std::size_t next_ = 0;
  bool in_flight_ = false;
  bool stopped_ = false;
  u64 scrapes_ = 0;
  u64 bytes_ = 0;
};

// max/mean of the per-shard request counts (1.0 when even or trivial).
double shard_imbalance(const std::vector<u64>& reqs) {
  if (reqs.size() < 2) return 1.0;
  u64 total = 0, peak = 0;
  for (u64 r : reqs) {
    total += r;
    peak = std::max(peak, r);
  }
  if (total == 0) return 1.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(reqs.size());
  return static_cast<double>(peak) / mean;
}
}  // namespace

RunResult run_experiment(const RunConfig& cfg) {
  sim::Env env;
  env.cost = cfg.cost;
  env.rng = Rng(cfg.seed);

  nic::Fabric fabric(env, cfg.fabric);

  HostConfig server_cfg;
  server_cfg.ip = kServerIp;
  server_cfg.cores = cfg.server_cores;
  server_cfg.busy_poll = true;
  server_cfg.pm_backed = true;
  server_cfg.pm_size = cfg.pm_size;
  server_cfg.nic = cfg.nic;
  Host server_host(env, fabric, server_cfg);

  HostConfig client_cfg;
  client_cfg.ip = kClientIp;
  client_cfg.cores = 0;  // the client machine is not the bottleneck
  client_cfg.busy_poll = false;
  client_cfg.nic = cfg.nic;
  Host client_host(env, fabric, client_cfg);

  ServerConfig scfg;
  scfg.backend = cfg.backend;
  scfg.knobs = cfg.knobs;
  scfg.lsm_wal = cfg.lsm_wal;
  scfg.pkt_opts = cfg.pkt_opts;
  scfg.trace = cfg.trace;
  scfg.trace_capacity = cfg.trace_capacity;
  scfg.flight_recorder = cfg.flight_recorder;
  scfg.flightrec_capacity = cfg.flightrec_capacity;
  KvServer server(server_host, scfg);

  // Replication testbed: R backup hosts plus the primary-side forwarder.
  std::vector<std::unique_ptr<repl::ReplicaNode>> replicas;
  std::optional<repl::Replicator> replicator;
  if (cfg.repl && repl::kReplCompiled && cfg.backend == Backend::pktstore) {
    std::vector<u32> peer_ips;
    for (u32 i = 0; i < cfg.repl_replicas; i++) {
      repl::ReplicaConfig rc;
      rc.ip = kReplicaIpBase + i;
      rc.primary_ip = kServerIp;
      rc.index = i;
      rc.opts = cfg.repl_opts;
      rc.store_opts = cfg.pkt_opts;
      replicas.push_back(std::make_unique<repl::ReplicaNode>(env, fabric, rc));
      peer_ips.push_back(rc.ip);
    }
    replicator.emplace(env, server_host.udp(), cfg.repl_opts,
                       std::move(peer_ips));
    replicator->start_heartbeats();
    server.set_replicator(&*replicator);
  }

  ClientConfig ccfg;
  ccfg.server_ip = kServerIp;
  ccfg.connections = cfg.connections;
  ccfg.value_size = cfg.value_size;
  ccfg.get_ratio = cfg.get_ratio;
  ccfg.keyspace = cfg.keyspace;
  ccfg.zipf_theta = cfg.zipf_theta;
  ccfg.seed = cfg.seed;
  WrkClient client(client_host, ccfg);
  client.set_tracing(cfg.trace);

  std::optional<Rebalancer> rebalancer;
  if (cfg.rebalance && cfg.server_cores > 1) {
    rebalancer.emplace(server_host, server, cfg.rebalance_cfg);
    rebalancer->start();
  }

  client.start();
  env.engine.run_until(cfg.warmup_ns);
  client.reset_stats();
  server.reset_stats();
  // Warmup/measure boundary: zero every counter and span so the exported
  // observability covers exactly the measurement window. The replica
  // hosts' logs too — a stitched trace must not carry warmup-era apply
  // spans that no longer have a primary-side counterpart.
  server_host.reset_obs();
  client_host.reset_obs();
  for (auto& node : replicas) node->trace().clear();
  const SimTime busy_before = server_host.cpu().busy_ns();

  env.engine.run_until(cfg.warmup_ns + cfg.measure_ns);
  client.stop();

  RunResult r;
  r.rtt = client.latencies();
  r.ops = client.completed();
  r.kreq_per_s = static_cast<double>(client.completed()) /
                 (static_cast<double>(cfg.measure_ns) / 1e9) / 1000.0;
  if (server.breakdown_ops() > 0) {
    r.avg_breakdown = server.breakdown_sum();
    r.avg_breakdown /= static_cast<SimTime>(server.breakdown_ops());
  }
  r.server_cpu_util =
      static_cast<double>(server_host.cpu().busy_ns() - busy_before) /
      static_cast<double>(cfg.measure_ns * std::max(1, cfg.server_cores));
  r.server_errors = server.errors() + client.http_errors();
  r.retransmits_hint = fabric.dropped();
  for (u32 i = 0; i < server_host.datapaths(); i++) {
    r.shard_requests.push_back(server.shard_requests(i));
  }
  r.imbalance = shard_imbalance(r.shard_requests);
  if (rebalancer.has_value()) {
    rebalancer->stop();
    r.rebalance_rounds = rebalancer->rounds();
    r.bucket_moves = rebalancer->bucket_moves();
    r.conns_migrated = rebalancer->conns_moved();
  }

  if (replicator.has_value()) {
    r.repl_forwards = replicator->forwards();
    r.repl_acks_rx = replicator->acks_rx();
    r.repl_retransmits = replicator->retransmits();
    r.repl_degraded_acks = replicator->degraded_acks();
    if (server.repl_gated_ops() > 0) {
      r.repl_tax_ns = server.repl_tax_ns() / server.repl_gated_ops();
    }
  }

  r.flush = server_host.pm_device().obs_epoch();
  if (cfg.collect_metrics) {
    // Server and client are distinct machines: report them as separate
    // sections so same-named metrics (http.parse_errors) don't merge.
    const obs::MetricRegistry sm = server_host.merged_metrics();
    const obs::MetricRegistry cm = client_host.merged_metrics();
    r.metrics_report =
        "== server ==\n" + sm.report() + "== client ==\n" + cm.report();
    r.metrics_json =
        "{\"server\": " + sm.to_json() + ", \"client\": " + cm.to_json() + "}";
  }
  if (cfg.trace) {
    obs::TraceLog merged = server_host.merged_trace();
    merged.merge_from(client.trace());
    // Cross-host stitching: the replicas' apply spans carry the primary's
    // trace ids, so merging their logs puts primary, client and replicas
    // in one Perfetto trace — the quorum tax as a cross-track span.
    for (const auto& node : replicas) merged.merge_from(node->trace());
    r.attribution = obs::attribute(merged);
    r.trace_json = obs::chrome_trace_json(merged);
    r.trace_dropped = merged.dropped();
  }
  r.flightrec_records = server.flightrec_records();
  r.flightrec_wraps = server.flightrec_wraps();
  return r;
}

FailoverResult run_failover(const FailoverConfig& cfg) {
  FailoverResult r;
  if (!repl::kReplCompiled) return r;

  sim::Env env;
  env.cost = cfg.cost;
  env.rng = Rng(cfg.seed);
  nic::Fabric fabric(env, cfg.fabric);

  HostConfig server_cfg;
  server_cfg.ip = kServerIp;
  server_cfg.cores = cfg.server_cores;
  server_cfg.busy_poll = true;
  server_cfg.pm_backed = true;
  server_cfg.pm_size = cfg.pm_size;
  server_cfg.nic = cfg.nic;
  Host server_host(env, fabric, server_cfg);

  ServerConfig scfg;
  scfg.backend = Backend::pktstore;
  scfg.pkt_opts = cfg.pkt_opts;
  KvServer server(server_host, scfg);

  // Backups, armed to detect the primary's silence.
  std::vector<std::unique_ptr<repl::ReplicaNode>> replicas;
  std::vector<u32> peer_ips;
  std::vector<SimTime> suspect_at(cfg.replicas, 0);
  for (u32 i = 0; i < cfg.replicas; i++) {
    repl::ReplicaConfig rc;
    rc.ip = kReplicaIpBase + i;
    rc.primary_ip = kServerIp;
    rc.index = i;
    rc.opts = cfg.repl;
    rc.store_opts = cfg.pkt_opts;
    rc.nic = cfg.nic;
    auto node = std::make_unique<repl::ReplicaNode>(env, fabric, rc);
    node->on_primary_suspect = [&env, &suspect_at, i] {
      suspect_at[i] = env.now();
    };
    node->monitor_primary();
    replicas.push_back(std::move(node));
    peer_ips.push_back(rc.ip);
  }
  repl::Replicator replicator(env, server_host.udp(), cfg.repl,
                              std::move(peer_ips));
  replicator.start_heartbeats();
  server.set_replicator(&replicator);

  // One PUT-only open-loop client host; its acked-key set is what the
  // promoted store must fully contain.
  HostConfig chc;
  chc.ip = kOpenLoopClientBase;
  chc.cores = 0;
  chc.busy_poll = false;
  chc.nic = cfg.nic;
  Host client_host(env, fabric, chc);
  OpenLoopConfig occ;
  occ.server_ip = kServerIp;
  occ.connections = cfg.connections;
  occ.rate_rps = cfg.rate_rps;
  occ.value_size = cfg.value_size;
  occ.get_ratio = 0.0;
  occ.keyspace = cfg.keyspace;
  occ.seed = cfg.seed;
  occ.connect_window_ns = static_cast<SimTime>(cfg.connections) * 5 * kNsPerUs;
  OpenLoopClient client(client_host, occ);
  std::map<u64, u64> acked;  // key idx -> acked-put count
  client.on_put_ok = [&acked, &r](u64 key_idx) {
    acked[key_idx]++;
    r.acked_puts++;
  };

  client.start();
  env.engine.run_until(cfg.cut_at_ns);

  // The cut: link down, forwarder dead, load stops. Frames already on
  // the wire (including client acks the quorum released) still deliver —
  // an ack in flight at the cut is an ack the client will count, so the
  // survivors set keeps growing for one propagation delay. That is the
  // honest accounting: those writes WERE quorum-durable when acked.
  const SimTime cut = env.now();
  server_host.nic().set_link_up(false);
  replicator.stop();
  client.stop();

  // Detection: run until some backup declares the primary suspect.
  while (env.now() < cut + cfg.detect_budget_ns) {
    env.engine.run_until(env.now() + 20 * kNsPerUs);
    bool fired = false;
    for (u32 i = 0; i < cfg.replicas; i++) fired = fired || suspect_at[i] != 0;
    if (fired) break;
  }
  SimTime first_suspect = 0;
  for (u32 i = 0; i < cfg.replicas; i++) {
    if (suspect_at[i] != 0 &&
        (first_suspect == 0 || suspect_at[i] < first_suspect)) {
      first_suspect = suspect_at[i];
    }
  }
  if (first_suspect == 0) return r;  // budget blown: report the failure
  r.detected = true;
  r.detect_us = static_cast<double>(first_suspect - cut) / 1000.0;

  // Election: highest durable seq wins (cumulative acks make it a
  // superset of every acked write); ties break toward the lower IP.
  repl::ReplicaNode* winner = replicas[0].get();
  for (auto& node : replicas) {
    if (node->durable_seq() > winner->durable_seq()) winner = node.get();
  }
  winner->promote();

  // Settle: the winner's in-flight apply epochs drain (group-commit
  // watchdogs close them without new traffic).
  while (env.now() < cut + cfg.detect_budget_ns + cfg.settle_budget_ns) {
    if (winner->durable_seq() == winner->applied_seq()) {
      r.settled = true;
      break;
    }
    env.engine.run_until(env.now() + 20 * kNsPerUs);
  }
  r.settled = r.settled || winner->durable_seq() == winner->applied_seq();
  r.failover_us = static_cast<double>(env.now() - cut) / 1000.0;
  r.winner_ip = winner->ip();
  r.winner_durable_seq = winner->durable_seq();
  r.winner_applies = winner->applies();

  // The contract check: every client-acked key must read back from the
  // promoted store with exactly the deterministic per-key value.
  r.acked_keys = acked.size();
  for (const auto& [key_idx, n] : acked) {
    Rng vr(cfg.seed * 1315423911ULL + key_idx);
    std::vector<u8> want(cfg.value_size);
    for (auto& b : want) b = static_cast<u8>(vr.next());
    const auto got = winner->store().get("key" + std::to_string(key_idx));
    if (!got.ok() || got.value() != want) r.acked_lost++;
  }

  r.repl_forwards = replicator.forwards();
  r.repl_acks_rx = replicator.acks_rx();
  r.repl_retransmits = replicator.retransmits();
  r.degraded_acks = replicator.degraded_acks();
  return r;
}

OpenLoopResult run_openloop(const OpenLoopRunConfig& cfg) {
  sim::Env env;
  env.cost = cfg.cost;
  env.rng = Rng(cfg.seed);

  nic::Fabric fabric(env, cfg.fabric);

  HostConfig server_cfg;
  server_cfg.ip = kServerIp;
  server_cfg.cores = cfg.server_cores;
  server_cfg.busy_poll = true;
  server_cfg.pm_backed = true;
  server_cfg.pm_size = cfg.pm_size;
  server_cfg.nic = cfg.nic;
  Host server_host(env, fabric, server_cfg);

  ServerConfig scfg;
  scfg.backend = cfg.backend;
  scfg.knobs = cfg.knobs;
  scfg.lsm_wal = cfg.lsm_wal;
  scfg.pkt_opts = cfg.pkt_opts;
  scfg.admin = cfg.admin;
  scfg.trace = cfg.trace_capacity > 0;
  scfg.trace_capacity = cfg.trace_capacity;
  scfg.flight_recorder = cfg.flight_recorder;
  scfg.flightrec_capacity = cfg.flightrec_capacity;
  KvServer server(server_host, scfg);

  // Big sweeps need their SYNs spread out and the warmup stretched to
  // cover establishment: 100k handshakes cannot hide inside a 50 ms
  // warmup, so the effective warmup grows with the connection count. The
  // pacing matters as much as the stretch — at 2 µs/SYN the accept storm
  // outruns 4 cores (each accept + SYN-ACK costs several µs on top of
  // the offered request load), the backlog grows for the whole window,
  // and the 1 ms initial RTO turns the un-drained queue into a
  // retransmit flood that persists into measurement. 5 µs/SYN keeps the
  // accept rate inside capacity, and the settling time scales with the
  // window so whatever transient does form drains before stats reset.
  // The measurement window itself is untouched.
  const SimTime connect_window =
      static_cast<SimTime>(cfg.connections) * 5 * kNsPerUs;
  const SimTime warmup = std::max<SimTime>(
      cfg.warmup_ns, connect_window + connect_window / 4 + 20 * kNsPerMs);

  // Shard the client side: one host per ~16k connections (ephemeral-port
  // space), each with its own IP and its own slice of the offered load.
  const int n_hosts =
      (cfg.connections + kMaxConnsPerClientHost - 1) / kMaxConnsPerClientHost;
  std::vector<std::unique_ptr<Host>> client_hosts;
  std::vector<std::unique_ptr<OpenLoopClient>> clients;
  int assigned = 0;
  for (int h = 0; h < n_hosts; h++) {
    HostConfig chc;
    chc.ip = kOpenLoopClientBase + static_cast<u32>(h);
    chc.cores = 0;  // client machines are not the bottleneck
    chc.busy_poll = false;
    chc.nic = cfg.nic;
    client_hosts.push_back(std::make_unique<Host>(env, fabric, chc));

    const int remaining_hosts = n_hosts - h;
    const int conns = (cfg.connections - assigned) / remaining_hosts;
    assigned += conns;

    OpenLoopConfig occ;
    occ.server_ip = kServerIp;
    occ.connections = conns;
    occ.rate_rps = cfg.rate_rps * conns / std::max(1, cfg.connections);
    occ.value_size = cfg.value_size;
    occ.get_ratio = cfg.get_ratio;
    occ.keyspace = cfg.keyspace;
    occ.zipf_theta = cfg.zipf_theta;
    occ.seed = cfg.seed + static_cast<u64>(h) * 86243;
    occ.deadline_ns = cfg.deadline_ns;
    occ.connect_window_ns = connect_window;
    clients.push_back(
        std::make_unique<OpenLoopClient>(*client_hosts.back(), occ));
  }

  std::optional<Rebalancer> rebalancer;
  if (cfg.rebalance && cfg.server_cores > 1) {
    rebalancer.emplace(server_host, server, cfg.rebalance_cfg);
    rebalancer->start();
  }

  // The scrape probe, on its own machine. Only with a nonzero period:
  // cfg.admin alone arms the endpoints without generating any traffic
  // (the byte-identity configuration).
  std::optional<Host> admin_host;
  std::optional<AdminProbe> probe;
  if (cfg.admin && cfg.admin_interval_ns > 0) {
    HostConfig ahc;
    ahc.ip = kAdminIp;
    ahc.cores = 0;
    ahc.busy_poll = false;
    ahc.nic = cfg.nic;
    admin_host.emplace(env, fabric, ahc);
    probe.emplace(*admin_host, kServerIp, scfg.port, cfg.admin_interval_ns);
  }

  // Prime the whole keyspace (same per-key value convention as the
  // generators) so measured GETs read real data instead of 404ing on a
  // cold store. Priming is setup: it charges no simulated time.
  for (u64 k = 0; k < cfg.keyspace; k++) {
    Rng vr(cfg.seed * 1315423911ULL + k);
    std::vector<u8> v(cfg.value_size);
    for (auto& b : v) b = static_cast<u8>(vr.next());
    server.prime("key" + std::to_string(k), v);
  }

  for (auto& c : clients) c->start();
  if (probe.has_value()) probe->start();  // scraping spans the warmup too
  env.engine.run_until(warmup);
  for (auto& c : clients) c->reset_stats();
  server.reset_stats();
  server_host.reset_obs();
  for (auto& ch : client_hosts) ch->reset_obs();
  if (probe.has_value()) probe->reset_stats();
  const u64 admin_before = server.admin_requests();
  const u64 flightrec_before = server.flightrec_records();
  const SimTime busy_before = server_host.cpu().busy_ns();

  env.engine.run_until(warmup + cfg.measure_ns);
  for (auto& c : clients) c->stop();
  if (probe.has_value()) probe->stop();

  OpenLoopResult r;
  for (auto& c : clients) {
    r.sojourn.merge_from(c->sojourns());
    r.arrivals += c->arrivals();
    r.completed += c->completed();
    r.deadline_misses += c->deadline_misses();
    r.errors += c->http_errors();
  }
  r.errors += server.errors();
  r.miss_rate = r.completed > 0 ? static_cast<double>(r.deadline_misses) /
                                      static_cast<double>(r.completed)
                                : 0.0;
  const double window_s = static_cast<double>(cfg.measure_ns) / 1e9;
  r.kreq_per_s = static_cast<double>(r.completed) / window_s / 1000.0;
  r.offered_krps = static_cast<double>(r.arrivals) / window_s / 1000.0;
  r.server_cpu_util =
      static_cast<double>(server_host.cpu().busy_ns() - busy_before) /
      static_cast<double>(cfg.measure_ns * std::max(1, cfg.server_cores));
  for (u32 i = 0; i < server_host.datapaths(); i++) {
    r.shard_requests.push_back(server.shard_requests(i));
  }
  r.imbalance = shard_imbalance(r.shard_requests);
  r.indir_remaps = server_host.nic().indir_remaps();
  if (rebalancer.has_value()) {
    rebalancer->stop();
    r.rebalance_rounds = rebalancer->rounds();
    r.bucket_moves = rebalancer->bucket_moves();
    r.conns_migrated = rebalancer->conns_moved();
  }
  r.admin_requests = server.admin_requests() - admin_before;
  if (probe.has_value()) {
    r.admin_scrapes = probe->scrapes();
    r.admin_bytes = probe->bytes();
  }
  r.flightrec_records = server.flightrec_records() - flightrec_before;
  r.flightrec_wraps = server.flightrec_wraps();
  if (cfg.trace_capacity > 0) {
    r.trace_dropped = server_host.merged_trace().dropped();
  }
  if (cfg.collect_metrics) {
    const obs::MetricRegistry sm = server_host.merged_metrics();
    obs::MetricRegistry cm;
    for (auto& ch : client_hosts) cm.merge_from(ch->merged_metrics());
    r.metrics_report =
        "== server ==\n" + sm.report() + "== client ==\n" + cm.report();
    r.metrics_json =
        "{\"server\": " + sm.to_json() + ", \"client\": " + cm.to_json() + "}";
  }
  return r;
}

}  // namespace papm::app
