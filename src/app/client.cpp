#include "app/client.h"

namespace papm::app {

WrkClient::WrkClient(Host& host, ClientConfig cfg)
    : host_(host), cfg_(std::move(cfg)) {
  trace_.set_track(obs::kClientTrack);
  obs::MetricRegistry& reg = host_.metrics(0);
  m_requests_ = &reg.counter("client.requests");
  m_http_errors_ = &reg.counter("client.http_errors");
  m_resp_parsed_ = &reg.counter("http.responses_parsed");
  m_parse_err_ = &reg.counter("http.parse_errors");
  m_rtt_ns_ = &reg.histogram("client.rtt_ns");
}

std::vector<u8> WrkClient::value_for(u64 key_idx) const {
  // Deterministic value per key so GETs can be validated cheaply.
  Rng rng(cfg_.seed * 1315423911ULL + key_idx);
  std::vector<u8> v(cfg_.value_size);
  for (auto& b : v) b = static_cast<u8>(rng.next());
  return v;
}

void WrkClient::start() {
  for (int i = 0; i < cfg_.connections; i++) {
    auto ctx = std::make_unique<ConnCtx>();
    ctx->parser.set_metrics(m_resp_parsed_, m_parse_err_);
    ctx->rng = Rng(cfg_.seed + static_cast<u64>(i) * 7919);
    if (cfg_.zipf_theta > 0.0) {
      ctx->zipf.emplace(cfg_.keyspace, cfg_.zipf_theta,
                        cfg_.seed + static_cast<u64>(i) * 104729);
    }
    ConnCtx* raw = ctx.get();
    conns_.push_back(std::move(ctx));
    host_.env().engine.schedule_in(
        static_cast<SimTime>(i) * cfg_.connect_stagger_ns, [this, raw] {
          raw->conn = host_.stack().connect(cfg_.server_ip, cfg_.port);
          raw->conn->on_established = [this, raw](net::TcpConn&) {
            issue(*raw);
          };
          raw->conn->on_readable = [this, raw](net::TcpConn&) {
            on_readable(*raw);
          };
        });
  }
}

void WrkClient::issue(ConnCtx& ctx) {
  if (stopped_ || ctx.conn == nullptr ||
      ctx.conn->state() != net::TcpState::established) {
    return;
  }
  auto& env = host_.env();
  ctx.issued_at = env.now();
  ctx.in_flight = true;
  obs::inc(m_requests_);

  const u64 key_idx = ctx.zipf.has_value() ? ctx.zipf->next()
                                           : ctx.rng.next_below(cfg_.keyspace);
  const bool is_get = ctx.rng.next_double() < cfg_.get_ratio;

  env.clock().advance(env.cost.scaled(env.cost.client_http_build_ns));
  http::Request req;
  req.method = is_get ? http::Method::get : http::Method::put;
  req.target = "/kv/key" + std::to_string(key_idx);
  if (!is_get) req.body = value_for(key_idx);
  (void)ctx.conn->send(http::serialize(req));
}

void WrkClient::on_readable(ConnCtx& ctx) {
  auto& env = host_.env();
  std::vector<u8> buf(4096);
  std::size_t n;
  while ((n = ctx.conn->read(buf)) > 0) {
    const auto resp = ctx.parser.feed(std::span<const u8>(buf.data(), n));
    if (resp.has_value()) {
      env.clock().advance(env.cost.scaled(env.cost.client_http_parse_ns));
      if (resp->status >= 400) {
        http_errors_++;
        obs::inc(m_http_errors_);
      }
      if (ctx.in_flight) {
        const SimTime rtt = env.now() - ctx.issued_at;
        rtt_.add(static_cast<double>(rtt));
        completed_++;
        ctx.in_flight = false;
        obs::observe(m_rtt_ns_, rtt);
        if (tracing_) {
          trace_.record(next_req_, obs::Stage::rtt, ctx.issued_at, rtt);
        }
        next_req_++;
      }
      issue(ctx);  // closed loop: next request immediately
      return;      // one response per readable burst in practice
    }
  }
}

}  // namespace papm::app
