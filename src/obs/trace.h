// Request-scoped tracing: every completed request yields a Table-1 row.
//
// A TraceContext is carried with the request (the server creates one per
// assembled request; the client one per issued request) and records
// enter/exit timestamps for the canonical datapath stages. Spans land in
// a per-shard TraceLog (append-only, shared-nothing like the metric
// registries) and are merged only at export time. Exporters:
//
//   * attribute()          — per-stage totals/means: the attribution table;
//   * chrome_trace_json()  — Chrome trace_events JSON, loadable in
//                            chrome://tracing and Perfetto (one thread
//                            track per shard, "X" complete events).
//
// With PAPM_OBS=OFF every span call is constexpr-dead, like the metric
// hooks — tracing cannot perturb the default bench numbers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "sim/env.h"

namespace papm::obs {

// Canonical stages of one request through the stack — the rows of the
// paper's Table 1 as seen by the server. `rx`/`tx` are the server-side
// networking halves; parse covers HTTP parse + request preparation;
// the middle four are the data-management + persistence split.
enum class Stage : u8 {
  rx = 0,
  parse,
  checksum,
  slice,       // sliced-descriptor bookkeeping (NIC payload slicer)
  copy,
  alloc_index,
  nic_insert,  // NIC index-engine offload: doorbell + wait + completion
  persist,
  repl,  // replication: forward to replicas -> remote-quorum durable
  tx,
  rtt,  // client-side whole-request span (issue -> response parsed)
};
inline constexpr int kStages = 11;

[[nodiscard]] constexpr std::string_view to_string(Stage s) noexcept {
  switch (s) {
    case Stage::rx: return "rx";
    case Stage::parse: return "parse";
    case Stage::checksum: return "checksum";
    case Stage::slice: return "slice";
    case Stage::copy: return "copy";
    case Stage::alloc_index: return "alloc+index";
    case Stage::nic_insert: return "nic_insert";
    case Stage::persist: return "persist";
    case Stage::repl: return "repl";
    case Stage::tx: return "tx";
    case Stage::rtt: return "rtt";
  }
  return "?";
}

// One closed span: stage `stage` of request `req` on track `track`
// occupied [ts, ts+dur) in simulated time.
struct SpanEvent {
  u64 req = 0;
  u32 track = 0;  // exporter tid: shard id, or kClientTrack for the client
  Stage stage = Stage::rx;
  SimTime ts = 0;
  SimTime dur = 0;
};

inline constexpr u32 kClientTrack = 1000;

// Append-only span log. One per datapath shard; merge_from() at export
// is associative (concatenation; exporters sort by timestamp).
class TraceLog {
 public:
  void set_track(u32 t) noexcept { track_ = t; }
  [[nodiscard]] u32 track() const noexcept { return track_; }

  void record(u64 req, Stage s, SimTime ts, SimTime dur) {
    if constexpr (kEnabled) {
      events_.push_back({req, track_, s, ts, dur});
    } else {
      (void)req;
      (void)s;
      (void)ts;
      (void)dur;
    }
  }

  [[nodiscard]] const std::vector<SpanEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  void clear() noexcept { events_.clear(); }

  void merge_from(const TraceLog& o) {
    events_.insert(events_.end(), o.events_.begin(), o.events_.end());
  }

 private:
  std::vector<SpanEvent> events_;
  u32 track_ = 0;
};

// The request-scoped handle. Null-constructed contexts swallow all
// operations, so call sites never branch on "is tracing on".
class TraceContext {
 public:
  TraceContext() = default;
  TraceContext(sim::Env& env, TraceLog* log, u64 req) noexcept
      : env_(&env), log_(log), req_(req) {}

  [[nodiscard]] bool active() const noexcept {
    return kEnabled && log_ != nullptr;
  }
  [[nodiscard]] u64 req() const noexcept { return req_; }

  // Record a span with explicit bounds (for stages measured elsewhere,
  // e.g. per-packet rx costs stamped by the TCP stack).
  void record(Stage s, SimTime ts, SimTime dur) {
    if (active()) log_->record(req_, s, ts, dur);
  }

  // RAII span: enters at construction, closes at destruction (or at an
  // explicit close()). Nesting works naturally — inner spans close
  // first, and the exporter nests them by containment.
  class Span {
   public:
    Span() = default;
    Span(TraceContext& ctx, Stage s) noexcept {
      if (ctx.active()) {
        ctx_ = &ctx;
        stage_ = s;
        t0_ = ctx.env_->now();
      }
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { close(); }

    void close() noexcept {
      if (ctx_ != nullptr) {
        ctx_->record(stage_, t0_, ctx_->env_->now() - t0_);
        ctx_ = nullptr;
      }
    }

   private:
    TraceContext* ctx_ = nullptr;
    Stage stage_ = Stage::rx;
    SimTime t0_ = 0;
  };

  [[nodiscard]] Span span(Stage s) noexcept { return Span(*this, s); }

 private:
  sim::Env* env_ = nullptr;
  TraceLog* log_ = nullptr;
  u64 req_ = 0;
};

// --- Exporters -----------------------------------------------------------

// Per-stage attribution over a span log: totals, span counts and the
// number of distinct requests (the denominator for per-request means).
struct Attribution {
  SimTime total_ns[kStages] = {};
  u64 spans[kStages] = {};
  u64 requests = 0;  // distinct req ids among non-rtt server spans

  [[nodiscard]] double mean_ns(Stage s) const noexcept {
    return requests == 0 ? 0.0
                         : static_cast<double>(total_ns[static_cast<int>(s)]) /
                               static_cast<double>(requests);
  }
  // Sum of the per-request means over the server-side stages (everything
  // except the client rtt track).
  [[nodiscard]] double server_sum_ns() const noexcept;
};

[[nodiscard]] Attribution attribute(const TraceLog& log);

// Chrome trace_events JSON (the object form: {"traceEvents": [...]}).
// Every span becomes an "X" (complete) event; ts/dur are microseconds as
// chrome://tracing and Perfetto expect; pid 1, tid = track, with thread
// metadata naming server shards and the client track.
[[nodiscard]] std::string chrome_trace_json(const TraceLog& log);

}  // namespace papm::obs
