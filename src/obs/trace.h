// Request-scoped tracing: every completed request yields a Table-1 row.
//
// A TraceContext is carried with the request (the server creates one per
// assembled request; the client one per issued request) and records
// enter/exit timestamps for the canonical datapath stages. Spans land in
// a per-shard TraceLog (append-only, shared-nothing like the metric
// registries) and are merged only at export time. Exporters:
//
//   * attribute()          — per-stage totals/means: the attribution table;
//   * chrome_trace_json()  — Chrome trace_events JSON, loadable in
//                            chrome://tracing and Perfetto (one thread
//                            track per shard, "X" complete events).
//
// With PAPM_OBS=OFF every span call is constexpr-dead, like the metric
// hooks — tracing cannot perturb the default bench numbers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "sim/env.h"

namespace papm::obs {

// Canonical stages of one request through the stack — the rows of the
// paper's Table 1 as seen by the server. `rx`/`tx` are the server-side
// networking halves; parse covers HTTP parse + request preparation;
// the middle four are the data-management + persistence split.
enum class Stage : u8 {
  rx = 0,
  parse,
  checksum,
  slice,       // sliced-descriptor bookkeeping (NIC payload slicer)
  copy,
  alloc_index,
  nic_insert,  // NIC index-engine offload: doorbell + wait + completion
  persist,
  repl,  // replication: forward to replicas -> remote-quorum durable
  tx,
  rtt,         // client-side whole-request span (issue -> response parsed)
  repl_apply,  // replica-side apply of a forwarded mutation (replica track)
};
inline constexpr int kStages = 12;

[[nodiscard]] constexpr std::string_view to_string(Stage s) noexcept {
  switch (s) {
    case Stage::rx: return "rx";
    case Stage::parse: return "parse";
    case Stage::checksum: return "checksum";
    case Stage::slice: return "slice";
    case Stage::copy: return "copy";
    case Stage::alloc_index: return "alloc+index";
    case Stage::nic_insert: return "nic_insert";
    case Stage::persist: return "persist";
    case Stage::repl: return "repl";
    case Stage::tx: return "tx";
    case Stage::rtt: return "rtt";
    case Stage::repl_apply: return "repl_apply";
  }
  return "?";
}

// One closed span: stage `stage` of request `req` on track `track`
// occupied [ts, ts+dur) in simulated time.
struct SpanEvent {
  u64 req = 0;
  u32 track = 0;  // exporter tid: shard id, or kClientTrack for the client
  Stage stage = Stage::rx;
  SimTime ts = 0;
  SimTime dur = 0;
};

inline constexpr u32 kClientTrack = 1000;
// Replica i's apply spans land on track kReplicaTrackBase + i, which the
// Chrome exporter maps to its own process so a stitched trace shows the
// primary and each replica as separate tracks of one timeline.
inline constexpr u32 kReplicaTrackBase = 2000;

// Span log. One per datapath shard; merge_from() at export is
// associative (concatenation; exporters sort by timestamp).
//
// Unbounded by default (the bench-exit exporters want every span).
// set_capacity(n) turns it into a ring of the n most recent spans for
// long-running serving: a full ring overwrites its oldest span and
// counts the overwrite in dropped() (and in the `obs.trace_dropped`
// counter when one is attached) — wraps are never silent.
class TraceLog {
 public:
  void set_track(u32 t) noexcept { track_ = t; }
  [[nodiscard]] u32 track() const noexcept { return track_; }

  // 0 (default) = unbounded append; n > 0 = keep the n most recent spans.
  void set_capacity(std::size_t n) noexcept { capacity_ = n; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] u64 dropped() const noexcept { return dropped_; }
  // Registry hook for ring overwrites (`obs.trace_dropped`); null-safe.
  void set_dropped_counter(Counter* c) noexcept { dropped_counter_ = c; }

  void record(u64 req, Stage s, SimTime ts, SimTime dur) {
    if constexpr (kEnabled) {
      if (capacity_ != 0 && events_.size() >= capacity_) {
        events_[next_] = {req, track_, s, ts, dur};
        next_ = (next_ + 1) % capacity_;
        dropped_++;
        inc(dropped_counter_);
      } else {
        events_.push_back({req, track_, s, ts, dur});
      }
    } else {
      (void)req;
      (void)s;
      (void)ts;
      (void)dur;
    }
  }

  // Ring order is not chronological after a wrap; exporters sort by ts.
  [[nodiscard]] const std::vector<SpanEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  void clear() noexcept {
    events_.clear();
    next_ = 0;
    dropped_ = 0;
  }

  // Plain concatenation regardless of this log's capacity — merge targets
  // are the export-side scratch logs, which stay unbounded.
  void merge_from(const TraceLog& o) {
    events_.insert(events_.end(), o.events_.begin(), o.events_.end());
    dropped_ += o.dropped_;
  }

 private:
  std::vector<SpanEvent> events_;
  u32 track_ = 0;
  std::size_t capacity_ = 0;  // 0 = unbounded
  std::size_t next_ = 0;      // ring overwrite cursor (capacity_ > 0)
  u64 dropped_ = 0;
  Counter* dropped_counter_ = nullptr;
};

// The request-scoped handle. Null-constructed contexts swallow all
// operations, so call sites never branch on "is tracing on".
class TraceContext {
 public:
  TraceContext() = default;
  TraceContext(sim::Env& env, TraceLog* log, u64 req) noexcept
      : env_(&env), log_(log), req_(req) {}

  [[nodiscard]] bool active() const noexcept {
    return kEnabled && log_ != nullptr;
  }
  [[nodiscard]] u64 req() const noexcept { return req_; }

  // Record a span with explicit bounds (for stages measured elsewhere,
  // e.g. per-packet rx costs stamped by the TCP stack).
  void record(Stage s, SimTime ts, SimTime dur) {
    if (active()) log_->record(req_, s, ts, dur);
  }

  // RAII span: enters at construction, closes at destruction (or at an
  // explicit close()). Nesting works naturally — inner spans close
  // first, and the exporter nests them by containment.
  class Span {
   public:
    Span() = default;
    Span(TraceContext& ctx, Stage s) noexcept {
      if (ctx.active()) {
        ctx_ = &ctx;
        stage_ = s;
        t0_ = ctx.env_->now();
      }
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { close(); }

    void close() noexcept {
      if (ctx_ != nullptr) {
        ctx_->record(stage_, t0_, ctx_->env_->now() - t0_);
        ctx_ = nullptr;
      }
    }

   private:
    TraceContext* ctx_ = nullptr;
    Stage stage_ = Stage::rx;
    SimTime t0_ = 0;
  };

  [[nodiscard]] Span span(Stage s) noexcept { return Span(*this, s); }

 private:
  sim::Env* env_ = nullptr;
  TraceLog* log_ = nullptr;
  u64 req_ = 0;
};

// --- Exporters -----------------------------------------------------------

// Per-stage attribution over a span log: totals, span counts and the
// number of distinct requests (the denominator for per-request means).
struct Attribution {
  SimTime total_ns[kStages] = {};
  u64 spans[kStages] = {};
  u64 requests = 0;  // distinct req ids among non-rtt server spans

  [[nodiscard]] double mean_ns(Stage s) const noexcept {
    return requests == 0 ? 0.0
                         : static_cast<double>(total_ns[static_cast<int>(s)]) /
                               static_cast<double>(requests);
  }
  // Sum of the per-request means over the server-side stages (everything
  // except the client rtt track and the replica-side repl_apply spans —
  // replica work overlaps the primary's repl wait, it is not residence).
  [[nodiscard]] double server_sum_ns() const noexcept;
};

[[nodiscard]] Attribution attribute(const TraceLog& log);

// Chrome trace_events JSON (the object form: {"traceEvents": [...]}).
// Every span becomes an "X" (complete) event; ts/dur are microseconds as
// chrome://tracing and Perfetto expect. Tracks map to processes —
// server shards under pid 1 ("papm-server"), the client track under
// pid 2 ("papm-client"), replica tracks under pid 3+i ("papm-replica<i>")
// — with process_name and thread_name "M" metadata events so Perfetto
// labels every track instead of showing bare tids.
[[nodiscard]] std::string chrome_trace_json(const TraceLog& log);

}  // namespace papm::obs
