#include "obs/export.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <vector>

namespace papm::obs {

std::string prometheus_name(std::string_view name) {
  std::string out = "papm_";
  for (const char ch : name) {
    out += std::isalnum(static_cast<unsigned char>(ch)) != 0 ? ch : '_';
  }
  return out;
}

std::string prometheus_text(const MetricRegistry& reg) {
  std::string out;
  reg.each_counter([&](const std::string& n, const Counter& c) {
    const std::string p = prometheus_name(n);
    out += "# TYPE " + p + " counter\n";
    out += p + " " + std::to_string(c.value()) + "\n";
  });
  reg.each_gauge([&](const std::string& n, const Gauge& g) {
    const std::string p = prometheus_name(n);
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + std::to_string(g.value()) + "\n";
  });
  reg.each_histogram([&](const std::string& n, const Histogram& h) {
    const std::string p = prometheus_name(n);
    out += "# TYPE " + p + " summary\n";
    static constexpr struct {
      double q;
      const char* label;
    } kQuantiles[] = {{0.5, "0.5"}, {0.99, "0.99"}, {0.999, "0.999"}};
    for (const auto& [q, label] : kQuantiles) {
      out += p + "{quantile=\"" + label +
             "\"} " + std::to_string(h.quantile_upper(q)) + "\n";
    }
    out += p + "_sum " + std::to_string(h.sum()) + "\n";
    out += p + "_count " + std::to_string(h.count()) + "\n";
  });
  return out;
}

std::string trace_recent_json(const TraceLog& log, std::size_t limit) {
  std::vector<SpanEvent> evs = log.events();
  std::sort(evs.begin(), evs.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              if (a.ts != b.ts) return a.ts < b.ts;
              if (a.track != b.track) return a.track < b.track;
              return static_cast<int>(a.stage) < static_cast<int>(b.stage);
            });
  if (evs.size() > limit) evs.erase(evs.begin(), evs.end() - limit);

  std::string out =
      "{\"dropped\": " + std::to_string(log.dropped()) + ", \"spans\": [";
  char buf[192];
  bool first = true;
  for (const SpanEvent& e : evs) {
    std::snprintf(buf, sizeof buf,
                  "%s{\"req\": %llu, \"track\": %u, \"stage\": \"%.*s\", "
                  "\"ts_ns\": %lld, \"dur_ns\": %lld}",
                  first ? "" : ", ", static_cast<unsigned long long>(e.req),
                  e.track, static_cast<int>(to_string(e.stage).size()),
                  to_string(e.stage).data(), static_cast<long long>(e.ts),
                  static_cast<long long>(e.dur));
    out += buf;
    first = false;
  }
  out += "]}";
  return out;
}

}  // namespace papm::obs
