// Observability: counters, gauges and fixed-bucket histograms.
//
// The paper's core evidence is an *attribution* measurement (Table 1
// splits a 34.79 µs RTT into seven rows); this module lets the running
// system answer the same question about itself. Design constraints:
//
//   * near-zero hot-path cost: metrics live in per-shard MetricRegistry
//     instances (one per datapath shard — shared-nothing, like the rest
//     of the datapath) and are merged by name only at report time.
//     Subsystems register once at construction, cache the returned
//     pointer, and the hot-path hook is a single inlined increment;
//   * compile-time kill switch: configuring with -DPAPM_OBS=OFF defines
//     PAPM_OBS_DISABLED, which turns every inc()/observe()/peak() hook
//     into an empty constexpr-dead function — prior bench numbers are
//     bit-identical because no instrumentation code runs at all;
//   * static metric names: every registered name is a string literal
//     (scripts/check_docs.sh greps them and fails the lint when a name
//     is undocumented in docs/OBSERVABILITY.md). Shard identity is the
//     registry *instance*, never a name suffix, so merges line up.
#pragma once

#include <bit>
#include <cstddef>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace papm::obs {

#ifdef PAPM_OBS_DISABLED
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

// Monotonic event count; merged by summing.
class Counter {
 public:
  void add(u64 n = 1) noexcept { v_ += n; }
  [[nodiscard]] u64 value() const noexcept { return v_; }
  void merge_from(const Counter& o) noexcept { v_ += o.v_; }
  void reset() noexcept { v_ = 0; }

 private:
  u64 v_ = 0;
};

// High-water mark (e.g. dirty-line peak); merged by taking the max.
class Gauge {
 public:
  void set(u64 v) noexcept { v_ = v; }
  void peak(u64 v) noexcept {
    if (v > v_) v_ = v;
  }
  [[nodiscard]] u64 value() const noexcept { return v_; }
  void merge_from(const Gauge& o) noexcept { peak(o.v_); }
  void reset() noexcept { v_ = 0; }

 private:
  u64 v_ = 0;
};

// Fixed power-of-two-bucket histogram over u64 samples (typically ns).
// 64 buckets cover the full u64 range, so observe() never branches on
// configuration — one bsr + three increments.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void observe(u64 v) noexcept {
    buckets_[bucket_of(v)]++;
    count_++;
    sum_ += v;
  }

  [[nodiscard]] u64 count() const noexcept { return count_; }
  [[nodiscard]] u64 sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  [[nodiscard]] u64 bucket(int i) const noexcept { return buckets_[i]; }

  // Upper-bound estimate of the q-quantile (q in [0,1]): the upper edge
  // of the bucket holding the nearest-rank sample. Coarse by design —
  // exact latency percentiles come from Stats; this is the cheap
  // always-on sketch.
  [[nodiscard]] u64 quantile_upper(double q) const noexcept;

  void merge_from(const Histogram& o) noexcept {
    for (int i = 0; i < kBuckets; i++) buckets_[i] += o.buckets_[i];
    count_ += o.count_;
    sum_ += o.sum_;
  }

  void reset() noexcept { *this = Histogram{}; }

  // Bucket i holds values in [2^(i-1)+1 .. 2^i] (bucket 0: {0, 1};
  // bucket 63 additionally absorbs everything above 2^63).
  [[nodiscard]] static int bucket_of(u64 v) noexcept {
    if (v <= 1) return 0;
    const int b = 64 - std::countl_zero(v - 1);
    return b > 63 ? 63 : b;
  }
  [[nodiscard]] static u64 bucket_upper(int i) noexcept {
    return i >= 63 ? ~0ULL : (1ULL << i);
  }

 private:
  u64 buckets_[kBuckets] = {};
  u64 count_ = 0;
  u64 sum_ = 0;
};

// A named set of metrics. One instance per datapath shard (plus one per
// host for shard-less subsystems like the PM device); never shared
// between cores, so registration and increments need no locks. Merging
// is associative and commutative: counters sum, gauges max, histograms
// add bucket-wise — merge order never changes the report.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(MetricRegistry&&) = default;
  MetricRegistry& operator=(MetricRegistry&&) = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // Registration: returns a stable pointer (metrics live in deques).
  // Re-registering a name returns the existing instance, so two
  // subsystems may share a counter deliberately.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // Report-time merge: pulls `o`'s values into this registry, creating
  // missing names. Associative; safe across shard registries.
  void merge_from(const MetricRegistry& o);

  // Zeroes every value, keeping registrations (and cached pointers in
  // subsystems) valid — the warmup/measure boundary of a bench run.
  void reset_values() noexcept;

  [[nodiscard]] std::size_t size() const noexcept {
    return counters_.size() + gauges_.size() + hists_.size();
  }

  // Human-readable table, sorted by name. Histograms render count/mean/
  // p50/p99 upper-bound estimates.
  [[nodiscard]] std::string report() const;

  // Machine-readable flat JSON object:
  //   {"counters":{...},"gauges":{...},
  //    "histograms":{"name":{"count":..,"sum":..,"mean":..}}}
  [[nodiscard]] std::string to_json() const;

  // Iteration (sorted by name) for custom exporters.
  template <typename Fn>
  void each_counter(Fn&& fn) const {
    for (const auto& n : sorted_names(counter_idx_)) {
      fn(n, counters_[counter_idx_.at(n)]);
    }
  }
  template <typename Fn>
  void each_gauge(Fn&& fn) const {
    for (const auto& n : sorted_names(gauge_idx_)) fn(n, gauges_[gauge_idx_.at(n)]);
  }
  template <typename Fn>
  void each_histogram(Fn&& fn) const {
    for (const auto& n : sorted_names(hist_idx_)) fn(n, hists_[hist_idx_.at(n)]);
  }

 private:
  static std::vector<std::string> sorted_names(
      const std::unordered_map<std::string, std::size_t>& idx);

  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> hists_;
  std::unordered_map<std::string, std::size_t> counter_idx_;
  std::unordered_map<std::string, std::size_t> gauge_idx_;
  std::unordered_map<std::string, std::size_t> hist_idx_;
};

// --- Hot-path hooks ------------------------------------------------------
// Subsystems hold nullable pointers obtained at registration and call
// these; with PAPM_OBS=OFF every call is constexpr-dead and the pointer
// fields stay null. Null-safe either way, so unwired components cost one
// predictable branch at most.

inline void inc(Counter* c, u64 n = 1) noexcept {
  if constexpr (kEnabled) {
    if (c != nullptr) c->add(n);
  } else {
    (void)c;
    (void)n;
  }
}

inline void peak(Gauge* g, u64 v) noexcept {
  if constexpr (kEnabled) {
    if (g != nullptr) g->peak(v);
  } else {
    (void)g;
    (void)v;
  }
}

inline void observe(Histogram* h, u64 v) noexcept {
  if constexpr (kEnabled) {
    if (h != nullptr) h->observe(v);
  } else {
    (void)h;
    (void)v;
  }
}

}  // namespace papm::obs
