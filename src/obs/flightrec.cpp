#include "obs/flightrec.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "common/crc32c.h"

namespace papm::obs {

namespace {

constexpr u64 kMagic = 0x50'41'50'4d'46'52'4543ULL;  // "PAPMFREC" (7 bytes)

std::string root_name(u16 shard) {
  return "obs.flightrec" + std::to_string(shard);
}

}  // namespace

u32 FlightRecorder::record_crc(const FlightRecord& rec, u64 seq) {
  FlightRecord tmp = rec;
  tmp.crc = 0;
  u8 buf[kBodyLen + sizeof seq];
  std::memcpy(buf, &tmp, kBodyLen);
  std::memcpy(buf + kBodyLen, &seq, sizeof seq);
  return crc32c_mask(crc32c({buf, sizeof buf}));
}

Result<FlightRecorder> FlightRecorder::create(pm::PmDevice& dev,
                                              pm::PmPool& pool, u16 shard,
                                              u32 capacity) {
  if (capacity == 0) return Errc::invalid_argument;
  const u64 total = kHeaderLen + static_cast<u64>(capacity) * kSlotSize;
  auto region = pool.alloc(total);
  if (!region.ok()) return region.errc();
  const u64 base = region.value();

  // Zero the whole ring durably: a recycled pool block could otherwise
  // hold stale bytes that validate as slots.
  const std::vector<u8> zeros(total, 0);
  dev.store(base, zeros);

  u8 hdr[24] = {};
  std::memcpy(hdr, &kMagic, 8);
  std::memcpy(hdr + 8, &capacity, 4);
  std::memcpy(hdr + 12, &shard, 2);
  dev.store(base, {hdr, sizeof hdr});
  dev.persist(base, total);

  const Status s = dev.set_root(root_name(shard), base);
  if (!s.ok()) return s.errc();
  return FlightRecorder(dev, base, capacity, shard);
}

Result<FlightRecorder> FlightRecorder::recover(pm::PmDevice& dev, u16 shard) {
  const auto root = dev.get_root(root_name(shard));
  if (!root.ok()) return root.errc();
  const u64 base = root.value();
  if (base + kHeaderLen > dev.size()) return Errc::corrupted;

  u64 magic = 0;
  u32 capacity = 0;
  const u8* h = dev.at(base, kHeaderLen);
  std::memcpy(&magic, h, 8);
  std::memcpy(&capacity, h + 8, 4);
  if (magic != kMagic || capacity == 0) return Errc::corrupted;
  const u64 total = kHeaderLen + static_cast<u64>(capacity) * kSlotSize;
  if (base + total > dev.size()) return Errc::corrupted;

  FlightRecorder fr(dev, base, capacity, shard);
  ScanStats st;
  (void)fr.scan(&st);
  fr.seq_ = st.max_seq;  // appends resume past the highest durable slot
  return fr;
}

void FlightRecorder::set_metrics(MetricRegistry* r) {
  if (r == nullptr) return;
  m_records_ = &r->counter("obs.flightrec_records");
  m_wraps_ = &r->counter("obs.flightrec_wraps");
}

u64 FlightRecorder::append(const FlightRecord& rec) {
  const u64 seq = seq_ + 1;
  const u64 off = slot_off((seq - 1) % capacity_);
  if (seq > capacity_) {
    wraps_++;
    inc(m_wraps_);
  }

  FlightRecord body = rec;
  body.crc = record_crc(body, seq);
  u8 buf[kBodyLen];
  std::memcpy(buf, &body, kBodyLen);

  // Body first; the seq word is the publication. Under group commit the
  // content fence is absorbed by the epoch and the publication withheld
  // to its close — the slot can never point at un-durable bytes.
  dev_->store(off + 8, {buf, kBodyLen});
  if (batcher_ != nullptr && batcher_->batching()) {
    batcher_->flush(off + 8, kBodyLen);
    batcher_->fence();
    batcher_->publish_u64(off, seq);
  } else {
    dev_->persist(off + 8, kBodyLen);
    dev_->store_u64(off, seq);
    dev_->persist(off, 8);
  }
  seq_ = seq;
  inc(m_records_);
  return seq;
}

std::vector<RecoveredFlight> FlightRecorder::scan(ScanStats* stats) const {
  ScanStats st;
  std::vector<RecoveredFlight> out;
  for (u64 i = 0; i < capacity_; i++) {
    const u64 off = slot_off(i);
    st.scanned++;
    const u64 seq = dev_->load_u64(off);
    if (seq == 0) continue;
    FlightRecord rec;
    std::memcpy(&rec, dev_->at(off + 8, kBodyLen), kBodyLen);
    if (record_crc(rec, seq) != rec.crc) {
      st.invalid++;  // torn overwrite or stale seq — never returned
      continue;
    }
    st.valid++;
    st.max_seq = std::max(st.max_seq, seq);
    out.push_back({seq, rec});
  }
  std::sort(out.begin(), out.end(),
            [](const RecoveredFlight& a, const RecoveredFlight& b) {
              return a.seq < b.seq;
            });
  st.contiguous =
      out.empty() || out.back().seq - out.front().seq + 1 == st.valid;
  if (stats != nullptr) *stats = st;
  return out;
}

}  // namespace papm::obs
