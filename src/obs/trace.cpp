#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

namespace papm::obs {

double Attribution::server_sum_ns() const noexcept {
  double sum = 0;
  for (int i = 0; i < kStages; i++) {
    if (static_cast<Stage>(i) == Stage::rtt) continue;
    if (static_cast<Stage>(i) == Stage::repl_apply) continue;
    sum += requests == 0 ? 0.0
                         : static_cast<double>(total_ns[i]) /
                               static_cast<double>(requests);
  }
  return sum;
}

Attribution attribute(const TraceLog& log) {
  Attribution a;
  std::unordered_set<u64> reqs;
  for (const SpanEvent& e : log.events()) {
    a.total_ns[static_cast<int>(e.stage)] += e.dur;
    a.spans[static_cast<int>(e.stage)]++;
    if (e.stage != Stage::rtt) reqs.insert(e.req);
  }
  a.requests = reqs.size();
  return a;
}

namespace {

// Track -> Perfetto process/thread identity. Server shards share pid 1;
// the client and each replica get their own process so a stitched trace
// renders each host as its own track group.
struct TrackIdentity {
  u32 pid = 1;
  std::string process;
  std::string thread;
};

TrackIdentity track_identity(u32 t) {
  if (t == kClientTrack) return {2, "papm-client", "client0"};
  if (t >= kReplicaTrackBase) {
    const u32 i = t - kReplicaTrackBase;
    return {3 + i, "papm-replica" + std::to_string(i), "apply"};
  }
  return {1, "papm-server", "shard" + std::to_string(t)};
}

}  // namespace

std::string chrome_trace_json(const TraceLog& log) {
  // Stable output: sort by (ts, track, stage) so identical runs export
  // byte-identical traces.
  std::vector<SpanEvent> evs = log.events();
  std::sort(evs.begin(), evs.end(), [](const SpanEvent& a, const SpanEvent& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    if (a.track != b.track) return a.track < b.track;
    return static_cast<int>(a.stage) < static_cast<int>(b.stage);
  });

  std::string out = "{\"traceEvents\": [";
  char buf[256];
  bool first = true;

  std::vector<u32> tracks;
  for (const SpanEvent& e : evs) {
    if (std::find(tracks.begin(), tracks.end(), e.track) == tracks.end()) {
      tracks.push_back(e.track);
    }
  }
  std::sort(tracks.begin(), tracks.end());

  // Process-name metadata ("M" phase), one per distinct pid — without
  // these Perfetto shows bare pid numbers for every track group.
  std::vector<u32> pids;
  for (u32 t : tracks) {
    const TrackIdentity id = track_identity(t);
    if (std::find(pids.begin(), pids.end(), id.pid) != pids.end()) continue;
    pids.push_back(id.pid);
    std::snprintf(buf, sizeof buf,
                  "%s{\"name\": \"process_name\", \"ph\": \"M\", "
                  "\"pid\": %u, \"args\": {\"name\": \"%s\"}}",
                  first ? "" : ", ", id.pid, id.process.c_str());
    out += buf;
    first = false;
  }

  // Thread-name metadata so Perfetto labels the tracks.
  for (u32 t : tracks) {
    const TrackIdentity id = track_identity(t);
    std::snprintf(buf, sizeof buf,
                  "%s{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": %u, "
                  "\"tid\": %u, \"args\": {\"name\": \"%s\"}}",
                  first ? "" : ", ", id.pid, t, id.thread.c_str());
    out += buf;
    first = false;
  }

  for (const SpanEvent& e : evs) {
    std::snprintf(buf, sizeof buf,
                  "%s{\"name\": \"%.*s\", \"ph\": \"X\", \"pid\": %u, "
                  "\"tid\": %u, \"ts\": %.3f, \"dur\": %.3f, "
                  "\"args\": {\"req\": %llu}}",
                  first ? "" : ", ",
                  static_cast<int>(to_string(e.stage).size()),
                  to_string(e.stage).data(), track_identity(e.track).pid,
                  e.track, static_cast<double>(e.ts) / 1000.0,
                  static_cast<double>(e.dur) / 1000.0,
                  static_cast<unsigned long long>(e.req));
    out += buf;
    first = false;
  }
  out += "]}";
  return out;
}

}  // namespace papm::obs
