// Admin-plane exporters: the wire formats the live endpoints serve.
//
// The server's admin endpoints (/stats, /metrics, /trace/recent — see
// src/app/server.cpp) snapshot the shared-nothing registries with
// merge_from() and hand the merged copy here; nothing in this file
// touches hot-path state.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace papm::obs {

// "pm.clwb" -> "papm_pm_clwb": the Prometheus-legal spelling of a
// registry name (prefix "papm_", every non-alphanumeric byte -> '_').
[[nodiscard]] std::string prometheus_name(std::string_view name);

// Prometheus text exposition (format 0.0.4) of a merged registry.
// Counters and gauges export their value under prometheus_name();
// histograms export as a summary: `{quantile="0.5|0.99|0.999"}` rows
// carrying the nearest-rank bucket upper bounds, plus `_sum`/`_count`.
[[nodiscard]] std::string prometheus_text(const MetricRegistry& reg);

// The `limit` most recent spans of a merged trace log (sorted by start
// timestamp), as {"dropped": N, "spans": [{req, track, stage, ts_ns,
// dur_ns}...]}. `dropped` is the merged ring-overwrite total.
[[nodiscard]] std::string trace_recent_json(const TraceLog& log,
                                            std::size_t limit);

}  // namespace papm::obs
