#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace papm::obs {

u64 Histogram::quantile_upper(double q) const noexcept {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest rank within the cumulative bucket counts: ceil(q*N) clamped
  // to [1, N] — the same convention as Stats::percentile, so a
  // histogram-derived tail and an exact-sample tail agree on which
  // sample the rank points at (the bucket bound is still an upper bound).
  u64 rank = static_cast<u64>(
      std::ceil(q * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  if (rank > count_) rank = count_;
  u64 cum = 0;
  for (int i = 0; i < kBuckets; i++) {
    cum += buckets_[i];
    if (cum >= rank) return bucket_upper(i);
  }
  return bucket_upper(kBuckets - 1);
}

Counter& MetricRegistry::counter(std::string_view name) {
  auto it = counter_idx_.find(std::string(name));
  if (it != counter_idx_.end()) return counters_[it->second];
  counters_.emplace_back();
  counter_idx_.emplace(std::string(name), counters_.size() - 1);
  return counters_.back();
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  auto it = gauge_idx_.find(std::string(name));
  if (it != gauge_idx_.end()) return gauges_[it->second];
  gauges_.emplace_back();
  gauge_idx_.emplace(std::string(name), gauges_.size() - 1);
  return gauges_.back();
}

Histogram& MetricRegistry::histogram(std::string_view name) {
  auto it = hist_idx_.find(std::string(name));
  if (it != hist_idx_.end()) return hists_[it->second];
  hists_.emplace_back();
  hist_idx_.emplace(std::string(name), hists_.size() - 1);
  return hists_.back();
}

void MetricRegistry::merge_from(const MetricRegistry& o) {
  for (const auto& [name, idx] : o.counter_idx_) {
    counter(name).merge_from(o.counters_[idx]);
  }
  for (const auto& [name, idx] : o.gauge_idx_) {
    gauge(name).merge_from(o.gauges_[idx]);
  }
  for (const auto& [name, idx] : o.hist_idx_) {
    histogram(name).merge_from(o.hists_[idx]);
  }
}

void MetricRegistry::reset_values() noexcept {
  for (auto& c : counters_) c.reset();
  for (auto& g : gauges_) g.reset();
  for (auto& h : hists_) h.reset();
}

std::vector<std::string> MetricRegistry::sorted_names(
    const std::unordered_map<std::string, std::size_t>& idx) {
  std::vector<std::string> names;
  names.reserve(idx.size());
  for (const auto& [n, _] : idx) names.push_back(n);
  std::sort(names.begin(), names.end());
  return names;
}

std::string MetricRegistry::report() const {
  std::string out;
  char buf[160];
  each_counter([&](const std::string& n, const Counter& c) {
    std::snprintf(buf, sizeof buf, "%-28s %14llu\n", n.c_str(),
                  static_cast<unsigned long long>(c.value()));
    out += buf;
  });
  each_gauge([&](const std::string& n, const Gauge& g) {
    std::snprintf(buf, sizeof buf, "%-28s %14llu  (high-water)\n", n.c_str(),
                  static_cast<unsigned long long>(g.value()));
    out += buf;
  });
  each_histogram([&](const std::string& n, const Histogram& h) {
    std::snprintf(buf, sizeof buf,
                  "%-28s n=%-10llu mean=%-12.1f p50<=%-10llu p99<=%-10llu "
                  "p999<=%llu\n",
                  n.c_str(), static_cast<unsigned long long>(h.count()),
                  h.mean(),
                  static_cast<unsigned long long>(h.quantile_upper(0.50)),
                  static_cast<unsigned long long>(h.quantile_upper(0.99)),
                  static_cast<unsigned long long>(h.quantile_upper(0.999)));
    out += buf;
  });
  return out;
}

std::string MetricRegistry::to_json() const {
  std::string out = "{\"counters\": {";
  char buf[160];
  bool first = true;
  each_counter([&](const std::string& n, const Counter& c) {
    std::snprintf(buf, sizeof buf, "%s\"%s\": %llu", first ? "" : ", ",
                  n.c_str(), static_cast<unsigned long long>(c.value()));
    out += buf;
    first = false;
  });
  out += "}, \"gauges\": {";
  first = true;
  each_gauge([&](const std::string& n, const Gauge& g) {
    std::snprintf(buf, sizeof buf, "%s\"%s\": %llu", first ? "" : ", ",
                  n.c_str(), static_cast<unsigned long long>(g.value()));
    out += buf;
    first = false;
  });
  out += "}, \"histograms\": {";
  first = true;
  each_histogram([&](const std::string& n, const Histogram& h) {
    std::snprintf(buf, sizeof buf,
                  "%s\"%s\": {\"count\": %llu, \"sum\": %llu, \"mean\": %.6f, "
                  "\"p50_upper\": %llu, \"p99_upper\": %llu, "
                  "\"p999_upper\": %llu}",
                  first ? "" : ", ", n.c_str(),
                  static_cast<unsigned long long>(h.count()),
                  static_cast<unsigned long long>(h.sum()), h.mean(),
                  static_cast<unsigned long long>(h.quantile_upper(0.50)),
                  static_cast<unsigned long long>(h.quantile_upper(0.99)),
                  static_cast<unsigned long long>(h.quantile_upper(0.999)));
    out += buf;
    first = false;
  });
  out += "}}";
  return out;
}

}  // namespace papm::obs
