// PM-persistent flight recorder: the last N requests survive the crash.
//
// The paper's pitch is that packet payloads the NIC lands in PM are
// already durable data structures — this applies the same argument to
// the stack's own telemetry. A FlightRecorder is a per-shard, fixed-size
// PM ring of compact per-request records (op id, per-stage latencies,
// commit-epoch serial, result code). In-memory traces die with the
// process at exactly the moment attribution matters most; the recorder's
// ring is what a post-mortem reads back.
//
// Durability protocol — same shape as every structure in this stack:
//
//   slot := [ seq u64 | body (80 B) | pad to 128 B ]
//
// The body is stored and flushed first; the 8-byte `seq` word is the
// *publication*: a slot is valid iff seq != 0 and the body's CRC
// (crc32c over the body with its crc field zeroed, extended with the
// seq value, masked) verifies. Under group commit the seq store goes
// through FlushBatcher::publish_u64, so it is withheld from every crash
// drain path until the epoch's first fence has made the body durable —
// a power cut at any flush/fence boundary leaves each slot either
// absent, or whole and correctly sequenced. Binding the CRC to the seq
// also closes the ring-reuse hazard: an old seq over a half-overwritten
// body fails the check, so a torn overwrite invalidates the slot rather
// than resurrecting a stale record.
//
// Recovery scans every slot of the ring, keeps the CRC-valid ones and
// orders them by seq. The crash harness reconciles the result against
// its AckLog: every acked op's record must be present (its publication
// retired before the ack was released); records beyond the last ack are
// the in-flight tail that attributes the crash point.
//
// The recorder is an ordinary PM structure and works with PAPM_OBS=OFF
// (only its registry hooks go inert); whether a *server* creates one is
// runtime policy gated on obs::kEnabled, keeping default bench numbers
// bit-identical.
#pragma once

#include <vector>

#include "common/types.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pm/flush_batch.h"
#include "pm/pm_device.h"
#include "pm/pm_pool.h"

namespace papm::obs {

// One recorded request. 80 bytes, stored verbatim in the slot body.
// stage_ns is the request's Table-1 row (u32 ns per stage: 4.29 s per
// stage is plenty for a single request).
struct FlightRecord {
  u64 req = 0;            // server-assigned op id
  u64 t0_ns = 0;          // NIC ingress timestamp (sim ns)
  u64 epoch = 0;          // commit-epoch serial (0 = unbatched)
  u32 stage_ns[kStages] = {};
  u16 result = 0;         // HTTP status the op resolved to
  u8 op = 0;              // method byte: 'P' put, 'G' get, 'D' delete
  u8 pad = 0;
  u32 crc = 0;            // crc32c(body with crc=0, extended with seq), masked
};
static_assert(sizeof(FlightRecord) == 80);
static_assert(std::is_trivially_copyable_v<FlightRecord>);

// A validated slot, as recovery returns it.
struct RecoveredFlight {
  u64 seq = 0;
  FlightRecord rec;
};

class FlightRecorder {
 public:
  static constexpr u64 kSlotSize = 128;  // 8 B seq + 80 B body + pad, 2 lines
  static constexpr u64 kBodyLen = sizeof(FlightRecord);
  static constexpr u64 kHeaderLen = 64;  // magic/capacity/shard line

  /// Formats a fresh ring: allocates header + `capacity` slots from
  /// `pool`, zeroes and persists them (no stale seq can validate), and
  /// registers the region under the per-shard root "obs.flightrec<shard>".
  [[nodiscard]] static Result<FlightRecorder> create(pm::PmDevice& dev,
                                                     pm::PmPool& pool,
                                                     u16 shard, u32 capacity);

  /// Re-attaches to a formatted ring by root name; fails with not_found
  /// when the shard never created one, corrupted on a bad header. The
  /// attached recorder's seq resumes past the highest valid slot.
  [[nodiscard]] static Result<FlightRecorder> recover(pm::PmDevice& dev,
                                                      u16 shard);

  /// Routes flush/fence/publication through the group-commit path when
  /// `b` is batching; null (or idle) falls back to fence-per-record.
  void set_batcher(pm::FlushBatcher* b) noexcept { batcher_ = b; }

  /// Registers obs.flightrec_records / obs.flightrec_wraps counters.
  void set_metrics(MetricRegistry* r);

  /// Appends one record, returning its publication seq (1-based,
  /// monotonic). Body first, flush; seq published after — withheld to
  /// the epoch close under group commit. May throw pm::PowerFailure
  /// under an armed fault plan, like every persistence call.
  u64 append(const FlightRecord& rec);

  struct ScanStats {
    u64 scanned = 0;     // slots inspected (== capacity)
    u64 valid = 0;       // slots whose seq+CRC verified
    u64 invalid = 0;     // nonzero-seq slots failing CRC (torn/stale)
    u64 max_seq = 0;
    bool contiguous = true;  // valid seqs form max_seq-valid+1 .. max_seq
  };

  /// Scans the whole ring, returning the CRC-valid records sorted by
  /// seq. Contiguity can legitimately break only inside the crashed
  /// epoch's unfenced publication tail — acked records are always a
  /// solid prefix.
  [[nodiscard]] std::vector<RecoveredFlight> scan(
      ScanStats* stats = nullptr) const;

  [[nodiscard]] u32 capacity() const noexcept { return capacity_; }
  [[nodiscard]] u16 shard() const noexcept { return shard_; }
  [[nodiscard]] u64 seq() const noexcept { return seq_; }
  [[nodiscard]] u64 wraps() const noexcept { return wraps_; }
  [[nodiscard]] u64 region() const noexcept { return region_; }

  /// CRC the append/scan protocol agrees on; exposed for tests that
  /// forge or corrupt slots.
  [[nodiscard]] static u32 record_crc(const FlightRecord& rec, u64 seq);

 private:
  FlightRecorder(pm::PmDevice& dev, u64 region, u32 capacity, u16 shard)
      : dev_(&dev), region_(region), capacity_(capacity), shard_(shard) {}

  [[nodiscard]] u64 slot_off(u64 index) const noexcept {
    return region_ + kHeaderLen + index * kSlotSize;
  }

  pm::PmDevice* dev_;
  u64 region_;
  u32 capacity_;
  u16 shard_;
  u64 seq_ = 0;    // last published seq (next append publishes seq_+1)
  u64 wraps_ = 0;  // appends that overwrote a previously written slot
  pm::FlushBatcher* batcher_ = nullptr;
  Counter* m_records_ = nullptr;
  Counter* m_wraps_ = nullptr;
};

}  // namespace papm::obs
