// MICA-like volatile key-value store (§2.2's comparison point).
//
// "Networked non-persistent in-memory key-value stores, such as MICA,
// eliminate networking overheads using kernel-bypass framework and
// custom UDP-based protocol. However, these systems need custom clients
// and do not support storage properties typically offered by persistent
// storage systems, such as durability and crash consistency."
//
// This store is exactly that trade: a DRAM hash table with near-zero
// data-management cost, no checksums, no persistence — and nothing
// survives a restart. bench_mica quantifies what durability costs.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "sim/env.h"

namespace papm::storage {

/// Persistence contract: none, by design — every method is DRAM-only and
/// the whole store vanishes at a crash (that is the point of comparison).
class VolatileKv {
 public:
  explicit VolatileKv(sim::Env& env) : env_(&env) {}

  Status put(std::string_view key, std::span<const u8> value) {
    auto& c = env_->cost;
    // Hash probe (~1 DRAM miss), heap allocation, one copy.
    env_->clock().advance(c.dram_read_ns + c.heap_alloc_ns +
                          c.copy_cost(value.size()));
    map_[std::string(key)].assign(value.begin(), value.end());
    return Errc::ok;
  }

  [[nodiscard]] Result<std::vector<u8>> get(std::string_view key) const {
    auto& c = env_->cost;
    env_->clock().advance(c.dram_read_ns);
    const auto it = map_.find(std::string(key));
    if (it == map_.end()) return Errc::not_found;
    env_->clock().advance(c.copy_cost(it->second.size()));
    return it->second;
  }

  bool erase(std::string_view key) {
    env_->clock().advance(env_->cost.dram_read_ns);
    return map_.erase(std::string(key)) > 0;
  }

  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }

  // What a reboot does to a DRAM store.
  void crash() { map_.clear(); }

 private:
  sim::Env* env_;
  std::unordered_map<std::string, std::vector<u8>> map_;
};

}  // namespace papm::storage
