// PM-backed memtable: persistent skip-list index over PM value records.
//
// This is the NoveLSM core ("replaces memtable with PM-backed one without
// the log", §2.1/§3). A put allocates a value record in PM, copies and
// checksums the value, persists it, and publishes it in the skip list —
// exactly the operations Table 1 prices (checksum 1.77 us, copy 1.14 us,
// alloc+insert 2.78 us, persist 1.94 us for 1 KB). Every step is
// individually toggleable via StoreKnobs and measurable via OpBreakdown.
//
// Value record layout at a PmPool block:
//   u32 value_len   u32 crc_masked (0 when checksumming is off)
//   u32 flags (bit0: tombstone)   u32 reserved
//   value bytes
#pragma once

#include <cstring>
#include <string_view>

#include "common/crc32c.h"
#include "container/pskiplist.h"
#include "storage/knobs.h"

namespace papm::storage {

class PmMemtable {
 public:
  static constexpr u64 kValueHdr = 16;

  /// Creates an empty memtable; index head durable under root `name`.
  static PmMemtable create(pm::PmDevice& dev, pm::PmPool& pool,
                           std::string_view name);
  /// Re-attaches post-crash (rebuilds the index's volatile towers; see
  /// PSkipList::recover for what that may write).
  static Result<PmMemtable> recover(pm::PmDevice& dev, pm::PmPool& pool,
                                    std::string_view name);

  /// Inserts or overwrites. `bd` (optional) receives the phase breakdown.
  /// Persistence contract: the checksummed value record is fully persisted
  /// *before* the index publishes it (8-byte payload link), so a crash
  /// mid-put exposes either the old value or the new one, never a torn
  /// record; the value is durable iff put() returned ok. A crash between
  /// record persist and index publish leaks the record's block.
  Status put(std::string_view key, std::span<const u8> value,
             const StoreKnobs& knobs, OpBreakdown* bd = nullptr) {
    return put_impl(key, value, /*flags=*/0, knobs, bd);
  }

  /// Deletion marker for LSM semantics: shadows older tables' entries.
  /// Same ordering contract as put() (a tombstone is a flagged record).
  Status put_tombstone(std::string_view key, const StoreKnobs& knobs,
                       OpBreakdown* bd = nullptr) {
    return put_impl(key, {}, kTombstone, knobs, bd);
  }

  // Raw lookup for the LSM read path: reports tombstones instead of
  // hiding them, and skips checksum verification.
  struct Entry {
    std::span<const u8> value;
    bool tombstone;
  };
  [[nodiscard]] Result<Entry> lookup(std::string_view key) const;

  /// Returns a copy of the value; verifies the checksum when one was
  /// stored (Errc::corrupted on mismatch — a torn record can never be
  /// returned as ok).
  Result<std::vector<u8>> get(std::string_view key) const;

  // Zero-copy view of the stored value (valid until the next mutation or
  // crash). No checksum verification.
  Result<std::span<const u8>> get_view(std::string_view key) const;

  /// Physical removal: the index persists the node's dead flag (the
  /// linearization point) before unlinking and freeing the record, so a
  /// mid-erase crash leaves the key either present-and-intact or gone.
  bool erase(std::string_view key);

  // fn(key, value_view, tombstone); ordered; stops early on false.
  template <typename Fn>
  void scan(std::string_view from, std::string_view to, Fn&& fn) const {
    index_.scan(from, to, [&](std::string_view k, u64 rec) {
      u32 flags;
      std::memcpy(&flags, dev_->at(rec + 8, 4), 4);
      return fn(k, value_view(rec), (flags & kTombstone) != 0);
    });
  }

  [[nodiscard]] std::size_t size() const noexcept { return index_.size(); }
  [[nodiscard]] Status validate() const { return index_.validate(); }

  // Back-to-back hint (group commit + warm index); see cost_model.h.
  void set_batched(bool b) noexcept {
    batched_ = b;
    index_.set_warm(b);
  }

  // Group-commit routing: value-record flushes ride the epoch fences, the
  // index routes its publications through the batcher, and replaced
  // records are quarantined past the epoch close (an old value must
  // outlive every cut that could still resurrect it).
  void set_batcher(pm::FlushBatcher* b) noexcept {
    batcher_ = b;
    index_.set_batcher(b);
  }

 private:
  static constexpr u32 kTombstone = 1;

  PmMemtable(pm::PmDevice& dev, pm::PmPool& pool,
             container::PSkipList index)
      : dev_(&dev), pool_(&pool), index_(std::move(index)) {}

  Status put_impl(std::string_view key, std::span<const u8> value, u32 flags,
                  const StoreKnobs& knobs, OpBreakdown* bd);
  [[nodiscard]] std::span<const u8> value_view(u64 rec) const;
  [[nodiscard]] static u64 record_bytes(u64 value_len) noexcept {
    return kValueHdr + value_len;
  }

  pm::PmDevice* dev_;
  pm::PmPool* pool_;
  container::PSkipList index_;
  pm::FlushBatcher* batcher_ = nullptr;
  bool batched_ = false;
  // Scratch destination used when index insertion is disabled (the §3
  // "skip this logical operation" configuration): the copy and flush
  // still happen, but no allocation does.
  u64 scratch_ = 0;
  u64 scratch_cap_ = 0;
};

}  // namespace papm::storage
