#include "storage/lsm_store.h"

#include <map>

namespace papm::storage {

namespace {
constexpr u64 kMaxLiveTables = 7;

// Meta root value: live table range [first, next).
constexpr u64 pack_meta(u64 first, u64 next) { return first << 32 | next; }
constexpr u64 meta_first(u64 v) { return v >> 32; }
constexpr u64 meta_next(u64 v) { return v & 0xffffffffu; }
}  // namespace

void LsmStore::persist_count() {
  const u64 first = next_table_ - 1 - frozen_.size();
  (void)dev_->set_root(name_ + ".meta", pack_meta(first, next_table_));
}

LsmStore LsmStore::create(pm::PmDevice& dev, pm::PmPool& pool,
                          std::string_view name, LsmOptions opts) {
  LsmStore store(dev, pool, std::string(name), opts);
  store.active_ = PmMemtable::create(dev, pool, store.table_name(0));
  store.next_table_ = 1;
  store.persist_count();
  if (opts.use_wal) {
    auto span = pool.alloc(opts.wal_bytes);
    if (!span.ok()) throw std::runtime_error("LsmStore: no space for WAL");
    store.wal_ = Wal::create(dev, std::string(name) + ".wal",
                             align_up(span.value(), kCacheLine),
                             opts.wal_bytes - kCacheLine);
  }
  return store;
}

Result<LsmStore> LsmStore::recover(pm::PmDevice& dev, pm::PmPool& pool,
                                   std::string_view name, LsmOptions opts) {
  const auto meta = dev.get_root(std::string(name) + ".meta");
  if (!meta.ok()) return meta.errc();
  const u64 first = meta_first(meta.value());
  const u64 next = meta_next(meta.value());
  if (next <= first || next - first > kMaxLiveTables + 1) return Errc::corrupted;

  LsmStore store(dev, pool, std::string(name), opts);
  store.next_table_ = next;
  for (u64 n = first; n < next; n++) {
    auto table = PmMemtable::recover(dev, pool, store.table_name(n));
    if (!table.ok()) return table.errc();
    if (n + 1 == next) {
      store.active_ = std::move(table.value());
    } else {
      store.frozen_.push_back(std::move(table.value()));
    }
  }
  if (opts.use_wal) {
    auto wal = Wal::recover(dev, std::string(name) + ".wal");
    if (!wal.ok()) return wal.errc();
    store.wal_ = std::move(wal.value());
    // Replay the tail into the (already durable) active table; puts are
    // idempotent, so double-application is harmless.
    StoreKnobs replay_knobs;  // full pipeline
    store.wal_->replay([&](WalRecordType t, std::string_view k,
                           std::span<const u8> v) {
      if (t == WalRecordType::put) {
        (void)store.active_->put(k, v, replay_knobs);
      } else {
        (void)store.active_->put_tombstone(k, replay_knobs);
      }
    });
  }
  return store;
}

Status LsmStore::put(std::string_view key, std::span<const u8> value,
                     OpBreakdown* bd) {
  obs::inc(m_puts_);
  if (wal_.has_value()) {
    Status st = wal_->append(WalRecordType::put, key, value);
    if (st.errc() == Errc::out_of_space) {
      // LevelDB behaviour: a full log forces a memtable switch, which
      // makes the log tail redundant and truncates it.
      Status rot = rotate();
      if (rot.errc() == Errc::out_of_space) rot = compact();
      if (!rot.ok()) return rot;
      if (wal_->bytes_used() > 0) wal_->truncate();
      st = wal_->append(WalRecordType::put, key, value);
    }
    if (!st.ok()) return st;
  }
  const Status st = active_->put(key, value, opts_.knobs, bd);
  if (!st.ok()) return st;
  bytes_in_active_ += PmMemtable::kValueHdr + value.size() + key.size();
  return maybe_rotate();
}

Status LsmStore::erase(std::string_view key) {
  obs::inc(m_erases_);
  if (wal_.has_value()) {
    Status st = wal_->append(WalRecordType::erase, key, {});
    if (st.errc() == Errc::out_of_space) {
      Status rot = rotate();
      if (rot.errc() == Errc::out_of_space) rot = compact();
      if (!rot.ok()) return rot;
      if (wal_->bytes_used() > 0) wal_->truncate();
      st = wal_->append(WalRecordType::erase, key, {});
    }
    if (!st.ok()) return st;
  }
  // In the single-table configuration a tombstone has nothing to shadow;
  // physically erase instead so memory is reclaimed.
  if (frozen_.empty()) {
    active_->erase(key);
    return Errc::ok;
  }
  const Status st = active_->put_tombstone(key, opts_.knobs);
  if (!st.ok()) return st;
  return maybe_rotate();
}

Result<std::vector<u8>> LsmStore::get(std::string_view key) const {
  obs::inc(m_gets_);
  const auto top = active_->lookup(key);
  if (top.ok()) {
    if (top->tombstone) return Errc::not_found;
    return active_->get(key);  // verified, copying read
  }
  for (auto it = frozen_.rbegin(); it != frozen_.rend(); ++it) {
    const auto e = it->lookup(key);
    if (e.ok()) {
      if (e->tombstone) return Errc::not_found;
      return it->get(key);
    }
  }
  return Errc::not_found;
}

void LsmStore::scan(
    std::string_view from, std::string_view to,
    const std::function<bool(std::string_view, std::span<const u8>)>& fn) const {
  // Merge newest-first: the first writer of a key wins.
  struct Hit {
    std::span<const u8> value;
    bool tombstone;
  };
  std::map<std::string, Hit, std::less<>> merged;
  auto absorb = [&](const PmMemtable& t) {
    t.scan(from, to, [&](std::string_view k, std::span<const u8> v, bool tomb) {
      merged.emplace(std::string(k), Hit{v, tomb});  // keeps newest
      return true;
    });
  };
  absorb(*active_);
  for (auto it = frozen_.rbegin(); it != frozen_.rend(); ++it) absorb(*it);
  for (const auto& [k, hit] : merged) {
    if (hit.tombstone) continue;
    if (!fn(k, hit.value)) return;
  }
}

Status LsmStore::maybe_rotate() {
  if (opts_.memtable_limit_bytes == 0 ||
      bytes_in_active_ < opts_.memtable_limit_bytes) {
    return Errc::ok;
  }
  return rotate();
}

Status LsmStore::rotate() {
  if (active_->size() == 0) return Errc::ok;
  if (frozen_.size() + 1 >= kMaxLiveTables) return Errc::out_of_space;
  obs::inc(m_rotations_);
  frozen_.push_back(std::move(*active_));
  active_ = PmMemtable::create(*dev_, *pool_, table_name(next_table_));
  if (batcher_ != nullptr) active_->set_batcher(batcher_);
  next_table_++;
  bytes_in_active_ = 0;
  persist_count();
  // The frozen tables are durable in PM; the log tail is now redundant.
  if (wal_.has_value()) wal_->truncate();
  return Errc::ok;
}

Status LsmStore::compact() {
  if (frozen_.empty()) return Errc::ok;
  // Merge everything into a fresh table; tombstones drop out entirely.
  auto merged = PmMemtable::create(*dev_, *pool_, table_name(next_table_));
  StoreKnobs knobs = opts_.knobs;
  std::map<std::string, std::pair<std::vector<u8>, bool>, std::less<>> entries;
  auto absorb = [&](const PmMemtable& t) {
    t.scan("", "", [&](std::string_view k, std::span<const u8> v, bool tomb) {
      entries.emplace(std::string(k),
                      std::make_pair(std::vector<u8>(v.begin(), v.end()), tomb));
      return true;
    });
  };
  absorb(*active_);
  for (auto it = frozen_.rbegin(); it != frozen_.rend(); ++it) absorb(*it);

  for (const auto& [k, e] : entries) {
    if (e.second) continue;  // tombstone: drop
    const Status st = merged.put(k, e.first, knobs);
    if (!st.ok()) return st;
  }
  // Reclaim old tables' records. (Skip-list head nodes are not reclaimed;
  // see DESIGN.md "known simplifications".)
  auto drain = [&](PmMemtable& t) {
    std::vector<std::string> keys;
    t.scan("", "", [&](std::string_view k, std::span<const u8>, bool) {
      keys.emplace_back(k);
      return true;
    });
    for (const auto& k : keys) t.erase(k);
  };
  drain(*active_);
  for (auto& t : frozen_) drain(t);
  frozen_.clear();
  active_ = std::move(merged);
  if (batcher_ != nullptr) active_->set_batcher(batcher_);
  next_table_++;
  bytes_in_active_ = 0;
  persist_count();
  return Errc::ok;
}

std::size_t LsmStore::entries() const noexcept {
  std::size_t n = active_->size();
  for (const auto& t : frozen_) n += t.size();
  return n;
}

}  // namespace papm::storage
