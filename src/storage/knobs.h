// Store knobs and per-operation breakdown — the instrumentation §3's
// methodology requires ("further modifying the storage stack to skip one
// or more logical operations").
#pragma once

#include "common/types.h"
#include "pm/flush_batch.h"

namespace papm::storage {

// Each flag enables one component of the Table 1 data-management cost.
struct StoreKnobs {
  bool request_prep = true;  // LevelDB-style request structure preparation
  bool checksum = true;      // CRC32C over the value
  bool data_copy = true;     // copy payload into a store-owned PM buffer
  bool index_insert = true;  // PM allocation + persistent skip-list insert
  bool persistence = true;   // flush the value record's cache lines to PM

  // Group/epoch-commit policy for the per-shard FlushBatcher (max epoch
  // size, max ack deferral); enabled is AND'ed with the PAPM_GROUP_COMMIT
  // compile switch and with HostCpu::backlogged() at runtime.
  pm::GroupCommitPolicy group_commit;
};

// Simulated-nanosecond cost of each phase of one operation; filled when a
// breakdown pointer is passed to put().
struct OpBreakdown {
  SimTime prep_ns = 0;
  SimTime checksum_ns = 0;
  SimTime slice_ns = 0;       // sliced-descriptor bookkeeping (NIC slicer)
  SimTime copy_ns = 0;
  SimTime alloc_insert_ns = 0;
  SimTime nic_insert_ns = 0;  // doorbell + wait + completion (NIC engine)
  SimTime persist_ns = 0;

  [[nodiscard]] SimTime data_mgmt_ns() const noexcept {
    return prep_ns + checksum_ns + slice_ns + copy_ns + alloc_insert_ns +
           nic_insert_ns;
  }
  [[nodiscard]] SimTime total_ns() const noexcept {
    return data_mgmt_ns() + persist_ns;
  }

  OpBreakdown& operator+=(const OpBreakdown& o) noexcept {
    prep_ns += o.prep_ns;
    checksum_ns += o.checksum_ns;
    slice_ns += o.slice_ns;
    copy_ns += o.copy_ns;
    alloc_insert_ns += o.alloc_insert_ns;
    nic_insert_ns += o.nic_insert_ns;
    persist_ns += o.persist_ns;
    return *this;
  }
  OpBreakdown& operator/=(SimTime n) noexcept {
    if (n > 0) {
      prep_ns /= n;
      checksum_ns /= n;
      slice_ns /= n;
      copy_ns /= n;
      alloc_insert_ns /= n;
      nic_insert_ns /= n;
      persist_ns /= n;
    }
    return *this;
  }
};

}  // namespace papm::storage
