// LSM key-value store over PM — the NoveLSM-like baseline of §3.
//
// A mutable PM memtable absorbs writes; when it exceeds the rotation
// threshold it is frozen and a new one starts (NoveLSM's immutable
// memtables). Per the paper's methodology, *compaction is off* during
// experiments ("we configure NoveLSM to not move the data to disks");
// compact() exists for the ablation benches. Reads consult the mutable
// table first, then frozen tables newest-first; deletes write tombstones.
//
// Optional write-ahead log models classic LevelDB-on-PM (NoveLSM's design
// point is precisely dropping it — ablation A-wal shows what it costs).
//
// An LsmStore instance is single-threaded by construction: on a
// scaled-out host (DESIGN.md §7) the KvServer creates one store per
// datapath shard over that shard's private PmPool slice, writes to the
// key's home shard and merges shard views on reads — there is no
// cross-core sharing inside a store.
#pragma once

#include <deque>
#include <optional>
#include <string>

#include "storage/memtable.h"
#include "storage/wal.h"

namespace papm::storage {

struct LsmOptions {
  StoreKnobs knobs;
  bool use_wal = false;
  u64 memtable_limit_bytes = 0;  // 0 = never rotate
  u64 wal_bytes = 1 << 20;       // WAL span (when use_wal)
};

class LsmStore {
 public:
  /// Creates a fresh store; PM structures are registered under roots
  /// "<name>.cnt", "<name>.t<N>.idx" and (optionally) "<name>.wal", all
  /// durable before returning.
  static LsmStore create(pm::PmDevice& dev, pm::PmPool& pool,
                         std::string_view name, LsmOptions opts = LsmOptions());

  /// Reattaches after a crash: recovers every table and replays the WAL
  /// tail into the mutable memtable (the replay re-runs normal puts, so a
  /// crash *during* recovery is itself recoverable). `opts` must match
  /// the options the store was created with.
  static Result<LsmStore> recover(pm::PmDevice& dev, pm::PmPool& pool,
                                  std::string_view name,
                                  LsmOptions opts = LsmOptions());

  /// Durable iff it returned ok (the memtable's record-then-publish
  /// ordering; with use_wal the WAL append persists first, so the value
  /// additionally survives even if the memtable publish was cut short).
  /// May rotate the memtable first when the limit is configured.
  Status put(std::string_view key, std::span<const u8> value,
             OpBreakdown* bd = nullptr);
  /// Tombstone (or physical erase in the single-table configuration);
  /// durable iff ok, same ordering contract as put().
  Status erase(std::string_view key);

  /// Copy-out read across all tables, newest first; verifies checksums
  /// (Errc::corrupted surfaces torn records instead of returning them).
  [[nodiscard]] Result<std::vector<u8>> get(std::string_view key) const;

  // Ordered range scan across all tables (newest value wins, tombstones
  // hide older entries). fn(key, value_view); stops early on false.
  void scan(std::string_view from, std::string_view to,
            const std::function<bool(std::string_view, std::span<const u8>)>& fn)
      const;

  /// Freezes the mutable memtable (no-op when empty). The new table's
  /// roots are created and persisted before the table count is published
  /// with one atomic 8-byte overwrite — a mid-rotation crash recovers to
  /// either the old or the new table set, never a mix.
  Status rotate();

  // Merges every frozen table into the mutable one and drops them —
  // the compaction the paper's experiments disable.
  Status compact();

  [[nodiscard]] std::size_t table_count() const noexcept {
    return 1 + frozen_.size();
  }
  [[nodiscard]] std::size_t entries() const noexcept;
  [[nodiscard]] bool has_wal() const noexcept { return wal_.has_value(); }

  // Back-to-back hint for the active memtable (group commit regime).
  void set_batched(bool b) noexcept {
    if (active_.has_value()) active_->set_batched(b);
  }

  // Group-commit routing for the active memtable and the WAL; survives
  // rotation/compaction (fresh tables are re-attached). Frozen tables
  // are only mutated by compact(), which stays on legacy fences.
  void set_batcher(pm::FlushBatcher* b) noexcept {
    batcher_ = b;
    if (active_.has_value()) active_->set_batcher(b);
    if (wal_.has_value()) wal_->set_batcher(b);
  }

  // Mirrors op counts into a (per-shard) registry: store.puts /
  // store.gets / store.erases / store.rotations, plus the WAL's
  // wal.* counters when the log is enabled.
  void set_metrics(obs::MetricRegistry* r) {
    m_puts_ = r != nullptr ? &r->counter("store.puts") : nullptr;
    m_gets_ = r != nullptr ? &r->counter("store.gets") : nullptr;
    m_erases_ = r != nullptr ? &r->counter("store.erases") : nullptr;
    m_rotations_ = r != nullptr ? &r->counter("store.rotations") : nullptr;
    if (wal_.has_value()) wal_->set_metrics(r);
  }

 private:
  LsmStore(pm::PmDevice& dev, pm::PmPool& pool, std::string name,
           LsmOptions opts)
      : dev_(&dev), pool_(&pool), name_(std::move(name)), opts_(opts) {}

  // Table numbers map onto 8 recycled root-name slots: the live range
  // [first, next) never exceeds 8 tables, so slots never collide and the
  // device root table stays bounded.
  [[nodiscard]] std::string table_name(u64 n) const {
    return name_ + ".t" + std::to_string(n % 8);
  }
  void persist_count();
  Status maybe_rotate();

  pm::PmDevice* dev_;
  pm::PmPool* pool_;
  std::string name_;
  LsmOptions opts_;
  pm::FlushBatcher* batcher_ = nullptr;
  std::optional<Wal> wal_;
  std::optional<PmMemtable> active_;
  std::deque<PmMemtable> frozen_;  // newest at back
  u64 next_table_ = 1;             // next table number to allocate
  u64 bytes_in_active_ = 0;
  obs::Counter* m_puts_ = nullptr;
  obs::Counter* m_gets_ = nullptr;
  obs::Counter* m_erases_ = nullptr;
  obs::Counter* m_rotations_ = nullptr;
};

}  // namespace papm::storage
