#include "storage/memtable.h"

#include <cstring>

namespace papm::storage {

namespace {
// Scoped phase timer: adds elapsed simulated time to *out on destruction.
class Phase {
 public:
  Phase(sim::Env& env, SimTime* out) : env_(env), out_(out), t0_(env.now()) {}
  ~Phase() {
    if (out_ != nullptr) *out_ += env_.now() - t0_;
  }
  Phase(const Phase&) = delete;
  Phase& operator=(const Phase&) = delete;

 private:
  sim::Env& env_;
  SimTime* out_;
  SimTime t0_;
};
}  // namespace

PmMemtable PmMemtable::create(pm::PmDevice& dev, pm::PmPool& pool,
                              std::string_view name) {
  const std::string index_name = std::string(name) + ".idx";
  auto index = container::PSkipList::create(dev, pool, index_name);
  return PmMemtable(dev, pool, std::move(index));
}

Result<PmMemtable> PmMemtable::recover(pm::PmDevice& dev, pm::PmPool& pool,
                                       std::string_view name) {
  const std::string index_name = std::string(name) + ".idx";
  auto index = container::PSkipList::recover(dev, pool, index_name);
  if (!index.ok()) return index.errc();
  return PmMemtable(dev, pool, std::move(index.value()));
}

Status PmMemtable::put_impl(std::string_view key, std::span<const u8> value,
                            u32 flags, const StoreKnobs& knobs,
                            OpBreakdown* bd) {
  auto& env = dev_->env();

  // Phase 1: request preparation. LevelDB builds a WriteBatch and an
  // internal-key record before touching the memtable; we charge the
  // calibrated cost and do the small real equivalent (the record header).
  u8 rec_hdr[kValueHdr] = {};
  {
    Phase p(env, bd != nullptr ? &bd->prep_ns : nullptr);
    if (knobs.request_prep) {
      const auto prep = static_cast<SimTime>(
          static_cast<double>(env.cost.request_prep_ns) *
          (batched_ ? env.cost.batched_prep_scale : 1.0));
      env.clock().advance(prep);
    }
    const u32 vlen = static_cast<u32>(value.size());
    std::memcpy(rec_hdr, &vlen, 4);
    std::memcpy(rec_hdr + 8, &flags, 4);
  }

  // Phase 2: checksum over the value (real CRC32C + calibrated charge).
  {
    Phase p(env, bd != nullptr ? &bd->checksum_ns : nullptr);
    if (knobs.checksum) {
      env.clock().advance(env.cost.crc32c_cost(value.size()));
      const u32 crc = crc32c_mask(crc32c(value));
      std::memcpy(rec_hdr + 4, &crc, 4);
    }
  }

  // Phase 3+4: allocation, copy, index insert. The allocation and insert
  // are one accounting bucket (Table 1 row "buffer allocation and
  // insertion"); the copy is its own row.
  u64 rec = 0;
  {
    Phase p(env, bd != nullptr ? &bd->alloc_insert_ns : nullptr);
    if (knobs.index_insert) {
      auto r = pool_->alloc(record_bytes(value.size()));
      if (!r.ok()) return r.errc();
      rec = r.value();
      dev_->store(rec, rec_hdr);
    }
  }
  if (!knobs.index_insert && knobs.data_copy) {
    // No allocation charge: reuse the scratch block (grown rarely).
    if (scratch_cap_ < record_bytes(value.size())) {
      pool_->set_charges(0, 0);
      auto r = pool_->alloc(record_bytes(value.size()));
      pool_->set_charges(-1, -1);
      if (!r.ok()) return r.errc();
      scratch_ = r.value();
      scratch_cap_ = record_bytes(value.size());
    }
    rec = scratch_;
    dev_->store(rec, rec_hdr);
  }
  {
    Phase p(env, bd != nullptr ? &bd->copy_ns : nullptr);
    if (knobs.data_copy && rec != 0) {
      env.clock().advance(env.cost.copy_cost(value.size()));
      dev_->store(rec + kValueHdr, value);
    }
  }

  // Phase 5: persistence — flush the value record to PM. Under group
  // commit the clwb's issue now but the fence is the epoch's.
  {
    Phase p(env, bd != nullptr ? &bd->persist_ns : nullptr);
    if (knobs.persistence && rec != 0) {
      if (batcher_ != nullptr && batcher_->batching()) {
        batcher_->persist(rec, record_bytes(value.size()));
      } else {
        dev_->persist(rec, record_bytes(value.size()));
      }
    }
  }

  // Back to alloc+insert: publish in the index.
  {
    Phase p(env, bd != nullptr ? &bd->alloc_insert_ns : nullptr);
    if (knobs.index_insert) {
      // Replace semantics: free the old record after publishing the new.
      u64 old_rec = 0;
      const Status st = index_.put(key, rec, &old_rec);
      if (!st.ok()) return st;
      if (old_rec != 0) {
        u32 old_len;
        std::memcpy(&old_len, dev_->at(old_rec, 4), 4);
        const u64 old_bytes = record_bytes(old_len);
        if (batcher_ != nullptr && batcher_->batching()) {
          // The replaced record must survive until no cut can resolve the
          // replacing publication to the old value — free past the close.
          batcher_->defer(
              [pool = pool_, old_rec, old_bytes] { pool->free(old_rec, old_bytes); });
        } else {
          pool_->free(old_rec, old_bytes);
        }
      }
    }
    // No index: the scratch record is simply overwritten next time.
  }
  return Errc::ok;
}

std::span<const u8> PmMemtable::value_view(u64 rec) const {
  u32 vlen;
  std::memcpy(&vlen, dev_->at(rec, 4), 4);
  return {dev_->at(rec + kValueHdr, vlen), vlen};
}

Result<std::vector<u8>> PmMemtable::get(std::string_view key) const {
  const auto rec = index_.get(key);
  if (!rec.ok()) return rec.errc();
  auto& env = dev_->env();

  u32 vlen, crc, flags;
  std::memcpy(&vlen, dev_->at(rec.value(), 4), 4);
  std::memcpy(&crc, dev_->at(rec.value() + 4, 4), 4);
  std::memcpy(&flags, dev_->at(rec.value() + 8, 4), 4);
  if ((flags & kTombstone) != 0) return Errc::not_found;
  const std::span<const u8> view(dev_->at(rec.value() + kValueHdr, vlen), vlen);

  if (crc != 0) {
    env.clock().advance(env.cost.crc32c_cost(vlen));
    if (crc32c_unmask(crc) != crc32c(view)) return Errc::corrupted;
  }
  env.clock().advance(env.cost.copy_cost(vlen));
  return std::vector<u8>(view.begin(), view.end());
}

Result<std::span<const u8>> PmMemtable::get_view(std::string_view key) const {
  const auto rec = index_.get(key);
  if (!rec.ok()) return rec.errc();
  return value_view(rec.value());
}

Result<PmMemtable::Entry> PmMemtable::lookup(std::string_view key) const {
  const auto rec = index_.get(key);
  if (!rec.ok()) return rec.errc();
  u32 flags;
  std::memcpy(&flags, dev_->at(rec.value() + 8, 4), 4);
  return Entry{value_view(rec.value()), (flags & kTombstone) != 0};
}

bool PmMemtable::erase(std::string_view key) {
  const auto rec = index_.get(key);
  if (!rec.ok()) return false;
  u32 vlen;
  std::memcpy(&vlen, dev_->at(rec.value(), 4), 4);
  if (!index_.erase(key)) return false;
  const u64 rec_off = rec.value();
  const u64 rec_bytes = record_bytes(vlen);
  if (batcher_ != nullptr && batcher_->batching()) {
    batcher_->defer([pool = pool_, rec_off, rec_bytes] { pool->free(rec_off, rec_bytes); });
  } else {
    pool_->free(rec_off, rec_bytes);
  }
  return true;
}

}  // namespace papm::storage
