// Write-ahead log in PM.
//
// NoveLSM's PM memtable drops the log; classic LevelDB keeps one. The
// LsmStore exposes both modes so the benches can show what the log costs
// on PM (ablation around §2.1's "appending writes to a sequential
// journal").
//
// Record layout (all little-endian, appended at the persisted tail):
//   u32 crc (masked, covers type..value)  u8 type  u32 klen  u32 vlen
//   key bytes  value bytes
// The tail offset is persisted after each append (write-ahead ordering:
// record first, then tail pointer).
#pragma once

#include <functional>
#include <string_view>

#include "common/crc32c.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "pm/flush_batch.h"
#include "pm/pm_device.h"

namespace papm::storage {

enum class WalRecordType : u8 { put = 1, erase = 2 };

class Wal {
 public:
  /// Formats a log over [base, base+len) and registers root `name`;
  /// header durable before returning.
  static Wal create(pm::PmDevice& dev, std::string_view name, u64 base, u64 len);
  /// Re-attaches post-crash; writes nothing (idempotent).
  static Result<Wal> recover(pm::PmDevice& dev, std::string_view name);

  /// Appends and persists one record. out_of_space when full.
  /// Write-ahead ordering: the CRC-framed record is persisted *before*
  /// the 8-byte tail pointer is published and persisted, so a crash
  /// anywhere inside append() leaves the previous tail intact and the
  /// half-written record invisible. The record is durable iff append()
  /// returned ok — the WAL's ack boundary.
  Status append(WalRecordType type, std::string_view key,
                std::span<const u8> value);

  /// Replays all complete records in order. Truncated/corrupt tail records
  /// (torn writes) stop replay cleanly — they were never acknowledged.
  /// Returns the number of records applied. Read-only.
  u64 replay(const std::function<void(WalRecordType, std::string_view,
                                      std::span<const u8>)>& apply) const;

  /// Logical reset (tail back to the start), persisted before returning.
  /// Callers must persist whatever state supersedes the log *first*.
  void truncate();

  [[nodiscard]] u64 bytes_used() const;
  [[nodiscard]] u64 capacity() const;

  // Group-commit routing: while the batcher is batching, an append's
  // record clwb's ride the epoch's first fence and the tail pointer is a
  // withheld publication retired by the second — write-ahead ordering is
  // preserved per epoch instead of per record. append() then means
  // "durable once the epoch the batcher acks in retires".
  void set_batcher(pm::FlushBatcher* b) noexcept { batcher_ = b; }

  // Mirrors append/truncate activity into registry counters:
  // wal.appends / wal.append_bytes / wal.truncates.
  void set_metrics(obs::MetricRegistry* r) {
    m_appends_ = r != nullptr ? &r->counter("wal.appends") : nullptr;
    m_append_bytes_ = r != nullptr ? &r->counter("wal.append_bytes") : nullptr;
    m_truncates_ = r != nullptr ? &r->counter("wal.truncates") : nullptr;
  }

 private:
  struct Header {
    u64 magic;
    u64 base;
    u64 len;
    u64 tail;  // absolute offset of next append
  };
  static constexpr u64 kMagic = 0x57'41'4c'2d'50'4d'31'00ULL;  // "WAL-PM1"

  Wal(pm::PmDevice& dev, u64 header_off) : dev_(&dev), header_off_(header_off) {}
  [[nodiscard]] Header* hdr();
  [[nodiscard]] const Header* hdr() const;
  void persist_tail();

  pm::PmDevice* dev_;
  u64 header_off_;
  pm::FlushBatcher* batcher_ = nullptr;
  obs::Counter* m_appends_ = nullptr;
  obs::Counter* m_append_bytes_ = nullptr;
  obs::Counter* m_truncates_ = nullptr;
};

}  // namespace papm::storage
