#include "storage/wal.h"

#include <cstring>
#include <stdexcept>
#include <vector>

namespace papm::storage {

namespace {
constexpr u64 kRecHdr = 4 + 1 + 4 + 4;  // crc, type, klen, vlen
}

Wal::Header* Wal::hdr() {
  return reinterpret_cast<Header*>(dev_->at(header_off_, sizeof(Header)));
}
const Wal::Header* Wal::hdr() const {
  return reinterpret_cast<const Header*>(dev_->at(header_off_, sizeof(Header)));
}

void Wal::persist_tail() {
  const u64 off = header_off_ + offsetof(Header, tail);
  dev_->mark_dirty(off, 8);
  dev_->persist(off, 8);
}

Wal Wal::create(pm::PmDevice& dev, std::string_view name, u64 base, u64 len) {
  if (base % kCacheLine != 0 || len < sizeof(Header) + kCacheLine) {
    throw std::invalid_argument("Wal: bad span");
  }
  Wal wal(dev, base);
  Header* h = wal.hdr();
  h->magic = kMagic;
  h->base = base;
  h->len = len;
  h->tail = base + align_up(sizeof(Header), kCacheLine);
  dev.mark_dirty(base, sizeof(Header));
  dev.persist(base, sizeof(Header));
  if (!dev.set_root(name, base).ok()) throw std::runtime_error("Wal: root full");
  return wal;
}

Result<Wal> Wal::recover(pm::PmDevice& dev, std::string_view name) {
  const auto root = dev.get_root(name);
  if (!root.ok()) return root.errc();
  Wal wal(dev, root.value());
  if (wal.hdr()->magic != kMagic) return Errc::corrupted;
  return wal;
}

Status Wal::append(WalRecordType type, std::string_view key,
                   std::span<const u8> value) {
  Header* h = hdr();
  const u64 rec_len = kRecHdr + key.size() + value.size();
  if (h->tail + rec_len > h->base + h->len) return Errc::out_of_space;

  // Build the record in a scratch buffer, CRC over type..value.
  std::vector<u8> rec(rec_len);
  rec[4] = static_cast<u8>(type);
  const u32 klen = static_cast<u32>(key.size());
  const u32 vlen = static_cast<u32>(value.size());
  std::memcpy(rec.data() + 5, &klen, 4);
  std::memcpy(rec.data() + 9, &vlen, 4);
  std::memcpy(rec.data() + kRecHdr, key.data(), key.size());
  if (!value.empty()) {
    std::memcpy(rec.data() + kRecHdr + key.size(), value.data(), value.size());
  }
  auto& env = dev_->env();
  env.clock().advance(env.cost.crc32c_cost(rec_len - 4));
  const u32 crc = crc32c_mask(
      crc32c(std::span<const u8>(rec.data() + 4, rec_len - 4)));
  std::memcpy(rec.data(), &crc, 4);

  // Write-ahead ordering: record, fence, then tail pointer, fence.
  env.clock().advance(env.cost.copy_cost(rec_len));
  if (batcher_ != nullptr && batcher_->batching()) {
    // Record bytes ride the epoch's first fence; the tail is a withheld
    // publication — it can never point past bytes that are not durable.
    const u64 at = h->tail;
    dev_->store(at, rec);
    batcher_->persist(at, rec_len);
    batcher_->publish_u64(header_off_ + offsetof(Header, tail), at + rec_len);
  } else {
    dev_->store(h->tail, rec);
    dev_->persist(h->tail, rec_len);
    h->tail += rec_len;
    persist_tail();
  }
  obs::inc(m_appends_);
  obs::inc(m_append_bytes_, rec_len);
  return Errc::ok;
}

u64 Wal::replay(const std::function<void(WalRecordType, std::string_view,
                                         std::span<const u8>)>& apply) const {
  const Header* h = hdr();
  u64 at = h->base + align_up(sizeof(Header), kCacheLine);
  u64 applied = 0;
  while (at + kRecHdr <= h->tail) {
    u32 crc, klen, vlen;
    std::memcpy(&crc, dev_->at(at, 4), 4);
    const u8 type = *dev_->at(at + 4, 1);
    std::memcpy(&klen, dev_->at(at + 5, 4), 4);
    std::memcpy(&vlen, dev_->at(at + 9, 4), 4);
    const u64 body = static_cast<u64>(klen) + vlen;
    if (at + kRecHdr + body > h->tail) break;  // torn tail
    const std::span<const u8> covered(dev_->at(at + 4, kRecHdr - 4 + body),
                                      kRecHdr - 4 + body);
    if (crc32c_unmask(crc) != crc32c(covered)) break;  // corrupt tail
    if (type != static_cast<u8>(WalRecordType::put) &&
        type != static_cast<u8>(WalRecordType::erase)) {
      break;
    }
    const std::string_view key(
        reinterpret_cast<const char*>(dev_->at(at + kRecHdr, klen)), klen);
    const std::span<const u8> value(dev_->at(at + kRecHdr + klen, vlen), vlen);
    apply(static_cast<WalRecordType>(type), key, value);
    applied++;
    at += kRecHdr + body;
  }
  return applied;
}

void Wal::truncate() {
  Header* h = hdr();
  h->tail = h->base + align_up(sizeof(Header), kCacheLine);
  persist_tail();
  obs::inc(m_truncates_);
}

u64 Wal::bytes_used() const {
  const Header* h = hdr();
  return h->tail - (h->base + align_up(sizeof(Header), kCacheLine));
}

u64 Wal::capacity() const {
  const Header* h = hdr();
  return h->len - align_up(sizeof(Header), kCacheLine);
}

}  // namespace papm::storage
