// PmFs — the §4.2 packet-metadata file system sketch, built.
//
// "File systems manage on-disk data using metadata (i.e., inode) that
// typically contains name, timestamp, checksum and links ... Most of
// these information and structures can be achieved by packet metadata if
// allocated in a PM device. Therefore, current inode structures would be
// simplified, and packet metadata blocks will be maintained by the file
// system alongside inode blocks."
//
// Here an inode is exactly that simplification: a small PM block holding
// the name and a link to a chain of persistent packet metadata (PPktMeta)
// that *is* the extent list — each extent remembers its NIC checksum and
// hardware timestamp. Writes larger than one packet become multi-element
// chains (the GSO/TSO representation); reads for transmission emit
// frag-backed packets without copying (sendfile-style).
#pragma once

#include <string_view>

#include "container/pskiplist.h"
#include "core/ppktmeta.h"

namespace papm::core {

struct PmFsOptions {
  PChain::IngestOptions ingest;
};

class PmFs {
 public:
  static constexpr std::size_t kMaxName = 87;

  static PmFs create(net::PktBufPool& pktpool, std::string_view name,
                     PmFsOptions opts = PmFsOptions());
  static Result<PmFs> recover(net::PktBufPool& pktpool, std::string_view name,
                              PmFsOptions opts = PmFsOptions());

  // Creates or replaces a file from application bytes (write(2) path).
  Status write_file(std::string_view path, std::span<const u8> data);

  // Creates or replaces a file from received packets: the §4.2 fast path
  // where file data arrives from the network and is kept in place.
  Status ingest_file(std::string_view path, std::span<net::PktBuf* const> pkts,
                     std::span<const u32> offs, std::span<const u32> lens);

  [[nodiscard]] Result<std::vector<u8>> read_file(std::string_view path) const;

  // Zero-copy emission of the file's bytes as TX-ready packets.
  [[nodiscard]] Result<std::vector<net::PktBuf*>> emit_pkts(
      std::string_view path) const;

  struct FileStat {
    u64 size;
    i64 mtime;      // NIC hardware timestamp of the newest extent write
    u32 extents;    // chain length
    CsumKind csum_kind;
  };
  [[nodiscard]] Result<FileStat> stat(std::string_view path) const;

  // Integrity scrub (recompute extent checksums).
  [[nodiscard]] Status verify(std::string_view path) const;

  bool unlink(std::string_view path);

  // fn(path, stat); ordered by path; early-stop on false.
  template <typename Fn>
  void list(Fn&& fn) const {
    dir_.scan("", "", [&](std::string_view path, u64 inode) {
      return fn(path, stat_of(inode));
    });
  }

  [[nodiscard]] std::size_t file_count() const noexcept { return dir_.size(); }

 private:
  struct PInode {
    u32 magic;
    u32 name_len;
    u64 size;
    i64 mtime;
    u64 chain;  // PPktMeta chain head; 0 for an empty file
    char name[kMaxName + 1];
    static constexpr u32 kMagic = 0x504d4653;  // "PMFS"
  };
  static_assert(sizeof(PInode) <= 128, "inode must stay compact");

  PmFs(net::PktBufPool& pktpool, net::PmArena& arena,
       container::PSkipList dir, PmFsOptions opts)
      : chain_(arena.device(), arena.pool(), pktpool),
        dir_(std::move(dir)),
        opts_(opts) {}

  [[nodiscard]] const PInode* inode(u64 off) const;
  [[nodiscard]] FileStat stat_of(u64 inode_off) const;
  Status publish(std::string_view path, u64 chain_head, u64 size, i64 mtime);

  mutable PChain chain_;
  container::PSkipList dir_;
  PmFsOptions opts_;
};

}  // namespace papm::core
