#include "core/pktstore.h"

#include <stdexcept>

namespace papm::core {

namespace {
net::PmArena& pm_arena_of(net::PktBufPool& pool) {
  auto* arena = dynamic_cast<net::PmArena*>(&pool.arena());
  if (arena == nullptr) {
    throw std::invalid_argument(
        "PktStore requires a PM-backed packet pool (PmArena)");
  }
  return *arena;
}
}  // namespace

PktStore PktStore::create(net::PktBufPool& pktpool, std::string_view name,
                          PktStoreOptions opts) {
  net::PmArena& arena = pm_arena_of(pktpool);
  auto index = container::PSkipList::create(arena.device(), arena.pool(),
                                            std::string(name) + ".idx",
                                            opts.index);
  return PktStore(pktpool, arena, std::move(index), opts);
}

Result<PktStore> PktStore::recover(net::PktBufPool& pktpool,
                                   std::string_view name,
                                   PktStoreOptions opts) {
  net::PmArena& arena = pm_arena_of(pktpool);
  auto index = container::PSkipList::recover(arena.device(), arena.pool(),
                                             std::string(name) + ".idx",
                                             opts.index);
  if (!index.ok()) return index.errc();
  PktStore store(pktpool, arena, std::move(index.value()), opts);
  // Re-register every live data buffer with the fresh packet pool.
  Status st = Errc::ok;
  store.index_.scan("", "", [&](std::string_view, u64 head) {
    const Status s = store.chain_.restore(head);
    if (!s.ok()) st = s;
    return s.ok();
  });
  if (!st.ok()) return st.errc();
  return store;
}

void PktStore::retire_chain(u64 head) {
  // A chain that was durably referenced by the index may still be the
  // recovered value if the crash lands before this epoch's fence retires:
  // quarantine its free until the epoch commits. Without batching (or for
  // chains that never became durably reachable) the immediate free is safe.
  pm::FlushBatcher* b = chain_.batcher();
  if (b != nullptr && b->batching()) {
    b->defer([chain = &chain_, head] { chain->free_chain(head); });
  } else {
    chain_.free_chain(head);
  }
}

void PktStore::charge_prep(storage::OpBreakdown* bd) const {
  auto& env = chain_.device().env();
  const SimTime t0 = env.now();
  env.clock().advance(opts_.light_prep ? env.cost.pktstore_prep_ns
                                       : env.cost.request_prep_ns);
  if (bd != nullptr) bd->prep_ns += env.now() - t0;
}

Status PktStore::put_pkt(std::string_view key, net::PktBuf& pb, u32 val_off,
                         u32 val_len, storage::OpBreakdown* bd) {
  net::PktBuf* pkts[1] = {&pb};
  const u32 offs[1] = {val_off};
  const u32 lens[1] = {val_len};
  return put_pkts(key, pkts, offs, lens, bd);
}

Status PktStore::put_pkts(std::string_view key,
                          std::span<net::PktBuf* const> pkts,
                          std::span<const u32> offs, std::span<const u32> lens,
                          storage::OpBreakdown* bd) {
  obs::inc(m_puts_);
  charge_prep(bd);
  if (net::kSlicerCompiled && opts_.insert != InsertPolicy::host &&
      opts_.zero_copy && !pkts.empty()) {
    bool all_sliced = true;
    u64 total = 0;
    for (std::size_t i = 0; i < pkts.size(); i++) {
      all_sliced = all_sliced && pkts[i]->sliced();
      total += lens[i];
    }
    if (all_sliced && (opts_.insert == InsertPolicy::nic ||
                       total >= opts_.nic_insert_min_bytes)) {
      return put_pkts_offloaded(key, pkts, offs, lens, bd);
    }
  }
  auto head = chain_.ingest_pkts(pkts, offs, lens, ingest_opts(), bd);
  if (!head.ok()) return head.errc();

  auto& env = chain_.device().env();
  const SimTime t0 = env.now();
  u64 old_head = 0;
  const Status st = index_.put(key, head.value(), &old_head);
  if (bd != nullptr) bd->alloc_insert_ns += env.now() - t0;
  if (!st.ok()) {
    chain_.free_chain(head.value());  // never indexed: immediate free is safe
    return st;
  }
  if (old_head != 0) retire_chain(old_head);
  return Errc::ok;
}

Status PktStore::put_pkts_offloaded(std::string_view key,
                                    std::span<net::PktBuf* const> pkts,
                                    std::span<const u32> offs,
                                    std::span<const u32> lens,
                                    storage::OpBreakdown* bd) {
  obs::inc(m_nic_inserts_);
  auto& env = chain_.device().env();
  const SimTime t0 = env.now();
  // Host side of the command: MMIO doorbell carrying the key and the
  // sliced-slot descriptor list.
  env.clock().advance(env.cost.nic_insert_doorbell_ns);
  const SimTime t_doorbell = env.now();

  // The engine executes the same ingest + level-0 insert the host would
  // — every PM state transition (and any injected fault) is identical —
  // but its time must not bill the host core: divert clock charges into a
  // discarded engine-local collector while it runs. The engine's latency
  // is modelled by the calibrated command constants below instead.
  SimTime engine_ns = 0;
  const auto scope = env.clock().exchange_scope(t_doorbell, &engine_ns);
  Result<u64> head = Errc::internal;
  Status st = Errc::internal;
  u64 old_head = 0;
  try {
    head = chain_.ingest_pkts(pkts, offs, lens, ingest_opts(), nullptr);
    if (head.ok()) st = index_.put(key, head.value(), &old_head);
  } catch (...) {
    env.clock().restore_scope(scope);
    throw;  // PowerFailure unwinds with the host scope back in place
  }
  env.clock().restore_scope(scope);
  if (!head.ok()) return head.errc();
  if (!st.ok()) {
    chain_.free_chain(head.value());  // never indexed: immediate free safe
    return st;
  }

  // Engine completion: fixed command execution plus a per-segment
  // metadata append. Un-batched, the host polls the completion queue and
  // waits the engine out before acking. Under group commit the ack is
  // already deferred to the epoch close, which dominates the engine's
  // completion time — no host wait is charged.
  const SimTime engine_done =
      t_doorbell + env.cost.nic_insert_cmd_ns +
      static_cast<SimTime>(pkts.size()) * env.cost.nic_insert_meta_ns;
  pm::FlushBatcher* b = chain_.batcher();
  const bool batching = b != nullptr && b->batching();
  if (!batching && engine_done > env.now()) {
    env.clock().advance(engine_done - env.now());
  }
  env.clock().advance(env.cost.nic_insert_completion_ns);
  if (bd != nullptr) bd->nic_insert_ns += env.now() - t0;

  if (old_head != 0) retire_chain(old_head);
  return Errc::ok;
}

Status PktStore::put_bytes(std::string_view key, std::span<const u8> value,
                           storage::OpBreakdown* bd) {
  obs::inc(m_puts_);
  charge_prep(bd);
  auto head = chain_.ingest_bytes(value, ingest_opts(), bd);
  if (!head.ok()) return head.errc();

  auto& env = chain_.device().env();
  const SimTime t0 = env.now();
  u64 old_head = 0;
  const Status st = index_.put(key, head.value(), &old_head);
  if (bd != nullptr) bd->alloc_insert_ns += env.now() - t0;
  if (!st.ok()) {
    chain_.free_chain(head.value());  // never indexed: immediate free is safe
    return st;
  }
  if (old_head != 0) retire_chain(old_head);
  return Errc::ok;
}

Result<std::vector<u8>> PktStore::get(std::string_view key) const {
  obs::inc(m_gets_);
  const auto head = index_.get(key);
  if (!head.ok()) return head.errc();
  const Status st = chain_.verify(head.value());
  if (!st.ok()) return st.errc();
  return chain_.read(head.value());
}

Result<std::vector<net::PktBuf*>> PktStore::get_as_pkts(
    std::string_view key) const {
  obs::inc(m_gets_);
  const auto head = index_.get(key);
  if (!head.ok()) return head.errc();
  return chain_.emit_pkts(head.value());
}

PktStore::ValueMeta PktStore::stat_of(u64 head) const {
  const PPktMeta* m = chain_.meta(head);
  ValueMeta vm{};
  vm.len = m->total_len;
  vm.csum_kind = static_cast<CsumKind>(m->csum_kind);
  vm.hw_tstamp = m->hw_tstamp;
  vm.segments = 0;
  for (u64 at = head; at != 0; at = chain_.meta(at)->next) vm.segments++;
  return vm;
}

Result<PktStore::ValueMeta> PktStore::stat(std::string_view key) const {
  const auto head = index_.get(key);
  if (!head.ok()) return head.errc();
  return stat_of(head.value());
}

Status PktStore::verify(std::string_view key) const {
  const auto head = index_.get(key);
  if (!head.ok()) return head.status();
  return chain_.verify(head.value());
}

bool PktStore::erase(std::string_view key) {
  obs::inc(m_erases_);
  const auto head = index_.get(key);
  if (!head.ok()) return false;
  if (!index_.erase(key)) return false;
  retire_chain(head.value());
  return true;
}

}  // namespace papm::core
