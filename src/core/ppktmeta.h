// Persistent packet metadata (PPktMeta) and value chains.
//
// The heart of the paper's proposal (§4.2, §5.1): packet metadata,
// re-designed to be *persistent* — compact (one cache line, "designed to
// be compact and cache friendly"), addressed by PM offsets rather than
// virtual pointers, and carrying the fields the storage stack would
// otherwise recompute:
//   * the value's Internet checksum, inherited from the NIC-verified TCP
//     checksum (or a CRC32C when checksum reuse is off);
//   * the NIC hardware timestamp;
//   * the location of the value bytes inside the retained packet buffer;
//   * a chain link, so values larger than one segment are a linked list
//     of packet metadata (the network-stack pattern of representing
//     "data that spans across multiple packets").
//
// PktStore (KV) and PmFs (file system) both index chains of these.
#pragma once

#include <span>
#include <vector>

#include "common/crc32c.h"
#include "common/inet_csum.h"
#include "net/pktbuf.h"
#include "storage/knobs.h"

namespace papm::core {

enum class CsumKind : u16 {
  none = 0,
  inet16 = 1,   // reused from the NIC (§4.2)
  crc32c = 2,   // recomputed in software (baseline-equivalent ablation)
};

struct PPktMeta {
  u32 magic;       // kMagic when valid
  u16 csum_kind;   // CsumKind
  u16 csum16;      // value checksum when kind == inet16
  u32 csum32;      // value checksum when kind == crc32c
  u32 data_cap;    // allocation size of the retained packet buffer
  u64 data_off;    // PM offset of the packet buffer (0 = none)
  u32 val_off;     // value offset within the buffer
  u32 val_len;     // value bytes described by this metadata
  i64 hw_tstamp;   // NIC hardware timestamp of the carrying packet
  u64 next;        // PM offset of the next metadata in the chain (0 = end)
  u64 total_len;   // whole-value length (meaningful on the chain head)

  static constexpr u32 kMagic = 0x504b4d31;  // "PKM1"
};
static_assert(sizeof(PPktMeta) <= kCacheLine,
              "persistent packet metadata must stay within one cache line");

// Chain operations shared by PktStore and PmFs. All take the PM-backed
// packet pool: metadata and any copied data come from the same allocator
// the network stack uses (§4.2 allocator unification).
class PChain {
 public:
  PChain(pm::PmDevice& dev, pm::PmPool& pmpool, net::PktBufPool& pktpool)
      : dev_(&dev), pmpool_(&pmpool), pktpool_(&pktpool) {}

  struct IngestOptions {
    bool reuse_checksum = true;   // inherit the NIC checksum vs CRC32C
    bool reuse_timestamp = true;  // inherit hw timestamps vs none
    bool zero_copy = true;        // adopt packet buffers vs copy out
    bool persistence = true;      // flush value bytes (Table 1 knob)
  };

  // Builds a persistent chain from received packets. Each packet
  // contributes payload bytes [offs[i], offs[i] + lens[i]). Returns the
  // head metadata offset. `bd` receives the phase breakdown.
  Result<u64> ingest_pkts(std::span<net::PktBuf* const> pkts,
                          std::span<const u32> offs, std::span<const u32> lens,
                          const IngestOptions& opts,
                          storage::OpBreakdown* bd = nullptr);

  // Builds a chain from application-originated bytes (write(2) path):
  // data is chunked into MSS-sized packet buffers with header room, ready
  // for later zero-copy transmission.
  Result<u64> ingest_bytes(std::span<const u8> data, const IngestOptions& opts,
                           storage::OpBreakdown* bd = nullptr);

  // Reads the whole value (copy-out, charged).
  [[nodiscard]] Result<std::vector<u8>> read(u64 head) const;

  // Verifies the stored checksum against the bytes; corrupted on
  // mismatch, ok when no checksum was stored.
  [[nodiscard]] Status verify(u64 head) const;

  // Builds a TX-ready packet per chain element: linear header room plus a
  // frag pointing at the stored bytes — zero copy (TSO-style emission).
  [[nodiscard]] Result<std::vector<net::PktBuf*>> emit_pkts(u64 head) const;

  // Frees every metadata block and drops the data references.
  void free_chain(u64 head);

  // Post-crash: walks the chain, validates magic, and re-registers each
  // data handle with the (fresh) packet pool.
  Status restore(u64 head) const;

  [[nodiscard]] const PPktMeta* meta(u64 off) const;
  [[nodiscard]] PPktMeta* meta(u64 off);

  [[nodiscard]] pm::PmDevice& device() noexcept { return *dev_; }
  [[nodiscard]] const pm::PmDevice& device() const noexcept { return *dev_; }
  [[nodiscard]] pm::PmPool& pmpool() noexcept { return *pmpool_; }

  // Group-commit routing: value-byte and metadata flushes ride the epoch
  // fences while the batcher is batching.
  void set_batcher(pm::FlushBatcher* b) noexcept { batcher_ = b; }
  [[nodiscard]] pm::FlushBatcher* batcher() const noexcept { return batcher_; }

 private:
  Result<u64> alloc_meta(const PPktMeta& m);
  void persist_range(u64 off, u64 len);

  pm::PmDevice* dev_;
  pm::PmPool* pmpool_;
  net::PktBufPool* pktpool_;
  pm::FlushBatcher* batcher_ = nullptr;
};

}  // namespace papm::core
