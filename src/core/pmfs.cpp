#include "core/pmfs.h"

#include <cstring>
#include <stdexcept>

namespace papm::core {

namespace {
net::PmArena& pm_arena_of(net::PktBufPool& pool) {
  auto* arena = dynamic_cast<net::PmArena*>(&pool.arena());
  if (arena == nullptr) {
    throw std::invalid_argument("PmFs requires a PM-backed packet pool");
  }
  return *arena;
}
}  // namespace

PmFs PmFs::create(net::PktBufPool& pktpool, std::string_view name,
                  PmFsOptions opts) {
  net::PmArena& arena = pm_arena_of(pktpool);
  auto dir = container::PSkipList::create(arena.device(), arena.pool(),
                                          std::string(name) + ".dir");
  return PmFs(pktpool, arena, std::move(dir), opts);
}

Result<PmFs> PmFs::recover(net::PktBufPool& pktpool, std::string_view name,
                           PmFsOptions opts) {
  net::PmArena& arena = pm_arena_of(pktpool);
  auto dir = container::PSkipList::recover(arena.device(), arena.pool(),
                                           std::string(name) + ".dir");
  if (!dir.ok()) return dir.errc();
  PmFs fs(pktpool, arena, std::move(dir.value()), opts);
  Status st = Errc::ok;
  fs.dir_.scan("", "", [&](std::string_view, u64 ino) {
    const PInode* i = fs.inode(ino);
    if (i->magic != PInode::kMagic) {
      st = Errc::corrupted;
      return false;
    }
    if (i->chain != 0) {
      const Status s = fs.chain_.restore(i->chain);
      if (!s.ok()) st = s;
      return s.ok();
    }
    return true;
  });
  if (!st.ok()) return st.errc();
  return fs;
}

const PmFs::PInode* PmFs::inode(u64 off) const {
  return reinterpret_cast<const PInode*>(
      chain_.device().at(off, sizeof(PInode)));
}

Status PmFs::publish(std::string_view path, u64 chain_head, u64 size,
                     i64 mtime) {
  if (path.empty() || path.size() > kMaxName) return Errc::invalid_argument;
  auto& dev = chain_.device();

  // Build and persist the inode, then publish it in the directory — the
  // same write -> flush -> fence -> publish discipline as everywhere.
  auto ino = chain_.pmpool().alloc(sizeof(PInode));
  if (!ino.ok()) return ino.errc();
  PInode node{};
  node.magic = PInode::kMagic;
  node.name_len = static_cast<u32>(path.size());
  node.size = size;
  node.mtime = mtime;
  node.chain = chain_head;
  std::memcpy(node.name, path.data(), path.size());
  dev.store(ino.value(), std::span<const u8>(
                             reinterpret_cast<const u8*>(&node), sizeof(node)));
  dev.persist(ino.value(), sizeof(node));

  u64 old_ino = 0;
  const Status st = dir_.put(path, ino.value(), &old_ino);
  if (!st.ok()) {
    chain_.pmpool().free(ino.value(), sizeof(PInode));
    return st;
  }
  if (old_ino != 0) {
    const PInode* old = inode(old_ino);
    if (old->chain != 0) chain_.free_chain(old->chain);
    chain_.pmpool().free(old_ino, sizeof(PInode));
  }
  return Errc::ok;
}

Status PmFs::write_file(std::string_view path, std::span<const u8> data) {
  u64 head = 0;
  if (!data.empty()) {
    auto r = chain_.ingest_bytes(data, opts_.ingest);
    if (!r.ok()) return r.errc();
    head = r.value();
  }
  const i64 mtime = chain_.device().env().now();
  const Status st = publish(path, head, data.size(), mtime);
  if (!st.ok() && head != 0) chain_.free_chain(head);
  return st;
}

Status PmFs::ingest_file(std::string_view path,
                         std::span<net::PktBuf* const> pkts,
                         std::span<const u32> offs,
                         std::span<const u32> lens) {
  auto r = chain_.ingest_pkts(pkts, offs, lens, opts_.ingest);
  if (!r.ok()) return r.errc();
  u64 total = 0;
  for (const u32 l : lens) total += l;
  const i64 mtime = opts_.ingest.reuse_timestamp && !pkts.empty()
                        ? pkts.front()->hw_tstamp
                        : chain_.device().env().now();
  const Status st = publish(path, r.value(), total, mtime);
  if (!st.ok()) chain_.free_chain(r.value());
  return st;
}

Result<std::vector<u8>> PmFs::read_file(std::string_view path) const {
  const auto ino = dir_.get(path);
  if (!ino.ok()) return ino.errc();
  const PInode* i = inode(ino.value());
  if (i->magic != PInode::kMagic) return Errc::corrupted;
  if (i->chain == 0) return std::vector<u8>{};
  return chain_.read(i->chain);
}

Result<std::vector<net::PktBuf*>> PmFs::emit_pkts(std::string_view path) const {
  const auto ino = dir_.get(path);
  if (!ino.ok()) return ino.errc();
  const PInode* i = inode(ino.value());
  if (i->chain == 0) return std::vector<net::PktBuf*>{};
  return chain_.emit_pkts(i->chain);
}

PmFs::FileStat PmFs::stat_of(u64 inode_off) const {
  const PInode* i = inode(inode_off);
  FileStat st{};
  st.size = i->size;
  st.mtime = i->mtime;
  st.extents = 0;
  st.csum_kind = CsumKind::none;
  for (u64 at = i->chain; at != 0; at = chain_.meta(at)->next) {
    if (st.extents == 0) {
      st.csum_kind = static_cast<CsumKind>(chain_.meta(at)->csum_kind);
    }
    st.extents++;
  }
  return st;
}

Result<PmFs::FileStat> PmFs::stat(std::string_view path) const {
  const auto ino = dir_.get(path);
  if (!ino.ok()) return ino.errc();
  return stat_of(ino.value());
}

Status PmFs::verify(std::string_view path) const {
  const auto ino = dir_.get(path);
  if (!ino.ok()) return ino.status();
  const PInode* i = inode(ino.value());
  if (i->magic != PInode::kMagic) return Errc::corrupted;
  if (i->chain == 0) return Errc::ok;
  return chain_.verify(i->chain);
}

bool PmFs::unlink(std::string_view path) {
  const auto ino = dir_.get(path);
  if (!ino.ok()) return false;
  if (!dir_.erase(path)) return false;
  const PInode* i = inode(ino.value());
  if (i->chain != 0) chain_.free_chain(i->chain);
  chain_.pmpool().free(ino.value(), sizeof(PInode));
  return true;
}

}  // namespace papm::core
