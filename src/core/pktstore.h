// PktStore — the paper's proposed key-value store (§4.2), built.
//
// "Packets as persistent in-memory data structures": received packets are
// retained in the PM-backed packet pool, described by persistent packet
// metadata (PPktMeta), indexed by a persistent skip list whose nodes come
// from the same pool. The storage properties are implemented by
// *repurposed networking features*:
//
//   integrity    — the NIC-verified TCP checksum, narrowed to the value
//                  slice in ones'-complement arithmetic (no CPU pass over
//                  the value bytes);
//   timestamps   — NIC hardware timestamps carried in the metadata;
//   search       — the skip list of packet metadata ("implementable using
//                  packet metadata, although some additional list entries
//                  may be needed" — the index node is that extra entry);
//   allocation   — the network buffer allocator serves data, metadata and
//                  index nodes (freelist pops, not a general PM malloc);
//   zero copy    — values stay in the DMA'd packet buffer; reads for
//                  transmission emit frag-backed packets (TSO-style).
//
// Every reuse is individually toggleable for the ablation benches.
#pragma once

#include <string_view>

#include "container/pskiplist.h"
#include "core/ppktmeta.h"
#include "obs/metrics.h"

namespace papm::core {

// Who executes the skip-list level-0 append for a sliced PUT: the host
// CPU, the NIC's index engine (CARGO-style near-data insert, doorbell +
// completion), or an automatic size-based choice. The engine's fixed
// command cost beats the host only once the host-side per-byte work it
// displaces (cold-line persists, per-segment appends) is large enough —
// auto_ offloads values of at least nic_insert_min_bytes.
enum class InsertPolicy : u8 { host = 0, nic = 1, auto_ = 2 };

struct PktStoreOptions {
  bool reuse_checksum = true;
  bool reuse_timestamp = true;
  bool zero_copy = true;
  bool persistence = true;  // §3-style knob: flush value bytes
  // Charge the paper's lighter request handling (no LevelDB WriteBatch);
  // off = charge the baseline's full request-preparation cost.
  bool light_prep = true;
  // NIC index-engine offload policy. Only sliced, zero-copy PUTs are
  // eligible (the engine operates on NIC-placed slots); ineligible PUTs
  // fall back to the host path regardless of policy.
  InsertPolicy insert = InsertPolicy::host;
  u32 nic_insert_min_bytes = 2048;  // auto_ crossover threshold
  // Index policy (selective persistence: shadow_towers keeps upper skip
  // list towers DRAM-only and rebuilds them at recovery). recover() must
  // be called with the same options the store was created with.
  container::PSkipListOptions index;
};

class PktStore {
 public:
  // `pktpool` must be backed by a PmArena (packet buffers in PM — the
  // PASTE substrate); its PmPool provides all persistent allocations.
  static PktStore create(net::PktBufPool& pktpool, std::string_view name,
                         PktStoreOptions opts = PktStoreOptions());

  // Reattaches after a crash and re-registers every live data buffer
  // with the fresh (volatile) packet pool.
  static Result<PktStore> recover(net::PktBufPool& pktpool,
                                  std::string_view name,
                                  PktStoreOptions opts = PktStoreOptions());

  // §4.2 ingest: the value for `key` is the byte range
  // [val_off, val_off + val_len) of `pb`'s buffer (val_off is absolute
  // within the buffer, e.g. past TCP + HTTP headers). The store takes its
  // own reference on the packet data; the caller still frees `pb`.
  Status put_pkt(std::string_view key, net::PktBuf& pb, u32 val_off,
                 u32 val_len, storage::OpBreakdown* bd = nullptr);

  // Multi-segment values: one packet per chain element, same ranges.
  Status put_pkts(std::string_view key, std::span<net::PktBuf* const> pkts,
                  std::span<const u32> offs, std::span<const u32> lens,
                  storage::OpBreakdown* bd = nullptr);

  // Application-originated put (no carrying packet).
  Status put_bytes(std::string_view key, std::span<const u8> value,
                   storage::OpBreakdown* bd = nullptr);

  // Copy-out read, checksum-verified.
  [[nodiscard]] Result<std::vector<u8>> get(std::string_view key) const;

  // Zero-copy read for transmission: frag-backed packets over the stored
  // buffers, ready for TcpConn::send_pkt (after HTTP header prepend).
  [[nodiscard]] Result<std::vector<net::PktBuf*>> get_as_pkts(
      std::string_view key) const;

  struct ValueMeta {
    u64 len;
    CsumKind csum_kind;
    i64 hw_tstamp;  // of the first segment
    u32 segments;
  };
  [[nodiscard]] Result<ValueMeta> stat(std::string_view key) const;

  // Integrity scrub of one key (recompute vs stored checksum).
  [[nodiscard]] Status verify(std::string_view key) const;

  bool erase(std::string_view key);

  // fn(key, meta); ordered by key; early-stop on false.
  template <typename Fn>
  void scan(std::string_view from, std::string_view to, Fn&& fn) const {
    index_.scan(from, to, [&](std::string_view k, u64 head) {
      return fn(k, stat_of(head));
    });
  }

  [[nodiscard]] std::size_t size() const noexcept { return index_.size(); }
  [[nodiscard]] Status validate() const { return index_.validate(); }

  // Recovery cost split of the index rebuild (backbone scan vs. tower
  // relink) from the last recover() — see PSkipList::RecoverStats.
  [[nodiscard]] const container::PSkipList::RecoverStats& index_recover_stats()
      const noexcept {
    return index_.recover_stats();
  }

  // Back-to-back hint: warms the index traversal charging (the same
  // batching effect the baseline enjoys; keeps comparisons fair).
  void set_batched(bool b) noexcept { index_.set_warm(b); }

  // Group-commit routing: value/metadata flushes and index publications
  // ride the per-shard epoch fences; chain frees of durably-referenced
  // heads are quarantined until their epoch retires.
  void set_batcher(pm::FlushBatcher* b) noexcept {
    chain_.set_batcher(b);
    index_.set_batcher(b);
  }

  // Mirrors op counts into a (per-shard) registry: store.puts /
  // store.gets / store.erases.
  void set_metrics(obs::MetricRegistry* r) {
    m_puts_ = r != nullptr ? &r->counter("store.puts") : nullptr;
    m_gets_ = r != nullptr ? &r->counter("store.gets") : nullptr;
    m_erases_ = r != nullptr ? &r->counter("store.erases") : nullptr;
    m_nic_inserts_ =
        r != nullptr ? &r->counter("nic.inserts_offloaded") : nullptr;
  }

 private:
  PktStore(net::PktBufPool& pktpool, net::PmArena& arena,
           container::PSkipList index, PktStoreOptions opts)
      : chain_(arena.device(), arena.pool(), pktpool),
        index_(std::move(index)),
        opts_(opts) {}

  [[nodiscard]] ValueMeta stat_of(u64 head) const;
  void retire_chain(u64 head);
  [[nodiscard]] PChain::IngestOptions ingest_opts() const {
    return {opts_.reuse_checksum, opts_.reuse_timestamp, opts_.zero_copy,
            opts_.persistence};
  }
  void charge_prep(storage::OpBreakdown* bd) const;
  // NIC index-engine variant of put_pkts: host pays doorbell + completion
  // (and, un-batched, waits out the engine); ingest + insert execute with
  // their charges diverted off the host clock.
  Status put_pkts_offloaded(std::string_view key,
                            std::span<net::PktBuf* const> pkts,
                            std::span<const u32> offs,
                            std::span<const u32> lens,
                            storage::OpBreakdown* bd);

  mutable PChain chain_;
  container::PSkipList index_;
  PktStoreOptions opts_;
  obs::Counter* m_puts_ = nullptr;
  obs::Counter* m_gets_ = nullptr;
  obs::Counter* m_erases_ = nullptr;
  obs::Counter* m_nic_inserts_ = nullptr;
};

}  // namespace papm::core
