#include "core/ppktmeta.h"

#include <cstring>

namespace papm::core {

namespace {
using Phase = struct PhaseTimer {
  PhaseTimer(sim::Env& env, SimTime* out) : env_(env), out_(out), t0_(env.now()) {}
  ~PhaseTimer() {
    if (out_ != nullptr) *out_ += env_.now() - t0_;
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;
  sim::Env& env_;
  SimTime* out_;
  SimTime t0_;
};
}  // namespace

const PPktMeta* PChain::meta(u64 off) const {
  return reinterpret_cast<const PPktMeta*>(dev_->at(off, sizeof(PPktMeta)));
}
PPktMeta* PChain::meta(u64 off) {
  return reinterpret_cast<PPktMeta*>(dev_->at(off, sizeof(PPktMeta)));
}

void PChain::persist_range(u64 off, u64 len) {
  if (batcher_ != nullptr && batcher_->batching()) {
    batcher_->persist(off, len);  // clwb now, fence at epoch close
  } else {
    dev_->persist(off, len);
  }
}

Result<u64> PChain::alloc_meta(const PPktMeta& m) {
  auto off = pmpool_->alloc(sizeof(PPktMeta));
  if (!off.ok()) return off.errc();
  dev_->store(off.value(),
              std::span<const u8>(reinterpret_cast<const u8*>(&m), sizeof(m)));
  persist_range(off.value(), sizeof(m));
  return off.value();
}

Result<u64> PChain::ingest_pkts(std::span<net::PktBuf* const> pkts,
                                std::span<const u32> offs,
                                std::span<const u32> lens,
                                const IngestOptions& opts,
                                storage::OpBreakdown* bd) {
  if (pkts.empty() || pkts.size() != offs.size() || pkts.size() != lens.size()) {
    return Errc::invalid_argument;
  }
  auto& env = dev_->env();
  u64 total = 0;
  for (const u32 l : lens) total += l;

  // Build metadata back-to-front so each element can point at its
  // successor before being persisted (no fix-up writes).
  u64 next = 0;
  std::vector<u64> metas(pkts.size(), 0);
  for (std::size_t idx = pkts.size(); idx-- > 0;) {
    net::PktBuf& pb = *pkts[idx];
    PPktMeta m{};
    m.magic = PPktMeta::kMagic;
    m.val_len = lens[idx];
    m.next = next;
    m.total_len = idx == 0 ? total : 0;

    // Payload view and the value's offset within it. For a sliced packet
    // the span resolves into the NIC-placed slice block; for a contiguous
    // packet it is the same pointer math as before the slicer.
    const std::span<const u8> payload = pktpool_->payload(pb);
    const u32 lead = offs[idx] - pb.payload_off;

    // Checksum: inherit the NIC word or recompute like the baseline.
    {
      Phase p(env, bd != nullptr ? &bd->checksum_ns : nullptr);
      if (opts.reuse_checksum && pb.csum_verified) {
        // Narrow the NIC-provided payload checksum to the value slice,
        // touching only the bytes outside the value (§4.2).
        const u32 trail =
            static_cast<u32>(payload.size()) - lead - lens[idx];
        env.clock().advance(env.cost.inet_csum_cost(lead + trail));
        m.csum_kind = static_cast<u16>(CsumKind::inet16);
        m.csum16 = inet_csum_slice(payload, pb.payload_csum, lead, lead + lens[idx]);
      } else {
        env.clock().advance(env.cost.crc32c_cost(lens[idx]));
        m.csum_kind = static_cast<u16>(CsumKind::crc32c);
        m.csum32 = crc32c(payload.subspan(lead, lens[idx]));
      }
    }

    // Timestamp: the NIC already stamped the packet.
    if (opts.reuse_timestamp) {
      m.hw_tstamp = pb.hw_tstamp;
    }

    // Sliced descriptor: completion bookkeeping + slot adoption cost.
    if (pb.sliced()) {
      Phase p(env, bd != nullptr ? &bd->slice_ns : nullptr);
      env.clock().advance(env.cost.nic_slice_host_ns);
    }

    // Data: adopt in place, or copy out like the baseline. A sliced
    // packet's value already sits in its final slot — adopt the slice.
    const bool dma_durable = opts.zero_copy && pb.sliced();
    {
      Phase p(env, bd != nullptr ? &bd->copy_ns : nullptr);
      if (opts.zero_copy && pb.sliced()) {
        m.data_off = pktpool_->adopt_slice(pb);
        m.data_cap = pb.slice_cap;
        m.val_off = pb.slice_off + lead;
      } else if (opts.zero_copy) {
        m.data_off = pktpool_->adopt_data(pb);
        m.data_cap = pb.cap;
        m.val_off = offs[idx];
      } else {
        auto buf = pmpool_->alloc(lens[idx]);
        if (!buf.ok()) return buf.errc();
        env.clock().advance(env.cost.copy_cost(lens[idx]));
        dev_->store(buf.value(), payload.subspan(lead, lens[idx]));
        m.data_off = buf.value();
        m.data_cap = lens[idx];
        m.val_off = 0;
        // Register with the pool's refcounting so free_chain is uniform.
        pktpool_->restore_ref(buf.value());
      }
    }

    // Persist the value bytes (DMA left them dirty in PM) — unless the
    // NIC's slicing DMA already made exactly these bytes durable on
    // placement (dma_durable: adopted slice, nothing dirty to flush).
    {
      Phase p(env, bd != nullptr ? &bd->persist_ns : nullptr);
      if (opts.persistence && !dma_durable) {
        persist_range(m.data_off + m.val_off, m.val_len);
      }
    }

    // Metadata block: one line, allocated from the packet pool.
    {
      Phase p(env, bd != nullptr ? &bd->alloc_insert_ns : nullptr);
      auto off = alloc_meta(m);
      if (!off.ok()) return off.errc();
      metas[idx] = off.value();
      next = off.value();
    }
  }
  return metas[0];
}

Result<u64> PChain::ingest_bytes(std::span<const u8> data,
                                 const IngestOptions& opts,
                                 storage::OpBreakdown* bd) {
  auto& env = dev_->env();
  // Chunk into MSS-sized packet buffers with TX header room, so the data
  // can later leave the host without another allocation or copy (§4.2:
  // "it can avoid memory deallocation in its own allocator and memory
  // allocation inside the network stack").
  const u32 chunk_max = static_cast<u32>(net::kMss);
  u64 next = 0;
  u64 head = 0;
  const std::size_t n_chunks =
      data.empty() ? 1 : (data.size() + chunk_max - 1) / chunk_max;

  for (std::size_t idx = n_chunks; idx-- > 0;) {
    const u64 at = static_cast<u64>(idx) * chunk_max;
    const u32 len = static_cast<u32>(
        std::min<std::size_t>(chunk_max, data.size() - at));
    const u32 cap = static_cast<u32>(net::kAllHdrLen) + len;
    auto buf = pmpool_->alloc(cap);
    if (!buf.ok()) return buf.errc();
    {
      Phase p(env, bd != nullptr ? &bd->copy_ns : nullptr);
      env.clock().advance(env.cost.copy_cost(len));
      if (len > 0) {
        dev_->store(buf.value() + net::kAllHdrLen,
                    std::span<const u8>(data.data() + at, len));
      }
    }
    PPktMeta m{};
    m.magic = PPktMeta::kMagic;
    m.data_off = buf.value();
    m.data_cap = cap;
    m.val_off = static_cast<u32>(net::kAllHdrLen);
    m.val_len = len;
    m.next = next;
    m.total_len = idx == 0 ? data.size() : 0;
    {
      Phase p(env, bd != nullptr ? &bd->checksum_ns : nullptr);
      env.clock().advance(env.cost.inet_csum_cost(len));
      m.csum_kind = static_cast<u16>(CsumKind::inet16);
      m.csum16 = inet_checksum(std::span<const u8>(data.data() + at, len));
    }
    m.hw_tstamp = opts.reuse_timestamp ? env.now() : 0;
    {
      Phase p(env, bd != nullptr ? &bd->persist_ns : nullptr);
      if (opts.persistence) persist_range(m.data_off + m.val_off, m.val_len);
    }
    {
      Phase p(env, bd != nullptr ? &bd->alloc_insert_ns : nullptr);
      auto off = alloc_meta(m);
      if (!off.ok()) return off.errc();
      next = off.value();
      head = off.value();
    }
    // Register the fresh block with the packet pool's refcounting so the
    // free path is uniform with adopted packets.
    pktpool_->restore_ref(buf.value());
  }
  return head;
}

Result<std::vector<u8>> PChain::read(u64 head) const {
  auto& env = dev_->env();
  std::vector<u8> out;
  const PPktMeta* h = meta(head);
  if (h->magic != PPktMeta::kMagic) return Errc::corrupted;
  out.reserve(h->total_len);
  for (u64 at = head; at != 0;) {
    const PPktMeta* m = meta(at);
    if (m->magic != PPktMeta::kMagic) return Errc::corrupted;
    const u8* p = dev_->at(m->data_off + m->val_off, m->val_len);
    env.clock().advance(env.cost.copy_cost(m->val_len));
    out.insert(out.end(), p, p + m->val_len);
    at = m->next;
  }
  if (out.size() != h->total_len) return Errc::corrupted;
  return out;
}

Status PChain::verify(u64 head) const {
  auto& env = dev_->env();
  for (u64 at = head; at != 0;) {
    const PPktMeta* m = meta(at);
    if (m->magic != PPktMeta::kMagic) return Errc::corrupted;
    const std::span<const u8> bytes(dev_->at(m->data_off + m->val_off, m->val_len),
                                    m->val_len);
    switch (static_cast<CsumKind>(m->csum_kind)) {
      case CsumKind::inet16: {
        env.clock().advance(env.cost.inet_csum_cost(bytes.size()));
        if (inet_csum_canon(inet_checksum(bytes)) != inet_csum_canon(m->csum16)) {
          return Errc::corrupted;
        }
        break;
      }
      case CsumKind::crc32c: {
        env.clock().advance(env.cost.crc32c_cost(bytes.size()));
        if (crc32c(bytes) != m->csum32) return Errc::corrupted;
        break;
      }
      case CsumKind::none:
        break;
      default:
        return Errc::corrupted;
    }
    at = m->next;
  }
  return Errc::ok;
}

Result<std::vector<net::PktBuf*>> PChain::emit_pkts(u64 head) const {
  std::vector<net::PktBuf*> out;
  for (u64 at = head; at != 0;) {
    const PPktMeta* m = meta(at);
    if (m->magic != PPktMeta::kMagic) {
      for (auto* pb : out) pktpool_->free(pb);
      return Errc::corrupted;
    }
    // Linear part: header room only; value rides as a frag (no copy).
    net::PktBuf* pb = pktpool_->alloc(static_cast<u32>(net::kAllHdrLen));
    if (pb == nullptr) {
      for (auto* p : out) pktpool_->free(p);
      return Errc::out_of_space;
    }
    pb->len = static_cast<u32>(net::kAllHdrLen);
    pb->payload_off = static_cast<u16>(net::kAllHdrLen);
    pb->hw_tstamp = m->hw_tstamp;
    if (static_cast<CsumKind>(m->csum_kind) == CsumKind::inet16) {
      pb->payload_csum = m->csum16;
    }
    const Status st =
        pktpool_->add_frag(*pb, m->data_off, m->val_len, m->val_off, m->data_cap);
    if (!st.ok()) {
      pktpool_->free(pb);
      for (auto* p : out) pktpool_->free(p);
      return st.errc();
    }
    out.push_back(pb);
    at = m->next;
  }
  return out;
}

void PChain::free_chain(u64 head) {
  for (u64 at = head; at != 0;) {
    const PPktMeta m = *meta(at);
    if (m.magic != PPktMeta::kMagic) return;
    if (m.data_off != 0) pktpool_->unref_data(m.data_off, m.data_cap);
    pmpool_->free(at, sizeof(PPktMeta));
    at = m.next;
  }
}

Status PChain::restore(u64 head) const {
  for (u64 at = head; at != 0;) {
    const PPktMeta* m = meta(at);
    if (m->magic != PPktMeta::kMagic) return Errc::corrupted;
    if (m->data_off != 0) pktpool_->restore_ref(m->data_off);
    at = m->next;
  }
  return Errc::ok;
}

}  // namespace papm::core
