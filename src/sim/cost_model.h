// Calibrated cost model.
//
// Every simulated-time constant in the repository lives here, each with its
// provenance. Two sources anchor the calibration:
//
//  [T1]  Table 1 of the paper: RTT breakdown of a 1 KB networked write on
//        the authors' testbed (Xeon Gold 5218R server, Optane DCPMM,
//        XXV710 25 GbE, PASTE server stack, Linux+wrk client):
//          networking 26.71 us, request prep 0.70 us, checksum 1.77 us,
//          data copy 1.14 us, buffer alloc+insert 2.78 us, persist 1.94 us.
//  [IZ]  Izraelevitz et al., "Basic Performance Measurements of the Intel
//        Optane DC Persistent Memory Module" (arXiv:1903.05714), cited by
//        the paper in §5.1: PM random read 346 ns vs DRAM 70 ns.
//
// Changing a constant changes absolute numbers, never who wins: the
// comparisons in the benches are between code paths that *skip* work
// (e.g. checksum reuse skips the CRC32C charge entirely), so orderings are
// structural.
#pragma once

#include <cstddef>

#include "common/types.h"

namespace papm::sim {

struct CostModel {
  // --- Memory media ------------------------------------------------- [IZ]
  SimTime dram_read_ns = 70;    // random cache-miss load from DRAM
  SimTime pm_read_ns = 346;     // random cache-miss load from Optane PM
  SimTime dram_write_ns = 60;   // store (to fill buffer)
  SimTime pm_write_ns = 96;     // store to PM write-pending queue
  SimTime clwb_ns = 115;        // flush one dirty cache line to PM; 16
                                // lines + fence = 1.94 us for 1 KB   [T1]
  SimTime sfence_ns = 100;      // ordering fence draining flushes

  // Streaming (sequential) access is much cheaper than random; used for
  // bulk copies. DRAM ~15 GB/s single-core memcpy => ~0.065 ns/B each of
  // read+write; we fold both sides into the copy constants below.

  // --- CPU work on the data path ------------------------------------ [T1]
  double crc32c_ns_per_byte = 1.70;   // software slicing-by-8: 1.77 us/KB
  SimTime crc32c_fixed_ns = 32;
  double inet_csum_ns_per_byte = 0.45;  // ones'-complement sum (cheaper)
  SimTime inet_csum_fixed_ns = 20;
  double copy_ns_per_byte = 1.10;     // memcpy into PM-backed buffer:
  SimTime copy_fixed_ns = 14;         //   1.14 us/KB                  [T1]
  double dram_stream_ns_per_byte = 0.13;  // sequential DRAM assembly
                                          //   (read+write at ~15 GB/s, per
                                          //   the streaming note above) —
                                          //   telemetry/admin body building
  SimTime request_prep_ns = 700;      // LevelDB WriteBatch-style request
                                      //   structure preparation       [T1]
  SimTime pktstore_prep_ns = 120;     // pktstore's residual request
                                      //   handling: the packet metadata
                                      //   already is the request record
                                      //   (§4.1 "many of these data
                                      //   management tasks could be
                                      //   obviated or simplified")
  SimTime pm_alloc_ns = 520;          // user-space PM allocator alloc [T1]
  SimTime pm_free_ns = 380;           //   (part of 2.78 us alloc+insert)
  SimTime heap_alloc_ns = 90;         // DRAM heap malloc, for contrast
  SimTime pool_alloc_ns = 45;         // packet-pool freelist pop: the
                                      //   allocator the paper reuses (§4.2)

  // --- Back-to-back (batched) operation ---------------------------------
  // When requests queue at the single server core (Figure 2's regime),
  // per-request storage overheads shrink: LevelDB-style group commit
  // amortizes the request/WriteBatch preparation across queued writes,
  // and the index's upper levels stay CPU-cache-hot between back-to-back
  // traversals. Calibrated so the saturated data-management penalty lands
  // in the paper's 9-28 % throughput / 11-41 % latency band.
  double batched_prep_scale = 0.20;   // request prep under group commit
  double batched_warm_scale = 0.25;   // index cold-miss fraction scale

  // --- Host network stacks -------------------------------------------
  // The client runs the regular interrupt-driven Linux stack with wrk;
  // the server runs PASTE (busy-polling, zero-copy). Split of the
  // 26.71 us networking RTT [T1]; see bench_table1 for the end-to-end sum.
  SimTime client_stack_tx_ns = 4200;   // syscall + TCP/IP TX + qdisc
  SimTime client_stack_rx_ns = 9850;   // IRQ + softirq + TCP RX + wakeup
                                       //   + epoll + read(2)
  SimTime client_http_build_ns = 550;  // wrk request formatting
  SimTime client_http_parse_ns = 500;  // wrk response parsing
  SimTime server_stack_rx_ns = 2700;   // PASTE busy-poll RX + TCP RX
  SimTime server_stack_tx_ns = 2150;   // PASTE TCP TX
  SimTime server_http_parse_ns = 520;  // HTTP request parse
  SimTime server_http_build_ns = 280;  // HTTP response build
  SimTime tcp_ack_process_ns = 350;    // processing a (piggybacked) ACK
  // Datagram paths: kernel UDP vs a MICA-style kernel-bypass framework
  // (2.2: "eliminate networking overheads using kernel-bypass framework
  // and custom UDP-based protocol").
  SimTime udp_stack_rx_ns = 5200;      // kernel UDP receive path
  SimTime udp_stack_tx_ns = 2600;      // kernel UDP send path
  SimTime bypass_stack_rx_ns = 500;    // kernel-bypass datagram RX
  SimTime bypass_stack_tx_ns = 420;    // kernel-bypass datagram TX
  SimTime homa_proc_ns = 180;          // Homa protocol processing per pkt

  // --- NIC and fabric -------------------------------------------------
  SimTime nic_tx_ns = 650;        // doorbell + descriptor + DMA latency
  SimTime nic_rx_ns = 600;        // DMA + descriptor writeback
  SimTime nic_csum_offload_ns = 0;   // checksum engine is on the wire path
  // Payload slicer (NFSlicer-style split DMA, see PAPERS.md): like the
  // checksum engine, the slicer sits on the store-and-forward path and adds
  // no latency of its own — the payload DMA targets the PM slot instead of
  // the host buffer. The host still pays a small per-segment cost to read
  // the completion descriptor and take ownership of the pre-placed slot.
  SimTime nic_slice_host_ns = 40;    // completion-descriptor + slot adoption
  // NIC-side index engine (CARGO-style near-data insert, see PAPERS.md):
  // the host posts a command (MMIO doorbell), the engine walks the
  // skip-list level-0 backbone over its own PM port, and the host later
  // reads a completion. Command execution is fixed-cost plus a small
  // per-segment metadata charge; the engine is slower than the host CPU at
  // pure pointer-chasing but its cost does not grow with value bytes.
  SimTime nic_insert_doorbell_ns = 250;    // MMIO doorbell + command write
  SimTime nic_insert_completion_ns = 150;  // completion poll + status read
  SimTime nic_insert_cmd_ns = 2400;        // engine command execution, fixed
  SimTime nic_insert_meta_ns = 90;         // engine per-segment meta append
  double wire_ns_per_byte = 0.32;    // 25 Gbit/s serialization     [T1 hw]
  SimTime fabric_propagation_ns = 900;  // cable + cut-through switch, one way
  double net_scale = 1.0;  // ablation A4: scales all stack+fabric net costs

  // --- Derived helpers -------------------------------------------------
  [[nodiscard]] SimTime crc32c_cost(std::size_t bytes) const noexcept {
    return crc32c_fixed_ns +
           static_cast<SimTime>(crc32c_ns_per_byte * static_cast<double>(bytes));
  }
  [[nodiscard]] SimTime inet_csum_cost(std::size_t bytes) const noexcept {
    return inet_csum_fixed_ns +
           static_cast<SimTime>(inet_csum_ns_per_byte * static_cast<double>(bytes));
  }
  [[nodiscard]] SimTime copy_cost(std::size_t bytes) const noexcept {
    return copy_fixed_ns +
           static_cast<SimTime>(copy_ns_per_byte * static_cast<double>(bytes));
  }
  // Sequential DRAM string/body assembly (no PM write queue, no flush):
  // what serving a /stats or /metrics snapshot costs the core.
  [[nodiscard]] SimTime stream_cost(std::size_t bytes) const noexcept {
    return static_cast<SimTime>(dram_stream_ns_per_byte *
                                static_cast<double>(bytes));
  }
  [[nodiscard]] SimTime wire_cost(std::size_t bytes) const noexcept {
    return scaled(static_cast<SimTime>(wire_ns_per_byte * static_cast<double>(bytes)));
  }
  // Persist `bytes` starting at a cache-line-aligned region: one clwb per
  // dirty line plus a fence.
  [[nodiscard]] SimTime persist_cost(std::size_t bytes) const noexcept {
    const auto lines = static_cast<SimTime>((bytes + kCacheLine - 1) / kCacheLine);
    return lines * clwb_ns + sfence_ns;
  }
  [[nodiscard]] SimTime scaled(SimTime net_ns) const noexcept {
    return static_cast<SimTime>(net_scale * static_cast<double>(net_ns));
  }

  // Preset used by ablation A4: a Homa-like low-latency transport + fast
  // fabric, per §5.2 ("networking latency will be reduced").
  [[nodiscard]] static CostModel homa_like() {
    CostModel m;
    m.client_stack_tx_ns = 900;
    m.client_stack_rx_ns = 1400;
    m.server_stack_rx_ns = 700;
    m.server_stack_tx_ns = 600;
    m.tcp_ack_process_ns = 120;
    m.fabric_propagation_ns = 600;
    return m;
  }
};

}  // namespace papm::sim
