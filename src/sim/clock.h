// Virtual time for the deterministic simulation.
//
// All device and fabric time in this repository is *simulated*: components
// do real work on real bytes (checksums, skip-list traversals, copies) but
// the time they report comes from a calibrated cost model charged to this
// clock. That is the substitution that stands in for the paper's
// Optane + 25 GbE testbed (see DESIGN.md §2).
//
// Charge scopes. In the end-to-end experiments, CPU work must consume a
// *per-host* CPU, not global event time: a busy server core queues
// requests (the Figure 2 effect) without stopping the rest of the world.
// A host wraps its packet/request processing in a charge scope: while the
// scope is active, advance() accumulates into the scope's collector and
// now() reports the host's virtual time (scope base + collected charge),
// so timestamps and scheduled outputs land at the right moment. When no
// scope is active (unit tests, microbenches), advance() moves global time
// directly.
#pragma once

#include <cassert>

#include "common/types.h"

namespace papm::sim {

class Clock {
 public:
  // Event time, or the active scope's virtual time.
  [[nodiscard]] SimTime now() const noexcept {
    return collector_ != nullptr ? scope_base_ + *collector_ : now_;
  }

  // Charge synchronous work: accumulates into the active scope, or moves
  // global time forward by `ns` (>= 0).
  void advance(SimTime ns) noexcept {
    if (ns <= 0) return;
    if (collector_ != nullptr) {
      *collector_ += ns;
    } else {
      now_ += ns;
    }
  }

  // Jump to an absolute time; used by the event engine only. Never moves
  // backwards, never legal inside a scope.
  void jump_to(SimTime t) noexcept {
    assert(collector_ == nullptr);
    if (t > now_) now_ = t;
  }

  // --- Charge scopes (see header comment) ---------------------------
  void begin_scope(SimTime base, SimTime* collector) noexcept {
    assert(collector_ == nullptr && "scopes do not nest");
    scope_base_ = base;
    collector_ = collector;
  }
  void end_scope() noexcept { collector_ = nullptr; }
  [[nodiscard]] bool in_scope() const noexcept { return collector_ != nullptr; }

  // Swap the active scope for another (scopes never nest, but a device
  // engine modelled *inside* a host scope — e.g. the NIC index engine —
  // needs to divert charges away from the host's collector and restore it
  // afterwards, including when a PowerFailure unwinds through the engine).
  struct ScopeState {
    SimTime base = 0;
    SimTime* collector = nullptr;
  };
  [[nodiscard]] ScopeState exchange_scope(SimTime base,
                                          SimTime* collector) noexcept {
    const ScopeState prev{scope_base_, collector_};
    scope_base_ = base;
    collector_ = collector;
    return prev;
  }
  void restore_scope(ScopeState s) noexcept {
    scope_base_ = s.base;
    collector_ = s.collector;
  }

  void reset() noexcept {
    now_ = 0;
    collector_ = nullptr;
  }

 private:
  SimTime now_ = 0;
  SimTime scope_base_ = 0;
  SimTime* collector_ = nullptr;
};

}  // namespace papm::sim
