// Discrete-event engine.
//
// A single-threaded priority queue of (time, sequence, callback). Events
// scheduled at equal times fire in scheduling order (the sequence number
// breaks ties), which keeps runs bit-deterministic.
#pragma once

#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"
#include "sim/clock.h"

namespace papm::sim {

class Engine {
 public:
  using Callback = std::function<void()>;

  Clock& clock() noexcept { return clock_; }
  [[nodiscard]] SimTime now() const noexcept { return clock_.now(); }

  // Schedule `fn` to run at absolute time `at` (clamped to now).
  void schedule_at(SimTime at, Callback fn);

  // Schedule `fn` to run `delay` ns from now.
  void schedule_in(SimTime delay, Callback fn) {
    schedule_at(clock_.now() + delay, std::move(fn));
  }

  // Run the earliest pending event; returns false if none are pending.
  bool step();

  // Run events until the queue drains or the clock passes `deadline`.
  // Events scheduled beyond the deadline stay queued.
  void run_until(SimTime deadline);

  // Run until no events remain.
  void run_until_idle();

  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

  // Drop all pending events and reset time to zero.
  void reset();

 private:
  struct Event {
    SimTime at;
    u64 seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Clock clock_;
  u64 next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace papm::sim
