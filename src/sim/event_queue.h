// Discrete-event engine.
//
// A single-threaded binary heap of (time, sequence, callback). Events
// scheduled at equal times fire in scheduling order (the sequence number
// breaks ties), which keeps runs bit-deterministic.
//
// The heap lives in a plain std::vector (not std::priority_queue) so the
// storage can be reserved up front and events moved out without the
// const_cast dance — schedule_at() is on the per-packet hot path of every
// end-to-end bench.
#pragma once

#include <functional>
#include <vector>

#include "common/types.h"
#include "sim/clock.h"

namespace papm::sim {

class Engine {
 public:
  using Callback = std::function<void()>;

  Engine() { queue_.reserve(kReserveEvents); }

  Clock& clock() noexcept { return clock_; }
  [[nodiscard]] SimTime now() const noexcept { return clock_.now(); }

  // Schedule `fn` to run at absolute time `at` (clamped to now). Takes
  // the callback by value and moves it into the heap entry — callers
  // passing rvalues pay zero std::function copies.
  void schedule_at(SimTime at, Callback fn);

  // Schedule `fn` to run `delay` ns from now.
  void schedule_in(SimTime delay, Callback fn) {
    schedule_at(clock_.now() + delay, std::move(fn));
  }

  // Run the earliest pending event; returns false if none are pending.
  bool step();

  // Run events until the queue drains or the clock passes `deadline`.
  // Events scheduled beyond the deadline stay queued.
  void run_until(SimTime deadline);

  // Run until no events remain.
  void run_until_idle();

  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

  // Drop all pending events and reset time to zero.
  void reset();

 private:
  // Initial heap capacity: enough for every in-flight packet + timer of
  // the largest end-to-end sweep without a mid-run reallocation.
  static constexpr std::size_t kReserveEvents = 4096;

  struct Event {
    SimTime at;
    u64 seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Clock clock_;
  u64 next_seq_ = 0;
  std::vector<Event> queue_;  // binary heap ordered by Later
#ifndef NDEBUG
  SimTime last_fired_at_ = 0;  // heap-stability check (debug builds)
#endif
};

}  // namespace papm::sim
