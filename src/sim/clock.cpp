#include "sim/clock.h"

// Clock is header-only; this TU anchors the library target.
