// Per-host CPU resource.
//
// The paper's server "uses only one CPU core"; Figure 2's latency growth
// with connection count is queueing at that core. HostCpu serializes
// charged work onto a fixed number of cores: each run() picks the
// earliest-free core no earlier than the event time, executes the handler
// under a charge scope (see clock.h), and marks the core busy for the
// collected charge.
//
// The multi-queue datapath (RSS scale-out) instead *pins* work: run_on()
// charges a specific core, so each NIC queue's busy-poll loop consumes
// its own core and a backlog on one core never delays another — the
// per-core queueing model the scaling experiments (S1) rest on.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "common/types.h"
#include "sim/env.h"

namespace papm::sim {

class HostCpu {
 public:
  // cores == 0 means "effectively unlimited" (the multi-core client whose
  // queueing the paper does not model).
  explicit HostCpu(Env& env, int cores = 1) : env_(&env) {
    for (int i = 0; i < cores; i++) free_at_.push_back(0);
    busy_per_core_.assign(free_at_.size(), 0);
  }

  // Executes `fn` as CPU work arriving now on the earliest-free core.
  // Returns the completion time.
  template <typename F>
  SimTime run(F&& fn) {
    std::size_t core = 0;
    if (!free_at_.empty()) {
      core = static_cast<std::size_t>(
          std::min_element(free_at_.begin(), free_at_.end()) - free_at_.begin());
    }
    return run_pinned(core, std::forward<F>(fn));
  }

  // Executes `fn` as CPU work arriving now, pinned to `core`: the work
  // queues behind that core's backlog even if other cores are idle. With
  // an unlimited CPU (cores == 0) pinning is a no-op.
  template <typename F>
  SimTime run_on(std::size_t core, F&& fn) {
    if (!free_at_.empty()) core %= free_at_.size();
    return run_pinned(core, std::forward<F>(fn));
  }

  [[nodiscard]] SimTime earliest_free() const noexcept {
    if (free_at_.empty()) return 0;
    return *std::min_element(free_at_.begin(), free_at_.end());
  }
  [[nodiscard]] SimTime free_at(std::size_t core) const noexcept {
    return core < free_at_.size() ? free_at_[core] : 0;
  }
  [[nodiscard]] int cores() const noexcept {
    return static_cast<int>(free_at_.size());
  }
  [[nodiscard]] SimTime busy_ns() const noexcept { return busy_ns_; }
  [[nodiscard]] SimTime busy_ns(std::size_t core) const noexcept {
    return core < busy_per_core_.size() ? busy_per_core_[core] : 0;
  }
  // True while running a work item that waited behind the busy core —
  // the back-to-back regime where batching effects apply.
  [[nodiscard]] bool backlogged() const noexcept { return backlogged_; }
  [[nodiscard]] u64 work_items() const noexcept { return work_items_; }

 private:
  template <typename F>
  SimTime run_pinned(std::size_t core, F&& fn) {
    const SimTime arrival = env_->now();
    SimTime start = arrival;
    if (!free_at_.empty()) start = std::max(arrival, free_at_[core]);
    backlogged_ = start > arrival;
    SimTime charge = 0;
    {
      // The scope must close even when `fn` throws (a PowerFailure cutting
      // the host mid-handler): the collector points at the stack local
      // above, and a leaked scope would leave the global clock reading a
      // dead frame long after the unwind.
      struct ScopeCloser {
        Clock* clk;
        ~ScopeCloser() { clk->end_scope(); }
      };
      env_->clock().begin_scope(start, &charge);
      const ScopeCloser closer{&env_->clock()};
      std::forward<F>(fn)();
    }
    const SimTime done = start + charge;
    if (!free_at_.empty()) {
      free_at_[core] = done;
      busy_per_core_[core] += charge;
    }
    busy_ns_ += charge;
    work_items_++;
    return done;
  }

  Env* env_;
  std::vector<SimTime> free_at_;
  std::vector<SimTime> busy_per_core_;
  SimTime busy_ns_ = 0;
  u64 work_items_ = 0;
  bool backlogged_ = false;
};

}  // namespace papm::sim
