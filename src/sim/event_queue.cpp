#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>

namespace papm::sim {

void Engine::schedule_at(SimTime at, Callback fn) {
  if (at < clock_.now()) at = clock_.now();
  queue_.push_back(Event{at, next_seq_++, std::move(fn)});
  std::push_heap(queue_.begin(), queue_.end(), Later{});
}

bool Engine::step() {
  if (queue_.empty()) return false;
  std::pop_heap(queue_.begin(), queue_.end(), Later{});
  Event ev = std::move(queue_.back());
  queue_.pop_back();
#ifndef NDEBUG
  // Stability: events fire in non-decreasing time order, and callbacks
  // may only *add* pending work (step() is the sole consumer).
  assert(ev.at >= last_fired_at_ && "heap yielded an out-of-order event");
  last_fired_at_ = ev.at;
  const std::size_t pending_before = queue_.size();
#endif
  clock_.jump_to(ev.at);
  ev.fn();
#ifndef NDEBUG
  assert(queue_.size() >= pending_before &&
         "a callback removed pending events behind the engine's back");
#endif
  return true;
}

void Engine::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.front().at <= deadline) {
    step();
  }
  clock_.jump_to(deadline);
}

void Engine::run_until_idle() {
  while (step()) {
  }
}

void Engine::reset() {
  queue_.clear();
  queue_.reserve(kReserveEvents);
  clock_.reset();
  next_seq_ = 0;
#ifndef NDEBUG
  last_fired_at_ = 0;
#endif
}

}  // namespace papm::sim
