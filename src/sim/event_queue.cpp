#include "sim/event_queue.h"

namespace papm::sim {

void Engine::schedule_at(SimTime at, Callback fn) {
  if (at < clock_.now()) at = clock_.now();
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

bool Engine::step() {
  if (queue_.empty()) return false;
  // Move the event out before running it: the callback may schedule more.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  clock_.jump_to(ev.at);
  ev.fn();
  return true;
}

void Engine::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.top().at <= deadline) {
    step();
  }
  clock_.jump_to(deadline);
}

void Engine::run_until_idle() {
  while (step()) {
  }
}

void Engine::reset() {
  while (!queue_.empty()) queue_.pop();
  clock_.reset();
  next_seq_ = 0;
}

}  // namespace papm::sim
