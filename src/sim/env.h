// Simulation environment: the bundle every simulated component shares.
//
// Determinism contract: a fresh Env starts from a fixed seed and a zero
// clock, and every component draws randomness only from `rng` (or a
// stream seeded from it), so a workload replays bit-identically across
// fresh environments. The crash-point sweep (tests/crash_harness.h)
// leans on this to re-run one workload hundreds of times with the power
// cut scheduled at successive flush/fence boundaries — which is also why
// PmDevice's fault draws deliberately use their own plan-seeded RNG and
// never consume from `rng` (a cut must not perturb the workload stream).
#pragma once

#include "common/rng.h"
#include "sim/cost_model.h"
#include "sim/event_queue.h"

namespace papm::sim {

struct Env {
  Engine engine;
  CostModel cost;
  Rng rng{0x5eedULL};

  Clock& clock() noexcept { return engine.clock(); }
  [[nodiscard]] SimTime now() const noexcept { return engine.now(); }
};

}  // namespace papm::sim
