// Simulation environment: the bundle every simulated component shares.
#pragma once

#include "common/rng.h"
#include "sim/cost_model.h"
#include "sim/event_queue.h"

namespace papm::sim {

struct Env {
  Engine engine;
  CostModel cost;
  Rng rng{0x5eedULL};

  Clock& clock() noexcept { return engine.clock(); }
  [[nodiscard]] SimTime now() const noexcept { return engine.now(); }
};

}  // namespace papm::sim
