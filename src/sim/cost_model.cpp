#include "sim/cost_model.h"

// CostModel is header-only; this TU anchors the library target.
