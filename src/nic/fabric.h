// Network fabric: the cable + switch connecting the simulated NICs.
//
// Stands in for the testbed's 25 GbE switch (DESIGN.md §2). Frames are
// raw byte vectors (the wire format); the fabric routes them by
// destination IP, charging propagation delay and optionally injecting
// loss, duplication, delay and reordering for the transport-robustness
// experiments (M1) and the replication availability experiments (A4).
//
// Determinism: fault draws come from per-link RNGs seeded from
// FabricOptions::seed ^ dst_ip — the same philosophy as pm::FaultPlan,
// whose draws never consume from env.rng so that injecting a fault
// cannot perturb the workload stream. Two runs with the same seed see
// the same losses regardless of what else the simulation does.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/env.h"

namespace papm::nic {

struct WireFrame {
  std::vector<u8> bytes;
  SimTime tx_hw_tstamp = 0;
};

struct FabricOptions {
  double loss_p = 0.0;            // i.i.d. frame loss probability
  double dup_p = 0.0;             // probability of delivering a frame twice
  SimTime delay_ns = 0;           // fixed extra one-way latency per frame
  double reorder_p = 0.0;         // probability of delaying a frame
  SimTime reorder_jitter_ns = 20 * kNsPerUs;  // extra delay when reordered
  double corrupt_p = 0.0;         // probability of flipping one bit
  u64 seed = 0x5eedfabULL;        // per-link fault RNG seed (FaultPlan-style)
};

class Fabric {
 public:
  using Options = FabricOptions;

  explicit Fabric(sim::Env& env, Options opts = Options()) : env_(&env), opts_(opts) {}

  // Registers a port: frames whose IP destination equals `ip` are
  // delivered to `deliver`.
  void attach(u32 ip, std::function<void(WireFrame)> deliver);

  // Injects a frame from a NIC. `depart_at` is when the last bit leaves
  // the sender (the NIC handles link serialization); delivery happens
  // after propagation + the link's fixed delay (+ jitter if reordered).
  void inject(u32 dst_ip, WireFrame frame, SimTime depart_at);

  [[nodiscard]] u64 delivered() const noexcept { return delivered_; }
  [[nodiscard]] u64 dropped() const noexcept { return dropped_; }
  [[nodiscard]] u64 duplicated() const noexcept { return duplicated_; }
  [[nodiscard]] u64 reordered() const noexcept { return reordered_; }
  [[nodiscard]] u64 corrupted() const noexcept { return corrupted_; }

  void set_options(Options opts) noexcept { opts_ = opts; }

  // Per-link fault plan: frames *towards* `dst_ip` use `opts` instead of
  // the fabric-wide options. Lets a test lossy-up one replica's ingress
  // while the rest of the cluster stays clean.
  void set_link_fault(u32 dst_ip, Options opts) { link_opts_[dst_ip] = opts; }
  void clear_link_fault(u32 dst_ip) { link_opts_.erase(dst_ip); }

  // Test-only targeted drop: return true to eat the frame (counted as a
  // drop, no RNG consumed). Used by the Homa retransmit tests to kill
  // one specific packet (e.g. the first grant, or the last segment).
  using DropHook = std::function<bool(u32 dst_ip, const WireFrame&)>;
  void set_drop_hook(DropHook hook) { drop_hook_ = std::move(hook); }

 private:
  Rng& link_rng(u32 dst_ip, u64 seed);

  sim::Env* env_;
  Options opts_;
  std::unordered_map<u32, std::function<void(WireFrame)>> ports_;
  std::unordered_map<u32, Options> link_opts_;
  std::unordered_map<u64, Rng> link_rng_;  // (seed ^ mixed dst) -> stream
  DropHook drop_hook_;
  u64 delivered_ = 0;
  u64 dropped_ = 0;
  u64 duplicated_ = 0;
  u64 reordered_ = 0;
  u64 corrupted_ = 0;
};

}  // namespace papm::nic
