// Network fabric: the cable + switch connecting the simulated NICs.
//
// Stands in for the testbed's 25 GbE switch (DESIGN.md §2). Frames are
// raw byte vectors (the wire format); the fabric routes them by
// destination IP, charging propagation delay and optionally injecting
// loss and reordering for the transport-robustness experiments (M1).
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "sim/env.h"

namespace papm::nic {

struct WireFrame {
  std::vector<u8> bytes;
  SimTime tx_hw_tstamp = 0;
};

struct FabricOptions {
  double loss_p = 0.0;            // i.i.d. frame loss probability
  double reorder_p = 0.0;         // probability of delaying a frame
  SimTime reorder_jitter_ns = 20 * kNsPerUs;  // extra delay when reordered
  double corrupt_p = 0.0;         // probability of flipping one bit
};

class Fabric {
 public:
  using Options = FabricOptions;

  explicit Fabric(sim::Env& env, Options opts = Options()) : env_(&env), opts_(opts) {}

  // Registers a port: frames whose IP destination equals `ip` are
  // delivered to `deliver`.
  void attach(u32 ip, std::function<void(WireFrame)> deliver);

  // Injects a frame from a NIC. `depart_at` is when the last bit leaves
  // the sender (the NIC handles link serialization); delivery happens
  // after propagation (+ jitter if reordered).
  void inject(u32 dst_ip, WireFrame frame, SimTime depart_at);

  [[nodiscard]] u64 delivered() const noexcept { return delivered_; }
  [[nodiscard]] u64 dropped() const noexcept { return dropped_; }
  [[nodiscard]] u64 reordered() const noexcept { return reordered_; }
  [[nodiscard]] u64 corrupted() const noexcept { return corrupted_; }

  void set_options(Options opts) noexcept { opts_ = opts; }

 private:
  sim::Env* env_;
  Options opts_;
  std::unordered_map<u32, std::function<void(WireFrame)>> ports_;
  u64 delivered_ = 0;
  u64 dropped_ = 0;
  u64 reordered_ = 0;
  u64 corrupted_ = 0;
};

}  // namespace papm::nic
