#include "nic/fabric.h"

namespace papm::nic {

void Fabric::attach(u32 ip, std::function<void(WireFrame)> deliver) {
  ports_[ip] = std::move(deliver);
}

Rng& Fabric::link_rng(u32 dst_ip, u64 seed) {
  // One independent stream per (seed, link): splitmix the pair so links
  // with adjacent IPs don't see correlated draws.
  u64 mix = seed ^ (static_cast<u64>(dst_ip) + 0x9e3779b97f4a7c15ULL);
  const u64 key = splitmix64(mix);
  auto it = link_rng_.find(key);
  if (it == link_rng_.end()) it = link_rng_.emplace(key, Rng(key)).first;
  return it->second;
}

void Fabric::inject(u32 dst_ip, WireFrame frame, SimTime depart_at) {
  auto it = ports_.find(dst_ip);
  if (it == ports_.end()) return;  // no route: silently dropped

  if (drop_hook_ && drop_hook_(dst_ip, frame)) {
    dropped_++;
    return;
  }

  const auto lo = link_opts_.find(dst_ip);
  const Options& o = lo != link_opts_.end() ? lo->second : opts_;
  const bool draws = o.loss_p > 0 || o.dup_p > 0 || o.reorder_p > 0 ||
                     o.corrupt_p > 0;
  // Faults draw from the link's own stream, never env->rng: a lossy link
  // must not perturb the workload RNG (same contract as pm::FaultPlan).
  Rng* rng = draws ? &link_rng(dst_ip, o.seed) : nullptr;

  if (o.loss_p > 0 && rng->chance(o.loss_p)) {
    dropped_++;
    return;
  }
  if (o.corrupt_p > 0 && !frame.bytes.empty() && rng->chance(o.corrupt_p)) {
    // Silent single-bit corruption; checksums must catch it downstream.
    const u64 byte = rng->next_below(frame.bytes.size());
    frame.bytes[byte] ^= static_cast<u8>(1u << rng->next_below(8));
    corrupted_++;
  }
  SimTime arrive = depart_at + env_->cost.scaled(env_->cost.fabric_propagation_ns) +
                   o.delay_ns;
  if (o.reorder_p > 0 && rng->chance(o.reorder_p)) {
    reordered_++;
    arrive += static_cast<SimTime>(rng->next_double() *
                                   static_cast<double>(o.reorder_jitter_ns));
  }
  auto& deliver = it->second;
  if (o.dup_p > 0 && rng->chance(o.dup_p)) {
    // The switch replays the frame one propagation later (models a
    // flapping LAG member re-forwarding). Receivers must dedup.
    duplicated_++;
    delivered_++;
    env_->engine.schedule_at(
        arrive + env_->cost.scaled(env_->cost.fabric_propagation_ns),
        [&deliver, f = frame]() mutable { deliver(std::move(f)); });
  }
  delivered_++;
  env_->engine.schedule_at(arrive,
                           [&deliver, f = std::move(frame)]() mutable {
                             deliver(std::move(f));
                           });
}

}  // namespace papm::nic
