#include "nic/fabric.h"

namespace papm::nic {

void Fabric::attach(u32 ip, std::function<void(WireFrame)> deliver) {
  ports_[ip] = std::move(deliver);
}

void Fabric::inject(u32 dst_ip, WireFrame frame, SimTime depart_at) {
  auto it = ports_.find(dst_ip);
  if (it == ports_.end()) return;  // no route: silently dropped

  if (opts_.loss_p > 0 && env_->rng.chance(opts_.loss_p)) {
    dropped_++;
    return;
  }
  if (opts_.corrupt_p > 0 && !frame.bytes.empty() &&
      env_->rng.chance(opts_.corrupt_p)) {
    // Silent single-bit corruption; checksums must catch it downstream.
    const u64 byte = env_->rng.next_below(frame.bytes.size());
    frame.bytes[byte] ^= static_cast<u8>(1u << env_->rng.next_below(8));
    corrupted_++;
  }
  SimTime arrive = depart_at + env_->cost.scaled(env_->cost.fabric_propagation_ns);
  if (opts_.reorder_p > 0 && env_->rng.chance(opts_.reorder_p)) {
    reordered_++;
    arrive += static_cast<SimTime>(env_->rng.next_double() *
                                   static_cast<double>(opts_.reorder_jitter_ns));
  }
  delivered_++;
  auto& deliver = it->second;
  env_->engine.schedule_at(arrive,
                           [&deliver, f = std::move(frame)]() mutable {
                             deliver(std::move(f));
                           });
}

}  // namespace papm::nic
