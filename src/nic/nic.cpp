#include "nic/nic.h"

#include <algorithm>
#include <cstring>

#include "net/udp.h"

namespace papm::nic {

using net::kAllHdrLen;
using net::kEthHdrLen;
using net::kIpHdrLen;
using net::kTcpHdrLen;

u32 rss_toeplitz(u32 src_ip, u32 dst_ip, u16 src_port,
                 u16 dst_port) noexcept {
  // The Microsoft RSS verification-suite key (the default programmed by
  // most drivers, e.g. ixgbe/i40e).
  static constexpr u8 kKey[40] = {
      0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67,
      0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0, 0xd0, 0xca, 0x2b, 0xcb,
      0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30,
      0xf2, 0x0c, 0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa};
  const u8 in[12] = {
      static_cast<u8>(src_ip >> 24),   static_cast<u8>(src_ip >> 16),
      static_cast<u8>(src_ip >> 8),    static_cast<u8>(src_ip),
      static_cast<u8>(dst_ip >> 24),   static_cast<u8>(dst_ip >> 16),
      static_cast<u8>(dst_ip >> 8),    static_cast<u8>(dst_ip),
      static_cast<u8>(src_port >> 8),  static_cast<u8>(src_port),
      static_cast<u8>(dst_port >> 8),  static_cast<u8>(dst_port)};
  // 64-bit sliding window: the high 32 bits are the current key window,
  // the low bits are lookahead replenished a byte at a time.
  u64 win = 0;
  for (int i = 0; i < 8; i++) win = (win << 8) | kKey[i];
  u32 hash = 0;
  std::size_t next_key = 8;
  for (int i = 0; i < 12; i++) {
    for (int bit = 7; bit >= 0; bit--) {
      if (((in[i] >> bit) & 1) != 0) hash ^= static_cast<u32>(win >> 32);
      win <<= 1;
    }
    win |= kKey[next_key++];
  }
  return hash;
}

Nic::Nic(sim::Env& env, Fabric& fabric, u32 ip, net::PktBufPool& pool,
         Options opts)
    : env_(env), fabric_(fabric), ip_(ip), opts_(opts) {
  mac_.b[0] = 0x02;
  mac_.b[2] = static_cast<u8>(ip >> 24);
  mac_.b[3] = static_cast<u8>(ip >> 16);
  mac_.b[4] = static_cast<u8>(ip >> 8);
  mac_.b[5] = static_cast<u8>(ip);
  queues_.push_back(Queue{&pool, nullptr});
  reset_indirection();
  fabric_.attach(ip, [this](WireFrame f) { on_frame(std::move(f)); });
}

u32 Nic::add_queue(net::PktBufPool& pool) {
  queues_.push_back(Queue{&pool, nullptr});
  reset_indirection();
  return static_cast<u32>(queues_.size() - 1);
}

void Nic::reset_indirection() noexcept {
  // Even spread. For power-of-two queue counts (every bench
  // configuration) entry[h % 128] == h % queues, so the default table is
  // bit-identical to the pre-table modulo steering.
  for (u32 i = 0; i < kIndirEntries; i++) {
    indir_[i] = static_cast<u16>(i % queues_.size());
  }
}

void Nic::set_indirection(u32 bucket, u32 queue) {
  const u32 b = bucket % kIndirEntries;
  const u16 q = static_cast<u16>(
      std::min<u32>(queue, static_cast<u32>(queues_.size()) - 1));
  if (indir_[b] == q) return;
  indir_[b] = q;
  indir_remaps_++;
  obs::inc(m_indir_remaps_);
}

void Nic::set_queue_sink(u32 queue, std::function<void(net::PktBuf*)> sink) {
  queues_.at(queue).sink = std::move(sink);
}

void Nic::transmit(net::PktBuf* pb) {
  if (!link_up_) {
    pb->owner->free(pb);  // dead host: the frame goes nowhere
    return;
  }
  // Driver work: descriptor + doorbell (CPU, charged to the caller's
  // core — each core rings its own TX queue's doorbell).
  env_.clock().advance(env_.cost.scaled(env_.cost.nic_tx_ns));
  const u32 txq = std::min<u32>(pb->rss_queue, num_queues() - 1);
  queues_[txq].tx_frames++;
  obs::inc(queues_[txq].m_tx_frames);

  // Resolve data through the packet's owning pool: a cross-shard
  // zero-copy response carries buffers of another core's arena.
  net::PktBufPool& pool = *pb->owner;
  WireFrame frame;
  const u8* base = pool.data(*pb);
  frame.bytes.assign(base, base + pb->len);  // DMA read; not CPU time
  for (int i = 0; i < pb->nr_frags; i++) {
    // Scatter-gather DMA: frag bytes join the frame without CPU copies.
    const auto& fr = pb->frags[i];
    const u8* f = pool.arena().data(fr.data_h, fr.off + fr.len) + fr.off;
    frame.bytes.insert(frame.bytes.end(), f, f + fr.len);
  }

  if (opts_.csum_offload_tx) {
    // Checksum engine on the TX path: covers the L4 header + payload with
    // the IPv4 pseudo-header. Free of CPU cost.
    env_.clock().advance(env_.cost.nic_csum_offload_ns);
    const std::size_t l4_len = frame.bytes.size() - pb->l4_off;
    const u32 pseudo =
        net::l4_pseudo_sum(pb->ip.src, pb->ip.dst, pb->l4_proto, l4_len);
    if (pb->l4_proto == net::kIpProtoTcp && pb->tcp.checksum == 0) {
      const u32 sum = pseudo + inet_sum(std::span<const u8>(
                                   frame.bytes.data() + pb->l4_off, l4_len));
      const u16 csum = static_cast<u16>(~inet_fold(sum));
      frame.bytes[pb->l4_off + 16] = static_cast<u8>(csum >> 8);
      frame.bytes[pb->l4_off + 17] = static_cast<u8>(csum & 0xff);
    } else if (pb->l4_proto == net::kIpProtoUdp &&
               frame.bytes[pb->l4_off + 6] == 0 &&
               frame.bytes[pb->l4_off + 7] == 0) {
      const u32 sum = pseudo + inet_sum(std::span<const u8>(
                                   frame.bytes.data() + pb->l4_off, l4_len));
      u16 csum = static_cast<u16>(~inet_fold(sum));
      if (csum == 0) csum = 0xffff;  // UDP: 0 means "no checksum"
      frame.bytes[pb->l4_off + 6] = static_cast<u8>(csum >> 8);
      frame.bytes[pb->l4_off + 7] = static_cast<u8>(csum & 0xff);
    }
  }

  // Link serialization: frames from every TX queue share the one wire.
  const SimTime ready = env_.now();
  const SimTime start = std::max(ready, link_free_at_);
  const SimTime depart = start + env_.cost.wire_cost(frame.bytes.size());
  link_free_at_ = depart;

  if (opts_.hw_timestamps) frame.tx_hw_tstamp = depart;
  tx_frames_++;
  const u32 dst_ip = pb->ip.dst;
  pool.free(pb);  // clones in the rtx queue keep the data alive
  fabric_.inject(dst_ip, std::move(frame), depart);
}

void Nic::on_frame(WireFrame frame) {
  if (!link_up_) return;  // dead host: in-flight frames hit a dark port
  // Parse L2-L4 from the wire bytes first: the RSS engine hashes the
  // 4-tuple *before* DMA so the frame lands in the right queue's
  // pre-posted buffer (header parsing is NIC hardware, not CPU time).
  const std::span<const u8> bytes(frame.bytes);
  const auto eth = net::decode_eth(bytes);
  if (!eth || eth->ethertype != net::kEtherTypeIpv4) {
    rx_drops_++;
    obs::inc(m_rx_drops_);
    return;
  }
  const auto ip = net::decode_ip(bytes.subspan(kEthHdrLen));
  if (!ip || (ip->protocol != net::kIpProtoTcp &&
              ip->protocol != net::kIpProtoUdp)) {
    rx_drops_++;
    obs::inc(m_rx_drops_);
    return;
  }

  net::TcpHeader l4{};  // L4 view: ports + checksum (+ full TCP fields)
  u16 payload_off;
  std::size_t l4_hdr_len;
  if (ip->protocol == net::kIpProtoTcp) {
    const auto tcp = net::decode_tcp(bytes.subspan(kEthHdrLen + kIpHdrLen));
    if (!tcp) {
      rx_drops_++;
      obs::inc(m_rx_drops_);
      return;
    }
    l4 = *tcp;
    payload_off = kAllHdrLen;
    l4_hdr_len = kTcpHdrLen;
  } else {
    const auto udp = net::decode_udp(bytes.subspan(kEthHdrLen + kIpHdrLen));
    if (!udp) {
      rx_drops_++;
      obs::inc(m_rx_drops_);
      return;
    }
    l4.src_port = udp->src_port;
    l4.dst_port = udp->dst_port;
    l4.checksum = udp->checksum;
    payload_off = static_cast<u16>(net::kUdpAllHdrLen);
    l4_hdr_len = net::kUdpHdrLen;
  }

  // RSS steering: hash -> indirection table -> queue. Same flow -> same
  // queue -> same core until the table entry is remapped (and the remap
  // migrates the flow group's TCP + store state with it). Only the TCP
  // hash type is enabled (like the testbed's default RSS config);
  // datagrams land on queue 0, where the UDP stack polls.
  const u32 hash = rss_toeplitz(ip->src, ip->dst, l4.src_port, l4.dst_port);
  u32 q = 0;
  if (ip->protocol == net::kIpProtoTcp) {
    const u32 bucket = rss_bucket_of(hash);
    bucket_rx_[bucket]++;
    q = indir_[bucket];
  }
  Queue& queue = queues_[q];

  // --- Sliced RX path (payload slicer engine, §5.2) --------------------
  // The slicer splits the DMA: headers land in a (small) pre-posted
  // descriptor buffer, the payload lands in a separately allocated arena
  // slot — on a PM-backed queue, its final durable resting place. Like
  // the checksum engine it sits on the store-and-forward path and adds no
  // latency of its own. Gated to TCP frames with payload on PM-pooled
  // queues (DRAM clients keep the contiguous path) and requires the RX
  // checksum engine: verification must precede the split DMA, and the
  // payload integrity word narrows from the same complete sum.
  if (net::kSlicerCompiled && opts_.payload_slicing && opts_.csum_offload_rx &&
      ip->protocol == net::kIpProtoTcp && frame.bytes.size() > payload_off &&
      queue.pool->arena().persistent()) {
    const std::span<const u8> l4_seg = bytes.subspan(kEthHdrLen + kIpHdrLen);
    const u32 full_sum = inet_sum(l4_seg);
    const u32 pseudo =
        net::l4_pseudo_sum(ip->src, ip->dst, ip->protocol, l4_seg.size());
    if (inet_fold(full_sum + pseudo) != 0xffff) {
      rx_csum_errors_++;
      obs::inc(m_rx_csum_err_);
      return;
    }
    const u32 plen = static_cast<u32>(frame.bytes.size()) - payload_off;
    net::PktBuf* pb = queue.pool->alloc(payload_off);  // headers only
    if (pb == nullptr) {
      rx_drops_++;
      obs::inc(m_rx_drops_);
      return;
    }
    if (!queue.pool->attach_slice(*pb, plen)) {
      queue.pool->free(pb);
      rx_drops_++;
      obs::inc(m_rx_drops_);
      return;
    }
    std::memcpy(queue.pool->writable(*pb, payload_off).data(),
                frame.bytes.data(), payload_off);
    queue.pool->arena().mark_dirty(pb->data_h, payload_off);
    // Payload DMA straight into the slice slot: a PCIe non-allocating
    // write — durable on placement, no flush owed (PmDevice::store_dma).
    queue.pool->arena().store_dma(pb->slice_h,
                                  bytes.subspan(payload_off, plen));
    pb->len = static_cast<u32>(frame.bytes.size());
    if (opts_.hw_timestamps) pb->hw_tstamp = env_.now();
    pb->l2_off = 0;
    pb->l3_off = kEthHdrLen;
    pb->l4_off = kEthHdrLen + kIpHdrLen;
    pb->l4_proto = ip->protocol;
    pb->ip = *ip;
    pb->tcp = l4;
    pb->payload_off = payload_off;
    pb->rss_hash = hash;
    pb->rss_queue = static_cast<u16>(q);
    pb->wire_csum = pb->tcp.checksum;
    pb->csum_verified = true;
    pb->payload_csum = net::payload_csum_from_complete(
        full_sum, bytes.subspan(pb->l4_off, l4_hdr_len));
    rx_frames_++;
    queue.rx_frames++;
    queue.sliced_frames++;
    obs::inc(queue.m_rx_frames);
    obs::inc(queue.m_sliced_frames);
    if (queue.sink) {
      queue.sink(pb);
    } else {
      queue.pool->free(pb);
    }
    return;
  }

  // DMA into a pre-posted RX buffer of the chosen queue.
  net::PktBuf* pb = queue.pool->alloc(static_cast<u32>(frame.bytes.size()));
  if (pb == nullptr) {
    rx_drops_++;
    obs::inc(m_rx_drops_);
    return;
  }
  std::memcpy(
      queue.pool->writable(*pb, static_cast<u32>(frame.bytes.size())).data(),
      frame.bytes.data(), frame.bytes.size());
  queue.pool->arena().mark_dirty(pb->data_h, frame.bytes.size());
  pb->len = static_cast<u32>(frame.bytes.size());
  if (opts_.hw_timestamps) pb->hw_tstamp = env_.now();

  pb->l2_off = 0;
  pb->l3_off = kEthHdrLen;
  pb->l4_off = kEthHdrLen + kIpHdrLen;
  pb->l4_proto = ip->protocol;
  pb->ip = *ip;
  pb->tcp = l4;
  pb->payload_off = payload_off;
  pb->rss_hash = hash;
  pb->rss_queue = static_cast<u16>(q);

  const bool udp_csum_absent =
      ip->protocol == net::kIpProtoUdp && pb->tcp.checksum == 0;
  if (opts_.csum_offload_rx && !udp_csum_absent) {
    // Hardware verification + checksum-complete. No CPU cost.
    const std::span<const u8> l4_seg = bytes.subspan(pb->l4_off);
    const u32 full_sum = inet_sum(l4_seg);
    const u32 pseudo =
        net::l4_pseudo_sum(ip->src, ip->dst, ip->protocol, l4_seg.size());
    if (inet_fold(full_sum + pseudo) != 0xffff) {
      rx_csum_errors_++;
      obs::inc(m_rx_csum_err_);
      queue.pool->free(pb);
      return;
    }
    pb->wire_csum = pb->tcp.checksum;
    pb->csum_verified = true;
    // Derive the payload-only checksum from the complete sum — the §4.2
    // reuse: the store gets its integrity word without touching payload
    // bytes on the CPU.
    pb->payload_csum = net::payload_csum_from_complete(
        full_sum, bytes.subspan(pb->l4_off, l4_hdr_len));
  }

  rx_frames_++;
  queue.rx_frames++;
  obs::inc(queue.m_rx_frames);
  if (queue.sink) {
    queue.sink(pb);
  } else {
    queue.pool->free(pb);
  }
}

}  // namespace papm::nic
