#include "nic/nic.h"

#include <algorithm>
#include <cstring>

#include "net/udp.h"

namespace papm::nic {

using net::kAllHdrLen;
using net::kEthHdrLen;
using net::kIpHdrLen;
using net::kTcpHdrLen;

Nic::Nic(sim::Env& env, Fabric& fabric, u32 ip, net::PktBufPool& pool,
         Options opts)
    : env_(env), fabric_(fabric), ip_(ip), pool_(pool), opts_(opts) {
  mac_.b[0] = 0x02;
  mac_.b[2] = static_cast<u8>(ip >> 24);
  mac_.b[3] = static_cast<u8>(ip >> 16);
  mac_.b[4] = static_cast<u8>(ip >> 8);
  mac_.b[5] = static_cast<u8>(ip);
  fabric_.attach(ip, [this](WireFrame f) { on_frame(std::move(f)); });
}

void Nic::transmit(net::PktBuf* pb) {
  // Driver work: descriptor + doorbell (CPU).
  env_.clock().advance(env_.cost.scaled(env_.cost.nic_tx_ns));

  WireFrame frame;
  const u8* base = pool_.data(*pb);
  frame.bytes.assign(base, base + pb->len);  // DMA read; not CPU time
  for (int i = 0; i < pb->nr_frags; i++) {
    // Scatter-gather DMA: frag bytes join the frame without CPU copies.
    const auto& fr = pb->frags[i];
    const u8* f = pool_.arena().data(fr.data_h, fr.off + fr.len) + fr.off;
    frame.bytes.insert(frame.bytes.end(), f, f + fr.len);
  }

  if (opts_.csum_offload_tx) {
    // Checksum engine on the TX path: covers the L4 header + payload with
    // the IPv4 pseudo-header. Free of CPU cost.
    env_.clock().advance(env_.cost.nic_csum_offload_ns);
    const std::size_t l4_len = frame.bytes.size() - pb->l4_off;
    const u32 pseudo =
        net::l4_pseudo_sum(pb->ip.src, pb->ip.dst, pb->l4_proto, l4_len);
    if (pb->l4_proto == net::kIpProtoTcp && pb->tcp.checksum == 0) {
      const u32 sum = pseudo + inet_sum(std::span<const u8>(
                                   frame.bytes.data() + pb->l4_off, l4_len));
      const u16 csum = static_cast<u16>(~inet_fold(sum));
      frame.bytes[pb->l4_off + 16] = static_cast<u8>(csum >> 8);
      frame.bytes[pb->l4_off + 17] = static_cast<u8>(csum & 0xff);
    } else if (pb->l4_proto == net::kIpProtoUdp &&
               frame.bytes[pb->l4_off + 6] == 0 &&
               frame.bytes[pb->l4_off + 7] == 0) {
      const u32 sum = pseudo + inet_sum(std::span<const u8>(
                                   frame.bytes.data() + pb->l4_off, l4_len));
      u16 csum = static_cast<u16>(~inet_fold(sum));
      if (csum == 0) csum = 0xffff;  // UDP: 0 means "no checksum"
      frame.bytes[pb->l4_off + 6] = static_cast<u8>(csum >> 8);
      frame.bytes[pb->l4_off + 7] = static_cast<u8>(csum & 0xff);
    }
  }

  // Link serialization: frames queue at line rate.
  const SimTime ready = env_.now();
  const SimTime start = std::max(ready, link_free_at_);
  const SimTime depart = start + env_.cost.wire_cost(frame.bytes.size());
  link_free_at_ = depart;

  if (opts_.hw_timestamps) frame.tx_hw_tstamp = depart;
  tx_frames_++;
  const u32 dst_ip = pb->ip.dst;
  pool_.free(pb);  // clones in the rtx queue keep the data alive
  fabric_.inject(dst_ip, std::move(frame), depart);
}

void Nic::on_frame(WireFrame frame) {
  // DMA into a pre-posted RX buffer.
  net::PktBuf* pb = pool_.alloc(static_cast<u32>(frame.bytes.size()));
  if (pb == nullptr) {
    rx_drops_++;
    return;
  }
  std::memcpy(pool_.writable(*pb, static_cast<u32>(frame.bytes.size())).data(),
              frame.bytes.data(), frame.bytes.size());
  pool_.arena().mark_dirty(pb->data_h, frame.bytes.size());
  pb->len = static_cast<u32>(frame.bytes.size());
  if (opts_.hw_timestamps) pb->hw_tstamp = env_.now();

  // Parse L2-L4 (cost folded into the stack RX lump charges).
  const std::span<const u8> bytes(frame.bytes);
  const auto eth = net::decode_eth(bytes);
  if (!eth || eth->ethertype != net::kEtherTypeIpv4) {
    rx_drops_++;
    pool_.free(pb);
    return;
  }
  const auto ip = net::decode_ip(bytes.subspan(kEthHdrLen));
  if (!ip || (ip->protocol != net::kIpProtoTcp &&
              ip->protocol != net::kIpProtoUdp)) {
    rx_drops_++;
    pool_.free(pb);
    return;
  }
  pb->l2_off = 0;
  pb->l3_off = kEthHdrLen;
  pb->l4_off = kEthHdrLen + kIpHdrLen;
  pb->l4_proto = ip->protocol;
  pb->ip = *ip;

  std::size_t l4_hdr_len;
  if (ip->protocol == net::kIpProtoTcp) {
    const auto tcp = net::decode_tcp(bytes.subspan(kEthHdrLen + kIpHdrLen));
    if (!tcp) {
      rx_drops_++;
      pool_.free(pb);
      return;
    }
    pb->payload_off = kAllHdrLen;
    pb->tcp = *tcp;
    l4_hdr_len = kTcpHdrLen;
  } else {
    const auto udp = net::decode_udp(bytes.subspan(kEthHdrLen + kIpHdrLen));
    if (!udp) {
      rx_drops_++;
      pool_.free(pb);
      return;
    }
    pb->payload_off = static_cast<u16>(net::kUdpAllHdrLen);
    pb->tcp = net::TcpHeader{};  // L4 view: ports + checksum
    pb->tcp.src_port = udp->src_port;
    pb->tcp.dst_port = udp->dst_port;
    pb->tcp.checksum = udp->checksum;
    l4_hdr_len = net::kUdpHdrLen;
  }

  const bool udp_csum_absent =
      ip->protocol == net::kIpProtoUdp && pb->tcp.checksum == 0;
  if (opts_.csum_offload_rx && !udp_csum_absent) {
    // Hardware verification + checksum-complete. No CPU cost.
    const std::span<const u8> l4_seg = bytes.subspan(pb->l4_off);
    const u32 full_sum = inet_sum(l4_seg);
    const u32 pseudo =
        net::l4_pseudo_sum(ip->src, ip->dst, ip->protocol, l4_seg.size());
    if (inet_fold(full_sum + pseudo) != 0xffff) {
      rx_csum_errors_++;
      pool_.free(pb);
      return;
    }
    pb->wire_csum = pb->tcp.checksum;
    pb->csum_verified = true;
    // Derive the payload-only checksum from the complete sum — the §4.2
    // reuse: the store gets its integrity word without touching payload
    // bytes on the CPU.
    pb->payload_csum = net::payload_csum_from_complete(
        full_sum, bytes.subspan(pb->l4_off, l4_hdr_len));
  }

  rx_frames_++;
  if (sink_) {
    sink_(pb);
  } else {
    pool_.free(pb);
  }
}

}  // namespace papm::nic
