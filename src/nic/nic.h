// Simulated NIC (models the testbed's Intel XXV710 25 GbE adapters).
//
// Offload engines the paper proposes to harvest for storage (§5.2):
//   * TX checksum offload: fills the TCP checksum while serializing;
//   * RX verification + "checksum complete": the full-segment sum is
//     delivered with the packet and the stack derives the payload-only
//     checksum for free (pktstore stores it as the integrity word);
//   * hardware timestamps on both directions (PktBuf::hw_tstamp).
//
// Link serialization at wire_ns_per_byte models the 25 Gbit/s line rate;
// frames queue behind each other on the link (link_free_at_).
#pragma once

#include <functional>

#include "net/pktbuf.h"
#include "net/tcp.h"
#include "nic/fabric.h"

namespace papm::nic {

struct NicOptions {
  bool csum_offload_tx = true;
  bool csum_offload_rx = true;
  bool hw_timestamps = true;
};

class Nic final : public net::NetIf {
 public:
  using Options = NicOptions;

  // `pool` provides RX buffers (pre-posted descriptors) and owns TX
  // packets handed to transmit().
  Nic(sim::Env& env, Fabric& fabric, u32 ip, net::PktBufPool& pool,
      Options opts = Options());

  // Delivery target for received, parsed packets (usually TcpStack::rx).
  void set_sink(std::function<void(net::PktBuf*)> sink) { sink_ = std::move(sink); }

  // net::NetIf
  void transmit(net::PktBuf* pb) override;
  [[nodiscard]] net::MacAddr mac() const noexcept override { return mac_; }

  [[nodiscard]] u32 ip() const noexcept { return ip_; }

  // Stats.
  [[nodiscard]] u64 tx_frames() const noexcept { return tx_frames_; }
  [[nodiscard]] u64 rx_frames() const noexcept { return rx_frames_; }
  [[nodiscard]] u64 rx_drops() const noexcept { return rx_drops_; }
  [[nodiscard]] u64 rx_csum_errors() const noexcept { return rx_csum_errors_; }

 private:
  void on_frame(WireFrame frame);

  sim::Env& env_;
  Fabric& fabric_;
  u32 ip_;
  net::MacAddr mac_;
  net::PktBufPool& pool_;
  Options opts_;
  std::function<void(net::PktBuf*)> sink_;
  SimTime link_free_at_ = 0;

  u64 tx_frames_ = 0;
  u64 rx_frames_ = 0;
  u64 rx_drops_ = 0;
  u64 rx_csum_errors_ = 0;
};

}  // namespace papm::nic
