// Simulated NIC (models the testbed's Intel XXV710 25 GbE adapters).
//
// Offload engines the paper proposes to harvest for storage (§5.2):
//   * TX checksum offload: fills the TCP checksum while serializing;
//   * RX verification + "checksum complete": the full-segment sum is
//     delivered with the packet and the stack derives the payload-only
//     checksum for free (pktstore stores it as the integrity word);
//   * hardware timestamps on both directions (PktBuf::hw_tstamp).
//
// Multi-queue / RSS (scale-out datapath): the NIC owns N RX/TX
// descriptor-ring pairs. Received frames are steered by a Toeplitz hash
// over the IPv4 4-tuple — all segments of a flow land on the same queue,
// so per-queue state (buffer pool, TCP connection state, store shard)
// never crosses cores. Each queue pre-posts RX buffers from its *own*
// PktBufPool and delivers to its own sink (one busy-polling core each).
//
// RSS *indirection table* (rebalancing): steering is a two-step lookup,
// hash -> 128-entry table -> queue, exactly like real RSS engines
// (ETHTOOL_SRXFHINDIR). The table starts at the even spread (entry i ->
// i % queues — identical to hash % queues for the power-of-two queue
// counts the benches use) and individual entries can be remapped at
// runtime, moving a *flow group* (all flows hashing into that entry) to
// another queue without touching the other 127 groups. Per-entry frame
// counters feed the shard-load monitor (app::Rebalancer) that decides
// when and what to move; the TCP-state handoff that must accompany a
// remap lives in net::TcpStack::extract/adopt.
//
// Link serialization at wire_ns_per_byte models the 25 Gbit/s line rate;
// frames from all TX queues share the single wire (link_free_at_).
#pragma once

#include <functional>
#include <vector>

#include "net/pktbuf.h"
#include "net/tcp.h"
#include "nic/fabric.h"
#include "obs/metrics.h"

namespace papm::nic {

// Toeplitz RSS hash over the IPv4 4-tuple (the Microsoft RSS algorithm
// with the standard verification key). Exposed for steering tests.
[[nodiscard]] u32 rss_toeplitz(u32 src_ip, u32 dst_ip, u16 src_port,
                               u16 dst_port) noexcept;

struct NicOptions {
  bool csum_offload_tx = true;
  bool csum_offload_rx = true;
  bool hw_timestamps = true;
  // Payload slicer (NFSlicer-style, §5.2 "harvest the offload engines"):
  // for TCP frames landing on a PM-backed queue, the NIC DMAs the payload
  // into a separately allocated arena slot — its final, durable resting
  // place — and delivers a header-only descriptor (PktBuf::sliced()).
  // Requires csum_offload_rx (the slicer narrows from the same
  // checksum-complete word). DRAM-pooled queues (clients) fall back to
  // the contiguous path automatically.
  bool payload_slicing = false;
};

class Nic final : public net::NetIf {
 public:
  using Options = NicOptions;

  // RSS indirection-table entries. 128 matches the common hardware
  // default (i40e/ixgbe); a flow group is the set of flows whose hash
  // lands in one entry.
  static constexpr u32 kIndirEntries = 128;

  // The indirection slot a 4-tuple hash selects.
  [[nodiscard]] static constexpr u32 rss_bucket_of(u32 hash) noexcept {
    return hash % kIndirEntries;
  }

  // `pool` provides queue 0's RX buffers (pre-posted descriptors) and
  // owns TX packets handed to transmit(). Additional queues are grown
  // with add_queue() before traffic flows.
  Nic(sim::Env& env, Fabric& fabric, u32 ip, net::PktBufPool& pool,
      Options opts = Options());

  // Adds one RX/TX descriptor-ring pair whose RX buffers come from
  // `pool`. Returns the new queue's index.
  u32 add_queue(net::PktBufPool& pool);

  // Delivery target for received, parsed packets (usually TcpStack::rx).
  // set_sink() wires queue 0 (and is the single-queue interface);
  // set_queue_sink() wires one specific queue.
  void set_sink(std::function<void(net::PktBuf*)> sink) {
    set_queue_sink(0, std::move(sink));
  }
  void set_queue_sink(u32 queue, std::function<void(net::PktBuf*)> sink);

  // net::NetIf
  void transmit(net::PktBuf* pb) override;
  [[nodiscard]] net::MacAddr mac() const noexcept override { return mac_; }

  // Whole-host fault injection (HostCut): a downed link transmits
  // nothing and drops every received frame, modelling a powered-off
  // host from the fabric's point of view. Stale timers on the dead
  // host may still call transmit(); their frames are silently eaten.
  void set_link_up(bool up) noexcept { link_up_ = up; }
  [[nodiscard]] bool link_up() const noexcept { return link_up_; }

  [[nodiscard]] u32 ip() const noexcept { return ip_; }
  [[nodiscard]] u32 num_queues() const noexcept {
    return static_cast<u32>(queues_.size());
  }

  // RSS steering decision for a 4-tuple as received by this NIC: the
  // Toeplitz hash indexes the indirection table.
  [[nodiscard]] u32 rx_queue_for(u32 src_ip, u32 dst_ip, u16 src_port,
                                 u16 dst_port) const noexcept {
    return indir_[rss_bucket_of(rss_toeplitz(src_ip, dst_ip, src_port,
                                             dst_port))];
  }

  // --- Indirection table (runtime RSS rebalancing) ----------------------
  // Remaps one flow group to `queue`. Takes effect for the next received
  // frame; the caller owns migrating the flows' TCP + store state (see
  // app::Rebalancer). Out-of-range queues are clamped.
  void set_indirection(u32 bucket, u32 queue);
  [[nodiscard]] u32 indirection(u32 bucket) const noexcept {
    return indir_[bucket % kIndirEntries];
  }
  [[nodiscard]] u64 indir_remaps() const noexcept { return indir_remaps_; }

  // Per-flow-group RX frame counts (TCP only — the steered traffic):
  // the load signal the rebalancer differentiates between rounds.
  [[nodiscard]] u64 bucket_rx_frames(u32 bucket) const noexcept {
    return bucket_rx_[bucket % kIndirEntries];
  }

  // Mirrors device-level drop/error/remap counters into a (host)
  // registry: nic.rx_drops / nic.rx_csum_errors / nic.indir_remaps.
  // Null = member counters only.
  void set_metrics(obs::MetricRegistry* r) {
    m_rx_drops_ = r != nullptr ? &r->counter("nic.rx_drops") : nullptr;
    m_rx_csum_err_ = r != nullptr ? &r->counter("nic.rx_csum_errors") : nullptr;
    m_indir_remaps_ = r != nullptr ? &r->counter("nic.indir_remaps") : nullptr;
  }
  // Mirrors one queue's frame counters into that queue's shard registry
  // as nic.rx_frames / nic.tx_frames (per-shard instances merge to the
  // device totals at report time).
  void set_queue_metrics(u32 queue, obs::MetricRegistry* r) {
    Queue& q = queues_.at(queue);
    q.m_rx_frames = r != nullptr ? &r->counter("nic.rx_frames") : nullptr;
    q.m_tx_frames = r != nullptr ? &r->counter("nic.tx_frames") : nullptr;
    q.m_sliced_frames =
        r != nullptr ? &r->counter("nic.sliced_frames") : nullptr;
  }

  // Stats.
  [[nodiscard]] u64 tx_frames() const noexcept { return tx_frames_; }
  [[nodiscard]] u64 rx_frames() const noexcept { return rx_frames_; }
  [[nodiscard]] u64 rx_drops() const noexcept { return rx_drops_; }
  [[nodiscard]] u64 rx_csum_errors() const noexcept { return rx_csum_errors_; }
  [[nodiscard]] u64 queue_rx_frames(u32 q) const noexcept {
    return q < queues_.size() ? queues_[q].rx_frames : 0;
  }
  [[nodiscard]] u64 queue_tx_frames(u32 q) const noexcept {
    return q < queues_.size() ? queues_[q].tx_frames : 0;
  }
  [[nodiscard]] u64 queue_sliced_frames(u32 q) const noexcept {
    return q < queues_.size() ? queues_[q].sliced_frames : 0;
  }

 private:
  struct Queue {
    net::PktBufPool* pool;
    std::function<void(net::PktBuf*)> sink;
    u64 rx_frames = 0;
    u64 tx_frames = 0;
    u64 sliced_frames = 0;  // RX frames delivered header-only
    obs::Counter* m_rx_frames = nullptr;
    obs::Counter* m_tx_frames = nullptr;
    obs::Counter* m_sliced_frames = nullptr;
  };

  void on_frame(WireFrame frame);
  // Restores the even default spread (entry i -> i % queues); called when
  // the queue set grows so explicit remaps only exist once traffic flows.
  void reset_indirection() noexcept;

  sim::Env& env_;
  Fabric& fabric_;
  u32 ip_;
  net::MacAddr mac_;
  Options opts_;
  std::vector<Queue> queues_;
  u16 indir_[kIndirEntries] = {};
  u64 bucket_rx_[kIndirEntries] = {};
  u64 indir_remaps_ = 0;
  SimTime link_free_at_ = 0;
  bool link_up_ = true;

  u64 tx_frames_ = 0;
  u64 rx_frames_ = 0;
  u64 rx_drops_ = 0;
  u64 rx_csum_errors_ = 0;
  obs::Counter* m_rx_drops_ = nullptr;
  obs::Counter* m_rx_csum_err_ = nullptr;
  obs::Counter* m_indir_remaps_ = nullptr;
};

}  // namespace papm::nic
