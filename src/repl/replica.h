// A backup host: its own PM device, packet pool, NIC, UDP stack and Homa
// endpoint, applying the primary's replication stream into a PktStore of
// its own — zero-copy, exactly as the primary ingests client segments
// (the delivered Homa packets' payload ranges go straight to put_pkts).
//
// Ordering: kData messages carry per-stream sequence numbers and are
// applied in contiguous order; out-of-order deliveries buffer until the
// gap fills. Acks are cumulative (highest contiguously *durable* seq),
// so a duplicated or replayed forward is ignored and simply re-acked —
// idempotent replay.
//
// Durability: applies ride the same group-commit epochs the server's
// datapath uses (FlushBatcher); the applied-seq high-water mark is
// published via the batcher's deferred-publication path, and the ack is
// released by on_committed — an acked seq is a durable seq, always.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/pktstore.h"
#include "net/homa.h"
#include "net/udp.h"
#include "nic/nic.h"
#include "obs/trace.h"
#include "pm/flush_batch.h"
#include "repl/repl.h"

namespace papm::repl {

struct ReplicaConfig {
  u32 ip = 0;
  u32 primary_ip = 0;
  u32 index = 0;  // replica ordinal; trace spans land on track
                  // obs::kReplicaTrackBase + index
  u64 pm_size = 64u << 20;
  ReplOptions opts;
  core::PktStoreOptions store_opts;
  // Group-commit epochs on the apply path (AND'ed with the compile-time
  // switch; pass-through = every apply persists synchronously).
  bool group_commit = true;
  pm::GroupCommitPolicy gc_policy{};
  nic::Nic::Options nic{};
};

class ReplicaNode {
 public:
  // Fresh replica: formats its own PM device.
  ReplicaNode(sim::Env& env, nic::Fabric& fabric, const ReplicaConfig& cfg);
  // Rejoin: adopts a device snapshot (PmDevice::clone_persisted() of the
  // dead host — what its DIMMs held) and recovers the store + applied
  // seq from it. Call resync via ReplGroup afterwards to converge.
  ReplicaNode(sim::Env& env, nic::Fabric& fabric, const ReplicaConfig& cfg,
              std::unique_ptr<pm::PmDevice> snapshot);

  ReplicaNode(const ReplicaNode&) = delete;
  ReplicaNode& operator=(const ReplicaNode&) = delete;

  // Fires when the heartbeat monitor declares the primary suspect (the
  // failover trigger); armed by monitor_primary().
  std::function<void()> on_primary_suspect;
  void monitor_primary();

  // Whole-host cut bookkeeping for harnesses: take the NIC off the
  // fabric and neutralize endpoint state so stale timers no-op.
  void kill();
  [[nodiscard]] bool alive() const noexcept { return alive_; }

  [[nodiscard]] u64 applied_seq() const noexcept { return applied_seq_; }
  [[nodiscard]] u64 durable_seq() const noexcept { return durable_seq_; }
  [[nodiscard]] u64 applies() const noexcept { return applies_; }
  [[nodiscard]] u64 resync_items() const noexcept { return resync_items_; }
  [[nodiscard]] u32 ip() const noexcept { return cfg_.ip; }

  [[nodiscard]] core::PktStore& store() { return *store_; }
  [[nodiscard]] pm::PmDevice& device() { return *dev_; }
  [[nodiscard]] net::HomaEndpoint& homa() { return *homa_; }
  [[nodiscard]] nic::Nic& nic() { return *nic_; }
  [[nodiscard]] obs::MetricRegistry& metrics() noexcept { return metrics_; }
  // Apply-path spans (Stage::repl_apply, one per traced mutation) on the
  // replica's own track; the harness merges this into the primary's log
  // so both hosts export as one stitched Perfetto trace.
  [[nodiscard]] obs::TraceLog& trace() noexcept { return trace_; }
  [[nodiscard]] const obs::TraceLog& trace() const noexcept { return trace_; }

  // Promotion: the node keeps serving its store; the group records the
  // choice. Nothing structural changes — reads go to store().
  void promote() noexcept { promoted_ = true; }
  [[nodiscard]] bool promoted() const noexcept { return promoted_; }

  // Snapshot re-sync source side: stream every key/value to `dst_ip`
  // (kSnapBegin, kSnapItem*, kSnapEnd) with `cut_seq` as the cut. Cold
  // path: items are copied bytes over ordinary Homa sends.
  void send_snapshot(u32 dst_ip, u64 cut_seq);

 private:
  void wire_up(nic::Fabric& fabric);
  void on_msg(net::HomaDelivery d);
  void apply_data(net::HomaDelivery& d);
  void apply_one(const net::HomaDelivery& d, OpKind op, std::string_view key,
                 std::size_t val_at, u32 val_len, u64 trace_id);
  void publish_applied(u64 seq);
  void send_ack();
  void arm_epoch_drain();
  void free_delivery(net::HomaDelivery& d);
  void snap_item(const net::HomaDelivery& d);
  void snap_end(u64 cut_seq);

  sim::Env& env_;
  ReplicaConfig cfg_;
  std::unique_ptr<pm::PmDevice> dev_;
  std::optional<pm::PmPool> pm_pool_;
  std::optional<net::PmArena> arena_;
  std::optional<net::PktBufPool> pool_;
  std::optional<nic::Nic> nic_;
  std::optional<net::UdpStack> udp_;
  std::optional<net::HomaEndpoint> homa_;
  std::optional<core::PktStore> store_;
  std::optional<pm::FlushBatcher> batcher_;
  u64 applied_root_ = 0;  // device offset of the durable applied-seq word

  u64 applied_seq_ = 0;  // highest contiguously applied seq (volatile view)
  u64 durable_seq_ = 0;  // highest seq whose apply epoch committed
  u64 acked_seq_ = 0;    // last cumulative ack sent
  std::map<u64, net::HomaDelivery> pending_;  // out-of-order buffer
  SimTime last_hb_ = 0;
  bool monitor_armed_ = false;
  bool alive_ = true;
  bool promoted_ = false;
  bool suspect_fired_ = false;

  // Re-sync sink state.
  bool in_resync_ = false;
  std::vector<std::string> resync_keys_;

  u64 applies_ = 0;
  u64 resync_items_ = 0;
  obs::MetricRegistry metrics_;
  obs::TraceLog trace_;
  obs::Counter* m_applies_ = nullptr;
  obs::Counter* m_acks_tx_ = nullptr;
  obs::Counter* m_resync_items_ = nullptr;
};

}  // namespace papm::repl
