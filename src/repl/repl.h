// Multi-host replication layer (primary/backup with quorum acks).
//
// The paper keeps the store durable against power loss on *one* host; a
// whole-host failure (fire, fried PSU, kernel panic during the outage)
// still loses the data. This layer extends the story across the fabric:
// the primary clones the received packet chain — refcounts, not a
// re-serialization — and forwards it to R replicas over Homa, acking the
// client only once a configurable quorum of hosts holds the write
// durably. The forward is the PR-8 slicing idiom applied to replication:
// the value bytes leave as refcounted frags of the very packets the
// client's TCP segments arrived in; only the small replication header is
// ever copied.
//
// Compile-out: -DPAPM_REPL=OFF (the `norepl` preset) folds the
// server-side hooks away; with no Replicator attached the datapath is
// bit-identical either way (the sim charges no cost for untaken
// branches), so the OFF build is a buildability proof, not a perf fork.
#pragma once

#include <cstring>
#include <span>
#include <vector>

#include "common/types.h"
#include "net/homa.h"

namespace papm::repl {

#ifdef PAPM_REPL_DISABLED
inline constexpr bool kReplCompiled = false;
#else
inline constexpr bool kReplCompiled = true;
#endif

// Replication messages ride as Homa message payloads; the first byte
// tags the kind. All integers little-endian, fixed offsets (no packing
// games — the header is copied into the wire segment anyway).
enum class MsgKind : u8 {
  data = 1,       // primary -> replica: one mutation (put or erase)
  ack = 2,        // replica -> primary: cumulative durable seq
  heartbeat = 3,  // primary -> replica: liveness + high-water seq
  snap_begin = 4, // re-sync stream: snapshot cut seq
  snap_item = 5,  // re-sync stream: one key/value (copied; cold path)
  snap_end = 6,   // re-sync stream: end marker, repeats the cut seq
};

enum class OpKind : u8 { put = 1, erase = 2 };

// kData header:
//   [kind u8][op u8][key_len u16][val_len u32][seq u64][trace u64]
// then key bytes, then (for put) the value bytes — gathered zero-copy
// from the primary's packet buffers. `trace` is the primary's 64-bit
// trace id for the client op that caused this mutation (0 = untraced);
// the replica stamps its apply span with it so primary and replica
// export into one stitched Perfetto trace (docs/OBSERVABILITY.md).
inline constexpr std::size_t kDataHdrLen = 24;
// kAck / kHeartbeat / kSnapBegin / kSnapEnd: [kind u8][pad 7][seq u64].
inline constexpr std::size_t kCtlLen = 16;
// kSnapItem header: [kind u8][pad u8][key_len u16][val_len u32] + key +
// value (all copied — re-sync is a cold path).
inline constexpr std::size_t kSnapItemHdrLen = 8;

inline void put_u16(u8* p, u16 v) { std::memcpy(p, &v, 2); }
inline void put_u32(u8* p, u32 v) { std::memcpy(p, &v, 4); }
inline void put_u64(u8* p, u64 v) { std::memcpy(p, &v, 8); }
inline u16 get_u16(const u8* p) { u16 v; std::memcpy(&v, p, 2); return v; }
inline u32 get_u32(const u8* p) { u32 v; std::memcpy(&v, p, 4); return v; }
inline u64 get_u64(const u8* p) { u64 v; std::memcpy(&v, p, 8); return v; }

inline std::vector<u8> encode_data_hdr(OpKind op, std::string_view key,
                                       u32 val_len, u64 seq, u64 trace = 0) {
  std::vector<u8> h(kDataHdrLen + key.size());
  h[0] = static_cast<u8>(MsgKind::data);
  h[1] = static_cast<u8>(op);
  put_u16(h.data() + 2, static_cast<u16>(key.size()));
  put_u32(h.data() + 4, val_len);
  put_u64(h.data() + 8, seq);
  put_u64(h.data() + 16, trace);
  std::memcpy(h.data() + kDataHdrLen, key.data(), key.size());
  return h;
}

inline std::vector<u8> encode_ctl(MsgKind kind, u64 seq) {
  std::vector<u8> h(kCtlLen, 0);
  h[0] = static_cast<u8>(kind);
  put_u64(h.data() + 8, seq);
  return h;
}

// What an unreachable quorum does to client acks: stall them until the
// quorum heals (strict durability) or release them after a deadline as
// *degraded* local-only acks, surfaced in the repl.degraded_acks counter.
enum class DegradePolicy : u8 { stall = 0, local_ack = 1 };

struct ReplOptions {
  u16 port = 9100;   // Homa port for replication traffic (both roles)
  u32 quorum = 2;    // hosts that must hold the write durably, primary
                     // included (quorum=2 with R=2 ⇒ local + 1 remote)
  DegradePolicy degrade = DegradePolicy::stall;
  SimTime degrade_after_ns = 5 * kNsPerMs;  // local_ack release deadline
  // Repl-layer retransmit to a peer whose Homa message was given up on:
  // first retry after retry_backoff_ns, doubling per attempt.
  SimTime retry_backoff_ns = 2 * kNsPerMs;
  int max_peer_retries = 6;  // then the peer is declared dead
  // Liveness: primary heartbeats every interval; a replica that has seen
  // none for timeout_ns declares the primary suspect (failover trigger).
  SimTime hb_interval_ns = 100 * kNsPerUs;
  SimTime hb_timeout_ns = 500 * kNsPerUs;
  // Transport knobs for the replication endpoints: exponential sender
  // backoff so a dead peer's retransmits thin out.
  net::HomaOptions homa{.sender_timeout_ns = 200 * kNsPerUs,
                        .backoff_mult = 2.0,
                        .max_retries = 5};
};

}  // namespace papm::repl
