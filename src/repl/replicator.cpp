#include "repl/replicator.h"

#include <algorithm>

#include "core/pktstore.h"

namespace papm::repl {

std::vector<u8> delivery_head(const net::HomaDelivery& d, std::size_t n) {
  std::vector<u8> out;
  out.reserve(n);
  for (std::size_t i = 0; i < d.pkts.size() && out.size() < n; i++) {
    net::PktBuf* pb = d.pkts[i];
    const u8* base = pb->owner->data(*pb);
    const std::size_t take = std::min<std::size_t>(d.lens[i], n - out.size());
    out.insert(out.end(), base + d.offs[i], base + d.offs[i] + take);
  }
  return out;
}

void release_delivery(net::HomaDelivery& d) {
  for (net::PktBuf* pb : d.pkts) net::PktBufPool::release(pb);
  d.pkts.clear();
  d.offs.clear();
  d.lens.clear();
}

std::vector<Replicator::GatherSeg> gather_from_pkts(
    std::span<net::PktBuf* const> pkts, std::span<const u32> offs,
    std::span<const u32> lens) {
  std::vector<Replicator::GatherSeg> segs;
  segs.reserve(pkts.size());
  for (std::size_t i = 0; i < pkts.size(); i++) {
    net::PktBuf* pb = pkts[i];
    if (pb->sliced() && offs[i] >= pb->payload_off) {
      // Sliced frame: the payload's physical home is the slice block;
      // translate the linear-view offset into it.
      segs.push_back({pb->slice_h, pb->slice_off + (offs[i] - pb->payload_off),
                      lens[i], pb->slice_cap});
    } else {
      segs.push_back({pb->data_h, offs[i], lens[i], pb->cap});
    }
  }
  return segs;
}

void send_snapshot(net::HomaEndpoint& homa, core::PktStore& store, u32 dst_ip,
                   u16 port, u64 cut_seq) {
  homa.send_msg(dst_ip, port, encode_ctl(MsgKind::snap_begin, cut_seq));
  std::vector<std::string> keys;
  store.scan("", "",
             [&](std::string_view k, const core::PktStore::ValueMeta&) {
               keys.emplace_back(k);
               return true;
             });
  for (const auto& k : keys) {
    auto v = store.get(k);
    if (!v.ok()) continue;
    std::vector<u8> msg(kSnapItemHdrLen + k.size() + v.value().size());
    msg[0] = static_cast<u8>(MsgKind::snap_item);
    put_u16(msg.data() + 2, static_cast<u16>(k.size()));
    put_u32(msg.data() + 4, static_cast<u32>(v.value().size()));
    std::memcpy(msg.data() + kSnapItemHdrLen, k.data(), k.size());
    std::memcpy(msg.data() + kSnapItemHdrLen + k.size(), v.value().data(),
                v.value().size());
    homa.send_msg(dst_ip, port, msg);
  }
  homa.send_msg(dst_ip, port, encode_ctl(MsgKind::snap_end, cut_seq));
}

Replicator::Replicator(sim::Env& env, net::UdpStack& udp, ReplOptions opts,
                       std::vector<u32> peer_ips)
    : env_(env), opts_(opts), homa_(udp, opts.port, opts.homa) {
  peers_.reserve(peer_ips.size());
  for (u32 ip : peer_ips) {
    Peer p;
    p.ip = ip;
    peers_.push_back(std::move(p));
  }
  homa_.on_message = [this](net::HomaDelivery d) { on_msg(std::move(d)); };
  homa_.on_give_up = [this](u64 msg_id) { on_give_up(msg_id); };
}

u64 Replicator::submit_put(std::string_view key,
                           std::span<const GatherSeg> segs, u32 val_len,
                           net::PktBufPool& pool, Done done, u64 trace) {
  Rec r;
  r.seq = next_seq_++;
  r.hdr = encode_data_hdr(OpKind::put, key, val_len, r.seq, trace);
  r.segs.assign(segs.begin(), segs.end());
  r.pool = &pool;
  r.done = std::move(done);
  // The record's own reference per gather range: retransmits (Homa's and
  // ours) replay from the original blocks until every live peer acked.
  for (const GatherSeg& g : r.segs) pool.restore_ref(g.data_h);
  return submit(std::move(r));
}

u64 Replicator::submit_erase(std::string_view key, Done done, u64 trace) {
  Rec r;
  r.seq = next_seq_++;
  r.hdr = encode_data_hdr(OpKind::erase, key, 0, r.seq, trace);
  r.done = std::move(done);
  return submit(std::move(r));
}

u64 Replicator::submit(Rec rec) {
  const u64 seq = rec.seq;
  auto [it, inserted] = records_.emplace(seq, std::move(rec));
  Rec& r = it->second;
  (void)inserted;
  for (Peer& p : peers_) {
    if (p.alive) forward_to(p, r);
  }
  if (opts_.degrade == DegradePolicy::local_ack && opts_.quorum > 1) {
    arm_degrade(seq);
  }
  check_quorum();
  retire();
  return seq;
}

void Replicator::forward_to(Peer& p, const Rec& r) {
  if (stopped_) return;
  u64 msg_id;
  if (r.segs.empty()) {
    msg_id = homa_.send_msg(p.ip, opts_.port, r.hdr);
  } else {
    msg_id = homa_.send_msg_gather(p.ip, opts_.port, r.hdr, r.segs, *r.pool);
  }
  p.inflight[msg_id] = r.seq;
  forwards_++;
  obs::inc(m_forwards_);
}

void Replicator::on_msg(net::HomaDelivery d) {
  const auto head = delivery_head(d, kCtlLen);
  release_delivery(d);
  if (stopped_ || head.size() < kCtlLen) return;
  if (static_cast<MsgKind>(head[0]) != MsgKind::ack) return;
  const u64 seq = get_u64(head.data() + 8);
  for (Peer& p : peers_) {
    if (p.ip != d.src_ip) continue;
    acks_rx_++;
    obs::inc(m_acks_rx_);
    p.acked = std::max(p.acked, seq);
    p.give_ups = 0;
    std::erase_if(p.inflight,
                  [&](const auto& kv) { return kv.second <= p.acked; });
    check_quorum();
    retire();
    return;
  }
}

void Replicator::on_give_up(u64 msg_id) {
  if (stopped_) return;
  for (Peer& p : peers_) {
    auto it = p.inflight.find(msg_id);
    if (it == p.inflight.end()) continue;  // heartbeats are not tracked
    p.inflight.erase(it);
    if (!p.alive) return;
    p.give_ups++;
    if (p.give_ups > opts_.max_peer_retries) {
      p.alive = false;  // revive_peer() after a resync brings it back
      retire();
      return;
    }
    arm_retry(p);
    return;
  }
}

void Replicator::arm_retry(Peer& p) {
  if (p.retry_armed) return;
  p.retry_armed = true;
  const int shift = std::min(p.give_ups - 1, 20);
  const SimTime delay = opts_.retry_backoff_ns << shift;
  const std::size_t idx = static_cast<std::size_t>(&p - peers_.data());
  env_.engine.schedule_in(delay, [this, idx] {
    Peer& peer = peers_[idx];
    peer.retry_armed = false;
    if (stopped_ || !peer.alive) return;
    for (auto& [seq, r] : records_) {
      if (seq <= peer.acked) continue;
      forward_to(peer, r);
      retransmits_++;
      obs::inc(m_retransmits_);
    }
  });
}

void Replicator::arm_degrade(u64 seq) {
  env_.engine.schedule_in(opts_.degrade_after_ns, [this, seq] {
    if (stopped_) return;
    auto it = records_.find(seq);
    if (it == records_.end() || it->second.done_fired) return;
    Rec& r = it->second;
    r.done_fired = true;
    r.degraded = true;
    degraded_acks_++;
    obs::inc(m_degraded_);
    if (r.done) r.done(true);
    retire();  // the record may be fully acked-but-held; re-check
  });
}

void Replicator::check_quorum() {
  const u32 needed = opts_.quorum > 0 ? opts_.quorum - 1 : 0;
  for (auto& [seq, r] : records_) {
    if (r.done_fired) continue;
    u32 have = 0;
    // Dead peers' acks still count: what they persisted is durable on
    // their DIMMs and survives into their rejoin snapshot.
    for (const Peer& p : peers_) {
      if (p.acked >= seq) have++;
    }
    if (have >= needed) {
      r.done_fired = true;
      if (r.done) r.done(false);
    }
  }
}

void Replicator::retire() {
  u64 min_acked = ~0ULL;
  for (const Peer& p : peers_) {
    if (p.alive) min_acked = std::min(min_acked, p.acked);
  }
  for (auto it = records_.begin(); it != records_.end();) {
    Rec& r = it->second;
    if (r.seq <= min_acked && r.done_fired) {
      if (r.pool != nullptr) {
        for (const GatherSeg& g : r.segs) r.pool->unref_data(g.data_h, g.cap);
      }
      it = records_.erase(it);
    } else {
      ++it;
    }
  }
}

void Replicator::start_heartbeats() {
  if (hb_armed_) return;
  hb_armed_ = true;
  hb_tick();
}

void Replicator::hb_tick() {
  if (stopped_) return;
  for (Peer& p : peers_) {
    if (p.alive) {
      homa_.send_msg(p.ip, opts_.port,
                     encode_ctl(MsgKind::heartbeat, last_seq()));
    }
  }
  env_.engine.schedule_in(opts_.hb_interval_ns, [this] { hb_tick(); });
}

void Replicator::stop() {
  stopped_ = true;
  homa_.abandon();
}

void Replicator::revive_peer(u32 ip, u64 acked_seq) {
  for (Peer& p : peers_) {
    if (p.ip != ip) continue;
    p.alive = true;
    p.give_ups = 0;
    p.inflight.clear();
    p.acked = std::max(p.acked, acked_seq);
    check_quorum();
    retire();
    return;
  }
}

u32 Replicator::alive_peers() const noexcept {
  u32 n = 0;
  for (const Peer& p : peers_) n += p.alive ? 1 : 0;
  return n;
}

u64 Replicator::peer_acked(u32 ip) const noexcept {
  for (const Peer& p : peers_) {
    if (p.ip == ip) return p.acked;
  }
  return 0;
}

void Replicator::set_metrics(obs::MetricRegistry* r) {
  if (r == nullptr) {
    m_forwards_ = m_acks_rx_ = m_retransmits_ = m_degraded_ = nullptr;
    return;
  }
  m_forwards_ = &r->counter("repl.forwards");
  m_acks_rx_ = &r->counter("repl.acks_rx");
  m_retransmits_ = &r->counter("repl.retransmits");
  m_degraded_ = &r->counter("repl.degraded_acks");
}

}  // namespace papm::repl
