// Primary-side replication: forwards each locally-applied mutation to R
// backup hosts over Homa and reports quorum.
//
// The forward is zero-copy (the PR-8 idiom): the value leaves as
// refcounted gather ranges over the very packet buffers the client's TCP
// segments DMA'd into — only the 16-byte replication header plus the key
// is ever copied. The Replicator holds one reference per gather range
// until every live peer has cumulatively acked past the record, so
// repl-layer retransmits replay from the original blocks.
//
// Reliability ladder: Homa retries a message with exponential sender
// backoff; when it gives up, the repl layer schedules its own retransmit
// of everything the peer has not acked (again backing off); after
// max_peer_retries the peer is declared dead. A dead or partitioned
// quorum either stalls client acks (strict) or releases them after
// degrade_after_ns as *degraded* local-only acks — counted, never silent.
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "repl/repl.h"

namespace papm::core {
class PktStore;
}

namespace papm::repl {

class Replicator {
 public:
  using GatherSeg = net::HomaEndpoint::GatherSeg;
  // done(degraded): quorum reached (false) or released by the degrade
  // deadline without quorum (true). Fires exactly once per submission.
  using Done = std::function<void(bool degraded)>;

  Replicator(sim::Env& env, net::UdpStack& udp, ReplOptions opts,
             std::vector<u32> peer_ips);

  // Forwards one PUT. `segs` are refcounted ranges over `pool`'s blocks
  // (see repl::gather_from_pkts); the Replicator takes its own reference
  // per range for the record's lifetime. Returns the record's seq.
  // `trace` is the primary's trace id for the client op (0 = untraced);
  // it travels in the kData header so the replica's apply span lands in
  // the same stitched trace.
  u64 submit_put(std::string_view key, std::span<const GatherSeg> segs,
                 u32 val_len, net::PktBufPool& pool, Done done,
                 u64 trace = 0);
  u64 submit_erase(std::string_view key, Done done, u64 trace = 0);

  // Periodic liveness beacons to the peers (kHeartbeat, high-water seq).
  void start_heartbeats();
  // Whole-host cut: neutralize endpoint + timers (the primary died).
  void stop();

  // Rejoin: the peer is alive again with everything up to `acked_seq`
  // durable (it just resynced); future records forward to it again.
  void revive_peer(u32 ip, u64 acked_seq);

  [[nodiscard]] u64 last_seq() const noexcept { return next_seq_ - 1; }
  [[nodiscard]] u32 alive_peers() const noexcept;
  [[nodiscard]] u64 peer_acked(u32 ip) const noexcept;
  [[nodiscard]] std::size_t inflight_records() const noexcept {
    return records_.size();
  }

  [[nodiscard]] u64 forwards() const noexcept { return forwards_; }
  [[nodiscard]] u64 acks_rx() const noexcept { return acks_rx_; }
  [[nodiscard]] u64 retransmits() const noexcept { return retransmits_; }
  [[nodiscard]] u64 degraded_acks() const noexcept { return degraded_acks_; }

  void set_metrics(obs::MetricRegistry* r);
  [[nodiscard]] net::HomaEndpoint& homa() noexcept { return homa_; }

 private:
  struct Peer {
    u32 ip;
    u64 acked = 0;      // cumulative durable seq the peer reported
    bool alive = true;
    int give_ups = 0;   // consecutive Homa give-ups (reset by any ack)
    bool retry_armed = false;
    std::unordered_map<u64, u64> inflight;  // msg_id -> seq
  };
  struct Rec {
    u64 seq;
    std::vector<u8> hdr;  // repl header + key (copied, it is tiny)
    std::vector<GatherSeg> segs;
    net::PktBufPool* pool = nullptr;  // holds one ref per seg
    Done done;
    bool done_fired = false;
    bool degraded = false;
  };

  u64 submit(Rec rec);
  void forward_to(Peer& p, const Rec& r);
  void on_msg(net::HomaDelivery d);
  void on_give_up(u64 msg_id);
  void arm_retry(Peer& p);
  void arm_degrade(u64 seq);
  void check_quorum();
  void retire();
  void hb_tick();

  sim::Env& env_;
  ReplOptions opts_;
  net::HomaEndpoint homa_;
  std::vector<Peer> peers_;
  std::map<u64, Rec> records_;
  u64 next_seq_ = 1;
  bool stopped_ = false;
  bool hb_armed_ = false;

  u64 forwards_ = 0;
  u64 acks_rx_ = 0;
  u64 retransmits_ = 0;
  u64 degraded_acks_ = 0;
  obs::Counter* m_forwards_ = nullptr;
  obs::Counter* m_acks_rx_ = nullptr;
  obs::Counter* m_retransmits_ = nullptr;
  obs::Counter* m_degraded_ = nullptr;
};

// Gather ranges for the value byte ranges (pkts[i], offs[i], lens[i]) as
// the server's dispatch path holds them — offs absolute within each
// packet's linear buffer view. Resolves sliced packets to their slice
// blocks (the bytes' physical home) so the refs pin the right blocks.
std::vector<Replicator::GatherSeg> gather_from_pkts(
    std::span<net::PktBuf* const> pkts, std::span<const u32> offs,
    std::span<const u32> lens);

// Shared delivery helpers (replica + replicator message parsing).
std::vector<u8> delivery_head(const net::HomaDelivery& d, std::size_t n);
void release_delivery(net::HomaDelivery& d);

// Snapshot re-sync source side (cold path, copied bytes): streams every
// key/value of `store` to dst_ip as kSnapBegin / kSnapItem* / kSnapEnd
// with `cut_seq` as the cut. Used by the primary to re-sync a rejoining
// replica, and by a promoted replica to seed a fresh peer.
void send_snapshot(net::HomaEndpoint& homa, core::PktStore& store, u32 dst_ip,
                   u16 port, u64 cut_seq);

}  // namespace papm::repl
