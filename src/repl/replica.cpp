#include "repl/replica.h"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "repl/replicator.h"

namespace papm::repl {

namespace {

// Header parsing only — the value bytes are never flattened; they go to
// the store zero-copy as delivered-packet byte ranges.
std::vector<u8> head_bytes(const net::HomaDelivery& d, std::size_t n) {
  return delivery_head(d, n);
}

}  // namespace

ReplicaNode::ReplicaNode(sim::Env& env, nic::Fabric& fabric,
                         const ReplicaConfig& cfg)
    : env_(env), cfg_(cfg) {
  dev_ = std::make_unique<pm::PmDevice>(env, cfg.pm_size);
  const u64 base = dev_->data_base();
  const u64 span = (cfg.pm_size - base - kCacheLine) / kCacheLine * kCacheLine;
  pm_pool_.emplace(pm::PmPool::create(*dev_, "pkts", base, span));
  pm_pool_->set_charges(env.cost.pool_alloc_ns, env.cost.pool_alloc_ns / 2);
  wire_up(fabric);
  auto root = pm_pool_->alloc(kCacheLine);
  if (!root.ok()) throw std::runtime_error("ReplicaNode: no PM for root");
  applied_root_ = root.value();
  dev_->store_u64(applied_root_, 0);
  dev_->persist(applied_root_, 8);
  (void)dev_->set_root("repl.applied", applied_root_);
  store_.emplace(core::PktStore::create(*pool_, "repl-store", cfg.store_opts));
  if (pm::kGroupCommitCompiled && cfg.group_commit) {
    batcher_.emplace(*dev_, cfg.gc_policy);
    batcher_->register_pool(*pm_pool_);
    store_->set_batcher(&*batcher_);
  }
}

ReplicaNode::ReplicaNode(sim::Env& env, nic::Fabric& fabric,
                         const ReplicaConfig& cfg,
                         std::unique_ptr<pm::PmDevice> snapshot)
    : env_(env), cfg_(cfg), dev_(std::move(snapshot)) {
  auto pool = pm::PmPool::recover(*dev_, "pkts");
  if (!pool.ok()) throw std::runtime_error("ReplicaNode: pool recover failed");
  pm_pool_.emplace(std::move(pool.value()));
  pm_pool_->set_charges(env.cost.pool_alloc_ns, env.cost.pool_alloc_ns / 2);
  wire_up(fabric);
  auto root = dev_->get_root("repl.applied");
  if (!root.ok()) throw std::runtime_error("ReplicaNode: no applied root");
  applied_root_ = root.value();
  applied_seq_ = durable_seq_ = acked_seq_ = dev_->load_u64(applied_root_);
  auto st = core::PktStore::recover(*pool_, "repl-store", cfg.store_opts);
  if (!st.ok()) throw std::runtime_error("ReplicaNode: store recover failed");
  store_.emplace(std::move(st.value()));
  if (pm::kGroupCommitCompiled && cfg.group_commit) {
    batcher_.emplace(*dev_, cfg.gc_policy);
    batcher_->register_pool(*pm_pool_);
    store_->set_batcher(&*batcher_);
  }
}

void ReplicaNode::wire_up(nic::Fabric& fabric) {
  arena_.emplace(*dev_, *pm_pool_);
  pool_.emplace(env_, *arena_);
  nic_.emplace(env_, fabric, cfg_.ip, *pool_, cfg_.nic);
  net::UdpStack::Options uo;
  uo.ip = cfg_.ip;
  uo.kernel_bypass = true;
  udp_.emplace(env_, *nic_, *pool_, uo);
  nic_->set_sink([this](net::PktBuf* pb) { udp_->rx(pb); });
  homa_.emplace(*udp_, cfg_.opts.port, cfg_.opts.homa);
  homa_->on_message = [this](net::HomaDelivery d) { on_msg(std::move(d)); };
  m_applies_ = &metrics_.counter("repl.applies");
  m_acks_tx_ = &metrics_.counter("repl.acks_tx");
  m_resync_items_ = &metrics_.counter("repl.resync_items");
  trace_.set_track(obs::kReplicaTrackBase + cfg_.index);
}

void ReplicaNode::kill() {
  alive_ = false;
  nic_->set_link_up(false);
  homa_->abandon();
  dev_->clear_fault_plan();
  for (auto& [seq, d] : pending_) free_delivery(d);
  pending_.clear();
}

void ReplicaNode::free_delivery(net::HomaDelivery& d) { release_delivery(d); }

void ReplicaNode::monitor_primary() {
  last_hb_ = env_.now();
  if (monitor_armed_) return;
  monitor_armed_ = true;
  const SimTime period = cfg_.opts.hb_timeout_ns / 2;
  // Self-rescheduling liveness probe: fires until the node dies, is
  // promoted, or has declared the primary suspect.
  struct Rearm {
    ReplicaNode* n;
    SimTime period;
    void operator()() const {
      ReplicaNode* node = n;
      if (!node->alive_ || node->promoted_ || node->suspect_fired_) {
        node->monitor_armed_ = false;
        return;
      }
      if (node->env_.now() - node->last_hb_ > node->cfg_.opts.hb_timeout_ns) {
        node->suspect_fired_ = true;
        node->monitor_armed_ = false;
        if (node->on_primary_suspect) node->on_primary_suspect();
        return;
      }
      node->env_.engine.schedule_in(period, Rearm{node, period});
    }
  };
  env_.engine.schedule_in(period, Rearm{this, period});
}

void ReplicaNode::on_msg(net::HomaDelivery d) {
  if (!alive_ || d.total_len == 0) {
    free_delivery(d);
    return;
  }
  const auto head = head_bytes(d, 1);
  switch (static_cast<MsgKind>(head[0])) {
    case MsgKind::data:
      apply_data(d);
      return;  // apply_data owns the delivery
    case MsgKind::heartbeat:
      last_hb_ = env_.now();
      break;
    case MsgKind::snap_begin:
      in_resync_ = true;
      resync_keys_.clear();
      break;
    case MsgKind::snap_item:
      snap_item(d);
      break;
    case MsgKind::snap_end: {
      const auto ctl = head_bytes(d, kCtlLen);
      snap_end(get_u64(ctl.data() + 8));
      break;
    }
    case MsgKind::ack:
      break;  // primary-side message; not ours
  }
  free_delivery(d);
}

void ReplicaNode::apply_data(net::HomaDelivery& d) {
  const auto hdr = head_bytes(d, kDataHdrLen);
  const u64 seq = get_u64(hdr.data() + 8);
  if (seq <= applied_seq_) {
    // Idempotent replay: a duplicated or retransmitted forward for an
    // already-applied seq is dropped and the cumulative ack repeated
    // (the original ack may have been lost).
    free_delivery(d);
    acked_seq_ = 0;  // force the re-ack even at an unchanged durable seq
    send_ack();
    return;
  }
  if (seq != applied_seq_ + 1) {
    // Out of order: hold until the gap fills.
    if (!pending_.contains(seq)) {
      pending_.emplace(seq, std::move(d));
    } else {
      free_delivery(d);
    }
    return;
  }
  {
    const u16 key_len = get_u16(hdr.data() + 2);
    const u32 val_len = get_u32(hdr.data() + 4);
    const u64 trace_id = get_u64(hdr.data() + 16);
    const auto full = head_bytes(d, kDataHdrLen + key_len);
    const std::string key(reinterpret_cast<const char*>(full.data()) +
                              kDataHdrLen,
                          key_len);
    apply_one(d, static_cast<OpKind>(hdr[1]), key, kDataHdrLen + key_len,
              val_len, trace_id);
    free_delivery(d);
  }
  // Drain any buffered successors that are now contiguous.
  auto it = pending_.find(applied_seq_ + 1);
  while (it != pending_.end()) {
    net::HomaDelivery next = std::move(it->second);
    pending_.erase(it);
    const auto h2 = head_bytes(next, kDataHdrLen);
    const u16 kl = get_u16(h2.data() + 2);
    const u32 vl = get_u32(h2.data() + 4);
    const u64 tid2 = get_u64(h2.data() + 16);
    const auto f2 = head_bytes(next, kDataHdrLen + kl);
    const std::string k2(reinterpret_cast<const char*>(f2.data()) +
                             kDataHdrLen,
                         kl);
    apply_one(next, static_cast<OpKind>(h2[1]), k2, kDataHdrLen + kl, vl,
              tid2);
    free_delivery(next);
    it = pending_.find(applied_seq_ + 1);
  }
}

void ReplicaNode::apply_one(const net::HomaDelivery& d, OpKind op,
                            std::string_view key, std::size_t val_at,
                            u32 val_len, u64 trace_id) {
  const u64 seq = applied_seq_ + 1;
  const SimTime t_apply = env_.now();
  const bool batch = batcher_.has_value();
  if (batch) batcher_->begin_op(true, static_cast<u64>(env_.now()));
  store_->set_batched(batch && batcher_->batching());
  if (op == OpKind::put) {
    // The value's byte ranges within the delivered packets, zero-copy:
    // skip the replication header + key, take val_len bytes.
    std::vector<net::PktBuf*> pkts;
    std::vector<u32> offs, lens;
    std::size_t skip = val_at;
    u64 remaining = val_len;
    for (std::size_t i = 0; i < d.pkts.size() && remaining > 0; i++) {
      if (skip >= d.lens[i]) {
        skip -= d.lens[i];
        continue;
      }
      const u32 take = static_cast<u32>(
          std::min<u64>(d.lens[i] - skip, remaining));
      pkts.push_back(d.pkts[i]);
      offs.push_back(d.offs[i] + static_cast<u32>(skip));
      lens.push_back(take);
      remaining -= take;
      skip = 0;
    }
    (void)store_->put_pkts(key, pkts, offs, lens, nullptr);
  } else {
    (void)store_->erase(key);
  }
  applied_seq_ = seq;
  applies_++;
  obs::inc(m_applies_);
  if (obs::kEnabled && trace_id != 0) {
    // Stamp the apply span with the primary's trace id: after the
    // harness merges this log into the primary's, the span renders as a
    // cross-track child of the same request in Perfetto.
    trace_.record(trace_id, obs::Stage::repl_apply, t_apply,
                  env_.now() - t_apply);
  }
  publish_applied(seq);
  if (batch) {
    batcher_->end_op();
    arm_epoch_drain();
  }
}

void ReplicaNode::publish_applied(u64 seq) {
  if (batcher_.has_value() && batcher_->batching()) {
    // Deferred publication: the applied-seq word can never be durable
    // before the content it covers; the ack rides the epoch's commit.
    batcher_->publish_u64(applied_root_, seq);
    batcher_->on_committed([this, seq] {
      durable_seq_ = std::max(durable_seq_, seq);
      send_ack();
    });
    return;
  }
  dev_->store_u64(applied_root_, seq);
  dev_->persist(applied_root_, 8);
  durable_seq_ = std::max(durable_seq_, seq);
  send_ack();
}

void ReplicaNode::send_ack() {
  if (!alive_ || durable_seq_ == acked_seq_) return;
  acked_seq_ = durable_seq_;
  homa_->send_msg(cfg_.primary_ip, cfg_.opts.port,
                  encode_ctl(MsgKind::ack, durable_seq_));
  obs::inc(m_acks_tx_);
}

void ReplicaNode::arm_epoch_drain() {
  if (!batcher_.has_value() || !batcher_->epoch_open()) return;
  const u64 serial = batcher_->epoch_serial();
  const u32 ops = batcher_->ops_in_epoch();
  env_.engine.schedule_in(
      static_cast<SimTime>(batcher_->policy().idle_close_ns),
      [this, serial, ops] {
        if (!alive_ || !batcher_.has_value() || !batcher_->epoch_open()) return;
        if (batcher_->epoch_serial() != serial ||
            batcher_->ops_in_epoch() != ops) {
          return;  // a newer apply joined; its own drain check follows
        }
        batcher_->close();
      });
}

void ReplicaNode::snap_item(const net::HomaDelivery& d) {
  if (!in_resync_) return;
  const auto hdr = head_bytes(d, kSnapItemHdrLen);
  const u16 key_len = get_u16(hdr.data() + 2);
  const u32 val_len = get_u32(hdr.data() + 4);
  const auto all = head_bytes(d, kSnapItemHdrLen + key_len + val_len);
  const std::string key(reinterpret_cast<const char*>(all.data()) +
                            kSnapItemHdrLen,
                        key_len);
  const std::span<const u8> val(all.data() + kSnapItemHdrLen + key_len,
                                val_len);
  (void)store_->put_bytes(key, val, nullptr);
  resync_keys_.push_back(key);
  resync_items_++;
  obs::inc(m_resync_items_);
}

void ReplicaNode::snap_end(u64 cut_seq) {
  if (!in_resync_) return;
  in_resync_ = false;
  // Keys the snapshot did not carry were erased on the primary while we
  // were down: drop them so the stores converge.
  std::set<std::string> keep(resync_keys_.begin(), resync_keys_.end());
  std::vector<std::string> stale;
  store_->scan("", "", [&](std::string_view k, const core::PktStore::ValueMeta&) {
    if (!keep.contains(std::string(k))) stale.emplace_back(k);
    return true;
  });
  for (const auto& k : stale) store_->erase(k);
  resync_keys_.clear();
  applied_seq_ = std::max(applied_seq_, cut_seq);
  dev_->store_u64(applied_root_, applied_seq_);
  dev_->persist(applied_root_, 8);
  durable_seq_ = applied_seq_;
  acked_seq_ = 0;  // force the post-resync ack
  send_ack();
}

void ReplicaNode::send_snapshot(u32 dst_ip, u64 cut_seq) {
  repl::send_snapshot(*homa_, *store_, dst_ip, cfg_.opts.port, cut_seq);
}

}  // namespace papm::repl
