#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace papm {

void Stats::ensure_sorted() const {
  if (sorted_) return;
  sorted_samples_ = samples_;
  std::sort(sorted_samples_.begin(), sorted_samples_.end());
  sorted_ = true;
}

double Stats::min() const {
  ensure_sorted();
  return sorted_samples_.empty() ? 0.0 : sorted_samples_.front();
}

double Stats::max() const {
  ensure_sorted();
  return sorted_samples_.empty() ? 0.0 : sorted_samples_.back();
}

double Stats::percentile(double p) const {
  ensure_sorted();
  if (sorted_samples_.empty()) return 0.0;
  if (p <= 0.0) return sorted_samples_.front();
  if (p >= 100.0) return sorted_samples_.back();
  // Nearest rank: ceil(p/100 * N), 1-based, clamped to [1, N]. Always an
  // actual sample, so a single-sample distribution answers that sample
  // for every p and no query can index past the ends.
  const std::size_t n = sorted_samples_.size();
  auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  rank = std::max<std::size_t>(1, std::min(rank, n));
  return sorted_samples_[rank - 1];
}

double Stats::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

std::string Stats::hist(int buckets, int width) const {
  ensure_sorted();
  if (sorted_samples_.empty()) return "(no samples)\n";
  if (buckets < 1) buckets = 1;
  if (width < 1) width = 1;
  const double lo = sorted_samples_.front();
  const double hi = sorted_samples_.back();
  // Degenerate span (all samples equal): one full-width row.
  const double span = hi > lo ? hi - lo : 1.0;
  std::vector<std::size_t> counts(static_cast<std::size_t>(buckets), 0);
  for (double s : sorted_samples_) {
    auto b = static_cast<std::size_t>((s - lo) / span *
                                      static_cast<double>(buckets));
    if (b >= counts.size()) b = counts.size() - 1;  // s == hi
    counts[b]++;
  }
  const std::size_t peak = *std::max_element(counts.begin(), counts.end());
  std::string out;
  char buf[128];
  for (int b = 0; b < buckets; b++) {
    const double from = lo + span * b / buckets;
    const double to = lo + span * (b + 1) / buckets;
    const auto bar = static_cast<int>(
        static_cast<double>(counts[static_cast<std::size_t>(b)]) /
        static_cast<double>(peak) * width);
    std::snprintf(buf, sizeof buf, "%12.1f..%-12.1f |%-*s %zu\n", from, to,
                  width, std::string(static_cast<std::size_t>(bar), '#').c_str(),
                  counts[static_cast<std::size_t>(b)]);
    out += buf;
  }
  return out;
}

std::string format_us(double ns, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, ns / 1000.0);
  return buf;
}

}  // namespace papm
