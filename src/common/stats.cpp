#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace papm {

void Stats::ensure_sorted() const {
  if (sorted_) return;
  sorted_samples_ = samples_;
  std::sort(sorted_samples_.begin(), sorted_samples_.end());
  sorted_ = true;
}

double Stats::min() const {
  ensure_sorted();
  return sorted_samples_.empty() ? 0.0 : sorted_samples_.front();
}

double Stats::max() const {
  ensure_sorted();
  return sorted_samples_.empty() ? 0.0 : sorted_samples_.back();
}

double Stats::percentile(double p) const {
  ensure_sorted();
  if (sorted_samples_.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(sorted_samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted_samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_samples_[lo] * (1.0 - frac) + sorted_samples_[hi] * frac;
}

double Stats::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

std::string format_us(double ns, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, ns / 1000.0);
  return buf;
}

}  // namespace papm
