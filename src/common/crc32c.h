// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78).
//
// This is the integrity checksum used by LevelDB/NoveLSM-class storage
// stacks; the paper's Table 1 "checksum calculation" row (1.77 us for a
// 1 KB value) is exactly this computation. Implemented with slicing-by-8
// so the software cost is realistic, plus the LevelDB-style mask for
// checksums stored alongside the data they cover.
#pragma once

#include <cstddef>
#include <span>

#include "common/types.h"

namespace papm {

// One-shot CRC32C over a buffer.
[[nodiscard]] u32 crc32c(std::span<const u8> data) noexcept;

// Streaming form: extend a running CRC (pass 0 to start).
[[nodiscard]] u32 crc32c_extend(u32 crc, std::span<const u8> data) noexcept;

// LevelDB-style masking: storing a CRC of data that itself contains CRCs
// can produce degenerate values; the mask makes stored checksums distinct
// from computed ones.
[[nodiscard]] constexpr u32 crc32c_mask(u32 crc) noexcept {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
[[nodiscard]] constexpr u32 crc32c_unmask(u32 masked) noexcept {
  const u32 rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace papm
