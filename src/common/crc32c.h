// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78).
//
// This is the integrity checksum used by LevelDB/NoveLSM-class storage
// stacks; the paper's Table 1 "checksum calculation" row (1.77 us for a
// 1 KB value) is exactly this computation. Two implementations:
//
//   * slicing-by-8 software tables — the portable fallback, and the cost
//     the simulation's software-checksum price models;
//   * the SSE4.2 CRC32 instruction (_mm_crc32_u64, 3-cycle latency,
//     1/cycle throughput) — what a production store would use on x86,
//     and the middle point between software tables and full NIC offload
//     that bench_checksum (A2) reports.
//
// crc32c()/crc32c_extend() dispatch once (cpuid) to the fastest variant;
// the _sw/_hw entry points pin an implementation for benchmarking.
#pragma once

#include <cstddef>
#include <span>

#include "common/types.h"

namespace papm {

// One-shot CRC32C over a buffer (best available implementation).
[[nodiscard]] u32 crc32c(std::span<const u8> data) noexcept;

// Streaming form: extend a running CRC (pass 0 to start).
[[nodiscard]] u32 crc32c_extend(u32 crc, std::span<const u8> data) noexcept;

// Implementation-pinned variants (benchmarks; results are identical).
[[nodiscard]] u32 crc32c_sw_extend(u32 crc, std::span<const u8> data) noexcept;
[[nodiscard]] u32 crc32c_hw_extend(u32 crc, std::span<const u8> data) noexcept;

// True when the SSE4.2 hardware path is compiled in and the CPU has it.
[[nodiscard]] bool crc32c_hw_available() noexcept;

// LevelDB-style masking: storing a CRC of data that itself contains CRCs
// can produce degenerate values; the mask makes stored checksums distinct
// from computed ones.
[[nodiscard]] constexpr u32 crc32c_mask(u32 crc) noexcept {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
[[nodiscard]] constexpr u32 crc32c_unmask(u32 masked) noexcept {
  const u32 rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace papm
