#include "common/hexdump.h"

#include <cctype>
#include <cstdio>

namespace papm {

std::string hexdump(std::span<const u8> data, std::size_t max_bytes) {
  std::string out;
  const std::size_t n = std::min(data.size(), max_bytes);
  for (std::size_t row = 0; row < n; row += 16) {
    char line[80];
    std::snprintf(line, sizeof(line), "%08zx  ", row);
    out += line;
    for (std::size_t i = 0; i < 16; i++) {
      if (row + i < n) {
        std::snprintf(line, sizeof(line), "%02x ", data[row + i]);
        out += line;
      } else {
        out += "   ";
      }
      if (i == 7) out += ' ';
    }
    out += " |";
    for (std::size_t i = 0; i < 16 && row + i < n; i++) {
      const u8 c = data[row + i];
      out += std::isprint(c) ? static_cast<char>(c) : '.';
    }
    out += "|\n";
  }
  if (data.size() > max_bytes) out += "... (truncated)\n";
  return out;
}

}  // namespace papm
