// Basic shared types for the papm libraries.
//
// We deliberately avoid exceptions on the data path (packet processing,
// storage operations): fallible operations return Result<T> / Status and
// callers must inspect them. Construction failures of long-lived objects
// (e.g. a PM device that cannot map its file) may still throw, per the
// Core Guidelines' "establish invariants in constructors".
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace papm {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

// Error codes shared across the stack. Keep this a closed set so switch
// statements over it can be exhaustively checked.
enum class Errc {
  ok = 0,
  not_found,
  already_exists,
  out_of_space,
  invalid_argument,
  corrupted,       // integrity check failed (checksum mismatch, bad magic)
  io_error,        // simulated device error
  would_block,     // transient: retry later (e.g. TX ring full)
  connection_reset,
  not_connected,
  too_large,
  not_supported,
  internal,
};

[[nodiscard]] constexpr std::string_view to_string(Errc e) noexcept {
  switch (e) {
    case Errc::ok: return "ok";
    case Errc::not_found: return "not_found";
    case Errc::already_exists: return "already_exists";
    case Errc::out_of_space: return "out_of_space";
    case Errc::invalid_argument: return "invalid_argument";
    case Errc::corrupted: return "corrupted";
    case Errc::io_error: return "io_error";
    case Errc::would_block: return "would_block";
    case Errc::connection_reset: return "connection_reset";
    case Errc::not_connected: return "not_connected";
    case Errc::too_large: return "too_large";
    case Errc::not_supported: return "not_supported";
    case Errc::internal: return "internal";
  }
  return "unknown";
}

// A status: either ok or an error code. Cheap to copy.
class Status {
 public:
  constexpr Status() noexcept = default;
  constexpr Status(Errc e) noexcept : errc_(e) {}  // NOLINT: implicit by design

  [[nodiscard]] constexpr bool ok() const noexcept { return errc_ == Errc::ok; }
  [[nodiscard]] constexpr Errc errc() const noexcept { return errc_; }
  [[nodiscard]] std::string_view message() const noexcept { return to_string(errc_); }

  constexpr explicit operator bool() const noexcept { return ok(); }
  friend constexpr bool operator==(Status a, Status b) noexcept { return a.errc_ == b.errc_; }

  static constexpr Status Ok() noexcept { return {}; }

 private:
  Errc errc_ = Errc::ok;
};

// Minimal expected-like type: a value or an error code.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Errc e) : v_(e) {}                  // NOLINT: implicit by design
  Result(Status s) : v_(s.errc()) {}         // NOLINT: implicit by design

  [[nodiscard]] bool ok() const noexcept { return std::holds_alternative<T>(v_); }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] Errc errc() const noexcept {
    return ok() ? Errc::ok : std::get<Errc>(v_);
  }
  [[nodiscard]] Status status() const noexcept { return Status(errc()); }

  // Precondition: ok().
  [[nodiscard]] T& value() & { return std::get<T>(v_); }
  [[nodiscard]] const T& value() const& { return std::get<T>(v_); }
  [[nodiscard]] T&& value() && { return std::get<T>(std::move(v_)); }

  [[nodiscard]] T value_or(T alt) const& {
    return ok() ? std::get<T>(v_) : std::move(alt);
  }

  [[nodiscard]] T* operator->() { return &std::get<T>(v_); }
  [[nodiscard]] const T* operator->() const { return &std::get<T>(v_); }
  [[nodiscard]] T& operator*() & { return std::get<T>(v_); }
  [[nodiscard]] const T& operator*() const& { return std::get<T>(v_); }

 private:
  std::variant<T, Errc> v_;
};

// Nanoseconds of simulated time. Signed so durations subtract safely.
using SimTime = i64;
constexpr SimTime kNsPerUs = 1000;
constexpr SimTime kNsPerMs = 1000 * 1000;
constexpr SimTime kNsPerSec = 1000 * 1000 * 1000;

constexpr std::size_t kCacheLine = 64;

[[nodiscard]] constexpr u64 align_up(u64 v, u64 a) noexcept {
  return (v + a - 1) / a * a;
}
[[nodiscard]] constexpr u64 align_down(u64 v, u64 a) noexcept {
  return v / a * a;
}

}  // namespace papm
