// Internet checksum (RFC 1071) and incremental update (RFC 1624).
//
// This is the TCP/IP checksum the paper proposes to *reuse* as the storage
// integrity word: the NIC verifies/produces it per segment, and because it
// is a ones'-complement sum it can be incrementally recombined when data
// spans segments, without touching the payload bytes again.
#pragma once

#include <cstddef>
#include <span>

#include "common/types.h"

namespace papm {

// Raw ones'-complement sum of a byte range (not folded, not inverted).
// An odd trailing byte is padded with zero, per RFC 1071.
[[nodiscard]] u32 inet_sum(std::span<const u8> data) noexcept;

// Fold a 32-bit running sum into 16 bits.
[[nodiscard]] constexpr u16 inet_fold(u32 sum) noexcept {
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<u16>(sum);
}

// Final checksum of a buffer: folded, inverted.
[[nodiscard]] u16 inet_checksum(std::span<const u8> data) noexcept;

// Ones'-complement sums 0x0000 and 0xffff both denote zero, so checksums
// 0xffff and 0x0000 are the same abstract value. Canonicalize before
// comparing two checksums for equality (e.g. storage integrity checks).
[[nodiscard]] constexpr u16 inet_csum_canon(u16 csum) noexcept {
  return csum == 0 ? 0xffff : csum;
}

// Combine two ones'-complement sums where the second covers `len_b` bytes
// that directly follow the first block. If the first block has odd length
// the second sum must be byte-swapped before adding (RFC 1071 s.2(B)).
[[nodiscard]] u16 inet_csum_concat(u16 csum_a, std::size_t len_a, u16 csum_b,
                                   std::size_t len_b) noexcept;

// RFC 1624 incremental update: new checksum after a 16-bit word at some
// even offset changes from `old_word` to `new_word`.
[[nodiscard]] u16 inet_csum_update(u16 old_csum, u16 old_word, u16 new_word) noexcept;

// Checksum of the slice full[a, b) given the checksum of the whole block,
// touching only the bytes *outside* the slice. This is how a storage
// stack derives the checksum of an HTTP body from the NIC-provided
// payload checksum without re-reading the body: it sums the (small)
// header prefix and trailer and subtracts them in ones'-complement
// arithmetic, handling odd-offset byte swaps per RFC 1071 s.2(B).
[[nodiscard]] u16 inet_csum_slice(std::span<const u8> full, u16 full_csum,
                                  std::size_t a, std::size_t b) noexcept;

}  // namespace papm
