// Debug helper: canonical hexdump of a byte range.
#pragma once

#include <span>
#include <string>

#include "common/types.h"

namespace papm {

// Renders e.g. "00000000  47 45 54 20 2f 6b 2f 61  ...  |GET /k/a|".
[[nodiscard]] std::string hexdump(std::span<const u8> data, std::size_t max_bytes = 256);

}  // namespace papm
