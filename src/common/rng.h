// Deterministic, fast PRNGs for simulation and workload generation.
//
// We use our own generators (not <random> engines) so that results are
// bit-identical across platforms and standard libraries: experiment
// reproducibility depends on it.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/types.h"

namespace papm {

// splitmix64: used to seed other generators from a single 64-bit seed.
[[nodiscard]] constexpr u64 splitmix64(u64& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  u64 z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256**: fast, high-quality, deterministic.
class Rng {
 public:
  explicit constexpr Rng(u64 seed = 0x9d2c5680u) noexcept {
    u64 sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  [[nodiscard]] constexpr u64 next() noexcept {
    const u64 result = rotl(s_[1] * 5, 7) * 9;
    const u64 t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  [[nodiscard]] constexpr u64 next_below(u64 bound) noexcept {
    return next() % bound;  // modulo bias is negligible for our bounds
  }

  // Uniform in [lo, hi] inclusive.
  [[nodiscard]] constexpr u64 next_in(u64 lo, u64 hi) noexcept {
    return lo + next_below(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  [[nodiscard]] constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial.
  [[nodiscard]] constexpr bool chance(double p) noexcept {
    return next_double() < p;
  }

  // Exponentially distributed with the given mean (for inter-arrival gaps).
  [[nodiscard]] double next_exponential(double mean) noexcept {
    double u = next_double();
    if (u <= 0.0) u = 1e-18;
    return -mean * std::log(u);
  }

 private:
  [[nodiscard]] static constexpr u64 rotl(u64 x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  u64 s_[4]{};
};

// Zipfian key popularity (for skewed KV workloads), computed with the
// classic rejection-free inverse-CDF approximation of Gray et al.
class Zipf {
 public:
  Zipf(u64 n, double theta, u64 seed) : n_(n), theta_(theta), rng_(seed) {
    zeta_n_ = zeta(n, theta);
    zeta2_ = zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2_ / zeta_n_);
  }

  // Returns a key index in [0, n).
  [[nodiscard]] u64 next() noexcept {
    const double u = rng_.next_double();
    const double uz = u * zeta_n_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const auto v = static_cast<u64>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return v >= n_ ? n_ - 1 : v;
  }

 private:
  [[nodiscard]] static double zeta(u64 n, double theta) {
    double sum = 0;
    for (u64 i = 1; i <= n; i++) sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
  }
  u64 n_;
  double theta_;
  Rng rng_;
  double zeta_n_, zeta2_, alpha_, eta_;
};

}  // namespace papm
