#include "common/inet_csum.h"

namespace papm {

u32 inet_sum(std::span<const u8> data) noexcept {
  u64 sum = 0;
  const u8* p = data.data();
  std::size_t n = data.size();

  // Sum 16-bit big-endian words; accumulate in 64 bits, fold at the end.
  while (n >= 8) {
    sum += static_cast<u32>(p[0]) << 8 | p[1];
    sum += static_cast<u32>(p[2]) << 8 | p[3];
    sum += static_cast<u32>(p[4]) << 8 | p[5];
    sum += static_cast<u32>(p[6]) << 8 | p[7];
    p += 8;
    n -= 8;
  }
  while (n >= 2) {
    sum += static_cast<u32>(p[0]) << 8 | p[1];
    p += 2;
    n -= 2;
  }
  if (n == 1) sum += static_cast<u32>(p[0]) << 8;  // pad odd byte with zero

  while (sum >> 32) sum = (sum & 0xffffffff) + (sum >> 32);
  return static_cast<u32>(sum);
}

u16 inet_checksum(std::span<const u8> data) noexcept {
  return static_cast<u16>(~inet_fold(inet_sum(data)));
}

u16 inet_csum_concat(u16 csum_a, std::size_t len_a, u16 csum_b,
                     std::size_t len_b) noexcept {
  (void)len_b;
  // Work on the (non-inverted) sums.
  u32 sum_a = static_cast<u16>(~csum_a);
  u32 sum_b = static_cast<u16>(~csum_b);
  if (len_a % 2 != 0) {
    // Odd boundary: bytes of block B land at swapped positions.
    sum_b = static_cast<u32>(((sum_b & 0xff) << 8) | (sum_b >> 8));
  }
  return static_cast<u16>(~inet_fold(sum_a + sum_b));
}

u16 inet_csum_update(u16 old_csum, u16 old_word, u16 new_word) noexcept {
  // RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m')
  u32 sum = static_cast<u16>(~old_csum);
  sum += static_cast<u16>(~old_word);
  sum += new_word;
  return static_cast<u16>(~inet_fold(sum));
}

namespace {
// Byte-swap a folded 16-bit ones'-complement sum (odd-offset adjustment).
constexpr u16 swap16(u16 v) noexcept {
  return static_cast<u16>((v << 8) | (v >> 8));
}
}  // namespace

u16 inet_csum_slice(std::span<const u8> full, u16 full_csum, std::size_t a,
                    std::size_t b) noexcept {
  // total = prefix +' shift_a(slice) +' shift_b(suffix), where shift_k
  // swaps bytes when offset k is odd. Solve for slice.
  const u16 total = inet_fold(static_cast<u16>(~full_csum));
  u16 prefix = inet_fold(inet_sum(full.first(a)));
  u16 suffix = inet_fold(inet_sum(full.subspan(b)));
  if (b % 2 != 0) suffix = swap16(suffix);
  // slice_shifted = total -' prefix -' suffix
  u32 s = total;
  s += static_cast<u16>(~prefix);
  s += static_cast<u16>(~suffix);
  u16 slice = inet_fold(s);
  if (a % 2 != 0) slice = swap16(slice);
  const u16 csum = static_cast<u16>(~slice);
  return csum == 0 ? 0xffff : csum;  // normalize negative zero
}

}  // namespace papm
