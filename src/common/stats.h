// Latency/throughput statistics collection for the experiment harness.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.h"

namespace papm {

// Accumulates samples (e.g. per-request RTTs in ns) and reports summary
// statistics. Percentile queries sort a copy lazily.
class Stats {
 public:
  void add(double sample) {
    samples_.push_back(sample);
    sum_ += sample;
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
  }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  // Nearest-rank percentile: the smallest sample whose cumulative
  // frequency covers p% of the distribution. p is clamped to [0, 100];
  // p <= 0 returns the minimum, empty returns 0, a single sample is
  // returned for every p. Always an actual sample — never interpolated.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }
  [[nodiscard]] double stddev() const;

  // ASCII sketch of the sample distribution: `buckets` equal-width rows
  // between min and max, each "lo..hi | #### count". Empty stats yield
  // "(no samples)". For quick eyeballing in bench output.
  [[nodiscard]] std::string hist(int buckets = 10, int width = 40) const;

  // Folds another collection's samples into this one. Multi-client-host
  // sweeps (bench_openloop beyond the u16 ephemeral-port limit) merge
  // per-host distributions into one before taking percentiles.
  void merge_from(const Stats& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sum_ += other.sum_;
    sorted_ = false;
  }

  void clear() {
    samples_.clear();
    sum_ = 0;
    sorted_ = false;
  }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  double sum_ = 0;
  mutable std::vector<double> sorted_samples_;
  mutable bool sorted_ = false;
};

// Formats nanoseconds as a human-readable microsecond string ("26.71").
[[nodiscard]] std::string format_us(double ns, int decimals = 2);

}  // namespace papm
