#include "common/crc32c.h"

#include <array>

namespace papm {
namespace {

// Build the 8 slicing tables at static-init time. Table 0 is the classic
// byte-at-a-time table; table k folds k extra zero bytes.
struct Tables {
  std::array<std::array<u32, 256>, 8> t{};
  constexpr Tables() {
    constexpr u32 poly = 0x82F63B78u;  // reflected Castagnoli
    for (u32 i = 0; i < 256; i++) {
      u32 crc = i;
      for (int bit = 0; bit < 8; bit++) {
        crc = (crc & 1) ? (crc >> 1) ^ poly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (u32 i = 0; i < 256; i++) {
      u32 crc = t[0][i];
      for (std::size_t k = 1; k < 8; k++) {
        crc = t[0][crc & 0xff] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

constexpr Tables kTables{};

}  // namespace

u32 crc32c_extend(u32 crc, std::span<const u8> data) noexcept {
  const auto& t = kTables.t;
  crc = ~crc;
  const u8* p = data.data();
  std::size_t n = data.size();

  // Process 8 bytes per step via slicing-by-8.
  while (n >= 8) {
    const u32 lo = crc ^ (static_cast<u32>(p[0]) | static_cast<u32>(p[1]) << 8 |
                          static_cast<u32>(p[2]) << 16 | static_cast<u32>(p[3]) << 24);
    const u32 hi = static_cast<u32>(p[4]) | static_cast<u32>(p[5]) << 8 |
                   static_cast<u32>(p[6]) << 16 | static_cast<u32>(p[7]) << 24;
    crc = t[7][lo & 0xff] ^ t[6][(lo >> 8) & 0xff] ^ t[5][(lo >> 16) & 0xff] ^
          t[4][lo >> 24] ^ t[3][hi & 0xff] ^ t[2][(hi >> 8) & 0xff] ^
          t[1][(hi >> 16) & 0xff] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

u32 crc32c(std::span<const u8> data) noexcept { return crc32c_extend(0, data); }

}  // namespace papm
