#include "common/crc32c.h"

#include <array>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define PAPM_CRC32C_X86 1
#include <nmmintrin.h>
#endif

namespace papm {
namespace {

// Build the 8 slicing tables at static-init time. Table 0 is the classic
// byte-at-a-time table; table k folds k extra zero bytes.
struct Tables {
  std::array<std::array<u32, 256>, 8> t{};
  constexpr Tables() {
    constexpr u32 poly = 0x82F63B78u;  // reflected Castagnoli
    for (u32 i = 0; i < 256; i++) {
      u32 crc = i;
      for (int bit = 0; bit < 8; bit++) {
        crc = (crc & 1) ? (crc >> 1) ^ poly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (u32 i = 0; i < 256; i++) {
      u32 crc = t[0][i];
      for (std::size_t k = 1; k < 8; k++) {
        crc = t[0][crc & 0xff] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

constexpr Tables kTables{};

}  // namespace

u32 crc32c_sw_extend(u32 crc, std::span<const u8> data) noexcept {
  const auto& t = kTables.t;
  crc = ~crc;
  const u8* p = data.data();
  std::size_t n = data.size();

  // Process 8 bytes per step via slicing-by-8.
  while (n >= 8) {
    const u32 lo = crc ^ (static_cast<u32>(p[0]) | static_cast<u32>(p[1]) << 8 |
                          static_cast<u32>(p[2]) << 16 | static_cast<u32>(p[3]) << 24);
    const u32 hi = static_cast<u32>(p[4]) | static_cast<u32>(p[5]) << 8 |
                   static_cast<u32>(p[6]) << 16 | static_cast<u32>(p[7]) << 24;
    crc = t[7][lo & 0xff] ^ t[6][(lo >> 8) & 0xff] ^ t[5][(lo >> 16) & 0xff] ^
          t[4][lo >> 24] ^ t[3][hi & 0xff] ^ t[2][(hi >> 8) & 0xff] ^
          t[1][(hi >> 16) & 0xff] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

#ifdef PAPM_CRC32C_X86

__attribute__((target("sse4.2"))) u32 crc32c_hw_extend(
    u32 crc, std::span<const u8> data) noexcept {
  crc = ~crc;
  const u8* p = data.data();
  std::size_t n = data.size();
  u64 c = crc;
  // Unaligned heads are rare (packet payloads are cache-line based);
  // _mm_crc32_u64 tolerates unaligned loads, so just go 8 bytes a step.
  while (n >= 8) {
    u64 word;
    std::memcpy(&word, p, 8);
    c = _mm_crc32_u64(c, word);
    p += 8;
    n -= 8;
  }
  crc = static_cast<u32>(c);
  while (n-- > 0) crc = _mm_crc32_u8(crc, *p++);
  return ~crc;
}

bool crc32c_hw_available() noexcept {
  return __builtin_cpu_supports("sse4.2") != 0;
}

#else  // portable build: the hw entry points fall back to software

u32 crc32c_hw_extend(u32 crc, std::span<const u8> data) noexcept {
  return crc32c_sw_extend(crc, data);
}

bool crc32c_hw_available() noexcept { return false; }

#endif

namespace {

using ExtendFn = u32 (*)(u32, std::span<const u8>) noexcept;

// One cpuid at first use, then direct calls through the pointer.
ExtendFn resolve_extend() noexcept {
  return crc32c_hw_available() ? &crc32c_hw_extend : &crc32c_sw_extend;
}

const ExtendFn kExtend = resolve_extend();

}  // namespace

u32 crc32c_extend(u32 crc, std::span<const u8> data) noexcept {
  return kExtend(crc, data);
}

u32 crc32c(std::span<const u8> data) noexcept { return crc32c_extend(0, data); }

}  // namespace papm
