#include "net/homa.h"

#include <cstring>

namespace papm::net {

namespace {

constexpr u64 rx_key(u64 msg_id, u32 src_ip, u16 src_port) {
  return (msg_id << 24) ^ (static_cast<u64>(src_ip) << 8) ^ src_port;
}

struct WireHomaHdr {
  u8 type;
  u64 msg_id;
  u32 offset;
  u32 total_len;
  u32 grant;
};

void encode_homa(const WireHomaHdr& h, std::span<u8> out) {
  std::memset(out.data(), 0, kHomaHdrLen);
  out[0] = h.type;
  std::memcpy(out.data() + 4, &h.msg_id, 8);
  std::memcpy(out.data() + 12, &h.offset, 4);
  std::memcpy(out.data() + 16, &h.total_len, 4);
  std::memcpy(out.data() + 20, &h.grant, 4);
}

std::optional<WireHomaHdr> decode_homa(std::span<const u8> in) {
  if (in.size() < kHomaHdrLen) return std::nullopt;
  WireHomaHdr h;
  h.type = in[0];
  std::memcpy(&h.msg_id, in.data() + 4, 8);
  std::memcpy(&h.offset, in.data() + 12, 4);
  std::memcpy(&h.total_len, in.data() + 16, 4);
  std::memcpy(&h.grant, in.data() + 20, 4);
  return h;
}

}  // namespace

std::vector<u8> HomaDelivery::bytes(PktBufPool& pool) const {
  std::vector<u8> out;
  out.reserve(total_len);
  for (std::size_t i = 0; i < pkts.size(); i++) {
    const u8* base = pool.data(*pkts[i]);
    out.insert(out.end(), base + offs[i], base + offs[i] + lens[i]);
  }
  return out;
}

HomaEndpoint::HomaEndpoint(UdpStack& udp, u16 port, Options opts)
    : udp_(udp), port_(port), opts_(opts) {
  const Status st = udp_.bind(
      port, [this](u32 ip, u16 sport, PktBuf* pb) { rx(ip, sport, pb); });
  if (!st.ok()) throw std::runtime_error("HomaEndpoint: port taken");
}

void HomaEndpoint::charge_proc() {
  udp_.env().clock().advance(udp_.env().cost.homa_proc_ns);
}

u64 HomaEndpoint::send_msg(u32 dst_ip, u16 dst_port, std::span<const u8> data) {
  const u64 id = next_msg_id_++;
  TxMsg m;
  m.dst_ip = dst_ip;
  m.dst_port = dst_port;
  m.data.assign(data.begin(), data.end());
  m.granted = std::min<u64>(
      data.size(), static_cast<u64>(opts_.unscheduled_segs) * kHomaSegPayload);
  m.sent = 0;
  m.done = false;
  m.retries = 0;
  m.timer_gen = 0;
  auto [it, inserted] = tx_.emplace(id, std::move(m));
  tx_from(it->second, id, it->second.granted);
  arm_tx_timer(id, it->second);
  msgs_tx_++;
  return id;
}

void HomaEndpoint::tx_from(TxMsg& m, u64 msg_id, u64 upto) {
  upto = std::min<u64>(upto, m.data.size());
  while (m.sent < upto || (m.data.empty() && m.sent == 0)) {
    const u32 off = static_cast<u32>(m.sent);
    const u32 len = static_cast<u32>(
        std::min<u64>(kHomaSegPayload, m.data.size() - m.sent));
    charge_proc();
    std::vector<u8> payload(kHomaHdrLen + len);
    WireHomaHdr h{static_cast<u8>(HomaPktType::data), msg_id, off,
                  static_cast<u32>(m.data.size()), 0};
    encode_homa(h, payload);
    if (len > 0) std::memcpy(payload.data() + kHomaHdrLen, m.data.data() + off, len);
    (void)udp_.send_to(m.dst_ip, m.dst_port, port_, payload);
    m.sent += len;
    if (m.data.empty()) break;  // zero-length message: one bare segment
  }
}

void HomaEndpoint::send_ctl(u32 dst_ip, u16 dst_port, HomaPktType type,
                            u64 msg_id, u32 offset, u32 total, u32 grant) {
  charge_proc();
  std::vector<u8> payload(kHomaHdrLen);
  encode_homa({static_cast<u8>(type), msg_id, offset, total, grant}, payload);
  (void)udp_.send_to(dst_ip, dst_port, port_, payload);
}

void HomaEndpoint::arm_tx_timer(u64 msg_id, TxMsg& m) {
  const u64 gen = ++m.timer_gen;
  udp_.env().engine.schedule_in(opts_.sender_timeout_ns, [this, msg_id, gen] {
    auto it = tx_.find(msg_id);
    if (it == tx_.end() || it->second.timer_gen != gen || it->second.done) {
      return;
    }
    TxMsg& m2 = it->second;
    if (++m2.retries > opts_.max_retries) {
      tx_.erase(it);  // give up; the message is lost
      return;
    }
    // No grant/ack progress: replay everything granted so far.
    resends_++;
    m2.sent = 0;
    tx_from(m2, msg_id, m2.granted);
    arm_tx_timer(msg_id, m2);
  });
}

void HomaEndpoint::arm_rx_timer(u64 key, RxMsg& m) {
  const u64 gen = ++m.timer_gen;
  udp_.env().engine.schedule_in(opts_.resend_timeout_ns, [this, key, gen] {
    auto it = rx_.find(key);
    if (it == rx_.end() || it->second.timer_gen != gen) return;
    RxMsg& m2 = it->second;
    if (++m2.nudges > opts_.max_retries) {
      for (auto& [off, pb] : m2.segs) udp_.pool().free(pb);
      rx_.erase(it);
      return;
    }
    // Find the first gap and ask for it again.
    u32 expect = 0;
    for (const auto& [off, pb] : m2.segs) {
      if (off != expect) break;
      expect = off + static_cast<u32>(pb->payload_len() - kHomaHdrLen);
    }
    resends_++;
    send_ctl(m2.src_ip, m2.src_port, HomaPktType::resend, m2.msg_id, expect,
             static_cast<u32>(m2.total_len),
             static_cast<u32>(m2.granted));
    arm_rx_timer(key, it->second);
  });
}

void HomaEndpoint::rx(u32 src_ip, u16 src_port, PktBuf* pb) {
  charge_proc();
  const auto payload = udp_.pool().payload(*pb);
  const auto h = decode_homa(payload);
  if (!h.has_value()) {
    udp_.pool().free(pb);
    return;
  }
  switch (static_cast<HomaPktType>(h->type)) {
    case HomaPktType::data:
      rx_data(src_ip, src_port, pb, h->msg_id, h->offset, h->total_len);
      return;

    case HomaPktType::grant: {
      auto it = tx_.find(h->msg_id);
      if (it != tx_.end() && !it->second.done) {
        TxMsg& m = it->second;
        m.granted = std::max<u64>(m.granted, h->grant);
        tx_from(m, h->msg_id, m.granted);
        arm_tx_timer(h->msg_id, m);
      }
      udp_.pool().free(pb);
      return;
    }

    case HomaPktType::resend: {
      auto it = tx_.find(h->msg_id);
      if (it != tx_.end() && !it->second.done) {
        TxMsg& m = it->second;
        resends_++;
        m.sent = std::min<u64>(m.sent, h->offset);  // rewind to the gap
        tx_from(m, h->msg_id, std::max<u64>(m.granted, h->grant));
        arm_tx_timer(h->msg_id, m);
      }
      udp_.pool().free(pb);
      return;
    }

    case HomaPktType::ack: {
      auto it = tx_.find(h->msg_id);
      if (it != tx_.end()) {
        it->second.done = true;
        it->second.timer_gen++;
        tx_.erase(it);
        if (on_sent) on_sent(h->msg_id);
      }
      udp_.pool().free(pb);
      return;
    }
  }
  udp_.pool().free(pb);
}

void HomaEndpoint::rx_data(u32 src_ip, u16 src_port, PktBuf* pb, u64 msg_id,
                           u32 offset, u32 total_len) {
  const u64 key = rx_key(msg_id, src_ip, src_port);
  if (delivered_.contains(key)) {
    // Already delivered; the sender missed our ACK. Re-ack, drop.
    udp_.pool().free(pb);
    send_ctl(src_ip, src_port, HomaPktType::ack, msg_id, 0, total_len, 0);
    return;
  }
  auto [it, inserted] = rx_.try_emplace(key);
  RxMsg& m = it->second;
  if (inserted) {
    m.src_ip = src_ip;
    m.src_port = src_port;
    m.msg_id = msg_id;
    m.total_len = total_len;
    m.granted = std::min<u64>(
        total_len, static_cast<u64>(opts_.unscheduled_segs) * kHomaSegPayload);
  }
  const u32 seg_len = static_cast<u32>(pb->payload_len() - kHomaHdrLen);
  if (m.segs.contains(offset)) {
    udp_.pool().free(pb);  // duplicate
  } else {
    m.segs.emplace(offset, pb);
    m.received += seg_len;
  }

  if (m.received >= m.total_len) {
    // Complete: ack the sender and deliver the packets.
    send_ctl(src_ip, src_port, HomaPktType::ack, msg_id, 0,
             static_cast<u32>(m.total_len), 0);
    m.timer_gen++;  // cancel the resend timer
    delivered_.insert(key);
    RxMsg done = std::move(m);
    rx_.erase(it);
    deliver(msg_id, std::move(done));
    return;
  }

  // Grant more: keep grant_window_segs of runway past what has arrived.
  const u64 target = std::min<u64>(
      m.total_len,
      m.received + static_cast<u64>(opts_.grant_window_segs) * kHomaSegPayload);
  if (target > m.granted) {
    m.granted = target;
    grants_tx_++;
    send_ctl(src_ip, src_port, HomaPktType::grant, msg_id, 0,
             static_cast<u32>(m.total_len), static_cast<u32>(target));
  }
  arm_rx_timer(key, m);
}

void HomaEndpoint::deliver(u64 msg_id, RxMsg&& m) {
  msgs_rx_++;
  HomaDelivery d;
  d.src_ip = m.src_ip;
  d.src_port = m.src_port;
  d.msg_id = msg_id;
  d.total_len = m.total_len;
  for (auto& [off, pb] : m.segs) {
    d.pkts.push_back(pb);
    d.offs.push_back(static_cast<u32>(pb->payload_off + kHomaHdrLen));
    d.lens.push_back(static_cast<u32>(pb->payload_len() - kHomaHdrLen));
  }
  if (on_message) {
    on_message(std::move(d));
  } else {
    for (auto* pb : d.pkts) udp_.pool().free(pb);
  }
}

}  // namespace papm::net
