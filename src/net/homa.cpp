#include "net/homa.h"

#include <cstring>

namespace papm::net {

namespace {

constexpr u64 rx_key(u64 msg_id, u32 src_ip, u16 src_port) {
  return (msg_id << 24) ^ (static_cast<u64>(src_ip) << 8) ^ src_port;
}

struct WireHomaHdr {
  u8 type;
  u64 msg_id;
  u32 offset;
  u32 total_len;
  u32 grant;
};

void encode_homa(const WireHomaHdr& h, std::span<u8> out) {
  std::memset(out.data(), 0, kHomaHdrLen);
  out[0] = h.type;
  std::memcpy(out.data() + 4, &h.msg_id, 8);
  std::memcpy(out.data() + 12, &h.offset, 4);
  std::memcpy(out.data() + 16, &h.total_len, 4);
  std::memcpy(out.data() + 20, &h.grant, 4);
}

std::optional<WireHomaHdr> decode_homa(std::span<const u8> in) {
  if (in.size() < kHomaHdrLen) return std::nullopt;
  WireHomaHdr h;
  h.type = in[0];
  std::memcpy(&h.msg_id, in.data() + 4, 8);
  std::memcpy(&h.offset, in.data() + 12, 4);
  std::memcpy(&h.total_len, in.data() + 16, 4);
  std::memcpy(&h.grant, in.data() + 20, 4);
  return h;
}

}  // namespace

std::vector<u8> HomaDelivery::bytes(PktBufPool& pool) const {
  std::vector<u8> out;
  out.reserve(total_len);
  for (std::size_t i = 0; i < pkts.size(); i++) {
    const u8* base = pool.data(*pkts[i]);
    out.insert(out.end(), base + offs[i], base + offs[i] + lens[i]);
  }
  return out;
}

HomaEndpoint::HomaEndpoint(UdpStack& udp, u16 port, Options opts)
    : udp_(udp), port_(port), opts_(opts) {
  const Status st = udp_.bind(
      port, [this](u32 ip, u16 sport, PktBuf* pb) { rx(ip, sport, pb); });
  if (!st.ok()) throw std::runtime_error("HomaEndpoint: port taken");
}

void HomaEndpoint::charge_proc() {
  udp_.env().clock().advance(udp_.env().cost.homa_proc_ns);
}

u64 HomaEndpoint::send_msg(u32 dst_ip, u16 dst_port, std::span<const u8> data) {
  const u64 id = next_msg_id_++;
  TxMsg m;
  m.dst_ip = dst_ip;
  m.dst_port = dst_port;
  m.data.assign(data.begin(), data.end());
  m.granted = std::min<u64>(
      data.size(), static_cast<u64>(opts_.unscheduled_segs) * kHomaSegPayload);
  m.sent = 0;
  m.done = false;
  m.retries = 0;
  m.timer_gen = 0;
  auto [it, inserted] = tx_.emplace(id, std::move(m));
  tx_from(it->second, id, it->second.granted);
  arm_tx_timer(id, it->second);
  msgs_tx_++;
  return id;
}

u64 HomaEndpoint::send_msg_gather(u32 dst_ip, u16 dst_port,
                                  std::span<const u8> header,
                                  std::span<const GatherSeg> segs,
                                  PktBufPool& pool) {
  const u64 id = next_msg_id_++;
  TxMsg m;
  m.dst_ip = dst_ip;
  m.dst_port = dst_port;
  m.data.assign(header.begin(), header.end());
  m.gather.assign(segs.begin(), segs.end());
  m.gather_pool = &pool;
  for (const GatherSeg& g : m.gather) {
    pool.restore_ref(g.data_h);  // held until ack or give-up
    m.gather_len += g.len;
  }
  m.granted = std::min<u64>(
      m.total_len(),
      static_cast<u64>(opts_.unscheduled_segs) * kHomaSegPayload);
  m.sent = 0;
  m.done = false;
  m.retries = 0;
  m.timer_gen = 0;
  auto [it, inserted] = tx_.emplace(id, std::move(m));
  tx_from(it->second, id, it->second.granted);
  arm_tx_timer(id, it->second);
  msgs_tx_++;
  return id;
}

void HomaEndpoint::release_gather(TxMsg& m) {
  if (m.gather_pool == nullptr) return;
  for (const GatherSeg& g : m.gather) m.gather_pool->unref_data(g.data_h, g.cap);
  m.gather.clear();
  m.gather_pool = nullptr;
}

void HomaEndpoint::abandon() {
  // No pool traffic: the owning host is power-cut and its pools are dead
  // objects. Leaked volatile metadata is exactly what a real power cut
  // leaves behind. Bump every timer generation so in-flight timer events
  // find nothing to do.
  tx_.clear();
  rx_.clear();
  delivered_.clear();
}

// Builds and sends one wire segment of a gather message starting at
// message offset `off`: Homa header + any header-region bytes in the
// linear part, payload ranges attached as refcounted frags (the NIC's
// scatter-gather DMA reads them in place — no CPU copy, PR 8's idiom).
// May send less than `want` when the frag slots run out; reassembly is
// offset-based so variable segment lengths are fine.
void HomaEndpoint::tx_gather_seg(TxMsg& m, u64 msg_id, u64 off, u64 want) {
  const u64 hdr_len = m.data.size();
  const u64 lin =
      off < hdr_len ? std::min<u64>(want, hdr_len - off) : 0;
  PktBufPool& pool = *m.gather_pool;
  PktBuf* pb =
      pool.alloc(static_cast<u32>(kUdpAllHdrLen + kHomaHdrLen + lin));
  if (pb == nullptr) return;  // pool exhausted: the sender timer retries
  pb->len = static_cast<u32>(kUdpAllHdrLen + kHomaHdrLen + lin);
  pb->payload_off = static_cast<u16>(kUdpAllHdrLen);
  u8* base = pool.writable(*pb, pb->len).data();
  WireHomaHdr h{static_cast<u8>(HomaPktType::data), msg_id,
                static_cast<u32>(off), static_cast<u32>(m.total_len()), 0};
  encode_homa(h, {base + kUdpAllHdrLen, kHomaHdrLen});
  if (lin > 0) {
    std::memcpy(base + kUdpAllHdrLen + kHomaHdrLen, m.data.data() + off, lin);
    udp_.env().clock().advance(udp_.env().cost.copy_cost(lin));
  }
  pool.arena().mark_dirty(pb->data_h, pb->len);

  u64 filled = lin;
  // Bytes of gather space before this segment's first payload byte.
  u64 skip = off + lin >= hdr_len ? off + lin - hdr_len : 0;
  for (const GatherSeg& g : m.gather) {
    if (filled >= want || pb->nr_frags >= PktBuf::kMaxFrags) break;
    if (skip >= g.len) {
      skip -= g.len;
      continue;
    }
    const u32 take =
        static_cast<u32>(std::min<u64>(g.len - skip, want - filled));
    (void)pool.add_frag(*pb, g.data_h, take, g.off + static_cast<u32>(skip),
                        g.cap);
    filled += take;
    skip = 0;
  }
  (void)udp_.send_pkt_to(m.dst_ip, m.dst_port, port_, pb);
  m.sent = off + filled;
}

void HomaEndpoint::tx_from(TxMsg& m, u64 msg_id, u64 upto) {
  const u64 total = m.total_len();
  upto = std::min<u64>(upto, total);
  while (m.sent < upto || (total == 0 && m.sent == 0)) {
    const u64 off = m.sent;
    const u64 len = std::min<u64>(kHomaSegPayload, total - off);
    charge_proc();
    if (m.gather_pool != nullptr) {
      tx_gather_seg(m, msg_id, off, len);
      if (m.sent == off) break;  // pool exhausted; retry from the timer
      continue;
    }
    std::vector<u8> payload(kHomaHdrLen + len);
    WireHomaHdr h{static_cast<u8>(HomaPktType::data), msg_id,
                  static_cast<u32>(off), static_cast<u32>(total), 0};
    encode_homa(h, payload);
    if (len > 0) std::memcpy(payload.data() + kHomaHdrLen, m.data.data() + off, len);
    (void)udp_.send_to(m.dst_ip, m.dst_port, port_, payload);
    m.sent += len;
    if (total == 0) break;  // zero-length message: one bare segment
  }
}

void HomaEndpoint::send_ctl(u32 dst_ip, u16 dst_port, HomaPktType type,
                            u64 msg_id, u32 offset, u32 total, u32 grant) {
  charge_proc();
  std::vector<u8> payload(kHomaHdrLen);
  encode_homa({static_cast<u8>(type), msg_id, offset, total, grant}, payload);
  (void)udp_.send_to(dst_ip, dst_port, port_, payload);
}

void HomaEndpoint::arm_tx_timer(u64 msg_id, TxMsg& m) {
  const u64 gen = ++m.timer_gen;
  // Exponential backoff: each consecutive timeout stretches the wait by
  // backoff_mult (1.0 = the legacy fixed interval).
  SimTime wait = opts_.sender_timeout_ns;
  for (int i = 0; i < m.retries; i++) {
    wait = static_cast<SimTime>(static_cast<double>(wait) * opts_.backoff_mult);
  }
  udp_.env().engine.schedule_in(wait, [this, msg_id, gen] {
    auto it = tx_.find(msg_id);
    if (it == tx_.end() || it->second.timer_gen != gen || it->second.done) {
      return;
    }
    TxMsg& m2 = it->second;
    if (++m2.retries > opts_.max_retries) {
      release_gather(m2);
      tx_.erase(it);  // give up; the message is lost
      give_ups_++;
      if (on_give_up) on_give_up(msg_id);
      return;
    }
    // No grant/ack progress: replay everything granted so far.
    timeouts_++;
    resends_++;
    m2.sent = 0;
    tx_from(m2, msg_id, m2.granted);
    arm_tx_timer(msg_id, m2);
  });
}

void HomaEndpoint::arm_rx_timer(u64 key, RxMsg& m) {
  const u64 gen = ++m.timer_gen;
  udp_.env().engine.schedule_in(opts_.resend_timeout_ns, [this, key, gen] {
    auto it = rx_.find(key);
    if (it == rx_.end() || it->second.timer_gen != gen) return;
    RxMsg& m2 = it->second;
    if (++m2.nudges > opts_.max_retries) {
      for (auto& [off, pb] : m2.segs) udp_.pool().free(pb);
      rx_.erase(it);
      return;
    }
    // Find the first gap and ask for it again.
    u32 expect = 0;
    for (const auto& [off, pb] : m2.segs) {
      if (off != expect) break;
      expect = off + static_cast<u32>(pb->payload_len() - kHomaHdrLen);
    }
    resends_++;
    send_ctl(m2.src_ip, m2.src_port, HomaPktType::resend, m2.msg_id, expect,
             static_cast<u32>(m2.total_len),
             static_cast<u32>(m2.granted));
    arm_rx_timer(key, it->second);
  });
}

void HomaEndpoint::rx(u32 src_ip, u16 src_port, PktBuf* pb) {
  charge_proc();
  const auto payload = udp_.pool().payload(*pb);
  const auto h = decode_homa(payload);
  if (!h.has_value()) {
    udp_.pool().free(pb);
    return;
  }
  switch (static_cast<HomaPktType>(h->type)) {
    case HomaPktType::data:
      rx_data(src_ip, src_port, pb, h->msg_id, h->offset, h->total_len);
      return;

    case HomaPktType::grant: {
      auto it = tx_.find(h->msg_id);
      if (it != tx_.end() && !it->second.done) {
        TxMsg& m = it->second;
        m.granted = std::max<u64>(m.granted, h->grant);
        m.retries = 0;  // the receiver is alive and granting
        tx_from(m, h->msg_id, m.granted);
        arm_tx_timer(h->msg_id, m);
      }
      udp_.pool().free(pb);
      return;
    }

    case HomaPktType::resend: {
      auto it = tx_.find(h->msg_id);
      if (it != tx_.end() && !it->second.done) {
        TxMsg& m = it->second;
        resends_++;
        m.sent = std::min<u64>(m.sent, h->offset);  // rewind to the gap
        // A resend nudge doubles as the grant carrier: if every grant
        // frame is lost, the receiver's timer is the only way the sender
        // learns its window — and it proves the receiver alive, so the
        // abandon budget starts over.
        m.granted = std::max<u64>(m.granted, h->grant);
        m.retries = 0;
        tx_from(m, h->msg_id, m.granted);
        arm_tx_timer(h->msg_id, m);
      }
      udp_.pool().free(pb);
      return;
    }

    case HomaPktType::ack: {
      auto it = tx_.find(h->msg_id);
      if (it != tx_.end()) {
        it->second.done = true;
        it->second.timer_gen++;
        release_gather(it->second);
        tx_.erase(it);
        if (on_sent) on_sent(h->msg_id);
      }
      udp_.pool().free(pb);
      return;
    }
  }
  udp_.pool().free(pb);
}

void HomaEndpoint::rx_data(u32 src_ip, u16 src_port, PktBuf* pb, u64 msg_id,
                           u32 offset, u32 total_len) {
  const u64 key = rx_key(msg_id, src_ip, src_port);
  if (delivered_.contains(key)) {
    // Already delivered; the sender missed our ACK. Re-ack, drop.
    udp_.pool().free(pb);
    send_ctl(src_ip, src_port, HomaPktType::ack, msg_id, 0, total_len, 0);
    return;
  }
  auto [it, inserted] = rx_.try_emplace(key);
  RxMsg& m = it->second;
  if (inserted) {
    m.src_ip = src_ip;
    m.src_port = src_port;
    m.msg_id = msg_id;
    m.total_len = total_len;
    m.granted = std::min<u64>(
        total_len, static_cast<u64>(opts_.unscheduled_segs) * kHomaSegPayload);
  }
  const u32 seg_len = static_cast<u32>(pb->payload_len() - kHomaHdrLen);
  if (m.segs.contains(offset)) {
    udp_.pool().free(pb);  // duplicate
  } else {
    m.segs.emplace(offset, pb);
    m.received += seg_len;
    m.nudges = 0;  // data progress restarts the give-up budget
  }

  if (m.received >= m.total_len) {
    // Complete: ack the sender and deliver the packets.
    send_ctl(src_ip, src_port, HomaPktType::ack, msg_id, 0,
             static_cast<u32>(m.total_len), 0);
    m.timer_gen++;  // cancel the resend timer
    delivered_.insert(key);
    RxMsg done = std::move(m);
    rx_.erase(it);
    deliver(msg_id, std::move(done));
    return;
  }

  // Grant more: keep grant_window_segs of runway past what has arrived.
  const u64 target = std::min<u64>(
      m.total_len,
      m.received + static_cast<u64>(opts_.grant_window_segs) * kHomaSegPayload);
  if (target > m.granted) {
    m.granted = target;
    grants_tx_++;
    send_ctl(src_ip, src_port, HomaPktType::grant, msg_id, 0,
             static_cast<u32>(m.total_len), static_cast<u32>(target));
  }
  arm_rx_timer(key, m);
}

void HomaEndpoint::deliver(u64 msg_id, RxMsg&& m) {
  msgs_rx_++;
  HomaDelivery d;
  d.src_ip = m.src_ip;
  d.src_port = m.src_port;
  d.msg_id = msg_id;
  d.total_len = m.total_len;
  for (auto& [off, pb] : m.segs) {
    d.pkts.push_back(pb);
    d.offs.push_back(static_cast<u32>(pb->payload_off + kHomaHdrLen));
    d.lens.push_back(static_cast<u32>(pb->payload_len() - kHomaHdrLen));
  }
  if (on_message) {
    on_message(std::move(d));
  } else {
    for (auto* pb : d.pkts) udp_.pool().free(pb);
  }
}

}  // namespace papm::net
