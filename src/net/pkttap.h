// Packet tap — the §4.1 multi-consumer exhibit.
//
// "[Host network stacks share] the packets between multiple consumers,
// such as receiver application and packet capture pseudo device." The
// clone mechanism makes this free of copies: the tap holds clones whose
// refcounts keep the data alive while the application (or a storage
// stack that adopted the buffers) proceeds independently.
//
// Wire it between the NIC and the stack:
//   tap.attach(nic, [stack](PktBuf* pb){ stack.rx(pb); });
#pragma once

#include <deque>
#include <functional>

#include "net/pktbuf.h"
#include "obs/metrics.h"

namespace papm::net {

class PktTap {
 public:
  struct Captured {
    PktBuf* clone;    // shares data with the original packet
    SimTime at;       // capture timestamp
  };

  // `pool` must be the pool the tapped packets come from.
  PktTap(PktBufPool& pool, std::size_t capacity)
      : pool_(&pool), capacity_(capacity) {}

  ~PktTap() { clear(); }
  PktTap(const PktTap&) = delete;
  PktTap& operator=(const PktTap&) = delete;

  // Observes a packet on its way to `next`: clones it into the capture
  // ring (evicting the oldest beyond capacity) and passes the original
  // through untouched. Capture is best-effort: when the pool's metadata
  // limit leaves no descriptor for the clone, the capture is dropped
  // (counted) and the original still flows — a tap must never stall RX.
  void tap(PktBuf* pb, const std::function<void(PktBuf*)>& next) {
    if (enabled_) {
      PktBuf* c = pool_->clone(*pb);
      if (c == nullptr) {
        dropped_++;
        obs::inc(m_dropped_);
      } else {
        ring_.push_back({c, pool_->env().now()});
        captured_++;
        obs::inc(m_captured_);
        if (ring_.size() > capacity_) {
          pool_->free(ring_.front().clone);
          ring_.pop_front();
          evicted_++;
          obs::inc(m_evicted_);
        }
      }
    }
    next(pb);
  }

  // Iterates the capture ring oldest-first; fn(Captured) returns false to
  // stop. Payload via pool().payload(*c.clone).
  template <typename Fn>
  void each(Fn&& fn) const {
    for (const auto& c : ring_) {
      if (!fn(c)) return;
    }
  }

  void set_enabled(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] std::size_t size() const noexcept { return ring_.size(); }
  [[nodiscard]] u64 captured() const noexcept { return captured_; }
  [[nodiscard]] u64 evicted() const noexcept { return evicted_; }
  [[nodiscard]] u64 dropped() const noexcept { return dropped_; }
  [[nodiscard]] PktBufPool& pool() noexcept { return *pool_; }

  // Mirrors capture activity into registry counters: tap.captured /
  // tap.evicted / tap.dropped.
  void set_metrics(obs::MetricRegistry* r) {
    m_captured_ = r != nullptr ? &r->counter("tap.captured") : nullptr;
    m_evicted_ = r != nullptr ? &r->counter("tap.evicted") : nullptr;
    m_dropped_ = r != nullptr ? &r->counter("tap.dropped") : nullptr;
  }

  void clear() {
    for (auto& c : ring_) pool_->free(c.clone);
    ring_.clear();
  }

 private:
  PktBufPool* pool_;
  std::size_t capacity_;
  std::deque<Captured> ring_;
  bool enabled_ = true;
  u64 captured_ = 0;
  u64 evicted_ = 0;
  u64 dropped_ = 0;
  obs::Counter* m_captured_ = nullptr;
  obs::Counter* m_evicted_ = nullptr;
  obs::Counter* m_dropped_ = nullptr;
};

}  // namespace papm::net
