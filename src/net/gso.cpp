#include "net/gso.h"

#include <cstring>

namespace papm::net {

PktBuf* make_super(PktBufPool& pool, std::span<const u8> payload, u32 headroom) {
  if (payload.size() > static_cast<u64>(PktBuf::kMaxFrags) * kFragPage) {
    return nullptr;
  }
  PktBuf* pb = pool.alloc(headroom);
  if (pb == nullptr) return nullptr;
  pb->len = headroom;
  pb->payload_off = static_cast<u16>(headroom);

  std::size_t off = 0;
  while (off < payload.size()) {
    const u32 take = static_cast<u32>(std::min<std::size_t>(
        kFragPage, payload.size() - off));
    auto h = pool.arena().alloc(take);
    if (!h.ok()) {
      pool.free(pb);
      return nullptr;
    }
    std::memcpy(pool.arena().data(h.value(), take), payload.data() + off, take);
    pool.arena().mark_dirty(h.value(), take);
    if (!pool.add_frag(*pb, h.value(), take).ok()) {
      pool.arena().free(h.value(), take);
      pool.free(pb);
      return nullptr;
    }
    off += take;
  }
  return pb;
}

std::vector<u8> super_payload(PktBufPool& pool, PktBuf& super) {
  std::vector<u8> out;
  out.reserve(super.total_len() - super.payload_off);
  if (super.len > super.payload_off) {
    const u8* base = pool.data(super);
    out.insert(out.end(), base + super.payload_off, base + super.len);
  }
  for (int i = 0; i < super.nr_frags; i++) {
    const auto& fr = super.frags[i];
    const u8* f = pool.arena().data(fr.data_h, fr.off + fr.len) + fr.off;
    out.insert(out.end(), f, f + fr.len);
  }
  return out;
}

std::vector<PktBuf*> gso_segment(PktBufPool& pool, PktBuf& super,
                                 bool charge_copy) {
  const std::vector<u8> payload = super_payload(pool, super);
  auto& env = pool.env();
  if (charge_copy) {
    env.clock().advance(env.cost.copy_cost(payload.size()));
  }
  std::vector<PktBuf*> segs;
  std::size_t off = 0;
  while (off < payload.size()) {
    const u32 take =
        static_cast<u32>(std::min<std::size_t>(kMss, payload.size() - off));
    PktBuf* seg = pool.alloc(static_cast<u32>(kAllHdrLen) + take);
    if (seg == nullptr) {
      for (PktBuf* s : segs) pool.free(s);
      return {};
    }
    seg->len = static_cast<u32>(kAllHdrLen) + take;
    seg->payload_off = kAllHdrLen;
    std::memcpy(pool.writable(*seg, seg->len).data() + kAllHdrLen,
                payload.data() + off, take);
    pool.arena().mark_dirty(seg->data_h + kAllHdrLen, take);
    segs.push_back(seg);
    off += take;
  }
  return segs;
}

}  // namespace papm::net
