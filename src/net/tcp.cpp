#include "net/tcp.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace papm::net {

namespace {

constexpr u32 kWndShift = 5;  // fixed window scale (as if negotiated)
constexpr SimTime kMinRto = 400 * kNsPerUs;
constexpr SimTime kMaxRto = 20 * kNsPerMs;
constexpr u32 kInitCwnd = 10 * kMss;
constexpr u32 kInitSsthresh = 256 * 1024;

MacAddr mac_for_ip(u32 ip) {
  MacAddr m;
  m.b[0] = 0x02;  // locally administered
  m.b[1] = 0x00;
  m.b[2] = static_cast<u8>(ip >> 24);
  m.b[3] = static_cast<u8>(ip >> 16);
  m.b[4] = static_cast<u8>(ip >> 8);
  m.b[5] = static_cast<u8>(ip);
  return m;
}

constexpr u32 logical_len(u32 payload_len, u8 flags) noexcept {
  return payload_len + ((flags & (kTcpSyn | kTcpFin)) != 0 ? 1 : 0);
}

}  // namespace

// --- TcpStack ---------------------------------------------------------------

TcpStack::TcpStack(sim::Env& env, NetIf& netif, PktBufPool& pool, Options opts)
    : env_(env),
      netif_(netif),
      pool_(pool),
      opts_(opts),
      own_cpu_(env, /*cores=*/0),
      cpu_(&own_cpu_),
      next_ephemeral_(opts.ephemeral_base) {
  if (opts_.metrics != nullptr) {
    m_seg_rx_ = &opts_.metrics->counter("tcp.segments_rx");
    m_seg_tx_ = &opts_.metrics->counter("tcp.segments_tx");
    m_csum_fail_ = &opts_.metrics->counter("tcp.csum_failures");
    m_rtx_ = &opts_.metrics->counter("tcp.retransmits");
  }
}

void TcpStack::charge_rx(bool pure_ack) {
  const auto& c = env_.cost;
  if (pure_ack) {
    env_.clock().advance(c.scaled(c.tcp_ack_process_ns));
  } else {
    env_.clock().advance(
        c.scaled(opts_.busy_poll ? c.server_stack_rx_ns : c.client_stack_rx_ns));
  }
}

void TcpStack::charge_tx() {
  const auto& c = env_.cost;
  env_.clock().advance(
      c.scaled(opts_.busy_poll ? c.server_stack_tx_ns : c.client_stack_tx_ns));
}

TcpConn* TcpStack::connect(u32 dst_ip, u16 dst_port) {
  const u16 lport = next_ephemeral_++;
  auto conn = std::unique_ptr<TcpConn>(
      new TcpConn(*this, opts_.ip, lport, dst_ip, dst_port));
  TcpConn* c = conn.get();
  conns_.emplace(FlowKey{dst_ip, dst_port, lport}, std::move(conn));

  c->iss_ = next_iss_;
  next_iss_ += 1 << 20;
  c->snd_una_ = c->iss_;
  c->snd_nxt_ = c->iss_ + 1;
  c->snd_buf_seq_ = c->snd_nxt_;
  c->cwnd_ = kInitCwnd;
  c->ssthresh_ = kInitSsthresh;
  c->state_ = TcpState::syn_sent;
  run_cpu([&] {
    charge_tx();
    c->send_segment(kTcpSyn, c->iss_, {}, /*queue_rtx=*/true);
  });
  return c;
}

Status TcpStack::listen(u16 port, std::function<void(TcpConn&)> on_accept) {
  if (listeners_.contains(port)) return Errc::already_exists;
  listeners_[port] = std::move(on_accept);
  return Errc::ok;
}

std::unique_ptr<TcpConn> TcpStack::extract(TcpConn* c) {
  if (c == nullptr) return nullptr;
  const FlowKey key{c->peer_ip_, c->peer_port_, c->local_port_};
  auto it = conns_.find(key);
  if (it == conns_.end() || it->second.get() != c) return nullptr;
  std::unique_ptr<TcpConn> conn = std::move(it->second);
  conns_.erase(it);
  return conn;
}

void TcpStack::adopt(std::unique_ptr<TcpConn> conn) {
  if (conn == nullptr) return;
  conn->stack_ = this;  // timers and TX resolve the new stack from here on
  const FlowKey key{conn->peer_ip_, conn->peer_port_, conn->local_port_};
  conns_.emplace(key, std::move(conn));
}

void TcpStack::rx(PktBuf* pb) {
  run_cpu([&] { rx_locked(pb); });
}

void TcpStack::rx_locked(PktBuf* pb) {
  segments_rx_++;
  obs::inc(m_seg_rx_);

  // Software checksum verification when the NIC did not already do it.
  if (!pb->csum_verified) {
    const u8* base = pool_.data(*pb);
    const std::span<const u8> tcp_seg(base + pb->l4_off, pb->len - pb->l4_off);
    env_.clock().advance(env_.cost.inet_csum_cost(tcp_seg.size()));
    const u32 sum = tcp_pseudo_sum(pb->ip.src, pb->ip.dst, tcp_seg.size());
    if (inet_fold(sum + inet_sum(tcp_seg)) != 0xffff) {
      csum_failures_++;
      obs::inc(m_csum_fail_);
      pool_.free(pb);
      return;
    }
    pb->csum_verified = true;
    pb->payload_csum = inet_checksum(
        std::span<const u8>(base + pb->payload_off, pb->payload_len()));
  }

  const TcpHeader& h = pb->tcp;
  const bool pure_ack = pb->payload_len() == 0 &&
                        (h.flags & (kTcpSyn | kTcpFin | kTcpRst)) == 0;
  charge_rx(pure_ack);

  const FlowKey key{pb->ip.src, h.src_port, h.dst_port};
  auto it = conns_.find(key);
  if (it != conns_.end()) {
    it->second->rx(pb);
    return;
  }
  // New flow: a SYN for a listening port?
  auto lit = listeners_.find(h.dst_port);
  if ((h.flags & kTcpSyn) != 0 && (h.flags & kTcpAck) == 0 &&
      lit != listeners_.end()) {
    auto conn = std::unique_ptr<TcpConn>(
        new TcpConn(*this, opts_.ip, h.dst_port, pb->ip.src, h.src_port));
    TcpConn* c = conn.get();
    c->acceptor_cb_ = lit->second;
    conns_.emplace(key, std::move(conn));
    c->rx_listen_syn(pb);
    return;
  }
  pool_.free(pb);  // no RST generation for unknown flows; just drop
}

void TcpStack::output(TcpConn& c, u8 flags, u32 seq, u32 ack,
                      std::span<const u8> payload, PktBuf** rtx_clone) {
  PktBuf* pb = pool_.alloc(static_cast<u32>(kAllHdrLen + payload.size()));
  if (pb == nullptr) return;  // arena exhausted; RTO will recover
  u8* base = pool_.writable(*pb, static_cast<u32>(kAllHdrLen + payload.size())).data();

  pb->payload_off = kAllHdrLen;
  pb->len = static_cast<u32>(kAllHdrLen + payload.size());
  if (!payload.empty()) {
    std::memcpy(base + kAllHdrLen, payload.data(), payload.size());
    pool_.arena().mark_dirty(pb->data_h + kAllHdrLen, payload.size());
  }
  output_pkt(c, pb, flags, seq, ack, rtx_clone);
}

void TcpStack::output_pkt(TcpConn& c, PktBuf* pb, u8 flags, u32 seq, u32 ack,
                          PktBuf** rtx_clone) {
  assert(pb->payload_off == kAllHdrLen && "need full header room");
  pb->l2_off = 0;
  pb->l3_off = kEthHdrLen;
  pb->l4_off = kEthHdrLen + kIpHdrLen;
  // Mark the TX queue (per-core doorbell) and resolve data through the
  // owning pool: zero-copy responses may carry another shard's buffers.
  pb->rss_queue = static_cast<u16>(opts_.core >= 0 ? opts_.core : 0);
  u8* base = pb->owner->writable(*pb, pb->len).data();
  const std::size_t payload_len = pb->total_len() - kAllHdrLen;

  EthHeader eth;
  eth.src = netif_.mac();
  eth.dst = mac_for_ip(c.peer_ip_);
  encode_eth(eth, {base, kEthHdrLen});

  IpHeader ip;
  ip.src = opts_.ip;
  ip.dst = c.peer_ip_;
  ip.total_len = static_cast<u16>(kIpHdrLen + kTcpHdrLen + payload_len);
  encode_ip(ip, {base + kEthHdrLen, kIpHdrLen});

  const std::size_t adv_bytes =
      opts_.rcv_buf > c.rcv_queued_ ? opts_.rcv_buf - c.rcv_queued_ : 0;
  TcpHeader tcp;
  tcp.src_port = c.local_port_;
  tcp.dst_port = c.peer_port_;
  tcp.seq = seq;
  tcp.ack = ack;
  tcp.flags = flags;
  tcp.window = static_cast<u16>(std::min<std::size_t>(adv_bytes >> kWndShift, 0xffff));
  tcp.checksum = 0;
  encode_tcp(tcp, {base + kEthHdrLen + kIpHdrLen, kTcpHdrLen});

  if (!opts_.csum_offload_tx) {
    // Software checksumming: charge per byte covered; gather frag bytes.
    env_.clock().advance(env_.cost.inet_csum_cost(kTcpHdrLen + payload_len));
    u32 sum = tcp_pseudo_sum(ip.src, ip.dst, kTcpHdrLen + payload_len);
    sum += inet_sum({base + pb->l4_off, kTcpHdrLen});
    sum += inet_sum({base + kAllHdrLen, static_cast<std::size_t>(pb->len) - kAllHdrLen});
    for (int i = 0; i < pb->nr_frags; i++) {
      const auto& fr = pb->frags[i];
      // Linear part and every frag here have even lengths in practice;
      // odd-length middle chunks would need RFC 1071 swap handling.
      sum += inet_sum({pb->owner->arena().data(fr.data_h, fr.off + fr.len) +
                           fr.off,
                       fr.len});
    }
    const u16 csum = static_cast<u16>(~inet_fold(sum));
    base[pb->l4_off + 16] = static_cast<u8>(csum >> 8);
    base[pb->l4_off + 17] = static_cast<u8>(csum & 0xff);
    tcp.checksum = csum;
  }
  pb->owner->arena().mark_dirty(pb->data_h, kAllHdrLen);

  pb->ip = ip;
  pb->tcp = tcp;
  pb->tstamp = env_.now();

  if (rtx_clone != nullptr) *rtx_clone = pb->owner->clone(*pb);

  c.ack_pending_ = false;  // every segment carries the current ack
  segments_tx_++;
  obs::inc(m_seg_tx_);
  netif_.transmit(pb);
}

// --- TcpConn -----------------------------------------------------------------

TcpConn::TcpConn(TcpStack& stack, u32 local_ip, u16 local_port, u32 peer_ip,
                 u16 peer_port)
    : stack_(&stack),
      local_ip_(local_ip),
      peer_ip_(peer_ip),
      local_port_(local_port),
      peer_port_(peer_port) {}

void TcpConn::rx_listen_syn(PktBuf* pb) {
  const TcpHeader& h = pb->tcp;
  irs_ = h.seq;
  rcv_nxt_ = h.seq + 1;
  snd_wnd_ = static_cast<u32>(h.window) << kWndShift;

  iss_ = stack_->next_iss_;
  stack_->next_iss_ += 1 << 20;
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;
  snd_buf_seq_ = snd_nxt_;
  cwnd_ = kInitCwnd;
  ssthresh_ = kInitSsthresh;
  state_ = TcpState::syn_rcvd;

  stack_->charge_tx();
  send_segment(kTcpSyn | kTcpAck, iss_, {}, /*queue_rtx=*/true);
  PktBufPool::release(pb);
}

void TcpConn::rx(PktBuf* pb) {
  const TcpHeader h = pb->tcp;

  if ((h.flags & kTcpRst) != 0) {
    PktBufPool::release(pb);
    become_closed();
    return;
  }

  switch (state_) {
    case TcpState::syn_sent:
      if ((h.flags & (kTcpSyn | kTcpAck)) == (kTcpSyn | kTcpAck) &&
          h.ack == iss_ + 1) {
        irs_ = h.seq;
        rcv_nxt_ = h.seq + 1;
        snd_wnd_ = static_cast<u32>(h.window) << kWndShift;
        process_ack(h);
        enter_established();
        ack_pending_ = true;
        maybe_send_pending_ack();
      }
      PktBufPool::release(pb);
      return;

    case TcpState::syn_rcvd:
      if ((h.flags & kTcpAck) != 0 && seq_ge(h.ack, iss_ + 1)) {
        process_ack(h);
        enter_established();
        if (pb->payload_len() > 0) {
          rx_data(pb);  // takes ownership
          maybe_send_pending_ack();
          return;
        }
      }
      PktBufPool::release(pb);
      return;

    case TcpState::closed:
      PktBufPool::release(pb);
      return;

    default:
      break;
  }

  // Established and closing states.
  process_ack(h);

  if (pb->payload_len() > 0) {
    rx_data(pb);  // takes ownership of pb
  } else {
    if ((h.flags & kTcpFin) != 0) {
      fin_received_ = true;
      fin_seq_ = h.seq;
    }
    PktBufPool::release(pb);
  }

  // Consume an in-order FIN once all data before it is delivered.
  if (fin_received_ && rcv_nxt_ == fin_seq_) {
    rcv_nxt_ = fin_seq_ + 1;
    ack_pending_ = true;
    if (state_ == TcpState::established) {
      state_ = TcpState::close_wait;
      if (on_readable) on_readable(*this);  // EOF signal
    } else if (state_ == TcpState::fin_wait_1 || state_ == TcpState::fin_wait_2) {
      // Simultaneous/normal close; skip TIME_WAIT in simulation.
      maybe_send_pending_ack();
      become_closed();
      return;
    }
  }

  try_send();
  maybe_send_pending_ack();
}

void TcpConn::process_ack(const TcpHeader& h) {
  if ((h.flags & kTcpAck) == 0) return;
  snd_wnd_ = static_cast<u32>(h.window) << kWndShift;
  const u32 ack = h.ack;
  if (seq_gt(ack, snd_nxt_)) return;  // acks data we never sent

  if (seq_gt(ack, snd_una_)) {
    dup_acks_ = 0;
    while (!rtx_q_.empty()) {
      RtxEntry& e = rtx_q_.front();
      if (!seq_ge(ack, e.seq + logical_len(e.len, e.flags))) break;
      if (!e.retransmitted) {
        update_rtt(stack_->env().now() - e.sent_at);
      }
      PktBufPool::release(e.clone);
      rtx_q_.pop_front();
    }
    // Congestion window growth.
    if (cwnd_ < ssthresh_) {
      cwnd_ += kMss;  // slow start
    } else {
      cwnd_ += std::max<u32>(1, kMss * kMss / cwnd_);  // congestion avoidance
    }
    snd_una_ = ack;
    if (rtx_q_.empty()) {
      rto_armed_ = false;
      rto_generation_++;
    } else {
      arm_rto();
    }
    // FIN acked?
    if (fin_sent_ && seq_ge(ack, snd_nxt_)) {
      if (state_ == TcpState::fin_wait_1) {
        state_ = TcpState::fin_wait_2;
      } else if (state_ == TcpState::last_ack) {
        become_closed();
        return;
      }
    }
    try_send();
  } else if (ack == snd_una_ && !rtx_q_.empty()) {
    if (++dup_acks_ == 3) {
      // Fast retransmit.
      RtxEntry& e = rtx_q_.front();
      const u32 inflight = snd_nxt_ - snd_una_;
      ssthresh_ = std::max(inflight / 2, static_cast<u32>(2 * kMss));
      cwnd_ = ssthresh_ + 3 * kMss;
      retransmits_++;
      obs::inc(stack_->m_rtx_);
      e.retransmitted = true;
      e.sent_at = stack_->env().now();
      PktBuf* copy = e.clone->owner->clone(*e.clone);
      stack_->charge_tx();
      stack_->output_pkt(*this, copy, e.flags, e.seq, rcv_nxt_, nullptr);
      arm_rto();
    }
  }
}

void TcpConn::rx_data(PktBuf* pb) {
  const u32 seq = pb->tcp.seq;
  const u32 len = pb->payload_len();
  ack_pending_ = true;

  if (seq_le(seq + len, rcv_nxt_)) {
    PktBufPool::release(pb);  // complete duplicate
    return;
  }
  if (seq_lt(seq, rcv_nxt_)) {
    // Partial overlap: trim the already-received prefix.
    const u32 trim = rcv_nxt_ - seq;
    pb->trim_payload(trim);
    pb->tcp.seq = rcv_nxt_;
  }
  if (pb->tcp.seq == rcv_nxt_) {
    rcv_nxt_ += pb->payload_len();
    rcv_q_.push_back(pb);
    rcv_queued_ += pb->payload_len();
    deliver_in_order();
    if (on_readable) on_readable(*this);
    return;
  }
  // Out of order: stash in the rbtree (the §4.1 structure). Exact
  // duplicates are dropped.
  pb->rb_key = pb->tcp.seq;
  if (ooo_tree_.find(pb->rb_key) != nullptr) {
    PktBufPool::release(pb);
    return;
  }
  if (rcv_queued_ + ooo_tree_.size() * kMss > stack_->options().rcv_buf) {
    PktBufPool::release(pb);  // no buffer space; sender will retransmit
    return;
  }
  ooo_tree_.insert(*pb);
}

void TcpConn::deliver_in_order() {
  while (PktBuf* first = ooo_tree_.first()) {
    if (seq_gt(first->rb_key, rcv_nxt_)) break;
    ooo_tree_.erase(*first);
    if (seq_le(first->rb_key + first->payload_len(), rcv_nxt_)) {
      PktBufPool::release(first);  // fully duplicate by now
      continue;
    }
    if (seq_lt(first->rb_key, rcv_nxt_)) {
      const u32 trim = rcv_nxt_ - first->rb_key;
      first->trim_payload(trim);
      first->tcp.seq = rcv_nxt_;
    }
    rcv_nxt_ += first->payload_len();
    rcv_q_.push_back(first);
    rcv_queued_ += first->payload_len();
  }
}

Status TcpConn::send(std::span<const u8> data) {
  if (state_ != TcpState::established && state_ != TcpState::close_wait) {
    return Errc::not_connected;
  }
  if (fin_queued_) return Errc::invalid_argument;
  // User-to-kernel copy.
  stack_->env().clock().advance(stack_->env().cost.copy_cost(data.size()));
  snd_buf_.insert(snd_buf_.end(), data.begin(), data.end());
  try_send();
  return Errc::ok;
}

Status TcpConn::send_pkt(PktBuf* pb) {
  if (state_ != TcpState::established && state_ != TcpState::close_wait) {
    PktBufPool::release(pb);
    return Errc::not_connected;
  }
  if (!snd_buf_.empty() || fin_queued_) {
    PktBufPool::release(pb);
    return Errc::would_block;  // cannot interleave with buffered bytes
  }
  const u32 len = static_cast<u32>(pb->payload_total());
  if (len > kMss) {
    PktBufPool::release(pb);
    return Errc::too_large;  // caller segments via gso first
  }
  const u32 inflight = snd_nxt_ - snd_una_;
  if (inflight + len > std::min(cwnd_, snd_wnd_)) {
    PktBufPool::release(pb);
    return Errc::would_block;  // zero-copy path does not buffer
  }
  const u32 seq = snd_nxt_;
  snd_nxt_ += len;
  snd_buf_seq_ = snd_nxt_;
  PktBuf* clone = nullptr;
  stack_->charge_tx();
  stack_->output_pkt(*this, pb, kTcpAck | kTcpPsh, seq, rcv_nxt_, &clone);
  rtx_q_.push_back({clone, seq, len, kTcpAck | kTcpPsh, stack_->env().now(), false});
  arm_rto();
  return Errc::ok;
}

void TcpConn::try_send() {
  if (state_ != TcpState::established && state_ != TcpState::close_wait &&
      state_ != TcpState::fin_wait_1 && state_ != TcpState::last_ack) {
    return;
  }
  const u32 wnd = std::min(cwnd_, snd_wnd_);
  while (!snd_buf_.empty()) {
    const u32 inflight = snd_nxt_ - snd_una_;
    if (inflight >= wnd) break;
    const u32 room = wnd - inflight;
    const u32 take = std::min<u32>(
        {static_cast<u32>(kMss), static_cast<u32>(snd_buf_.size()), room});
    if (take == 0) break;
    std::vector<u8> payload(snd_buf_.begin(),
                            snd_buf_.begin() + static_cast<long>(take));
    snd_buf_.erase(snd_buf_.begin(), snd_buf_.begin() + static_cast<long>(take));
    const u32 seq = snd_nxt_;
    snd_nxt_ += take;
    snd_buf_seq_ = snd_nxt_;
    stack_->charge_tx();
    send_segment(kTcpAck | kTcpPsh, seq, payload, /*queue_rtx=*/true);
  }
  // Queue the FIN once the send buffer drains.
  if (fin_queued_ && !fin_sent_ && snd_buf_.empty()) {
    const u32 inflight = snd_nxt_ - snd_una_;
    if (inflight < wnd || rtx_q_.empty()) {
      fin_sent_ = true;
      const u32 seq = snd_nxt_;
      snd_nxt_ += 1;
      stack_->charge_tx();
      send_segment(kTcpFin | kTcpAck, seq, {}, /*queue_rtx=*/true);
    }
  }
  // Zero-window probing (persist timer, RFC 9293 §3.8.6.1): send one
  // byte beyond the window; the ACK it elicits reports the reopened
  // window. (A pending FIN with an empty buffer probes via the FIN
  // branch above, which fires when nothing is in flight.)
  if (snd_wnd_ == 0 && !snd_buf_.empty() && rtx_q_.empty()) {
    const u64 gen = ++rto_generation_;
    rto_armed_ = true;
    stack_->env().engine.schedule_in(rto_, [this, gen] {
      if (gen != rto_generation_) return;
      stack_->run_cpu([this] {
        rto_armed_ = false;
        if (snd_wnd_ != 0 || snd_buf_.empty() || !rtx_q_.empty() ||
            state_ == TcpState::closed) {
          try_send();
          return;
        }
        const u8 byte = snd_buf_.front();
        snd_buf_.pop_front();
        const u32 seq = snd_nxt_;
        snd_nxt_ += 1;
        snd_buf_seq_ = snd_nxt_;
        stack_->charge_tx();
        send_segment(kTcpAck | kTcpPsh, seq, {&byte, 1}, /*queue_rtx=*/true);
      });
    });
  }
}

void TcpConn::send_segment(u8 flags, u32 seq, std::span<const u8> payload,
                           bool queue_rtx) {
  PktBuf* clone = nullptr;
  stack_->output(*this, flags, seq, rcv_nxt_, payload,
                queue_rtx ? &clone : nullptr);
  if (queue_rtx && clone != nullptr) {
    rtx_q_.push_back({clone, seq, static_cast<u32>(payload.size()), flags,
                      stack_->env().now(), false});
    arm_rto();
  }
}

void TcpConn::send_ctl(u8 flags) {
  stack_->output(*this, flags, snd_nxt_, rcv_nxt_, {}, nullptr);
}

void TcpConn::enter_established() {
  if (state_ == TcpState::established) return;
  const TcpState prev = state_;
  state_ = TcpState::established;
  if (prev == TcpState::syn_rcvd && acceptor_cb_) acceptor_cb_(*this);
  if (on_established) on_established(*this);
}

std::size_t TcpConn::read(std::span<u8> out) {
  std::size_t copied = 0;
  auto& env = stack_->env();
  while (copied < out.size() && !rcv_q_.empty()) {
    PktBuf* pb = rcv_q_.front();
    const auto payload = pb->owner->payload(*pb);
    const std::size_t avail = payload.size() - rcv_consumed_front_;
    const std::size_t take = std::min(avail, out.size() - copied);
    std::memcpy(out.data() + copied, payload.data() + rcv_consumed_front_, take);
    copied += take;
    rcv_consumed_front_ += take;
    if (rcv_consumed_front_ == payload.size()) {
      rcv_consumed_front_ = 0;
      rcv_q_.pop_front();
      PktBufPool::release(pb);
    }
  }
  rcv_queued_ -= copied;
  env.clock().advance(env.cost.copy_cost(copied));
  return copied;
}

std::vector<PktBuf*> TcpConn::read_pkts() {
  // Partial copying reads and zero-copy reads do not mix.
  assert(rcv_consumed_front_ == 0);
  std::vector<PktBuf*> out(rcv_q_.begin(), rcv_q_.end());
  rcv_q_.clear();
  rcv_queued_ = 0;
  return out;
}

void TcpConn::close() {
  switch (state_) {
    case TcpState::established:
      state_ = TcpState::fin_wait_1;
      fin_queued_ = true;
      try_send();
      break;
    case TcpState::close_wait:
      state_ = TcpState::last_ack;
      fin_queued_ = true;
      try_send();
      break;
    case TcpState::syn_sent:
    case TcpState::syn_rcvd:
      become_closed();
      break;
    default:
      break;
  }
}

void TcpConn::become_closed() {
  if (state_ == TcpState::closed) return;
  state_ = TcpState::closed;
  rto_generation_++;  // cancel timers
  for (auto& e : rtx_q_) PktBufPool::release(e.clone);
  rtx_q_.clear();
  while (PktBuf* p = ooo_tree_.first()) {
    ooo_tree_.erase(*p);
    PktBufPool::release(p);
  }
  if (on_closed) on_closed(*this);
}

void TcpConn::arm_rto() {
  const u64 gen = ++rto_generation_;
  rto_armed_ = true;
  stack_->env().engine.schedule_in(rto_, [this, gen] {
    if (gen != rto_generation_ || !rto_armed_) return;
    stack_->run_cpu([this] { on_rto(); });
  });
}

void TcpConn::on_rto() {
  rto_armed_ = false;
  if (rtx_q_.empty() || state_ == TcpState::closed) return;
  RtxEntry& e = rtx_q_.front();
  retransmits_++;
  obs::inc(stack_->m_rtx_);
  e.retransmitted = true;
  e.sent_at = stack_->env().now();
  // Timeout: collapse the window, back off the timer (RFC 6298 5.5).
  const u32 inflight = snd_nxt_ - snd_una_;
  ssthresh_ = std::max(inflight / 2, static_cast<u32>(2 * kMss));
  cwnd_ = static_cast<u32>(kMss);
  dup_acks_ = 0;
  rto_ = std::min(rto_ * 2, kMaxRto);
  PktBuf* copy = e.clone->owner->clone(*e.clone);
  stack_->charge_tx();
  stack_->output_pkt(*this, copy, e.flags, e.seq, rcv_nxt_, nullptr);
  arm_rto();
}

void TcpConn::update_rtt(SimTime sample) {
  if (srtt_ == 0) {
    srtt_ = sample;
    rttvar_ = sample / 2;
  } else {
    const SimTime err = srtt_ > sample ? srtt_ - sample : sample - srtt_;
    rttvar_ = (3 * rttvar_ + err) / 4;
    srtt_ = (7 * srtt_ + sample) / 8;
  }
  rto_ = std::clamp(srtt_ + std::max<SimTime>(kNsPerUs, 4 * rttvar_), kMinRto,
                    kMaxRto);
}

void TcpConn::maybe_send_pending_ack() {
  if (!ack_pending_ || state_ == TcpState::closed) return;
  stack_->charge_tx();
  send_ctl(kTcpAck);
}

}  // namespace papm::net
