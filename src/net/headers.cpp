#include "net/headers.h"

#include <cstring>

namespace papm::net {
namespace {

void put_u16(std::span<u8> out, std::size_t at, u16 v) {
  out[at] = static_cast<u8>(v >> 8);
  out[at + 1] = static_cast<u8>(v & 0xff);
}
void put_u32(std::span<u8> out, std::size_t at, u32 v) {
  out[at] = static_cast<u8>(v >> 24);
  out[at + 1] = static_cast<u8>(v >> 16);
  out[at + 2] = static_cast<u8>(v >> 8);
  out[at + 3] = static_cast<u8>(v & 0xff);
}
u16 get_u16(std::span<const u8> in, std::size_t at) {
  return static_cast<u16>(in[at] << 8 | in[at + 1]);
}
u32 get_u32(std::span<const u8> in, std::size_t at) {
  return static_cast<u32>(in[at]) << 24 | static_cast<u32>(in[at + 1]) << 16 |
         static_cast<u32>(in[at + 2]) << 8 | in[at + 3];
}

}  // namespace

std::size_t encode_eth(const EthHeader& h, std::span<u8> out) {
  std::memcpy(out.data(), h.dst.b, 6);
  std::memcpy(out.data() + 6, h.src.b, 6);
  put_u16(out, 12, h.ethertype);
  return kEthHdrLen;
}

std::size_t encode_ip(const IpHeader& h, std::span<u8> out) {
  out[0] = 0x45;  // version 4, IHL 5
  out[1] = 0;     // DSCP/ECN
  put_u16(out, 2, h.total_len);
  put_u16(out, 4, h.ident);
  put_u16(out, 6, 0x4000);  // DF, no fragmentation
  out[8] = h.ttl;
  out[9] = h.protocol;
  put_u16(out, 10, 0);  // checksum placeholder
  put_u32(out, 12, h.src);
  put_u32(out, 16, h.dst);
  const u16 csum = inet_checksum(std::span<const u8>(out.data(), kIpHdrLen));
  put_u16(out, 10, csum);
  return kIpHdrLen;
}

std::size_t encode_tcp(const TcpHeader& h, std::span<u8> out) {
  put_u16(out, 0, h.src_port);
  put_u16(out, 2, h.dst_port);
  put_u32(out, 4, h.seq);
  put_u32(out, 8, h.ack);
  out[12] = 0x50;  // data offset 5 words
  out[13] = h.flags;
  put_u16(out, 14, h.window);
  put_u16(out, 16, h.checksum);
  put_u16(out, 18, 0);  // urgent pointer
  return kTcpHdrLen;
}

std::optional<EthHeader> decode_eth(std::span<const u8> in) {
  if (in.size() < kEthHdrLen) return std::nullopt;
  EthHeader h;
  std::memcpy(h.dst.b, in.data(), 6);
  std::memcpy(h.src.b, in.data() + 6, 6);
  h.ethertype = get_u16(in, 12);
  return h;
}

std::optional<IpHeader> decode_ip(std::span<const u8> in) {
  if (in.size() < kIpHdrLen) return std::nullopt;
  if ((in[0] >> 4) != 4 || (in[0] & 0x0f) != 5) return std::nullopt;
  if (inet_fold(inet_sum(in.first(kIpHdrLen))) != 0xffff) return std::nullopt;
  IpHeader h;
  h.total_len = get_u16(in, 2);
  h.ident = get_u16(in, 4);
  h.ttl = in[8];
  h.protocol = in[9];
  h.checksum = get_u16(in, 10);
  h.src = get_u32(in, 12);
  h.dst = get_u32(in, 16);
  if (h.total_len < kIpHdrLen || h.total_len > in.size()) return std::nullopt;
  return h;
}

std::optional<TcpHeader> decode_tcp(std::span<const u8> in) {
  if (in.size() < kTcpHdrLen) return std::nullopt;
  if ((in[12] >> 4) != 5) return std::nullopt;  // options unsupported
  TcpHeader h;
  h.src_port = get_u16(in, 0);
  h.dst_port = get_u16(in, 2);
  h.seq = get_u32(in, 4);
  h.ack = get_u32(in, 8);
  h.flags = in[13];
  h.window = get_u16(in, 14);
  h.checksum = get_u16(in, 16);
  return h;
}

u32 l4_pseudo_sum(u32 src_ip, u32 dst_ip, u8 protocol,
                  std::size_t l4_len) noexcept {
  u32 sum = 0;
  sum += src_ip >> 16;
  sum += src_ip & 0xffff;
  sum += dst_ip >> 16;
  sum += dst_ip & 0xffff;
  sum += protocol;
  sum += static_cast<u32>(l4_len);
  return sum;
}

u16 tcp_checksum(u32 src_ip, u32 dst_ip, std::span<const u8> tcp_hdr,
                 std::span<const u8> payload) noexcept {
  // The TCP header length is even, so the payload block needs no swap
  // when its sum is combined (RFC 1071 s.2(B)).
  u32 sum = tcp_pseudo_sum(src_ip, dst_ip, tcp_hdr.size() + payload.size());
  sum += inet_sum(tcp_hdr);
  sum += inet_sum(payload);
  return static_cast<u16>(~inet_fold(sum));
}

u16 payload_csum_from_complete(u32 full_sum, std::span<const u8> tcp_hdr) noexcept {
  // full_sum covers header + payload. The Internet checksum is linear,
  // so payload_sum = full_sum - header_sum in ones'-complement
  // arithmetic; subtraction is addition of the complement.
  const u16 hdr_folded = inet_fold(inet_sum(tcp_hdr));
  const u32 payload_sum =
      static_cast<u32>(inet_fold(full_sum)) + static_cast<u16>(~hdr_folded);
  const u16 csum = static_cast<u16>(~inet_fold(payload_sum));
  // Ones'-complement negative zero: normalize 0x0000 to 0xffff so the
  // derived value is bit-identical to inet_checksum() of the payload
  // (which yields 0xffff for all-zero data).
  return csum == 0 ? 0xffff : csum;
}

}  // namespace papm::net
