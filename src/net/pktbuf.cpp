#include "net/pktbuf.h"

#include <cassert>
#include <cstring>

namespace papm::net {

// --- HeapArena -------------------------------------------------------------

Result<u64> HeapArena::alloc(u64 size) {
  env_->clock().advance(env_->cost.pool_alloc_ns);
  const u64 h = next_handle_++;
  blocks_.emplace(h, std::vector<u8>(size));
  return h;
}

void HeapArena::free(u64 handle, u64 /*size*/) {
  env_->clock().advance(env_->cost.pool_alloc_ns / 2);
  blocks_.erase(handle);
}

u8* HeapArena::data(u64 handle, u64 len) {
  auto it = blocks_.find(handle);
  if (it == blocks_.end() || len > it->second.size()) {
    throw std::out_of_range("HeapArena: bad handle or length");
  }
  return it->second.data();
}

void HeapArena::store_dma(u64 handle, std::span<const u8> data) {
  std::memcpy(this->data(handle, data.size()), data.data(), data.size());
}

// --- PktBufPool --------------------------------------------------------------

PktBuf* PktBufPool::alloc(u32 data_cap) {
  if (meta_limit_ != 0 && live_meta_ >= meta_limit_) return nullptr;
  auto dh = arena_->alloc(data_cap);
  if (!dh.ok()) return nullptr;

  PktBuf* pb;
  if (!free_meta_.empty()) {
    pb = free_meta_.back();
    free_meta_.pop_back();
  } else {
    slab_.emplace_back();
    pb = &slab_.back();
  }
  *pb = PktBuf{};
  pb->owner = this;
  pb->data_h = dh.value();
  pb->cap = data_cap;
  pb->in_use = true;
  pb->tstamp = env_->now();
  ref_data(pb->data_h);
  live_meta_++;
  return pb;
}

PktBuf* PktBufPool::clone(const PktBuf& pb) {
  assert(pb.in_use);
  if (meta_limit_ != 0 && live_meta_ >= meta_limit_) return nullptr;
  env_->clock().advance(env_->cost.pool_alloc_ns);  // metadata-only alloc
  PktBuf* c;
  if (!free_meta_.empty()) {
    c = free_meta_.back();
    free_meta_.pop_back();
  } else {
    slab_.emplace_back();
    c = &slab_.back();
  }
  *c = pb;  // copy all metadata fields
  c->owner = this;
  c->next = c->prev = nullptr;
  c->rb = container::RbHook{};
  c->in_use = true;
  ref_data(c->data_h);
  if (c->sliced()) ref_data(c->slice_h);
  for (int i = 0; i < c->nr_frags; i++) ref_data(c->frags[i].data_h);
  live_meta_++;
  return c;
}

void PktBufPool::free(PktBuf* pb) {
  if (pb == nullptr) return;
  assert(pb->in_use);
  assert(pb->owner == this && "packet freed into a foreign pool shard");
  if (unref(pb->data_h)) arena_->free(pb->data_h, pb->cap);
  if (pb->sliced() && unref(pb->slice_h)) {
    arena_->free(pb->slice_h, pb->slice_cap);
  }
  for (int i = 0; i < pb->nr_frags; i++) {
    if (unref(pb->frags[i].data_h)) {
      arena_->free(pb->frags[i].data_h, pb->frags[i].cap);
    }
  }
  pb->in_use = false;
  free_meta_.push_back(pb);
  live_meta_--;
}

u64 PktBufPool::adopt_data(PktBuf& pb) {
  assert(pb.in_use);
  ref_data(pb.data_h);
  return pb.data_h;
}

void PktBufPool::unref_data(u64 data_h, u32 cap) {
  if (unref(data_h)) arena_->free(data_h, cap);
}

bool PktBufPool::attach_slice(PktBuf& pb, u32 len) {
  assert(pb.in_use && pb.slice_h == 0);
  auto sh = arena_->alloc(len);
  if (!sh.ok()) return false;
  pb.slice_h = sh.value();
  pb.slice_cap = len;
  pb.slice_off = 0;
  ref_data(pb.slice_h);
  return true;
}

u64 PktBufPool::adopt_slice(PktBuf& pb) {
  assert(pb.in_use && pb.sliced());
  ref_data(pb.slice_h);
  return pb.slice_h;
}

Status PktBufPool::add_frag(PktBuf& pb, u64 data_h, u32 len, u32 off, u32 cap) {
  if (pb.nr_frags >= PktBuf::kMaxFrags) return Errc::out_of_space;
  pb.frags[pb.nr_frags++] = {data_h, off, len, cap != 0 ? cap : off + len};
  ref_data(data_h);
  return Errc::ok;
}

void PktBufPool::ref_data(u64 handle) { data_refs_[handle]++; }

bool PktBufPool::unref(u64 handle) {
  auto it = data_refs_.find(handle);
  assert(it != data_refs_.end());
  if (--it->second == 0) {
    data_refs_.erase(it);
    return true;
  }
  return false;
}

}  // namespace papm::net
