// Homa-like message transport (§5.2).
//
// "The Linux kernel implementation of Homa, a new reliable transport
// protocol specifically designed for data center networking, uses
// regular Linux packet metadata ... This implies that the approach of
// repurposing the networking features is feasible not only for TCP but
// also future transport protocols."
//
// This is a deliberately simplified Homa: message-oriented,
// receiver-driven. A sender transmits the first kUnscheduledSegs
// segments unscheduled; the receiver GRANTs further segments as data
// arrives (a fixed in-flight window, no SRPT priorities), requests
// RESENDs for gaps after a timeout, and ACKs completed messages.
// Completed messages are delivered as the *received packets themselves*
// (plus per-packet payload ranges), so a storage stack can adopt them
// zero-copy exactly as it does with TCP segments — the §5.2 point.
//
// Framing rides over UDP datagrams (one Homa packet per datagram):
//   u8 type  u8 pad[3]  u64 msg_id  u32 offset  u32 total_len  u32 grant
#pragma once

#include <map>
#include <unordered_map>
#include <unordered_set>

#include "net/udp.h"

namespace papm::net {

constexpr std::size_t kHomaHdrLen = 24;
constexpr std::size_t kHomaSegPayload = kMaxUdpPayload - kHomaHdrLen;

enum class HomaPktType : u8 { data = 1, grant = 2, resend = 3, ack = 4 };

struct HomaDelivery {
  u32 src_ip;
  u16 src_port;
  u64 msg_id;
  u64 total_len;
  // The message's packets in offset order, with the payload byte range
  // of each (past the Homa header). Receiver owns them; free via pool.
  std::vector<PktBuf*> pkts;
  std::vector<u32> offs;
  std::vector<u32> lens;

  // Convenience: flatten to contiguous bytes (copies).
  [[nodiscard]] std::vector<u8> bytes(PktBufPool& pool) const;
};

struct HomaOptions {
  u32 unscheduled_segs = 2;   // sent before any grant (RTT-bytes)
  u32 grant_window_segs = 4;  // receiver-granted in-flight limit
  SimTime resend_timeout_ns = 1 * kNsPerMs;
  SimTime sender_timeout_ns = 2 * kNsPerMs;
  // Sender-timeout growth per retry (1.0 = fixed interval, the legacy
  // behaviour). The replication layer runs 2.0 so a dead replica's
  // retransmits thin out instead of hammering the fabric.
  double backoff_mult = 1.0;
  int max_retries = 10;
};

class HomaEndpoint {
 public:
  using Options = HomaOptions;

  // Message arrival hook. The handler owns the delivered packets.
  std::function<void(HomaDelivery)> on_message;
  // Completion hook for sent messages (acknowledged by the receiver).
  std::function<void(u64 msg_id)> on_sent;
  // Fires when a sent message exhausts max_retries and is abandoned —
  // the peer-suspect signal the replication layer keys off.
  std::function<void(u64 msg_id)> on_give_up;

  HomaEndpoint(UdpStack& udp, u16 port, Options opts = Options());

  // Sends a message (copies the bytes into per-segment packets).
  // Returns the message id.
  u64 send_msg(u32 dst_ip, u16 dst_port, std::span<const u8> data);

  // One refcounted byte range of packet data (a gather-send element).
  struct GatherSeg {
    u64 data_h;
    u32 off;
    u32 len;
    u32 cap;  // allocation size of the block (for unref)
  };

  // Zero-copy send: `header` bytes (copied — it is a few tens of bytes
  // of protocol header) followed by the gather ranges, which are
  // refcounted out of `pool` and attached to the wire segments as frags
  // — no payload byte is touched by the CPU (the PR 8 slicing idiom
  // applied to replication forwarding). The refs are held for the
  // message lifetime, so retransmits replay from the original blocks,
  // and dropped on ack or give-up. `pool` must own the gather blocks
  // (its arena resolves them); it also provides the segment metadata.
  u64 send_msg_gather(u32 dst_ip, u16 dst_port, std::span<const u8> header,
                      std::span<const GatherSeg> segs, PktBufPool& pool);

  // Abandon all endpoint state without touching the buffer pool: used
  // when the owning host is power-cut. Stale timers find empty maps and
  // no-op instead of dereferencing a dead pool.
  void abandon();

  [[nodiscard]] u64 messages_sent() const noexcept { return msgs_tx_; }
  [[nodiscard]] u64 messages_received() const noexcept { return msgs_rx_; }
  [[nodiscard]] u64 resends() const noexcept { return resends_; }
  [[nodiscard]] u64 timeouts() const noexcept { return timeouts_; }
  [[nodiscard]] u64 give_ups() const noexcept { return give_ups_; }
  [[nodiscard]] u64 grants_sent() const noexcept { return grants_tx_; }
  [[nodiscard]] u16 port() const noexcept { return port_; }

 private:
  struct TxMsg {
    u32 dst_ip;
    u16 dst_port;
    std::vector<u8> data;  // header bytes only, for a gather message
    std::vector<GatherSeg> gather;  // payload ranges after `data`
    PktBufPool* gather_pool = nullptr;  // holds one ref per gather range
    u64 gather_len = 0;
    u64 granted;   // bytes the receiver has allowed
    u64 sent;      // bytes transmitted so far (first pass)
    bool done;
    int retries;
    u64 timer_gen;

    [[nodiscard]] u64 total_len() const noexcept {
      return data.size() + gather_len;
    }
  };
  struct RxMsg {
    u32 src_ip;
    u16 src_port;
    u64 msg_id = 0;  // sender-scoped id (rx_ is keyed by a peer hash)
    u64 total_len = 0;
    u64 received = 0;
    u64 granted = 0;
    std::map<u32, PktBuf*> segs;  // offset -> packet
    u64 timer_gen = 0;
    int nudges = 0;
  };

  void rx(u32 src_ip, u16 src_port, PktBuf* pb);
  void rx_data(u32 src_ip, u16 src_port, PktBuf* pb, u64 msg_id, u32 offset,
               u32 total_len);
  void tx_from(TxMsg& m, u64 msg_id, u64 upto);
  void tx_gather_seg(TxMsg& m, u64 msg_id, u64 off, u64 want);
  void release_gather(TxMsg& m);
  void send_ctl(u32 dst_ip, u16 dst_port, HomaPktType type, u64 msg_id,
                u32 offset, u32 total, u32 grant);
  void arm_rx_timer(u64 key, RxMsg& m);
  void arm_tx_timer(u64 msg_id, TxMsg& m);
  void deliver(u64 key, RxMsg&& m);
  void charge_proc();

  UdpStack& udp_;
  u16 port_;
  Options opts_;
  u64 next_msg_id_ = 1;
  std::unordered_map<u64, TxMsg> tx_;              // msg_id -> state
  std::unordered_map<u64, RxMsg> rx_;              // (peer-unique key)
  // Exactly-once delivery: data for an already-delivered message (lost
  // ACK, sender replay) is re-acked and dropped.
  std::unordered_set<u64> delivered_;
  u64 msgs_tx_ = 0;
  u64 msgs_rx_ = 0;
  u64 resends_ = 0;
  u64 timeouts_ = 0;
  u64 give_ups_ = 0;
  u64 grants_tx_ = 0;
};

}  // namespace papm::net
