// Ethernet / IPv4 / TCP header codecs (wire format, big-endian).
//
// Minimal but real: frames produced by the TX path parse back on the RX
// path, and the TCP checksum (with IPv4 pseudo-header) is the one the
// paper proposes to reuse as a storage integrity word.
#pragma once

#include <optional>
#include <span>

#include "common/inet_csum.h"
#include "common/types.h"

namespace papm::net {

constexpr std::size_t kEthHdrLen = 14;
constexpr std::size_t kIpHdrLen = 20;   // no options
constexpr std::size_t kTcpHdrLen = 20;  // no options
constexpr std::size_t kAllHdrLen = kEthHdrLen + kIpHdrLen + kTcpHdrLen;
constexpr u16 kEtherTypeIpv4 = 0x0800;
constexpr u8 kIpProtoTcp = 6;
constexpr std::size_t kMtu = 1500;                      // IP MTU
constexpr std::size_t kMss = kMtu - kIpHdrLen - kTcpHdrLen;  // 1460

struct MacAddr {
  u8 b[6] = {};
  friend bool operator==(const MacAddr&, const MacAddr&) = default;
};

struct EthHeader {
  MacAddr dst;
  MacAddr src;
  u16 ethertype = kEtherTypeIpv4;
};

struct IpHeader {
  u8 ttl = 64;
  u8 protocol = kIpProtoTcp;
  u16 total_len = 0;  // IP header + payload
  u16 ident = 0;
  u32 src = 0;
  u32 dst = 0;
  u16 checksum = 0;  // filled by encoder / validated by decoder
};

// TCP flag bits.
constexpr u8 kTcpFin = 0x01;
constexpr u8 kTcpSyn = 0x02;
constexpr u8 kTcpRst = 0x04;
constexpr u8 kTcpPsh = 0x08;
constexpr u8 kTcpAck = 0x10;

struct TcpHeader {
  u16 src_port = 0;
  u16 dst_port = 0;
  u32 seq = 0;
  u32 ack = 0;
  u8 flags = 0;
  u16 window = 0;
  u16 checksum = 0;  // pseudo-header + header + payload
};

// --- Encoding ----------------------------------------------------------
// Each encoder writes exactly its header length into `out` and returns
// the bytes written. `out` must be large enough.
std::size_t encode_eth(const EthHeader& h, std::span<u8> out);
std::size_t encode_ip(const IpHeader& h, std::span<u8> out);   // fills checksum
std::size_t encode_tcp(const TcpHeader& h, std::span<u8> out);  // checksum as given

// --- Decoding ----------------------------------------------------------
std::optional<EthHeader> decode_eth(std::span<const u8> in);
std::optional<IpHeader> decode_ip(std::span<const u8> in);  // verifies checksum
std::optional<TcpHeader> decode_tcp(std::span<const u8> in);

// --- L4 checksums ---------------------------------------------------------
// Ones'-complement sum of the IPv4 pseudo-header for an L4 segment of
// `l4_len` bytes (header + payload).
[[nodiscard]] u32 l4_pseudo_sum(u32 src_ip, u32 dst_ip, u8 protocol,
                                std::size_t l4_len) noexcept;
[[nodiscard]] inline u32 tcp_pseudo_sum(u32 src_ip, u32 dst_ip,
                                        std::size_t tcp_len) noexcept {
  return l4_pseudo_sum(src_ip, dst_ip, kIpProtoTcp, tcp_len);
}

// Full TCP checksum over an encoded TCP header (checksum field zeroed or
// not — pass the raw bytes with the field zeroed) plus payload.
[[nodiscard]] u16 tcp_checksum(u32 src_ip, u32 dst_ip, std::span<const u8> tcp_hdr,
                               std::span<const u8> payload) noexcept;

// Given a *verified* full-segment ones'-complement sum (e.g. from a NIC in
// checksum-complete mode, covering TCP header + payload) extract the
// payload-only Internet checksum by subtracting the header words — the
// paper's §4.2 checksum-reuse trick, possible because the Internet
// checksum is linear. `tcp_hdr` are the received header bytes (including
// the nonzero checksum field).
[[nodiscard]] u16 payload_csum_from_complete(u32 full_sum,
                                             std::span<const u8> tcp_hdr) noexcept;

}  // namespace papm::net
