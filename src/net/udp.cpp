#include "net/udp.h"

#include <cstring>

namespace papm::net {

namespace {
void put_u16(std::span<u8> out, std::size_t at, u16 v) {
  out[at] = static_cast<u8>(v >> 8);
  out[at + 1] = static_cast<u8>(v & 0xff);
}
u16 get_u16(std::span<const u8> in, std::size_t at) {
  return static_cast<u16>(in[at] << 8 | in[at + 1]);
}

MacAddr mac_for_ip(u32 ip) {
  MacAddr m;
  m.b[0] = 0x02;
  m.b[2] = static_cast<u8>(ip >> 24);
  m.b[3] = static_cast<u8>(ip >> 16);
  m.b[4] = static_cast<u8>(ip >> 8);
  m.b[5] = static_cast<u8>(ip);
  return m;
}
}  // namespace

std::size_t encode_udp(const UdpHeader& h, std::span<u8> out) {
  put_u16(out, 0, h.src_port);
  put_u16(out, 2, h.dst_port);
  put_u16(out, 4, h.length);
  put_u16(out, 6, h.checksum);
  return kUdpHdrLen;
}

std::optional<UdpHeader> decode_udp(std::span<const u8> in) {
  if (in.size() < kUdpHdrLen) return std::nullopt;
  UdpHeader h;
  h.src_port = get_u16(in, 0);
  h.dst_port = get_u16(in, 2);
  h.length = get_u16(in, 4);
  h.checksum = get_u16(in, 6);
  if (h.length < kUdpHdrLen || h.length > in.size()) return std::nullopt;
  return h;
}

UdpStack::UdpStack(sim::Env& env, NetIf& netif, PktBufPool& pool, Options opts)
    : env_(env),
      netif_(netif),
      pool_(pool),
      opts_(opts),
      own_cpu_(env, /*cores=*/0),
      cpu_(&own_cpu_) {}

void UdpStack::charge_rx() {
  const auto& c = env_.cost;
  env_.clock().advance(
      c.scaled(opts_.kernel_bypass ? c.bypass_stack_rx_ns : c.udp_stack_rx_ns));
}

void UdpStack::charge_tx() {
  const auto& c = env_.cost;
  env_.clock().advance(
      c.scaled(opts_.kernel_bypass ? c.bypass_stack_tx_ns : c.udp_stack_tx_ns));
}

Status UdpStack::bind(u16 port, Handler handler) {
  if (ports_.contains(port)) return Errc::already_exists;
  ports_[port] = std::move(handler);
  return Errc::ok;
}

Status UdpStack::send_to(u32 dst_ip, u16 dst_port, u16 src_port,
                         std::span<const u8> payload) {
  if (payload.size() > kMaxUdpPayload) return Errc::too_large;
  PktBuf* pb = pool_.alloc(static_cast<u32>(kUdpAllHdrLen + payload.size()));
  if (pb == nullptr) return Errc::out_of_space;
  pb->len = static_cast<u32>(kUdpAllHdrLen + payload.size());
  pb->payload_off = static_cast<u16>(kUdpAllHdrLen);
  if (!payload.empty()) {
    std::memcpy(pool_.writable(*pb, pb->len).data() + kUdpAllHdrLen,
                payload.data(), payload.size());
    pool_.arena().mark_dirty(pb->data_h + kUdpAllHdrLen, payload.size());
    env_.clock().advance(env_.cost.copy_cost(payload.size()));
  }
  return send_pkt_to(dst_ip, dst_port, src_port, pb);
}

Status UdpStack::send_pkt_to(u32 dst_ip, u16 dst_port, u16 src_port,
                             PktBuf* pb) {
  if (pb->payload_off != kUdpAllHdrLen) {
    pool_.free(pb);
    return Errc::invalid_argument;
  }
  const std::size_t payload_len = pb->total_len() - kUdpAllHdrLen;
  if (payload_len > kMaxUdpPayload) {
    pool_.free(pb);
    return Errc::too_large;
  }
  charge_tx();

  u8* base = pool_.writable(*pb, pb->len).data();
  pb->l2_off = 0;
  pb->l3_off = kEthHdrLen;
  pb->l4_off = kEthHdrLen + kIpHdrLen;
  pb->l4_proto = kIpProtoUdp;

  EthHeader eth;
  eth.src = netif_.mac();
  eth.dst = mac_for_ip(dst_ip);
  encode_eth(eth, {base, kEthHdrLen});

  IpHeader ip;
  ip.src = opts_.ip;
  ip.dst = dst_ip;
  ip.protocol = kIpProtoUdp;
  ip.total_len = static_cast<u16>(kIpHdrLen + kUdpHdrLen + payload_len);
  encode_ip(ip, {base + kEthHdrLen, kIpHdrLen});

  UdpHeader udp;
  udp.src_port = src_port;
  udp.dst_port = dst_port;
  udp.length = static_cast<u16>(kUdpHdrLen + payload_len);
  udp.checksum = 0;  // filled by NIC offload (or left 0: "no checksum")
  encode_udp(udp, {base + pb->l4_off, kUdpHdrLen});

  if (!opts_.csum_offload_tx) {
    env_.clock().advance(env_.cost.inet_csum_cost(kUdpHdrLen + payload_len));
    u32 sum = l4_pseudo_sum(ip.src, ip.dst, kIpProtoUdp,
                            kUdpHdrLen + payload_len);
    sum += inet_sum({base + pb->l4_off, kUdpHdrLen});
    sum += inet_sum({base + kUdpAllHdrLen,
                     static_cast<std::size_t>(pb->len) - kUdpAllHdrLen});
    for (int i = 0; i < pb->nr_frags; i++) {
      const auto& fr = pb->frags[i];
      sum += inet_sum(
          {pool_.arena().data(fr.data_h, fr.off + fr.len) + fr.off, fr.len});
    }
    u16 csum = static_cast<u16>(~inet_fold(sum));
    if (csum == 0) csum = 0xffff;  // 0 means "no checksum" in UDP
    base[pb->l4_off + 6] = static_cast<u8>(csum >> 8);
    base[pb->l4_off + 7] = static_cast<u8>(csum & 0xff);
  }
  pool_.arena().mark_dirty(pb->data_h, kUdpAllHdrLen);

  pb->ip = ip;
  pb->tcp = TcpHeader{};  // L4 view: ports + checksum only
  pb->tcp.src_port = udp.src_port;
  pb->tcp.dst_port = udp.dst_port;
  pb->tstamp = env_.now();

  tx_count_++;
  netif_.transmit(pb);
  return Errc::ok;
}

void UdpStack::rx(PktBuf* pb) {
  cpu_->run([&] { rx_locked(pb); });
}

void UdpStack::rx_locked(PktBuf* pb) {
  charge_rx();
  rx_count_++;
  auto it = ports_.find(pb->tcp.dst_port);
  if (it == ports_.end()) {
    rx_dropped_++;
    pool_.free(pb);
    return;
  }
  it->second(pb->ip.src, pb->tcp.src_port, pb);
}

}  // namespace papm::net
