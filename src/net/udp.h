// Minimal UDP over the same PktBuf/NIC path.
//
// Substrate for the MICA-like comparison point (§2.2: "networked
// non-persistent in-memory key-value stores, such as MICA, eliminate
// networking overheads using kernel-bypass framework and custom
// UDP-based protocol") and the carrier for the Homa-like transport
// (net/homa.h). Datagrams are fire-and-forget: no retransmission, no
// ordering — reliability, if needed, lives above.
#pragma once

#include <functional>
#include <unordered_map>

#include "net/pktbuf.h"
#include "net/tcp.h"  // NetIf, mac derivation helpers

namespace papm::net {

constexpr std::size_t kUdpHdrLen = 8;
constexpr u8 kIpProtoUdp = 17;
constexpr std::size_t kUdpAllHdrLen = kEthHdrLen + kIpHdrLen + kUdpHdrLen;
// Max payload per datagram (no IP fragmentation).
constexpr std::size_t kMaxUdpPayload = kMtu - kIpHdrLen - kUdpHdrLen;

struct UdpHeader {
  u16 src_port = 0;
  u16 dst_port = 0;
  u16 length = 0;    // header + payload
  u16 checksum = 0;  // pseudo-header + header + payload (0 = none)
};

std::size_t encode_udp(const UdpHeader& h, std::span<u8> out);
std::optional<UdpHeader> decode_udp(std::span<const u8> in);

class UdpStack {
 public:
  struct Options {
    u32 ip = 0;
    // Kernel-bypass datapath (MICA-style) vs regular kernel UDP: picks
    // the per-datagram stack charges.
    bool kernel_bypass = false;
    bool csum_offload_tx = true;
    bool csum_offload_rx = true;
  };

  // Datagram delivery: (source ip, source port, packet). The handler
  // owns the packet (payload via pool().payload(*pb)).
  using Handler = std::function<void(u32, u16, PktBuf*)>;

  UdpStack(sim::Env& env, NetIf& netif, PktBufPool& pool, Options opts);

  // Binds a local port. already_exists if taken.
  Status bind(u16 port, Handler handler);

  // Sends one datagram (copies payload into a fresh packet).
  Status send_to(u32 dst_ip, u16 dst_port, u16 src_port,
                 std::span<const u8> payload);

  // Zero-copy variant: `pb` must have kUdpAllHdrLen of header room and
  // its payload (linear tail + frags) in place. Takes ownership.
  Status send_pkt_to(u32 dst_ip, u16 dst_port, u16 src_port, PktBuf* pb);

  // Entry from the NIC (wired by the caller or Host).
  void rx(PktBuf* pb);

  void attach_cpu(sim::HostCpu& cpu) noexcept { cpu_ = &cpu; }
  [[nodiscard]] PktBufPool& pool() noexcept { return pool_; }
  [[nodiscard]] sim::Env& env() noexcept { return env_; }
  [[nodiscard]] u32 ip() const noexcept { return opts_.ip; }

  [[nodiscard]] u64 datagrams_rx() const noexcept { return rx_count_; }
  [[nodiscard]] u64 datagrams_tx() const noexcept { return tx_count_; }
  [[nodiscard]] u64 rx_dropped() const noexcept { return rx_dropped_; }

 private:
  void rx_locked(PktBuf* pb);
  void charge_rx();
  void charge_tx();

  sim::Env& env_;
  NetIf& netif_;
  PktBufPool& pool_;
  Options opts_;
  sim::HostCpu own_cpu_;
  sim::HostCpu* cpu_;
  std::unordered_map<u16, Handler> ports_;
  u64 rx_count_ = 0;
  u64 tx_count_ = 0;
  u64 rx_dropped_ = 0;
};

}  // namespace papm::net
