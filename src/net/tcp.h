// From-scratch TCP over PktBuf metadata.
//
// Implements the stack features the paper's argument rests on (§4.1):
//   * reliable delivery with cumulative ACKs, RTO (RFC 6298 estimation)
//     and fast retransmit on three duplicate ACKs;
//   * a retransmission queue of *clones* — data stays intact until
//     acknowledged while lower layers release their metadata;
//   * out-of-order reassembly in an intrusive red-black tree of PktBufs,
//     the very structure §4.1 points to;
//   * checksum production/verification, offloadable to the NIC, with the
//     payload-only checksum preserved in the packet metadata;
//   * a zero-copy receive path (read_pkts) handing whole PktBufs —
//     metadata, checksums, timestamps — to the application, the PASTE
//     interface the proposal builds on; plus the classic copying read();
//   * connection migration between stacks (extract/adopt): on a
//     multi-queue host every shard pins its own TcpStack, and RSS
//     rebalancing re-steers a flow group to another queue — the flow's
//     whole connection state (sequence space, rtx clones, receive and
//     out-of-order queues, congestion state, armed timers) moves to the
//     destination shard's stack in one step, so no in-flight segment is
//     dropped or reordered across the handoff.
//
// Connections run over a NetIf (implemented by nic::Nic) and consume
// host CPU through the cost model's per-segment stack charges.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>

#include "common/types.h"
#include "container/rbtree.h"
#include "net/headers.h"
#include "net/pktbuf.h"
#include "obs/metrics.h"
#include "sim/cpu.h"

namespace papm::net {

// Lower-layer interface the stack transmits through (the NIC).
class NetIf {
 public:
  virtual ~NetIf() = default;
  // Takes ownership of the packet (frees it after serialization).
  virtual void transmit(PktBuf* pb) = 0;
  [[nodiscard]] virtual MacAddr mac() const noexcept = 0;
};

// Sequence-number arithmetic (wrap-safe).
[[nodiscard]] constexpr bool seq_lt(u32 a, u32 b) noexcept {
  return static_cast<i32>(a - b) < 0;
}
[[nodiscard]] constexpr bool seq_le(u32 a, u32 b) noexcept {
  return static_cast<i32>(a - b) <= 0;
}
[[nodiscard]] constexpr bool seq_gt(u32 a, u32 b) noexcept {
  return static_cast<i32>(a - b) > 0;
}
[[nodiscard]] constexpr bool seq_ge(u32 a, u32 b) noexcept {
  return static_cast<i32>(a - b) >= 0;
}

enum class TcpState {
  closed,
  listen,
  syn_sent,
  syn_rcvd,
  established,
  fin_wait_1,
  fin_wait_2,
  close_wait,
  last_ack,
};

[[nodiscard]] constexpr std::string_view to_string(TcpState s) noexcept {
  switch (s) {
    case TcpState::closed: return "closed";
    case TcpState::listen: return "listen";
    case TcpState::syn_sent: return "syn_sent";
    case TcpState::syn_rcvd: return "syn_rcvd";
    case TcpState::established: return "established";
    case TcpState::fin_wait_1: return "fin_wait_1";
    case TcpState::fin_wait_2: return "fin_wait_2";
    case TcpState::close_wait: return "close_wait";
    case TcpState::last_ack: return "last_ack";
  }
  return "?";
}

class TcpStack;

class TcpConn {
 public:
  // Application event hooks.
  std::function<void(TcpConn&)> on_established;
  std::function<void(TcpConn&)> on_readable;
  std::function<void(TcpConn&)> on_closed;

  [[nodiscard]] TcpState state() const noexcept { return state_; }
  [[nodiscard]] u32 peer_ip() const noexcept { return peer_ip_; }
  [[nodiscard]] u16 peer_port() const noexcept { return peer_port_; }
  [[nodiscard]] u16 local_port() const noexcept { return local_port_; }

  // Queues application bytes for transmission (copies into the send
  // buffer, charging the copy — the classic socket write path).
  Status send(std::span<const u8> data);

  // Zero-copy transmit: the stack takes ownership of a fully payload-
  // bearing PktBuf whose data is already in the host arena (PASTE-style
  // TX; pktstore uses this to emit stored packets without copies).
  Status send_pkt(PktBuf* pb);

  // Copying read: drains up to out.size() in-order payload bytes.
  std::size_t read(std::span<u8> out);

  // Zero-copy read: transfers ownership of the queued payload-bearing
  // packets (payload via pool().payload(*pb)). Caller frees them.
  std::vector<PktBuf*> read_pkts();

  [[nodiscard]] std::size_t readable_bytes() const noexcept { return rcv_queued_; }

  // Graceful close (FIN). on_closed fires when the conn reaches closed.
  void close();

  // Introspection for tests.
  [[nodiscard]] std::size_t ooo_queued() const noexcept { return ooo_tree_.size(); }
  [[nodiscard]] std::size_t rtx_queued() const noexcept { return rtx_q_.size(); }
  [[nodiscard]] u64 retransmits() const noexcept { return retransmits_; }
  [[nodiscard]] u32 cwnd() const noexcept { return cwnd_; }
  [[nodiscard]] SimTime srtt() const noexcept { return srtt_; }

 private:
  friend class TcpStack;

  TcpConn(TcpStack& stack, u32 local_ip, u16 local_port, u32 peer_ip,
          u16 peer_port);

  // Segment arrival (stack already charged per-segment RX cost).
  void rx(PktBuf* pb);

  void rx_listen_syn(PktBuf* pb);
  void process_ack(const TcpHeader& h);
  void rx_data(PktBuf* pb);
  void deliver_in_order();
  void try_send();
  void send_segment(u8 flags, u32 seq, std::span<const u8> payload,
                    bool queue_rtx);
  void send_ctl(u8 flags);  // pure control segment at snd_nxt
  void enter_established();
  void arm_rto();
  void on_rto();
  void update_rtt(SimTime sample);
  void maybe_send_pending_ack();
  void become_closed();

  // Owning stack; reseated by TcpStack::adopt when the connection
  // migrates to another shard's stack (RSS rebalancing).
  TcpStack* stack_;
  TcpState state_ = TcpState::closed;
  u32 local_ip_, peer_ip_;
  u16 local_port_, peer_port_;
  std::function<void(TcpConn&)> acceptor_cb_;  // listener's accept hook

  // Send state.
  u32 iss_ = 0;
  u32 snd_una_ = 0;
  u32 snd_nxt_ = 0;
  u32 snd_wnd_ = 0;   // peer-advertised
  u32 cwnd_ = 0;
  u32 ssthresh_ = 0;
  u32 dup_acks_ = 0;
  bool fin_queued_ = false;
  bool fin_sent_ = false;
  std::deque<u8> snd_buf_;  // unsent bytes; snd_nxt_ marks the boundary
  u32 snd_buf_seq_ = 0;     // seq of snd_buf_.front()

  struct RtxEntry {
    PktBuf* clone;  // holds the data alive until acked
    u32 seq;
    u32 len;  // payload length (FIN counts as 1 virtual byte, len 0)
    u8 flags;
    SimTime sent_at;
    bool retransmitted;
  };
  std::deque<RtxEntry> rtx_q_;

  // Receive state.
  u32 irs_ = 0;
  u32 rcv_nxt_ = 0;
  bool fin_received_ = false;
  u32 fin_seq_ = 0;
  std::deque<PktBuf*> rcv_q_;  // in-order payload-bearing packets
  std::size_t rcv_queued_ = 0;
  std::size_t rcv_consumed_front_ = 0;  // partially read() bytes of front pkt
  container::RbTree<PktBuf, u32, &PktBuf::rb, &PktBuf::rb_key> ooo_tree_;

  // RTT / RTO (RFC 6298).
  SimTime srtt_ = 0;
  SimTime rttvar_ = 0;
  // Initial RTO: 1 ms (RFC 6298's 1 s, scaled to datacenter RTTs). Must
  // exceed self-inflicted queueing delay at full window or zero-loss
  // transfers suffer spurious timeouts.
  SimTime rto_ = 1 * kNsPerMs;
  u64 rto_generation_ = 0;
  bool rto_armed_ = false;

  bool ack_pending_ = false;
  u64 retransmits_ = 0;
};

class TcpStack {
 public:
  struct Options {
    u32 ip = 0;
    // Busy-polling PASTE-style host (server) vs interrupt-driven kernel
    // host (client): selects the per-segment stack charges.
    bool busy_poll = false;
    bool csum_offload_tx = true;  // NIC fills the TCP checksum
    bool csum_offload_rx = true;  // NIC verifies + provides csum-complete
    u32 rcv_buf = 1 << 20;        // receive buffer bytes (window basis)
    u16 ephemeral_base = 33000;
    // Multi-queue datapath: pin all of this stack's work (RX processing,
    // timers, TX) to one HostCpu core — the core busy-polling the NIC
    // queue this stack serves. -1 = classic earliest-free scheduling.
    int core = -1;
    // Mirrors segment/checksum/retransmit counters into a (per-shard)
    // registry: tcp.segments_rx / tcp.segments_tx / tcp.csum_failures /
    // tcp.retransmits. Null = the plain member counters only.
    obs::MetricRegistry* metrics = nullptr;
  };

  TcpStack(sim::Env& env, NetIf& netif, PktBufPool& pool, Options opts);

  // Active open. The returned connection is owned by the stack.
  TcpConn* connect(u32 dst_ip, u16 dst_port);

  // Passive open: on_accept fires with each new established connection.
  Status listen(u16 port, std::function<void(TcpConn&)> on_accept);

  // Entry from the NIC. Takes ownership of the packet. Wraps all
  // processing (stack + application callbacks) in the host CPU.
  void rx(PktBuf* pb);

  // --- Flow-group migration (RSS rebalancing) --------------------------
  // Removes the connection from this stack and returns its full state —
  // sequence space, retransmission clones, receive/out-of-order queues,
  // congestion state — for adoption by another stack. Armed timers ride
  // along: their callbacks resolve the owning stack at fire time.
  // Returns null when the connection is not this stack's.
  std::unique_ptr<TcpConn> extract(TcpConn* c);
  // Installs a connection extracted from another stack: from here on its
  // segments are found by this stack's demux, its timers charge this
  // stack's pinned core and its transmissions ring this queue's
  // doorbell. Queued packet buffers keep their original owner pool
  // (every free in the connection is owner-routed).
  void adopt(std::unique_ptr<TcpConn> conn);
  // Iterates live connections (migration-group selection).
  template <typename Fn>
  void each_conn(Fn&& fn) {
    for (auto& [key, c] : conns_) fn(*c);
  }
  [[nodiscard]] std::size_t conn_count() const noexcept {
    return conns_.size();
  }

  // Host CPU used for timer callbacks and rx processing; defaults to an
  // unlimited-cores CPU owned by the stack.
  void attach_cpu(sim::HostCpu& cpu) noexcept { cpu_ = &cpu; }
  [[nodiscard]] sim::HostCpu& cpu() noexcept { return *cpu_; }

  // Charges `fn` to this stack's core: pinned when Options::core is set
  // (one stack per NIC queue per core), earliest-free otherwise.
  template <typename F>
  SimTime run_cpu(F&& fn) {
    if (opts_.core >= 0) {
      return cpu_->run_on(static_cast<std::size_t>(opts_.core),
                          std::forward<F>(fn));
    }
    return cpu_->run(std::forward<F>(fn));
  }

  [[nodiscard]] PktBufPool& pool() noexcept { return pool_; }
  [[nodiscard]] sim::Env& env() noexcept { return env_; }
  [[nodiscard]] const Options& options() const noexcept { return opts_; }
  [[nodiscard]] u32 ip() const noexcept { return opts_.ip; }

  // Stats.
  [[nodiscard]] u64 segments_rx() const noexcept { return segments_rx_; }
  [[nodiscard]] u64 segments_tx() const noexcept { return segments_tx_; }
  [[nodiscard]] u64 csum_failures() const noexcept { return csum_failures_; }

 private:
  friend class TcpConn;

  struct FlowKey {
    u32 peer_ip;
    u16 peer_port;
    u16 local_port;
    bool operator==(const FlowKey&) const = default;
  };
  struct FlowHash {
    std::size_t operator()(const FlowKey& k) const noexcept {
      return std::hash<u64>()((static_cast<u64>(k.peer_ip) << 32) ^
                              (static_cast<u64>(k.peer_port) << 16) ^ k.local_port);
    }
  };

  // Builds and transmits a segment on behalf of a connection.
  void output(TcpConn& c, u8 flags, u32 seq, u32 ack,
              std::span<const u8> payload, PktBuf** rtx_clone);
  // Zero-copy variant: `pb` already carries the payload at payload_off.
  void output_pkt(TcpConn& c, PktBuf* pb, u8 flags, u32 seq, u32 ack,
                  PktBuf** rtx_clone);
  void charge_rx(bool pure_ack);
  void charge_tx();

  void rx_locked(PktBuf* pb);  // runs under the host CPU scope

  sim::Env& env_;
  NetIf& netif_;
  PktBufPool& pool_;
  Options opts_;
  sim::HostCpu own_cpu_;
  sim::HostCpu* cpu_;

  std::unordered_map<FlowKey, std::unique_ptr<TcpConn>, FlowHash> conns_;
  std::unordered_map<u16, std::function<void(TcpConn&)>> listeners_;
  u16 next_ephemeral_;
  u32 next_iss_ = 1000;

  u64 segments_rx_ = 0;
  u64 segments_tx_ = 0;
  u64 csum_failures_ = 0;

  obs::Counter* m_seg_rx_ = nullptr;
  obs::Counter* m_seg_tx_ = nullptr;
  obs::Counter* m_csum_fail_ = nullptr;
  obs::Counter* m_rtx_ = nullptr;
};

}  // namespace papm::net
