// Generic segmentation offload.
//
// The paper's §4.2 file-system sketch relies on one packet metadata
// describing application data larger than the MTU, "split into multiple
// MTU-sized packets on network transmission, either by software (GSO) or
// hardware (TSO)". A super-packet is a PktBuf whose payload spans the
// linear area plus page-sized frags; gso_segment() materializes the
// MTU-sized segments.
#pragma once

#include <vector>

#include "net/pktbuf.h"

namespace papm::net {

constexpr u32 kFragPage = 4096;

// Builds a super-packet: `headroom` reserved in the linear area, payload
// spread over page frags. Returns nullptr if the arena is exhausted or
// the payload exceeds kMaxFrags pages.
[[nodiscard]] PktBuf* make_super(PktBufPool& pool, std::span<const u8> payload,
                                 u32 headroom);

// Reads the full (linear tail + frags) payload of a super-packet.
[[nodiscard]] std::vector<u8> super_payload(PktBufPool& pool, PktBuf& super);

// Splits into <= kMss-payload segments, each with kAllHdrLen header room,
// ready for TcpConn::send_pkt. When `charge_copy` is true the per-byte
// copy cost is charged (software GSO); hardware TSO passes false — the
// NIC's DMA engine gathers the bytes. Frees nothing; caller still owns
// `super` and the returned segments.
[[nodiscard]] std::vector<PktBuf*> gso_segment(PktBufPool& pool, PktBuf& super,
                                               bool charge_copy);

}  // namespace papm::net
