// Packet metadata and buffer pools — the sk_buff analogue (paper Fig. 3).
//
// A PktBuf carries exactly the metadata the paper argues storage stacks
// should reuse:
//   * next/prev linkage and an rbtree hook (socket queues, the TCP
//     out-of-order tree);
//   * software and NIC-hardware timestamps;
//   * the wire TCP checksum and a derived payload-only checksum
//     (NIC checksum-complete offload, §4.2 checksum reuse);
//   * head/data offsets locating the protocol headers and payload in the
//     linear buffer;
//   * metadata and data reference counts with kernel-style clone
//     semantics: a clone shares the immutable packet data (retransmission
//     queues hold clones; the paper relies on this to share data between
//     the network and storage stacks);
//   * frags: additional data areas letting one metadata describe data
//     larger than the MTU (GSO/TSO, §4.2 file-system sketch).
//
// Buffers come from a BufArena. HeapArena models ordinary kernel packet
// memory (DRAM); PmArena places packet data in a PM device — the PASTE
// property that makes received payloads persistable in place.
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "container/rbtree.h"
#include "net/headers.h"
#include "pm/pm_device.h"
#include "pm/pm_pool.h"
#include "sim/env.h"

namespace papm::net {

// Compile-time kill switch for the NIC payload slicer + index-engine
// offload (-DPAPM_SLICER=OFF → the `noslicer` preset). With the switch
// off, PktBuf::sliced() is constant-false and every slice branch folds
// away, keeping the pre-slicer datapath byte-identical.
#ifdef PAPM_SLICER_DISABLED
inline constexpr bool kSlicerCompiled = false;
#else
inline constexpr bool kSlicerCompiled = true;
#endif

// --- Buffer arenas ------------------------------------------------------

class BufArena {
 public:
  virtual ~BufArena() = default;

  // Allocates `size` bytes; returns an opaque handle.
  [[nodiscard]] virtual Result<u64> alloc(u64 size) = 0;
  virtual void free(u64 handle, u64 size) = 0;

  // Resolves a handle to memory. Raw pointers must not be held across a
  // PM crash.
  [[nodiscard]] virtual u8* data(u64 handle, u64 len) = 0;

  // True when buffers live in persistent memory (PASTE-style).
  [[nodiscard]] virtual bool persistent() const noexcept = 0;

  // Persistence hooks; no-ops for DRAM arenas.
  virtual void mark_dirty(u64 /*handle*/, u64 /*len*/) {}
  virtual void persist(u64 /*handle*/, u64 /*len*/) {}

  // Device-DMA store into the block: on a PM arena the bytes are durable
  // on return (PmDevice::store_dma); on DRAM it is a plain copy. Used by
  // the NIC slicer to place payloads in their final slot.
  virtual void store_dma(u64 handle, std::span<const u8> data) = 0;
};

// DRAM-backed arena: the ordinary kernel packet allocator.
class HeapArena final : public BufArena {
 public:
  explicit HeapArena(sim::Env& env) : env_(&env) {}

  [[nodiscard]] Result<u64> alloc(u64 size) override;
  void free(u64 handle, u64 size) override;
  [[nodiscard]] u8* data(u64 handle, u64 len) override;
  [[nodiscard]] bool persistent() const noexcept override { return false; }
  void store_dma(u64 handle, std::span<const u8> data) override;

 private:
  sim::Env* env_;
  u64 next_handle_ = 1;
  std::unordered_map<u64, std::vector<u8>> blocks_;
};

// PM-backed arena: packet data (and, in pktstore, metadata) allocated
// from a persistent pool. Handles are PM byte offsets, stable across
// crashes.
class PmArena final : public BufArena {
 public:
  PmArena(pm::PmDevice& dev, pm::PmPool& pool) : dev_(&dev), pool_(&pool) {}

  [[nodiscard]] Result<u64> alloc(u64 size) override { return pool_->alloc(size); }
  void free(u64 handle, u64 size) override { pool_->free(handle, size); }
  [[nodiscard]] u8* data(u64 handle, u64 len) override {
    return dev_->at(handle, len);
  }
  [[nodiscard]] bool persistent() const noexcept override { return true; }
  void mark_dirty(u64 handle, u64 len) override { dev_->mark_dirty(handle, len); }
  void persist(u64 handle, u64 len) override { dev_->persist(handle, len); }
  void store_dma(u64 handle, std::span<const u8> data) override {
    dev_->store_dma(handle, data);
  }

  [[nodiscard]] pm::PmDevice& device() noexcept { return *dev_; }
  [[nodiscard]] pm::PmPool& pool() noexcept { return *pool_; }

 private:
  pm::PmDevice* dev_;
  pm::PmPool* pool_;
};

// --- Packet metadata ------------------------------------------------------

struct PktBuf {
  static constexpr int kMaxFrags = 4;

  struct Frag {
    u64 data_h = 0;
    u32 off = 0;  // start of the fragment's bytes within the block
    u32 len = 0;
    u32 cap = 0;  // allocation size of the block (for freeing)
  };

  // Linkage.
  PktBuf* next = nullptr;
  PktBuf* prev = nullptr;
  container::RbHook rb{};  // TCP out-of-order tree hook
  u32 rb_key = 0;          // tree key (TCP sequence number)

  // Timestamps.
  SimTime tstamp = 0;     // stack (software) timestamp
  SimTime hw_tstamp = 0;  // NIC hardware timestamp (0 = none)

  // Checksums.
  u16 wire_csum = 0;       // TCP checksum as carried on the wire
  u16 payload_csum = 0;    // payload-only Internet checksum (derived)
  bool csum_verified = false;

  // RSS (multi-queue NICs): Toeplitz hash of the 4-tuple and the RX/TX
  // descriptor queue this packet travelled through. On RX the NIC fills
  // both; on TX the stack marks its queue for per-queue accounting.
  u32 rss_hash = 0;
  u16 rss_queue = 0;

  // Parsed header views: offsets into the linear buffer, plus decoded
  // copies for cheap access. For UDP datagrams `tcp` carries only the
  // port and checksum fields (the L4 view); l4_proto disambiguates.
  u16 l2_off = 0;
  u16 l3_off = 0;
  u16 l4_off = 0;
  u16 payload_off = 0;
  u8 l4_proto = kIpProtoTcp;
  IpHeader ip{};
  TcpHeader tcp{};

  // Linear data area. For a *sliced* packet (NIC payload slicer, see
  // sliced() below) the linear buffer holds only the headers
  // [0, payload_off) and `len` still counts headers + payload, so TCP
  // sequence arithmetic and payload_len() are representation-blind.
  u64 data_h = 0;
  u32 cap = 0;  // allocation size
  u32 len = 0;  // used bytes

  // Payload slice (NIC slicer): the payload bytes were DMA'd by the NIC
  // into a separately allocated arena block — on a PM arena, their final
  // durable slot. Bytes live at [slice_h + slice_off, + payload_len()).
  // The slice is refcounted exactly like data_h (clones share it).
  u64 slice_h = 0;
  u32 slice_cap = 0;
  u32 slice_off = 0;

  [[nodiscard]] bool sliced() const noexcept {
    return kSlicerCompiled && slice_h != 0;
  }

  // Drop the first `n` payload bytes (TCP partial-overlap trim): for a
  // sliced packet the slice window advances in step with payload_off.
  void trim_payload(u32 n) noexcept {
    payload_off = static_cast<u16>(payload_off + n);
    if (sliced()) slice_off += n;
  }

  // Fragments (GSO super-packets).
  Frag frags[kMaxFrags]{};
  u8 nr_frags = 0;

  [[nodiscard]] u32 payload_len() const noexcept { return len - payload_off; }
  // Payload including frag bytes (TX scatter-gather packets).
  [[nodiscard]] u64 payload_total() const noexcept {
    return total_len() - payload_off;
  }
  [[nodiscard]] u64 total_len() const noexcept {
    u64 t = len;
    for (int i = 0; i < nr_frags; i++) t += frags[i].len;
    return t;
  }

  // Pool bookkeeping (private to PktBufPool). `owner` is the pool that
  // allocated this metadata: with per-core pool shards (multi-queue RSS
  // datapath) a packet can cross shards — e.g. a zero-copy GET response
  // built by the key's home shard and transmitted by the connection's
  // core — and every ref/unref/free must route to the owning pool.
  class PktBufPool* owner = nullptr;
  bool in_use = false;
};

// --- Metadata pool with clone semantics -----------------------------------

class PktBufPool {
 public:
  PktBufPool(sim::Env& env, BufArena& arena) : env_(&env), arena_(&arena) {}

  PktBufPool(const PktBufPool&) = delete;
  PktBufPool& operator=(const PktBufPool&) = delete;

  // Allocates metadata plus a linear buffer of `data_cap` bytes.
  // Returns nullptr when the arena is exhausted or the metadata pool is
  // at its configured limit.
  [[nodiscard]] PktBuf* alloc(u32 data_cap);

  // Kernel-style clone: new metadata sharing the same (refcounted) data.
  // The TCP retransmission queue holds clones so lower layers may release
  // their metadata while the data stays intact (paper §4.1). Returns
  // nullptr when the metadata pool is at its configured limit.
  [[nodiscard]] PktBuf* clone(const PktBuf& pb);

  // Caps live metadata at `n` descriptors (0 = unlimited, the default).
  // Models a real driver's fixed descriptor pool: at the cap, alloc() and
  // clone() fail (nullptr) instead of growing the slab — best-effort
  // consumers like PktTap drop their capture rather than stall RX.
  void set_meta_limit(std::size_t n) noexcept { meta_limit_ = n; }
  [[nodiscard]] std::size_t meta_limit() const noexcept { return meta_limit_; }

  // Releases metadata; the linear buffer and frags are freed when their
  // last reference (clone or adopted handle) drops. Must be called on the
  // pool that allocated `pb` — call release() when that is not certain.
  void free(PktBuf* pb);

  // Owner-routed free: releases `pb` into whichever pool allocated it.
  // The safe default wherever a packet may have crossed pool shards.
  static void release(PktBuf* pb) {
    if (pb != nullptr) pb->owner->free(pb);
  }

  // Adopt the packet's linear data: takes an extra reference on the data
  // so it outlives all metadata. Used by pktstore to keep payload bytes
  // in place (§4.2 zero-copy ingest). Pair with unref_data().
  [[nodiscard]] u64 adopt_data(PktBuf& pb);
  void unref_data(u64 data_h, u32 cap);

  // NIC slicer support: allocates a `len`-byte arena block as the
  // packet's payload slice (refcounted; freed with the last metadata or
  // adopter reference). Returns false when the arena is exhausted.
  [[nodiscard]] bool attach_slice(PktBuf& pb, u32 len);
  // Adopt the payload slice (zero-copy ingest of a sliced packet): extra
  // reference, like adopt_data. Pair with unref_data(slice_h, slice_cap).
  [[nodiscard]] u64 adopt_slice(PktBuf& pb);

  // Attaches an arena block as a refcounted frag of `pb` (super-packets,
  // zero-copy emission of stored data). `off` selects a byte range within
  // the block.
  Status add_frag(PktBuf& pb, u64 data_h, u32 len, u32 off = 0,
                  u32 cap = 0 /* 0 = off + len */);

  // Re-registers a data handle that survived a crash (PM blocks owned by
  // a recovered store): gives it one reference so unref_data() works
  // uniformly afterwards.
  void restore_ref(u64 data_h) { ref_data(data_h); }

  // Resolves the linear buffer.
  [[nodiscard]] u8* data(PktBuf& pb) { return arena_->data(pb.data_h, pb.len); }
  [[nodiscard]] std::span<u8> writable(PktBuf& pb, u32 len) {
    return {arena_->data(pb.data_h, len), len};
  }
  [[nodiscard]] std::span<const u8> payload(PktBuf& pb) {
    if (pb.sliced()) {
      return {arena_->data(pb.slice_h, pb.slice_off + pb.payload_len()) +
                  pb.slice_off,
              pb.payload_len()};
    }
    return {arena_->data(pb.data_h, pb.len) + pb.payload_off, pb.payload_len()};
  }

  [[nodiscard]] BufArena& arena() noexcept { return *arena_; }
  [[nodiscard]] sim::Env& env() noexcept { return *env_; }

  // Introspection for tests/benches.
  [[nodiscard]] std::size_t live_metadata() const noexcept { return live_meta_; }
  [[nodiscard]] std::size_t live_data_blocks() const noexcept {
    return data_refs_.size();
  }

 private:
  void ref_data(u64 handle);
  bool unref(u64 handle);  // returns true when the count hit zero

  sim::Env* env_;
  BufArena* arena_;
  std::deque<PktBuf> slab_;
  std::vector<PktBuf*> free_meta_;
  std::unordered_map<u64, u32> data_refs_;
  std::size_t live_meta_ = 0;
  std::size_t meta_limit_ = 0;  // 0 = unlimited
};

}  // namespace papm::net
