// Fault plan: the failure model applied at a simulated power cut.
//
// PmDevice's baseline crash() models only the coarsest DCPMM failure mode
// (unflushed lines vanish, clwb'd-but-unfenced lines race). Real devices
// fail in richer ways — the ways "Don't Persist All" and the PM-FS surveys
// show actually break PM designs:
//
//   * drop    — a dirty line that was never clwb'd is lost with the CPU
//               cache... unless the cache happened to *evict* it first, in
//               which case the store reached PM without any flush being
//               issued. `evict_dirty_p` models that spontaneous eviction:
//               stores the program never fenced can still become durable,
//               in any order.
//   * tear    — persistence on DCPMM is atomic at 8-byte granularity, not
//               64: a line that was draining when the power failed may land
//               with an arbitrary mix of old and new 8-byte words.
//               `tear_p` is the probability an in-flight line tears instead
//               of fully draining or fully vanishing. Aligned 8-byte stores
//               (store_u64 — the publication primitive) never tear.
//   * reorder — lines clwb'd after the last sfence drain independently of
//               program order; each survives with `unfenced_drain_p`.
//
// A plan also *schedules* the cut: every persistence-ordering instruction
// (one event per line clwb'd, one per sfence) increments an event counter,
// and when it reaches `crash_at_event` the device applies the failure
// semantics above and throws PowerFailure. Sweeping crash_at_event over
// [1, total] crashes a workload at every flush/fence boundary — the
// crash-point harness in tests/crash_harness.h does exactly that.
#pragma once

#include <exception>

#include "common/types.h"

namespace papm::pm {

struct FaultPlan {
  // Power cut fires immediately after the Nth persistence event since the
  // plan was armed (each line clwb'd and each sfence is one event).
  // 0 = never cut; the device still counts events (sweep sizing pass).
  u64 crash_at_event = 0;

  // Reorder: probability that a clwb'd-but-unfenced line fully drained
  // before the cut. The baseline crash() behaviour is 0.5.
  double unfenced_drain_p = 0.5;

  // Tear: probability that an in-flight line which did not fully drain
  // lands torn — each aligned 8-byte word independently old or new.
  double tear_p = 0.0;

  // Drop-with-eviction: probability that a dirty, never-clwb'd line was
  // cache-evicted and reached PM anyway (possibly torn, see tear_p).
  double evict_dirty_p = 0.0;

  // Seeds the draw for this cut (combined with crash_at_event), so every
  // crash point is individually reproducible and fault draws never
  // perturb the workload's own env RNG stream.
  u64 seed = 1;
};

// Thrown by PmDevice at the scheduled cut, after the persisted image has
// been finalized under the plan's semantics. The device is already in its
// post-crash state; callers must discard volatile handles and re-run
// recovery. Never caught inside src/ — only crash harnesses catch it.
class PowerFailure : public std::exception {
 public:
  [[nodiscard]] const char* what() const noexcept override {
    return "simulated power failure";
  }
};

}  // namespace papm::pm
