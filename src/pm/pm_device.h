// Persistent-memory device model.
//
// Stands in for Intel Optane DCPMM in App-Direct mode (DESIGN.md §2). The
// device is a flat byte-addressable region with:
//
//  * cache-line-granularity persistence: stores land in a volatile view
//    (the "CPU cache"); `clwb` + `sfence` move lines to the persisted
//    image, charging the calibrated flush costs to the simulation clock;
//  * crash simulation: `crash()` discards everything that was not flushed
//    — and lines that were clwb'd but not yet fenced survive only with
//    probability 1/2 each, modelling the reordering the paper calls
//    "dumb" device behaviour (§4);
//  * a named root directory so recovery code can find its structures
//    after a crash/remap without raw-offset bookkeeping.
//
// Higher layers never hold raw pointers across a crash: they address PM
// with byte offsets (see pm_ptr.h) and re-resolve against the device.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "sim/env.h"

namespace papm::pm {

class PmDevice {
 public:
  // Creates a zeroed region of `size` bytes. `size` must be a multiple of
  // the cache-line size and large enough for the root directory header.
  PmDevice(sim::Env& env, u64 size);

  PmDevice(const PmDevice&) = delete;
  PmDevice& operator=(const PmDevice&) = delete;

  [[nodiscard]] u64 size() const noexcept { return size_; }

  // Lowest offset usable by allocators (above the root directory header).
  [[nodiscard]] u64 data_base() const noexcept;

  // --- Volatile access (CPU load/store view) --------------------------
  // Bounds-checked access into the current (cache-inclusive) image.
  [[nodiscard]] u8* at(u64 offset, u64 len);
  [[nodiscard]] const u8* at(u64 offset, u64 len) const;
  [[nodiscard]] std::span<u8> span(u64 offset, u64 len) { return {at(offset, len), len}; }
  [[nodiscard]] std::span<const u8> span(u64 offset, u64 len) const {
    return {at(offset, len), len};
  }

  // Store with dirty-line tracking. Use this (or mark_dirty after in-place
  // writes through at()) so crash simulation knows what is unflushed.
  void store(u64 offset, std::span<const u8> data);

  // Declare that [offset, offset+len) was mutated in place via at().
  void mark_dirty(u64 offset, u64 len);

  // --- Persistence primitives -----------------------------------------
  // clwb: queue the cache lines covering [offset, offset+len) for
  // write-back. Charged per line. Lines not dirty are still charged (the
  // instruction executes regardless).
  void clwb(u64 offset, u64 len);

  // sfence: all previously clwb'd lines become durable. Charged once.
  void sfence();

  // Convenience: clwb + sfence over a range.
  void persist(u64 offset, u64 len) {
    clwb(offset, len);
    sfence();
  }

  // An 8-byte atomic store that is immediately durable once fenced; the
  // publication primitive for lock-free persistent structures.
  void store_u64(u64 offset, u64 value);
  [[nodiscard]] u64 load_u64(u64 offset) const;

  // --- Crash simulation -------------------------------------------------
  // Simulates power loss: the volatile image reverts to the persisted one.
  // clwb'd-but-unfenced lines each survive with probability 1/2 (drawn
  // from the env RNG). Dirty-but-not-clwb'd lines are always lost.
  void crash();

  // Number of lines currently dirty (unflushed) — test/introspection aid.
  [[nodiscard]] std::size_t dirty_lines() const noexcept { return dirty_.size(); }
  [[nodiscard]] std::size_t pending_lines() const noexcept { return pending_.size(); }

  // Lifetime flush statistics (for benches).
  [[nodiscard]] u64 total_clwb() const noexcept { return total_clwb_; }
  [[nodiscard]] u64 total_sfence() const noexcept { return total_sfence_; }

  // --- Named roots --------------------------------------------------------
  // A fixed table of (name -> offset) entries in the region header,
  // persisted on update. Recovery looks structures up by name.
  // 64 entries: a scaled-out host needs ~3 roots per datapath shard
  // (packet pool, store pool, store metadata) at up to 8+ shards.
  static constexpr std::size_t kMaxRoots = 64;
  static constexpr std::size_t kMaxRootName = 23;

  // Sets (or overwrites) a root. Returns invalid_argument for an
  // over-long name, out_of_space if the table is full.
  Status set_root(std::string_view name, u64 offset);
  [[nodiscard]] Result<u64> get_root(std::string_view name) const;

  sim::Env& env() noexcept { return env_; }

 private:
  struct RootEntry {
    char name[kMaxRootName + 1];
    u64 offset;
  };
  struct Header {
    u64 magic;
    u64 size;
    RootEntry roots[kMaxRoots];
  };
  static constexpr u64 kMagic = 0x50'41'50'4d'2d'50'4d'31ULL;  // "PAPM-PM1"

  [[nodiscard]] Header* header() { return reinterpret_cast<Header*>(mem_.data()); }
  [[nodiscard]] const Header* header() const {
    return reinterpret_cast<const Header*>(mem_.data());
  }

  void check_range(u64 offset, u64 len) const;

  sim::Env& env_;
  u64 size_;
  std::vector<u8> mem_;        // volatile view (includes CPU caches)
  std::vector<u8> persisted_;  // what survives power loss
  std::unordered_set<u64> dirty_;    // line indices modified, not clwb'd
  std::unordered_set<u64> pending_;  // clwb'd, awaiting sfence
  u64 total_clwb_ = 0;
  u64 total_sfence_ = 0;
};

}  // namespace papm::pm
