// Persistent-memory device model.
//
// Stands in for Intel Optane DCPMM in App-Direct mode (DESIGN.md §2). The
// device is a flat byte-addressable region with:
//
//  * cache-line-granularity persistence: stores land in a volatile view
//    (the "CPU cache"); `clwb` + `sfence` move lines to the persisted
//    image, charging the calibrated flush costs to the simulation clock;
//  * crash simulation: `crash()` discards everything that was not flushed
//    — and lines that were clwb'd but not yet fenced survive only with
//    probability 1/2 each, modelling the reordering the paper calls
//    "dumb" device behaviour (§4);
//  * fault injection: an armed FaultPlan (fault_plan.h) can cut power at
//    any flush/fence boundary and apply richer failure semantics — torn
//    64-byte lines (8-byte persistence granularity), spontaneous eviction
//    of unflushed stores, reordered unfenced drains;
//  * a named root directory so recovery code can find its structures
//    after a crash/remap without raw-offset bookkeeping.
//
// Higher layers never hold raw pointers across a crash: they address PM
// with byte offsets (see pm_ptr.h) and re-resolve against the device.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "pm/fault_plan.h"
#include "sim/env.h"

namespace papm::pm {

class PmDevice {
 public:
  /// Creates a zeroed region of `size` bytes. `size` must be a multiple of
  /// the cache-line size and large enough for the root directory header.
  /// The header is born durable (a real device is formatted offline).
  PmDevice(sim::Env& env, u64 size);

  PmDevice(const PmDevice&) = delete;
  PmDevice& operator=(const PmDevice&) = delete;

  [[nodiscard]] u64 size() const noexcept { return size_; }

  /// Lowest offset usable by allocators (above the root directory header).
  [[nodiscard]] u64 data_base() const noexcept;

  // --- Volatile access (CPU load/store view) --------------------------
  /// Bounds-checked access into the current (cache-inclusive) image.
  /// The returned pointer is a *volatile* view: it must not be held across
  /// crash(), and bytes written through it are not durable until
  /// mark_dirty() + persist() (or store(), which marks for you).
  [[nodiscard]] u8* at(u64 offset, u64 len);
  [[nodiscard]] const u8* at(u64 offset, u64 len) const;
  [[nodiscard]] std::span<u8> span(u64 offset, u64 len) { return {at(offset, len), len}; }
  [[nodiscard]] std::span<const u8> span(u64 offset, u64 len) const {
    return {at(offset, len), len};
  }

  /// Store with dirty-line tracking. Use this (or mark_dirty after in-place
  /// writes through at()) so crash simulation knows what is unflushed.
  /// Not durable until persist(); not atomic under a torn-write fault plan
  /// (only store_u64 is).
  void store(u64 offset, std::span<const u8> data);

  /// Declare that [offset, offset+len) was mutated in place via at().
  /// Forgetting this makes a write silently non-crashable — the harness's
  /// eviction mode (FaultPlan::evict_dirty_p) cannot surface it either.
  void mark_dirty(u64 offset, u64 len);

  /// Device-side DMA store (PCIe non-allocating write landing in the PM
  /// controller, bypassing the CPU cache): the bytes are durable on return
  /// — both the volatile and persisted images update, no clwb/sfence is
  /// owed, and fully covered cache lines leave the dirty/pending sets.
  /// Partially covered edge lines keep any pre-existing dirty state (the
  /// CPU may hold older bytes of those lines). Deferred-publication words
  /// are never written this way (DMA targets freshly reserved slots).
  /// Counts one fault-plan event (may throw PowerFailure — the cut lands
  /// right after placement, before any host-side publication).
  void store_dma(u64 offset, std::span<const u8> data);

  // --- Persistence primitives -----------------------------------------
  /// clwb: queue the cache lines covering [offset, offset+len) for
  /// write-back. Charged per line. Lines not dirty are still charged (the
  /// instruction executes regardless). Ordering guarantee: none until the
  /// next sfence — an unfenced line may drain, tear, or vanish at a cut.
  /// Each line is one fault-plan event (may throw PowerFailure).
  void clwb(u64 offset, u64 len);

  /// sfence: all previously clwb'd lines become durable. Charged once.
  /// This is the only ordering point: writes are durable *and ordered*
  /// only after the fence returns. One fault-plan event (may throw
  /// PowerFailure — after the fence's own drain completes).
  void sfence();

  /// Convenience: clwb + sfence over a range.
  void persist(u64 offset, u64 len) {
    clwb(offset, len);
    sfence();
  }

  /// An 8-byte atomic store; the publication primitive for lock-free
  /// persistent structures. Atomicity contract: never torn by any fault
  /// plan (DCPMM's 8-byte persistence granularity) — but like any store
  /// it is durable only after persist().
  void store_u64(u64 offset, u64 value);
  [[nodiscard]] u64 load_u64(u64 offset) const;

  // --- Deferred publication (group-commit store buffer) -----------------
  /// An 8-byte atomic store that is *withheld* from persistence: the
  /// volatile view updates immediately (loads forward the new value), but
  /// the word is masked out of every drain path — sfence, unfenced drains,
  /// tears and dirty-line evictions at a power cut — so the old persisted
  /// value survives any crash until apply_deferred() re-injects the word
  /// into the normal dirty→clwb→sfence pipeline. This is the mechanism
  /// FlushBatcher uses to defer an epoch's publications past the fence
  /// that makes the epoch's content durable: a deferred link can never
  /// become durable ahead of the bytes it points at.
  void store_u64_deferred(u64 offset, u64 value);
  /// Releases a deferred word: removes the mask and marks + clwb's it so
  /// the next sfence makes it durable. No-op for non-deferred offsets.
  void apply_deferred(u64 offset);
  [[nodiscard]] std::size_t deferred_words() const noexcept {
    return deferred_.size();
  }

  /// Whole-host fault injection (HostCut): captures the *persisted* image
  /// as a fresh device — what a rejoining host finds in its DIMMs after
  /// the cut. Both images of the clone equal this device's persisted
  /// image; dirty/pending/deferred state is empty (it died with the
  /// caches) and no fault plan is armed. The cut host's stale volatile
  /// objects may keep scribbling on *this* device afterwards; recovery
  /// runs against the frozen clone, so they can't corrupt it.
  [[nodiscard]] std::unique_ptr<PmDevice> clone_persisted() const;

  // --- Crash simulation -------------------------------------------------
  /// Simulates power loss: the volatile image reverts to the persisted one.
  /// clwb'd-but-unfenced lines each survive with probability 1/2 (drawn
  /// from the env RNG). Dirty-but-not-clwb'd lines are always lost.
  /// With an armed fault plan, the plan's drain/tear/evict semantics apply
  /// instead (drawn from the plan's own deterministic RNG).
  void crash();

  // --- Fault injection ----------------------------------------------------
  /// Arms `plan` and resets the persistence-event counter. While armed,
  /// every clwb'd line and every sfence counts one event; reaching
  /// plan.crash_at_event applies the power cut (see fault_plan.h) and
  /// throws PowerFailure from inside the flush/fence call.
  void set_fault_plan(const FaultPlan& plan) {
    plan_ = plan;
    fault_events_ = 0;
  }
  /// Disarms injection (event counting stops; crash() reverts to the
  /// baseline semantics). Call before running recovery code.
  void clear_fault_plan() noexcept { plan_.reset(); }
  /// Events counted since the plan was armed — run a workload once with
  /// crash_at_event = 0 to size a crash-point sweep.
  [[nodiscard]] u64 fault_events() const noexcept { return fault_events_; }

  /// Number of lines currently dirty (unflushed) — test/introspection aid.
  [[nodiscard]] std::size_t dirty_lines() const noexcept { return dirty_.size(); }
  [[nodiscard]] std::size_t pending_lines() const noexcept { return pending_.size(); }

  // --- Observability ------------------------------------------------------
  /// Flush/fence accounting for one measurement window. Epoch counters
  /// freeze at zero with PAPM_OBS=OFF (the compile-time kill switch) —
  /// the lifetime totals below stay on either way.
  struct FlushEpoch {
    u64 clwb = 0;           // clwb instructions retired (one per line)
    u64 sfence = 0;         // ordering fences retired
    u64 lines_drained = 0;  // lines made durable at fences
    u64 bytes_flushed = 0;  // lines_drained * kCacheLine
    u64 dirty_hwm = 0;      // peak dirty (stored, un-clwb'd) line count
    u64 pending_hwm = 0;    // peak clwb'd-but-unfenced line count
    // Group-commit accounting. Deferred fences are counted when the
    // commit epoch that absorbed them *retires* (FlushBatcher::close),
    // never when the op issued them — so sfence + sfence_deferred always
    // reconciles against the ops the window actually completed.
    u64 sfence_deferred = 0;  // fences absorbed by retired commit epochs
    u64 clwb_coalesced = 0;   // clwb's skipped (line already in flight)
  };
  /// Starts a fresh accounting window (benches: call at the start of the
  /// measured region, read obs_epoch() at its end).
  void obs_begin_epoch() noexcept { epoch_ = {}; }
  [[nodiscard]] const FlushEpoch& obs_epoch() const noexcept { return epoch_; }

  /// Mirrors future flush/fence activity into `r` (per-shard registries
  /// merge at report time): counters pm.clwb / pm.sfence /
  /// pm.bytes_flushed / pm.sfence_deferred / pm.clwb_coalesced, gauges
  /// pm.dirty_lines_hwm / pm.pending_lines_hwm.
  void set_metrics(obs::MetricRegistry* r);

  /// Group-commit bookkeeping hooks (called by FlushBatcher when a commit
  /// epoch retires — attribution happens at retirement, not issue time).
  void note_deferred_sfence(u64 n) noexcept {
    if constexpr (obs::kEnabled) {
      epoch_.sfence_deferred += n;
      obs::inc(m_sfence_deferred_, n);
    } else {
      (void)n;
    }
  }
  void note_coalesced_clwb(u64 n) noexcept {
    if constexpr (obs::kEnabled) {
      epoch_.clwb_coalesced += n;
      obs::inc(m_clwb_coalesced_, n);
    } else {
      (void)n;
    }
  }

  /// True when the line holding `offset` is clwb'd and still awaiting a
  /// fence (and was not re-dirtied since) — the FlushBatcher coalesces a
  /// repeat clwb of such a line away.
  [[nodiscard]] bool line_in_flight(u64 offset) const noexcept {
    return pending_.count(offset / kCacheLine) != 0;
  }

  /// Lifetime flush statistics (for benches).
  [[nodiscard]] u64 total_clwb() const noexcept { return total_clwb_; }
  [[nodiscard]] u64 total_sfence() const noexcept { return total_sfence_; }
  /// Bytes resolved through at() over the device's lifetime (reads and
  /// writes alike). Recovery benches diff this around a recovery call to
  /// report bytes scanned.
  [[nodiscard]] u64 total_accessed_bytes() const noexcept {
    return accessed_bytes_;
  }

  // --- Named roots --------------------------------------------------------
  // A fixed table of (name -> offset) entries in the region header,
  // persisted on update. Recovery looks structures up by name.
  // 64 entries: a scaled-out host needs ~3 roots per datapath shard
  // (packet pool, store pool, store metadata) at up to 8+ shards.
  static constexpr std::size_t kMaxRoots = 64;
  static constexpr std::size_t kMaxRootName = 23;

  /// Sets (or overwrites) a root, durably (persisted before returning).
  /// Overwriting an existing name updates only the 8-byte offset — atomic
  /// under every fault plan. Creating a new entry is not atomic: a cut
  /// mid-create can leave a torn (garbage-named) entry, which recovery
  /// ignores but which permanently consumes its slot (leak, not
  /// corruption). Returns invalid_argument for an over-long name,
  /// out_of_space if the table is full.
  Status set_root(std::string_view name, u64 offset);
  [[nodiscard]] Result<u64> get_root(std::string_view name) const;

  sim::Env& env() noexcept { return env_; }

 private:
  struct RootEntry {
    char name[kMaxRootName + 1];
    u64 offset;
  };
  struct Header {
    u64 magic;
    u64 size;
    RootEntry roots[kMaxRoots];
  };
  static constexpr u64 kMagic = 0x50'41'50'4d'2d'50'4d'31ULL;  // "PAPM-PM1"

  [[nodiscard]] Header* header() { return reinterpret_cast<Header*>(mem_.data()); }
  [[nodiscard]] const Header* header() const {
    return reinterpret_cast<const Header*>(mem_.data());
  }

  void check_range(u64 offset, u64 len) const;
  // One persistence-ordering instruction retired; fires the scheduled cut.
  void bump_fault_event();
  // Applies the armed plan's drain/tear/evict semantics to the persisted
  // image and reverts the volatile view (the power cut itself).
  void power_cut();
  // Drains `line` into the persisted image; torn = each aligned 8-byte
  // word independently old or new. Deferred-publication words are always
  // masked out: they keep their persisted value on every drain path.
  void drain_line(u64 line, bool torn, Rng& rng);
  // Whole-line drain with deferred-word masking (the sfence path).
  void drain_line_whole(u64 line);

  sim::Env& env_;
  u64 size_;
  std::vector<u8> mem_;        // volatile view (includes CPU caches)
  std::vector<u8> persisted_;  // what survives power loss
  std::unordered_set<u64> dirty_;    // line indices modified, not clwb'd
  std::unordered_set<u64> pending_;  // clwb'd, awaiting sfence
  std::unordered_set<u64> deferred_;  // byte offsets of withheld 8B words
  std::optional<FaultPlan> plan_;
  u64 fault_events_ = 0;
  u64 total_clwb_ = 0;
  u64 total_sfence_ = 0;
  mutable u64 accessed_bytes_ = 0;

  FlushEpoch epoch_{};
  obs::Counter* m_clwb_ = nullptr;
  obs::Counter* m_sfence_ = nullptr;
  obs::Counter* m_bytes_flushed_ = nullptr;
  obs::Counter* m_sfence_deferred_ = nullptr;
  obs::Counter* m_clwb_coalesced_ = nullptr;
  obs::Gauge* m_dirty_hwm_ = nullptr;
  obs::Gauge* m_pending_hwm_ = nullptr;
};

}  // namespace papm::pm
