// Group/epoch commit: amortizing persistence ordering points across
// queued requests.
//
// The flush accounting (EXPERIMENTS.md, Fig 2 metrics) shows the stores
// pay ~27 clwb + ~11 sfence per 1 KB op — and most of those fences order
// *independent* requests. When the server core is backlogged
// (HostCpu::backlogged), a FlushBatcher groups the queued requests into a
// commit epoch:
//
//   * content writes (value records, index nodes, WAL frames) are clwb'd
//     immediately but their fences are *deferred* to the epoch close;
//     repeat clwb's of a line already in flight are coalesced away;
//   * publications (the 8-byte atomic link stores every structure
//     linearizes through) are *withheld* in the device's deferred-store
//     buffer (PmDevice::store_u64_deferred) — visible to loads, masked
//     from every crash drain path — so a link can never become durable
//     before the bytes it points at;
//   * acks are queued and released only after the epoch's fences retire;
//   * frees of replaced values are quarantined past the epoch close, so
//     an old acked value can never be overwritten while a cut could still
//     resurrect the epoch.
//
// Epoch close is two-phase:  fence #1 makes all content durable; the
// withheld publications are then applied (mark_dirty + clwb); fence #2
// makes them durable; only then do acks run and quarantined frees
// execute. A power cut anywhere in between resolves every in-epoch op to
// old/new/absent under the existing crash invariants (I1–I4) — the sweep
// in tests/test_crash_recovery.cpp cuts at every boundary inside epochs.
//
// When the server is idle (not backlogged) every call passes straight
// through to the device, so single-connection latency and the Table 1
// reproduction are bit-identical to the unbatched build. Compiling with
// -DPAPM_GROUP_COMMIT=OFF removes the batched paths entirely (the `nogc`
// preset; tier-1 keeps the legacy fence-per-op path crash-tested).
#pragma once

#include <functional>
#include <vector>

#include "common/types.h"
#include "pm/pm_device.h"

namespace papm::pm {

class PmPool;

#ifdef PAPM_GROUP_COMMIT_DISABLED
inline constexpr bool kGroupCommitCompiled = false;
#else
inline constexpr bool kGroupCommitCompiled = true;
#endif

// Policy knobs (see storage/knobs.h: StoreKnobs carries one of these from
// the harness RunConfig down to the per-shard batchers).
struct GroupCommitPolicy {
  bool enabled = true;       // master switch (runtime; AND'ed with compile)
  u32 max_epoch_ops = 64;    // close after this many ops joined the epoch
  // Close when the open epoch gets older than this. Sized so the op-count
  // limit, not the deadline, closes epochs at saturation (a 1 KB put costs
  // ~12 µs of core time); the deadline is the trickle-traffic backstop
  // that bounds how long an ack can wait.
  u64 max_deferral_ns = 800'000;
  // Close when no new op has joined the epoch for this long: the burst
  // drained and every queued ack is waiting on the close. With closed-loop
  // clients the stream stalls *because* the acks are held, so without this
  // the epoch would sit until max_deferral_ns. A burst's arrivals all
  // dispatch before any drain check fires (the checks are scheduled past
  // the ops' charged completion times), so this only needs to cover the
  // arrival jitter within a burst, not the per-op service time; it is the
  // whole ack-latency overhead a drained burst pays.
  u64 idle_close_ns = 2'000;
};

class FlushBatcher {
 public:
  explicit FlushBatcher(PmDevice& dev, GroupCommitPolicy policy = {})
      : dev_(&dev), policy_(policy) {}

  // Pools whose freelists are sealed while batching (heads durably zeroed
  // at activation; freed blocks recycle through DRAM; real heads restored
  // at deactivation). Register every pool the batched datapath allocates
  // from.
  void register_pool(PmPool& pool) { pools_.push_back(&pool); }

  void set_policy(const GroupCommitPolicy& p) { policy_ = p; }
  [[nodiscard]] const GroupCommitPolicy& policy() const { return policy_; }

  // --- Op bracketing (the server calls these around each request) ------
  /// Joins the current request to an epoch when `backlogged`; otherwise
  /// closes any open epoch and drops to pass-through. Opening the first
  /// epoch seals the registered pools (one fence).
  void begin_op(bool backlogged, u64 now_ns);
  /// Marks the request complete; closes the epoch at max_epoch_ops.
  void end_op();
  /// True while ops should route through the batched paths.
  [[nodiscard]] bool batching() const noexcept { return batching_; }
  [[nodiscard]] bool epoch_open() const noexcept { return epoch_open_; }
  /// Monotonic id of the current/most-recent epoch; lets structures
  /// lazily invalidate per-epoch volatile state (e.g. fresh-node sets).
  [[nodiscard]] u64 epoch_serial() const noexcept { return epoch_serial_; }
  /// Open time of the current epoch (valid while epoch_open()); lets the
  /// server arm its deadline watchdog at open + max_deferral.
  [[nodiscard]] u64 epoch_opened_ns() const noexcept {
    return epoch_opened_ns_;
  }

  // --- Datapath primitives (pass-through when not batching) ------------
  /// clwb the range now; the fence is the epoch's. Lines already in
  /// flight (clwb'd, unfenced, not re-dirtied) are coalesced away.
  void flush(u64 offset, u64 len);
  /// A fence the legacy path would have issued here; deferred to close.
  void fence();
  /// flush + fence.
  void persist(u64 offset, u64 len) {
    flush(offset, len);
    fence();
  }
  /// Withheld 8-byte publication; applied and fenced at close.
  void publish_u64(u64 offset, u64 value);
  /// Queues `cb` to run once the epoch's second fence retires (the ack
  /// boundary). Runs immediately when not batching.
  void on_committed(std::function<void()> cb);
  /// Quarantines `fn` (typically a free of a replaced value) past the
  /// epoch close. Runs immediately when not batching.
  void defer(std::function<void()> fn);

  // --- Epoch control ---------------------------------------------------
  /// Retires the open epoch: fence #1 (content), apply publications,
  /// fence #2, acks, quarantined work. No-op when no epoch is open.
  void close();
  /// Deadline/idle check — the host's poll loop calls this so deferred
  /// acks can never stall when the request stream dries up.
  void maybe_close(u64 now_ns, bool idle);
  /// Leaves batching entirely: closes the epoch and restores the sealed
  /// pools' durable freelists. Safe to call when already idle.
  void deactivate();

  // --- Introspection (tests, benches) ----------------------------------
  [[nodiscard]] u64 epochs_closed() const noexcept { return epochs_closed_; }
  [[nodiscard]] u64 deferred_fences() const noexcept {
    return deferred_fences_total_;
  }
  [[nodiscard]] u32 ops_in_epoch() const noexcept { return ops_in_epoch_; }
  [[nodiscard]] u32 max_epoch_ops_seen() const noexcept {
    return max_epoch_ops_seen_;
  }

 private:
  // Consecutive pass-through (not-backlogged) ops before the sealed pools
  // restore their durable freelists: hysteresis so a momentary load dip
  // costs one epoch close, not a freelist restore + re-seal cycle.
  static constexpr u32 kIdleOpsBeforeRestore = 64;

  void open_epoch(u64 now_ns);

  PmDevice* dev_;
  GroupCommitPolicy policy_;
  std::vector<PmPool*> pools_;
  bool active_ = false;      // pools sealed, batching regime on
  bool batching_ = false;    // current op routes through batched paths
  bool epoch_open_ = false;
  u64 epoch_opened_ns_ = 0;
  u32 ops_in_epoch_ = 0;
  u64 epoch_deferred_fences_ = 0;
  std::vector<u64> publishes_;  // withheld word offsets, applied at close
  std::vector<std::function<void()>> acks_;
  std::vector<std::function<void()>> quarantine_;
  u32 passthrough_run_ = 0;
  u64 epoch_serial_ = 0;
  u64 epochs_closed_ = 0;
  u64 deferred_fences_total_ = 0;
  u32 max_epoch_ops_seen_ = 0;
};

}  // namespace papm::pm
