// Offset-based persistent pointers.
//
// Structures living inside a PmDevice region never store virtual
// addresses: after a crash the region may be mapped anywhere, so links are
// byte offsets from the region base. Offset 0 is never a valid object
// (the region header lives there), so it doubles as null.
#pragma once

#include "common/types.h"
#include "pm/pm_device.h"

namespace papm::pm {

template <typename T>
class pm_ptr {
 public:
  constexpr pm_ptr() noexcept = default;
  constexpr explicit pm_ptr(u64 offset) noexcept : off_(offset) {}

  [[nodiscard]] constexpr u64 offset() const noexcept { return off_; }
  [[nodiscard]] constexpr bool is_null() const noexcept { return off_ == 0; }
  constexpr explicit operator bool() const noexcept { return !is_null(); }

  /// Resolve against a device. The returned raw pointer must not be held
  /// across a crash() or region remap; writes through it are volatile
  /// until the caller runs mark_dirty() + persist() on the range.
  [[nodiscard]] T* get(PmDevice& dev) const {
    return is_null() ? nullptr : reinterpret_cast<T*>(dev.at(off_, sizeof(T)));
  }
  [[nodiscard]] const T* get(const PmDevice& dev) const {
    return is_null() ? nullptr : reinterpret_cast<const T*>(dev.at(off_, sizeof(T)));
  }

  friend constexpr bool operator==(pm_ptr a, pm_ptr b) noexcept {
    return a.off_ == b.off_;
  }

  static constexpr pm_ptr null() noexcept { return {}; }

 private:
  u64 off_ = 0;
};

}  // namespace papm::pm
