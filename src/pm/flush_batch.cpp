#include "pm/flush_batch.h"

#include <utility>

#include "pm/pm_pool.h"

namespace papm::pm {

void FlushBatcher::open_epoch(u64 now_ns) {
  epoch_open_ = true;
  epoch_serial_++;
  epoch_opened_ns_ = now_ns;
  ops_in_epoch_ = 0;
  if (!active_) {
    active_ = true;
    bool sealed = false;
    for (PmPool* p : pools_) sealed |= p->enter_commit_epoch();
    // Heads must be durably zero before any popped block's re-used
    // contents can drain — one fence for the whole batching period.
    if (sealed) dev_->sfence();
  }
}

void FlushBatcher::begin_op(bool backlogged, u64 now_ns) {
  const bool want = kGroupCommitCompiled && policy_.enabled && backlogged;
  if (!want) {
    // Pass-through op. Close any open epoch (its acks must not wait
    // behind an idle stream), but keep the pools sealed across momentary
    // load dips: restoring and re-sealing the freelists writes a clwb per
    // parked free, so flapping in and out of the regime on every
    // scheduling blip would dominate the flush bill it is meant to cut.
    // Only a sustained idle run deactivates.
    batching_ = false;
    if (active_) {
      if (epoch_open_) close();
      if (++passthrough_run_ >= kIdleOpsBeforeRestore) deactivate();
    }
    return;
  }
  passthrough_run_ = 0;
  // A stale epoch (deadline passed while the core was between ops)
  // retires before this op joins a fresh one.
  if (epoch_open_ && now_ns - epoch_opened_ns_ >= policy_.max_deferral_ns) {
    close();
  }
  if (!epoch_open_) open_epoch(now_ns);
  batching_ = true;
}

void FlushBatcher::end_op() {
  if (!batching_) return;
  batching_ = false;
  if (!epoch_open_) return;
  ops_in_epoch_++;
  if (ops_in_epoch_ > max_epoch_ops_seen_) max_epoch_ops_seen_ = ops_in_epoch_;
  if (ops_in_epoch_ >= policy_.max_epoch_ops) close();
}

void FlushBatcher::flush(u64 offset, u64 len) {
  if (!batching_) {
    dev_->clwb(offset, len);
    return;
  }
  if (len == 0) return;
  const u64 first = offset / kCacheLine;
  const u64 last = (offset + len - 1) / kCacheLine;
  u64 coalesced = 0;
  for (u64 line = first; line <= last; line++) {
    // A line already clwb'd this epoch (and not re-dirtied since) is in
    // flight toward the same fence — a second clwb buys nothing.
    if (dev_->line_in_flight(line * kCacheLine)) {
      coalesced++;
      continue;
    }
    dev_->clwb(line * kCacheLine, kCacheLine);
  }
  if (coalesced > 0) dev_->note_coalesced_clwb(coalesced);
}

void FlushBatcher::fence() {
  if (!batching_) {
    dev_->sfence();
    return;
  }
  epoch_deferred_fences_++;
}

void FlushBatcher::publish_u64(u64 offset, u64 value) {
  if (!batching_) {
    dev_->store_u64(offset, value);
    dev_->persist(offset, 8);
    return;
  }
  dev_->store_u64_deferred(offset, value);
  publishes_.push_back(offset);
}

void FlushBatcher::on_committed(std::function<void()> cb) {
  if (!batching_) {
    cb();
    return;
  }
  acks_.push_back(std::move(cb));
}

void FlushBatcher::defer(std::function<void()> fn) {
  if (!batching_) {
    fn();
    return;
  }
  quarantine_.push_back(std::move(fn));
}

void FlushBatcher::close() {
  if (!epoch_open_) return;
  epoch_open_ = false;
  batching_ = false;
  // Fence #1: every content line of the epoch (values, index nodes, WAL
  // frames, the pools' bump frontiers) becomes durable. Withheld
  // publications are masked from the drain, so nothing can reference
  // bytes that are not yet stable.
  for (PmPool* p : pools_) p->flush_metadata();
  dev_->sfence();
  // Apply the withheld publications, then fence #2 to retire them. A cut
  // between the two fences resolves each publication independently
  // (applied-in-flight may drain; unapplied never do) — each in-epoch op
  // lands on old/new/absent, never a dangling link.
  if (!publishes_.empty()) {
    for (const u64 off : publishes_) dev_->apply_deferred(off);
    publishes_.clear();
    dev_->sfence();
  }
  // Attribute the fences this epoch absorbed to its retirement, so flush
  // accounting reconciles (`--check-attribution`).
  if (epoch_deferred_fences_ > 0) {
    dev_->note_deferred_sfence(epoch_deferred_fences_);
    deferred_fences_total_ += epoch_deferred_fences_;
    epoch_deferred_fences_ = 0;
  }
  epochs_closed_++;
  // Acks only after fence #2: an acked op is in a retired epoch by
  // definition. Quarantined frees run last — old values stay intact until
  // nothing can resurrect the epoch that replaced them.
  std::vector<std::function<void()>> acks = std::move(acks_);
  acks_.clear();
  std::vector<std::function<void()>> quarantine = std::move(quarantine_);
  quarantine_.clear();
  for (auto& cb : acks) cb();
  for (auto& fn : quarantine) fn();
}

void FlushBatcher::maybe_close(u64 now_ns, bool idle) {
  if (epoch_open_ &&
      (idle || now_ns - epoch_opened_ns_ >= policy_.max_deferral_ns)) {
    close();
  }
  if (active_ && idle && !epoch_open_) deactivate();
}

void FlushBatcher::deactivate() {
  close();
  if (!active_) return;
  active_ = false;
  for (PmPool* p : pools_) p->exit_commit_epoch();
}

}  // namespace papm::pm
