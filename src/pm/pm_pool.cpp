#include "pm/pm_pool.h"

#include <cstring>
#include <stdexcept>

namespace papm::pm {

PmPool::PmPool(PmDevice& dev, u64 header_off)
    : dev_(&dev), header_off_(header_off) {}

PmPool::PoolHeader* PmPool::hdr() {
  return reinterpret_cast<PoolHeader*>(dev_->at(header_off_, sizeof(PoolHeader)));
}
const PmPool::PoolHeader* PmPool::hdr() const {
  return reinterpret_cast<const PoolHeader*>(
      dev_->at(header_off_, sizeof(PoolHeader)));
}

u64 PmPool::field_offset(const void* field) const {
  return static_cast<const u8*>(field) -
         dev_->at(header_off_, sizeof(PoolHeader)) + header_off_;
}

void PmPool::persist_header_field(const void* field, u64 len) {
  const u64 off = field_offset(field);
  dev_->mark_dirty(off, len);
  dev_->persist(off, len);
}

PmPool PmPool::create(PmDevice& dev, std::string_view name, u64 base,
                      u64 span_len) {
  if (base % kCacheLine != 0 || span_len < sizeof(PoolHeader) + kCacheLine) {
    throw std::invalid_argument("PmPool: bad span");
  }
  PmPool pool(dev, base);
  PoolHeader* h = pool.hdr();
  std::memset(h, 0, sizeof(PoolHeader));
  h->magic = kMagic;
  h->base = base;
  h->span_len = span_len;
  h->bump = align_up(base + sizeof(PoolHeader), kCacheLine);
  dev.mark_dirty(base, sizeof(PoolHeader));
  dev.persist(base, sizeof(PoolHeader));
  const Status st = dev.set_root(name, base);
  if (!st.ok()) throw std::runtime_error("PmPool: root table full");
  return pool;
}

Result<PmPool> PmPool::recover(PmDevice& dev, std::string_view name) {
  const auto root = dev.get_root(name);
  if (!root.ok()) return root.errc();
  PmPool pool(dev, root.value());
  if (pool.hdr()->magic != kMagic) return Errc::corrupted;
  return pool;
}

std::optional<std::size_t> PmPool::class_for(u64 size) noexcept {
  for (std::size_t i = 0; i < kClassSizes.size(); i++) {
    if (size <= kClassSizes[i]) return i;
  }
  return std::nullopt;
}

Result<u64> PmPool::alloc(u64 size) {
  if (size == 0) return Errc::invalid_argument;
  auto& env = dev_->env();
  // In epoch mode a recycled block is a DRAM pop — charge the freelist-pop
  // cost, not the user-space PM allocator's fence-bound cost.
  env.clock().advance(in_epoch_ ? env.cost.pool_alloc_ns
                      : alloc_charge_ns_ >= 0 ? alloc_charge_ns_
                                              : env.cost.pm_alloc_ns);

  PoolHeader* h = hdr();
  const auto cls = class_for(size);
  if (cls.has_value()) {
    if (in_epoch_) {
      // Blocks freed this batching period recycle LIFO through DRAM.
      if (!epoch_free_[*cls].empty()) {
        const u64 off = epoch_free_[*cls].back();
        epoch_free_[*cls].pop_back();
        allocated_bytes_ += kClassSizes[*cls];
        return off;
      }
      // Pop the shadow of the sealed chain: links are pre-seal durable
      // and the durable head is zero, so nothing needs persisting.
      const u64 head = shadow_heads_[*cls];
      if (head != 0) {
        u64 next;
        std::memcpy(&next, dev_->at(head, 8), 8);
        shadow_heads_[*cls] = next;
        allocated_bytes_ += kClassSizes[*cls];
        return head;
      }
    } else {
      const u64 head = h->free_heads[*cls];
      if (head != 0) {
        // Pop: read next link from the block, then publish the new head.
        u64 next;
        std::memcpy(&next, dev_->at(head, 8), 8);
        h->free_heads[*cls] = next;
        persist_header_field(&h->free_heads[*cls], 8);
        allocated_bytes_ += kClassSizes[*cls];
        return head;
      }
    }
  }
  // Carve from the bump region.
  const u64 block = cls.has_value() ? kClassSizes[*cls]
                                    : align_up(size, kCacheLine);
  const u64 at = align_up(h->bump, cls.has_value() ? u64{kClassSizes[*cls]}
                                                   : u64{kCacheLine});
  if (at + block > h->base + h->span_len) return Errc::out_of_space;
  h->bump = at + block;
  if (in_epoch_) {
    // The frontier must be durable before any publication that references
    // space above it retires; flush_metadata() clwb's it before the
    // epoch's first fence. Early drains are harmless: bump is monotonic,
    // so a premature value only leaks.
    dev_->mark_dirty(field_offset(&h->bump), 8);
    meta_dirty_ = true;
  } else {
    persist_header_field(&h->bump, 8);
  }
  allocated_bytes_ += block;
  return at;
}

void PmPool::free(u64 offset, u64 size) {
  auto& env = dev_->env();
  env.clock().advance(in_epoch_ ? env.cost.pool_alloc_ns
                      : free_charge_ns_ >= 0 ? free_charge_ns_
                                             : env.cost.pm_free_ns);

  const auto cls = class_for(size);
  if (!cls.has_value()) return;  // large blocks are not recycled
  if (in_epoch_) {
    // Zero persist events: the block parks in DRAM until reuse (or until
    // exit_commit_epoch links it back durably). A cut loses the whole
    // free pool to the leak bound — durable heads are already sealed.
    epoch_free_[*cls].push_back(offset);
    if (allocated_bytes_ >= kClassSizes[*cls]) {
      allocated_bytes_ -= kClassSizes[*cls];
    }
    return;
  }
  PoolHeader* h = hdr();
  // Push: write next link into the block, persist it, then publish head.
  const u64 old_head = h->free_heads[*cls];
  dev_->store(offset, std::span<const u8>(reinterpret_cast<const u8*>(&old_head), 8));
  dev_->persist(offset, 8);
  h->free_heads[*cls] = offset;
  persist_header_field(&h->free_heads[*cls], 8);
  if (allocated_bytes_ >= kClassSizes[*cls]) allocated_bytes_ -= kClassSizes[*cls];
}

bool PmPool::enter_commit_epoch() {
  if (in_epoch_) return false;
  in_epoch_ = true;
  meta_dirty_ = false;
  PoolHeader* h = hdr();
  bool sealed = false;
  for (std::size_t i = 0; i < kClassSizes.size(); i++) {
    shadow_heads_[i] = h->free_heads[i];
    epoch_free_[i].clear();
    if (h->free_heads[i] != 0) {
      // Durably zero the head so no chain block can be reached from PM
      // while its re-used contents are in flight. The caller fences.
      const u64 off = field_offset(&h->free_heads[i]);
      dev_->store_u64(off, 0);
      dev_->clwb(off, 8);
      sealed = true;
    }
  }
  return sealed;
}

void PmPool::exit_commit_epoch() {
  if (!in_epoch_) return;
  in_epoch_ = false;
  PoolHeader* h = hdr();
  if (meta_dirty_) {
    dev_->clwb(field_offset(&h->bump), 8);
    meta_dirty_ = false;
  }
  // Phase 1: link every DRAM-parked block onto its shadow chain.
  bool links = false;
  for (std::size_t i = 0; i < kClassSizes.size(); i++) {
    u64 head = shadow_heads_[i];
    for (const u64 off : epoch_free_[i]) {
      dev_->store(off, std::span<const u8>(reinterpret_cast<const u8*>(&head), 8));
      dev_->clwb(off, 8);
      head = off;
      links = true;
    }
    epoch_free_[i].clear();
    shadow_heads_[i] = head;
  }
  if (links) dev_->sfence();
  // Phase 2: republish the heads; links are durable first.
  bool heads = false;
  for (std::size_t i = 0; i < kClassSizes.size(); i++) {
    if (h->free_heads[i] != shadow_heads_[i]) {
      const u64 off = field_offset(&h->free_heads[i]);
      dev_->store_u64(off, shadow_heads_[i]);
      dev_->clwb(off, 8);
      heads = true;
    }
  }
  if (heads) dev_->sfence();
}

void PmPool::flush_metadata() {
  if (!meta_dirty_) return;
  PoolHeader* h = hdr();
  dev_->clwb(field_offset(&h->bump), 8);
  meta_dirty_ = false;
}

u64 PmPool::capacity() const noexcept {
  const PoolHeader* h = hdr();
  return h->base + h->span_len - align_up(h->base + sizeof(PoolHeader), kCacheLine);
}

u64 PmPool::bump_used() const {
  const PoolHeader* h = hdr();
  return h->bump - align_up(h->base + sizeof(PoolHeader), kCacheLine);
}

}  // namespace papm::pm
