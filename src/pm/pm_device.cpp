#include "pm/pm_device.h"

#include <cassert>
#include <cstring>
#include <stdexcept>

namespace papm::pm {

PmDevice::PmDevice(sim::Env& env, u64 size) : env_(env), size_(size) {
  if (size % kCacheLine != 0 || size < sizeof(Header) + kCacheLine) {
    throw std::invalid_argument("PmDevice: bad size");
  }
  mem_.assign(size, 0);
  persisted_.assign(size, 0);
  Header* h = header();
  h->magic = kMagic;
  h->size = size;
  // The header is born durable: a real device would be formatted offline.
  std::memcpy(persisted_.data(), mem_.data(), sizeof(Header));
}

u64 PmDevice::data_base() const noexcept {
  return align_up(sizeof(Header), kCacheLine);
}

std::unique_ptr<PmDevice> PmDevice::clone_persisted() const {
  auto d = std::make_unique<PmDevice>(env_, size_);
  // What the DIMMs hold after the cut: the persisted image, verbatim —
  // including the root directory. The caches (dirty/pending/deferred)
  // died with the host.
  d->mem_ = persisted_;
  d->persisted_ = persisted_;
  return d;
}

void PmDevice::check_range(u64 offset, u64 len) const {
  if (offset > size_ || len > size_ - offset) {
    throw std::out_of_range("PmDevice: access out of range");
  }
}

u8* PmDevice::at(u64 offset, u64 len) {
  check_range(offset, len);
  accessed_bytes_ += len;
  return mem_.data() + offset;
}

const u8* PmDevice::at(u64 offset, u64 len) const {
  check_range(offset, len);
  accessed_bytes_ += len;
  return mem_.data() + offset;
}

void PmDevice::store(u64 offset, std::span<const u8> data) {
  check_range(offset, data.size());
  std::memcpy(mem_.data() + offset, data.data(), data.size());
  mark_dirty(offset, data.size());
}

void PmDevice::store_dma(u64 offset, std::span<const u8> data) {
  if (data.empty()) return;
  check_range(offset, data.size());
  // The DMA write lands in the PM controller directly: both images update,
  // no flush is owed for these bytes.
  std::memcpy(mem_.data() + offset, data.data(), data.size());
  std::memcpy(persisted_.data() + offset, data.data(), data.size());
  // Lines fully covered by the DMA carry no stale CPU-side bytes any more;
  // partially covered edge lines keep whatever dirty state the CPU owes.
  const u64 first_full = align_up(offset, kCacheLine) / kCacheLine;
  const u64 end = offset + data.size();
  const u64 last_full_end = (end / kCacheLine) * kCacheLine;
  for (u64 line = first_full; line * kCacheLine < last_full_end; line++) {
    dirty_.erase(line);
    pending_.erase(line);
  }
  bump_fault_event();  // boundary right after placement (pre-publication)
}

void PmDevice::mark_dirty(u64 offset, u64 len) {
  if (len == 0) return;
  check_range(offset, len);
  const u64 first = offset / kCacheLine;
  const u64 last = (offset + len - 1) / kCacheLine;
  for (u64 line = first; line <= last; line++) {
    dirty_.insert(line);
    pending_.erase(line);  // a new store re-dirties a clwb'd line
  }
  if constexpr (obs::kEnabled) {
    if (dirty_.size() > epoch_.dirty_hwm) epoch_.dirty_hwm = dirty_.size();
    obs::peak(m_dirty_hwm_, dirty_.size());
  }
}

void PmDevice::set_metrics(obs::MetricRegistry* r) {
  if (r == nullptr) {
    m_clwb_ = m_sfence_ = m_bytes_flushed_ = nullptr;
    m_sfence_deferred_ = m_clwb_coalesced_ = nullptr;
    m_dirty_hwm_ = m_pending_hwm_ = nullptr;
    return;
  }
  m_clwb_ = &r->counter("pm.clwb");
  m_sfence_ = &r->counter("pm.sfence");
  m_bytes_flushed_ = &r->counter("pm.bytes_flushed");
  m_sfence_deferred_ = &r->counter("pm.sfence_deferred");
  m_clwb_coalesced_ = &r->counter("pm.clwb_coalesced");
  m_dirty_hwm_ = &r->gauge("pm.dirty_lines_hwm");
  m_pending_hwm_ = &r->gauge("pm.pending_lines_hwm");
}

void PmDevice::bump_fault_event() {
  if (!plan_.has_value()) return;
  fault_events_++;
  if (plan_->crash_at_event != 0 && fault_events_ == plan_->crash_at_event) {
    power_cut();
    throw PowerFailure();
  }
}

void PmDevice::clwb(u64 offset, u64 len) {
  if (len == 0) return;
  check_range(offset, len);
  const u64 first = offset / kCacheLine;
  const u64 last = (offset + len - 1) / kCacheLine;
  for (u64 line = first; line <= last; line++) {
    if (dirty_.erase(line) > 0) pending_.insert(line);
    total_clwb_++;
    if constexpr (obs::kEnabled) {
      epoch_.clwb++;
      obs::inc(m_clwb_);
      if (pending_.size() > epoch_.pending_hwm) {
        epoch_.pending_hwm = pending_.size();
      }
      obs::peak(m_pending_hwm_, pending_.size());
    }
    env_.clock().advance(env_.cost.clwb_ns);
    bump_fault_event();  // the cut may fire with this line in flight
  }
}

void PmDevice::sfence() {
  for (u64 line : pending_) drain_line_whole(line);
  if constexpr (obs::kEnabled) {
    epoch_.sfence++;
    epoch_.lines_drained += pending_.size();
    epoch_.bytes_flushed += pending_.size() * kCacheLine;
    obs::inc(m_sfence_);
    obs::inc(m_bytes_flushed_, pending_.size() * kCacheLine);
  }
  pending_.clear();
  total_sfence_++;
  env_.clock().advance(env_.cost.sfence_ns);
  bump_fault_event();  // boundary after the fence retires
}

void PmDevice::store_u64(u64 offset, u64 value) {
  assert(offset % 8 == 0 && "store_u64 must be aligned");
  u8 buf[8];
  std::memcpy(buf, &value, 8);
  store(offset, buf);
}

u64 PmDevice::load_u64(u64 offset) const {
  u64 v;
  std::memcpy(&v, at(offset, 8), 8);
  return v;
}

void PmDevice::store_u64_deferred(u64 offset, u64 value) {
  assert(offset % 8 == 0 && "store_u64_deferred must be aligned");
  check_range(offset, 8);
  // The volatile view forwards the value to loads immediately, but the
  // word is withheld from every drain path until apply_deferred() — it is
  // deliberately *not* marked dirty, so eviction cannot leak it either.
  std::memcpy(mem_.data() + offset, &value, 8);
  deferred_.insert(offset);
}

void PmDevice::apply_deferred(u64 offset) {
  if (deferred_.erase(offset) == 0) return;
  mark_dirty(offset, 8);
  clwb(offset, 8);
}

void PmDevice::drain_line_whole(u64 line) {
  if (deferred_.empty()) {
    std::memcpy(persisted_.data() + line * kCacheLine,
                mem_.data() + line * kCacheLine, kCacheLine);
    return;
  }
  for (u64 w = 0; w < kCacheLine / 8; w++) {
    const u64 off = line * kCacheLine + w * 8;
    if (deferred_.count(off) != 0) continue;  // withheld publication
    std::memcpy(persisted_.data() + off, mem_.data() + off, 8);
  }
}

void PmDevice::drain_line(u64 line, bool torn, Rng& rng) {
  if (!torn) {
    drain_line_whole(line);
    return;
  }
  // 8-byte persistence granularity: each aligned word independently made
  // it or didn't. store_u64 publications occupy exactly one word, so they
  // are never split — the atomicity contract crash-consistent code needs.
  // Deferred publications never drain at all: the CPU had not released
  // them from its (simulated) store buffer.
  for (u64 w = 0; w < kCacheLine / 8; w++) {
    const u64 off = line * kCacheLine + w * 8;
    if (deferred_.count(off) != 0) continue;
    if (rng.chance(0.5)) {
      std::memcpy(persisted_.data() + off, mem_.data() + off, 8);
    }
  }
}

void PmDevice::power_cut() {
  // Deterministic per crash point: fault draws never touch env_.rng, so
  // the workload's own stream is identical across sweep iterations.
  Rng rng(plan_->seed ^ (fault_events_ * 0x9e3779b97f4a7c15ULL));
  // In-flight (clwb'd, unfenced) lines: drain, tear, or vanish.
  for (u64 line : pending_) {
    if (rng.chance(plan_->unfenced_drain_p)) {
      drain_line(line, /*torn=*/false, rng);
    } else if (plan_->tear_p > 0 && rng.chance(plan_->tear_p)) {
      drain_line(line, /*torn=*/true, rng);
    }
  }
  // Dirty (never clwb'd) lines: normally lost with the cache, but any may
  // have been evicted — reaching PM unordered, possibly torn.
  if (plan_->evict_dirty_p > 0) {
    for (u64 line : dirty_) {
      if (rng.chance(plan_->evict_dirty_p)) {
        drain_line(line, plan_->tear_p > 0 && rng.chance(plan_->tear_p), rng);
      }
    }
  }
  pending_.clear();
  dirty_.clear();
  mem_ = persisted_;  // unapplied deferred publications revert with it
  deferred_.clear();
}

void PmDevice::crash() {
  if (plan_.has_value()) {
    // An armed plan's semantics also govern manually triggered cuts.
    power_cut();
    return;
  }
  // Baseline semantics: clwb'd-but-unfenced lines raced the power loss;
  // each independently may or may not have drained.
  for (u64 line : pending_) {
    if (env_.rng.chance(0.5)) drain_line_whole(line);
  }
  pending_.clear();
  dirty_.clear();
  mem_ = persisted_;
  deferred_.clear();
}

Status PmDevice::set_root(std::string_view name, u64 offset) {
  if (name.empty() || name.size() > kMaxRootName) return Errc::invalid_argument;
  Header* h = header();
  RootEntry* slot = nullptr;
  for (auto& e : h->roots) {
    if (name == e.name) {
      slot = &e;
      break;
    }
    if (slot == nullptr && e.name[0] == '\0') slot = &e;
  }
  if (slot == nullptr) return Errc::out_of_space;
  std::memset(slot->name, 0, sizeof(slot->name));
  std::memcpy(slot->name, name.data(), name.size());
  slot->offset = offset;
  const u64 off = reinterpret_cast<const u8*>(slot) - mem_.data();
  mark_dirty(off, sizeof(RootEntry));
  persist(off, sizeof(RootEntry));
  return Errc::ok;
}

Result<u64> PmDevice::get_root(std::string_view name) const {
  for (const auto& e : header()->roots) {
    if (name == e.name) return e.offset;
  }
  return Errc::not_found;
}

}  // namespace papm::pm
