#include "pm/pm_device.h"

#include <cassert>
#include <cstring>
#include <stdexcept>

namespace papm::pm {

PmDevice::PmDevice(sim::Env& env, u64 size) : env_(env), size_(size) {
  if (size % kCacheLine != 0 || size < sizeof(Header) + kCacheLine) {
    throw std::invalid_argument("PmDevice: bad size");
  }
  mem_.assign(size, 0);
  persisted_.assign(size, 0);
  Header* h = header();
  h->magic = kMagic;
  h->size = size;
  // The header is born durable: a real device would be formatted offline.
  std::memcpy(persisted_.data(), mem_.data(), sizeof(Header));
}

u64 PmDevice::data_base() const noexcept {
  return align_up(sizeof(Header), kCacheLine);
}

void PmDevice::check_range(u64 offset, u64 len) const {
  if (offset > size_ || len > size_ - offset) {
    throw std::out_of_range("PmDevice: access out of range");
  }
}

u8* PmDevice::at(u64 offset, u64 len) {
  check_range(offset, len);
  return mem_.data() + offset;
}

const u8* PmDevice::at(u64 offset, u64 len) const {
  check_range(offset, len);
  return mem_.data() + offset;
}

void PmDevice::store(u64 offset, std::span<const u8> data) {
  check_range(offset, data.size());
  std::memcpy(mem_.data() + offset, data.data(), data.size());
  mark_dirty(offset, data.size());
}

void PmDevice::mark_dirty(u64 offset, u64 len) {
  if (len == 0) return;
  check_range(offset, len);
  const u64 first = offset / kCacheLine;
  const u64 last = (offset + len - 1) / kCacheLine;
  for (u64 line = first; line <= last; line++) {
    dirty_.insert(line);
    pending_.erase(line);  // a new store re-dirties a clwb'd line
  }
}

void PmDevice::clwb(u64 offset, u64 len) {
  if (len == 0) return;
  check_range(offset, len);
  const u64 first = offset / kCacheLine;
  const u64 last = (offset + len - 1) / kCacheLine;
  for (u64 line = first; line <= last; line++) {
    if (dirty_.erase(line) > 0) pending_.insert(line);
    total_clwb_++;
    env_.clock().advance(env_.cost.clwb_ns);
  }
}

void PmDevice::sfence() {
  for (u64 line : pending_) {
    std::memcpy(persisted_.data() + line * kCacheLine,
                mem_.data() + line * kCacheLine, kCacheLine);
  }
  pending_.clear();
  total_sfence_++;
  env_.clock().advance(env_.cost.sfence_ns);
}

void PmDevice::store_u64(u64 offset, u64 value) {
  assert(offset % 8 == 0 && "store_u64 must be aligned");
  u8 buf[8];
  std::memcpy(buf, &value, 8);
  store(offset, buf);
}

u64 PmDevice::load_u64(u64 offset) const {
  u64 v;
  std::memcpy(&v, at(offset, 8), 8);
  return v;
}

void PmDevice::crash() {
  // clwb'd-but-unfenced lines raced the power loss: each independently
  // may or may not have drained from the write-pending queue.
  for (u64 line : pending_) {
    if (env_.rng.chance(0.5)) {
      std::memcpy(persisted_.data() + line * kCacheLine,
                  mem_.data() + line * kCacheLine, kCacheLine);
    }
  }
  pending_.clear();
  dirty_.clear();
  mem_ = persisted_;
}

Status PmDevice::set_root(std::string_view name, u64 offset) {
  if (name.empty() || name.size() > kMaxRootName) return Errc::invalid_argument;
  Header* h = header();
  RootEntry* slot = nullptr;
  for (auto& e : h->roots) {
    if (name == e.name) {
      slot = &e;
      break;
    }
    if (slot == nullptr && e.name[0] == '\0') slot = &e;
  }
  if (slot == nullptr) return Errc::out_of_space;
  std::memset(slot->name, 0, sizeof(slot->name));
  std::memcpy(slot->name, name.data(), name.size());
  slot->offset = offset;
  const u64 off = reinterpret_cast<const u8*>(slot) - mem_.data();
  mark_dirty(off, sizeof(RootEntry));
  persist(off, sizeof(RootEntry));
  return Errc::ok;
}

Result<u64> PmDevice::get_root(std::string_view name) const {
  for (const auto& e : header()->roots) {
    if (name == e.name) return e.offset;
  }
  return Errc::not_found;
}

}  // namespace papm::pm
