// Crash-consistent pool allocator over a PmDevice range.
//
// This models the "user-space persistent memory allocator" the paper's
// baseline (NoveLSM) pays 2.78 us/op for (Table 1, alloc+insert) and that
// the proposed design replaces with the network buffer pool (§4.2).
//
// Layout: a persisted PoolHeader holds a bump pointer and per-size-class
// freelist heads; a free block's first 8 bytes store the next-free offset.
//
// Crash-consistency policy: *leak, never corrupt*. Every metadata update
// follows write -> clwb -> sfence ordering, and the visible state is
// always a consistent freelist; a crash between popping a block and the
// caller publishing it into its own structure leaks that block (exactly
// like PMDK's non-transactional allocations). `leaked_bytes()` lets tests
// measure the leak bound; `recover()` re-attaches to an existing pool.
// Group-commit integration (FlushBatcher): while the host is batching,
// the pool runs in a *commit epoch*. On entry every non-empty durable
// freelist head is sealed to zero (one clwb'd store per class; the
// batcher fences once), so no durable head can ever point at a block
// whose re-used contents are in flight. Mid-epoch, pops and frees recycle
// through DRAM (a per-class vector of freed offsets plus a shadow of the
// sealed chains) at zero persist events; only the bump frontier is kept
// durable, clwb'd before each epoch's first fence so recovery never
// re-hands-out space under published data. A cut while batching leaks the
// free pool (durable heads are zero) but can never corrupt it. On exit
// the DRAM state is written back: links first, fence, then heads, fence.
#pragma once

#include <array>
#include <optional>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "pm/pm_device.h"
#include "pm/pm_ptr.h"

namespace papm::pm {

class PmPool {
 public:
  static constexpr std::array<u32, 7> kClassSizes = {64,  128,  256, 512,
                                                     1024, 2048, 4096};

  /// Formats a new pool occupying [base, base+span_len) of `dev` and
  /// registers it under root name `name`; the header is durable before
  /// this returns. base must be line-aligned. A scaled-out host calls
  /// this once per datapath shard, carving disjoint spans of one device.
  static PmPool create(PmDevice& dev, std::string_view name, u64 base,
                       u64 span_len);

  /// Re-attaches to a pool previously created under `name` (post-crash).
  /// Read-only: recovery itself writes nothing, so it is idempotent and
  /// crash-during-recovery safe. Errc::not_found for an unknown root,
  /// Errc::corrupted on a bad header magic.
  static Result<PmPool> recover(PmDevice& dev, std::string_view name);

  /// Allocates at least `size` bytes; returns the block offset. Blocks of
  /// more than the largest class are carved from the bump region rounded
  /// to a whole number of lines (and are not recycled by free()).
  /// Ordering contract: the bump/freelist metadata update is persisted
  /// (clwb+sfence) before returning, so a crash after alloc() can only
  /// *leak* the block — it can never be handed out twice after recovery.
  /// The block's contents are NOT zeroed or persisted.
  [[nodiscard]] Result<u64> alloc(u64 size);

  /// Returns a block obtained from alloc(size) with the same size class.
  /// The freelist link is persisted before the head is published, so a
  /// crash mid-free leaks (at worst) this one block, never corrupting
  /// the list. The caller must have unpublished the block first.
  void free(u64 offset, u64 size);

  // Accounting (volatile; recomputed on recover).
  [[nodiscard]] u64 allocated_bytes() const noexcept { return allocated_bytes_; }
  [[nodiscard]] u64 capacity() const noexcept;

  // Bytes reachable from neither a freelist nor the bump frontier,
  // assuming the caller reports its live set. For tests.
  [[nodiscard]] u64 bump_used() const;

  // Overrides the simulated cost charged per alloc/free. By default a
  // PmPool charges the generic user-space PM allocator costs (Table 1's
  // alloc component); the packet-buffer pool reconfigures itself to
  // freelist-pop costs (pool_alloc_ns) — the §4.2 allocator unification.
  void set_charges(SimTime alloc_ns, SimTime free_ns) noexcept {
    alloc_charge_ns_ = alloc_ns;
    free_charge_ns_ = free_ns;
  }

  PmDevice& device() noexcept { return *dev_; }

  // --- Commit-epoch mode (driven by FlushBatcher) ----------------------
  /// Seals the durable freelist heads to zero and snapshots them into the
  /// DRAM shadow. Returns true if anything was clwb'd (the caller fences
  /// once across all its pools). Idempotent.
  bool enter_commit_epoch();
  /// Writes the DRAM freelist state back to PM (links, fence, heads,
  /// fence) and leaves epoch mode. Idempotent.
  void exit_commit_epoch();
  /// clwb's the bump frontier if it moved since the last flush; called by
  /// the batcher before an epoch's first fence.
  void flush_metadata();
  [[nodiscard]] bool in_commit_epoch() const noexcept { return in_epoch_; }

 private:
  struct PoolHeader {
    u64 magic;
    u64 base;        // span start (== header offset)
    u64 span_len;    // span length in bytes
    u64 bump;        // next never-allocated offset
    u64 free_heads[kClassSizes.size()];  // 0 = empty
  };
  static constexpr u64 kMagic = 0x50'4f'4f'4c'2d'50'4d'31ULL;  // "POOL-PM1"

  PmPool(PmDevice& dev, u64 header_off);

  [[nodiscard]] PoolHeader* hdr();
  [[nodiscard]] const PoolHeader* hdr() const;
  [[nodiscard]] static std::optional<std::size_t> class_for(u64 size) noexcept;
  void persist_header_field(const void* field, u64 len);
  [[nodiscard]] u64 field_offset(const void* field) const;

  PmDevice* dev_;
  u64 header_off_;
  u64 allocated_bytes_ = 0;
  SimTime alloc_charge_ns_ = -1;  // -1 = use cost model default
  SimTime free_charge_ns_ = -1;

  // Commit-epoch state (all volatile; empty outside epoch mode).
  bool in_epoch_ = false;
  bool meta_dirty_ = false;  // bump moved since last flush_metadata()
  std::array<u64, kClassSizes.size()> shadow_heads_{};
  std::array<std::vector<u64>, kClassSizes.size()> epoch_free_;
};

}  // namespace papm::pm
