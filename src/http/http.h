// Minimal HTTP/1.1 — the request protocol of the paper's §3 methodology
// ("The communication protocol is HTTP over TCP", wrk as the client).
//
// Supports exactly what the experiments need: PUT/GET/DELETE with a
// Content-Length body over persistent connections, and an incremental
// parser that copes with requests split across TCP segments.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "obs/metrics.h"

namespace papm::http {

enum class Method { get, put, del, other };

[[nodiscard]] constexpr std::string_view to_string(Method m) noexcept {
  switch (m) {
    case Method::get: return "GET";
    case Method::put: return "PUT";
    case Method::del: return "DELETE";
    case Method::other: return "OTHER";
  }
  return "?";
}

struct Request {
  Method method = Method::other;
  std::string target;  // e.g. "/kv/key17"
  std::vector<std::pair<std::string, std::string>> headers;
  std::vector<u8> body;

  [[nodiscard]] std::string_view header(std::string_view name) const noexcept;
};

struct Response {
  int status = 200;
  std::vector<std::pair<std::string, std::string>> headers;
  std::vector<u8> body;
};

// Serializers. The body is appended verbatim; Content-Length is added.
[[nodiscard]] std::vector<u8> serialize(const Request& req);
[[nodiscard]] std::vector<u8> serialize(const Response& resp);

// Incremental request parser: feed() consumes bytes; whenever a full
// request is available it is returned (repeat feed with empty input to
// drain pipelined requests).
class RequestParser {
 public:
  // Feeds bytes; returns a completed request if one finished.
  std::optional<Request> feed(std::span<const u8> data);

  // True if a parse error occurred (connection should be reset).
  [[nodiscard]] bool failed() const noexcept { return failed_; }

  // Bytes buffered but not yet part of a complete request.
  [[nodiscard]] std::size_t pending() const noexcept { return buf_.size(); }

  // Mirrors completed parses / parse failures into registry counters
  // (http.requests_parsed / http.parse_errors by convention).
  void set_metrics(obs::Counter* parsed, obs::Counter* errors) noexcept {
    m_parsed_ = parsed;
    m_errors_ = errors;
  }

 private:
  std::optional<Request> try_parse();

  std::vector<u8> buf_;
  bool failed_ = false;
  obs::Counter* m_parsed_ = nullptr;
  obs::Counter* m_errors_ = nullptr;
};

// Incremental response parser (client side).
class ResponseParser {
 public:
  std::optional<Response> feed(std::span<const u8> data);
  [[nodiscard]] bool failed() const noexcept { return failed_; }

  // Counters by convention: http.responses_parsed / http.parse_errors.
  void set_metrics(obs::Counter* parsed, obs::Counter* errors) noexcept {
    m_parsed_ = parsed;
    m_errors_ = errors;
  }

 private:
  std::optional<Response> try_parse();

  std::vector<u8> buf_;
  bool failed_ = false;
  obs::Counter* m_parsed_ = nullptr;
  obs::Counter* m_errors_ = nullptr;
};

}  // namespace papm::http
