#include "http/http.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstring>

namespace papm::http {
namespace {

constexpr std::string_view kCrlf = "\r\n";

void append(std::vector<u8>& out, std::string_view s) {
  out.insert(out.end(), s.begin(), s.end());
}

// Case-insensitive ASCII compare for header names.
bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); i++) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

[[nodiscard]] std::string_view status_text(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 500: return "Internal Server Error";
    case 507: return "Insufficient Storage";
    default: return "Unknown";
  }
}

// Finds "\r\n\r\n"; returns header-block length including the terminator,
// or npos.
std::size_t find_header_end(const std::vector<u8>& buf) {
  if (buf.size() < 4) return std::string::npos;
  for (std::size_t i = 0; i + 3 < buf.size(); i++) {
    if (buf[i] == '\r' && buf[i + 1] == '\n' && buf[i + 2] == '\r' &&
        buf[i + 3] == '\n') {
      return i + 4;
    }
  }
  return std::string::npos;
}

struct HeadLines {
  std::string_view start_line;
  std::vector<std::pair<std::string, std::string>> headers;
  std::size_t content_length = 0;
  bool ok = false;
};

HeadLines parse_head(std::string_view head) {
  HeadLines out;
  std::size_t pos = head.find(kCrlf);
  if (pos == std::string_view::npos) return out;
  out.start_line = head.substr(0, pos);
  pos += 2;
  while (pos < head.size()) {
    const std::size_t eol = head.find(kCrlf, pos);
    if (eol == std::string_view::npos || eol == pos) break;  // blank = end
    const std::string_view line = head.substr(pos, eol - pos);
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) return out;
    std::string_view name = line.substr(0, colon);
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
    if (iequals(name, "Content-Length")) {
      std::size_t v = 0;
      const auto [p, ec] =
          std::from_chars(value.data(), value.data() + value.size(), v);
      if (ec != std::errc() || p != value.data() + value.size()) return out;
      out.content_length = v;
    }
    out.headers.emplace_back(std::string(name), std::string(value));
    pos = eol + 2;
  }
  out.ok = true;
  return out;
}

}  // namespace

std::string_view Request::header(std::string_view name) const noexcept {
  for (const auto& [n, v] : headers) {
    if (iequals(n, name)) return v;
  }
  return {};
}

std::vector<u8> serialize(const Request& req) {
  std::vector<u8> out;
  out.reserve(128 + req.body.size());
  append(out, to_string(req.method));
  append(out, " ");
  append(out, req.target);
  append(out, " HTTP/1.1\r\n");
  for (const auto& [n, v] : req.headers) {
    append(out, n);
    append(out, ": ");
    append(out, v);
    append(out, kCrlf);
  }
  append(out, "Content-Length: ");
  append(out, std::to_string(req.body.size()));
  append(out, kCrlf);
  append(out, kCrlf);
  out.insert(out.end(), req.body.begin(), req.body.end());
  return out;
}

std::vector<u8> serialize(const Response& resp) {
  std::vector<u8> out;
  out.reserve(128 + resp.body.size());
  append(out, "HTTP/1.1 ");
  append(out, std::to_string(resp.status));
  append(out, " ");
  append(out, status_text(resp.status));
  append(out, kCrlf);
  for (const auto& [n, v] : resp.headers) {
    append(out, n);
    append(out, ": ");
    append(out, v);
    append(out, kCrlf);
  }
  append(out, "Content-Length: ");
  append(out, std::to_string(resp.body.size()));
  append(out, kCrlf);
  append(out, kCrlf);
  out.insert(out.end(), resp.body.begin(), resp.body.end());
  return out;
}

std::optional<Request> RequestParser::feed(std::span<const u8> data) {
  if (failed_) return std::nullopt;
  buf_.insert(buf_.end(), data.begin(), data.end());
  return try_parse();
}

std::optional<Request> RequestParser::try_parse() {
  const std::size_t head_len = find_header_end(buf_);
  if (head_len == std::string::npos) return std::nullopt;

  const std::string_view head(reinterpret_cast<const char*>(buf_.data()),
                              head_len - 2);  // keep final CRLF of last header
  HeadLines hl = parse_head(head);
  if (!hl.ok) {
    failed_ = true;
    obs::inc(m_errors_);
    return std::nullopt;
  }
  if (buf_.size() < head_len + hl.content_length) return std::nullopt;

  Request req;
  // Start line: METHOD SP target SP version
  const std::size_t sp1 = hl.start_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : hl.start_line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) {
    failed_ = true;
    obs::inc(m_errors_);
    return std::nullopt;
  }
  const std::string_view m = hl.start_line.substr(0, sp1);
  if (m == "GET") {
    req.method = Method::get;
  } else if (m == "PUT" || m == "POST") {
    req.method = Method::put;
  } else if (m == "DELETE") {
    req.method = Method::del;
  } else {
    req.method = Method::other;
  }
  req.target = std::string(hl.start_line.substr(sp1 + 1, sp2 - sp1 - 1));
  req.headers = std::move(hl.headers);
  req.body.assign(buf_.begin() + static_cast<long>(head_len),
                  buf_.begin() + static_cast<long>(head_len + hl.content_length));
  buf_.erase(buf_.begin(),
             buf_.begin() + static_cast<long>(head_len + hl.content_length));
  obs::inc(m_parsed_);
  return req;
}

std::optional<Response> ResponseParser::feed(std::span<const u8> data) {
  if (failed_) return std::nullopt;
  buf_.insert(buf_.end(), data.begin(), data.end());
  return try_parse();
}

std::optional<Response> ResponseParser::try_parse() {
  const std::size_t head_len = find_header_end(buf_);
  if (head_len == std::string::npos) return std::nullopt;

  const std::string_view head(reinterpret_cast<const char*>(buf_.data()),
                              head_len - 2);
  HeadLines hl = parse_head(head);
  if (!hl.ok) {
    failed_ = true;
    obs::inc(m_errors_);
    return std::nullopt;
  }
  if (buf_.size() < head_len + hl.content_length) return std::nullopt;

  Response resp;
  // Status line: HTTP/1.1 SP code SP text
  const std::size_t sp1 = hl.start_line.find(' ');
  if (sp1 == std::string_view::npos) {
    failed_ = true;
    obs::inc(m_errors_);
    return std::nullopt;
  }
  const std::string_view code = hl.start_line.substr(sp1 + 1, 3);
  int status = 0;
  const auto [p, ec] = std::from_chars(code.data(), code.data() + code.size(), status);
  if (ec != std::errc() || p != code.data() + code.size()) {
    failed_ = true;
    obs::inc(m_errors_);
    return std::nullopt;
  }
  resp.status = status;
  resp.headers = std::move(hl.headers);
  resp.body.assign(buf_.begin() + static_cast<long>(head_len),
                   buf_.begin() + static_cast<long>(head_len + hl.content_length));
  buf_.erase(buf_.begin(),
             buf_.begin() + static_cast<long>(head_len + hl.content_length));
  obs::inc(m_parsed_);
  return resp;
}

}  // namespace papm::http
