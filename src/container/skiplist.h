// Volatile skip list (DRAM), LevelDB-memtable style.
//
// Used as the behavioural reference for the persistent skip list in tests
// and as the DRAM-resident index for baseline configurations. Keys and
// payloads are owned by the caller (string keys copied into nodes here for
// simplicity; the persistent variant stores keys in PM).
#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace papm::container {

class SkipList {
 public:
  static constexpr int kMaxHeight = 12;
  static constexpr u32 kBranching = 4;  // P(level up) = 1/4, as in LevelDB

  explicit SkipList(Rng rng) : rng_(rng) {
    head_ = make_node("", 0, kMaxHeight);
  }
  SkipList() : SkipList(Rng{0x51eedULL}) {}

  // Inserts or overwrites. Returns true if the key was new.
  bool put(std::string_view key, u64 payload) {
    Node* prev[kMaxHeight];
    Node* n = find_greater_or_equal(key, prev);
    if (n != nullptr && n->key == key) {
      n->payload = payload;
      return false;
    }
    const int h = random_height();
    if (h > height_) {
      for (int i = height_; i < h; i++) prev[i] = head_;
      height_ = h;
    }
    Node* node = make_node(key, payload, h);
    for (int i = 0; i < h; i++) {
      node->next[i] = prev[i]->next[i];
      prev[i]->next[i] = node;
    }
    size_++;
    return true;
  }

  // Returns the payload, or not_found.
  [[nodiscard]] Result<u64> get(std::string_view key) const {
    const Node* n = find_greater_or_equal(key, nullptr);
    if (n != nullptr && n->key == key) return n->payload;
    return Errc::not_found;
  }

  // Physically removes the key. Returns true if it was present.
  bool erase(std::string_view key) {
    Node* prev[kMaxHeight];
    Node* n = find_greater_or_equal(key, prev);
    if (n == nullptr || n->key != key) return false;
    for (int i = 0; i < n->height; i++) {
      if (prev[i]->next[i] == n) prev[i]->next[i] = n->next[i];
    }
    for (auto it = owned_.begin(); it != owned_.end(); ++it) {
      if (it->get() == n) {
        owned_.erase(it);
        break;
      }
    }
    size_--;
    return true;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  // Range scan: invokes fn(key, payload) for keys in [from, to); stops
  // early if fn returns false.
  template <typename Fn>
  void scan(std::string_view from, std::string_view to, Fn&& fn) const {
    const Node* n = find_greater_or_equal(from, nullptr);
    while (n != nullptr && (to.empty() || n->key < to)) {
      if (!fn(std::string_view(n->key), n->payload)) return;
      n = n->next[0];
    }
  }

  // Number of node key-comparisons in the last find; for cost accounting.
  [[nodiscard]] u64 last_visits() const noexcept { return last_visits_; }

 private:
  struct Node {
    std::string key;
    u64 payload;
    int height;
    std::vector<Node*> next;  // size == height
  };

  Node* make_node(std::string_view key, u64 payload, int height) {
    owned_.push_back(std::make_unique<Node>(
        Node{std::string(key), payload, height, std::vector<Node*>(height, nullptr)}));
    return owned_.back().get();
  }

  int random_height() {
    int h = 1;
    while (h < kMaxHeight && rng_.next_below(kBranching) == 0) h++;
    return h;
  }

  // First node with key >= `key`; fills prev[] per level if non-null.
  Node* find_greater_or_equal(std::string_view key, Node** prev) const {
    last_visits_ = 0;
    Node* x = head_;
    int level = height_ - 1;
    while (true) {
      Node* next = x->next[level];
      if (next != nullptr && next->key < key) {
        last_visits_++;
        x = next;
      } else {
        if (next != nullptr) last_visits_++;
        if (prev != nullptr) prev[level] = x;
        if (level == 0) return next;
        level--;
      }
    }
  }

  Rng rng_;
  Node* head_;
  int height_ = 1;
  std::size_t size_ = 0;
  std::vector<std::unique_ptr<Node>> owned_;
  mutable u64 last_visits_ = 0;
};

}  // namespace papm::container
