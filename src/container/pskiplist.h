// Persistent skip list in PM.
//
// The index structure of both the NoveLSM-like baseline memtable
// (storage/memtable.h) and the paper's proposed packet-metadata store
// (core/pktstore.h §4.2: "NoveLSM implements a persistent, mutable skip
// list in the PM ... implementable using packet metadata, although some
// additional list entries may be needed").
//
// Crash consistency is by ordered publication:
//   1. write the node (header, tower, key) into freshly allocated PM,
//      clwb + sfence;
//   2. publish the level-0 predecessor link with one 8-byte store,
//      clwb + sfence — the linearization point;
//   3. link upper levels (shortcuts; losing them costs performance, not
//      correctness — recovery rebuilds all towers from level 0).
// Erase persists a dead flag first (the linearization point), then
// unlinks; recovery drops dead nodes.
//
// Node layout (offsets within the node):
//   +0  u16 height   +2  u16 flags   +4  u32 key_len
//   +8  u64 payload  (opaque to the list; atomically updatable)
//   +16 u64 next[height]
//   +16+8*height  key bytes
#pragma once

#include <cstring>
#include <string_view>
#include <unordered_set>

#include "common/types.h"
#include "pm/flush_batch.h"
#include "pm/pm_device.h"
#include "pm/pm_pool.h"

namespace papm::container {

struct PSkipListOptions {
  // Fraction of index-node visits charged as PM cache misses; the rest
  // hit the CPU cache (see sim/cost_model.h calibration note). 0.14
  // reproduces Table 1's 2.78 us alloc+insert at a few thousand resident
  // keys; packet metadata being "compact and cache friendly" (§5.1) is
  // exactly why this fraction is low. The allocation charge is a
  // property of the PmPool (set_charges), not of the list.
  double cold_visit_p = 0.14;

  // Selective persistence ("Don't Persist All"): keep only the level-0
  // backbone persistent and shadow the upper towers in DRAM — tower
  // updates are raw memory writes, never clwb'd, never fenced, and
  // recovery rebuilds them deterministically from the backbone scan.
  // A node's *birth* tower still rides along with its content persist
  // (same lines, zero extra cost) as a rebuildable hint.
  bool shadow_towers = pm::kGroupCommitCompiled;
};

class PSkipList {
 public:
  static constexpr int kMaxHeight = 12;
  static constexpr u32 kBranching = 4;

  using Options = PSkipListOptions;

  /// Creates an empty list whose head node is allocated from `pool` and
  /// registered as root `name`; head and root durable before returning.
  static PSkipList create(pm::PmDevice& dev, pm::PmPool& pool,
                          std::string_view name, Options opts = Options());

  /// Re-attaches after a crash: finds the head by root name, walks level 0
  /// skipping dead/unreachable nodes, and rebuilds all upper towers.
  /// The rebuild writes (and fences) tower links, but only ones that are
  /// already rebuildable hints — so recovery is idempotent: a crash
  /// during or right after recover() recovers to the identical state.
  static Result<PSkipList> recover(pm::PmDevice& dev, pm::PmPool& pool,
                                   std::string_view name, Options opts = Options());

  /// Insert or update; durable iff it returned ok. Ordering contract
  /// (see file header): the node is fully persisted before the level-0
  /// predecessor link publishes it with one atomic 8-byte store, so a
  /// mid-put crash exposes the old state or the new one, never a torn
  /// node; upper tower links are unfenced hints recovery rebuilds.
  /// On update only the 8-byte payload is republished and, when
  /// `old_payload` is non-null, the replaced value is reported (so
  /// callers can reclaim what it referenced without a second traversal).
  /// Resurrected (previously erased) keys report no old value.
  Status put(std::string_view key, u64 payload, u64* old_payload = nullptr);

  [[nodiscard]] Result<u64> get(std::string_view key) const;

  /// Logically then physically removes the key; the node's PM block is
  /// returned to the pool. Returns true if the key was present.
  /// Linearizes at the persisted dead flag: a crash before it leaves the
  /// key intact, after it the key is gone (recovery drops dead nodes and
  /// reclaims their blocks; the unlink itself is a rebuildable hint).
  bool erase(std::string_view key);

  // fn(key, payload) over keys in [from, to) (to empty = unbounded);
  // stops early when fn returns false.
  template <typename Fn>
  void scan(std::string_view from, std::string_view to, Fn&& fn) const {
    u64 n = find_greater_or_equal(from, nullptr);
    while (n != 0) {
      const std::string_view k = node_key(n);
      if (!to.empty() && k >= to) return;
      if (!is_dead(n) && !fn(k, node_payload(n))) return;
      n = next_of(n, 0);
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] u64 last_visits() const noexcept { return last_visits_; }

  // Back-to-back traversal hint: while set, the cold-miss fraction is
  // scaled by the cost model's batched_warm_scale (upper index levels
  // stay cache-resident between consecutive operations).
  void set_warm(bool warm) noexcept { warm_ = warm; }

  // Group-commit routing. With a batcher attached, while it is batching:
  // publications into *durable* nodes are withheld (FlushBatcher
  // publish_u64), mutations of nodes born in the open epoch stay ordinary
  // content (re-flushed, covered by the epoch's first fence), node frees
  // are quarantined past the epoch close, and the level-0 unlink — not
  // the dead flag — is an erase's linearization point.
  void set_batcher(pm::FlushBatcher* b) noexcept { batcher_ = b; }

  // Recovery cost split of the last recover(): the level-0 backbone scan
  // (including dead-node repair) vs. relinking the upper towers.
  struct RecoverStats {
    SimTime scan_ns = 0;
    SimTime tower_ns = 0;
  };
  [[nodiscard]] const RecoverStats& recover_stats() const noexcept {
    return recover_stats_;
  }

  // Structural check: level-0 strictly sorted, towers point forward and
  // land on live reachable nodes. For tests.
  [[nodiscard]] Status validate() const;

 private:
  PSkipList(pm::PmDevice& dev, pm::PmPool& pool, u64 head, Options opts)
      : dev_(&dev), pool_(&pool), head_(head), opts_(opts) {}

  static constexpr u16 kDead = 1;
  static constexpr u64 node_bytes(int height, u32 key_len) noexcept {
    return 16 + 8 * static_cast<u64>(height) + key_len;
  }

  [[nodiscard]] u16 node_height(u64 n) const;
  [[nodiscard]] bool is_dead(u64 n) const;
  [[nodiscard]] u64 node_payload(u64 n) const { return dev_->load_u64(n + 8); }
  [[nodiscard]] std::string_view node_key(u64 n) const;
  [[nodiscard]] u64 next_of(u64 n, int level) const {
    return dev_->load_u64(n + 16 + 8 * static_cast<u64>(level));
  }
  void set_next(u64 n, int level, u64 to) {
    dev_->store_u64(n + 16 + 8 * static_cast<u64>(level), to);
  }
  // DRAM-shadow tower write: raw memory, no dirty tracking — the word can
  // never drain to PM on its own, and it can never un-pend a content line
  // that is in flight toward an epoch fence.
  void set_next_volatile(u64 n, int level, u64 to) {
    std::memcpy(dev_->at(n + 16 + 8 * static_cast<u64>(level), 8), &to, 8);
  }
  // Publish one link durably (store + clwb + sfence).
  void publish_next(u64 n, int level, u64 to);
  // Routes an 8-byte publication: withheld via the batcher for durable
  // nodes, plain re-flushed content for epoch-born ones, legacy
  // store+persist otherwise.
  void publish_word(u64 off, u64 value, bool fresh);
  [[nodiscard]] bool batching() const noexcept {
    return batcher_ != nullptr && batcher_->batching();
  }
  // Nodes allocated in the still-open commit epoch (their content lines
  // have not passed a fence yet). Lazily reset when the epoch changes.
  bool is_fresh(u64 n);
  void note_fresh(u64 n);

  int random_height();
  void charge_visits(u64 visits) const;

  // First node (offset) with key >= `key`; 0 if none. Fills prev[] with
  // per-level predecessors when non-null. Counts visits for charging.
  u64 find_greater_or_equal(std::string_view key, u64* prev) const;

  void rebuild_towers();  // recovery: relink all levels from level 0

  pm::PmDevice* dev_;
  pm::PmPool* pool_;
  u64 head_;
  Options opts_;
  int height_ = 1;  // volatile hint; recomputed on recover
  std::size_t size_ = 0;
  mutable u64 last_visits_ = 0;
  bool warm_ = false;
  pm::FlushBatcher* batcher_ = nullptr;
  std::unordered_set<u64> fresh_;  // epoch-born nodes (volatile)
  u64 fresh_serial_ = 0;
  RecoverStats recover_stats_;
};

}  // namespace papm::container
