#include "container/pskiplist.h"

#include <cstring>

namespace papm::container {

namespace {
// Node field offsets (see layout comment in the header).
constexpr u64 kOffHeight = 0;
constexpr u64 kOffFlags = 2;
constexpr u64 kOffKeyLen = 4;
constexpr u64 kOffPayload = 8;
constexpr u64 kOffTower = 16;
}  // namespace

u16 PSkipList::node_height(u64 n) const {
  u16 h;
  std::memcpy(&h, dev_->at(n + kOffHeight, 2), 2);
  return h;
}

bool PSkipList::is_dead(u64 n) const {
  u16 f;
  std::memcpy(&f, dev_->at(n + kOffFlags, 2), 2);
  return (f & kDead) != 0;
}

std::string_view PSkipList::node_key(u64 n) const {
  u32 len;
  std::memcpy(&len, dev_->at(n + kOffKeyLen, 4), 4);
  const u64 key_at = n + kOffTower + 8 * static_cast<u64>(node_height(n));
  return {reinterpret_cast<const char*>(dev_->at(key_at, len)), len};
}

void PSkipList::publish_next(u64 n, int level, u64 to) {
  set_next(n, level, to);
  dev_->persist(n + kOffTower + 8 * static_cast<u64>(level), 8);
}

bool PSkipList::is_fresh(u64 n) {
  if (!batching()) return false;
  if (fresh_serial_ != batcher_->epoch_serial()) {
    fresh_.clear();
    fresh_serial_ = batcher_->epoch_serial();
  }
  return fresh_.count(n) != 0;
}

void PSkipList::note_fresh(u64 n) {
  if (fresh_serial_ != batcher_->epoch_serial()) {
    fresh_.clear();
    fresh_serial_ = batcher_->epoch_serial();
  }
  fresh_.insert(n);
}

void PSkipList::publish_word(u64 off, u64 value, bool fresh) {
  if (batching()) {
    if (fresh) {
      // The target word lives in a node born this epoch: its line is
      // plain epoch content, covered by the close's first fence, and the
      // node itself only becomes reachable through a withheld publication
      // that retires at the second fence — so an early drain of this word
      // can never dangle.
      dev_->store_u64(off, value);
      batcher_->flush(off, 8);
    } else {
      batcher_->publish_u64(off, value);
    }
    return;
  }
  dev_->store_u64(off, value);
  dev_->persist(off, 8);
}

int PSkipList::random_height() {
  int h = 1;
  while (h < kMaxHeight && dev_->env().rng.next_below(kBranching) == 0) h++;
  return h;
}

void PSkipList::charge_visits(u64 visits) const {
  auto& env = dev_->env();
  const double cold_p =
      opts_.cold_visit_p * (warm_ ? env.cost.batched_warm_scale : 1.0);
  const double cold = cold_p * static_cast<double>(visits);
  env.clock().advance(static_cast<SimTime>(
      cold * static_cast<double>(env.cost.pm_read_ns) +
      (static_cast<double>(visits) - cold) *
          static_cast<double>(env.cost.dram_read_ns) * 0.15));
}

u64 PSkipList::find_greater_or_equal(std::string_view key, u64* prev) const {
  last_visits_ = 0;
  u64 x = head_;
  int level = height_ - 1;
  while (true) {
    const u64 next = next_of(x, level);
    bool descend;
    if (next == 0) {
      descend = true;
    } else {
      last_visits_++;
      descend = node_key(next) >= key;
    }
    if (!descend) {
      x = next;
    } else {
      if (prev != nullptr) prev[level] = x;
      if (level == 0) {
        charge_visits(last_visits_);
        return next;
      }
      level--;
    }
  }
}

PSkipList PSkipList::create(pm::PmDevice& dev, pm::PmPool& pool,
                            std::string_view name, Options opts) {
  const u64 bytes = node_bytes(kMaxHeight, 0);
  auto head = pool.alloc(bytes);
  if (!head.ok()) throw std::runtime_error("PSkipList: pool exhausted");
  const u64 h = head.value();
  // Zero the head: height, no flags, empty key, null tower.
  std::vector<u8> zero(bytes, 0);
  const u16 height = kMaxHeight;
  std::memcpy(zero.data() + kOffHeight, &height, 2);
  dev.store(h, zero);
  dev.persist(h, bytes);
  if (!dev.set_root(name, h).ok()) {
    throw std::runtime_error("PSkipList: root table full");
  }
  return PSkipList(dev, pool, h, opts);
}

Result<PSkipList> PSkipList::recover(pm::PmDevice& dev, pm::PmPool& pool,
                                     std::string_view name, Options opts) {
  const auto root = dev.get_root(name);
  if (!root.ok()) return root.errc();
  PSkipList list(dev, pool, root.value(), opts);
  if (list.node_height(list.head_) != kMaxHeight) return Errc::corrupted;
  list.rebuild_towers();
  return list;
}

void PSkipList::rebuild_towers() {
  // Pass 1: walk level 0, unlinking dead nodes and counting/validating.
  auto& clock = dev_->env().clock();
  const SimTime start_ns = clock.now();
  SimTime tower_ns = 0;
  u64 prev_at[kMaxHeight];
  for (auto& p : prev_at) p = head_;
  size_ = 0;
  height_ = 1;

  u64 prev0 = head_;
  u64 n = next_of(head_, 0);
  while (n != 0) {
    // The backbone scan is a cold sequential read of PM-resident nodes.
    clock.advance(dev_->env().cost.pm_read_ns);
    const u64 nxt = next_of(n, 0);
    if (is_dead(n)) {
      // Physically unlink and reclaim. Repairs stay durable even in
      // shadow mode: level 0 is the persistent backbone.
      publish_next(prev0, 0, nxt);
      pool_->free(n, node_bytes(node_height(n), static_cast<u32>(node_key(n).size())));
      n = nxt;
      continue;
    }
    const int h = node_height(n);
    if (h > height_) height_ = h;
    // Relink every level of this node's tower. With DRAM-shadowed towers
    // the links are raw memory writes; otherwise they are clwb'd hints.
    const SimTime t0 = clock.now();
    for (int i = 1; i < h; i++) {
      if (opts_.shadow_towers) {
        set_next_volatile(prev_at[i], i, n);
        prev_at[i] = n;
        set_next_volatile(n, i, 0);
      } else {
        set_next(prev_at[i], i, n);
        dev_->clwb(prev_at[i] + kOffTower + 8 * static_cast<u64>(i), 8);
        prev_at[i] = n;
        set_next(n, i, 0);
        dev_->clwb(n + kOffTower + 8 * static_cast<u64>(i), 8);
      }
      // Either way the rebuild pays a DRAM write per link.
      clock.advance(dev_->env().cost.dram_read_ns);
    }
    tower_ns += clock.now() - t0;
    size_++;
    prev0 = n;
    n = nxt;
  }
  // Terminate rebuilt towers above level 0 and at unused head levels.
  const SimTime t1 = clock.now();
  for (int i = 1; i < kMaxHeight; i++) {
    if (prev_at[i] != head_ || next_of(head_, i) != 0) {
      if (opts_.shadow_towers) {
        set_next_volatile(prev_at[i], i, 0);
      } else {
        set_next(prev_at[i], i, 0);
        dev_->clwb(prev_at[i] + kOffTower + 8 * static_cast<u64>(i), 8);
      }
    }
  }
  if (!opts_.shadow_towers) dev_->sfence();
  tower_ns += clock.now() - t1;
  recover_stats_.tower_ns = tower_ns;
  recover_stats_.scan_ns = (clock.now() - start_ns) - tower_ns;
}

Status PSkipList::put(std::string_view key, u64 payload, u64* old_payload) {
  if (key.empty() || key.size() > 0xffffffu) return Errc::invalid_argument;
  u64 prev[kMaxHeight];
  for (auto& p : prev) p = head_;
  const u64 found = find_greater_or_equal(key, prev);

  if (found != 0 && node_key(found) == key) {
    if (!is_dead(found) && old_payload != nullptr) {
      *old_payload = node_payload(found);
    }
    if (is_dead(found)) {
      // Resurrect: republish payload, then clear the dead flag. Two
      // dependent publications need an ordering point between them, so
      // this cold path stays on direct device fences even mid-epoch
      // (extra fences inside an open epoch are always safe).
      dev_->store_u64(found + kOffPayload, payload);
      dev_->persist(found + kOffPayload, 8);
      const u16 flags = 0;
      dev_->store(found + kOffFlags,
                  std::span<const u8>(reinterpret_cast<const u8*>(&flags), 2));
      dev_->persist(found + kOffFlags, 2);
      size_++;
    } else {
      // Update linearizes on the 8-byte payload word.
      publish_word(found + kOffPayload, payload, is_fresh(found));
    }
    return Errc::ok;
  }

  const int h = random_height();
  const u64 bytes = node_bytes(h, static_cast<u32>(key.size()));
  auto node = pool_->alloc(bytes);
  if (!node.ok()) return Errc::out_of_space;
  const u64 n = node.value();

  // 1. Construct the node in place, including its own tower links.
  const u16 height = static_cast<u16>(h);
  const u16 flags = 0;
  const u32 klen = static_cast<u32>(key.size());
  u8 fixed[16];
  std::memcpy(fixed + kOffHeight, &height, 2);
  std::memcpy(fixed + kOffFlags, &flags, 2);
  std::memcpy(fixed + kOffKeyLen, &klen, 4);
  std::memcpy(fixed + kOffPayload, &payload, 8);
  dev_->store(n, fixed);
  for (int i = 0; i < h; i++) {
    set_next(n, i, i < height_ ? next_of(prev[i], i) : 0);
  }
  dev_->store(n + kOffTower + 8 * static_cast<u64>(h),
              std::span<const u8>(reinterpret_cast<const u8*>(key.data()), key.size()));
  if (batching()) {
    batcher_->persist(n, bytes);  // clwb now, fence at epoch close
    note_fresh(n);
  } else {
    dev_->persist(n, bytes);
  }

  if (h > height_) height_ = h;

  // 2. Linearization point: publish into level 0.
  publish_word(prev[0] + kOffTower, n, is_fresh(prev[0]));

  // 3. Shortcut levels. DRAM-shadowed towers are raw writes — never
  // flushed, never fenced; recovery rebuilds them from the backbone.
  if (opts_.shadow_towers) {
    for (int i = 1; i < h; i++) set_next_volatile(prev[i], i, n);
  } else if (batching()) {
    // Hints may drain unordered — recovery overwrites every tower.
    for (int i = 1; i < h; i++) {
      set_next(prev[i], i, n);
      batcher_->flush(prev[i] + kOffTower + 8 * static_cast<u64>(i), 8);
    }
    if (h > 1) batcher_->fence();
  } else {
    for (int i = 1; i < h; i++) {
      set_next(prev[i], i, n);
      dev_->clwb(prev[i] + kOffTower + 8 * static_cast<u64>(i), 8);
    }
    if (h > 1) dev_->sfence();
  }

  size_++;
  return Errc::ok;
}

Result<u64> PSkipList::get(std::string_view key) const {
  const u64 n = find_greater_or_equal(key, nullptr);
  if (n == 0 || is_dead(n) || node_key(n) != key) return Errc::not_found;
  return node_payload(n);
}

bool PSkipList::erase(std::string_view key) {
  u64 prev[kMaxHeight];
  for (auto& p : prev) p = head_;
  const u64 n = find_greater_or_equal(key, prev);
  if (n == 0 || is_dead(n) || node_key(n) != key) return false;

  const int h = node_height(n);
  const u64 bytes = node_bytes(h, static_cast<u32>(key.size()));

  if (batching()) {
    // Batched erase linearizes on the *level-0 unlink* (one withheld
    // 8-byte publication) instead of the dead flag: publishing a flag
    // word inside a possibly-epoch-born node would race its birth
    // content. The flag is set volatile for in-memory readers only; the
    // node's block is quarantined past the epoch close so its bytes stay
    // intact while a cut could still resolve the unlink either way.
    if (next_of(prev[0], 0) == n) {
      publish_word(prev[0] + kOffTower, next_of(n, 0), is_fresh(prev[0]));
    }
    const u16 flags = kDead;
    std::memcpy(dev_->at(n + kOffFlags, 2), &flags, 2);
    for (int i = h - 1; i >= 1; i--) {
      if (next_of(prev[i], i) != n) continue;
      if (opts_.shadow_towers) {
        set_next_volatile(prev[i], i, next_of(n, i));
      } else {
        set_next(prev[i], i, next_of(n, i));
        batcher_->flush(prev[i] + kOffTower + 8 * static_cast<u64>(i), 8);
      }
    }
    batcher_->defer([pool = pool_, n, bytes] { pool->free(n, bytes); });
    size_--;
    return true;
  }

  // 1. Linearization point: persist the dead flag.
  const u16 flags = kDead;
  dev_->store(n + kOffFlags,
              std::span<const u8>(reinterpret_cast<const u8*>(&flags), 2));
  dev_->persist(n + kOffFlags, 2);

  // 2. Unlink top-down; each publish keeps the list consistent.
  for (int i = h - 1; i >= 0; i--) {
    if (next_of(prev[i], i) == n) {
      if (i >= 1 && opts_.shadow_towers) {
        set_next_volatile(prev[i], i, next_of(n, i));
      } else {
        publish_next(prev[i], i, next_of(n, i));
      }
    }
  }
  pool_->free(n, node_bytes(h, static_cast<u32>(key.size())));
  size_--;
  return true;
}

Status PSkipList::validate() const {
  // Level 0: strictly sorted.
  u64 n = next_of(head_, 0);
  std::string prev_key;
  bool first = true;
  while (n != 0) {
    const std::string_view k = node_key(n);
    if (!first && k <= prev_key) return Errc::corrupted;
    prev_key = std::string(k);
    first = false;
    n = next_of(n, 0);
  }
  // Upper levels: every link lands on a level-0-reachable node with
  // sufficient height, in sorted order.
  for (int lvl = 1; lvl < kMaxHeight; lvl++) {
    u64 x = next_of(head_, lvl);
    std::string last;
    bool f2 = true;
    while (x != 0) {
      if (node_height(x) <= lvl) return Errc::corrupted;
      const std::string_view k = node_key(x);
      if (!f2 && k <= last) return Errc::corrupted;
      last = std::string(k);
      f2 = false;
      x = next_of(x, lvl);
    }
  }
  return Errc::ok;
}

}  // namespace papm::container
