// Intrusive red-black tree.
//
// The Linux TCP receiver keeps out-of-order segments in an rbtree of
// sk_buffs; the paper points to that structure as evidence that packet
// metadata composes into efficient in-memory indexes (§4.1). Our TCP
// reassembly queue (net/tcp.h) uses this tree with PktBuf nodes.
//
// Intrusive: the element embeds an RbHook; the tree never allocates.
// CLRS-style implementation with a per-tree nil sentinel.
#pragma once

#include <cassert>
#include <cstddef>

#include "common/types.h"

namespace papm::container {

struct RbHook {
  RbHook* parent = nullptr;
  RbHook* left = nullptr;
  RbHook* right = nullptr;
  bool red = false;
};

// T: element type. HookOf: extracts RbHook& from T. KeyOf: extracts the
// comparable key. Compare: strict weak order on keys.
template <typename T, typename Key, RbHook T::*HookMember, Key T::*KeyMember,
          typename Compare = std::less<Key>>
class RbTree {
 public:
  RbTree() { root_ = &nil_; }

  RbTree(const RbTree&) = delete;
  RbTree& operator=(const RbTree&) = delete;

  [[nodiscard]] bool empty() const noexcept { return root_ == &nil_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  // Inserts `elem`. Duplicate keys are allowed; duplicates go right, so
  // iteration is stable in insertion order among equals.
  void insert(T& elem) {
    RbHook* z = hook(elem);
    z->left = z->right = &nil_;
    RbHook* y = &nil_;
    RbHook* x = root_;
    while (x != &nil_) {
      y = x;
      x = cmp_(key(*z), key(*x)) ? x->left : x->right;
    }
    z->parent = y;
    if (y == &nil_) {
      root_ = z;
    } else if (cmp_(key(*z), key(*y))) {
      y->left = z;
    } else {
      y->right = z;
    }
    z->red = true;
    insert_fixup(z);
    size_++;
  }

  void erase(T& elem) {
    RbHook* z = hook(elem);
    RbHook* y = z;
    RbHook* x;
    bool y_was_red = y->red;
    if (z->left == &nil_) {
      x = z->right;
      transplant(z, z->right);
    } else if (z->right == &nil_) {
      x = z->left;
      transplant(z, z->left);
    } else {
      y = minimum(z->right);
      y_was_red = y->red;
      x = y->right;
      if (y->parent == z) {
        x->parent = y;  // x may be nil; fixup needs its parent
      } else {
        transplant(y, y->right);
        y->right = z->right;
        y->right->parent = y;
      }
      transplant(z, y);
      y->left = z->left;
      y->left->parent = y;
      y->red = z->red;
    }
    if (!y_was_red) erase_fixup(x);
    z->parent = z->left = z->right = nullptr;
    size_--;
  }

  // Smallest element with key >= k, or nullptr.
  [[nodiscard]] T* lower_bound(const Key& k) {
    RbHook* x = root_;
    RbHook* best = &nil_;
    while (x != &nil_) {
      if (!cmp_(key(*x), k)) {  // key(x) >= k
        best = x;
        x = x->left;
      } else {
        x = x->right;
      }
    }
    return best == &nil_ ? nullptr : elem(best);
  }

  // Exact match (first among duplicates), or nullptr.
  [[nodiscard]] T* find(const Key& k) {
    T* lb = lower_bound(k);
    if (lb == nullptr || cmp_(k, key(*hook(*lb)))) return nullptr;
    return lb;
  }

  [[nodiscard]] T* first() {
    if (empty()) return nullptr;
    return elem(minimum(root_));
  }
  [[nodiscard]] T* last() {
    if (empty()) return nullptr;
    RbHook* x = root_;
    while (x->right != &nil_) x = x->right;
    return elem(x);
  }

  // In-order successor, or nullptr.
  [[nodiscard]] T* next(T& e) {
    RbHook* x = hook(e);
    if (x->right != &nil_) return elem(minimum(x->right));
    RbHook* y = x->parent;
    while (y != &nil_ && x == y->right) {
      x = y;
      y = y->parent;
    }
    return y == &nil_ ? nullptr : elem(y);
  }

  // Validates the red-black invariants; returns black-height or -1.
  // For tests.
  [[nodiscard]] int validate() const { return validate_rec(root_); }

 private:
  static RbHook* hook(T& e) noexcept { return &(e.*HookMember); }
  T* elem(RbHook* h) const noexcept {
    // Recover the element from its embedded hook via member-offset math.
    auto off = reinterpret_cast<std::size_t>(
        &(reinterpret_cast<T const volatile*>(0)->*HookMember));
    return reinterpret_cast<T*>(reinterpret_cast<char*>(h) - off);
  }
  const Key& key(RbHook& h) const noexcept { return elem(&h)->*KeyMember; }

  RbHook* minimum(RbHook* x) {
    while (x->left != &nil_) x = x->left;
    return x;
  }

  void rotate_left(RbHook* x) {
    RbHook* y = x->right;
    x->right = y->left;
    if (y->left != &nil_) y->left->parent = x;
    y->parent = x->parent;
    if (x->parent == &nil_) {
      root_ = y;
    } else if (x == x->parent->left) {
      x->parent->left = y;
    } else {
      x->parent->right = y;
    }
    y->left = x;
    x->parent = y;
  }

  void rotate_right(RbHook* x) {
    RbHook* y = x->left;
    x->left = y->right;
    if (y->right != &nil_) y->right->parent = x;
    y->parent = x->parent;
    if (x->parent == &nil_) {
      root_ = y;
    } else if (x == x->parent->right) {
      x->parent->right = y;
    } else {
      x->parent->left = y;
    }
    y->right = x;
    x->parent = y;
  }

  void insert_fixup(RbHook* z) {
    while (z->parent->red) {
      if (z->parent == z->parent->parent->left) {
        RbHook* y = z->parent->parent->right;
        if (y->red) {
          z->parent->red = false;
          y->red = false;
          z->parent->parent->red = true;
          z = z->parent->parent;
        } else {
          if (z == z->parent->right) {
            z = z->parent;
            rotate_left(z);
          }
          z->parent->red = false;
          z->parent->parent->red = true;
          rotate_right(z->parent->parent);
        }
      } else {
        RbHook* y = z->parent->parent->left;
        if (y->red) {
          z->parent->red = false;
          y->red = false;
          z->parent->parent->red = true;
          z = z->parent->parent;
        } else {
          if (z == z->parent->left) {
            z = z->parent;
            rotate_right(z);
          }
          z->parent->red = false;
          z->parent->parent->red = true;
          rotate_left(z->parent->parent);
        }
      }
    }
    root_->red = false;
  }

  void transplant(RbHook* u, RbHook* v) {
    if (u->parent == &nil_) {
      root_ = v;
    } else if (u == u->parent->left) {
      u->parent->left = v;
    } else {
      u->parent->right = v;
    }
    v->parent = u->parent;
  }

  void erase_fixup(RbHook* x) {
    while (x != root_ && !x->red) {
      if (x == x->parent->left) {
        RbHook* w = x->parent->right;
        if (w->red) {
          w->red = false;
          x->parent->red = true;
          rotate_left(x->parent);
          w = x->parent->right;
        }
        if (!w->left->red && !w->right->red) {
          w->red = true;
          x = x->parent;
        } else {
          if (!w->right->red) {
            w->left->red = false;
            w->red = true;
            rotate_right(w);
            w = x->parent->right;
          }
          w->red = x->parent->red;
          x->parent->red = false;
          w->right->red = false;
          rotate_left(x->parent);
          x = root_;
        }
      } else {
        RbHook* w = x->parent->left;
        if (w->red) {
          w->red = false;
          x->parent->red = true;
          rotate_right(x->parent);
          w = x->parent->left;
        }
        if (!w->right->red && !w->left->red) {
          w->red = true;
          x = x->parent;
        } else {
          if (!w->left->red) {
            w->right->red = false;
            w->red = true;
            rotate_left(w);
            w = x->parent->left;
          }
          w->red = x->parent->red;
          x->parent->red = false;
          w->left->red = false;
          rotate_right(x->parent);
          x = root_;
        }
      }
    }
    x->red = false;
  }

  int validate_rec(const RbHook* n) const {
    if (n == &nil_) return 1;
    if (n->red && (n->left->red || n->right->red)) return -1;  // red-red
    const int lh = validate_rec(n->left);
    const int rh = validate_rec(n->right);
    if (lh < 0 || rh < 0 || lh != rh) return -1;
    if (n->left != &nil_ && cmp_(key(*const_cast<RbHook*>(n)),
                                 key(*const_cast<RbHook*>(n->left)))) {
      return -1;  // order violation
    }
    return lh + (n->red ? 0 : 1);
  }

  RbHook nil_{};  // nil_.red == false always
  RbHook* root_;
  std::size_t size_ = 0;
  Compare cmp_{};
};

}  // namespace papm::container
