#include "container/rbtree.h"

// RbTree is header-only; this TU anchors the library target.
