# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_common "/root/repo/build/tests/test_common")
set_tests_properties(test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sim "/root/repo/build/tests/test_sim")
set_tests_properties(test_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_pm "/root/repo/build/tests/test_pm")
set_tests_properties(test_pm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_rbtree "/root/repo/build/tests/test_rbtree")
set_tests_properties(test_rbtree PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_skiplist "/root/repo/build/tests/test_skiplist")
set_tests_properties(test_skiplist PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_pskiplist "/root/repo/build/tests/test_pskiplist")
set_tests_properties(test_pskiplist PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_net "/root/repo/build/tests/test_net")
set_tests_properties(test_net PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_http "/root/repo/build/tests/test_http")
set_tests_properties(test_http PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_storage "/root/repo/build/tests/test_storage")
set_tests_properties(test_storage PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build/tests/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_app "/root/repo/build/tests/test_app")
set_tests_properties(test_app PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_udp_homa "/root/repo/build/tests/test_udp_homa")
set_tests_properties(test_udp_homa PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_extras "/root/repo/build/tests/test_extras")
set_tests_properties(test_extras PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;21;add_test;/root/repo/tests/CMakeLists.txt;0;")
