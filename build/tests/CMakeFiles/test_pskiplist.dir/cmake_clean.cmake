file(REMOVE_RECURSE
  "CMakeFiles/test_pskiplist.dir/test_pskiplist.cpp.o"
  "CMakeFiles/test_pskiplist.dir/test_pskiplist.cpp.o.d"
  "test_pskiplist"
  "test_pskiplist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pskiplist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
