# Empty dependencies file for test_pskiplist.
# This may be replaced when dependencies are built.
