file(REMOVE_RECURSE
  "CMakeFiles/test_udp_homa.dir/test_udp_homa.cpp.o"
  "CMakeFiles/test_udp_homa.dir/test_udp_homa.cpp.o.d"
  "test_udp_homa"
  "test_udp_homa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_udp_homa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
