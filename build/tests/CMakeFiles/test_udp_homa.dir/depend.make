# Empty dependencies file for test_udp_homa.
# This may be replaced when dependencies are built.
