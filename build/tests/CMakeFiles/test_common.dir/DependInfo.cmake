
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/test_common.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/test_common.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/papm_app.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/papm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/papm_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/papm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/papm_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/papm_container.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/papm_pm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/papm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/papm_http.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/papm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
