file(REMOVE_RECURSE
  "CMakeFiles/test_pm.dir/test_pm.cpp.o"
  "CMakeFiles/test_pm.dir/test_pm.cpp.o.d"
  "test_pm"
  "test_pm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
