file(REMOVE_RECURSE
  "libpapm_common.a"
)
