file(REMOVE_RECURSE
  "CMakeFiles/papm_common.dir/common/crc32c.cpp.o"
  "CMakeFiles/papm_common.dir/common/crc32c.cpp.o.d"
  "CMakeFiles/papm_common.dir/common/hexdump.cpp.o"
  "CMakeFiles/papm_common.dir/common/hexdump.cpp.o.d"
  "CMakeFiles/papm_common.dir/common/inet_csum.cpp.o"
  "CMakeFiles/papm_common.dir/common/inet_csum.cpp.o.d"
  "CMakeFiles/papm_common.dir/common/stats.cpp.o"
  "CMakeFiles/papm_common.dir/common/stats.cpp.o.d"
  "libpapm_common.a"
  "libpapm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
