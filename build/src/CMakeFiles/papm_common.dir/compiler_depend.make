# Empty compiler generated dependencies file for papm_common.
# This may be replaced when dependencies are built.
