file(REMOVE_RECURSE
  "CMakeFiles/papm_pm.dir/pm/pm_device.cpp.o"
  "CMakeFiles/papm_pm.dir/pm/pm_device.cpp.o.d"
  "CMakeFiles/papm_pm.dir/pm/pm_pool.cpp.o"
  "CMakeFiles/papm_pm.dir/pm/pm_pool.cpp.o.d"
  "libpapm_pm.a"
  "libpapm_pm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papm_pm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
