file(REMOVE_RECURSE
  "libpapm_pm.a"
)
