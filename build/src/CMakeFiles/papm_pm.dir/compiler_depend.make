# Empty compiler generated dependencies file for papm_pm.
# This may be replaced when dependencies are built.
