file(REMOVE_RECURSE
  "libpapm_container.a"
)
