file(REMOVE_RECURSE
  "CMakeFiles/papm_container.dir/container/pskiplist.cpp.o"
  "CMakeFiles/papm_container.dir/container/pskiplist.cpp.o.d"
  "CMakeFiles/papm_container.dir/container/rbtree.cpp.o"
  "CMakeFiles/papm_container.dir/container/rbtree.cpp.o.d"
  "libpapm_container.a"
  "libpapm_container.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papm_container.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
