# Empty dependencies file for papm_container.
# This may be replaced when dependencies are built.
