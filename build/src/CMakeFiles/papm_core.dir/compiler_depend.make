# Empty compiler generated dependencies file for papm_core.
# This may be replaced when dependencies are built.
