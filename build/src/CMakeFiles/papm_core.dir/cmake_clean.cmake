file(REMOVE_RECURSE
  "CMakeFiles/papm_core.dir/core/pktstore.cpp.o"
  "CMakeFiles/papm_core.dir/core/pktstore.cpp.o.d"
  "CMakeFiles/papm_core.dir/core/pmfs.cpp.o"
  "CMakeFiles/papm_core.dir/core/pmfs.cpp.o.d"
  "CMakeFiles/papm_core.dir/core/ppktmeta.cpp.o"
  "CMakeFiles/papm_core.dir/core/ppktmeta.cpp.o.d"
  "libpapm_core.a"
  "libpapm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
