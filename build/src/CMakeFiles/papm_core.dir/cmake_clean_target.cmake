file(REMOVE_RECURSE
  "libpapm_core.a"
)
