
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/lsm_store.cpp" "src/CMakeFiles/papm_storage.dir/storage/lsm_store.cpp.o" "gcc" "src/CMakeFiles/papm_storage.dir/storage/lsm_store.cpp.o.d"
  "/root/repo/src/storage/memtable.cpp" "src/CMakeFiles/papm_storage.dir/storage/memtable.cpp.o" "gcc" "src/CMakeFiles/papm_storage.dir/storage/memtable.cpp.o.d"
  "/root/repo/src/storage/wal.cpp" "src/CMakeFiles/papm_storage.dir/storage/wal.cpp.o" "gcc" "src/CMakeFiles/papm_storage.dir/storage/wal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/papm_container.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/papm_http.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/papm_pm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/papm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/papm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
