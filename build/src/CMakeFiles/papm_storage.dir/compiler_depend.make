# Empty compiler generated dependencies file for papm_storage.
# This may be replaced when dependencies are built.
