file(REMOVE_RECURSE
  "CMakeFiles/papm_storage.dir/storage/lsm_store.cpp.o"
  "CMakeFiles/papm_storage.dir/storage/lsm_store.cpp.o.d"
  "CMakeFiles/papm_storage.dir/storage/memtable.cpp.o"
  "CMakeFiles/papm_storage.dir/storage/memtable.cpp.o.d"
  "CMakeFiles/papm_storage.dir/storage/wal.cpp.o"
  "CMakeFiles/papm_storage.dir/storage/wal.cpp.o.d"
  "libpapm_storage.a"
  "libpapm_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papm_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
