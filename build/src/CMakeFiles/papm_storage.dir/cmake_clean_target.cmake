file(REMOVE_RECURSE
  "libpapm_storage.a"
)
