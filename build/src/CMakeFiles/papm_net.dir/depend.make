# Empty dependencies file for papm_net.
# This may be replaced when dependencies are built.
