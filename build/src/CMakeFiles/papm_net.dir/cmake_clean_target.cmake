file(REMOVE_RECURSE
  "libpapm_net.a"
)
