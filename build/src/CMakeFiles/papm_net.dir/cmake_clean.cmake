file(REMOVE_RECURSE
  "CMakeFiles/papm_net.dir/net/gso.cpp.o"
  "CMakeFiles/papm_net.dir/net/gso.cpp.o.d"
  "CMakeFiles/papm_net.dir/net/headers.cpp.o"
  "CMakeFiles/papm_net.dir/net/headers.cpp.o.d"
  "CMakeFiles/papm_net.dir/net/homa.cpp.o"
  "CMakeFiles/papm_net.dir/net/homa.cpp.o.d"
  "CMakeFiles/papm_net.dir/net/pktbuf.cpp.o"
  "CMakeFiles/papm_net.dir/net/pktbuf.cpp.o.d"
  "CMakeFiles/papm_net.dir/net/tcp.cpp.o"
  "CMakeFiles/papm_net.dir/net/tcp.cpp.o.d"
  "CMakeFiles/papm_net.dir/net/udp.cpp.o"
  "CMakeFiles/papm_net.dir/net/udp.cpp.o.d"
  "libpapm_net.a"
  "libpapm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
