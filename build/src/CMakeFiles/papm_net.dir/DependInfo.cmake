
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/gso.cpp" "src/CMakeFiles/papm_net.dir/net/gso.cpp.o" "gcc" "src/CMakeFiles/papm_net.dir/net/gso.cpp.o.d"
  "/root/repo/src/net/headers.cpp" "src/CMakeFiles/papm_net.dir/net/headers.cpp.o" "gcc" "src/CMakeFiles/papm_net.dir/net/headers.cpp.o.d"
  "/root/repo/src/net/homa.cpp" "src/CMakeFiles/papm_net.dir/net/homa.cpp.o" "gcc" "src/CMakeFiles/papm_net.dir/net/homa.cpp.o.d"
  "/root/repo/src/net/pktbuf.cpp" "src/CMakeFiles/papm_net.dir/net/pktbuf.cpp.o" "gcc" "src/CMakeFiles/papm_net.dir/net/pktbuf.cpp.o.d"
  "/root/repo/src/net/tcp.cpp" "src/CMakeFiles/papm_net.dir/net/tcp.cpp.o" "gcc" "src/CMakeFiles/papm_net.dir/net/tcp.cpp.o.d"
  "/root/repo/src/net/udp.cpp" "src/CMakeFiles/papm_net.dir/net/udp.cpp.o" "gcc" "src/CMakeFiles/papm_net.dir/net/udp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/papm_container.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/papm_pm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/papm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/papm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
