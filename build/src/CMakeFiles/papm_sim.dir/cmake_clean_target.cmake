file(REMOVE_RECURSE
  "libpapm_sim.a"
)
