file(REMOVE_RECURSE
  "CMakeFiles/papm_sim.dir/sim/clock.cpp.o"
  "CMakeFiles/papm_sim.dir/sim/clock.cpp.o.d"
  "CMakeFiles/papm_sim.dir/sim/cost_model.cpp.o"
  "CMakeFiles/papm_sim.dir/sim/cost_model.cpp.o.d"
  "CMakeFiles/papm_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/papm_sim.dir/sim/event_queue.cpp.o.d"
  "libpapm_sim.a"
  "libpapm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
