# Empty dependencies file for papm_sim.
# This may be replaced when dependencies are built.
