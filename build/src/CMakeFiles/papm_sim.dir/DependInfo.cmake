
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/clock.cpp" "src/CMakeFiles/papm_sim.dir/sim/clock.cpp.o" "gcc" "src/CMakeFiles/papm_sim.dir/sim/clock.cpp.o.d"
  "/root/repo/src/sim/cost_model.cpp" "src/CMakeFiles/papm_sim.dir/sim/cost_model.cpp.o" "gcc" "src/CMakeFiles/papm_sim.dir/sim/cost_model.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/papm_sim.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/papm_sim.dir/sim/event_queue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/papm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
