file(REMOVE_RECURSE
  "libpapm_nic.a"
)
