file(REMOVE_RECURSE
  "CMakeFiles/papm_nic.dir/nic/fabric.cpp.o"
  "CMakeFiles/papm_nic.dir/nic/fabric.cpp.o.d"
  "CMakeFiles/papm_nic.dir/nic/nic.cpp.o"
  "CMakeFiles/papm_nic.dir/nic/nic.cpp.o.d"
  "libpapm_nic.a"
  "libpapm_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papm_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
