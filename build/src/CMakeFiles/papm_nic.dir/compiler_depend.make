# Empty compiler generated dependencies file for papm_nic.
# This may be replaced when dependencies are built.
