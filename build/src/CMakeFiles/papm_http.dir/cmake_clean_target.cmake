file(REMOVE_RECURSE
  "libpapm_http.a"
)
