# Empty compiler generated dependencies file for papm_http.
# This may be replaced when dependencies are built.
