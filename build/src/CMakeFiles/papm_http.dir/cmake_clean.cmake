file(REMOVE_RECURSE
  "CMakeFiles/papm_http.dir/http/http.cpp.o"
  "CMakeFiles/papm_http.dir/http/http.cpp.o.d"
  "libpapm_http.a"
  "libpapm_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papm_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
