file(REMOVE_RECURSE
  "CMakeFiles/papm_app.dir/app/client.cpp.o"
  "CMakeFiles/papm_app.dir/app/client.cpp.o.d"
  "CMakeFiles/papm_app.dir/app/harness.cpp.o"
  "CMakeFiles/papm_app.dir/app/harness.cpp.o.d"
  "CMakeFiles/papm_app.dir/app/server.cpp.o"
  "CMakeFiles/papm_app.dir/app/server.cpp.o.d"
  "libpapm_app.a"
  "libpapm_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papm_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
