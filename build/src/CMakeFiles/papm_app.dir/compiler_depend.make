# Empty compiler generated dependencies file for papm_app.
# This may be replaced when dependencies are built.
