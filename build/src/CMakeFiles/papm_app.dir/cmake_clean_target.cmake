file(REMOVE_RECURSE
  "libpapm_app.a"
)
