# Empty compiler generated dependencies file for bench_mica.
# This may be replaced when dependencies are built.
