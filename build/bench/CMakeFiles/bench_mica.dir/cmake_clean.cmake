file(REMOVE_RECURSE
  "CMakeFiles/bench_mica.dir/bench_mica.cpp.o"
  "CMakeFiles/bench_mica.dir/bench_mica.cpp.o.d"
  "bench_mica"
  "bench_mica.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mica.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
