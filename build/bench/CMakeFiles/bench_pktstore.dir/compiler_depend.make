# Empty compiler generated dependencies file for bench_pktstore.
# This may be replaced when dependencies are built.
