file(REMOVE_RECURSE
  "CMakeFiles/bench_pktstore.dir/bench_pktstore.cpp.o"
  "CMakeFiles/bench_pktstore.dir/bench_pktstore.cpp.o.d"
  "bench_pktstore"
  "bench_pktstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pktstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
