# Empty dependencies file for bench_alloc.
# This may be replaced when dependencies are built.
