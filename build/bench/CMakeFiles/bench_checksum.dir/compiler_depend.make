# Empty compiler generated dependencies file for bench_checksum.
# This may be replaced when dependencies are built.
