file(REMOVE_RECURSE
  "CMakeFiles/bench_checksum.dir/bench_checksum.cpp.o"
  "CMakeFiles/bench_checksum.dir/bench_checksum.cpp.o.d"
  "bench_checksum"
  "bench_checksum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_checksum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
