# Empty dependencies file for bench_homa.
# This may be replaced when dependencies are built.
