file(REMOVE_RECURSE
  "CMakeFiles/bench_homa.dir/bench_homa.cpp.o"
  "CMakeFiles/bench_homa.dir/bench_homa.cpp.o.d"
  "bench_homa"
  "bench_homa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_homa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
