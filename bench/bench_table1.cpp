// Table 1 reproduction: latency breakdown of the RTT for a 1 KB write.
//
// Methodology follows §3 exactly: the networking row is the RTT against a
// discard server; persistence and data-management rows come from the
// instrumented NoveLSM-like store, and the breakdown is confirmed by
// skipping one logical operation at a time and differencing the RTTs.
#include <cstdio>

#include "app/harness.h"

using namespace papm;
using namespace papm::app;

namespace {

RunConfig base(Backend b) {
  RunConfig cfg;
  cfg.backend = b;
  cfg.connections = 1;
  cfg.warmup_ns = 10 * kNsPerMs;
  cfg.measure_ns = 120 * kNsPerMs;
  return cfg;
}

void row(const char* overhead, const char* op, double paper_us, double ours_us) {
  std::printf("%-12s %-38s %8.2f %9.2f\n", overhead, op, paper_us, ours_us);
}

}  // namespace

int main() {
  std::printf("=== Table 1: Latency breakdown of RTT for a 1KB write ===\n");
  std::printf("%-12s %-38s %8s %9s\n", "Overhead", "Operation", "paper", "ours");

  const auto discard = run_experiment(base(Backend::discard));
  const auto lsm = run_experiment(base(Backend::lsm));
  const auto& bd = lsm.avg_breakdown;

  row("Networking", "TCP/IP & HTTP in client+server, fabric", 26.71,
      discard.mean_rtt_us());
  row("Data mgmt.", "Request preparation", 0.70,
      static_cast<double>(bd.prep_ns) / 1000.0);
  row("", "Checksum calculation", 1.77,
      static_cast<double>(bd.checksum_ns) / 1000.0);
  row("", "Data copy", 1.14, static_cast<double>(bd.copy_ns) / 1000.0);
  row("", "Buffer allocation and insertion", 2.78,
      static_cast<double>(bd.alloc_insert_ns) / 1000.0);
  row("", "(data mgmt subtotal)", 6.39,
      static_cast<double>(bd.data_mgmt_ns()) / 1000.0);
  row("Persistence", "Flush CPU caches to PM", 1.94,
      static_cast<double>(bd.persist_ns) / 1000.0);
  row("Total", "", 34.79, lsm.mean_rtt_us());

  // Cross-check by skipping one logical operation at a time (§3: "we
  // obtain the breakdown ... by further modifying the storage stack to
  // skip one or more logical operations").
  std::printf("\n--- Cross-check: RTT deltas from skipping each step ---\n");
  std::printf("%-38s %9s %9s\n", "skipped step", "RTT[us]", "delta[us]");
  struct Variant {
    const char* name;
    void (*tweak)(storage::StoreKnobs&);
  };
  const Variant variants[] = {
      {"none (full stack)", [](storage::StoreKnobs&) {}},
      {"request preparation",
       [](storage::StoreKnobs& k) { k.request_prep = false; }},
      {"checksum calculation",
       [](storage::StoreKnobs& k) { k.checksum = false; }},
      {"data copy", [](storage::StoreKnobs& k) { k.data_copy = false; }},
      {"buffer allocation and insertion",
       [](storage::StoreKnobs& k) { k.index_insert = false; }},
      {"persistence", [](storage::StoreKnobs& k) { k.persistence = false; }},
  };
  const double full_rtt = lsm.mean_rtt_us();
  for (const auto& v : variants) {
    auto cfg = base(Backend::lsm);
    v.tweak(cfg.knobs);
    const auto r = run_experiment(cfg);
    std::printf("%-38s %9.2f %9.2f\n", v.name, r.mean_rtt_us(),
                full_rtt - r.mean_rtt_us());
  }
  return 0;
}
