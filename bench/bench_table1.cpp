// Table 1 reproduction: latency breakdown of the RTT for a 1 KB write.
//
// Methodology follows §3 exactly: the networking row is the RTT against a
// discard server; persistence and data-management rows come from the
// instrumented NoveLSM-like store, and the breakdown is confirmed by
// skipping one logical operation at a time and differencing the RTTs.
//
// Observability flags (no-ops under PAPM_OBS=OFF):
//   --trace <path>        write the measurement window's spans as Chrome
//                         trace_events JSON (Perfetto-loadable) and print
//                         the span-derived attribution table
//   --metrics             print the merged server+client metric registries
//                         and the PM flush/fence accounting
//   --check-attribution   verify that discard-RTT + the traced data-mgmt
//                         stage means reproduces the measured LSM RTT
//                         within 1% (exit 1 otherwise)
//   --repl                append a replication row: pktstore PUT RTT with
//                         quorum acks off vs on (quorum=2, R=2); with
//                         --check-attribution the traced repl-stage mean
//                         must reconcile the two RTTs within 1%
#include <cstdio>
#include <cstdlib>

#include "app/harness.h"
#include "bench_json.h"

using namespace papm;
using namespace papm::app;

namespace {

RunConfig base(Backend b) {
  RunConfig cfg;
  cfg.backend = b;
  cfg.connections = 1;
  cfg.warmup_ns = 10 * kNsPerMs;
  cfg.measure_ns = 120 * kNsPerMs;
  return cfg;
}

void row(const char* overhead, const char* op, double paper_us, double ours_us) {
  std::printf("%-12s %-38s %8.2f %9.2f\n", overhead, op, paper_us, ours_us);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_path = benchio::arg_value(argc, argv, "--trace");
  const std::string json_path = benchio::json_path_from_args(argc, argv);
  const bool want_metrics = benchio::has_flag(argc, argv, "--metrics");
  const bool check_attr = benchio::has_flag(argc, argv, "--check-attribution");
  const bool want_trace = !trace_path.empty() || check_attr;

  std::printf("=== Table 1: Latency breakdown of RTT for a 1KB write ===\n");
  std::printf("%-12s %-38s %8s %9s\n", "Overhead", "Operation", "paper", "ours");

  auto discard_cfg = base(Backend::discard);
  discard_cfg.trace = want_trace;
  const auto discard = run_experiment(discard_cfg);
  auto lsm_cfg = base(Backend::lsm);
  lsm_cfg.trace = want_trace;
  lsm_cfg.collect_metrics = want_metrics;
  const auto lsm = run_experiment(lsm_cfg);
  const auto& bd = lsm.avg_breakdown;

  row("Networking", "TCP/IP & HTTP in client+server, fabric", 26.71,
      discard.mean_rtt_us());
  row("Data mgmt.", "Request preparation", 0.70,
      static_cast<double>(bd.prep_ns) / 1000.0);
  row("", "Checksum calculation", 1.77,
      static_cast<double>(bd.checksum_ns) / 1000.0);
  row("", "Data copy", 1.14, static_cast<double>(bd.copy_ns) / 1000.0);
  row("", "Buffer allocation and insertion", 2.78,
      static_cast<double>(bd.alloc_insert_ns) / 1000.0);
  row("", "(data mgmt subtotal)", 6.39,
      static_cast<double>(bd.data_mgmt_ns()) / 1000.0);
  row("Persistence", "Flush CPU caches to PM", 1.94,
      static_cast<double>(bd.persist_ns) / 1000.0);
  row("Total", "", 34.79, lsm.mean_rtt_us());

  if (want_trace) {
    // The same table, derived from the per-request spans instead of the
    // OpBreakdown accumulators: per-stage per-request means over the
    // measurement window.
    const obs::Attribution& at = lsm.attribution;
    std::printf("\n--- Span-derived attribution (lsm, %llu requests) ---\n",
                static_cast<unsigned long long>(at.requests));
    std::printf("%-14s %10s %10s\n", "stage", "mean[us]", "spans");
    for (int i = 0; i < obs::kStages; i++) {
      const auto s = static_cast<obs::Stage>(i);
      if (at.spans[i] == 0) continue;
      std::printf("%-14s %10.2f %10llu\n",
                  std::string(obs::to_string(s)).c_str(),
                  at.mean_ns(s) / 1000.0,
                  static_cast<unsigned long long>(at.spans[i]));
    }
    std::printf("%-14s %10.2f  (server-side stages)\n", "sum",
                at.server_sum_ns() / 1000.0);

    // The Table 1 composition as a self-check: networking RTT (measured
    // against the discard server) plus the *additional* traced
    // data-management and persistence work must reproduce the measured
    // LSM RTT. The parse stage appears in both runs (head parse), so
    // only its delta counts as data management.
    const obs::Attribution& dat = discard.attribution;
    const double extra_ns =
        (at.mean_ns(obs::Stage::parse) - dat.mean_ns(obs::Stage::parse)) +
        at.mean_ns(obs::Stage::checksum) + at.mean_ns(obs::Stage::slice) +
        at.mean_ns(obs::Stage::copy) + at.mean_ns(obs::Stage::alloc_index) +
        at.mean_ns(obs::Stage::nic_insert) + at.mean_ns(obs::Stage::persist);
    const double reconstructed_us = discard.mean_rtt_us() + extra_ns / 1000.0;
    const double err =
        (reconstructed_us - lsm.mean_rtt_us()) / lsm.mean_rtt_us();
    std::printf(
        "\nattribution check: discard RTT %.2f + traced data mgmt %.2f = "
        "%.2f us vs measured %.2f us (%+.2f%%)\n",
        discard.mean_rtt_us(), extra_ns / 1000.0, reconstructed_us,
        lsm.mean_rtt_us(), err * 100.0);
    if (check_attr) {
      if (!obs::kEnabled) {
        std::printf("attribution check: SKIP (built with PAPM_OBS=OFF)\n");
      } else if (err > 0.01 || err < -0.01) {
        std::printf("attribution check: FAIL (|error| > 1%%)\n");
        return 1;
      } else {
        std::printf("attribution check: OK\n");
      }
    }
  }

  if (want_metrics) {
    std::printf("\n--- PM flush/fence accounting (lsm window) ---\n");
    const auto& f = lsm.flush;
    const double ops = lsm.ops > 0 ? static_cast<double>(lsm.ops) : 1.0;
    std::printf("clwb: %llu (%.1f/op)  sfence: %llu (%.2f/op)  "
                "flushed: %llu B (%.0f B/op)\n",
                static_cast<unsigned long long>(f.clwb),
                static_cast<double>(f.clwb) / ops,
                static_cast<unsigned long long>(f.sfence),
                static_cast<double>(f.sfence) / ops,
                static_cast<unsigned long long>(f.bytes_flushed),
                static_cast<double>(f.bytes_flushed) / ops);
    std::printf("dirty-line hwm: %llu  pending-line hwm: %llu\n",
                static_cast<unsigned long long>(f.dirty_hwm),
                static_cast<unsigned long long>(f.pending_hwm));
    std::printf("\n--- Metric registries (lsm window) ---\n%s",
                lsm.metrics_report.c_str());
  }

  if (!json_path.empty()) {
    benchio::JsonWriter w;
    w.begin_object();
    benchio::write_metadata(w, "table1");
    w.field("networking_rtt_us", discard.mean_rtt_us());
    w.field("lsm_rtt_us", lsm.mean_rtt_us());
    w.field("prep_us", static_cast<double>(bd.prep_ns) / 1000.0);
    w.field("checksum_us", static_cast<double>(bd.checksum_ns) / 1000.0);
    w.field("copy_us", static_cast<double>(bd.copy_ns) / 1000.0);
    w.field("alloc_insert_us", static_cast<double>(bd.alloc_insert_ns) / 1000.0);
    w.field("persist_us", static_cast<double>(bd.persist_ns) / 1000.0);
    w.field("ops", static_cast<long long>(lsm.ops));
    benchio::write_flush_per_op(w, lsm.flush, lsm.ops);
    w.end_object();
    if (!w.write(json_path)) {
      std::fprintf(stderr, "bench_table1: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  if (!trace_path.empty()) {
    std::FILE* f = std::fopen(trace_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_table1: cannot write %s\n",
                   trace_path.c_str());
      return 1;
    }
    std::fwrite(lsm.trace_json.data(), 1, lsm.trace_json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\nwrote %s (Chrome trace_events; load in Perfetto or "
                "chrome://tracing)\n",
                trace_path.c_str());
  }

  // Replication row: what the quorum gate adds to a pktstore PUT, and
  // whether the traced repl stage accounts for exactly that gap.
  if (benchio::has_flag(argc, argv, "--repl")) {
    if (!repl::kReplCompiled) {
      std::printf("\nreplication row: SKIP (built with -DPAPM_REPL=OFF)\n");
    } else {
      auto off_cfg = base(Backend::pktstore);
      off_cfg.trace = want_trace;
      const auto off = run_experiment(off_cfg);
      auto on_cfg = off_cfg;
      on_cfg.repl = true;
      on_cfg.repl_replicas = 2;
      on_cfg.repl_opts.quorum = 2;
      const auto on = run_experiment(on_cfg);
      std::printf("\n--- Replication (pktstore 1KB PUT, quorum=2, R=2) ---\n");
      std::printf("repl off RTT %.2f us, repl on RTT %.2f us, "
                  "quorum tax %.2f us (server-measured %.2f us)\n",
                  off.mean_rtt_us(), on.mean_rtt_us(),
                  on.mean_rtt_us() - off.mean_rtt_us(),
                  static_cast<double>(on.repl_tax_ns) / 1000.0);
      if (want_trace) {
        // Composition self-check, same shape as Table 1's: the norepl
        // RTT plus the traced server-side *delta* (dominated by the repl
        // stage — locally-ready -> quorum release — with the shared
        // stages' second-order shifts differenced out, as the Table 1
        // check does for parse) must reproduce the gated RTT.
        const double repl_us = on.attribution.mean_ns(obs::Stage::repl) / 1e3;
        const double server_delta_us =
            (on.attribution.server_sum_ns() -
             off.attribution.server_sum_ns()) / 1e3;
        const double reconstructed_us = off.mean_rtt_us() + server_delta_us;
        const double err =
            (reconstructed_us - on.mean_rtt_us()) / on.mean_rtt_us();
        std::printf("repl attribution check: norepl RTT %.2f + traced delta "
                    "%.2f (repl stage %.2f) = %.2f us vs measured %.2f us "
                    "(%+.2f%%)\n",
                    off.mean_rtt_us(), server_delta_us, repl_us,
                    reconstructed_us, on.mean_rtt_us(), err * 100.0);
        if (check_attr) {
          if (!obs::kEnabled) {
            std::printf("repl attribution check: SKIP (PAPM_OBS=OFF)\n");
          } else if (err > 0.01 || err < -0.01) {
            std::printf("repl attribution check: FAIL (|error| > 1%%)\n");
            return 1;
          } else {
            std::printf("repl attribution check: OK\n");
          }
        }
      }
    }
  }

  // Cross-check by skipping one logical operation at a time (§3: "we
  // obtain the breakdown ... by further modifying the storage stack to
  // skip one or more logical operations").
  std::printf("\n--- Cross-check: RTT deltas from skipping each step ---\n");
  std::printf("%-38s %9s %9s\n", "skipped step", "RTT[us]", "delta[us]");
  struct Variant {
    const char* name;
    void (*tweak)(storage::StoreKnobs&);
  };
  const Variant variants[] = {
      {"none (full stack)", [](storage::StoreKnobs&) {}},
      {"request preparation",
       [](storage::StoreKnobs& k) { k.request_prep = false; }},
      {"checksum calculation",
       [](storage::StoreKnobs& k) { k.checksum = false; }},
      {"data copy", [](storage::StoreKnobs& k) { k.data_copy = false; }},
      {"buffer allocation and insertion",
       [](storage::StoreKnobs& k) { k.index_insert = false; }},
      {"persistence", [](storage::StoreKnobs& k) { k.persistence = false; }},
  };
  const double full_rtt = lsm.mean_rtt_us();
  for (const auto& v : variants) {
    auto cfg = base(Backend::lsm);
    v.tweak(cfg.knobs);
    const auto r = run_experiment(cfg);
    std::printf("%-38s %9.2f %9.2f\n", v.name, r.mean_rtt_us(),
                full_rtt - r.mean_rtt_us());
  }
  return 0;
}
