// Figure 2 reproduction: latency and throughput of continual 1 KB writes
// over parallel persistent TCP connections (1/25/50/75/100), single
// server core.
//
// Series: "Net. + persist." (raw copy+flush app) vs "Net. + data mgmt. +
// persist." (NoveLSM-like store) — the paper's two — plus the projection
// series for the proposed packet-metadata store (DESIGN.md P2).
#include <cstdio>

#include "app/harness.h"

using namespace papm;
using namespace papm::app;

int main() {
  std::printf(
      "=== Figure 2: 1KB writes over parallel persistent TCP connections "
      "===\n");
  std::printf(
      "(paper: data mgmt reduces throughput by 9-28%% and increases latency "
      "by 11-42%%)\n\n");
  std::printf(
      "conns | raw: lat[us]  p99[us] tput[kreq/s] | lsm: lat[us]  p99[us] "
      "tput[kreq/s] | pkt: lat[us] tput[kreq/s] | lsm-vs-raw lat+%% tput-%%\n");

  for (const int conns : {1, 25, 50, 75, 100}) {
    RunConfig cfg;
    cfg.connections = conns;
    cfg.warmup_ns = 10 * kNsPerMs;
    cfg.measure_ns = 60 * kNsPerMs;
    cfg.keyspace = 4096;

    cfg.backend = Backend::raw_persist;
    const auto raw = run_experiment(cfg);
    cfg.backend = Backend::lsm;
    const auto lsm = run_experiment(cfg);
    cfg.backend = Backend::pktstore;
    const auto pkt = run_experiment(cfg);

    std::printf(
        "%5d | %12.1f %8.1f %12.1f | %12.1f %8.1f %12.1f | %11.1f %12.1f | "
        "%9.1f%% %6.1f%%\n",
        conns, raw.mean_rtt_us(), raw.p99_rtt_us(), raw.kreq_per_s,
        lsm.mean_rtt_us(), lsm.p99_rtt_us(), lsm.kreq_per_s, pkt.mean_rtt_us(),
        pkt.kreq_per_s, (lsm.rtt.mean() / raw.rtt.mean() - 1.0) * 100.0,
        (1.0 - lsm.kreq_per_s / raw.kreq_per_s) * 100.0);
  }
  return 0;
}
