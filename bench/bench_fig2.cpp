// Figure 2 reproduction: latency and throughput of continual 1 KB writes
// over parallel persistent TCP connections (1/25/50/75/100), single
// server core.
//
// Series: "Net. + persist." (raw copy+flush app) vs "Net. + data mgmt. +
// persist." (NoveLSM-like store) — the paper's two — plus the projection
// series for the proposed packet-metadata store (DESIGN.md P2).
//
// --metrics additionally prints the per-cell PM flush/fence accounting
// (clwb/sfence/bytes per op — the persistence-cost delta between the
// backends) and the full metric registries for the largest sweep point.
// --json <path> writes the sweep as schema-v3 records, including the
// per-op flush-cost fields.
// --no-csum-offload disables the NIC checksum engines both ways, so the
// software-checksum delta is measurable again.
// --cost-model embeds the full calibrated cost model in the JSON record.
#include <cstdio>
#include <string>
#include <vector>

#include "app/harness.h"
#include "bench_json.h"

using namespace papm;
using namespace papm::app;

int main(int argc, char** argv) {
  const bool want_metrics = benchio::has_flag(argc, argv, "--metrics");
  const bool no_csum_offload =
      benchio::has_flag(argc, argv, "--no-csum-offload");
  const bool want_cost_model = benchio::has_flag(argc, argv, "--cost-model");
  const std::string json_path = benchio::json_path_from_args(argc, argv);
  struct Cell {
    int conns;
    Backend backend;
    RunResult r;
  };
  std::vector<Cell> cells;
  std::string last_lsm_report;

  std::printf(
      "=== Figure 2: 1KB writes over parallel persistent TCP connections "
      "===\n");
  std::printf(
      "(paper: data mgmt reduces throughput by 9-28%% and increases latency "
      "by 11-42%%)\n\n");
  std::printf(
      "conns | raw: lat[us]  p99[us] tput[kreq/s] | lsm: lat[us]  p99[us] "
      "tput[kreq/s] | pkt: lat[us] tput[kreq/s] | lsm-vs-raw lat+%% tput-%%\n");

  for (const int conns : {1, 25, 50, 75, 100}) {
    RunConfig cfg;
    cfg.connections = conns;
    // Warmup doubles as the load phase: long enough that the uniform
    // keyspace is (almost) fully populated before measurement starts, so
    // the window reports steady-state overwrites, not first-touch inserts
    // (which pay an extra index-node line and skew the flush accounting).
    cfg.warmup_ns = 160 * kNsPerMs;
    cfg.measure_ns = 60 * kNsPerMs;
    cfg.keyspace = 4096;
    if (no_csum_offload) {
      cfg.nic.csum_offload_rx = false;
      cfg.nic.csum_offload_tx = false;
    }

    cfg.collect_metrics = want_metrics;
    cfg.backend = Backend::raw_persist;
    const auto raw = run_experiment(cfg);
    cfg.backend = Backend::lsm;
    const auto lsm = run_experiment(cfg);
    cfg.backend = Backend::pktstore;
    const auto pkt = run_experiment(cfg);
    if (want_metrics) last_lsm_report = lsm.metrics_report;
    cells.push_back({conns, Backend::raw_persist, raw});
    cells.push_back({conns, Backend::lsm, lsm});
    cells.push_back({conns, Backend::pktstore, pkt});

    std::printf(
        "%5d | %12.1f %8.1f %12.1f | %12.1f %8.1f %12.1f | %11.1f %12.1f | "
        "%9.1f%% %6.1f%%\n",
        conns, raw.mean_rtt_us(), raw.p99_rtt_us(), raw.kreq_per_s,
        lsm.mean_rtt_us(), lsm.p99_rtt_us(), lsm.kreq_per_s, pkt.mean_rtt_us(),
        pkt.kreq_per_s, (lsm.rtt.mean() / raw.rtt.mean() - 1.0) * 100.0,
        (1.0 - lsm.kreq_per_s / raw.kreq_per_s) * 100.0);
  }

  if (want_metrics) {
    std::printf("\n--- PM flush/fence accounting per backend ---\n");
    std::printf("%5s %-12s %10s %10s %10s\n", "conns", "backend", "clwb/op",
                "sfence/op", "B/op");
    for (const auto& c : cells) {
      const double ops = c.r.ops > 0 ? static_cast<double>(c.r.ops) : 1.0;
      std::printf("%5d %-12s %10.1f %10.2f %10.0f\n", c.conns,
                  std::string(to_string(c.backend)).c_str(),
                  static_cast<double>(c.r.flush.clwb) / ops,
                  static_cast<double>(c.r.flush.sfence) / ops,
                  static_cast<double>(c.r.flush.bytes_flushed) / ops);
    }
    std::printf("\n--- Metric registries (lsm, largest sweep point) ---\n%s",
                last_lsm_report.c_str());
  }

  if (!json_path.empty()) {
    benchio::JsonWriter w;
    w.begin_object();
    benchio::write_metadata(w, "fig2");
    w.field("csum_offload", no_csum_offload ? "off" : "on");
    if (want_cost_model) {
      w.begin_object("cost_model");
      benchio::write_cost_model(w, sim::CostModel{});
      w.end_object();
    }
    w.begin_array("results");
    for (const auto& c : cells) {
      w.begin_object();
      w.field("backend", to_string(c.backend));
      w.field("connections", static_cast<long long>(c.conns));
      w.field("mean_rtt_us", c.r.mean_rtt_us());
      w.field("p99_rtt_us", c.r.p99_rtt_us());
      w.field("kreq_per_s", c.r.kreq_per_s);
      w.field("ops", static_cast<long long>(c.r.ops));
      benchio::write_flush_per_op(w, c.r.flush, c.r.ops);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    if (!w.write(json_path)) {
      std::fprintf(stderr, "bench_fig2: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s (%zu records)\n", json_path.c_str(), cells.size());
  }
  return 0;
}
