// Ablation A4 (§5.2): lower-latency transports shift the bottleneck to
// data management.
//
// "New transport protocols will further highlight the benefit of
// repurposing packets, because the networking latency, which is 26.71 us
// with TCP in our experiment, will be lower." We sweep the networking
// cost (TCP, TCP scaled x0.5 and x0.25, and a Homa-like profile) and
// report how the data-management share of the RTT grows, and what the
// pktstore recovers.
#include <cstdio>

#include "app/harness.h"

using namespace papm;
using namespace papm::app;

namespace {

RunConfig base(Backend b, const sim::CostModel& cost) {
  RunConfig cfg;
  cfg.backend = b;
  cfg.cost = cost;
  cfg.connections = 1;
  cfg.warmup_ns = 10 * kNsPerMs;
  cfg.measure_ns = 80 * kNsPerMs;
  return cfg;
}

}  // namespace

int main() {
  std::printf("=== A4: transport latency vs data-management share ===\n");
  std::printf("%-14s %9s %9s %9s %11s %11s\n", "transport", "net[us]",
              "lsm[us]", "pkt[us]", "mgmt-share", "pkt-gain");

  struct Profile {
    const char* name;
    sim::CostModel cost;
  };
  sim::CostModel tcp;
  sim::CostModel half = tcp;
  half.net_scale = 0.5;
  sim::CostModel quarter = tcp;
  quarter.net_scale = 0.25;
  const Profile profiles[] = {
      {"TCP", tcp},
      {"TCP x0.5", half},
      {"TCP x0.25", quarter},
      {"Homa-like", sim::CostModel::homa_like()},
  };

  for (const auto& p : profiles) {
    const auto net = run_experiment(base(Backend::discard, p.cost));
    const auto lsm = run_experiment(base(Backend::lsm, p.cost));
    const auto pkt = run_experiment(base(Backend::pktstore, p.cost));
    const double mgmt_share =
        (lsm.rtt.mean() - net.rtt.mean()) / lsm.rtt.mean() * 100.0;
    const double pkt_gain =
        (lsm.rtt.mean() - pkt.rtt.mean()) / lsm.rtt.mean() * 100.0;
    std::printf("%-14s %9.2f %9.2f %9.2f %10.1f%% %10.1f%%\n", p.name,
                net.mean_rtt_us(), lsm.mean_rtt_us(), pkt.mean_rtt_us(),
                mgmt_share, pkt_gain);
  }
  std::printf(
      "\n(mgmt-share: storage overhead as fraction of the lsm RTT; pkt-gain:\n"
      " RTT reduction from the packet-metadata store. Both grow as the\n"
      " network gets faster — the paper's 5.2 argument.)\n");
  return 0;
}
