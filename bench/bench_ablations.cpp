// Grab-bag ablations around DESIGN.md's design choices:
//
//  (W)  WAL on/off — NoveLSM's design point is dropping the log for a PM
//       memtable (§2.1); what does keeping it cost?
//  (O)  NIC checksum offload on/off — the paper's testbed enables it
//       ("both machines enable checksum offloading"); without it the
//       stacks compute Internet checksums in software per segment.
//  (V)  Value-size sweep — how the baseline-vs-proposal gap scales from
//       64 B to 16 KB (multi-segment values included).
//  (Z)  Key skew — uniform vs Zipfian (YCSB-style theta 0.99): skew turns
//       inserts into updates, exercising the in-place republish path.
#include <cstdio>

#include "app/harness.h"

using namespace papm;
using namespace papm::app;

namespace {

RunConfig base(Backend b) {
  RunConfig cfg;
  cfg.backend = b;
  cfg.connections = 1;
  cfg.warmup_ns = 10 * kNsPerMs;
  cfg.measure_ns = 80 * kNsPerMs;
  return cfg;
}

}  // namespace

int main() {
  std::printf("=== (W) write-ahead log: LevelDB-on-PM vs NoveLSM design ===\n");
  {
    auto no_wal = base(Backend::lsm);
    auto with_wal = base(Backend::lsm);
    with_wal.lsm_wal = true;
    const auto a = run_experiment(no_wal);
    const auto b = run_experiment(with_wal);
    std::printf("  no WAL (NoveLSM-like):  %7.2f us\n", a.mean_rtt_us());
    std::printf("  WAL    (LevelDB-like):  %7.2f us  (+%.2f us/op: the log\n"
                "  append+crc+flush that the PM memtable makes redundant)\n\n",
                b.mean_rtt_us(), b.mean_rtt_us() - a.mean_rtt_us());
  }

  std::printf("=== (O) NIC checksum offload on/off ===\n");
  std::printf("%-12s %12s %12s %9s\n", "backend", "offload[us]", "software[us]",
              "delta");
  for (const Backend b : {Backend::discard, Backend::lsm, Backend::pktstore}) {
    auto on = base(b);
    auto off = base(b);
    off.nic.csum_offload_tx = false;
    off.nic.csum_offload_rx = false;
    // Without offload the stack verifies checksums in software (charged
    // per segment); the store can still reuse the word the stack
    // computed — reuse does not require hardware, just the stack.
    const auto ron = run_experiment(on);
    const auto roff = run_experiment(off);
    std::printf("%-12s %12.2f %12.2f %8.2f\n",
                std::string(to_string(b)).c_str(), ron.mean_rtt_us(),
                roff.mean_rtt_us(), roff.mean_rtt_us() - ron.mean_rtt_us());
  }

  std::printf("\n=== (V) value-size sweep: baseline vs proposal ===\n");
  std::printf("%7s %10s %10s %10s %10s\n", "bytes", "lsm[us]", "pkt[us]",
              "saved[us]", "saved%");
  for (const std::size_t vs : {64u, 256u, 1024u, 4096u, 16384u}) {
    auto l = base(Backend::lsm);
    l.value_size = vs;
    auto p = base(Backend::pktstore);
    p.value_size = vs;
    const auto rl = run_experiment(l);
    const auto rp = run_experiment(p);
    std::printf("%7zu %10.2f %10.2f %10.2f %9.1f%%\n", vs, rl.mean_rtt_us(),
                rp.mean_rtt_us(), rl.mean_rtt_us() - rp.mean_rtt_us(),
                (rl.mean_rtt_us() - rp.mean_rtt_us()) / rl.mean_rtt_us() * 100);
  }

  std::printf("\n=== (Z) key skew: uniform vs Zipf(0.99) ===\n");
  std::printf("%-10s %12s %12s\n", "backend", "uniform[us]", "zipf[us]");
  for (const Backend b : {Backend::lsm, Backend::pktstore}) {
    auto uni = base(b);
    auto zip = base(b);
    zip.zipf_theta = 0.99;
    const auto ru = run_experiment(uni);
    const auto rz = run_experiment(zip);
    std::printf("%-10s %12.2f %12.2f\n", std::string(to_string(b)).c_str(),
                ru.mean_rtt_us(), rz.mean_rtt_us());
  }
  std::printf(
      "\n(skew makes most writes updates: the index republishes an 8-byte\n"
      " payload instead of inserting a node, so skewed workloads are\n"
      " slightly cheaper for both stores)\n");
  return 0;
}
