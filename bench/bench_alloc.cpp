// Micro M2: allocator unification (§4.2) — simulated cost of the general
// user-space PM allocator vs the packet-pool freelist, plus the real
// wall-clock cost of the pool's bookkeeping.
#include <benchmark/benchmark.h>

#include "net/pktbuf.h"

using namespace papm;

namespace {

// Simulated-time comparison (the Table 1 "buffer allocation" component).
void BM_SimPmAllocFree(benchmark::State& state) {
  sim::Env env;
  pm::PmDevice dev(env, 64u << 20);
  auto pool = pm::PmPool::create(dev, "p", dev.data_base(), (64u << 20) - 4096);
  const auto size = static_cast<u64>(state.range(0));
  SimTime total = 0;
  u64 ops = 0;
  for (auto _ : state) {
    const SimTime t0 = env.now();
    auto r = pool.alloc(size);
    benchmark::DoNotOptimize(r);
    if (r.ok()) pool.free(r.value(), size);
    total += env.now() - t0;
    ops++;
  }
  state.counters["sim_ns_per_op"] =
      benchmark::Counter(static_cast<double>(total) / static_cast<double>(ops));
}
BENCHMARK(BM_SimPmAllocFree)->Arg(64)->Arg(1024)->Arg(4096);

void BM_SimPoolAllocFree(benchmark::State& state) {
  sim::Env env;
  pm::PmDevice dev(env, 64u << 20);
  auto pool = pm::PmPool::create(dev, "p", dev.data_base(), (64u << 20) - 4096);
  // Packet-pool pricing (§4.2 unification).
  pool.set_charges(env.cost.pool_alloc_ns, env.cost.pool_alloc_ns / 2);
  const auto size = static_cast<u64>(state.range(0));
  SimTime total = 0;
  u64 ops = 0;
  for (auto _ : state) {
    const SimTime t0 = env.now();
    auto r = pool.alloc(size);
    benchmark::DoNotOptimize(r);
    if (r.ok()) pool.free(r.value(), size);
    total += env.now() - t0;
    ops++;
  }
  state.counters["sim_ns_per_op"] =
      benchmark::Counter(static_cast<double>(total) / static_cast<double>(ops));
}
BENCHMARK(BM_SimPoolAllocFree)->Arg(64)->Arg(1024)->Arg(4096);

// Real wall-clock: PktBuf metadata alloc/free/clone cycle.
void BM_PktBufAllocFree(benchmark::State& state) {
  sim::Env env;
  net::HeapArena arena(env);
  net::PktBufPool pool(env, arena);
  for (auto _ : state) {
    net::PktBuf* pb = pool.alloc(1514);
    benchmark::DoNotOptimize(pb);
    pool.free(pb);
  }
}
BENCHMARK(BM_PktBufAllocFree);

void BM_PktBufClone(benchmark::State& state) {
  sim::Env env;
  net::HeapArena arena(env);
  net::PktBufPool pool(env, arena);
  net::PktBuf* pb = pool.alloc(1514);
  for (auto _ : state) {
    net::PktBuf* c = pool.clone(*pb);
    benchmark::DoNotOptimize(c);
    pool.free(c);
  }
  pool.free(pb);
}
BENCHMARK(BM_PktBufClone);

}  // namespace

BENCHMARK_MAIN();
