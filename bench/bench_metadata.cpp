// Ablation A1 (§5.1): metadata compactness and media latency.
//
// "Although access latency to a PM device is higher (346ns) than DRAM
// (70ns), packet metadata is designed to be compact and cache friendly
// ... we may need further optimization, because the impact of a cache
// miss is higher than DRAM."
//
// We sweep the index cold-miss fraction (a proxy for metadata cache
// footprint) and the medium (PM vs DRAM read latency), and report the
// simulated per-op index cost at several store sizes — plus real
// wall-clock skip-list throughput.
#include <benchmark/benchmark.h>

#include <string>

#include "container/pskiplist.h"
#include "container/skiplist.h"

using namespace papm;

namespace {

void BM_SimIndexInsert(benchmark::State& state) {
  const auto keys = static_cast<std::size_t>(state.range(0));
  const double cold_p = static_cast<double>(state.range(1)) / 100.0;
  const bool pm = state.range(2) != 0;

  sim::Env env;
  if (!pm) env.cost.pm_read_ns = env.cost.dram_read_ns;  // DRAM medium
  pm::PmDevice dev(env, 256u << 20);
  auto pool = pm::PmPool::create(dev, "p", dev.data_base(), (256u << 20) - 4096);
  container::PSkipList::Options o;
  o.cold_visit_p = cold_p;
  auto list = container::PSkipList::create(dev, pool, "idx", o);
  for (std::size_t i = 0; i < keys; i++) {
    (void)list.put("key" + std::to_string(i), i);
  }

  SimTime total = 0;
  u64 ops = 0;
  u64 i = keys;
  for (auto _ : state) {
    const SimTime t0 = env.now();
    benchmark::DoNotOptimize(list.put("key" + std::to_string(i % (2 * keys)), i));
    total += env.now() - t0;
    ops++;
    i++;
  }
  state.counters["sim_ns_per_insert"] =
      benchmark::Counter(static_cast<double>(total) / static_cast<double>(ops));
}
// args: {resident keys, cold% (cache footprint proxy), medium 1=PM 0=DRAM}
BENCHMARK(BM_SimIndexInsert)
    ->Args({4000, 14, 1})   // compact metadata on PM (calibrated default)
    ->Args({4000, 14, 0})   // same on DRAM
    ->Args({4000, 50, 1})   // bloated metadata on PM
    ->Args({4000, 50, 0})   // bloated on DRAM
    ->Args({32000, 14, 1})  // deeper index
    ->Args({32000, 50, 1});

void BM_RealVolatileSkipListPut(benchmark::State& state) {
  container::SkipList sl;
  const auto keys = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < keys; i++) sl.put("key" + std::to_string(i), i);
  u64 i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sl.put("key" + std::to_string(i % keys), i));
    i++;
  }
}
BENCHMARK(BM_RealVolatileSkipListPut)->Arg(4000)->Arg(32000);

void BM_RealPersistentSkipListGet(benchmark::State& state) {
  sim::Env env;
  pm::PmDevice dev(env, 256u << 20);
  auto pool = pm::PmPool::create(dev, "p", dev.data_base(), (256u << 20) - 4096);
  auto list = container::PSkipList::create(dev, pool, "idx");
  const auto keys = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < keys; i++) {
    (void)list.put("key" + std::to_string(i), i);
  }
  u64 i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(list.get("key" + std::to_string(i % keys)));
    i++;
  }
}
BENCHMARK(BM_RealPersistentSkipListGet)->Arg(4000)->Arg(32000);

}  // namespace

BENCHMARK_MAIN();
