// Replication R1/A4: what quorum durability costs, and what it buys.
//
// Section R1 (the tax): closed-loop PUT-only load against the pktstore
// backend, replication off vs. quorum=2 and quorum=3 over R=2 backups.
// The tax column is the server-measured mean added ack latency per
// quorum-gated op — the remote wait *beyond local readiness* (a quorum
// ack that beats the local group-commit epoch close costs nothing).
// The sweep runs at 1 connection (un-batched epochs: the tax is the
// full replication round trip) and at 8 (deep epochs: the remote wait
// hides almost entirely behind the local epoch commit, and what remains
// of the slowdown is the forwarding work on the server core).
//
// Section A4 (the buy): open-loop PUT-only load, primary killed cold at
// t_cut (NIC link down + forwarder dead, no goodbye traffic). Reports
// detection time (heartbeat silence -> suspect), failover time (cut ->
// promoted backup fully durable), and the contract number: of all the
// writes the *client* saw acked, how many the promoted host lost. The
// quorum guarantee says that column is zero — with degrade=stall it is
// checked byte-for-byte against the deterministic per-key values.
//
// Flags:
//   --quick        shorter windows
//   --seconds S    R1 measurement window in simulated seconds (default 0.12)
//   --json PATH    machine-readable records (schema v7); two runs with
//                  the same flags are byte-identical
//   --trace PATH   run a short traced quorum=2 experiment and write one
//                  stitched Chrome/Perfetto trace: the primary's shard
//                  track, the client track, and one apply track per
//                  replica (`repl_apply` spans keyed by the primary's
//                  trace id) — the quorum tax as a cross-track span
#include <cstdio>
#include <string>
#include <vector>

#include "app/harness.h"
#include "bench_json.h"

using namespace papm;
using namespace papm::app;

namespace {

struct TaxPoint {
  std::string label;
  long long quorum;  // 0 = replication off
  long long conns;
  RunResult r;
};

struct FailoverPoint {
  long long quorum;
  FailoverResult r;
};

RunConfig tax_base(SimTime measure, int conns) {
  RunConfig cfg;
  cfg.backend = Backend::pktstore;
  cfg.connections = conns;
  cfg.value_size = 512;
  cfg.get_ratio = 0.0;  // every op is quorum-gated
  cfg.keyspace = 4096;
  cfg.warmup_ns = 10 * kNsPerMs;
  cfg.measure_ns = measure;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = benchio::json_path_from_args(argc, argv);
  const bool quick = benchio::has_flag(argc, argv, "--quick");
  const std::string seconds_arg = benchio::arg_value(argc, argv, "--seconds");
  const double seconds =
      seconds_arg.empty() ? (quick ? 0.04 : 0.12) : std::stod(seconds_arg);
  const SimTime measure = static_cast<SimTime>(seconds * 1e9);

  if (!repl::kReplCompiled) {
    std::printf("bench_repl: SKIP (built with -DPAPM_REPL=OFF)\n");
  }

  std::vector<TaxPoint> tax;
  std::vector<FailoverPoint> fo;
  if (repl::kReplCompiled) {
    std::printf("=== Replication R1: quorum ack tax "
                "(closed loop, PUT-only, pktstore, R=2) ===\n");
    std::printf("%10s %6s %9s %9s %9s %9s %9s %6s %9s\n", "config", "conns",
                "kreq/s", "mean[us]", "p99[us]", "tax[us]", "forwards", "rtx",
                "degraded");
    for (const int conns : {1, 8}) {
      for (const long long q : {0LL, 2LL, 3LL}) {
        RunConfig cfg = tax_base(measure, conns);
        if (q > 0) {
          cfg.repl = true;
          cfg.repl_replicas = 2;
          cfg.repl_opts.quorum = static_cast<u32>(q);
        }
        const std::string label =
            q == 0 ? "repl off" : "q=" + std::to_string(q);
        const RunResult r = run_experiment(cfg);
        std::printf("%10s %6d %9.1f %9.2f %9.2f %9.2f %9llu %6llu %9llu\n",
                    label.c_str(), conns, r.kreq_per_s, r.mean_rtt_us(),
                    r.p99_rtt_us(),
                    static_cast<double>(r.repl_tax_ns) / 1000.0,
                    static_cast<unsigned long long>(r.repl_forwards),
                    static_cast<unsigned long long>(r.repl_retransmits),
                    static_cast<unsigned long long>(r.repl_degraded_acks));
        tax.push_back(TaxPoint{label, q, conns, r});
      }
    }

    std::printf("\n=== Replication A4: kill the primary mid-load "
                "(open loop, PUT-only, R=2, degrade=stall) ===\n");
    std::printf("%7s %7s %6s %5s %11s %13s %11s %8s\n", "quorum", "acked",
                "keys", "lost", "detect[us]", "failover[us]", "winner_seq",
                "applies");
    for (const long long q : {2LL, 3LL}) {
      FailoverConfig cfg;
      cfg.repl.quorum = static_cast<u32>(q);
      cfg.cut_at_ns = (quick ? 15 : 30) * kNsPerMs;
      const FailoverResult r = run_failover(cfg);
      std::printf("%7lld %7llu %6llu %5llu %11.1f %13.1f %11llu %8llu%s\n", q,
                  static_cast<unsigned long long>(r.acked_puts),
                  static_cast<unsigned long long>(r.acked_keys),
                  static_cast<unsigned long long>(r.acked_lost), r.detect_us,
                  r.failover_us,
                  static_cast<unsigned long long>(r.winner_durable_seq),
                  static_cast<unsigned long long>(r.winner_applies),
                  r.detected && r.settled ? "" : "  [INCOMPLETE]");
      fo.push_back(FailoverPoint{q, r});
    }
  }

  const std::string trace_path = benchio::arg_value(argc, argv, "--trace");
  if (!trace_path.empty() && repl::kReplCompiled) {
    // A short traced run is all Perfetto needs; the full windows above
    // would produce a trace file in the hundreds of megabytes.
    RunConfig cfg = tax_base(5 * kNsPerMs, 1);
    cfg.repl = true;
    cfg.repl_replicas = 2;
    cfg.repl_opts.quorum = 2;
    cfg.trace = true;
    const RunResult r = run_experiment(cfg);
    std::FILE* f = std::fopen(trace_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_repl: cannot write %s\n",
                   trace_path.c_str());
      return 1;
    }
    std::fwrite(r.trace_json.data(), 1, r.trace_json.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s (stitched trace: %llu ops, repl_apply mean "
                "%.2f us across replica tracks)\n",
                trace_path.c_str(), static_cast<unsigned long long>(r.ops),
                r.attribution.mean_ns(obs::Stage::repl_apply) / 1000.0);
  }

  if (!json_path.empty()) {
    benchio::JsonWriter w;
    w.begin_object();
    benchio::write_metadata(w, "repl");
    w.field("seed", 42LL);
    w.field("replicas", 2LL);
    w.field("measure_ns", static_cast<long long>(measure));
    w.field("compiled", static_cast<long long>(repl::kReplCompiled ? 1 : 0));
    w.begin_array("results");
    for (const TaxPoint& p : tax) {
      w.begin_object();
      w.field("kind", "tax");
      w.field("config", p.label);
      w.field("quorum", p.quorum);
      w.field("connections", p.conns);
      w.field("kreq_per_s", p.r.kreq_per_s);
      w.field("mean_us", p.r.mean_rtt_us());
      w.field("p99_us", p.r.p99_rtt_us());
      w.field("repl_tax_ns", static_cast<long long>(p.r.repl_tax_ns));
      w.field("forwards", static_cast<long long>(p.r.repl_forwards));
      w.field("acks_rx", static_cast<long long>(p.r.repl_acks_rx));
      w.field("retransmits", static_cast<long long>(p.r.repl_retransmits));
      w.field("degraded_acks",
              static_cast<long long>(p.r.repl_degraded_acks));
      w.end_object();
    }
    for (const FailoverPoint& p : fo) {
      w.begin_object();
      w.field("kind", "failover");
      w.field("quorum", p.quorum);
      w.field("detected", static_cast<long long>(p.r.detected ? 1 : 0));
      w.field("settled", static_cast<long long>(p.r.settled ? 1 : 0));
      w.field("detect_us", p.r.detect_us);
      w.field("failover_us", p.r.failover_us);
      w.field("acked_puts", static_cast<long long>(p.r.acked_puts));
      w.field("acked_keys", static_cast<long long>(p.r.acked_keys));
      w.field("acked_lost", static_cast<long long>(p.r.acked_lost));
      w.field("winner_durable_seq",
              static_cast<long long>(p.r.winner_durable_seq));
      w.field("winner_applies", static_cast<long long>(p.r.winner_applies));
      w.field("degraded_acks", static_cast<long long>(p.r.degraded_acks));
      w.end_object();
    }
    w.end_array();
    w.end_object();
    if (!w.write(json_path)) {
      std::fprintf(stderr, "bench_repl: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s (%zu records)\n", json_path.c_str(),
                tax.size() + fo.size());
  }

  // The availability contract is the bench's pass criterion: with
  // degrade=stall, an acked write missing from the promoted host is a
  // correctness failure, not a data point.
  for (const FailoverPoint& p : fo) {
    if (!p.r.detected || !p.r.settled || p.r.acked_lost != 0) {
      std::fprintf(stderr,
                   "bench_repl: FAIL quorum=%lld detected=%d settled=%d "
                   "acked_lost=%llu\n",
                   p.quorum, p.r.detected ? 1 : 0, p.r.settled ? 1 : 0,
                   static_cast<unsigned long long>(p.r.acked_lost));
      return 1;
    }
  }
  return 0;
}
