// Slicer crossover: NIC payload slicing + index-engine offload on the
// pktstore backend, swept over value size x offload mode x connections.
//
// Modes:
//   off   slicer disabled — the pre-slicer contiguous RX path
//   host  payload slicing on, index insert on the host CPU
//   nic   payload slicing on, index insert forced onto the NIC engine
//   auto  payload slicing on, size-based host/NIC choice
//         (PktStoreOptions::nic_insert_min_bytes)
//
// The table shows where slicing cuts the data-management subtotal
// (persist -> 0: the payload is durable on DMA placement) and where the
// NIC insert's fixed command cost crosses the host's per-segment cost —
// the EXPERIMENTS.md crossover curve comes from this bench.
//
// Flags:
//   --quick       one size/conn point per mode (tier-1 smoke)
//   --metrics     print merged metric registries for the last cell
//   --cost-model  embed the calibrated cost model in the JSON record
//   --json PATH   machine-readable records (schema v5); two runs with the
//                 same flags are byte-identical
#include <cstdio>
#include <string>
#include <vector>

#include "app/harness.h"
#include "bench_json.h"

using namespace papm;
using namespace papm::app;

namespace {

struct Mode {
  const char* name;
  bool slicing;
  core::InsertPolicy insert;
};

constexpr Mode kModes[] = {
    {"off", false, core::InsertPolicy::host},
    {"host", true, core::InsertPolicy::host},
    {"nic", true, core::InsertPolicy::nic},
    {"auto", true, core::InsertPolicy::auto_},
};

struct Cell {
  std::size_t value_size;
  const char* mode;
  int conns;
  RunResult r;
};

}  // namespace

int main(int argc, char** argv) {
  const bool quick = benchio::has_flag(argc, argv, "--quick");
  const bool want_metrics = benchio::has_flag(argc, argv, "--metrics");
  const bool want_cost_model = benchio::has_flag(argc, argv, "--cost-model");
  const std::string json_path = benchio::json_path_from_args(argc, argv);

  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{1024}
            : std::vector<std::size_t>{256, 1024, 4096, 16384};
  const std::vector<int> conns_sweep =
      quick ? std::vector<int>{1} : std::vector<int>{1, 50};

  std::printf(
      "=== Slicer crossover: pktstore PUTs, value size x offload mode ===\n");
  std::printf(
      "(slice: host-side sliced-descriptor bookkeeping; nic_ins: doorbell + "
      "engine wait + completion)\n\n");
  std::printf(
      "%6s %-5s %5s | %8s %8s %9s | %6s %6s %6s %6s %7s %7s %7s | %8s\n",
      "bytes", "mode", "conns", "rtt[us]", "p99[us]", "kreq/s", "prep",
      "csum", "slice", "copy", "al+idx", "nic_in", "persist", "dmgmt[us]");

  std::vector<Cell> cells;
  std::string last_report;
  for (const std::size_t vs : sizes) {
    for (const int conns : conns_sweep) {
      for (const Mode& m : kModes) {
        RunConfig cfg;
        cfg.backend = Backend::pktstore;
        cfg.connections = conns;
        cfg.value_size = vs;
        cfg.get_ratio = 0.0;
        cfg.keyspace = 1024;
        cfg.warmup_ns = 60 * kNsPerMs;
        cfg.measure_ns = 60 * kNsPerMs;
        cfg.nic.payload_slicing = m.slicing;
        cfg.pkt_opts.insert = m.insert;
        cfg.collect_metrics = want_metrics;
        const RunResult r = run_experiment(cfg);
        if (want_metrics) last_report = r.metrics_report;
        cells.push_back(Cell{vs, m.name, conns, r});
        const auto& bd = r.avg_breakdown;
        std::printf(
            "%6zu %-5s %5d | %8.2f %8.2f %9.1f | %6.2f %6.2f %6.2f %6.2f "
            "%7.2f %7.2f %7.2f | %8.2f\n",
            vs, m.name, conns, r.mean_rtt_us(), r.p99_rtt_us(), r.kreq_per_s,
            bd.prep_ns / 1e3, bd.checksum_ns / 1e3, bd.slice_ns / 1e3,
            bd.copy_ns / 1e3, bd.alloc_insert_ns / 1e3, bd.nic_insert_ns / 1e3,
            bd.persist_ns / 1e3, bd.data_mgmt_ns() / 1e3);
      }
    }
    std::printf("\n");
  }

  if (want_metrics) {
    std::printf("--- Metric registries (last cell) ---\n%s",
                last_report.c_str());
  }

  if (!json_path.empty()) {
    benchio::JsonWriter w;
    w.begin_object();
    benchio::write_metadata(w, "slicer");
    if (want_cost_model) {
      w.begin_object("cost_model");
      benchio::write_cost_model(w, sim::CostModel{});
      w.end_object();
    }
    w.begin_array("results");
    for (const Cell& c : cells) {
      const auto& bd = c.r.avg_breakdown;
      w.begin_object();
      w.field("value_size", static_cast<long long>(c.value_size));
      w.field("mode", c.mode);
      w.field("connections", static_cast<long long>(c.conns));
      w.field("mean_rtt_us", c.r.mean_rtt_us());
      w.field("p99_rtt_us", c.r.p99_rtt_us());
      w.field("kreq_per_s", c.r.kreq_per_s);
      w.field("ops", static_cast<long long>(c.r.ops));
      w.field("prep_us", bd.prep_ns / 1e3);
      w.field("checksum_us", bd.checksum_ns / 1e3);
      w.field("slice_us", bd.slice_ns / 1e3);
      w.field("copy_us", bd.copy_ns / 1e3);
      w.field("alloc_insert_us", bd.alloc_insert_ns / 1e3);
      w.field("nic_insert_us", bd.nic_insert_ns / 1e3);
      w.field("persist_us", bd.persist_ns / 1e3);
      w.field("data_mgmt_us", bd.data_mgmt_ns() / 1e3);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    if (!w.write(json_path)) {
      std::fprintf(stderr, "bench_slicer: cannot write %s\n",
                   json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s (%zu records)\n", json_path.c_str(), cells.size());
  }
  return 0;
}
