// Shared bench plumbing: `--json <path>` output for machine-readable
// results alongside the human tables.
//
// The writer emits fixed-precision numbers (%.6f) so that two runs with
// the same seed and configuration produce byte-identical files — the
// determinism contract the scaling experiments assert. (The metadata
// block carries the varying context — git sha, build flags — so files
// stay comparable across builds without breaking that contract within
// one build.)
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "pm/pm_device.h"
#include "sim/cost_model.h"

namespace papm::benchio {

// Bump when the emitted record shape changes incompatibly.
// v3: per-record flush-cost fields (clwb_per_op / sfence_per_op /
//     bytes_flushed_per_op) — the group/epoch-commit persistence bill.
// v4: open-loop / tail-latency fields (p50_us / p99_us / p999_us,
//     deadline_miss_rate, offered_krps) and shard-balance fields
//     (imbalance, bucket_moves, conns_migrated, indir_remaps). The v3
//     flush fields remain unchanged alongside them.
// v5: optional `cost_model` nested object (write_cost_model, behind the
//     --cost-model flag) recording every calibrated constant the run
//     used, making BENCH_*.json self-describing without cost_model.h at
//     the matching sha. Prior fields unchanged.
// v6: replication / availability fields (bench_repl): `quorum`,
//     `repl_tax_ns` (mean added ack latency per quorum-gated op),
//     `degraded_acks`, and the failover records' `detect_us` /
//     `failover_us` / `acked_puts` / `acked_lost`. Prior fields
//     unchanged.
// v7: telemetry-plane fields — bench_openloop's `admin` /
//     `admin_requests` / `admin_scrapes` / `flightrec_records` /
//     `flightrec_wraps` / `trace_dropped` and the --admin-overhead
//     record's `p99_base_us` / `p99_admin_us` / `overhead_pct`;
//     bench_recovery's flightrec records (`cut_event`, `fr_valid`,
//     `fr_invalid`, `fr_acked`, `fr_lost`, `fr_phantoms`). Prior fields
//     unchanged.
inline constexpr long long kSchemaVersion = 7;

// Returns the value following `flag`, or empty if absent.
inline std::string arg_value(int argc, char** argv, std::string_view flag) {
  for (int i = 1; i + 1 < argc; i++) {
    if (std::string_view(argv[i]) == flag) return argv[i + 1];
  }
  return {};
}

// Returns the value following "--json", or empty if absent.
inline std::string json_path_from_args(int argc, char** argv) {
  return arg_value(argc, argv, "--json");
}

inline bool has_flag(int argc, char** argv, std::string_view flag) {
  for (int i = 1; i < argc; i++) {
    if (std::string_view(argv[i]) == flag) return true;
  }
  return false;
}

// Minimal append-only JSON builder: enough for flat benchmark records,
// nothing clever. All floating-point fields go through %.6f.
class JsonWriter {
 public:
  void begin_object() { open("{"); }
  // Keyed nested object: `"key": {...}` (the cost_model block).
  void begin_object(std::string_view key) {
    pad();
    out_ += '"';
    out_ += key;
    out_ += "\": {";
    fresh_ = true;
  }
  void end_object() { close("}"); }
  void begin_array(std::string_view key) {
    pad();
    out_ += '"';
    out_ += key;
    out_ += "\": [";
    fresh_ = true;
  }
  void end_array() { close("]"); }

  void field(std::string_view key, std::string_view v) {
    pad();
    kv(key);
    out_ += '"';
    out_ += v;
    out_ += '"';
  }
  void field(std::string_view key, double v) {
    pad();
    kv(key);
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6f", v);
    out_ += buf;
  }
  void field(std::string_view key, long long v) {
    pad();
    kv(key);
    out_ += std::to_string(v);
  }

  [[nodiscard]] const std::string& str() const noexcept { return out_; }

  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fwrite(out_.data(), 1, out_.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    return true;
  }

 private:
  void kv(std::string_view key) {
    out_ += '"';
    out_ += key;
    out_ += "\": ";
  }
  void pad() {
    if (!fresh_) out_ += ", ";
    fresh_ = false;
  }
  void open(std::string_view tok) {
    pad();
    out_ += tok;
    fresh_ = true;
  }
  void close(std::string_view tok) {
    out_ += tok;
    fresh_ = false;
  }

  std::string out_;
  bool fresh_ = true;
};

// Emits the shared provenance block every bench record starts with:
// schema version, the commit the binary was built from, the build type
// and whether observability hooks were compiled in. Call right after
// begin_object().
inline void write_metadata(JsonWriter& w, std::string_view bench) {
  w.field("schema", kSchemaVersion);
  w.field("bench", bench);
#ifdef PAPM_GIT_SHA
  w.field("git_sha", PAPM_GIT_SHA);
#else
  w.field("git_sha", "unknown");
#endif
#ifdef NDEBUG
  w.field("build", "release");
#else
  w.field("build", "debug");
#endif
  w.field("obs", obs::kEnabled ? "on" : "off");
}

// Emits the per-op flush-cost fields of schema v3: the persistence bill
// a run actually paid, normalized over the ops the measurement window
// completed. Group commit shows up here as clwb_per_op dropping toward
// the pure content-line count and sfence_per_op toward ~1/epoch.
inline void write_flush_per_op(JsonWriter& w, const pm::PmDevice::FlushEpoch& f,
                               u64 ops) {
  const double n = ops > 0 ? static_cast<double>(ops) : 1.0;
  w.field("clwb_per_op", static_cast<double>(f.clwb) / n);
  w.field("sfence_per_op", static_cast<double>(f.sfence) / n);
  w.field("bytes_flushed_per_op", static_cast<double>(f.bytes_flushed) / n);
}

// Emits every calibrated constant of the cost model the run used (the
// schema-v5 `cost_model` nested object, behind each bench's --cost-model
// flag). Caller brackets with begin_object("cost_model") / end_object().
// Keep in sync with sim::CostModel — this is the self-description that
// makes a BENCH_*.json reproducible without cost_model.h at its sha.
inline void write_cost_model(JsonWriter& w, const sim::CostModel& c) {
  w.field("dram_read_ns", static_cast<long long>(c.dram_read_ns));
  w.field("pm_read_ns", static_cast<long long>(c.pm_read_ns));
  w.field("dram_write_ns", static_cast<long long>(c.dram_write_ns));
  w.field("pm_write_ns", static_cast<long long>(c.pm_write_ns));
  w.field("clwb_ns", static_cast<long long>(c.clwb_ns));
  w.field("sfence_ns", static_cast<long long>(c.sfence_ns));
  w.field("crc32c_ns_per_byte", c.crc32c_ns_per_byte);
  w.field("crc32c_fixed_ns", static_cast<long long>(c.crc32c_fixed_ns));
  w.field("inet_csum_ns_per_byte", c.inet_csum_ns_per_byte);
  w.field("inet_csum_fixed_ns", static_cast<long long>(c.inet_csum_fixed_ns));
  w.field("copy_ns_per_byte", c.copy_ns_per_byte);
  w.field("copy_fixed_ns", static_cast<long long>(c.copy_fixed_ns));
  w.field("dram_stream_ns_per_byte", c.dram_stream_ns_per_byte);
  w.field("request_prep_ns", static_cast<long long>(c.request_prep_ns));
  w.field("pktstore_prep_ns", static_cast<long long>(c.pktstore_prep_ns));
  w.field("pm_alloc_ns", static_cast<long long>(c.pm_alloc_ns));
  w.field("pm_free_ns", static_cast<long long>(c.pm_free_ns));
  w.field("heap_alloc_ns", static_cast<long long>(c.heap_alloc_ns));
  w.field("pool_alloc_ns", static_cast<long long>(c.pool_alloc_ns));
  w.field("batched_prep_scale", c.batched_prep_scale);
  w.field("batched_warm_scale", c.batched_warm_scale);
  w.field("client_stack_tx_ns", static_cast<long long>(c.client_stack_tx_ns));
  w.field("client_stack_rx_ns", static_cast<long long>(c.client_stack_rx_ns));
  w.field("client_http_build_ns",
          static_cast<long long>(c.client_http_build_ns));
  w.field("client_http_parse_ns",
          static_cast<long long>(c.client_http_parse_ns));
  w.field("server_stack_rx_ns", static_cast<long long>(c.server_stack_rx_ns));
  w.field("server_stack_tx_ns", static_cast<long long>(c.server_stack_tx_ns));
  w.field("server_http_parse_ns",
          static_cast<long long>(c.server_http_parse_ns));
  w.field("server_http_build_ns",
          static_cast<long long>(c.server_http_build_ns));
  w.field("tcp_ack_process_ns", static_cast<long long>(c.tcp_ack_process_ns));
  w.field("udp_stack_rx_ns", static_cast<long long>(c.udp_stack_rx_ns));
  w.field("udp_stack_tx_ns", static_cast<long long>(c.udp_stack_tx_ns));
  w.field("bypass_stack_rx_ns", static_cast<long long>(c.bypass_stack_rx_ns));
  w.field("bypass_stack_tx_ns", static_cast<long long>(c.bypass_stack_tx_ns));
  w.field("homa_proc_ns", static_cast<long long>(c.homa_proc_ns));
  w.field("nic_tx_ns", static_cast<long long>(c.nic_tx_ns));
  w.field("nic_rx_ns", static_cast<long long>(c.nic_rx_ns));
  w.field("nic_csum_offload_ns",
          static_cast<long long>(c.nic_csum_offload_ns));
  w.field("nic_slice_host_ns", static_cast<long long>(c.nic_slice_host_ns));
  w.field("nic_insert_doorbell_ns",
          static_cast<long long>(c.nic_insert_doorbell_ns));
  w.field("nic_insert_completion_ns",
          static_cast<long long>(c.nic_insert_completion_ns));
  w.field("nic_insert_cmd_ns", static_cast<long long>(c.nic_insert_cmd_ns));
  w.field("nic_insert_meta_ns", static_cast<long long>(c.nic_insert_meta_ns));
  w.field("wire_ns_per_byte", c.wire_ns_per_byte);
  w.field("fabric_propagation_ns",
          static_cast<long long>(c.fabric_propagation_ns));
  w.field("net_scale", c.net_scale);
}

}  // namespace papm::benchio
