// Shared bench plumbing: `--json <path>` output for machine-readable
// results alongside the human tables.
//
// The writer emits fixed-precision numbers (%.6f) so that two runs with
// the same seed and configuration produce byte-identical files — the
// determinism contract the scaling experiments assert. (The metadata
// block carries the varying context — git sha, build flags — so files
// stay comparable across builds without breaking that contract within
// one build.)
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "pm/pm_device.h"

namespace papm::benchio {

// Bump when the emitted record shape changes incompatibly.
// v3: per-record flush-cost fields (clwb_per_op / sfence_per_op /
//     bytes_flushed_per_op) — the group/epoch-commit persistence bill.
// v4: open-loop / tail-latency fields (p50_us / p99_us / p999_us,
//     deadline_miss_rate, offered_krps) and shard-balance fields
//     (imbalance, bucket_moves, conns_migrated, indir_remaps). The v3
//     flush fields remain unchanged alongside them.
inline constexpr long long kSchemaVersion = 4;

// Returns the value following `flag`, or empty if absent.
inline std::string arg_value(int argc, char** argv, std::string_view flag) {
  for (int i = 1; i + 1 < argc; i++) {
    if (std::string_view(argv[i]) == flag) return argv[i + 1];
  }
  return {};
}

// Returns the value following "--json", or empty if absent.
inline std::string json_path_from_args(int argc, char** argv) {
  return arg_value(argc, argv, "--json");
}

inline bool has_flag(int argc, char** argv, std::string_view flag) {
  for (int i = 1; i < argc; i++) {
    if (std::string_view(argv[i]) == flag) return true;
  }
  return false;
}

// Minimal append-only JSON builder: enough for flat benchmark records,
// nothing clever. All floating-point fields go through %.6f.
class JsonWriter {
 public:
  void begin_object() { open("{"); }
  void end_object() { close("}"); }
  void begin_array(std::string_view key) {
    pad();
    out_ += '"';
    out_ += key;
    out_ += "\": [";
    fresh_ = true;
  }
  void end_array() { close("]"); }

  void field(std::string_view key, std::string_view v) {
    pad();
    kv(key);
    out_ += '"';
    out_ += v;
    out_ += '"';
  }
  void field(std::string_view key, double v) {
    pad();
    kv(key);
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6f", v);
    out_ += buf;
  }
  void field(std::string_view key, long long v) {
    pad();
    kv(key);
    out_ += std::to_string(v);
  }

  [[nodiscard]] const std::string& str() const noexcept { return out_; }

  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fwrite(out_.data(), 1, out_.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    return true;
  }

 private:
  void kv(std::string_view key) {
    out_ += '"';
    out_ += key;
    out_ += "\": ";
  }
  void pad() {
    if (!fresh_) out_ += ", ";
    fresh_ = false;
  }
  void open(std::string_view tok) {
    pad();
    out_ += tok;
    fresh_ = true;
  }
  void close(std::string_view tok) {
    out_ += tok;
    fresh_ = false;
  }

  std::string out_;
  bool fresh_ = true;
};

// Emits the shared provenance block every bench record starts with:
// schema version, the commit the binary was built from, the build type
// and whether observability hooks were compiled in. Call right after
// begin_object().
inline void write_metadata(JsonWriter& w, std::string_view bench) {
  w.field("schema", kSchemaVersion);
  w.field("bench", bench);
#ifdef PAPM_GIT_SHA
  w.field("git_sha", PAPM_GIT_SHA);
#else
  w.field("git_sha", "unknown");
#endif
#ifdef NDEBUG
  w.field("build", "release");
#else
  w.field("build", "debug");
#endif
  w.field("obs", obs::kEnabled ? "on" : "off");
}

// Emits the per-op flush-cost fields of schema v3: the persistence bill
// a run actually paid, normalized over the ops the measurement window
// completed. Group commit shows up here as clwb_per_op dropping toward
// the pure content-line count and sfence_per_op toward ~1/epoch.
inline void write_flush_per_op(JsonWriter& w, const pm::PmDevice::FlushEpoch& f,
                               u64 ops) {
  const double n = ops > 0 ? static_cast<double>(ops) : 1.0;
  w.field("clwb_per_op", static_cast<double>(f.clwb) / n);
  w.field("sfence_per_op", static_cast<double>(f.sfence) / n);
  w.field("bytes_flushed_per_op", static_cast<double>(f.bytes_flushed) / n);
}

}  // namespace papm::benchio
