// Micro M1: transport robustness — goodput and retransmission behaviour
// of the from-scratch TCP under loss and reordering (the conditions the
// OOO red-black tree of §4.1 exists for).
#include <cstdio>

#include "app/host.h"

using namespace papm;
using namespace papm::app;

namespace {

struct XferResult {
  double goodput_gbps;
  u64 retransmits;
  u64 reordered;
  bool intact;
};

XferResult transfer(double loss, double reorder) {
  sim::Env env;
  nic::Fabric fabric(env, {.loss_p = loss, .reorder_p = reorder});

  HostConfig ccfg;
  ccfg.ip = 0x0a000001;
  ccfg.cores = 0;
  Host client(env, fabric, ccfg);
  HostConfig scfg;
  scfg.ip = 0x0a000002;
  scfg.cores = 0;  // not CPU-limited: measure the transport itself
  scfg.busy_poll = true;
  Host server(env, fabric, scfg);

  const std::size_t kBytes = 2u << 20;
  Rng rng(7);
  std::vector<u8> data(kBytes);
  for (auto& b : data) b = static_cast<u8>(rng.next());

  std::vector<u8> got;
  got.reserve(kBytes);
  (void)server.stack().listen(9000, [&](net::TcpConn& c) {
    c.on_readable = [&](net::TcpConn& cc) {
      std::vector<u8> buf(16384);
      std::size_t n;
      while ((n = cc.read(buf)) > 0) {
        got.insert(got.end(), buf.begin(), buf.begin() + static_cast<long>(n));
      }
    };
  });
  net::TcpConn* conn = client.stack().connect(0x0a000002, 9000);
  SimTime start = 0;
  conn->on_established = [&](net::TcpConn& cc) {
    start = env.now();
    (void)cc.send(data);
  };
  env.engine.run_until_idle();

  XferResult r{};
  const SimTime elapsed = env.now() - start;
  r.goodput_gbps = static_cast<double>(kBytes) * 8.0 /
                   std::max<SimTime>(elapsed, 1);
  r.retransmits = conn->retransmits();
  r.reordered = fabric.reordered();
  r.intact = got == data;
  return r;
}

}  // namespace

int main() {
  std::printf("=== M1: TCP under loss/reorder (2MB transfer, 25G link) ===\n");
  std::printf("%7s %9s | %12s %8s %9s %7s\n", "loss", "reorder",
              "goodput[Gb/s]", "retx", "reordered", "intact");
  for (const double loss : {0.0, 0.005, 0.02, 0.05}) {
    for (const double reorder : {0.0, 0.1}) {
      const auto r = transfer(loss, reorder);
      std::printf("%6.1f%% %8.1f%% | %12.2f %8llu %9llu %7s\n", loss * 100,
                  reorder * 100, r.goodput_gbps,
                  static_cast<unsigned long long>(r.retransmits),
                  static_cast<unsigned long long>(r.reordered),
                  r.intact ? "yes" : "NO");
    }
  }
  std::printf(
      "\n(goodput degrades gracefully with loss; reordering alone is\n"
      " absorbed by the out-of-order rbtree without retransmissions'\n"
      " goodput collapse)\n");
  return 0;
}
