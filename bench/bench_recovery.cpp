// Ablation A3 (§5.1 crash consistency): post-crash recovery time and
// correctness, for the packet-metadata store and the LSM baseline, as a
// function of resident keys.
//
// Recovery work is real: pool reattach, skip-list tower rebuild from
// level 0, chain validation and data-reference restoration. Reported
// times are simulated (cost-model) nanoseconds of that work.
#include <cstdio>

#include "core/pktstore.h"
#include "storage/lsm_store.h"

using namespace papm;

namespace {

constexpr u64 kDevSize = 512u << 20;

double recover_pktstore(std::size_t keys, sim::Env& env) {
  pm::PmDevice dev(env, kDevSize);
  auto pool = pm::PmPool::create(dev, "pkts", dev.data_base(), kDevSize - 4096);
  pool.set_charges(env.cost.pool_alloc_ns, env.cost.pool_alloc_ns / 2);
  net::PmArena arena(dev, pool);
  net::PktBufPool pktpool(env, arena);
  auto store = core::PktStore::create(pktpool, "store");

  std::vector<u8> value(1024, 0xab);
  for (std::size_t i = 0; i < keys; i++) {
    if (!store.put_bytes("key" + std::to_string(i), value).ok()) return -1;
  }
  dev.crash();

  const SimTime t0 = env.now();
  auto pool2 = pm::PmPool::recover(dev, "pkts");
  net::PmArena arena2(dev, pool2.value());
  net::PktBufPool pktpool2(env, arena2);
  auto rec = core::PktStore::recover(pktpool2, "store");
  const SimTime elapsed = env.now() - t0;
  if (!rec.ok() || rec->size() != keys) return -1;
  // Spot-check integrity.
  if (keys > 0 && !rec->verify("key0").ok()) return -1;
  return static_cast<double>(elapsed);
}

double recover_lsm(std::size_t keys, sim::Env& env) {
  pm::PmDevice dev(env, kDevSize);
  auto pool = pm::PmPool::create(dev, "db", dev.data_base(), kDevSize - 4096);
  auto store = storage::LsmStore::create(dev, pool, "store");

  std::vector<u8> value(1024, 0xcd);
  for (std::size_t i = 0; i < keys; i++) {
    if (!store.put("key" + std::to_string(i), value).ok()) return -1;
  }
  dev.crash();

  const SimTime t0 = env.now();
  auto pool2 = pm::PmPool::recover(dev, "db");
  auto rec = storage::LsmStore::recover(dev, pool2.value(), "store");
  const SimTime elapsed = env.now() - t0;
  if (!rec.ok() || rec->entries() != keys) return -1;
  if (keys > 0 && !rec->get("key0").ok()) return -1;
  return static_cast<double>(elapsed);
}

}  // namespace

int main() {
  std::printf("=== A3: crash-recovery time vs resident keys (1KB values) ===\n");
  std::printf("%10s %16s %16s\n", "keys", "pktstore[us]", "lsm[us]");
  for (const std::size_t keys : {1000u, 4000u, 16000u, 64000u}) {
    sim::Env env_a, env_b;
    const double a = recover_pktstore(keys, env_a);
    const double b = recover_lsm(keys, env_b);
    std::printf("%10zu %16.1f %16.1f\n", keys, a / 1000.0, b / 1000.0);
  }
  std::printf(
      "\n(recovery rebuilds skip-list towers from level 0 and re-registers\n"
      " packet-data references; it scales linearly with resident keys)\n");
  return 0;
}
