// Ablation A3 (§5.1 crash consistency): post-crash recovery time and
// correctness, for the packet-metadata store and the LSM baseline, as a
// function of resident keys.
//
// Recovery work is real: pool reattach, skip-list tower rebuild from
// level 0, chain validation and data-reference restoration. Reported
// times are simulated (cost-model) nanoseconds of that work.
//
// --crashpoints adds experiment R1: a FaultPlan (pm/fault_plan.h) cuts
// power at sampled flush/fence boundaries *inside* the write workload
// (torn lines + dirty-line eviction enabled), and the table reports, per
// crash point, how many keys survived, the simulated recovery time and
// the bytes the recovery path actually touched (total_accessed_bytes
// delta) — i.e. what recovery costs when the crash was mid-operation
// rather than at a clean boundary.
//
// --shadow-index {on,off} A/Bs the selective-persistence split
// (PSkipListOptions::shadow_towers): `on` keeps the upper index towers
// DRAM-only during operation and rebuilds them at recovery (the group-
// commit default), `off` is the persist-everything baseline. The A3
// table reports the pktstore recovery time split into the level-0
// backbone scan and the tower relink, so the flag shows exactly what the
// rebuild-at-recovery bargain costs.
// --flightrec runs the telemetry-plane counterpart of R1: a wrapping
// flight-recorder append workload under group-commit epochs, power cut
// at sampled flush/fence boundaries, each point recovering the ring and
// reconciling it against the ack stream (on_committed is the ack
// boundary). Reports valid/invalid slots, acked records lost inside the
// retention window, and phantoms (seqs never appended or torn bodies
// that survived CRC — must both be zero); exits nonzero on violation.
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "bench_json.h"
#include "core/pktstore.h"
#include "obs/flightrec.h"
#include "pm/fault_plan.h"
#include "pm/flush_batch.h"
#include "storage/lsm_store.h"

using namespace papm;

namespace {

constexpr u64 kDevSize = 512u << 20;

struct PktRecovery {
  double total_ns = -1;
  double scan_ns = 0;   // level-0 backbone walk (incl. dead-node repair)
  double tower_ns = 0;  // upper-tower relink
};

PktRecovery recover_pktstore(std::size_t keys, sim::Env& env,
                             bool shadow_index) {
  pm::PmDevice dev(env, kDevSize);
  auto pool = pm::PmPool::create(dev, "pkts", dev.data_base(), kDevSize - 4096);
  pool.set_charges(env.cost.pool_alloc_ns, env.cost.pool_alloc_ns / 2);
  net::PmArena arena(dev, pool);
  net::PktBufPool pktpool(env, arena);
  core::PktStoreOptions opts;
  opts.index.shadow_towers = shadow_index;
  auto store = core::PktStore::create(pktpool, "store", opts);

  std::vector<u8> value(1024, 0xab);
  for (std::size_t i = 0; i < keys; i++) {
    if (!store.put_bytes("key" + std::to_string(i), value).ok()) return {};
  }
  dev.crash();

  const SimTime t0 = env.now();
  auto pool2 = pm::PmPool::recover(dev, "pkts");
  net::PmArena arena2(dev, pool2.value());
  net::PktBufPool pktpool2(env, arena2);
  auto rec = core::PktStore::recover(pktpool2, "store", opts);
  const SimTime elapsed = env.now() - t0;
  if (!rec.ok() || rec->size() != keys) return {};
  // Spot-check integrity.
  if (keys > 0 && !rec->verify("key0").ok()) return {};
  PktRecovery r;
  r.total_ns = static_cast<double>(elapsed);
  r.scan_ns = static_cast<double>(rec->index_recover_stats().scan_ns);
  r.tower_ns = static_cast<double>(rec->index_recover_stats().tower_ns);
  return r;
}

double recover_lsm(std::size_t keys, sim::Env& env) {
  pm::PmDevice dev(env, kDevSize);
  auto pool = pm::PmPool::create(dev, "db", dev.data_base(), kDevSize - 4096);
  auto store = storage::LsmStore::create(dev, pool, "store");

  std::vector<u8> value(1024, 0xcd);
  for (std::size_t i = 0; i < keys; i++) {
    if (!store.put("key" + std::to_string(i), value).ok()) return -1;
  }
  dev.crash();

  const SimTime t0 = env.now();
  auto pool2 = pm::PmPool::recover(dev, "db");
  auto rec = storage::LsmStore::recover(dev, pool2.value(), "store");
  const SimTime elapsed = env.now() - t0;
  if (!rec.ok() || rec->entries() != keys) return -1;
  if (keys > 0 && !rec->get("key0").ok()) return -1;
  return static_cast<double>(elapsed);
}

// --- R1: recovery vs crash point -----------------------------------------

constexpr std::size_t kCpKeys = 256;  // 1 KB puts in the injected workload
constexpr u64 kCpDevSize = 32u << 20;

pm::FaultPlan crashpoint_plan(u64 cut) {
  pm::FaultPlan plan;  // the full failure model: reorder + tear + evict
  plan.crash_at_event = cut;
  plan.unfenced_drain_p = 0.4;
  plan.tear_p = 0.75;
  plan.evict_dirty_p = 0.35;
  plan.seed = 7;
  return plan;
}

struct CrashPointRow {
  u64 events = 0;          // boundaries reached before the cut
  std::size_t keys = 0;    // keys visible after recovery
  double recover_us = -1;  // simulated recovery time
  double scanned_kb = 0;   // bytes recovery touched on the device
};

// cut == 0: run the full workload (counting boundaries), cut at the end.
CrashPointRow crashpoint_pktstore(u64 cut) {
  sim::Env env;
  pm::PmDevice dev(env, kCpDevSize);
  auto pool = pm::PmPool::create(dev, "pkts", dev.data_base(), kCpDevSize - 4096);
  pool.set_charges(env.cost.pool_alloc_ns, env.cost.pool_alloc_ns / 2);
  net::PmArena arena(dev, pool);
  net::PktBufPool pktpool(env, arena);
  auto store = core::PktStore::create(pktpool, "store");
  dev.set_fault_plan(crashpoint_plan(cut));
  std::vector<u8> value(1024, 0xab);
  try {
    for (std::size_t i = 0; i < kCpKeys; i++) {
      if (!store.put_bytes("key" + std::to_string(i), value).ok()) return {};
    }
    dev.crash();
  } catch (const pm::PowerFailure&) {
  }
  CrashPointRow row;
  row.events = dev.fault_events();
  dev.clear_fault_plan();
  const u64 bytes0 = dev.total_accessed_bytes();
  const SimTime t0 = env.now();
  auto pool2 = pm::PmPool::recover(dev, "pkts");
  if (!pool2.ok()) return row;
  net::PmArena arena2(dev, pool2.value());
  net::PktBufPool pktpool2(env, arena2);
  auto rec = core::PktStore::recover(pktpool2, "store");
  if (!rec.ok()) return row;
  row.recover_us = static_cast<double>(env.now() - t0) / 1000.0;
  row.scanned_kb = static_cast<double>(dev.total_accessed_bytes() - bytes0) / 1024.0;
  row.keys = rec->size();
  return row;
}

CrashPointRow crashpoint_lsm(u64 cut) {
  sim::Env env;
  pm::PmDevice dev(env, kCpDevSize);
  auto pool = pm::PmPool::create(dev, "db", dev.data_base(), kCpDevSize - 4096);
  auto store = storage::LsmStore::create(dev, pool, "store");
  dev.set_fault_plan(crashpoint_plan(cut));
  std::vector<u8> value(1024, 0xcd);
  try {
    for (std::size_t i = 0; i < kCpKeys; i++) {
      if (!store.put("key" + std::to_string(i), value).ok()) return {};
    }
    dev.crash();
  } catch (const pm::PowerFailure&) {
  }
  CrashPointRow row;
  row.events = dev.fault_events();
  dev.clear_fault_plan();
  const u64 bytes0 = dev.total_accessed_bytes();
  const SimTime t0 = env.now();
  auto pool2 = pm::PmPool::recover(dev, "db");
  if (!pool2.ok()) return row;
  auto rec = storage::LsmStore::recover(dev, pool2.value(), "store");
  if (!rec.ok()) return row;
  row.recover_us = static_cast<double>(env.now() - t0) / 1000.0;
  row.scanned_kb = static_cast<double>(dev.total_accessed_bytes() - bytes0) / 1024.0;
  row.keys = rec->entries();
  return row;
}

void run_crashpoints() {
  std::printf(
      "=== R1: recovery time & bytes scanned vs crash point "
      "(%zu x 1KB puts, tear+evict fault plan) ===\n",
      kCpKeys);
  std::printf("%9s %10s %6s %10s %12s %12s\n", "backend", "cutpoint", "pct",
              "keys", "recover[us]", "scanned[KB]");
  for (int backend = 0; backend < 2; backend++) {
    const char* name = backend == 0 ? "pktstore" : "lsm";
    auto run = backend == 0 ? crashpoint_pktstore : crashpoint_lsm;
    const u64 total = run(0).events;  // boundary count of the full workload
    for (int i = 1; i <= 8; i++) {
      const u64 cut = total * static_cast<u64>(i) / 8;
      const CrashPointRow row = run(cut);
      std::printf("%9s %10llu %5.0f%% %10zu %12.1f %12.1f\n", name,
                  static_cast<unsigned long long>(cut),
                  100.0 * static_cast<double>(cut) / static_cast<double>(total),
                  row.keys, row.recover_us, row.scanned_kb);
    }
  }
  std::printf(
      "\n(cutpoint = flush/fence boundary index at which power was cut;\n"
      " keys counts survivors — the in-flight put may land or vanish;\n"
      " scanned = device bytes the recovery path touched)\n");
}

// --- Flight-recorder crash sweep (--flightrec) ----------------------------

constexpr u32 kFrCap = 64;        // ring slots; the workload wraps it 4x
constexpr std::size_t kFrOps = 256;
constexpr u64 kFrDevSize = 8u << 20;

obs::FlightRecord fr_record_of(u64 seq) {
  obs::FlightRecord r;
  r.req = 0x100000 + seq;
  r.t0_ns = seq * 131;
  for (std::size_t s = 0; s < obs::kStages; s++) {
    r.stage_ns[s] = static_cast<u32>(seq * 1000 + s);
  }
  r.result = 201;
  r.op = 'P';
  return r;
}

struct FrRow {
  u64 cut = 0;         // boundary index at which power was cut
  u64 events = 0;      // boundaries the run reached
  u64 appended = 0;    // appends started before the cut
  u64 acked = 0;       // on_committed fired (group-commit fence #2)
  u64 valid = 0;       // CRC-valid slots the scan recovered
  u64 invalid = 0;     // torn / stale slots the scan rejected
  u64 lost_acked = 0;  // acked, inside the retention window, missing
  u64 phantoms = 0;    // recovered seq never appended, or body mismatch
  bool recovered = false;
};

// cut == 0: run the full workload (counting boundaries), cut at the end.
FrRow flightrec_point(u64 cut) {
  sim::Env env;
  pm::PmDevice dev(env, kFrDevSize);
  auto pool = pm::PmPool::create(dev, "fr", dev.data_base(), kFrDevSize / 2);
  auto made = obs::FlightRecorder::create(dev, pool, 0, kFrCap);
  FrRow row;
  row.cut = cut;
  if (!made.ok()) return row;
  obs::FlightRecorder fr = std::move(made.value());
  pm::GroupCommitPolicy pol;
  pol.max_epoch_ops = 8;  // < kFrCap: the newest ack is never reclaimed
  pol.max_deferral_ns = 1'000'000'000;
  pm::FlushBatcher batcher(dev, pol);
  batcher.register_pool(pool);
  fr.set_batcher(&batcher);
  dev.set_fault_plan(crashpoint_plan(cut));
  std::set<u64> acked;
  u64 appended = 0;
  try {
    for (std::size_t i = 0; i < kFrOps; i++) {
      batcher.begin_op(true, 0);
      appended++;
      const u64 seq = fr.append(fr_record_of(appended));
      batcher.on_committed([&acked, seq] { acked.insert(seq); });
      batcher.end_op();
    }
    batcher.deactivate();
    dev.crash();
  } catch (const pm::PowerFailure&) {
  }
  row.events = dev.fault_events();
  dev.clear_fault_plan();
  row.appended = appended;
  row.acked = acked.size();
  auto rec = obs::FlightRecorder::recover(dev, 0);
  if (!rec.ok()) return row;
  row.recovered = true;
  obs::FlightRecorder::ScanStats st;
  const auto flights = rec.value().scan(&st);
  row.valid = st.valid;
  row.invalid = st.invalid;
  std::set<u64> seen;
  for (const auto& f : flights) {
    bool ok = f.seq >= 1 && f.seq <= appended && seen.insert(f.seq).second;
    if (ok) {
      const obs::FlightRecord want = fr_record_of(f.seq);
      ok = f.rec.req == want.req && f.rec.t0_ns == want.t0_ns &&
           std::memcmp(f.rec.stage_ns, want.stage_ns,
                       sizeof want.stage_ns) == 0 &&
           f.rec.result == want.result && f.rec.op == want.op;
    }
    if (!ok) row.phantoms++;
  }
  for (const u64 k : acked) {
    // A later append may legitimately reclaim an acked slot; only seqs
    // still inside the retention window are guaranteed recoverable.
    if (k + kFrCap <= appended) continue;
    if (!seen.contains(k)) row.lost_acked++;
  }
  return row;
}

int run_flightrec(const std::string& json_path) {
  std::printf(
      "=== Flight recorder: recovered prefix vs crash point "
      "(%zu appends, %u-slot ring, tear+evict fault plan) ===\n",
      kFrOps, kFrCap);
  const u64 total = flightrec_point(0).events;
  if (total == 0) {
    std::fprintf(stderr, "bench_recovery: flightrec produced no boundaries\n");
    return 1;
  }
  std::printf("%10s %5s %9s %7s %7s %9s %6s %9s\n", "cutpoint", "pct",
              "appended", "acked", "valid", "invalid", "lost", "phantoms");
  // Dense sweep: every boundary when cheap, else <= 64 sampled points.
  const u64 stride = total > 64 ? (total + 63) / 64 : 1;
  std::vector<FrRow> rows;
  u64 lost = 0, phantoms = 0, unrecovered = 0;
  for (u64 cut = 1; cut <= total; cut += stride) {
    rows.push_back(flightrec_point(cut));
    const FrRow& r = rows.back();
    lost += r.lost_acked;
    phantoms += r.phantoms;
    if (!r.recovered) unrecovered++;
  }
  const std::size_t print_stride = rows.size() > 8 ? rows.size() / 8 : 1;
  for (std::size_t i = 0; i < rows.size(); i++) {
    if (i % print_stride != 0 && i != rows.size() - 1) continue;
    const FrRow& r = rows[i];
    std::printf("%10llu %4.0f%% %9llu %7llu %7llu %9llu %6llu %9llu%s\n",
                static_cast<unsigned long long>(r.cut),
                100.0 * static_cast<double>(r.cut) / static_cast<double>(total),
                static_cast<unsigned long long>(r.appended),
                static_cast<unsigned long long>(r.acked),
                static_cast<unsigned long long>(r.valid),
                static_cast<unsigned long long>(r.invalid),
                static_cast<unsigned long long>(r.lost_acked),
                static_cast<unsigned long long>(r.phantoms),
                r.recovered ? "" : "  [RECOVERY FAILED]");
  }
  std::printf(
      "\n(%zu crash points swept; lost counts acked records missing from\n"
      " the recovered ring while still inside the %u-slot retention\n"
      " window; phantoms counts recovered records never appended or with\n"
      " torn bodies — both columns must be zero)\n",
      rows.size(), kFrCap);
  if (!json_path.empty()) {
    benchio::JsonWriter w;
    w.begin_object();
    benchio::write_metadata(w, "recovery_flightrec");
    w.field("ops", static_cast<long long>(kFrOps));
    w.field("ring_slots", static_cast<long long>(kFrCap));
    w.field("boundaries", static_cast<long long>(total));
    w.begin_array("results");
    for (const FrRow& r : rows) {
      w.begin_object();
      w.field("cut_event", static_cast<long long>(r.cut));
      w.field("appended", static_cast<long long>(r.appended));
      w.field("fr_acked", static_cast<long long>(r.acked));
      w.field("fr_valid", static_cast<long long>(r.valid));
      w.field("fr_invalid", static_cast<long long>(r.invalid));
      w.field("fr_lost", static_cast<long long>(r.lost_acked));
      w.field("fr_phantoms", static_cast<long long>(r.phantoms));
      w.field("recovered", static_cast<long long>(r.recovered ? 1 : 0));
      w.end_object();
    }
    w.end_array();
    w.end_object();
    if (!w.write(json_path)) {
      std::fprintf(stderr, "bench_recovery: cannot write %s\n",
                   json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s (%zu records)\n", json_path.c_str(), rows.size());
  }
  if (lost != 0 || phantoms != 0 || unrecovered != 0) {
    std::fprintf(stderr,
                 "bench_recovery: FAIL flightrec lost=%llu phantoms=%llu "
                 "unrecovered=%llu\n",
                 static_cast<unsigned long long>(lost),
                 static_cast<unsigned long long>(phantoms),
                 static_cast<unsigned long long>(unrecovered));
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (benchio::has_flag(argc, argv, "--flightrec")) {
    return run_flightrec(benchio::json_path_from_args(argc, argv));
  }
  if (benchio::has_flag(argc, argv, "--crashpoints")) {
    run_crashpoints();
    return 0;
  }
  const std::string shadow_arg = benchio::arg_value(argc, argv, "--shadow-index");
  if (!shadow_arg.empty() && shadow_arg != "on" && shadow_arg != "off") {
    std::fprintf(stderr, "bench_recovery: --shadow-index takes on|off\n");
    return 2;
  }
  const bool shadow = shadow_arg != "off";  // default: the group-commit split
  std::printf(
      "=== A3: crash-recovery time vs resident keys (1KB values, "
      "shadow-index %s) ===\n",
      shadow ? "on" : "off");
  std::printf("%10s %16s %12s %12s %16s\n", "keys", "pktstore[us]",
              "scan[us]", "towers[us]", "lsm[us]");
  for (const std::size_t keys : {1000u, 4000u, 16000u, 64000u}) {
    sim::Env env_a, env_b;
    const PktRecovery a = recover_pktstore(keys, env_a, shadow);
    const double b = recover_lsm(keys, env_b);
    std::printf("%10zu %16.1f %12.1f %12.1f %16.1f\n", keys, a.total_ns / 1000.0,
                a.scan_ns / 1000.0, a.tower_ns / 1000.0, b / 1000.0);
  }
  std::printf(
      "\n(recovery rebuilds skip-list towers from level 0 and re-registers\n"
      " packet-data references; it scales linearly with resident keys.\n"
      " scan/towers split the pktstore index-recovery time; run with\n"
      " --shadow-index off for the persist-everything baseline)\n");
  return 0;
}
