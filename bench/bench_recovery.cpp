// Ablation A3 (§5.1 crash consistency): post-crash recovery time and
// correctness, for the packet-metadata store and the LSM baseline, as a
// function of resident keys.
//
// Recovery work is real: pool reattach, skip-list tower rebuild from
// level 0, chain validation and data-reference restoration. Reported
// times are simulated (cost-model) nanoseconds of that work.
//
// --crashpoints adds experiment R1: a FaultPlan (pm/fault_plan.h) cuts
// power at sampled flush/fence boundaries *inside* the write workload
// (torn lines + dirty-line eviction enabled), and the table reports, per
// crash point, how many keys survived, the simulated recovery time and
// the bytes the recovery path actually touched (total_accessed_bytes
// delta) — i.e. what recovery costs when the crash was mid-operation
// rather than at a clean boundary.
//
// --shadow-index {on,off} A/Bs the selective-persistence split
// (PSkipListOptions::shadow_towers): `on` keeps the upper index towers
// DRAM-only during operation and rebuilds them at recovery (the group-
// commit default), `off` is the persist-everything baseline. The A3
// table reports the pktstore recovery time split into the level-0
// backbone scan and the tower relink, so the flag shows exactly what the
// rebuild-at-recovery bargain costs.
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_json.h"
#include "core/pktstore.h"
#include "pm/fault_plan.h"
#include "storage/lsm_store.h"

using namespace papm;

namespace {

constexpr u64 kDevSize = 512u << 20;

struct PktRecovery {
  double total_ns = -1;
  double scan_ns = 0;   // level-0 backbone walk (incl. dead-node repair)
  double tower_ns = 0;  // upper-tower relink
};

PktRecovery recover_pktstore(std::size_t keys, sim::Env& env,
                             bool shadow_index) {
  pm::PmDevice dev(env, kDevSize);
  auto pool = pm::PmPool::create(dev, "pkts", dev.data_base(), kDevSize - 4096);
  pool.set_charges(env.cost.pool_alloc_ns, env.cost.pool_alloc_ns / 2);
  net::PmArena arena(dev, pool);
  net::PktBufPool pktpool(env, arena);
  core::PktStoreOptions opts;
  opts.index.shadow_towers = shadow_index;
  auto store = core::PktStore::create(pktpool, "store", opts);

  std::vector<u8> value(1024, 0xab);
  for (std::size_t i = 0; i < keys; i++) {
    if (!store.put_bytes("key" + std::to_string(i), value).ok()) return {};
  }
  dev.crash();

  const SimTime t0 = env.now();
  auto pool2 = pm::PmPool::recover(dev, "pkts");
  net::PmArena arena2(dev, pool2.value());
  net::PktBufPool pktpool2(env, arena2);
  auto rec = core::PktStore::recover(pktpool2, "store", opts);
  const SimTime elapsed = env.now() - t0;
  if (!rec.ok() || rec->size() != keys) return {};
  // Spot-check integrity.
  if (keys > 0 && !rec->verify("key0").ok()) return {};
  PktRecovery r;
  r.total_ns = static_cast<double>(elapsed);
  r.scan_ns = static_cast<double>(rec->index_recover_stats().scan_ns);
  r.tower_ns = static_cast<double>(rec->index_recover_stats().tower_ns);
  return r;
}

double recover_lsm(std::size_t keys, sim::Env& env) {
  pm::PmDevice dev(env, kDevSize);
  auto pool = pm::PmPool::create(dev, "db", dev.data_base(), kDevSize - 4096);
  auto store = storage::LsmStore::create(dev, pool, "store");

  std::vector<u8> value(1024, 0xcd);
  for (std::size_t i = 0; i < keys; i++) {
    if (!store.put("key" + std::to_string(i), value).ok()) return -1;
  }
  dev.crash();

  const SimTime t0 = env.now();
  auto pool2 = pm::PmPool::recover(dev, "db");
  auto rec = storage::LsmStore::recover(dev, pool2.value(), "store");
  const SimTime elapsed = env.now() - t0;
  if (!rec.ok() || rec->entries() != keys) return -1;
  if (keys > 0 && !rec->get("key0").ok()) return -1;
  return static_cast<double>(elapsed);
}

// --- R1: recovery vs crash point -----------------------------------------

constexpr std::size_t kCpKeys = 256;  // 1 KB puts in the injected workload
constexpr u64 kCpDevSize = 32u << 20;

pm::FaultPlan crashpoint_plan(u64 cut) {
  pm::FaultPlan plan;  // the full failure model: reorder + tear + evict
  plan.crash_at_event = cut;
  plan.unfenced_drain_p = 0.4;
  plan.tear_p = 0.75;
  plan.evict_dirty_p = 0.35;
  plan.seed = 7;
  return plan;
}

struct CrashPointRow {
  u64 events = 0;          // boundaries reached before the cut
  std::size_t keys = 0;    // keys visible after recovery
  double recover_us = -1;  // simulated recovery time
  double scanned_kb = 0;   // bytes recovery touched on the device
};

// cut == 0: run the full workload (counting boundaries), cut at the end.
CrashPointRow crashpoint_pktstore(u64 cut) {
  sim::Env env;
  pm::PmDevice dev(env, kCpDevSize);
  auto pool = pm::PmPool::create(dev, "pkts", dev.data_base(), kCpDevSize - 4096);
  pool.set_charges(env.cost.pool_alloc_ns, env.cost.pool_alloc_ns / 2);
  net::PmArena arena(dev, pool);
  net::PktBufPool pktpool(env, arena);
  auto store = core::PktStore::create(pktpool, "store");
  dev.set_fault_plan(crashpoint_plan(cut));
  std::vector<u8> value(1024, 0xab);
  try {
    for (std::size_t i = 0; i < kCpKeys; i++) {
      if (!store.put_bytes("key" + std::to_string(i), value).ok()) return {};
    }
    dev.crash();
  } catch (const pm::PowerFailure&) {
  }
  CrashPointRow row;
  row.events = dev.fault_events();
  dev.clear_fault_plan();
  const u64 bytes0 = dev.total_accessed_bytes();
  const SimTime t0 = env.now();
  auto pool2 = pm::PmPool::recover(dev, "pkts");
  if (!pool2.ok()) return row;
  net::PmArena arena2(dev, pool2.value());
  net::PktBufPool pktpool2(env, arena2);
  auto rec = core::PktStore::recover(pktpool2, "store");
  if (!rec.ok()) return row;
  row.recover_us = static_cast<double>(env.now() - t0) / 1000.0;
  row.scanned_kb = static_cast<double>(dev.total_accessed_bytes() - bytes0) / 1024.0;
  row.keys = rec->size();
  return row;
}

CrashPointRow crashpoint_lsm(u64 cut) {
  sim::Env env;
  pm::PmDevice dev(env, kCpDevSize);
  auto pool = pm::PmPool::create(dev, "db", dev.data_base(), kCpDevSize - 4096);
  auto store = storage::LsmStore::create(dev, pool, "store");
  dev.set_fault_plan(crashpoint_plan(cut));
  std::vector<u8> value(1024, 0xcd);
  try {
    for (std::size_t i = 0; i < kCpKeys; i++) {
      if (!store.put("key" + std::to_string(i), value).ok()) return {};
    }
    dev.crash();
  } catch (const pm::PowerFailure&) {
  }
  CrashPointRow row;
  row.events = dev.fault_events();
  dev.clear_fault_plan();
  const u64 bytes0 = dev.total_accessed_bytes();
  const SimTime t0 = env.now();
  auto pool2 = pm::PmPool::recover(dev, "db");
  if (!pool2.ok()) return row;
  auto rec = storage::LsmStore::recover(dev, pool2.value(), "store");
  if (!rec.ok()) return row;
  row.recover_us = static_cast<double>(env.now() - t0) / 1000.0;
  row.scanned_kb = static_cast<double>(dev.total_accessed_bytes() - bytes0) / 1024.0;
  row.keys = rec->entries();
  return row;
}

void run_crashpoints() {
  std::printf(
      "=== R1: recovery time & bytes scanned vs crash point "
      "(%zu x 1KB puts, tear+evict fault plan) ===\n",
      kCpKeys);
  std::printf("%9s %10s %6s %10s %12s %12s\n", "backend", "cutpoint", "pct",
              "keys", "recover[us]", "scanned[KB]");
  for (int backend = 0; backend < 2; backend++) {
    const char* name = backend == 0 ? "pktstore" : "lsm";
    auto run = backend == 0 ? crashpoint_pktstore : crashpoint_lsm;
    const u64 total = run(0).events;  // boundary count of the full workload
    for (int i = 1; i <= 8; i++) {
      const u64 cut = total * static_cast<u64>(i) / 8;
      const CrashPointRow row = run(cut);
      std::printf("%9s %10llu %5.0f%% %10zu %12.1f %12.1f\n", name,
                  static_cast<unsigned long long>(cut),
                  100.0 * static_cast<double>(cut) / static_cast<double>(total),
                  row.keys, row.recover_us, row.scanned_kb);
    }
  }
  std::printf(
      "\n(cutpoint = flush/fence boundary index at which power was cut;\n"
      " keys counts survivors — the in-flight put may land or vanish;\n"
      " scanned = device bytes the recovery path touched)\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (benchio::has_flag(argc, argv, "--crashpoints")) {
    run_crashpoints();
    return 0;
  }
  const std::string shadow_arg = benchio::arg_value(argc, argv, "--shadow-index");
  if (!shadow_arg.empty() && shadow_arg != "on" && shadow_arg != "off") {
    std::fprintf(stderr, "bench_recovery: --shadow-index takes on|off\n");
    return 2;
  }
  const bool shadow = shadow_arg != "off";  // default: the group-commit split
  std::printf(
      "=== A3: crash-recovery time vs resident keys (1KB values, "
      "shadow-index %s) ===\n",
      shadow ? "on" : "off");
  std::printf("%10s %16s %12s %12s %16s\n", "keys", "pktstore[us]",
              "scan[us]", "towers[us]", "lsm[us]");
  for (const std::size_t keys : {1000u, 4000u, 16000u, 64000u}) {
    sim::Env env_a, env_b;
    const PktRecovery a = recover_pktstore(keys, env_a, shadow);
    const double b = recover_lsm(keys, env_b);
    std::printf("%10zu %16.1f %12.1f %12.1f %16.1f\n", keys, a.total_ns / 1000.0,
                a.scan_ns / 1000.0, a.tower_ns / 1000.0, b / 1000.0);
  }
  std::printf(
      "\n(recovery rebuilds skip-list towers from level 0 and re-registers\n"
      " packet-data references; it scales linearly with resident keys.\n"
      " scan/towers split the pktstore index-recovery time; run with\n"
      " --shadow-index off for the persist-everything baseline)\n");
  return 0;
}
