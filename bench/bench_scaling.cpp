// Scaling S1: multi-queue RSS scale-out of the single-server datapath.
//
// The paper's testbed pins the server to ONE core; this experiment asks
// what its architecture does with more. Each added core brings a whole
// datapath shard — NIC queue, pinned busy-poll loop, private packet pool
// over a private PM slice, TCP stack, store shard — and RSS flow
// affinity keeps the hot path shared-nothing. Swept: server cores
// {1,2,4,8} x connections {25,50,100,200} for the Figure 2 backends
// (raw_persist = "Net.+persist.", lsm = "Net.+data mgmt.+persist.",
// pktstore = the proposal).
//
// Expected shape: raw_persist scales near-linearly until the wire or the
// offered load caps it; the data-management backends keep their relative
// gap per core, so the absolute gap to raw widens with core count — the
// per-core argument of the paper carries over unchanged.
//
// `--json <path>` additionally writes machine-readable records
// (BENCH_scaling.json); two runs with the same seed produce
// byte-identical files. `--quick` runs a reduced sweep.
#include <cstdio>
#include <cstring>

#include "app/harness.h"
#include "bench_json.h"

using namespace papm;
using namespace papm::app;

namespace {

struct Cell {
  Backend backend;
  int cores;
  int conns;
  RunResult r;
};

RunResult run_cell(Backend backend, int cores, int conns, SimTime measure,
                   bool rebalance) {
  RunConfig cfg;
  cfg.backend = backend;
  cfg.server_cores = cores;
  cfg.connections = conns;
  // A device large enough that an 8-way split still leaves every shard
  // room for packet buffers and its store slice.
  cfg.pm_size = 1u << 30;
  cfg.warmup_ns = 10 * kNsPerMs;
  cfg.measure_ns = measure;
  cfg.keyspace = 4096;
  cfg.rebalance = rebalance;
  return run_experiment(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = benchio::json_path_from_args(argc, argv);
  const bool quick = benchio::has_flag(argc, argv, "--quick");
  const bool want_metrics = benchio::has_flag(argc, argv, "--metrics");
  // Runtime RSS rebalancing: the shard-load monitor remaps indirection-
  // table entries during the run, migrating flow groups off hot shards.
  const bool rebalance = benchio::has_flag(argc, argv, "--rebalance");

  const std::vector<int> cores_sweep = quick ? std::vector<int>{1, 4}
                                             : std::vector<int>{1, 2, 4, 8};
  const std::vector<int> conns_sweep =
      quick ? std::vector<int>{100} : std::vector<int>{25, 50, 100, 200};
  const SimTime measure = quick ? 20 * kNsPerMs : 40 * kNsPerMs;

  std::printf("=== Scaling S1: server cores x connections, per-core RSS "
              "datapath shards ===\n");
  std::printf("(each backend: throughput [kreq/s] by (cores, connections); "
              "speedup vs 1 core at equal load)\n");

  std::vector<Cell> cells;
  for (const Backend backend :
       {Backend::raw_persist, Backend::lsm, Backend::pktstore}) {
    std::printf("\n--- backend: %s ---\n", std::string(to_string(backend)).c_str());
    std::printf("cores \\ conns |");
    for (const int conns : conns_sweep) std::printf(" %8d |", conns);
    std::printf("\n");

    std::vector<double> one_core(conns_sweep.size(), 0.0);
    for (const int cores : cores_sweep) {
      std::printf("%13d |", cores);
      for (std::size_t ci = 0; ci < conns_sweep.size(); ci++) {
        const auto r =
            run_cell(backend, cores, conns_sweep[ci], measure, rebalance);
        if (cores == 1) one_core[ci] = r.kreq_per_s;
        const double speedup =
            one_core[ci] > 0.0 ? r.kreq_per_s / one_core[ci] : 0.0;
        std::printf(" %6.1f %s%.2fx|", r.kreq_per_s, cores == 1 ? " " : "",
                    speedup);
        cells.push_back(Cell{backend, cores, conns_sweep[ci], r});
      }
      std::printf("\n");
    }
  }

  if (want_metrics) {
    // Per-core flush/fence accounting: the per-op persistence cost must
    // stay flat as shards are added (shared-nothing), even as totals grow.
    std::printf("\n--- PM flush/fence accounting per cell ---\n");
    std::printf("%-12s %5s %6s %10s %10s %10s\n", "backend", "cores", "conns",
                "clwb/op", "sfence/op", "B/op");
    for (const Cell& c : cells) {
      const double ops = c.r.ops > 0 ? static_cast<double>(c.r.ops) : 1.0;
      std::printf("%-12s %5d %6d %10.1f %10.2f %10.0f\n",
                  std::string(to_string(c.backend)).c_str(), c.cores, c.conns,
                  static_cast<double>(c.r.flush.clwb) / ops,
                  static_cast<double>(c.r.flush.sfence) / ops,
                  static_cast<double>(c.r.flush.bytes_flushed) / ops);
    }
  }

  if (!json_path.empty()) {
    benchio::JsonWriter w;
    w.begin_object();
    benchio::write_metadata(w, "scaling");
    w.field("seed", 42LL);
    w.field("measure_ns", static_cast<long long>(measure));
    w.field("rebalance", static_cast<long long>(rebalance ? 1 : 0));
    w.begin_array("results");
    for (const Cell& c : cells) {
      w.begin_object();
      w.field("backend", to_string(c.backend));
      w.field("cores", static_cast<long long>(c.cores));
      w.field("connections", static_cast<long long>(c.conns));
      w.field("kreq_per_s", c.r.kreq_per_s);
      w.field("mean_rtt_us", c.r.mean_rtt_us());
      w.field("p99_rtt_us", c.r.p99_rtt_us());
      w.field("server_cpu_util", c.r.server_cpu_util);
      w.field("ops", static_cast<long long>(c.r.ops));
      w.field("errors", static_cast<long long>(c.r.server_errors));
      w.field("clwb", static_cast<long long>(c.r.flush.clwb));
      w.field("sfence", static_cast<long long>(c.r.flush.sfence));
      w.field("bytes_flushed", static_cast<long long>(c.r.flush.bytes_flushed));
      w.field("imbalance", c.r.imbalance);
      w.field("bucket_moves", static_cast<long long>(c.r.bucket_moves));
      w.field("conns_migrated", static_cast<long long>(c.r.conns_migrated));
      w.end_object();
    }
    w.end_array();
    w.end_object();
    if (!w.write(json_path)) {
      std::fprintf(stderr, "bench_scaling: cannot write %s\n",
                   json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s (%zu records)\n", json_path.c_str(), cells.size());
  }
  return 0;
}
