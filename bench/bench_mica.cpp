// Ablation A5 (§2.2): what durability costs — a MICA-like kernel-bypass
// UDP store (volatile, no storage properties) vs the persistent stacks.
//
// "Networked non-persistent in-memory key-value stores, such as MICA,
// eliminate networking overheads using kernel-bypass framework and
// custom UDP-based protocol. However, these systems ... do not support
// storage properties typically offered by persistent storage systems,
// such as durability and crash consistency."
#include <cstdio>

#include "app/harness.h"
#include "common/stats.h"
#include "storage/volatile_kv.h"

using namespace papm;

namespace {

constexpr u32 kClientIp = 0x0a000001;
constexpr u32 kServerIp = 0x0a000002;
constexpr u16 kPort = 5555;

// Request: u8 op (1=put), u8 klen, key, value. Response: u8 status.
struct MicaResult {
  double mean_rtt_us;
  double kreq_s;
};

MicaResult run_mica(int requests) {
  sim::Env env;
  nic::Fabric fabric(env);

  app::HostConfig scfg;
  scfg.ip = kServerIp;
  scfg.cores = 1;
  scfg.busy_poll = true;  // kernel-bypass polling
  app::Host server(env, fabric, scfg);
  app::HostConfig ccfg;
  ccfg.ip = kClientIp;
  ccfg.cores = 0;
  ccfg.busy_poll = true;  // MICA's custom client is kernel-bypass too
  app::Host client(env, fabric, ccfg);

  storage::VolatileKv kv(env);
  (void)server.udp().bind(kPort, [&](u32 ip, u16 port, net::PktBuf* pb) {
    const auto p = server.pool().payload(*pb);
    if (p.size() > 2) {
      const std::size_t klen = p[1];
      const std::string_view key(reinterpret_cast<const char*>(p.data() + 2),
                                 klen);
      (void)kv.put(key, p.subspan(2 + klen));
    }
    server.pool().free(pb);
    const u8 ok = 1;
    (void)server.udp().send_to(ip, port, kPort, {&ok, 1});
  });

  Stats rtt;
  int completed = 0;
  Rng rng(3);
  SimTime issued_at = 0;
  std::function<void()> issue = [&] {
    issued_at = env.now();
    std::vector<u8> req;
    req.push_back(1);
    const std::string key = "key" + std::to_string(rng.next_below(512));
    req.push_back(static_cast<u8>(key.size()));
    req.insert(req.end(), key.begin(), key.end());
    req.resize(req.size() + 1024, 0xab);
    (void)client.udp().send_to(kServerIp, kPort, 5556, req);
  };
  (void)client.udp().bind(5556, [&](u32, u16, net::PktBuf* pb) {
    client.pool().free(pb);
    rtt.add(static_cast<double>(env.now() - issued_at));
    if (++completed < requests) issue();
  });
  issue();
  env.engine.run_until_idle();

  MicaResult r;
  r.mean_rtt_us = rtt.mean() / 1000.0;
  r.kreq_s = 1e6 / rtt.mean();
  return r;
}

}  // namespace

int main() {
  std::printf("=== A5: volatile kernel-bypass store (MICA-like) vs persistent stacks ===\n");
  std::printf("%-28s %10s %12s %10s %9s\n", "system", "RTT[us]", "tput*[kreq/s]",
              "durable", "integrity");

  const auto mica = run_mica(3000);
  std::printf("%-28s %10.2f %12.1f %10s %9s\n", "MICA-like (UDP, volatile)",
              mica.mean_rtt_us, mica.kreq_s, "NO", "NO");

  for (const auto backend : {app::Backend::lsm, app::Backend::pktstore}) {
    app::RunConfig cfg;
    cfg.backend = backend;
    cfg.connections = 1;
    cfg.warmup_ns = 10 * kNsPerMs;
    cfg.measure_ns = 80 * kNsPerMs;
    const auto r = app::run_experiment(cfg);
    std::printf("%-28s %10.2f %12.1f %10s %9s\n",
                backend == app::Backend::lsm ? "NoveLSM-like (TCP, PM)"
                                             : "pktstore (TCP, PM)",
                r.mean_rtt_us(), 1e3 / r.rtt.mean() * 1e3, "yes", "yes");
  }
  std::printf(
      "\n(*single closed-loop connection. The volatile store wins on speed\n"
      " by skipping every storage property; the paper's §2.2 point is that\n"
      " this is not an apples-to-apples option for storage systems. The\n"
      " pktstore recovers most of the gap while keeping the properties.)\n");
  return 0;
}
