// Open-loop O1: production load — Poisson arrivals, 1k-100k connections,
// tail latency and deadline misses.
//
// The closed-loop benches (latency, scaling) measure a best case: every
// connection politely waits for its response, so the server is never
// offered more than it just finished. Production traffic is open-loop —
// requests arrive when users click, at a rate that does not care how the
// server is doing — and the numbers that matter are the tail (p99/p999
// sojourn time, arrival to response including client-side queueing) and
// the fraction of requests that blow their deadline.
//
// This bench sweeps the connection count at a fixed offered load (the
// same krps spread over 1k vs 100k conns exercises very different RSS
// spreads and per-flow burstiness) and reports p50/p99/p999, the
// deadline-miss rate, and the server's shard-load imbalance. With
// `--rebalance` the shard-load monitor remaps RSS indirection-table
// entries at runtime, migrating flow groups (TCP + store residency) off
// hot shards — the imbalance and tail columns show what that buys.
//
// Flags:
//   --conns N        single-point run at N connections (default sweep)
//   --rate RPS       aggregate offered load, req/s (default 100000)
//   --seconds S      measurement window in simulated seconds (default 0.2)
//   --deadline-us D  per-request deadline (default 200)
//   --cores N        server cores / datapath shards (default 4)
//   --backend B      discard | raw_persist | lsm | pktstore (default)
//   --rebalance      enable the runtime shard-load rebalancer
//   --quick          reduced sweep (1k, 10k) and a shorter window
//   --metrics        print the merged metric registries after each point
//   --no-csum-offload  disable the NIC checksum engines (software csum)
//   --cost-model     embed the calibrated cost model in the JSON record
//   --admin          arm the live admin plane (/stats, /metrics,
//                    /trace/recent). Armed-but-unscraped costs zero
//                    simulated time: an --admin run is byte-identical to
//                    one without the flag (tier1.sh asserts this)
//   --flightrec      enable the PM flight recorder on every shard (a
//                    real persistence cost, excluded from byte-identity)
//   --admin-overhead paired-run mode: each point runs once bare and once
//                    with the admin plane armed AND scraped (500 Hz
//                    cycle over the three endpoints, span rings on).
//                    Prints and records the p99 delta; exits nonzero if
//                    it reaches 1% (the admin-plane overhead budget).
//                    Default sweep narrows to the 10k-conns point
//   --json PATH      machine-readable records (schema v7); two runs with
//                    the same flags are byte-identical
#include <cstdio>
#include <string>
#include <vector>

#include "app/harness.h"
#include "bench_json.h"

using namespace papm;
using namespace papm::app;

namespace {

struct Point {
  int conns;
  OpenLoopResult r;
  // --admin-overhead pairing (zeros otherwise).
  double p99_base_us = 0.0;
  double p99_admin_us = 0.0;
  double overhead_pct = 0.0;
};

Backend backend_from(const std::string& name) {
  if (name == "discard") return Backend::discard;
  if (name == "raw_persist") return Backend::raw_persist;
  if (name == "lsm") return Backend::lsm;
  return Backend::pktstore;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = benchio::json_path_from_args(argc, argv);
  const bool quick = benchio::has_flag(argc, argv, "--quick");
  const bool rebalance = benchio::has_flag(argc, argv, "--rebalance");
  const bool want_metrics = benchio::has_flag(argc, argv, "--metrics");
  const bool no_csum_offload =
      benchio::has_flag(argc, argv, "--no-csum-offload");
  const bool want_cost_model = benchio::has_flag(argc, argv, "--cost-model");
  const bool admin = benchio::has_flag(argc, argv, "--admin");
  const bool flightrec = benchio::has_flag(argc, argv, "--flightrec");
  const bool admin_overhead = benchio::has_flag(argc, argv, "--admin-overhead");

  const std::string conns_arg = benchio::arg_value(argc, argv, "--conns");
  const std::string rate_arg = benchio::arg_value(argc, argv, "--rate");
  const std::string seconds_arg = benchio::arg_value(argc, argv, "--seconds");
  const std::string deadline_arg =
      benchio::arg_value(argc, argv, "--deadline-us");
  const std::string cores_arg = benchio::arg_value(argc, argv, "--cores");
  const std::string backend_arg = benchio::arg_value(argc, argv, "--backend");

  const double rate = rate_arg.empty() ? 100'000.0 : std::stod(rate_arg);
  const double seconds =
      seconds_arg.empty() ? (quick ? 0.05 : 0.2) : std::stod(seconds_arg);
  const long long deadline_us =
      deadline_arg.empty() ? 200 : std::stoll(deadline_arg);
  const int cores = cores_arg.empty() ? 4 : std::stoi(cores_arg);
  const Backend backend = backend_from(backend_arg);

  std::vector<int> conns_sweep;
  if (!conns_arg.empty()) {
    conns_sweep.push_back(std::stoi(conns_arg));
  } else if (admin_overhead) {
    // The overhead budget is specified at the 10k-conns point; sweeping
    // the other points doubles runtime without informing the verdict.
    conns_sweep = {10'000};
  } else if (quick) {
    conns_sweep = {1'000, 10'000};
  } else {
    conns_sweep = {1'000, 10'000, 100'000};
  }

  std::printf("=== Open-loop O1: Poisson offered load, %.0f req/s, "
              "deadline %lld us, %d server cores, backend %s%s ===\n",
              rate, deadline_us, cores,
              std::string(to_string(backend)).c_str(),
              rebalance ? ", rebalancing ON" : "");
  std::printf("%8s %9s %9s %8s %8s %8s %8s %9s %6s %9s\n", "conns",
              "offered", "kreq/s", "p50[us]", "p99[us]", "p999[us]",
              "miss%", "imbal", "moves", "cpu");

  std::vector<Point> points;
  for (const int conns : conns_sweep) {
    OpenLoopRunConfig cfg;
    cfg.backend = backend;
    cfg.server_cores = cores;
    cfg.pm_size = 1u << 30;
    cfg.connections = conns;
    cfg.rate_rps = rate;
    cfg.deadline_ns = static_cast<SimTime>(deadline_us) * kNsPerUs;
    cfg.warmup_ns = 50 * kNsPerMs;
    cfg.measure_ns = static_cast<SimTime>(seconds * 1e9);
    cfg.rebalance = rebalance;
    if (no_csum_offload) {
      cfg.nic.csum_offload_rx = false;
      cfg.nic.csum_offload_tx = false;
    }
    cfg.collect_metrics = want_metrics;
    cfg.admin = admin;
    cfg.flight_recorder = flightrec;

    Point pt;
    pt.conns = conns;
    if (admin_overhead) {
      // Paired runs, identical load: once bare, once with the admin
      // plane armed and scraped hard (500 Hz over the three endpoints,
      // span rings feeding /trace/recent). The p99 delta is the cost of
      // running production telemetry on the datapath cores.
      const OpenLoopResult base = run_openloop(cfg);
      OpenLoopRunConfig acfg = cfg;
      acfg.admin = true;
      acfg.admin_interval_ns = 2 * kNsPerMs;
      acfg.trace_capacity = 4096;
      const OpenLoopResult withadmin = run_openloop(acfg);
      pt.r = withadmin;
      pt.p99_base_us = base.p99_us();
      pt.p99_admin_us = pt.r.p99_us();
      pt.overhead_pct = pt.p99_base_us > 0.0
                            ? (pt.p99_admin_us - pt.p99_base_us) /
                                  pt.p99_base_us * 100.0
                            : 0.0;
    } else {
      pt.r = run_openloop(cfg);
    }
    const OpenLoopResult& r = pt.r;
    std::printf("%8d %9.1f %9.1f %8.1f %8.1f %8.1f %7.2f%% %9.3f %6llu "
                "%8.0f%%\n",
                conns, r.offered_krps, r.kreq_per_s, r.p50_us(), r.p99_us(),
                r.p999_us(), r.miss_rate * 100.0, r.imbalance,
                static_cast<unsigned long long>(r.bucket_moves),
                r.server_cpu_util * 100.0);
    if (admin_overhead) {
      std::printf("%8s admin plane: %llu scrapes answered, %.0f B/body, "
                  "p99 %.1f -> %.1f us (%+.2f%%)\n",
                  "", static_cast<unsigned long long>(r.admin_requests),
                  r.admin_scrapes > 0 ? static_cast<double>(r.admin_bytes) /
                                            static_cast<double>(r.admin_scrapes)
                                      : 0.0,
                  pt.p99_base_us, pt.p99_admin_us, pt.overhead_pct);
    }
    if (flightrec) {
      std::printf("%8s flight recorder: %llu records, %llu wraps\n", "",
                  static_cast<unsigned long long>(r.flightrec_records),
                  static_cast<unsigned long long>(r.flightrec_wraps));
    }
    if (want_metrics) std::printf("%s\n", r.metrics_report.c_str());
    points.push_back(std::move(pt));
  }

  if (!json_path.empty()) {
    benchio::JsonWriter w;
    w.begin_object();
    benchio::write_metadata(w, "openloop");
    w.field("seed", 42LL);
    w.field("rate_rps", rate);
    w.field("deadline_us", deadline_us);
    w.field("cores", static_cast<long long>(cores));
    w.field("backend", to_string(backend));
    w.field("rebalance", static_cast<long long>(rebalance ? 1 : 0));
    w.field("measure_ns", static_cast<long long>(seconds * 1e9));
    w.field("csum_offload", no_csum_offload ? "off" : "on");
    w.field("admin", static_cast<long long>(admin ? 1 : 0));
    w.field("flightrec", static_cast<long long>(flightrec ? 1 : 0));
    w.field("admin_overhead", static_cast<long long>(admin_overhead ? 1 : 0));
    if (want_cost_model) {
      w.begin_object("cost_model");
      benchio::write_cost_model(w, sim::CostModel{});
      w.end_object();
    }
    w.begin_array("results");
    for (const Point& p : points) {
      w.begin_object();
      w.field("connections", static_cast<long long>(p.conns));
      w.field("offered_krps", p.r.offered_krps);
      w.field("kreq_per_s", p.r.kreq_per_s);
      w.field("p50_us", p.r.p50_us());
      w.field("p99_us", p.r.p99_us());
      w.field("p999_us", p.r.p999_us());
      w.field("mean_us", p.r.sojourn.mean() / 1000.0);
      w.field("deadline_miss_rate", p.r.miss_rate);
      w.field("arrivals", static_cast<long long>(p.r.arrivals));
      w.field("completed", static_cast<long long>(p.r.completed));
      w.field("errors", static_cast<long long>(p.r.errors));
      w.field("server_cpu_util", p.r.server_cpu_util);
      w.field("imbalance", p.r.imbalance);
      w.field("bucket_moves", static_cast<long long>(p.r.bucket_moves));
      w.field("conns_migrated", static_cast<long long>(p.r.conns_migrated));
      w.field("indir_remaps", static_cast<long long>(p.r.indir_remaps));
      w.field("admin_requests", static_cast<long long>(p.r.admin_requests));
      w.field("admin_scrapes", static_cast<long long>(p.r.admin_scrapes));
      w.field("flightrec_records",
              static_cast<long long>(p.r.flightrec_records));
      w.field("flightrec_wraps", static_cast<long long>(p.r.flightrec_wraps));
      w.field("trace_dropped", static_cast<long long>(p.r.trace_dropped));
      if (admin_overhead) {
        w.field("p99_base_us", p.p99_base_us);
        w.field("p99_admin_us", p.p99_admin_us);
        w.field("overhead_pct", p.overhead_pct);
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
    if (!w.write(json_path)) {
      std::fprintf(stderr, "bench_openloop: cannot write %s\n",
                   json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s (%zu records)\n", json_path.c_str(),
                points.size());
  }

  // The overhead budget is the bench's pass criterion in paired mode: a
  // telemetry plane that costs >= 1% of p99 under production load is a
  // regression, not a data point. (A probe that never connected — zero
  // scrapes — would vacuously pass; require it did real work.)
  if (admin_overhead) {
    for (const Point& p : points) {
      if (p.r.admin_requests == 0 || p.overhead_pct >= 1.0) {
        std::fprintf(stderr,
                     "bench_openloop: FAIL admin overhead conns=%d "
                     "scrapes=%llu p99 %.1f -> %.1f us (%+.2f%%, budget 1%%)\n",
                     p.conns,
                     static_cast<unsigned long long>(p.r.admin_requests),
                     p.p99_base_us, p.p99_admin_us, p.overhead_pct);
        return 1;
      }
    }
  }
  return 0;
}
