// Ablation A2 (§5.2): software checksumming vs NIC offload reuse.
//
// Real wall-clock microbenchmarks (google-benchmark) of the actual
// implementations: CRC32C (what LevelDB/NoveLSM compute per value),
// the Internet checksum (what TCP carries), the checksum-complete
// payload derivation and the value-slice narrowing (what the proposal
// does instead of either). The last two touch only header bytes — their
// cost is independent of the value size, which is the whole point.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/crc32c.h"
#include "common/inet_csum.h"
#include "common/rng.h"
#include "net/headers.h"
#include "sim/cost_model.h"

using namespace papm;

namespace {

std::vector<u8> make_data(std::size_t n) {
  Rng rng(n);
  std::vector<u8> v(n);
  for (auto& b : v) b = static_cast<u8>(rng.next());
  return v;
}

void BM_Crc32c(benchmark::State& state) {
  const auto data = make_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c(data));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32c)->Range(64, 64 << 10);

// The A2 ladder, rung by rung: software tables, the CRC32 instruction,
// and NIC offload reuse (which the simulation charges at
// nic_csum_offload_ns — zero CPU — reported here as the derivation
// benchmarks below).
void BM_Crc32c_sw(benchmark::State& state) {
  const auto data = make_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c_sw_extend(0, data));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32c_sw)->Range(64, 64 << 10);

void BM_Crc32c_hw(benchmark::State& state) {
  if (!crc32c_hw_available()) {
    state.SkipWithError("SSE4.2 CRC32 not available on this CPU");
    return;
  }
  const auto data = make_data(static_cast<std::size_t>(state.range(0)));
  // Same answer as the tables, ~20x the throughput.
  if (crc32c_hw_extend(0, data) != crc32c_sw_extend(0, data)) {
    state.SkipWithError("hw/sw CRC32C mismatch");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c_hw_extend(0, data));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32c_hw)->Range(64, 64 << 10);

// What the simulation charges when the integrity word comes from the
// NIC's checksum engine instead of the CPU (§5.2 offload reuse): a
// constant, size-independent nic_csum_offload_ns of CPU time — zero in
// the calibrated model. Manual time with pinned iterations, since a
// zero-cost iteration would otherwise never satisfy benchmark's
// min-time loop.
void BM_Crc32c_offload_charged(benchmark::State& state) {
  const sim::CostModel cost;
  const double iteration_s =
      static_cast<double>(cost.nic_csum_offload_ns) * 1e-9;
  for (auto _ : state) {
    state.SetIterationTime(iteration_s);
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32c_offload_charged)
    ->Range(64, 64 << 10)
    ->UseManualTime()
    ->Iterations(1000);

void BM_InetChecksum(benchmark::State& state) {
  const auto data = make_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(inet_checksum(data));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_InetChecksum)->Range(64, 64 << 10);

// The §4.2 reuse: derive the payload checksum from the NIC's
// checksum-complete sum. Only the 20 TCP header bytes are touched,
// regardless of payload size.
void BM_PayloadCsumFromComplete(benchmark::State& state) {
  const auto payload = make_data(static_cast<std::size_t>(state.range(0)));
  net::TcpHeader h;
  std::vector<u8> hdr(net::kTcpHdrLen);
  net::encode_tcp(h, hdr);
  std::vector<u8> seg(hdr);
  seg.insert(seg.end(), payload.begin(), payload.end());
  const u32 full_sum = inet_sum(seg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::payload_csum_from_complete(full_sum, hdr));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_PayloadCsumFromComplete)->Range(64, 64 << 10);

// Narrowing the payload checksum to the HTTP-body slice: touches only the
// ~60-byte header prefix.
void BM_CsumSliceNarrowing(benchmark::State& state) {
  const auto payload = make_data(static_cast<std::size_t>(state.range(0)));
  const u16 full = inet_checksum(payload);
  const std::size_t body_at = std::min<std::size_t>(60, payload.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        inet_csum_slice(payload, full, body_at, payload.size()));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_CsumSliceNarrowing)->Range(128, 64 << 10);

void BM_Crc32cIncremental(benchmark::State& state) {
  const auto data = make_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    u32 crc = 0;
    for (std::size_t at = 0; at < data.size(); at += 1460) {
      const std::size_t n = std::min<std::size_t>(1460, data.size() - at);
      crc = crc32c_extend(crc, std::span(data).subspan(at, n));
    }
    benchmark::DoNotOptimize(crc);
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32cIncremental)->Range(1 << 10, 64 << 10);

}  // namespace

BENCHMARK_MAIN();
