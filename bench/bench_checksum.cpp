// Ablation A2 (§5.2): software checksumming vs NIC offload reuse.
//
// Real wall-clock microbenchmarks (google-benchmark) of the actual
// implementations: CRC32C (what LevelDB/NoveLSM compute per value),
// the Internet checksum (what TCP carries), the checksum-complete
// payload derivation and the value-slice narrowing (what the proposal
// does instead of either). The last two touch only header bytes — their
// cost is independent of the value size, which is the whole point.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/crc32c.h"
#include "common/inet_csum.h"
#include "common/rng.h"
#include "net/headers.h"

using namespace papm;

namespace {

std::vector<u8> make_data(std::size_t n) {
  Rng rng(n);
  std::vector<u8> v(n);
  for (auto& b : v) b = static_cast<u8>(rng.next());
  return v;
}

void BM_Crc32c(benchmark::State& state) {
  const auto data = make_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c(data));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32c)->Range(64, 64 << 10);

void BM_InetChecksum(benchmark::State& state) {
  const auto data = make_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(inet_checksum(data));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_InetChecksum)->Range(64, 64 << 10);

// The §4.2 reuse: derive the payload checksum from the NIC's
// checksum-complete sum. Only the 20 TCP header bytes are touched,
// regardless of payload size.
void BM_PayloadCsumFromComplete(benchmark::State& state) {
  const auto payload = make_data(static_cast<std::size_t>(state.range(0)));
  net::TcpHeader h;
  std::vector<u8> hdr(net::kTcpHdrLen);
  net::encode_tcp(h, hdr);
  std::vector<u8> seg(hdr);
  seg.insert(seg.end(), payload.begin(), payload.end());
  const u32 full_sum = inet_sum(seg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::payload_csum_from_complete(full_sum, hdr));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_PayloadCsumFromComplete)->Range(64, 64 << 10);

// Narrowing the payload checksum to the HTTP-body slice: touches only the
// ~60-byte header prefix.
void BM_CsumSliceNarrowing(benchmark::State& state) {
  const auto payload = make_data(static_cast<std::size_t>(state.range(0)));
  const u16 full = inet_checksum(payload);
  const std::size_t body_at = std::min<std::size_t>(60, payload.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        inet_csum_slice(payload, full, body_at, payload.size()));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_CsumSliceNarrowing)->Range(128, 64 << 10);

void BM_Crc32cIncremental(benchmark::State& state) {
  const auto data = make_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    u32 crc = 0;
    for (std::size_t at = 0; at < data.size(); at += 1460) {
      const std::size_t n = std::min<std::size_t>(1460, data.size() - at);
      crc = crc32c_extend(crc, std::span(data).subspan(at, n));
    }
    benchmark::DoNotOptimize(crc);
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32cIncremental)->Range(1 << 10, 64 << 10);

}  // namespace

BENCHMARK_MAIN();
