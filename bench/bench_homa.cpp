// §5.2 realized: key-value writes over the *implemented* Homa-like
// message transport, with the packet-metadata store adopting the Homa
// segments zero-copy — "the approach of repurposing the networking
// features is feasible not only for TCP but also future transport
// protocols".
//
// One closed-loop client; request message = [u8 op][u8 klen][key][value];
// response message = [u8 status]. Storage backends: NoveLSM-like vs
// pktstore (which ingests the request's packets in place).
#include <cstdio>

#include "app/host.h"
#include "common/stats.h"
#include "core/pktstore.h"
#include "net/homa.h"
#include "storage/lsm_store.h"

using namespace papm;

namespace {

constexpr u32 kClientIp = 0x0a000001;
constexpr u32 kServerIp = 0x0a000002;
constexpr u16 kPort = 4100;

struct Result {
  double mean_rtt_us;
  storage::OpBreakdown bd;
  u64 ops;
};

Result run(bool use_pktstore, std::size_t value_size, int requests) {
  sim::Env env;
  nic::Fabric fabric(env);

  app::HostConfig scfg;
  scfg.ip = kServerIp;
  scfg.cores = 1;
  scfg.busy_poll = true;
  scfg.pm_backed = true;
  app::Host server(env, fabric, scfg);
  app::HostConfig ccfg;
  ccfg.ip = kClientIp;
  ccfg.cores = 0;
  ccfg.busy_poll = true;
  app::Host client(env, fabric, ccfg);

  net::HomaEndpoint shoma(server.udp(), kPort);
  net::HomaEndpoint choma(client.udp(), kPort);

  std::optional<core::PktStore> pktstore;
  std::optional<pm::PmPool> store_pool;
  std::optional<storage::LsmStore> lsm;
  if (use_pktstore) {
    pktstore = core::PktStore::create(server.pool(), "db");
  } else {
    auto span = server.pm_pool().alloc(128u << 20);
    store_pool = pm::PmPool::create(server.pm_device(), "storepool",
                                    align_up(span.value(), kCacheLine),
                                    (128u << 20) - kCacheLine);
    lsm = storage::LsmStore::create(server.pm_device(), *store_pool, "db");
  }

  storage::OpBreakdown bd_sum;
  u64 bd_ops = 0;
  shoma.on_message = [&](net::HomaDelivery d) {
    // Parse the tiny op header in place (it lives in the first segment).
    const u8* first = server.pool().data(*d.pkts[0]) + d.offs[0];
    const std::size_t klen = first[1];
    const std::string key(reinterpret_cast<const char*>(first + 2), klen);
    storage::OpBreakdown bd;
    if (use_pktstore) {
      // Skip the op header within the first segment; adopt the rest.
      auto offs = d.offs;
      auto lens = d.lens;
      const u32 skip = static_cast<u32>(2 + klen);
      offs[0] += skip;
      lens[0] -= skip;
      (void)pktstore->put_pkts(key, d.pkts, offs, lens, &bd);
    } else {
      const auto bytes = d.bytes(server.pool());
      (void)lsm->put(key, std::span<const u8>(bytes).subspan(2 + klen), &bd);
    }
    bd_sum += bd;
    bd_ops++;
    for (auto* pb : d.pkts) server.pool().free(pb);
    const u8 ok = 1;
    shoma.send_msg(d.src_ip, d.src_port, {&ok, 1});
  };

  Stats rtt;
  u64 completed = 0;
  Rng rng(9);
  SimTime issued_at = 0;
  std::function<void()> issue = [&] {
    issued_at = env.now();
    std::vector<u8> req;
    req.push_back(1);
    const std::string key = "key" + std::to_string(rng.next_below(512));
    req.push_back(static_cast<u8>(key.size()));
    req.insert(req.end(), key.begin(), key.end());
    req.resize(req.size() + value_size, 0x5a);
    choma.send_msg(kServerIp, kPort, req);
  };
  choma.on_message = [&](net::HomaDelivery d) {
    for (auto* pb : d.pkts) client.pool().free(pb);
    rtt.add(static_cast<double>(env.now() - issued_at));
    if (++completed < static_cast<u64>(requests)) issue();
  };
  issue();
  env.engine.run_until_idle();

  Result r;
  r.mean_rtt_us = rtt.mean() / 1000.0;
  r.bd = bd_sum;
  if (bd_ops > 0) r.bd /= static_cast<SimTime>(bd_ops);
  r.ops = completed;
  return r;
}

}  // namespace

int main() {
  std::printf("=== KV writes over the implemented Homa-like transport ===\n");
  std::printf("%-14s %-10s %9s | %6s %6s %6s %6s %7s\n", "value", "backend",
              "RTT[us]", "prep", "csum", "copy", "alloc", "persist");
  for (const std::size_t vs : {1024u, 4096u, 16384u}) {
    for (const bool pkt : {false, true}) {
      const auto r = run(pkt, vs, 1500);
      std::printf("%-14zu %-10s %9.2f | %6.2f %6.2f %6.2f %6.2f %7.2f\n", vs,
                  pkt ? "pktstore" : "lsm", r.mean_rtt_us,
                  r.bd.prep_ns / 1000.0, r.bd.checksum_ns / 1000.0,
                  r.bd.copy_ns / 1000.0, r.bd.alloc_insert_ns / 1000.0,
                  r.bd.persist_ns / 1000.0);
    }
  }
  std::printf(
      "\n(pktstore adopts the Homa segments in place: the checksum and copy\n"
      " savings survive the transport swap, and the absolute RTT is far\n"
      " below TCP's — §5.2's 'benefit would be doubled'.)\n");
  return 0;
}
