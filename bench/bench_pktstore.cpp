// Projection P1: what the §4.2 proposal saves, feature by feature.
//
// Table-1-style breakdown for the packet-metadata store with each reuse
// individually disabled, quantifying: checksum reuse (paper: "could save
// 1.77 us"), zero-copy ingest ("reduce the data copy overhead, which is
// 1.14 us"), allocator unification and lighter request handling.
#include <cstdio>

#include "app/harness.h"

using namespace papm;
using namespace papm::app;

namespace {

RunConfig base() {
  RunConfig cfg;
  cfg.backend = Backend::pktstore;
  cfg.connections = 1;
  cfg.warmup_ns = 10 * kNsPerMs;
  cfg.measure_ns = 100 * kNsPerMs;
  return cfg;
}

void print(const char* name, const RunResult& r) {
  const auto& bd = r.avg_breakdown;
  std::printf("%-28s %8.2f | %6.2f %6.2f %6.2f %6.2f %7.2f | %8.2f\n", name,
              r.mean_rtt_us(), bd.prep_ns / 1000.0, bd.checksum_ns / 1000.0,
              bd.copy_ns / 1000.0, bd.alloc_insert_ns / 1000.0,
              bd.persist_ns / 1000.0, bd.total_ns() / 1000.0);
}

}  // namespace

int main() {
  std::printf("=== P1: pktstore vs baseline, per-feature ablation (1KB writes) ===\n");
  std::printf("%-28s %8s | %6s %6s %6s %6s %7s | %8s\n", "configuration",
              "RTT[us]", "prep", "csum", "copy", "alloc", "persist",
              "storage");

  {
    RunConfig cfg = base();
    cfg.backend = Backend::lsm;
    print("baseline (NoveLSM-like)", run_experiment(cfg));
  }
  {
    print("pktstore (all reuse on)", run_experiment(base()));
  }
  {
    RunConfig cfg = base();
    cfg.pkt_opts.reuse_checksum = false;
    print("  - checksum reuse", run_experiment(cfg));
  }
  {
    RunConfig cfg = base();
    cfg.pkt_opts.zero_copy = false;
    print("  - zero copy", run_experiment(cfg));
  }
  {
    RunConfig cfg = base();
    cfg.pkt_opts.light_prep = false;
    print("  - light request prep", run_experiment(cfg));
  }
  {
    RunConfig cfg = base();
    cfg.pkt_opts.reuse_timestamp = false;
    print("  - timestamp reuse", run_experiment(cfg));
  }
  {
    RunConfig cfg = base();
    cfg.pkt_opts.reuse_checksum = false;
    cfg.pkt_opts.zero_copy = false;
    cfg.pkt_opts.light_prep = false;
    cfg.pkt_opts.reuse_timestamp = false;
    print("  - everything (baseline-ish)", run_experiment(cfg));
  }

  std::printf(
      "\npaper's projected savings: checksum 1.77us, copy 1.14us, plus\n"
      "allocator/request simplification (\"obviated or simplified\", 4.2)\n");
  return 0;
}
