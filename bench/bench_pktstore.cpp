// Projection P1: what the §4.2 proposal saves, feature by feature.
//
// Table-1-style breakdown for the packet-metadata store with each reuse
// individually disabled, quantifying: checksum reuse (paper: "could save
// 1.77 us"), zero-copy ingest ("reduce the data copy overhead, which is
// 1.14 us"), allocator unification and lighter request handling.
//
// --json <path> writes the ablation rows as schema-v3 records, including
// the per-op flush-cost fields.
#include <cstdio>
#include <string>
#include <vector>

#include "app/harness.h"
#include "bench_json.h"

using namespace papm;
using namespace papm::app;

namespace {

RunConfig base() {
  RunConfig cfg;
  cfg.backend = Backend::pktstore;
  cfg.connections = 1;
  cfg.warmup_ns = 10 * kNsPerMs;
  cfg.measure_ns = 100 * kNsPerMs;
  return cfg;
}

void print(const char* name, const RunResult& r) {
  const auto& bd = r.avg_breakdown;
  std::printf("%-28s %8.2f | %6.2f %6.2f %6.2f %6.2f %7.2f | %8.2f\n", name,
              r.mean_rtt_us(), bd.prep_ns / 1000.0, bd.checksum_ns / 1000.0,
              bd.copy_ns / 1000.0, bd.alloc_insert_ns / 1000.0,
              bd.persist_ns / 1000.0, bd.total_ns() / 1000.0);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = benchio::json_path_from_args(argc, argv);
  struct Row {
    const char* name;
    RunResult r;
  };
  std::vector<Row> rows;

  std::printf("=== P1: pktstore vs baseline, per-feature ablation (1KB writes) ===\n");
  std::printf("%-28s %8s | %6s %6s %6s %6s %7s | %8s\n", "configuration",
              "RTT[us]", "prep", "csum", "copy", "alloc", "persist",
              "storage");

  {
    RunConfig cfg = base();
    cfg.backend = Backend::lsm;
    rows.push_back({"baseline (NoveLSM-like)", run_experiment(cfg)});
  }
  rows.push_back({"pktstore (all reuse on)", run_experiment(base())});
  {
    RunConfig cfg = base();
    cfg.pkt_opts.reuse_checksum = false;
    rows.push_back({"  - checksum reuse", run_experiment(cfg)});
  }
  {
    RunConfig cfg = base();
    cfg.pkt_opts.zero_copy = false;
    rows.push_back({"  - zero copy", run_experiment(cfg)});
  }
  {
    RunConfig cfg = base();
    cfg.pkt_opts.light_prep = false;
    rows.push_back({"  - light request prep", run_experiment(cfg)});
  }
  {
    RunConfig cfg = base();
    cfg.pkt_opts.reuse_timestamp = false;
    rows.push_back({"  - timestamp reuse", run_experiment(cfg)});
  }
  {
    RunConfig cfg = base();
    cfg.pkt_opts.reuse_checksum = false;
    cfg.pkt_opts.zero_copy = false;
    cfg.pkt_opts.light_prep = false;
    cfg.pkt_opts.reuse_timestamp = false;
    rows.push_back({"  - everything (baseline-ish)", run_experiment(cfg)});
  }
  for (const Row& row : rows) print(row.name, row.r);

  std::printf(
      "\npaper's projected savings: checksum 1.77us, copy 1.14us, plus\n"
      "allocator/request simplification (\"obviated or simplified\", 4.2)\n");

  if (!json_path.empty()) {
    benchio::JsonWriter w;
    w.begin_object();
    benchio::write_metadata(w, "pktstore");
    w.begin_array("results");
    for (const Row& row : rows) {
      const auto& bd = row.r.avg_breakdown;
      w.begin_object();
      w.field("configuration", row.name);
      w.field("mean_rtt_us", row.r.mean_rtt_us());
      w.field("prep_us", bd.prep_ns / 1000.0);
      w.field("checksum_us", bd.checksum_ns / 1000.0);
      w.field("copy_us", bd.copy_ns / 1000.0);
      w.field("alloc_insert_us", bd.alloc_insert_ns / 1000.0);
      w.field("persist_us", bd.persist_ns / 1000.0);
      w.field("ops", static_cast<long long>(row.r.ops));
      benchio::write_flush_per_op(w, row.r.flush, row.r.ops);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    if (!w.write(json_path)) {
      std::fprintf(stderr, "bench_pktstore: cannot write %s\n",
                   json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s (%zu records)\n", json_path.c_str(), rows.size());
  }
  return 0;
}
