// Unit + property tests for pm/: device persistence semantics, crash
// simulation, roots, pm_ptr, pool allocator crash consistency.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "pm/pm_device.h"
#include "pm/pm_pool.h"
#include "pm/pm_ptr.h"

namespace papm::pm {
namespace {

constexpr u64 kDev = 1 << 20;  // 1 MiB test device

std::vector<u8> bytes(std::string_view s) { return {s.begin(), s.end()}; }

class PmDeviceTest : public ::testing::Test {
 protected:
  sim::Env env;
  PmDevice dev{env, kDev};
};

TEST_F(PmDeviceTest, RejectsBadSizes) {
  EXPECT_THROW(PmDevice(env, 100), std::invalid_argument);  // not line-aligned
  EXPECT_THROW(PmDevice(env, 64), std::invalid_argument);   // too small
}

TEST_F(PmDeviceTest, BoundsChecked) {
  EXPECT_THROW((void)dev.at(kDev, 1), std::out_of_range);
  EXPECT_THROW((void)dev.at(kDev - 4, 8), std::out_of_range);
  EXPECT_NO_THROW((void)dev.at(kDev - 8, 8));
}

TEST_F(PmDeviceTest, UnflushedStoreLostOnCrash) {
  const u64 off = dev.data_base();
  dev.store(off, bytes("hello"));
  EXPECT_EQ(std::memcmp(dev.at(off, 5), "hello", 5), 0);
  dev.crash();
  EXPECT_NE(std::memcmp(dev.at(off, 5), "hello", 5), 0);
}

TEST_F(PmDeviceTest, PersistedStoreSurvivesCrash) {
  const u64 off = dev.data_base();
  dev.store(off, bytes("durable!"));
  dev.persist(off, 8);
  dev.crash();
  EXPECT_EQ(std::memcmp(dev.at(off, 8), "durable!", 8), 0);
}

TEST_F(PmDeviceTest, ClwbWithoutSfenceMayOrMayNotSurvive) {
  // Statistically: ~half of unfenced lines survive. Use many lines.
  const u64 base = dev.data_base();
  const int n = 200;
  for (int i = 0; i < n; i++) {
    dev.store(base + static_cast<u64>(i) * kCacheLine, bytes("x"));
    dev.clwb(base + static_cast<u64>(i) * kCacheLine, 1);
  }
  dev.crash();
  int survived = 0;
  for (int i = 0; i < n; i++) {
    survived += (*dev.at(base + static_cast<u64>(i) * kCacheLine, 1) == 'x');
  }
  EXPECT_GT(survived, n / 4);
  EXPECT_LT(survived, 3 * n / 4);
}

TEST_F(PmDeviceTest, RestoreAfterSfenceIsAtomicPerLine) {
  const u64 off = dev.data_base();
  dev.store(off, bytes("AAAA"));
  dev.persist(off, 4);
  dev.store(off, bytes("BBBB"));  // dirty again, not flushed
  dev.crash();
  EXPECT_EQ(std::memcmp(dev.at(off, 4), "AAAA", 4), 0);
}

TEST_F(PmDeviceTest, StoreAfterClwbRedirties) {
  const u64 off = dev.data_base();
  dev.store(off, bytes("old"));
  dev.clwb(off, 3);
  dev.sfence();
  dev.store(off, bytes("new"));  // re-dirties the line
  EXPECT_EQ(dev.dirty_lines(), 1u);
  dev.crash();
  EXPECT_EQ(std::memcmp(dev.at(off, 3), "old", 3), 0);
}

TEST_F(PmDeviceTest, ChargesFlushCosts) {
  const SimTime before = env.now();
  dev.persist(dev.data_base(), 1024);  // 16 lines + fence
  const SimTime charged = env.now() - before;
  EXPECT_EQ(charged, 16 * env.cost.clwb_ns + env.cost.sfence_ns);
}

TEST_F(PmDeviceTest, FlushStatsCount) {
  dev.persist(dev.data_base(), 128);
  EXPECT_EQ(dev.total_clwb(), 2u);
  EXPECT_EQ(dev.total_sfence(), 1u);
}

TEST_F(PmDeviceTest, StoreU64RoundTrip) {
  const u64 off = dev.data_base();
  dev.store_u64(off, 0xdeadbeefcafef00dULL);
  EXPECT_EQ(dev.load_u64(off), 0xdeadbeefcafef00dULL);
}

TEST_F(PmDeviceTest, RootsPersistAcrossCrash) {
  ASSERT_TRUE(dev.set_root("index", 4096).ok());
  ASSERT_TRUE(dev.set_root("pool", 8192).ok());
  dev.crash();
  EXPECT_EQ(dev.get_root("index").value(), 4096u);
  EXPECT_EQ(dev.get_root("pool").value(), 8192u);
  EXPECT_FALSE(dev.get_root("nope").ok());
}

TEST_F(PmDeviceTest, RootOverwriteUpdatesInPlace) {
  ASSERT_TRUE(dev.set_root("x", 1).ok());
  ASSERT_TRUE(dev.set_root("x", 2).ok());
  EXPECT_EQ(dev.get_root("x").value(), 2u);
  // Overwriting must not consume extra slots.
  for (std::size_t i = 1; i < PmDevice::kMaxRoots; i++) {
    ASSERT_TRUE(dev.set_root("slot" + std::to_string(i), i).ok()) << i;
  }
  EXPECT_EQ(dev.set_root("overflow", 99).errc(), Errc::out_of_space);
}

TEST_F(PmDeviceTest, RootNameValidation) {
  EXPECT_EQ(dev.set_root("", 1).errc(), Errc::invalid_argument);
  EXPECT_EQ(dev.set_root(std::string(40, 'a'), 1).errc(), Errc::invalid_argument);
}

TEST_F(PmDeviceTest, PmPtrResolvesAndNullIsFalse) {
  pm_ptr<u64> null;
  EXPECT_TRUE(null.is_null());
  EXPECT_FALSE(static_cast<bool>(null));
  EXPECT_EQ(null.get(dev), nullptr);

  const u64 off = dev.data_base();
  dev.store_u64(off, 77);
  pm_ptr<u64> p(off);
  ASSERT_NE(p.get(dev), nullptr);
  EXPECT_EQ(*p.get(dev), 77u);
  EXPECT_EQ(p.offset(), off);
}

// ---------- PmPool ----------

class PmPoolTest : public ::testing::Test {
 protected:
  sim::Env env;
  PmDevice dev{env, kDev};
  PmPool pool{PmPool::create(dev, "pool", dev.data_base(), kDev / 2)};
};

TEST_F(PmPoolTest, AllocReturnsDistinctAlignedBlocks) {
  std::set<u64> seen;
  for (int i = 0; i < 100; i++) {
    auto r = pool.alloc(100);  // class 128
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value() % 128, 0u);
    EXPECT_TRUE(seen.insert(r.value()).second);
  }
}

TEST_F(PmPoolTest, FreeThenAllocReuses) {
  const u64 a = pool.alloc(64).value();
  pool.free(a, 64);
  const u64 b = pool.alloc(64).value();
  EXPECT_EQ(a, b);
}

TEST_F(PmPoolTest, SizeClassesDoNotMix) {
  const u64 small = pool.alloc(64).value();
  pool.free(small, 64);
  const u64 big = pool.alloc(1024).value();
  EXPECT_NE(small, big);  // 64B freelist must not serve a 1KB request
}

TEST_F(PmPoolTest, LargeAllocationsBypassClasses) {
  auto r = pool.alloc(10000);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value() % kCacheLine, 0u);
}

TEST_F(PmPoolTest, ZeroSizeRejected) {
  EXPECT_EQ(pool.alloc(0).errc(), Errc::invalid_argument);
}

TEST_F(PmPoolTest, ExhaustionReturnsOutOfSpace) {
  u64 last = 0;
  while (true) {
    auto r = pool.alloc(4096);
    if (!r.ok()) {
      EXPECT_EQ(r.errc(), Errc::out_of_space);
      break;
    }
    last = r.value();
  }
  // Freed blocks still serve their class after bump exhaustion.
  pool.free(last, 4096);
  EXPECT_EQ(pool.alloc(4096).value(), last);
}

TEST_F(PmPoolTest, RecoverFindsPoolAndPreservesFreelists) {
  const u64 a = pool.alloc(256).value();
  const u64 b = pool.alloc(256).value();
  pool.free(a, 256);
  dev.crash();
  auto rec = PmPool::recover(dev, "pool");
  ASSERT_TRUE(rec.ok());
  // Freelist head (a) must be served before new bump space.
  const u64 c = rec->alloc(256).value();
  EXPECT_EQ(c, a);
  const u64 d = rec->alloc(256).value();
  EXPECT_NE(d, b);  // b is still owned (leak-not-corrupt: never handed out)
  EXPECT_NE(d, a);
}

TEST_F(PmPoolTest, RecoverUnknownNameFails) {
  EXPECT_EQ(PmPool::recover(dev, "ghost").errc(), Errc::not_found);
}

TEST_F(PmPoolTest, ChargesConfigurableCosts) {
  SimTime t0 = env.now();
  (void)pool.alloc(64);
  EXPECT_GT(env.now() - t0, 0);  // default pm_alloc charge + header persist

  pool.set_charges(0, 0);
  // Remaining cost is only the header persistence.
  t0 = env.now();
  (void)pool.alloc(64);
  const SimTime with_zero_alloc_charge = env.now() - t0;
  EXPECT_EQ(with_zero_alloc_charge, env.cost.clwb_ns + env.cost.sfence_ns);
}

// Property: a crash at an arbitrary point in an alloc/free workload never
// corrupts the pool — recovery always yields a pool whose allocations are
// disjoint, aligned blocks. Blocks popped-but-unpublished may leak.
TEST_F(PmPoolTest, CrashNeverCorrupts) {
  Rng rng(99);
  std::vector<std::pair<u64, u64>> live;  // (offset, size)
  for (int round = 0; round < 20; round++) {
    // Random workload burst.
    for (int i = 0; i < 30; i++) {
      if (!live.empty() && rng.chance(0.4)) {
        const auto idx = rng.next_below(live.size());
        pool.free(live[idx].first, live[idx].second);
        live.erase(live.begin() + static_cast<long>(idx));
      } else {
        const u64 sz = PmPool::kClassSizes[rng.next_below(4)];
        auto r = pool.alloc(sz);
        if (r.ok()) live.push_back({r.value(), sz});
      }
    }
    dev.crash();
    live.clear();  // we don't track publication; everything leaks
    auto rec = PmPool::recover(dev, "pool");
    ASSERT_TRUE(rec.ok());
    pool = std::move(rec.value());
    // Post-recovery the pool serves valid, distinct blocks.
    std::set<u64> seen;
    for (int i = 0; i < 20; i++) {
      auto r = pool.alloc(128);
      ASSERT_TRUE(r.ok());
      EXPECT_TRUE(seen.insert(r.value()).second);
      live.push_back({r.value(), 128});
    }
  }
}

}  // namespace
}  // namespace papm::pm
