// Tests for core/: PChain, PktStore and PmFs — the paper's §4.2 design.
// Includes end-to-end ingest from real received TCP packets, checksum
// reuse equivalence, the cost claims (no CRC pass, no copy), crash
// recovery, and the file-system variant.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "core/pktstore.h"
#include "core/pmfs.h"
#include "net/gso.h"
#include "nic/nic.h"

namespace papm::core {
namespace {

using net::PktBuf;

constexpr u64 kDev = 32u << 20;
constexpr u32 kClientIp = 0x0a000001;
constexpr u32 kServerIp = 0x0a000002;
constexpr u16 kPort = 9000;

std::vector<u8> rand_bytes(std::size_t n, u64 seed) {
  Rng rng(seed);
  std::vector<u8> v(n);
  for (auto& b : v) b = static_cast<u8>(rng.next());
  return v;
}

// A PASTE-style server host: packet pool in PM, plus a DRAM client.
struct PmRig {
  explicit PmRig(sim::Env& env)
      : fabric(env),
        dev(env, kDev),
        pmpool(pm::PmPool::create(dev, "pkts", dev.data_base(), kDev - 4096)),
        arena(dev, pmpool),
        pool(env, arena),
        snic(env, fabric, kServerIp, pool),
        sstack(env, snic, pool,
               [] {
                 net::TcpStack::Options o;
                 o.ip = kServerIp;
                 o.busy_poll = true;
                 return o;
               }()),
        carena(env),
        cpool(env, carena),
        cnic(env, fabric, kClientIp, cpool),
        cstack(env, cnic, cpool, [] {
          net::TcpStack::Options o;
          o.ip = kClientIp;
          return o;
        }()) {
    // The §4.2 allocator unification: the packet pool is a freelist.
    pmpool.set_charges(env.cost.pool_alloc_ns, env.cost.pool_alloc_ns / 2);
    snic.set_sink([this](PktBuf* pb) { sstack.rx(pb); });
    cnic.set_sink([this](PktBuf* pb) { cstack.rx(pb); });
  }

  // Sends `payload` from the client; returns the packets the server's
  // zero-copy receive path yields.
  std::vector<PktBuf*> deliver(sim::Env& env, std::span<const u8> payload) {
    std::vector<PktBuf*> got;
    if (!listening) {
      EXPECT_TRUE(sstack
                      .listen(kPort,
                              [&, this](net::TcpConn& c) {
                                c.on_readable = [this](net::TcpConn& cc) {
                                  for (PktBuf* pb : cc.read_pkts()) {
                                    inbox.push_back(pb);
                                  }
                                };
                              })
                      .ok());
      conn = cstack.connect(kServerIp, kPort);
      listening = true;
    }
    env.engine.run_until_idle();
    (void)conn->send(payload);
    env.engine.run_until_idle();
    got.swap(inbox);
    return got;
  }

  nic::Fabric fabric;
  pm::PmDevice dev;
  pm::PmPool pmpool;
  net::PmArena arena;
  net::PktBufPool pool;
  nic::Nic snic;
  net::TcpStack sstack;
  net::HeapArena carena;
  net::PktBufPool cpool;
  nic::Nic cnic;
  net::TcpStack cstack;
  net::TcpConn* conn = nullptr;
  std::vector<PktBuf*> inbox;
  bool listening = false;
};

class PktStoreTest : public ::testing::Test {
 protected:
  sim::Env env;
  PmRig rig{env};
  PktStore store{PktStore::create(rig.pool, "store")};
};

TEST_F(PktStoreTest, IngestReceivedPacketZeroCopy) {
  const auto value = rand_bytes(1024, 1);
  auto pkts = rig.deliver(env, value);
  ASSERT_EQ(pkts.size(), 1u);
  PktBuf* pb = pkts[0];

  ASSERT_TRUE(store.put_pkt("key1", *pb, pb->payload_off, 1024).ok());
  const u64 stored_buffer = pb->data_h;
  rig.pool.free(pb);  // network stack is done with the packet

  // Value readable and checksum-verified.
  const auto got = store.get("key1");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), value);

  // Zero copy: the stored bytes are the DMA'd packet buffer itself.
  const auto st = store.stat("key1");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->len, 1024u);
  EXPECT_EQ(st->segments, 1u);
  EXPECT_EQ(st->csum_kind, CsumKind::inet16);
  EXPECT_GT(st->hw_tstamp, 0);  // NIC timestamp reused
  const u8* in_pm = rig.dev.at(stored_buffer, 64);
  (void)in_pm;  // buffer still resolvable inside the PM device
}

TEST_F(PktStoreTest, ChecksumReuseMatchesDirectComputation) {
  // Value preceded by a fake HTTP header inside the same payload: the
  // stored checksum must cover only the value slice.
  std::vector<u8> payload;
  const std::string header = "PUT /kv/key2 HTTP/1.1\r\nContent-Length: 500\r\n\r\n";
  payload.insert(payload.end(), header.begin(), header.end());
  const auto value = rand_bytes(500, 2);
  payload.insert(payload.end(), value.begin(), value.end());

  auto pkts = rig.deliver(env, payload);
  ASSERT_EQ(pkts.size(), 1u);
  PktBuf* pb = pkts[0];
  const u32 val_off = pb->payload_off + static_cast<u32>(header.size());
  ASSERT_TRUE(store.put_pkt("key2", *pb, val_off, 500).ok());
  rig.pool.free(pb);

  EXPECT_TRUE(store.verify("key2").ok());
  EXPECT_EQ(store.get("key2").value(), value);
}

TEST_F(PktStoreTest, ReuseSkipsChecksumAndCopyCosts) {
  const auto value = rand_bytes(1024, 3);
  auto p1 = rig.deliver(env, value);
  ASSERT_EQ(p1.size(), 1u);

  storage::OpBreakdown reuse_bd;
  ASSERT_TRUE(
      store.put_pkt("reuse", *p1[0], p1[0]->payload_off, 1024, &reuse_bd).ok());
  rig.pool.free(p1[0]);

  PktStoreOptions no_reuse;
  no_reuse.reuse_checksum = false;
  no_reuse.zero_copy = false;
  no_reuse.light_prep = false;
  auto baseline_like = PktStore::create(rig.pool, "noreuse", no_reuse);
  auto p2 = rig.deliver(env, value);
  ASSERT_EQ(p2.size(), 1u);
  storage::OpBreakdown plain_bd;
  ASSERT_TRUE(baseline_like
                  .put_pkt("reuse", *p2[0], p2[0]->payload_off, 1024, &plain_bd)
                  .ok());
  rig.pool.free(p2[0]);

  // The headline claims: checksum ~free (saves ~1.77 us), copy ~free
  // (saves ~1.14 us), prep lighter (saves ~0.58 us).
  EXPECT_LT(reuse_bd.checksum_ns, 200);
  EXPECT_GT(plain_bd.checksum_ns, 1500);
  EXPECT_LT(reuse_bd.copy_ns, 100);
  EXPECT_GT(plain_bd.copy_ns, 1000);
  EXPECT_LT(reuse_bd.prep_ns, 200);
  EXPECT_GT(plain_bd.prep_ns, 600);
  // Persistence is not avoidable either way (1.94 us for 1 KB).
  EXPECT_NEAR(static_cast<double>(reuse_bd.persist_ns), 1940, 120);
  EXPECT_NEAR(static_cast<double>(plain_bd.persist_ns), 1940, 120);
}

TEST_F(PktStoreTest, MultiSegmentValueChains) {
  // Three segments of one logical value.
  const auto value = rand_bytes(3500, 4);
  std::vector<PktBuf*> pkts;
  std::vector<u32> offs, lens;
  std::size_t at = 0;
  while (at < value.size()) {
    const u32 n = static_cast<u32>(std::min<std::size_t>(1460, value.size() - at));
    auto got = rig.deliver(env, std::span<const u8>(value.data() + at, n));
    ASSERT_EQ(got.size(), 1u);
    pkts.push_back(got[0]);
    offs.push_back(got[0]->payload_off);
    lens.push_back(n);
    at += n;
  }
  ASSERT_TRUE(store.put_pkts("chain", pkts, offs, lens).ok());
  for (auto* pb : pkts) rig.pool.free(pb);

  const auto st = store.stat("chain");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->len, 3500u);
  EXPECT_EQ(st->segments, 3u);
  EXPECT_TRUE(store.verify("chain").ok());
  EXPECT_EQ(store.get("chain").value(), value);
}

TEST_F(PktStoreTest, PutBytesPath) {
  const auto value = rand_bytes(5000, 5);
  ASSERT_TRUE(store.put_bytes("appkey", value).ok());
  EXPECT_EQ(store.get("appkey").value(), value);
  const auto st = store.stat("appkey");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->segments, (5000 + net::kMss - 1) / net::kMss);
  EXPECT_TRUE(store.verify("appkey").ok());
}

TEST_F(PktStoreTest, EmitPktsZeroCopyRoundTrip) {
  const auto value = rand_bytes(4000, 6);
  ASSERT_TRUE(store.put_bytes("emit", value).ok());
  auto pkts = store.get_as_pkts("emit");
  ASSERT_TRUE(pkts.ok());
  std::vector<u8> assembled;
  for (PktBuf* pb : pkts.value()) {
    const auto bytes = net::super_payload(rig.pool, *pb);
    assembled.insert(assembled.end(), bytes.begin(), bytes.end());
    EXPECT_EQ(pb->nr_frags, 1);  // value rides as a frag, not a copy
    rig.pool.free(pb);
  }
  EXPECT_EQ(assembled, value);
  // Freeing the emitted packets must not free the stored data.
  EXPECT_EQ(store.get("emit").value(), value);
}

TEST_F(PktStoreTest, OverwriteReplacesAndFreesOldChain) {
  ASSERT_TRUE(store.put_bytes("k", rand_bytes(1000, 7)).ok());
  const u64 before = rig.pmpool.allocated_bytes();
  ASSERT_TRUE(store.put_bytes("k", rand_bytes(1000, 8)).ok());
  EXPECT_EQ(rig.pmpool.allocated_bytes(), before);  // steady state
  EXPECT_EQ(store.get("k").value(), rand_bytes(1000, 8));
}

TEST_F(PktStoreTest, EraseReclaimsEverything) {
  const u64 empty = rig.pmpool.allocated_bytes();
  ASSERT_TRUE(store.put_bytes("k", rand_bytes(2000, 9)).ok());
  EXPECT_GT(rig.pmpool.allocated_bytes(), empty);
  EXPECT_TRUE(store.erase("k"));
  EXPECT_FALSE(store.erase("k"));
  EXPECT_EQ(store.get("k").errc(), Errc::not_found);
  // Value chain, metadata and index node all returned (minus nothing).
  EXPECT_EQ(rig.pmpool.allocated_bytes(), empty);
}

TEST_F(PktStoreTest, CorruptionDetectedInet16) {
  const auto value = rand_bytes(800, 10);
  auto pkts = rig.deliver(env, value);
  ASSERT_TRUE(store.put_pkt("k", *pkts[0], pkts[0]->payload_off, 800).ok());
  const u64 data_off = pkts[0]->data_h + pkts[0]->payload_off;
  rig.pool.free(pkts[0]);
  // Flip a stored byte behind the store's back.
  u8 evil = *rig.dev.at(data_off + 13, 1) ^ 0x20;
  rig.dev.store(data_off + 13, {&evil, 1});
  EXPECT_EQ(store.verify("k").errc(), Errc::corrupted);
  EXPECT_EQ(store.get("k").errc(), Errc::corrupted);
}

TEST_F(PktStoreTest, CorruptionDetectedCrc32c) {
  PktStoreOptions o;
  o.reuse_checksum = false;
  auto s2 = PktStore::create(rig.pool, "crc", o);
  const auto value = rand_bytes(800, 11);
  auto pkts = rig.deliver(env, value);
  ASSERT_TRUE(s2.put_pkt("k", *pkts[0], pkts[0]->payload_off, 800).ok());
  const u64 data_off = pkts[0]->data_h + pkts[0]->payload_off;
  rig.pool.free(pkts[0]);
  EXPECT_EQ(s2.stat("k")->csum_kind, CsumKind::crc32c);
  u8 evil = *rig.dev.at(data_off + 5, 1) ^ 0x01;
  rig.dev.store(data_off + 5, {&evil, 1});
  EXPECT_EQ(s2.verify("k").errc(), Errc::corrupted);
}

TEST_F(PktStoreTest, ScanOrderedWithMetadata) {
  ASSERT_TRUE(store.put_bytes("a", rand_bytes(10, 12)).ok());
  ASSERT_TRUE(store.put_bytes("b", rand_bytes(20, 13)).ok());
  ASSERT_TRUE(store.put_bytes("c", rand_bytes(30, 14)).ok());
  std::string keys;
  std::vector<u64> lens;
  store.scan("", "", [&](std::string_view k, const PktStore::ValueMeta& m) {
    keys += k;
    lens.push_back(m.len);
    return true;
  });
  EXPECT_EQ(keys, "abc");
  EXPECT_EQ(lens, (std::vector<u64>{10, 20, 30}));
}

TEST_F(PktStoreTest, CrashRecoveryRestoresEverything) {
  std::map<std::string, std::vector<u8>> model;
  for (int i = 0; i < 60; i++) {
    const std::string key = "key" + std::to_string(i);
    auto v = rand_bytes(100 + static_cast<std::size_t>(i) * 37, 100 + i);
    ASSERT_TRUE(store.put_bytes(key, v).ok());
    model[key] = std::move(v);
  }
  // Also one network-ingested value.
  const auto netval = rand_bytes(1024, 999);
  auto pkts = rig.deliver(env, netval);
  ASSERT_TRUE(store.put_pkt("netkey", *pkts[0], pkts[0]->payload_off, 1024).ok());
  rig.pool.free(pkts[0]);
  model["netkey"] = netval;

  rig.dev.crash();

  // Fresh volatile state, recovered persistent state.
  auto pmpool2 = pm::PmPool::recover(rig.dev, "pkts");
  ASSERT_TRUE(pmpool2.ok());
  net::PmArena arena2(rig.dev, pmpool2.value());
  net::PktBufPool pool2(env, arena2);
  auto rec = PktStore::recover(pool2, "store");
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->size(), model.size());
  EXPECT_TRUE(rec->validate().ok());
  for (const auto& [k, v] : model) {
    ASSERT_TRUE(rec->verify(k).ok()) << k;
    EXPECT_EQ(rec->get(k).value(), v) << k;
  }
  // Post-recovery mutation paths still work (restore_ref machinery).
  EXPECT_TRUE(rec->erase("key0"));
  ASSERT_TRUE(rec->put_bytes("new", rand_bytes(64, 1000)).ok());
  EXPECT_TRUE(rec->verify("new").ok());
}

TEST_F(PktStoreTest, RequiresPmBackedPool) {
  net::HeapArena heap(env);
  net::PktBufPool dram_pool(env, heap);
  EXPECT_THROW(PktStore::create(dram_pool, "bad"), std::invalid_argument);
}

TEST_F(PktStoreTest, TimestampReuseToggle) {
  PktStoreOptions o;
  o.reuse_timestamp = false;
  auto s2 = PktStore::create(rig.pool, "nots", o);
  const auto value = rand_bytes(100, 15);
  auto pkts = rig.deliver(env, value);
  ASSERT_TRUE(s2.put_pkt("k", *pkts[0], pkts[0]->payload_off, 100).ok());
  rig.pool.free(pkts[0]);
  EXPECT_EQ(s2.stat("k")->hw_tstamp, 0);
}

// ---------- PmFs ----------

class PmFsTest : public ::testing::Test {
 protected:
  sim::Env env;
  PmRig rig{env};
  PmFs fs{PmFs::create(rig.pool, "fs")};
};

TEST_F(PmFsTest, WriteReadRoundTrip) {
  const auto data = rand_bytes(10000, 20);
  ASSERT_TRUE(fs.write_file("/data/blob.bin", data).ok());
  EXPECT_EQ(fs.read_file("/data/blob.bin").value(), data);
  EXPECT_TRUE(fs.verify("/data/blob.bin").ok());
}

TEST_F(PmFsTest, EmptyFile) {
  ASSERT_TRUE(fs.write_file("/empty", {}).ok());
  EXPECT_TRUE(fs.read_file("/empty").value().empty());
  EXPECT_EQ(fs.stat("/empty")->size, 0u);
  EXPECT_EQ(fs.stat("/empty")->extents, 0u);
}

TEST_F(PmFsTest, StatReportsExtentsAndTimestamps) {
  const auto data = rand_bytes(5000, 21);
  ASSERT_TRUE(fs.write_file("/f", data).ok());
  const auto st = fs.stat("/f");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 5000u);
  EXPECT_EQ(st->extents, (5000 + net::kMss - 1) / net::kMss);
  EXPECT_GT(st->mtime, 0);
}

TEST_F(PmFsTest, IngestFromNetworkPackets) {
  const auto data = rand_bytes(1400, 22);
  auto pkts = rig.deliver(env, data);
  ASSERT_EQ(pkts.size(), 1u);
  const u32 offs[1] = {pkts[0]->payload_off};
  const u32 lens[1] = {1400};
  ASSERT_TRUE(fs.ingest_file("/net/file", pkts, offs, lens).ok());
  rig.pool.free(pkts[0]);
  EXPECT_EQ(fs.read_file("/net/file").value(), data);
  // mtime comes from the NIC hardware timestamp.
  EXPECT_GT(fs.stat("/net/file")->mtime, 0);
  EXPECT_TRUE(fs.verify("/net/file").ok());
}

TEST_F(PmFsTest, OverwriteReplacesContents) {
  ASSERT_TRUE(fs.write_file("/f", rand_bytes(100, 23)).ok());
  ASSERT_TRUE(fs.write_file("/f", rand_bytes(200, 24)).ok());
  EXPECT_EQ(fs.read_file("/f").value(), rand_bytes(200, 24));
  EXPECT_EQ(fs.file_count(), 1u);
}

TEST_F(PmFsTest, UnlinkReclaims) {
  const u64 empty = rig.pmpool.allocated_bytes();
  ASSERT_TRUE(fs.write_file("/f", rand_bytes(3000, 25)).ok());
  EXPECT_TRUE(fs.unlink("/f"));
  EXPECT_FALSE(fs.unlink("/f"));
  EXPECT_EQ(fs.read_file("/f").errc(), Errc::not_found);
  EXPECT_EQ(rig.pmpool.allocated_bytes(), empty);
}

TEST_F(PmFsTest, ListOrdered) {
  ASSERT_TRUE(fs.write_file("/b", rand_bytes(10, 26)).ok());
  ASSERT_TRUE(fs.write_file("/a", rand_bytes(10, 27)).ok());
  ASSERT_TRUE(fs.write_file("/c", rand_bytes(10, 28)).ok());
  std::string names;
  fs.list([&](std::string_view p, const PmFs::FileStat&) {
    names += p;
    return true;
  });
  EXPECT_EQ(names, "/a/b/c");
}

TEST_F(PmFsTest, EmitPktsSendfileStyle) {
  const auto data = rand_bytes(6000, 29);
  ASSERT_TRUE(fs.write_file("/f", data).ok());
  auto pkts = fs.emit_pkts("/f");
  ASSERT_TRUE(pkts.ok());
  std::vector<u8> assembled;
  for (PktBuf* pb : pkts.value()) {
    const auto bytes = net::super_payload(rig.pool, *pb);
    assembled.insert(assembled.end(), bytes.begin(), bytes.end());
    rig.pool.free(pb);
  }
  EXPECT_EQ(assembled, data);
}

TEST_F(PmFsTest, NameValidation) {
  EXPECT_EQ(fs.write_file("", rand_bytes(1, 30)).errc(), Errc::invalid_argument);
  EXPECT_EQ(fs.write_file(std::string(200, 'x'), rand_bytes(1, 31)).errc(),
            Errc::invalid_argument);
}

TEST_F(PmFsTest, CrashRecovery) {
  std::map<std::string, std::vector<u8>> model;
  for (int i = 0; i < 20; i++) {
    const std::string path = "/dir/file" + std::to_string(i);
    auto data = rand_bytes(500 + static_cast<std::size_t>(i) * 211, 300 + i);
    ASSERT_TRUE(fs.write_file(path, data).ok());
    model[path] = std::move(data);
  }
  rig.dev.crash();

  auto pmpool2 = pm::PmPool::recover(rig.dev, "pkts");
  ASSERT_TRUE(pmpool2.ok());
  net::PmArena arena2(rig.dev, pmpool2.value());
  net::PktBufPool pool2(env, arena2);
  auto rec = PmFs::recover(pool2, "fs");
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->file_count(), model.size());
  for (const auto& [p, d] : model) {
    ASSERT_TRUE(rec->verify(p).ok()) << p;
    EXPECT_EQ(rec->read_file(p).value(), d) << p;
  }
  EXPECT_TRUE(rec->unlink("/dir/file0"));
  ASSERT_TRUE(rec->write_file("/post-crash", rand_bytes(100, 888)).ok());
  EXPECT_EQ(rec->file_count(), model.size());
}

}  // namespace
}  // namespace papm::core
