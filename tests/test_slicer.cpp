// Tests for the NIC payload slicer and the index-insert offload engine:
// sliced delivery is byte-identical to the contiguous path (payload
// bytes AND the checksum-complete narrowing), survives out-of-order
// reassembly, zero-copy adoption skips the persist bill (the DMA already
// placed the payload durably), and the host/NIC insert policy picks the
// right side of the measured crossover.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/pktstore.h"
#include "net/gso.h"
#include "nic/nic.h"

namespace papm::core {
namespace {

using net::PktBuf;

constexpr u64 kDev = 32u << 20;
constexpr u32 kClientIp = 0x0a000001;
constexpr u32 kServerIp = 0x0a000002;
constexpr u16 kPort = 9000;

std::vector<u8> rand_bytes(std::size_t n, u64 seed) {
  Rng rng(seed);
  std::vector<u8> v(n);
  for (auto& b : v) b = static_cast<u8>(rng.next());
  return v;
}

// The PmRig of test_core.cpp, parameterized over the server NIC options
// and the fabric (for reorder/loss sweeps). The client stays DRAM-pooled
// — with slicing requested on both NICs it doubles as the fall-back
// check: a heap arena must never yield sliced descriptors.
struct SliceRig {
  SliceRig(sim::Env& env, nic::Nic::Options nopts,
           nic::Fabric::Options fopts = {})
      : fabric(env, fopts),
        dev(env, kDev),
        pmpool(pm::PmPool::create(dev, "pkts", dev.data_base(), kDev - 4096)),
        arena(dev, pmpool),
        pool(env, arena),
        snic(env, fabric, kServerIp, pool, nopts),
        sstack(env, snic, pool,
               [] {
                 net::TcpStack::Options o;
                 o.ip = kServerIp;
                 o.busy_poll = true;
                 return o;
               }()),
        carena(env),
        cpool(env, carena),
        cnic(env, fabric, kClientIp, cpool, nopts),
        cstack(env, cnic, cpool, [] {
          net::TcpStack::Options o;
          o.ip = kClientIp;
          return o;
        }()) {
    pmpool.set_charges(env.cost.pool_alloc_ns, env.cost.pool_alloc_ns / 2);
    snic.set_sink([this](PktBuf* pb) { sstack.rx(pb); });
    cnic.set_sink([this](PktBuf* pb) { cstack.rx(pb); });
  }

  std::vector<PktBuf*> deliver(sim::Env& env, std::span<const u8> payload) {
    std::vector<PktBuf*> got;
    if (!listening) {
      EXPECT_TRUE(sstack
                      .listen(kPort,
                              [&, this](net::TcpConn& c) {
                                c.on_readable = [this](net::TcpConn& cc) {
                                  for (PktBuf* pb : cc.read_pkts()) {
                                    inbox.push_back(pb);
                                  }
                                };
                              })
                      .ok());
      conn = cstack.connect(kServerIp, kPort);
      listening = true;
    }
    env.engine.run_until_idle();
    (void)conn->send(payload);
    env.engine.run_until_idle();
    got.swap(inbox);
    return got;
  }

  nic::Fabric fabric;
  pm::PmDevice dev;
  pm::PmPool pmpool;
  net::PmArena arena;
  net::PktBufPool pool;
  nic::Nic snic;
  net::TcpStack sstack;
  net::HeapArena carena;
  net::PktBufPool cpool;
  nic::Nic cnic;
  net::TcpStack cstack;
  net::TcpConn* conn = nullptr;
  std::vector<PktBuf*> inbox;
  bool listening = false;
};

nic::Nic::Options slicing_on() {
  nic::Nic::Options o;
  o.payload_slicing = true;
  return o;
}

class SlicerTest : public ::testing::Test {
 protected:
  sim::Env env;
  SliceRig rig{env, slicing_on()};
  PktStore store{PktStore::create(rig.pool, "store")};
};

TEST_F(SlicerTest, SlicedDeliveryByteIdenticalToContiguous) {
  if (!net::kSlicerCompiled) GTEST_SKIP() << "slicer compiled out";
  const auto value = rand_bytes(1024, 1);
  auto pkts = rig.deliver(env, value);
  ASSERT_EQ(pkts.size(), 1u);
  PktBuf* pb = pkts[0];
  EXPECT_TRUE(pb->sliced());
  EXPECT_TRUE(pb->csum_verified);

  // Payload readable through the representation-blind accessor.
  const auto got = rig.pool.payload(*pb);
  ASSERT_EQ(got.size(), value.size());
  EXPECT_EQ(std::memcmp(got.data(), value.data(), value.size()), 0);

  // The checksum-complete narrowing must be byte-identical to the
  // contiguous path's: same wire bytes through a non-slicing rig.
  sim::Env env2;
  SliceRig plain{env2, nic::Nic::Options{}};
  auto ppkts = plain.deliver(env2, value);
  ASSERT_EQ(ppkts.size(), 1u);
  EXPECT_FALSE(ppkts[0]->sliced());
  EXPECT_EQ(pb->payload_csum, ppkts[0]->payload_csum);
  EXPECT_EQ(pb->payload_len(), ppkts[0]->payload_len());
  plain.pool.free(ppkts[0]);
  rig.pool.free(pb);
}

TEST_F(SlicerTest, DramPoolFallsBackToContiguous) {
  if (!net::kSlicerCompiled) GTEST_SKIP() << "slicer compiled out";
  const auto value = rand_bytes(600, 2);
  auto pkts = rig.deliver(env, value);  // drives traffic through BOTH nics
  ASSERT_EQ(pkts.size(), 1u);
  rig.pool.free(pkts[0]);
  // The server's PM-pooled queue sliced; the client's DRAM-pooled NIC —
  // same options, heap arena — never does.
  EXPECT_GT(rig.snic.queue_sliced_frames(0), 0u);
  for (u32 q = 0; q < 4; q++) EXPECT_EQ(rig.cnic.queue_sliced_frames(q), 0u);
}

TEST_F(SlicerTest, SlicedPutSkipsPersistAndVerifies) {
  if (!net::kSlicerCompiled) GTEST_SKIP() << "slicer compiled out";
  // Value preceded by an HTTP-style header: the narrowing must subtract
  // the in-payload header bytes from header-side state alone.
  std::vector<u8> payload;
  const std::string header = "PUT /kv/k HTTP/1.1\r\nContent-Length: 700\r\n\r\n";
  payload.insert(payload.end(), header.begin(), header.end());
  const auto value = rand_bytes(700, 3);
  payload.insert(payload.end(), value.begin(), value.end());

  auto pkts = rig.deliver(env, payload);
  ASSERT_EQ(pkts.size(), 1u);
  PktBuf* pb = pkts[0];
  ASSERT_TRUE(pb->sliced());

  storage::OpBreakdown bd;
  const u32 val_off = pb->payload_off + static_cast<u32>(header.size());
  ASSERT_TRUE(store.put_pkt("k", *pb, val_off, 700, &bd).ok());
  rig.pool.free(pb);

  // The DMA already placed the payload durably: no copy, no persist.
  EXPECT_EQ(bd.copy_ns, 0u);
  EXPECT_EQ(bd.persist_ns, 0u);
  EXPECT_LT(bd.checksum_ns, 200u);  // narrowing, not a data pass
  EXPECT_TRUE(store.verify("k").ok());
  EXPECT_EQ(store.get("k").value(), value);
}

TEST_F(SlicerTest, OutOfOrderReassemblyOfSlicedSegments) {
  if (!net::kSlicerCompiled) GTEST_SKIP() << "slicer compiled out";
  sim::Env renv;
  nic::Fabric::Options fopts;
  fopts.reorder_p = 0.35;
  SliceRig rrig{renv, slicing_on(), fopts};
  auto rstore = PktStore::create(rrig.pool, "ooostore");

  // Several multi-segment values: reordered sliced segments must be
  // trimmed/sequenced by TCP exactly like contiguous ones.
  for (int i = 0; i < 8; i++) {
    const auto value = rand_bytes(4000 + static_cast<std::size_t>(i) * 613,
                                  100 + static_cast<u64>(i));
    std::vector<PktBuf*> pkts;
    std::vector<u32> offs, lens;
    std::size_t need = value.size();
    while (need > 0) {
      auto got = rrig.deliver(
          renv, std::span<const u8>(value.data() + (value.size() - need),
                                    std::min<std::size_t>(need, 100000)));
      for (PktBuf* pb : got) {
        EXPECT_TRUE(pb->sliced());
        pkts.push_back(pb);
        offs.push_back(pb->payload_off);
        lens.push_back(pb->payload_len());
        need -= pb->payload_len();
      }
    }
    const std::string key = "ooo" + std::to_string(i);
    ASSERT_TRUE(rstore.put_pkts(key, pkts, offs, lens).ok());
    for (auto* pb : pkts) rrig.pool.free(pb);
    ASSERT_TRUE(rstore.verify(key).ok()) << key;
    EXPECT_EQ(rstore.get(key).value(), value) << key;
  }
  EXPECT_GT(rrig.fabric.reordered(), 0u);  // the sweep actually reordered
}

TEST_F(SlicerTest, InsertPolicyNicOffloadsAndRecovers) {
  if (!net::kSlicerCompiled) GTEST_SKIP() << "slicer compiled out";
  PktStoreOptions o;
  o.insert = InsertPolicy::nic;
  auto s2 = PktStore::create(rig.pool, "nicins", o);

  const auto value = rand_bytes(1024, 4);
  auto pkts = rig.deliver(env, value);
  ASSERT_EQ(pkts.size(), 1u);
  storage::OpBreakdown bd;
  ASSERT_TRUE(s2.put_pkt("k", *pkts[0], pkts[0]->payload_off, 1024, &bd).ok());
  rig.pool.free(pkts[0]);

  // The whole critical region billed as the offloaded command; the host
  // never pays alloc+insert.
  EXPECT_GT(bd.nic_insert_ns, 0u);
  EXPECT_EQ(bd.alloc_insert_ns, 0u);
  EXPECT_EQ(bd.persist_ns, 0u);
  EXPECT_EQ(s2.get("k").value(), value);

  // Engine-written state recovers like host-written state.
  rig.dev.crash();
  auto pmpool2 = pm::PmPool::recover(rig.dev, "pkts");
  ASSERT_TRUE(pmpool2.ok());
  net::PmArena arena2(rig.dev, pmpool2.value());
  net::PktBufPool pool2(env, arena2);
  auto rec = PktStore::recover(pool2, "nicins");
  ASSERT_TRUE(rec.ok());
  ASSERT_TRUE(rec->verify("k").ok());
  EXPECT_EQ(rec->get("k").value(), value);
}

TEST_F(SlicerTest, InsertPolicyAutoFollowsSizeThreshold) {
  if (!net::kSlicerCompiled) GTEST_SKIP() << "slicer compiled out";
  PktStoreOptions o;
  o.insert = InsertPolicy::auto_;
  auto s2 = PktStore::create(rig.pool, "autoins", o);

  // Below nic_insert_min_bytes: host path.
  const auto small = rand_bytes(512, 5);
  auto p1 = rig.deliver(env, small);
  ASSERT_EQ(p1.size(), 1u);
  storage::OpBreakdown small_bd;
  ASSERT_TRUE(
      s2.put_pkt("s", *p1[0], p1[0]->payload_off, 512, &small_bd).ok());
  rig.pool.free(p1[0]);
  EXPECT_EQ(small_bd.nic_insert_ns, 0u);
  EXPECT_GT(small_bd.alloc_insert_ns, 0u);

  // At/above the threshold: offloaded.
  const auto big = rand_bytes(4096, 6);
  auto p2 = rig.deliver(env, big);
  std::vector<u32> offs, lens;
  for (PktBuf* pb : p2) {
    ASSERT_TRUE(pb->sliced());
    offs.push_back(pb->payload_off);
    lens.push_back(pb->payload_len());
  }
  storage::OpBreakdown big_bd;
  ASSERT_TRUE(s2.put_pkts("b", p2, offs, lens, &big_bd).ok());
  for (auto* pb : p2) rig.pool.free(pb);
  EXPECT_GT(big_bd.nic_insert_ns, 0u);
  EXPECT_EQ(big_bd.alloc_insert_ns, 0u);
  EXPECT_EQ(s2.get("b").value(), big);
}

TEST_F(SlicerTest, PolicyNicFallsBackOnUnslicedPackets) {
  if (!net::kSlicerCompiled) GTEST_SKIP() << "slicer compiled out";
  sim::Env env2;
  SliceRig plain{env2, nic::Nic::Options{}};  // slicing off
  PktStoreOptions o;
  o.insert = InsertPolicy::nic;
  auto s2 = PktStore::create(plain.pool, "fallback", o);
  const auto value = rand_bytes(1024, 7);
  auto pkts = plain.deliver(env2, value);
  ASSERT_EQ(pkts.size(), 1u);
  ASSERT_FALSE(pkts[0]->sliced());
  storage::OpBreakdown bd;
  ASSERT_TRUE(
      s2.put_pkt("k", *pkts[0], pkts[0]->payload_off, 1024, &bd).ok());
  plain.pool.free(pkts[0]);
  // The engine only takes sliced-slot descriptors: host path used.
  EXPECT_EQ(bd.nic_insert_ns, 0u);
  EXPECT_GT(bd.alloc_insert_ns, 0u);
  EXPECT_EQ(s2.get("k").value(), value);
}

TEST_F(SlicerTest, SlicedCloneAndFreeRefcountTheSlice) {
  if (!net::kSlicerCompiled) GTEST_SKIP() << "slicer compiled out";
  const auto value = rand_bytes(900, 8);
  auto pkts = rig.deliver(env, value);
  ASSERT_EQ(pkts.size(), 1u);
  PktBuf* pb = pkts[0];
  ASSERT_TRUE(pb->sliced());
  const u64 before = rig.pmpool.allocated_bytes();
  PktBuf* c = rig.pool.clone(*pb);
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->sliced());
  rig.pool.free(pb);
  // Clone still readable after the original is gone.
  const auto got = rig.pool.payload(*c);
  EXPECT_EQ(std::memcmp(got.data(), value.data(), value.size()), 0);
  rig.pool.free(c);
  EXPECT_LT(rig.pmpool.allocated_bytes(), before);  // slice + hdr released
}

TEST_F(SlicerTest, CorruptedSliceDetected) {
  if (!net::kSlicerCompiled) GTEST_SKIP() << "slicer compiled out";
  const auto value = rand_bytes(800, 9);
  auto pkts = rig.deliver(env, value);
  ASSERT_EQ(pkts.size(), 1u);
  ASSERT_TRUE(pkts[0]->sliced());
  const u64 slice_off = pkts[0]->slice_h + pkts[0]->slice_off;
  ASSERT_TRUE(
      store.put_pkt("k", *pkts[0], pkts[0]->payload_off, 800).ok());
  rig.pool.free(pkts[0]);
  u8 evil = *rig.dev.at(slice_off + 13, 1) ^ 0x20;
  rig.dev.store(slice_off + 13, {&evil, 1});
  EXPECT_EQ(store.verify("k").errc(), Errc::corrupted);
  EXPECT_EQ(store.get("k").errc(), Errc::corrupted);
}

}  // namespace
}  // namespace papm::core
