// Unit tests for sim/: clock, event engine ordering/determinism, cost
// model arithmetic.
#include <gtest/gtest.h>

#include <vector>

#include "sim/env.h"

namespace papm::sim {
namespace {

TEST(Clock, AdvancesMonotonically) {
  Clock c;
  EXPECT_EQ(c.now(), 0);
  c.advance(100);
  EXPECT_EQ(c.now(), 100);
  c.advance(0);
  c.advance(-5);  // negative charges are ignored
  EXPECT_EQ(c.now(), 100);
  c.jump_to(50);  // never moves backwards
  EXPECT_EQ(c.now(), 100);
  c.jump_to(200);
  EXPECT_EQ(c.now(), 200);
}

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  e.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30);
}

TEST(Engine, TiesBreakInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; i++) {
    e.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  e.run_until_idle();
  for (int i = 0; i < 10; i++) EXPECT_EQ(order[i], i);
}

TEST(Engine, EventsCanScheduleEvents) {
  Engine e;
  int fired = 0;
  std::function<void()> chain = [&] {
    fired++;
    if (fired < 5) e.schedule_in(10, chain);
  };
  e.schedule_in(10, chain);
  e.run_until_idle();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(e.now(), 50);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  int fired = 0;
  e.schedule_at(10, [&] { fired++; });
  e.schedule_at(100, [&] { fired++; });
  e.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), 50);
  EXPECT_EQ(e.pending(), 1u);
  e.run_until_idle();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, PastScheduleClampsToNow) {
  Engine e;
  e.schedule_at(100, [] {});
  e.run_until_idle();
  SimTime fired_at = -1;
  e.schedule_at(10, [&] { fired_at = e.now(); });  // in the past
  e.run_until_idle();
  EXPECT_EQ(fired_at, 100);
}

TEST(Engine, ResetClearsEverything) {
  Engine e;
  e.schedule_at(10, [] {});
  e.reset();
  EXPECT_EQ(e.pending(), 0u);
  EXPECT_EQ(e.now(), 0);
}

TEST(CostModel, PersistCostCountsLines) {
  CostModel m;
  // 1 KB = 16 lines: the Table 1 persistence row (1.94 us).
  EXPECT_EQ(m.persist_cost(1024), 16 * m.clwb_ns + m.sfence_ns);
  EXPECT_NEAR(static_cast<double>(m.persist_cost(1024)), 1940.0, 60.0);
  // A single byte still flushes a whole line.
  EXPECT_EQ(m.persist_cost(1), m.clwb_ns + m.sfence_ns);
  // Straddling is the caller's problem; 65 bytes = 2 lines.
  EXPECT_EQ(m.persist_cost(65), 2 * m.clwb_ns + m.sfence_ns);
}

TEST(CostModel, Crc32cCalibratedToTable1) {
  CostModel m;
  // Table 1: checksum of a 1 KB value costs 1.77 us.
  EXPECT_NEAR(static_cast<double>(m.crc32c_cost(1024)), 1770.0, 60.0);
}

TEST(CostModel, CopyCalibratedToTable1) {
  CostModel m;
  // Table 1: copying a 1 KB value costs 1.14 us.
  EXPECT_NEAR(static_cast<double>(m.copy_cost(1024)), 1140.0, 40.0);
}

TEST(CostModel, WireCostAt25Gbps) {
  CostModel m;
  // 25 Gbit/s = 0.32 ns/byte; 1500 B frame = 480 ns.
  EXPECT_NEAR(static_cast<double>(m.wire_cost(1500)), 480.0, 1.0);
}

TEST(CostModel, NetScaleAppliesToWire) {
  CostModel m;
  m.net_scale = 0.5;
  EXPECT_EQ(m.wire_cost(1000), m.scaled(static_cast<SimTime>(320)));
}

TEST(CostModel, HomaPresetIsFaster) {
  const CostModel tcp;
  const CostModel homa = CostModel::homa_like();
  EXPECT_LT(homa.client_stack_rx_ns, tcp.client_stack_rx_ns);
  EXPECT_LT(homa.server_stack_rx_ns, tcp.server_stack_rx_ns);
  // Storage-side constants must be untouched: the ablation isolates
  // networking.
  EXPECT_EQ(homa.clwb_ns, tcp.clwb_ns);
  EXPECT_EQ(homa.crc32c_ns_per_byte, tcp.crc32c_ns_per_byte);
}

TEST(Env, SharedClock) {
  Env env;
  env.clock().advance(42);
  EXPECT_EQ(env.now(), 42);
  EXPECT_EQ(env.engine.now(), 42);
}

}  // namespace
}  // namespace papm::sim
