// Unit + property tests for the intrusive red-black tree, checked against
// std::multimap as the model and the red-black invariants validator.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "container/rbtree.h"

namespace papm::container {
namespace {

struct Item {
  u32 seq = 0;
  int tag = 0;
  RbHook hook;
};

using Tree = RbTree<Item, u32, &Item::hook, &Item::seq>;

TEST(RbTree, EmptyTree) {
  Tree t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.first(), nullptr);
  EXPECT_EQ(t.last(), nullptr);
  EXPECT_EQ(t.find(5), nullptr);
  EXPECT_EQ(t.lower_bound(0), nullptr);
  EXPECT_GE(t.validate(), 0);
}

TEST(RbTree, SingleElement) {
  Tree t;
  Item a{10, 0, {}};
  t.insert(a);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.find(10), &a);
  EXPECT_EQ(t.first(), &a);
  EXPECT_EQ(t.last(), &a);
  EXPECT_EQ(t.next(a), nullptr);
  t.erase(a);
  EXPECT_TRUE(t.empty());
  EXPECT_GE(t.validate(), 0);
}

TEST(RbTree, InOrderIterationSorted) {
  Tree t;
  std::vector<std::unique_ptr<Item>> items;
  Rng rng(3);
  for (int i = 0; i < 500; i++) {
    items.push_back(std::make_unique<Item>(Item{static_cast<u32>(rng.next()), i, {}}));
    t.insert(*items.back());
  }
  ASSERT_GE(t.validate(), 0);
  u32 prev = 0;
  int count = 0;
  for (Item* it = t.first(); it != nullptr; it = t.next(*it)) {
    if (count > 0) EXPECT_LE(prev, it->seq);
    prev = it->seq;
    count++;
  }
  EXPECT_EQ(count, 500);
}

TEST(RbTree, LowerBoundSemantics) {
  Tree t;
  Item a{10, 0, {}}, b{20, 0, {}}, c{30, 0, {}};
  t.insert(b);
  t.insert(a);
  t.insert(c);
  EXPECT_EQ(t.lower_bound(5), &a);
  EXPECT_EQ(t.lower_bound(10), &a);
  EXPECT_EQ(t.lower_bound(11), &b);
  EXPECT_EQ(t.lower_bound(20), &b);
  EXPECT_EQ(t.lower_bound(25), &c);
  EXPECT_EQ(t.lower_bound(31), nullptr);
}

TEST(RbTree, DuplicateKeysStableOrder) {
  Tree t;
  Item a{7, 1, {}}, b{7, 2, {}}, c{7, 3, {}};
  t.insert(a);
  t.insert(b);
  t.insert(c);
  ASSERT_GE(t.validate(), 0);
  Item* it = t.find(7);
  ASSERT_NE(it, nullptr);
  EXPECT_EQ(it->tag, 1);  // first inserted among equals
  it = t.next(*it);
  ASSERT_NE(it, nullptr);
  EXPECT_EQ(it->tag, 2);
  it = t.next(*it);
  ASSERT_NE(it, nullptr);
  EXPECT_EQ(it->tag, 3);
}

TEST(RbTree, EraseMiddleKeepsOrder) {
  Tree t;
  std::vector<std::unique_ptr<Item>> items;
  for (u32 i = 0; i < 100; i++) {
    items.push_back(std::make_unique<Item>(Item{i, 0, {}}));
    t.insert(*items.back());
  }
  for (u32 i = 1; i < 100; i += 2) {
    t.erase(*items[i]);
    ASSERT_GE(t.validate(), 0) << "after erasing " << i;
  }
  EXPECT_EQ(t.size(), 50u);
  u32 expect = 0;
  for (Item* it = t.first(); it != nullptr; it = t.next(*it)) {
    EXPECT_EQ(it->seq, expect);
    expect += 2;
  }
}

// Property: a random interleaving of inserts and erases matches
// std::multimap and preserves the red-black invariants throughout.
class RbTreeFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(RbTreeFuzz, MatchesMultimapModel) {
  Tree t;
  std::multimap<u32, Item*> model;
  std::vector<std::unique_ptr<Item>> owned;
  Rng rng(GetParam());

  for (int step = 0; step < 3000; step++) {
    const bool do_insert = model.empty() || rng.chance(0.6);
    if (do_insert) {
      const u32 key = static_cast<u32>(rng.next_below(500));
      owned.push_back(std::make_unique<Item>(Item{key, step, {}}));
      t.insert(*owned.back());
      model.emplace(key, owned.back().get());
    } else {
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.next_below(model.size())));
      t.erase(*it->second);
      model.erase(it);
    }
    if (step % 100 == 0) ASSERT_GE(t.validate(), 0) << "step " << step;
    ASSERT_EQ(t.size(), model.size());
  }
  ASSERT_GE(t.validate(), 0);

  // Full in-order comparison at the end.
  auto mit = model.begin();
  for (Item* it = t.first(); it != nullptr; it = t.next(*it), ++mit) {
    ASSERT_NE(mit, model.end());
    EXPECT_EQ(it->seq, mit->first);
  }
  EXPECT_EQ(mit, model.end());

  // lower_bound agrees with the model on every probe.
  for (u32 k = 0; k < 510; k += 3) {
    Item* lb = t.lower_bound(k);
    auto mlb = model.lower_bound(k);
    if (mlb == model.end()) {
      EXPECT_EQ(lb, nullptr) << "key " << k;
    } else {
      ASSERT_NE(lb, nullptr) << "key " << k;
      EXPECT_EQ(lb->seq, mlb->first) << "key " << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RbTreeFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 77, 1234, 99999));

// Sequence-number wrap scenario: TCP uses the tree with serial-number
// keys; here we only assert the tree handles the full u32 domain.
TEST(RbTree, ExtremeKeys) {
  Tree t;
  Item lo{0, 0, {}}, hi{0xffffffffu, 0, {}}, mid{0x80000000u, 0, {}};
  t.insert(hi);
  t.insert(lo);
  t.insert(mid);
  ASSERT_GE(t.validate(), 0);
  EXPECT_EQ(t.first(), &lo);
  EXPECT_EQ(t.last(), &hi);
}

}  // namespace
}  // namespace papm::container
