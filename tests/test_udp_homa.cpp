// Tests for the datagram substrate (UDP), the MICA-like volatile store,
// and the Homa-like message transport (§2.2 / §5.2 extensions).
#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "core/pktstore.h"
#include "net/homa.h"
#include "nic/nic.h"
#include "storage/volatile_kv.h"

namespace papm::net {
namespace {

constexpr u32 kAIp = 0x0a000001;
constexpr u32 kBIp = 0x0a000002;

std::vector<u8> rand_bytes(std::size_t n, u64 seed) {
  Rng rng(seed);
  std::vector<u8> v(n);
  for (auto& b : v) b = static_cast<u8>(rng.next());
  return v;
}

struct UdpHost {
  UdpHost(sim::Env& env, nic::Fabric& fabric, u32 ip, bool bypass)
      : arena(env),
        pool(env, arena),
        nic(env, fabric, ip, pool),
        udp(env, nic, pool,
            [&] {
              UdpStack::Options o;
              o.ip = ip;
              o.kernel_bypass = bypass;
              return o;
            }()) {
    nic.set_sink([this](PktBuf* pb) {
      ASSERT_EQ(pb->l4_proto, kIpProtoUdp);
      udp.rx(pb);
    });
  }
  HeapArena arena;
  PktBufPool pool;
  nic::Nic nic;
  UdpStack udp;
};

class UdpTest : public ::testing::Test {
 protected:
  sim::Env env;
  nic::Fabric fabric{env};
  UdpHost a{env, fabric, kAIp, false};
  UdpHost b{env, fabric, kBIp, true};
};

TEST_F(UdpTest, DatagramRoundTrip) {
  std::vector<u8> got;
  u32 got_ip = 0;
  u16 got_port = 0;
  ASSERT_TRUE(b.udp
                  .bind(5000,
                        [&](u32 ip, u16 port, PktBuf* pb) {
                          const auto p = b.pool.payload(*pb);
                          got.assign(p.begin(), p.end());
                          got_ip = ip;
                          got_port = port;
                          b.pool.free(pb);
                        })
                  .ok());
  const auto data = rand_bytes(700, 1);
  ASSERT_TRUE(a.udp.send_to(kBIp, 5000, 6000, data).ok());
  env.engine.run_until_idle();
  EXPECT_EQ(got, data);
  EXPECT_EQ(got_ip, kAIp);
  EXPECT_EQ(got_port, 6000);
  EXPECT_EQ(b.udp.datagrams_rx(), 1u);
}

TEST_F(UdpTest, ChecksumVerifiedAndDerived) {
  PktBuf* got = nullptr;
  ASSERT_TRUE(b.udp.bind(5000, [&](u32, u16, PktBuf* pb) { got = pb; }).ok());
  const auto data = rand_bytes(512, 2);
  ASSERT_TRUE(a.udp.send_to(kBIp, 5000, 6000, data).ok());
  env.engine.run_until_idle();
  ASSERT_NE(got, nullptr);
  EXPECT_TRUE(got->csum_verified);
  EXPECT_EQ(got->payload_csum, inet_checksum(data));
  b.pool.free(got);
}

TEST_F(UdpTest, UnboundPortDropped) {
  ASSERT_TRUE(a.udp.send_to(kBIp, 9, 6000, rand_bytes(10, 3)).ok());
  env.engine.run_until_idle();
  EXPECT_EQ(b.udp.rx_dropped(), 1u);
}

TEST_F(UdpTest, OversizedPayloadRejected) {
  EXPECT_EQ(a.udp.send_to(kBIp, 5000, 6000, rand_bytes(3000, 4)).errc(),
            Errc::too_large);
}

TEST_F(UdpTest, DoubleBindRejected) {
  ASSERT_TRUE(b.udp.bind(7000, [](u32, u16, PktBuf*) {}).ok());
  EXPECT_EQ(b.udp.bind(7000, [](u32, u16, PktBuf*) {}).errc(),
            Errc::already_exists);
}

TEST_F(UdpTest, CorruptionCaughtByUdpChecksum) {
  fabric.set_options({.corrupt_p = 1.0});
  int delivered = 0;
  ASSERT_TRUE(b.udp
                  .bind(5000,
                        [&](u32, u16, PktBuf* pb) {
                          delivered++;
                          b.pool.free(pb);
                        })
                  .ok());
  ASSERT_TRUE(a.udp.send_to(kBIp, 5000, 6000, rand_bytes(600, 5)).ok());
  env.engine.run_until_idle();
  EXPECT_EQ(delivered, 0);  // corrupted frame never reaches the app
  EXPECT_GT(b.nic.rx_csum_errors() + b.nic.rx_drops(), 0u);
}

TEST_F(UdpTest, BypassIsCheaperThanKernel) {
  // a = kernel UDP, b = kernel-bypass.
  ASSERT_TRUE(a.udp.bind(5000, [&](u32, u16, PktBuf* pb) { a.pool.free(pb); }).ok());
  ASSERT_TRUE(b.udp.bind(5000, [&](u32, u16, PktBuf* pb) { b.pool.free(pb); }).ok());
  const auto data = rand_bytes(100, 6);
  const SimTime t0 = a.udp.env().now();
  (void)a.udp.send_to(kBIp, 5000, 1, data);  // kernel tx charge
  const SimTime kernel_tx = a.udp.env().now() - t0;
  const SimTime t1 = b.udp.env().now();
  (void)b.udp.send_to(kAIp, 5000, 1, data);  // bypass tx charge
  const SimTime bypass_tx = b.udp.env().now() - t1;
  EXPECT_GT(kernel_tx, bypass_tx);
}

// ---------- MICA-like volatile store ----------

TEST(VolatileKv, PutGetEraseAndCrashLosesAll) {
  sim::Env env;
  storage::VolatileKv kv(env);
  ASSERT_TRUE(kv.put("k", rand_bytes(100, 7)).ok());
  EXPECT_EQ(kv.get("k").value(), rand_bytes(100, 7));
  EXPECT_EQ(kv.size(), 1u);
  EXPECT_TRUE(kv.erase("k"));
  EXPECT_FALSE(kv.get("k").ok());

  ASSERT_TRUE(kv.put("x", rand_bytes(10, 8)).ok());
  kv.crash();
  EXPECT_EQ(kv.size(), 0u);  // §2.2: no durability
  EXPECT_FALSE(kv.get("x").ok());
}

TEST(VolatileKv, CheaperThanAnyPersistentPut) {
  sim::Env env;
  storage::VolatileKv kv(env);
  const auto v = rand_bytes(1024, 9);
  const SimTime t0 = env.now();
  ASSERT_TRUE(kv.put("k", v).ok());
  const SimTime cost = env.now() - t0;
  // Far below even the bare persistence cost (1.94 us), let alone the
  // full data-management pipeline.
  EXPECT_LT(cost, env.cost.persist_cost(1024));
}

// ---------- Homa ----------

struct HomaHost : UdpHost {
  HomaHost(sim::Env& env, nic::Fabric& fabric, u32 ip, u16 port)
      : UdpHost(env, fabric, ip, /*bypass=*/true), homa(udp, port) {}
  HomaEndpoint homa;
};

class HomaTest : public ::testing::Test {
 protected:
  sim::Env env;
  nic::Fabric fabric{env};
  HomaHost a{env, fabric, kAIp, 4000};
  HomaHost b{env, fabric, kBIp, 4000};
};

TEST_F(HomaTest, SmallMessageRoundTrip) {
  std::vector<u8> got;
  b.homa.on_message = [&](HomaDelivery d) {
    got = d.bytes(b.pool);
    for (auto* pb : d.pkts) b.pool.free(pb);
  };
  bool acked = false;
  a.homa.on_sent = [&](u64) { acked = true; };
  const auto data = rand_bytes(900, 10);
  a.homa.send_msg(kBIp, 4000, data);
  env.engine.run_until_idle();
  EXPECT_EQ(got, data);
  EXPECT_TRUE(acked);
  EXPECT_EQ(b.homa.messages_received(), 1u);
}

TEST_F(HomaTest, LargeMessageUsesGrants) {
  std::vector<u8> got;
  b.homa.on_message = [&](HomaDelivery d) {
    EXPECT_GT(d.pkts.size(), 2u);  // spans several segments
    got = d.bytes(b.pool);
    for (auto* pb : d.pkts) b.pool.free(pb);
  };
  const auto data = rand_bytes(64 * 1024, 11);
  a.homa.send_msg(kBIp, 4000, data);
  env.engine.run_until_idle();
  EXPECT_EQ(got, data);
  EXPECT_GT(b.homa.grants_sent(), 0u);  // receiver-driven flow control
}

TEST_F(HomaTest, EmptyMessage) {
  int delivered = 0;
  b.homa.on_message = [&](HomaDelivery d) {
    delivered++;
    EXPECT_EQ(d.total_len, 0u);
    for (auto* pb : d.pkts) b.pool.free(pb);
  };
  a.homa.send_msg(kBIp, 4000, {});
  env.engine.run_until_idle();
  EXPECT_EQ(delivered, 1);
}

class HomaLossy : public ::testing::TestWithParam<double> {};

TEST_P(HomaLossy, ReliableUnderLoss) {
  sim::Env env;
  nic::Fabric fabric(env, {.loss_p = GetParam()});
  HomaHost a(env, fabric, kAIp, 4000);
  HomaHost b(env, fabric, kBIp, 4000);

  std::map<u64, std::vector<u8>> got;
  b.homa.on_message = [&](HomaDelivery d) {
    got[d.msg_id] = d.bytes(b.pool);
    for (auto* pb : d.pkts) b.pool.free(pb);
  };
  std::map<u64, std::vector<u8>> sent;
  for (int i = 0; i < 10; i++) {
    auto data = rand_bytes(5000 + static_cast<std::size_t>(i) * 700, 100 + i);
    const u64 id = a.homa.send_msg(kBIp, 4000, data);
    sent[id] = std::move(data);
  }
  env.engine.run_until_idle();
  ASSERT_EQ(got.size(), sent.size());
  for (const auto& [id, data] : sent) {
    EXPECT_EQ(got.at(id), data) << "msg " << id;
  }
  if (GetParam() > 0) EXPECT_GT(a.homa.resends() + b.homa.resends(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Loss, HomaLossy, ::testing::Values(0.0, 0.02, 0.1));

namespace {

// Reads a field out of a wire frame's Homa header (which starts right
// after the Ethernet+IP+UDP headers).
template <typename T>
T homa_field(const nic::WireFrame& f, std::size_t off) {
  T v{};
  std::memcpy(&v, f.bytes.data() + kUdpAllHdrLen + off, sizeof(T));
  return v;
}

bool is_homa(const nic::WireFrame& f) {
  return f.bytes.size() >= kUdpAllHdrLen + kHomaHdrLen;
}

}  // namespace

TEST_F(HomaTest, RecoversFromLostGrant) {
  // Cut every grant on its way back to the sender (one lost grant alone
  // is masked by the re-grant the next data arrival triggers). The
  // sender stalls at the unscheduled window; recovery must come from the
  // receiver's resend timer, whose nudge carries the current grant — a
  // transport where only data retransmits would deadlock here.
  int grants_dropped = 0;
  fabric.set_drop_hook([&](u32 dst_ip, const nic::WireFrame& f) {
    if (dst_ip == kAIp && is_homa(f) &&
        homa_field<u8>(f, 0) == static_cast<u8>(HomaPktType::grant)) {
      grants_dropped++;
      return true;
    }
    return false;
  });
  std::vector<u8> got;
  b.homa.on_message = [&](HomaDelivery d) {
    got = d.bytes(b.pool);
    for (auto* pb : d.pkts) b.pool.free(pb);
  };
  bool acked = false;
  a.homa.on_sent = [&](u64) { acked = true; };
  const auto data = rand_bytes(64 * 1024, 21);
  a.homa.send_msg(kBIp, 4000, data);
  env.engine.run_until_idle();
  EXPECT_GT(grants_dropped, 0);
  EXPECT_EQ(got, data);
  EXPECT_TRUE(acked);
  EXPECT_GT(b.homa.resends(), 0u);  // the receiver-side nudge fired
  EXPECT_EQ(a.homa.give_ups(), 0u);
}

TEST_F(HomaTest, RecoversFromLostLastSegment) {
  // Cut exactly the final data segment. Everything granted has been
  // sent, so the sender is idle waiting for the ack; the receiver's gap
  // detection must ask for the tail again.
  int tails_dropped = 0;
  fabric.set_drop_hook([&](u32 dst_ip, const nic::WireFrame& f) {
    if (dst_ip != kBIp || tails_dropped != 0 || !is_homa(f)) return false;
    if (homa_field<u8>(f, 0) != static_cast<u8>(HomaPktType::data)) {
      return false;
    }
    const u32 off = homa_field<u32>(f, 12);
    const u32 total = homa_field<u32>(f, 16);
    const auto seg_len =
        static_cast<u32>(f.bytes.size() - kUdpAllHdrLen - kHomaHdrLen);
    if (off > 0 && off + seg_len == total) {
      tails_dropped++;
      return true;
    }
    return false;
  });
  std::vector<u8> got;
  b.homa.on_message = [&](HomaDelivery d) {
    got = d.bytes(b.pool);
    for (auto* pb : d.pkts) b.pool.free(pb);
  };
  bool acked = false;
  a.homa.on_sent = [&](u64) { acked = true; };
  const auto data = rand_bytes(64 * 1024, 22);
  a.homa.send_msg(kBIp, 4000, data);
  env.engine.run_until_idle();
  EXPECT_EQ(tails_dropped, 1);
  EXPECT_EQ(got, data);
  EXPECT_TRUE(acked);
  EXPECT_GT(b.homa.resends(), 0u);
  EXPECT_EQ(a.homa.give_ups(), 0u);
}

TEST_F(HomaTest, ZeroCopyIngestFromHomaDelivery) {
  // The §5.2 point: a pktstore can adopt Homa segments exactly like TCP
  // segments. Build a PM-backed receiving host to prove it.
  sim::Env env2;
  nic::Fabric fabric2(env2);
  HomaHost client(env2, fabric2, kAIp, 4000);

  pm::PmDevice dev(env2, 32u << 20);
  auto pmpool = pm::PmPool::create(dev, "pkts", dev.data_base(), (32u << 20) - 4096);
  pmpool.set_charges(env2.cost.pool_alloc_ns, env2.cost.pool_alloc_ns / 2);
  PmArena arena(dev, pmpool);
  PktBufPool pool(env2, arena);
  nic::Nic snic(env2, fabric2, kBIp, pool);
  UdpStack::Options uo;
  uo.ip = kBIp;
  uo.kernel_bypass = true;
  UdpStack sudp(env2, snic, pool, uo);
  snic.set_sink([&](PktBuf* pb) { sudp.rx(pb); });
  HomaEndpoint shoma(sudp, 4000);

  auto store = core::PktStore::create(pool, "homa-store");
  shoma.on_message = [&](HomaDelivery d) {
    EXPECT_TRUE(store.put_pkts("msg", d.pkts, d.offs, d.lens).ok());
    for (auto* pb : d.pkts) pool.free(pb);
  };

  const auto data = rand_bytes(4000, 12);
  client.homa.send_msg(kBIp, 4000, data);
  env2.engine.run_until_idle();

  ASSERT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.verify("msg").ok());
  EXPECT_EQ(store.get("msg").value(), data);
  const auto st = store.stat("msg");
  EXPECT_GT(st->segments, 1u);
  EXPECT_EQ(st->csum_kind, core::CsumKind::inet16);  // reused from the NIC
  EXPECT_GT(st->hw_tstamp, 0);
}

}  // namespace
}  // namespace papm::net
