// Tests for storage/: WAL, PM memtable (with Table 1 calibration checks),
// LSM store with rotation/tombstones/compaction, crash recovery.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>

#include "common/rng.h"
#include "storage/lsm_store.h"

namespace papm::storage {
namespace {

constexpr u64 kDev = 32u << 20;

std::vector<u8> value_of(std::size_t n, u64 seed) {
  Rng rng(seed);
  std::vector<u8> v(n);
  for (auto& b : v) b = static_cast<u8>(rng.next());
  return v;
}

class StorageTest : public ::testing::Test {
 protected:
  sim::Env env;
  pm::PmDevice dev{env, kDev};
  pm::PmPool pool{pm::PmPool::create(dev, "pool", dev.data_base(), kDev - 4096)};
};

// ---------- WAL ----------

class WalTest : public StorageTest {
 protected:
  Wal wal{Wal::create(dev, "wal", align_up(kDev / 2, kCacheLine), kDev / 4)};
};

TEST_F(WalTest, AppendAndReplay) {
  const auto v1 = value_of(100, 1);
  ASSERT_TRUE(wal.append(WalRecordType::put, "alpha", v1).ok());
  ASSERT_TRUE(wal.append(WalRecordType::erase, "beta", {}).ok());

  std::vector<std::tuple<WalRecordType, std::string, std::vector<u8>>> seen;
  const u64 n = wal.replay([&](WalRecordType t, std::string_view k,
                               std::span<const u8> v) {
    seen.emplace_back(t, std::string(k), std::vector<u8>(v.begin(), v.end()));
  });
  ASSERT_EQ(n, 2u);
  EXPECT_EQ(std::get<0>(seen[0]), WalRecordType::put);
  EXPECT_EQ(std::get<1>(seen[0]), "alpha");
  EXPECT_EQ(std::get<2>(seen[0]), v1);
  EXPECT_EQ(std::get<0>(seen[1]), WalRecordType::erase);
  EXPECT_EQ(std::get<1>(seen[1]), "beta");
}

TEST_F(WalTest, ReplaySurvivesCrash) {
  ASSERT_TRUE(wal.append(WalRecordType::put, "k", value_of(64, 2)).ok());
  dev.crash();
  auto rec = Wal::recover(dev, "wal");
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->replay([](WalRecordType, std::string_view, std::span<const u8>) {}),
            1u);
}

TEST_F(WalTest, CorruptTailStopsReplayCleanly) {
  ASSERT_TRUE(wal.append(WalRecordType::put, "good", value_of(32, 3)).ok());
  const u64 tail_before = wal.bytes_used();
  ASSERT_TRUE(wal.append(WalRecordType::put, "torn", value_of(32, 4)).ok());
  // Corrupt a byte inside the second record's body (simulated torn write).
  const u64 base = align_up(kDev / 2, kCacheLine) + 64 + tail_before + 20;
  u8 evil = *dev.at(base, 1) ^ 0xff;
  dev.store(base, {&evil, 1});

  u64 n = 0;
  std::string last;
  wal.replay([&](WalRecordType, std::string_view k, std::span<const u8>) {
    n++;
    last = std::string(k);
  });
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(last, "good");
}

TEST_F(WalTest, TruncateResets) {
  ASSERT_TRUE(wal.append(WalRecordType::put, "x", value_of(16, 5)).ok());
  EXPECT_GT(wal.bytes_used(), 0u);
  wal.truncate();
  EXPECT_EQ(wal.bytes_used(), 0u);
  EXPECT_EQ(wal.replay([](WalRecordType, std::string_view, std::span<const u8>) {}),
            0u);
}

TEST_F(WalTest, FillsUpThenRejects) {
  const auto big = value_of(4096, 6);
  Status st = Errc::ok;
  int appended = 0;
  while ((st = wal.append(WalRecordType::put, "key", big)).ok()) appended++;
  EXPECT_EQ(st.errc(), Errc::out_of_space);
  EXPECT_GT(appended, 100);
  EXPECT_LE(wal.bytes_used(), wal.capacity());
}

// ---------- PmMemtable ----------

class MemtableTest : public StorageTest {
 protected:
  PmMemtable mt{PmMemtable::create(dev, pool, "mt")};
  StoreKnobs all;  // everything on
};

TEST_F(MemtableTest, PutGetRoundTrip) {
  const auto v = value_of(1024, 7);
  ASSERT_TRUE(mt.put("key1", v, all).ok());
  const auto got = mt.get("key1");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), v);
}

TEST_F(MemtableTest, OverwriteFreesOldRecord) {
  ASSERT_TRUE(mt.put("k", value_of(512, 8), all).ok());
  const u64 before = pool.allocated_bytes();
  ASSERT_TRUE(mt.put("k", value_of(512, 9), all).ok());
  // Steady state: new record allocated, old freed.
  EXPECT_EQ(pool.allocated_bytes(), before);
  EXPECT_EQ(mt.get("k").value(), value_of(512, 9));
}

TEST_F(MemtableTest, ChecksumDetectsCorruption) {
  const auto v = value_of(256, 10);
  ASSERT_TRUE(mt.put("k", v, all).ok());
  // Find and corrupt the stored value byte via the zero-copy view.
  const auto view = mt.get_view("k");
  ASSERT_TRUE(view.ok());
  u8* p = const_cast<u8*>(view.value().data());
  p[100] ^= 0x40;
  EXPECT_EQ(mt.get("k").errc(), Errc::corrupted);
}

TEST_F(MemtableTest, NoChecksumKnobSkipsVerification) {
  StoreKnobs k = all;
  k.checksum = false;
  const auto v = value_of(256, 11);
  ASSERT_TRUE(mt.put("k", v, k).ok());
  const auto view = mt.get_view("k");
  const_cast<u8*>(view.value().data())[0] ^= 0xff;
  EXPECT_TRUE(mt.get("k").ok());  // silently returns corrupt data
}

TEST_F(MemtableTest, TombstoneLookup) {
  ASSERT_TRUE(mt.put("k", value_of(10, 12), all).ok());
  ASSERT_TRUE(mt.put_tombstone("k", all).ok());
  EXPECT_EQ(mt.get("k").errc(), Errc::not_found);
  const auto e = mt.lookup("k");
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(e->tombstone);
}

TEST_F(MemtableTest, BreakdownMatchesTable1Calibration) {
  // Populate to a realistic index depth first.
  const auto v = value_of(1024, 13);
  for (int i = 0; i < 4000; i++) {
    ASSERT_TRUE(mt.put("key" + std::to_string(i), v, all).ok());
  }
  // Measure the average 1 KB put breakdown.
  OpBreakdown sum;
  const int n = 500;
  Rng rng(14);
  for (int i = 0; i < n; i++) {
    OpBreakdown bd;
    ASSERT_TRUE(
        mt.put("key" + std::to_string(rng.next_below(4000)), v, all, &bd).ok());
    sum += bd;
  }
  sum /= n;
  // Paper Table 1 (1 KB write): prep 0.70, checksum 1.77, copy 1.14,
  // alloc+insert 2.78, persist 1.94 us. Allow generous tolerances — the
  // shape matters, not the third digit.
  EXPECT_NEAR(static_cast<double>(sum.prep_ns), 700.0, 100.0);
  EXPECT_NEAR(static_cast<double>(sum.checksum_ns), 1770.0, 200.0);
  EXPECT_NEAR(static_cast<double>(sum.copy_ns), 1140.0, 150.0);
  EXPECT_NEAR(static_cast<double>(sum.alloc_insert_ns), 2780.0, 700.0);
  EXPECT_NEAR(static_cast<double>(sum.persist_ns), 1940.0, 200.0);
  EXPECT_NEAR(static_cast<double>(sum.data_mgmt_ns()), 6390.0, 900.0);
}

TEST_F(MemtableTest, KnobsSkipExactlyTheirPhase) {
  const auto v = value_of(1024, 15);
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(mt.put("warm" + std::to_string(i), v, all).ok());
  }
  auto measure = [&](const StoreKnobs& k) {
    OpBreakdown sum;
    for (int i = 0; i < 100; i++) {
      OpBreakdown bd;
      (void)mt.put("probe" + std::to_string(i), v, k, &bd);
      sum += bd;
    }
    sum /= 100;
    return sum;
  };
  const auto base = measure(all);

  StoreKnobs no_csum = all;
  no_csum.checksum = false;
  EXPECT_EQ(measure(no_csum).checksum_ns, 0);

  StoreKnobs no_copy = all;
  no_copy.data_copy = false;
  EXPECT_EQ(measure(no_copy).copy_ns, 0);

  StoreKnobs no_persist = all;
  no_persist.persistence = false;
  EXPECT_EQ(measure(no_persist).persist_ns, 0);

  StoreKnobs no_prep = all;
  no_prep.request_prep = false;
  EXPECT_LT(measure(no_prep).prep_ns, base.prep_ns / 4);
}

TEST_F(MemtableTest, SurvivesCrashAndRecovers) {
  std::map<std::string, std::vector<u8>> model;
  Rng rng(16);
  for (int i = 0; i < 150; i++) {
    const std::string key = "k" + std::to_string(i);
    auto v = value_of(64 + rng.next_below(512), i);
    ASSERT_TRUE(mt.put(key, v, all).ok());
    model[key] = std::move(v);
  }
  dev.crash();
  auto pool2 = pm::PmPool::recover(dev, "pool");
  ASSERT_TRUE(pool2.ok());
  auto rec = PmMemtable::recover(dev, pool2.value(), "mt");
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->size(), model.size());
  for (const auto& [k, v] : model) {
    const auto got = rec->get(k);
    ASSERT_TRUE(got.ok()) << k;
    EXPECT_EQ(got.value(), v) << k;  // checksum verified too
  }
}

TEST_F(MemtableTest, ScanSkipsNothingAndReportsTombstones) {
  ASSERT_TRUE(mt.put("a", value_of(8, 17), all).ok());
  ASSERT_TRUE(mt.put_tombstone("b", all).ok());
  ASSERT_TRUE(mt.put("c", value_of(8, 18), all).ok());
  std::string keys;
  int tombs = 0;
  mt.scan("", "", [&](std::string_view k, std::span<const u8>, bool tomb) {
    keys += k;
    tombs += tomb;
    return true;
  });
  EXPECT_EQ(keys, "abc");
  EXPECT_EQ(tombs, 1);
}

// ---------- LsmStore ----------

class LsmTest : public StorageTest {};

TEST_F(LsmTest, BasicPutGetErase) {
  auto store = LsmStore::create(dev, pool, "db");
  const auto v = value_of(300, 20);
  ASSERT_TRUE(store.put("k", v).ok());
  EXPECT_EQ(store.get("k").value(), v);
  ASSERT_TRUE(store.erase("k").ok());
  EXPECT_EQ(store.get("k").errc(), Errc::not_found);
}

TEST_F(LsmTest, RotationKeepsOldDataReadable) {
  LsmOptions opts;
  opts.memtable_limit_bytes = 64 * 1024;
  auto store = LsmStore::create(dev, pool, "db", opts);
  std::map<std::string, std::vector<u8>> model;
  for (int i = 0; i < 200; i++) {
    const std::string key = "key" + std::to_string(i);
    auto v = value_of(1024, 100 + i);
    ASSERT_TRUE(store.put(key, v).ok());
    model[key] = std::move(v);
  }
  EXPECT_GT(store.table_count(), 1u);
  for (const auto& [k, v] : model) {
    EXPECT_EQ(store.get(k).value(), v) << k;
  }
}

TEST_F(LsmTest, NewerTableShadowsOlder) {
  auto store = LsmStore::create(dev, pool, "db");
  ASSERT_TRUE(store.put("k", value_of(100, 30)).ok());
  ASSERT_TRUE(store.rotate().ok());
  ASSERT_TRUE(store.put("k", value_of(100, 31)).ok());
  EXPECT_EQ(store.get("k").value(), value_of(100, 31));
}

TEST_F(LsmTest, TombstoneShadowsFrozenEntry) {
  auto store = LsmStore::create(dev, pool, "db");
  ASSERT_TRUE(store.put("k", value_of(100, 32)).ok());
  ASSERT_TRUE(store.rotate().ok());
  ASSERT_TRUE(store.erase("k").ok());
  EXPECT_EQ(store.get("k").errc(), Errc::not_found);
}

TEST_F(LsmTest, MergedScanAcrossTables) {
  auto store = LsmStore::create(dev, pool, "db");
  ASSERT_TRUE(store.put("a", value_of(8, 33)).ok());
  ASSERT_TRUE(store.put("b", value_of(8, 34)).ok());
  ASSERT_TRUE(store.rotate().ok());
  ASSERT_TRUE(store.put("b", value_of(8, 35)).ok());  // shadow
  ASSERT_TRUE(store.put("c", value_of(8, 36)).ok());
  ASSERT_TRUE(store.erase("a").ok());                 // tombstone

  std::vector<std::string> keys;
  std::vector<std::vector<u8>> values;
  store.scan("", "", [&](std::string_view k, std::span<const u8> v) {
    keys.emplace_back(k);
    values.emplace_back(v.begin(), v.end());
    return true;
  });
  ASSERT_EQ(keys, (std::vector<std::string>{"b", "c"}));
  EXPECT_EQ(values[0], value_of(8, 35));  // newest wins
}

TEST_F(LsmTest, CompactMergesAndDropsTombstones) {
  auto store = LsmStore::create(dev, pool, "db");
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(store.put("k" + std::to_string(i), value_of(64, 40 + i)).ok());
  }
  ASSERT_TRUE(store.rotate().ok());
  for (int i = 0; i < 25; i++) {
    ASSERT_TRUE(store.erase("k" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(store.rotate().ok());
  EXPECT_EQ(store.table_count(), 3u);

  ASSERT_TRUE(store.compact().ok());
  EXPECT_EQ(store.table_count(), 1u);
  EXPECT_EQ(store.entries(), 25u);  // tombstones dropped
  for (int i = 0; i < 50; i++) {
    const auto got = store.get("k" + std::to_string(i));
    if (i < 25) {
      EXPECT_FALSE(got.ok()) << i;
    } else {
      EXPECT_EQ(got.value(), value_of(64, 40 + i)) << i;
    }
  }
}

TEST_F(LsmTest, RecoversMultiTableStoreAfterCrash) {
  LsmOptions opts;
  opts.memtable_limit_bytes = 32 * 1024;
  auto store = LsmStore::create(dev, pool, "db", opts);
  std::map<std::string, std::vector<u8>> model;
  for (int i = 0; i < 120; i++) {
    const std::string key = "key" + std::to_string(i);
    auto v = value_of(1024, 200 + i);
    ASSERT_TRUE(store.put(key, v).ok());
    model[key] = std::move(v);
  }
  const auto tables = store.table_count();
  ASSERT_GT(tables, 1u);
  dev.crash();

  auto pool2 = pm::PmPool::recover(dev, "pool");
  ASSERT_TRUE(pool2.ok());
  auto rec = LsmStore::recover(dev, pool2.value(), "db", opts);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->table_count(), tables);
  for (const auto& [k, v] : model) {
    EXPECT_EQ(rec->get(k).value(), v) << k;
  }
}

TEST_F(LsmTest, WalReplayRestoresUnflushedishWrites) {
  LsmOptions opts;
  opts.use_wal = true;
  auto store = LsmStore::create(dev, pool, "db", opts);
  ASSERT_TRUE(store.put("logged", value_of(128, 50)).ok());
  dev.crash();
  auto pool2 = pm::PmPool::recover(dev, "pool");
  auto rec = LsmStore::recover(dev, pool2.value(), "db", opts);
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec->has_wal());
  EXPECT_EQ(rec->get("logged").value(), value_of(128, 50));
}

TEST_F(LsmTest, WalCostsShowUpInLatency) {
  LsmOptions with_wal;
  with_wal.use_wal = true;
  auto a = LsmStore::create(dev, pool, "db1", with_wal);
  auto b = LsmStore::create(dev, pool, "db2");
  const auto v = value_of(1024, 51);

  SimTime t0 = env.now();
  ASSERT_TRUE(a.put("k", v).ok());
  const SimTime wal_cost = env.now() - t0;
  t0 = env.now();
  ASSERT_TRUE(b.put("k", v).ok());
  const SimTime plain_cost = env.now() - t0;
  EXPECT_GT(wal_cost, plain_cost + env.cost.crc32c_cost(1024));
}

TEST_F(LsmTest, RecoverUnknownNameFails) {
  EXPECT_EQ(LsmStore::recover(dev, pool, "ghost").errc(), Errc::not_found);
}

// Crash fuzz: interleave puts/erases/rotations with crashes; acknowledged
// state must always be fully recovered.
class LsmCrashFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(LsmCrashFuzz, AcknowledgedWritesSurvive) {
  sim::Env env;
  env.rng = Rng(GetParam());
  pm::PmDevice dev(env, kDev);
  auto pool = pm::PmPool::create(dev, "pool", dev.data_base(), kDev - 4096);
  auto store = LsmStore::create(dev, pool, "db");

  Rng rng(GetParam() * 17 + 3);
  std::map<std::string, std::vector<u8>> model;
  for (int round = 0; round < 4; round++) {
    for (int i = 0; i < 60; i++) {
      const std::string key = "k" + std::to_string(rng.next_below(80));
      if (!model.empty() && rng.chance(0.25)) {
        ASSERT_TRUE(store.erase(key).ok());
        model.erase(key);
      } else {
        auto v = value_of(32 + rng.next_below(900), rng.next());
        ASSERT_TRUE(store.put(key, v).ok());
        model[key] = std::move(v);
      }
      if (rng.chance(0.05)) {
        const Status st = store.rotate();
        if (st.errc() == Errc::out_of_space) {
          ASSERT_TRUE(store.compact().ok());  // table slots full: compact
        } else {
          ASSERT_TRUE(st.ok());
        }
      }
    }
    dev.crash();
    auto pool2 = pm::PmPool::recover(dev, "pool");
    ASSERT_TRUE(pool2.ok());
    pool = std::move(pool2.value());
    auto rec = LsmStore::recover(dev, pool, "db");
    ASSERT_TRUE(rec.ok());
    store = std::move(rec.value());
    for (const auto& [k, v] : model) {
      const auto got = store.get(k);
      ASSERT_TRUE(got.ok()) << "round " << round << " key " << k;
      ASSERT_EQ(got.value(), v) << "round " << round << " key " << k;
    }
    // And deleted keys stay deleted.
    for (int i = 0; i < 80; i++) {
      const std::string key = "k" + std::to_string(i);
      if (!model.contains(key)) {
        EXPECT_FALSE(store.get(key).ok()) << key;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LsmCrashFuzz, ::testing::Values(7, 21, 63, 189));

}  // namespace
}  // namespace papm::storage
