// Crash-point sweep harness.
//
// Drives a backend through a write workload while a PmDevice FaultPlan is
// armed, cutting power at *every* flush/fence boundary in turn, and after
// each cut re-opens the device and checks the recovery invariants the
// paper's crash-consistency story depends on:
//
//   I1  no committed-and-acked value is lost or altered;
//   I2  an in-flight (started, not acked) op resolves to exactly one of
//       {old value, new value, absent} — never a torn or mixed value;
//   I3  structural validity: recovery succeeds and the backend's own
//       validate() passes;
//   I4  recovery is idempotent: crashing again immediately after recovery
//       and recovering a second time observes the identical state.
//
// Usage: implement CrashScenario (format / workload / verify) for the
// backend, then call run_crash_sweep() with a factory producing a fresh
// scenario per crash point. The workload must be deterministic given a
// fresh sim::Env — the harness counts the boundaries once, then replays
// the identical workload with the cut scheduled at event k for every
// k in [1, boundaries]. See docs/CRASH_CONSISTENCY.md for a walkthrough
// and test_crash_recovery.cpp for the backend scenarios.
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "pm/fault_plan.h"
#include "pm/pm_device.h"
#include "sim/env.h"

namespace papm::crashtest {

// PAPM_CRASH_EXHAUSTIVE=1 (set by scripts/tier1.sh for the sanitizer
// pass) scales workloads up; the default keeps the sweep fast enough for
// the inner dev loop while still covering every boundary of each op kind.
inline bool exhaustive() {
  const char* e = std::getenv("PAPM_CRASH_EXHAUSTIVE");
  return e != nullptr && e[0] != '\0' && e[0] != '0';
}

// Records what the workload has been *acknowledged* as durable, plus the
// single op in flight when the power cut hit. Invariants are judged
// against this log: acked ops must survive exactly; the in-flight op may
// land old/new/absent.
class AckLog {
 public:
  using Value = std::vector<u8>;

  struct Op {
    enum Kind { kPut, kErase };
    Kind kind;
    std::string key;
    Value val;  // empty for kErase
  };

  // Bracket every workload op: begin_*() before touching the backend,
  // ack() after the backend returned success. A cut between the two
  // leaves the op recorded as in-flight.
  void begin_put(std::string key, Value val) {
    inflight_ = Op{Op::kPut, std::move(key), std::move(val)};
  }
  void begin_erase(std::string key) {
    inflight_ = Op{Op::kErase, std::move(key), {}};
  }
  void ack() {
    ASSERT_TRUE(inflight_.has_value()) << "ack() without begin_*()";
    if (inflight_->kind == Op::kPut) {
      acked_[inflight_->key] = std::move(inflight_->val);
    } else {
      acked_.erase(inflight_->key);
    }
    inflight_.reset();
  }

  // Committed (acked) key -> value map at the moment of the cut. For the
  // in-flight key this still holds the *prior* committed value, if any.
  [[nodiscard]] const std::map<std::string, Value>& acked() const {
    return acked_;
  }
  [[nodiscard]] const std::optional<Op>& inflight() const { return inflight_; }

 private:
  std::map<std::string, Value> acked_;
  std::optional<Op> inflight_;
};

// One backend under test. A fresh instance is constructed for every crash
// point (volatile state must not leak across cuts); persistent handles to
// the store live in the subclass.
class CrashScenario {
 public:
  virtual ~CrashScenario() = default;

  // Build the persistent structures on `dev`. Runs with injection armed
  // but the cut scheduled inside the workload, so formatting completes.
  virtual void format(pm::PmDevice& dev) = 0;

  // The deterministic write workload. Every op is bracketed with
  // log.begin_*()/log.ack(). PowerFailure may fly out of any PM call.
  virtual void workload(pm::PmDevice& dev, AckLog& log) = 0;

  // Post-cut: recover from `dev` and assert invariants I1-I4 with gtest
  // macros. Injection is disarmed; dev.crash() may be used for the
  // idempotence re-crash.
  virtual void verify(pm::PmDevice& dev, const AckLog& log) = 0;
};

struct SweepOptions {
  u64 dev_size = 8ull << 20;
  pm::FaultPlan plan{};  // failure semantics; crash_at_event set per point
  u64 stride = 1;        // test every stride-th boundary (1 = all)
};

struct SweepResult {
  u64 boundaries = 0;     // flush/fence events in one full workload
  u64 points_tested = 0;  // crash points actually injected
};

using ScenarioFactory = std::function<std::unique_ptr<CrashScenario>()>;

// Checks invariants I1 + I2 for map-shaped backends, given a closure that
// reads one key from the *recovered* store. The closure must surface
// corruption as an error (checksum-verified reads do) — a torn value must
// never come back as ok().
inline void verify_kv(const AckLog& log,
                      const std::function<Result<std::vector<u8>>(
                          const std::string&)>& get) {
  for (const auto& [key, val] : log.acked()) {
    if (log.inflight().has_value() && log.inflight()->key == key) continue;
    auto r = get(key);
    ASSERT_TRUE(r.ok()) << "I1: acked key '" << key << "' lost ("
                        << to_string(r.errc()) << ")";
    EXPECT_EQ(r.value(), val) << "I1: acked value altered for '" << key << "'";
  }
  if (!log.inflight().has_value()) return;
  const AckLog::Op& op = *log.inflight();
  const auto prior = log.acked().find(op.key);
  const bool has_prior = prior != log.acked().end();
  auto r = get(op.key);
  if (op.kind == AckLog::Op::kPut) {
    if (r.ok()) {
      const bool is_new = r.value() == op.val;
      const bool is_old = has_prior && r.value() == prior->second;
      EXPECT_TRUE(is_new || is_old)
          << "I2: torn/mixed value visible for in-flight put '" << op.key << "'";
    } else {
      EXPECT_EQ(r.errc(), Errc::not_found)
          << "I2: in-flight put '" << op.key << "' read as corrupt";
      EXPECT_FALSE(has_prior)
          << "I1: in-flight put '" << op.key << "' destroyed prior value";
    }
  } else {  // kErase
    if (r.ok()) {
      ASSERT_TRUE(has_prior)
          << "I2: in-flight erase '" << op.key << "' resurrected a value";
      EXPECT_EQ(r.value(), prior->second)
          << "I2: in-flight erase '" << op.key << "' left a torn value";
    } else {
      EXPECT_EQ(r.errc(), Errc::not_found);
    }
  }
}

// The sweep driver. Pass 0 sizes the sweep (crash_at_event = 0 counts
// events without cutting) and sanity-checks a clean end-of-workload crash;
// then every boundary k gets a fresh env + device + scenario with the cut
// scheduled at event k.
inline SweepResult run_crash_sweep(const SweepOptions& opt,
                                   const ScenarioFactory& make) {
  SweepResult res;
  {
    sim::Env env;
    pm::PmDevice dev(env, opt.dev_size);
    auto sc = make();
    sc->format(dev);
    pm::FaultPlan counting = opt.plan;
    counting.crash_at_event = 0;
    dev.set_fault_plan(counting);
    AckLog log;
    sc->workload(dev, log);
    res.boundaries = dev.fault_events();
    dev.crash();  // end-of-workload cut, plan semantics
    dev.clear_fault_plan();
    sc->verify(dev, log);
  }
  EXPECT_GT(res.boundaries, 0u) << "workload issued no flush/fence";
  if (::testing::Test::HasFailure()) return res;

  for (u64 k = 1; k <= res.boundaries; k += opt.stride) {
    SCOPED_TRACE("crash at flush/fence event " + std::to_string(k) + " of " +
                 std::to_string(res.boundaries));
    sim::Env env;
    pm::PmDevice dev(env, opt.dev_size);
    auto sc = make();
    sc->format(dev);
    pm::FaultPlan plan = opt.plan;
    plan.crash_at_event = k;
    dev.set_fault_plan(plan);
    AckLog log;
    bool cut = false;
    try {
      sc->workload(dev, log);
    } catch (const pm::PowerFailure&) {
      cut = true;
    }
    EXPECT_TRUE(cut) << "workload not deterministic: event " << k
                     << " never reached on replay";
    if (!cut) break;
    dev.clear_fault_plan();
    sc->verify(dev, log);
    res.points_tested++;
    if (::testing::Test::HasFatalFailure()) break;
  }
  return res;
}

}  // namespace papm::crashtest
