// Tests for the HTTP/1.1 codec and incremental parsers.
#include <gtest/gtest.h>

#include <string>

#include "http/http.h"

namespace papm::http {
namespace {

std::vector<u8> bytes(std::string_view s) { return {s.begin(), s.end()}; }
std::string str(const std::vector<u8>& v) { return {v.begin(), v.end()}; }

TEST(HttpSerialize, PutRequestWithBody) {
  Request req;
  req.method = Method::put;
  req.target = "/kv/key1";
  req.body = bytes("value-bytes");
  const std::string s = str(serialize(req));
  EXPECT_NE(s.find("PUT /kv/key1 HTTP/1.1\r\n"), std::string::npos);
  EXPECT_NE(s.find("Content-Length: 11\r\n"), std::string::npos);
  EXPECT_TRUE(s.ends_with("\r\n\r\nvalue-bytes"));
}

TEST(HttpSerialize, ResponseStatusLine) {
  Response resp;
  resp.status = 404;
  const std::string s = str(serialize(resp));
  EXPECT_TRUE(s.starts_with("HTTP/1.1 404 Not Found\r\n"));
  EXPECT_NE(s.find("Content-Length: 0\r\n"), std::string::npos);
}

TEST(HttpParse, RequestRoundTrip) {
  Request req;
  req.method = Method::put;
  req.target = "/kv/abc";
  req.headers.emplace_back("X-Custom", "yes");
  req.body = bytes("0123456789");
  RequestParser p;
  const auto parsed = p.feed(serialize(req));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->method, Method::put);
  EXPECT_EQ(parsed->target, "/kv/abc");
  EXPECT_EQ(parsed->header("x-custom"), "yes");  // case-insensitive
  EXPECT_EQ(parsed->body, req.body);
  EXPECT_EQ(p.pending(), 0u);
}

TEST(HttpParse, GetAndDeleteMethods) {
  RequestParser p;
  auto r = p.feed(bytes("GET /k HTTP/1.1\r\nContent-Length: 0\r\n\r\n"));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->method, Method::get);
  r = p.feed(bytes("DELETE /k HTTP/1.1\r\nContent-Length: 0\r\n\r\n"));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->method, Method::del);
}

TEST(HttpParse, MissingContentLengthMeansEmptyBody) {
  RequestParser p;
  const auto r = p.feed(bytes("GET /x HTTP/1.1\r\n\r\n"));
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->body.empty());
}

TEST(HttpParse, SplitAcrossSegments) {
  Request req;
  req.method = Method::put;
  req.target = "/kv/split";
  req.body = bytes(std::string(3000, 'z'));  // spans >1 MSS
  const auto wire = serialize(req);

  RequestParser p;
  // Feed byte ranges of varying sizes.
  std::optional<Request> got;
  std::size_t off = 0;
  const std::size_t chunks[] = {1, 7, 100, 1460, 1460, 10000};
  for (std::size_t c : chunks) {
    const std::size_t n = std::min(c, wire.size() - off);
    auto r = p.feed(std::span<const u8>(wire.data() + off, n));
    off += n;
    if (r.has_value()) {
      got = std::move(r);
      break;
    }
  }
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->body.size(), 3000u);
  EXPECT_EQ(got->target, "/kv/split");
}

TEST(HttpParse, PipelinedRequests) {
  Request a, b;
  a.method = Method::put;
  a.target = "/a";
  a.body = bytes("111");
  b.method = Method::get;
  b.target = "/b";
  auto wire = serialize(a);
  const auto wb = serialize(b);
  wire.insert(wire.end(), wb.begin(), wb.end());

  RequestParser p;
  const auto first = p.feed(wire);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->target, "/a");
  const auto second = p.feed({});
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->target, "/b");
  EXPECT_FALSE(p.feed({}).has_value());
}

TEST(HttpParse, MalformedStartLineFails) {
  RequestParser p;
  EXPECT_FALSE(p.feed(bytes("NONSENSE\r\n\r\n")).has_value());
  EXPECT_TRUE(p.failed());
  // A failed parser stays failed.
  EXPECT_FALSE(p.feed(bytes("GET /x HTTP/1.1\r\n\r\n")).has_value());
}

TEST(HttpParse, BadContentLengthFails) {
  RequestParser p;
  EXPECT_FALSE(
      p.feed(bytes("PUT /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n"))
          .has_value());
  EXPECT_TRUE(p.failed());
}

TEST(HttpParse, ResponseRoundTrip) {
  Response resp;
  resp.status = 201;
  resp.body = bytes("stored");
  ResponseParser p;
  const auto parsed = p.feed(serialize(resp));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, 201);
  EXPECT_EQ(str(parsed->body), "stored");
}

TEST(HttpParse, ResponseSplitHeaderBoundary) {
  Response resp;
  resp.status = 200;
  resp.body = bytes("xyz");
  const auto wire = serialize(resp);
  ResponseParser p;
  // Split exactly between header block and body.
  const std::string s = str(wire);
  const std::size_t head_end = s.find("\r\n\r\n") + 4;
  EXPECT_FALSE(p.feed(std::span<const u8>(wire.data(), head_end)).has_value());
  const auto got =
      p.feed(std::span<const u8>(wire.data() + head_end, wire.size() - head_end));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(str(got->body), "xyz");
}

}  // namespace
}  // namespace papm::http
