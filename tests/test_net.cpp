// Tests for net/ + nic/: header codecs, PktBuf clone semantics, GSO, and
// end-to-end TCP between two simulated hosts over the fabric — including
// loss, reordering and corruption recovery.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <numeric>
#include <string>

#include "net/gso.h"
#include "net/tcp.h"
#include "nic/nic.h"

namespace papm::net {
namespace {

std::vector<u8> rand_bytes(std::size_t n, u64 seed) {
  Rng rng(seed);
  std::vector<u8> v(n);
  for (auto& b : v) b = static_cast<u8>(rng.next());
  return v;
}

// ---------- headers ----------

TEST(Headers, EthRoundTrip) {
  EthHeader h;
  h.src.b[5] = 0x11;
  h.dst.b[0] = 0xaa;
  h.ethertype = kEtherTypeIpv4;
  std::vector<u8> buf(kEthHdrLen);
  EXPECT_EQ(encode_eth(h, buf), kEthHdrLen);
  const auto d = decode_eth(buf);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->src, h.src);
  EXPECT_EQ(d->dst, h.dst);
  EXPECT_EQ(d->ethertype, kEtherTypeIpv4);
}

TEST(Headers, IpRoundTripAndChecksum) {
  IpHeader h;
  h.src = 0x0a000001;
  h.dst = 0x0a000002;
  h.total_len = 1234;
  h.ident = 42;
  std::vector<u8> buf(2048);
  encode_ip(h, buf);
  const auto d = decode_ip(std::span<const u8>(buf.data(), 2048));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->src, h.src);
  EXPECT_EQ(d->dst, h.dst);
  EXPECT_EQ(d->total_len, 1234);
  EXPECT_EQ(d->ident, 42);

  // Any single-bit flip in the header must be rejected.
  buf[8] ^= 0x01;
  EXPECT_FALSE(decode_ip(std::span<const u8>(buf.data(), 2048)).has_value());
}

TEST(Headers, TcpRoundTrip) {
  TcpHeader h;
  h.src_port = 33000;
  h.dst_port = 80;
  h.seq = 0xdeadbeef;
  h.ack = 0xcafef00d;
  h.flags = kTcpAck | kTcpPsh;
  h.window = 512;
  h.checksum = 0x1234;
  std::vector<u8> buf(kTcpHdrLen);
  encode_tcp(h, buf);
  const auto d = decode_tcp(buf);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->src_port, h.src_port);
  EXPECT_EQ(d->dst_port, h.dst_port);
  EXPECT_EQ(d->seq, h.seq);
  EXPECT_EQ(d->ack, h.ack);
  EXPECT_EQ(d->flags, h.flags);
  EXPECT_EQ(d->window, h.window);
  EXPECT_EQ(d->checksum, h.checksum);
}

TEST(Headers, TcpChecksumVerifies) {
  const auto payload = rand_bytes(333, 5);
  TcpHeader h;
  h.src_port = 1;
  h.dst_port = 2;
  std::vector<u8> hdr(kTcpHdrLen);
  encode_tcp(h, hdr);
  const u16 csum = tcp_checksum(0x0a000001, 0x0a000002, hdr, payload);
  // Receiver: sum over pseudo + header-with-csum + payload folds to 0xffff.
  hdr[16] = static_cast<u8>(csum >> 8);
  hdr[17] = static_cast<u8>(csum & 0xff);
  u32 sum = tcp_pseudo_sum(0x0a000001, 0x0a000002, hdr.size() + payload.size());
  sum += inet_sum(hdr);
  sum += inet_sum(payload);
  EXPECT_EQ(inet_fold(sum), 0xffffu);
}

class PayloadCsumDerive : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PayloadCsumDerive, MatchesDirectComputation) {
  // The §4.2 trick: payload checksum from the NIC's checksum-complete sum.
  const auto payload = rand_bytes(GetParam(), GetParam() + 99);
  TcpHeader h;
  h.src_port = 7;
  h.dst_port = 8;
  h.seq = 123456;
  std::vector<u8> hdr(kTcpHdrLen);
  encode_tcp(h, hdr);
  const u16 csum = tcp_checksum(1, 2, hdr, payload);
  hdr[16] = static_cast<u8>(csum >> 8);
  hdr[17] = static_cast<u8>(csum & 0xff);

  std::vector<u8> seg(hdr);
  seg.insert(seg.end(), payload.begin(), payload.end());
  const u32 full_sum = inet_sum(seg);
  EXPECT_EQ(payload_csum_from_complete(full_sum, hdr), inet_checksum(payload))
      << "payload size " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sizes, PayloadCsumDerive,
                         ::testing::Values(0, 1, 2, 3, 64, 333, 1024, 1460));

TEST(PayloadCsum, AllZeroPayloadNormalized) {
  std::vector<u8> payload(1024, 0);
  TcpHeader h;
  std::vector<u8> hdr(kTcpHdrLen);
  encode_tcp(h, hdr);
  const u16 csum = tcp_checksum(1, 2, hdr, payload);
  hdr[16] = static_cast<u8>(csum >> 8);
  hdr[17] = static_cast<u8>(csum & 0xff);
  std::vector<u8> seg(hdr);
  seg.insert(seg.end(), payload.begin(), payload.end());
  EXPECT_EQ(payload_csum_from_complete(inet_sum(seg), hdr),
            inet_checksum(payload));
}

// ---------- PktBuf pool ----------

class PktBufTest : public ::testing::Test {
 protected:
  sim::Env env;
  HeapArena arena{env};
  PktBufPool pool{env, arena};
};

TEST_F(PktBufTest, AllocInitializesMetadata) {
  PktBuf* pb = pool.alloc(256);
  ASSERT_NE(pb, nullptr);
  EXPECT_EQ(pb->cap, 256u);
  EXPECT_EQ(pb->len, 0u);
  EXPECT_EQ(pb->nr_frags, 0);
  EXPECT_EQ(pool.live_metadata(), 1u);
  EXPECT_EQ(pool.live_data_blocks(), 1u);
  pool.free(pb);
  EXPECT_EQ(pool.live_metadata(), 0u);
  EXPECT_EQ(pool.live_data_blocks(), 0u);
}

TEST_F(PktBufTest, MetadataRecycled) {
  PktBuf* a = pool.alloc(64);
  pool.free(a);
  PktBuf* b = pool.alloc(64);
  EXPECT_EQ(a, b);  // freelist reuse
  pool.free(b);
}

TEST_F(PktBufTest, CloneSharesDataUntilLastRef) {
  PktBuf* pb = pool.alloc(128);
  pb->len = 5;
  std::memcpy(pool.writable(*pb, 5).data(), "hello", 5);
  PktBuf* c = pool.clone(*pb);
  EXPECT_EQ(c->data_h, pb->data_h);
  EXPECT_EQ(pool.live_data_blocks(), 1u);
  EXPECT_EQ(pool.live_metadata(), 2u);

  pool.free(pb);  // original goes; data survives via clone
  EXPECT_EQ(pool.live_data_blocks(), 1u);
  EXPECT_EQ(std::memcmp(pool.data(*c), "hello", 5), 0);
  pool.free(c);
  EXPECT_EQ(pool.live_data_blocks(), 0u);
}

TEST_F(PktBufTest, AdoptDataOutlivesMetadata) {
  PktBuf* pb = pool.alloc(64);
  pb->len = 3;
  std::memcpy(pool.writable(*pb, 3).data(), "abc", 3);
  const u64 h = pool.adopt_data(*pb);
  pool.free(pb);
  // Data still resolvable through the arena.
  EXPECT_EQ(std::memcmp(arena.data(h, 3), "abc", 3), 0);
  pool.unref_data(h, 64);
  EXPECT_EQ(pool.live_data_blocks(), 0u);
}

TEST_F(PktBufTest, CloneTimestampsAndChecksumsCopied) {
  PktBuf* pb = pool.alloc(64);
  pb->hw_tstamp = 777;
  pb->payload_csum = 0xabcd;
  pb->csum_verified = true;
  PktBuf* c = pool.clone(*pb);
  EXPECT_EQ(c->hw_tstamp, 777);
  EXPECT_EQ(c->payload_csum, 0xabcd);
  EXPECT_TRUE(c->csum_verified);
  pool.free(pb);
  pool.free(c);
}

TEST_F(PktBufTest, FragsRefcounted) {
  PktBuf* pb = pool.alloc(64);
  auto fh = arena.alloc(4096);
  ASSERT_TRUE(fh.ok());
  ASSERT_TRUE(pool.add_frag(*pb, fh.value(), 4096).ok());
  PktBuf* c = pool.clone(*pb);
  pool.free(pb);
  // Frag survives through the clone.
  (void)arena.data(fh.value(), 4096);
  pool.free(c);
  EXPECT_EQ(pool.live_data_blocks(), 0u);
}

// ---------- GSO ----------

TEST_F(PktBufTest, SuperPacketRoundTrip) {
  const auto payload = rand_bytes(10000, 11);
  PktBuf* super = make_super(pool, payload, kAllHdrLen);
  ASSERT_NE(super, nullptr);
  EXPECT_EQ(super->total_len() - super->payload_off, payload.size());
  EXPECT_EQ(super_payload(pool, *super), payload);
  pool.free(super);
}

TEST_F(PktBufTest, GsoSegmentsReassembleToPayload) {
  const auto payload = rand_bytes(5000, 12);
  PktBuf* super = make_super(pool, payload, kAllHdrLen);
  ASSERT_NE(super, nullptr);
  auto segs = gso_segment(pool, *super, /*charge_copy=*/true);
  ASSERT_EQ(segs.size(), (payload.size() + kMss - 1) / kMss);
  std::vector<u8> got;
  for (PktBuf* s : segs) {
    EXPECT_LE(s->payload_len(), kMss);
    const auto p = pool.payload(*s);
    got.insert(got.end(), p.begin(), p.end());
    pool.free(s);
  }
  EXPECT_EQ(got, payload);
  pool.free(super);
}

TEST_F(PktBufTest, GsoChargesCopyTsoDoesNot) {
  const auto payload = rand_bytes(8000, 13);
  PktBuf* super = make_super(pool, payload, kAllHdrLen);
  ASSERT_NE(super, nullptr);

  SimTime t0 = env.now();
  auto sw = gso_segment(pool, *super, /*charge_copy=*/true);
  const SimTime sw_cost = env.now() - t0;
  for (auto* s : sw) pool.free(s);

  t0 = env.now();
  auto hw = gso_segment(pool, *super, /*charge_copy=*/false);
  const SimTime hw_cost = env.now() - t0;
  for (auto* s : hw) pool.free(s);
  pool.free(super);

  EXPECT_GT(sw_cost, hw_cost + env.cost.copy_cost(payload.size()) / 2);
}

TEST_F(PktBufTest, SuperPacketTooLargeRejected) {
  std::vector<u8> huge(PktBuf::kMaxFrags * kFragPage + 1, 0);
  EXPECT_EQ(make_super(pool, huge, kAllHdrLen), nullptr);
}

// ---------- end-to-end TCP ----------

struct TestHost {
  TestHost(sim::Env& env, nic::Fabric& fabric, u32 ip, bool busy_poll,
           nic::Nic::Options nic_opts = nic::Nic::Options())
      : arena(env),
        pool(env, arena),
        nic(env, fabric, ip, pool, nic_opts),
        stack(env, nic, pool,
              [&] {
                net::TcpStack::Options o;
                o.ip = ip;
                o.busy_poll = busy_poll;
                o.csum_offload_tx = nic_opts.csum_offload_tx;
                o.csum_offload_rx = nic_opts.csum_offload_rx;
                return o;
              }()) {
    nic.set_sink([this](PktBuf* pb) { stack.rx(pb); });
  }

  HeapArena arena;
  PktBufPool pool;
  nic::Nic nic;
  TcpStack stack;
};

constexpr u32 kClientIp = 0x0a000001;
constexpr u32 kServerIp = 0x0a000002;
constexpr u16 kPort = 9000;

class TcpE2E : public ::testing::Test {
 protected:
  sim::Env env;
  nic::Fabric fabric{env};
  TestHost client{env, fabric, kClientIp, /*busy_poll=*/false};
  TestHost server{env, fabric, kServerIp, /*busy_poll=*/true};
};

TEST_F(TcpE2E, HandshakeEstablishesBothSides) {
  TcpConn* accepted = nullptr;
  SimTime established_at = 0;
  ASSERT_TRUE(server.stack.listen(kPort, [&](TcpConn& c) { accepted = &c; }).ok());
  TcpConn* c = client.stack.connect(kServerIp, kPort);
  c->on_established = [&](TcpConn&) { established_at = env.now(); };
  env.engine.run_until_idle();
  EXPECT_EQ(c->state(), TcpState::established);
  ASSERT_NE(accepted, nullptr);
  EXPECT_EQ(accepted->state(), TcpState::established);
  EXPECT_EQ(accepted->peer_ip(), kClientIp);
  // Handshake RTT must be sane (a few tens of us; the idle clock runs
  // further because disarmed RTO timers still fire as no-ops).
  EXPECT_GT(established_at, 2 * env.cost.fabric_propagation_ns);
  EXPECT_LT(established_at, 100 * kNsPerUs);
}

TEST_F(TcpE2E, SmallEcho) {
  std::vector<u8> server_got, client_got;
  ASSERT_TRUE(server.stack
                  .listen(kPort,
                          [&](TcpConn& c) {
                            c.on_readable = [&](TcpConn& cc) {
                              std::vector<u8> buf(64);
                              const auto n = cc.read(buf);
                              buf.resize(n);
                              server_got.insert(server_got.end(), buf.begin(),
                                                buf.end());
                              (void)cc.send(buf);  // echo
                            };
                          })
                  .ok());
  TcpConn* c = client.stack.connect(kServerIp, kPort);
  c->on_established = [&](TcpConn& cc) {
    const std::string msg = "hello, storage";
    (void)cc.send(std::span<const u8>(
        reinterpret_cast<const u8*>(msg.data()), msg.size()));
  };
  c->on_readable = [&](TcpConn& cc) {
    std::vector<u8> buf(64);
    const auto n = cc.read(buf);
    client_got.insert(client_got.end(), buf.begin(), buf.begin() + static_cast<long>(n));
  };
  env.engine.run_until_idle();
  EXPECT_EQ(std::string(server_got.begin(), server_got.end()), "hello, storage");
  EXPECT_EQ(std::string(client_got.begin(), client_got.end()), "hello, storage");
}

TEST_F(TcpE2E, ZeroCopyReceiveCarriesMetadata) {
  std::vector<PktBuf*> got;
  ASSERT_TRUE(server.stack
                  .listen(kPort,
                          [&](TcpConn& c) {
                            c.on_readable = [&](TcpConn& cc) {
                              for (PktBuf* pb : cc.read_pkts()) got.push_back(pb);
                            };
                          })
                  .ok());
  TcpConn* c = client.stack.connect(kServerIp, kPort);
  const auto payload = rand_bytes(1024, 21);
  c->on_established = [&](TcpConn& cc) { (void)cc.send(payload); };
  env.engine.run_until_idle();

  ASSERT_EQ(got.size(), 1u);
  PktBuf* pb = got[0];
  EXPECT_TRUE(pb->csum_verified);
  EXPECT_GT(pb->hw_tstamp, 0);
  // The derived payload checksum matches a direct computation — this is
  // the integrity word pktstore will persist.
  EXPECT_EQ(pb->payload_csum, inet_checksum(payload));
  const auto view = server.pool.payload(*pb);
  EXPECT_TRUE(std::equal(view.begin(), view.end(), payload.begin()));
  server.pool.free(pb);
}

TEST_F(TcpE2E, LargeTransferSegmentsAtMss) {
  const auto data = rand_bytes(100 * 1024, 31);
  std::vector<u8> got;
  ASSERT_TRUE(server.stack
                  .listen(kPort,
                          [&](TcpConn& c) {
                            c.on_readable = [&](TcpConn& cc) {
                              std::vector<u8> buf(4096);
                              std::size_t n;
                              while ((n = cc.read(buf)) > 0) {
                                got.insert(got.end(), buf.begin(),
                                           buf.begin() + static_cast<long>(n));
                              }
                            };
                          })
                  .ok());
  TcpConn* c = client.stack.connect(kServerIp, kPort);
  c->on_established = [&](TcpConn& cc) { (void)cc.send(data); };
  env.engine.run_until_idle();
  EXPECT_EQ(got, data);
  EXPECT_EQ(c->retransmits(), 0u);
  EXPECT_EQ(c->rtx_queued(), 0u);  // everything acked
}

class TcpLossy : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(TcpLossy, ReliableUnderLossAndReorder) {
  const auto [loss, reorder] = GetParam();
  sim::Env env;
  // Fault draws come from the per-link streams (deterministic in the
  // fabric seed). This seed is picked so that 1% loss actually drops
  // data segments within the ~140-frame transfer — a stream where every
  // draw happens to survive would make the retransmit assertion
  // vacuous, not the protocol correct.
  nic::Fabric fabric(env, {.loss_p = loss, .reorder_p = reorder, .seed = 11});
  TestHost client(env, fabric, kClientIp, false);
  TestHost server(env, fabric, kServerIp, true);

  const auto data = rand_bytes(200 * 1024, 41);
  std::vector<u8> got;
  ASSERT_TRUE(server.stack
                  .listen(kPort,
                          [&](TcpConn& c) {
                            c.on_readable = [&](TcpConn& cc) {
                              std::vector<u8> buf(8192);
                              std::size_t n;
                              while ((n = cc.read(buf)) > 0) {
                                got.insert(got.end(), buf.begin(),
                                           buf.begin() + static_cast<long>(n));
                              }
                            };
                          })
                  .ok());
  TcpConn* c = client.stack.connect(kServerIp, kPort);
  c->on_established = [&](TcpConn& cc) { (void)cc.send(data); };
  env.engine.run_until_idle();
  ASSERT_EQ(got.size(), data.size());
  EXPECT_EQ(got, data);
  if (loss > 0) EXPECT_GT(c->retransmits(), 0u);
  if (reorder > 0) EXPECT_GT(fabric.reordered(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Conditions, TcpLossy,
    ::testing::Values(std::make_tuple(0.01, 0.0), std::make_tuple(0.05, 0.0),
                      std::make_tuple(0.0, 0.1), std::make_tuple(0.02, 0.1),
                      std::make_tuple(0.0, 0.3)));

TEST_F(TcpE2E, CorruptionCaughtByChecksumAndRecovered) {
  fabric.set_options({.corrupt_p = 0.05});
  const auto data = rand_bytes(64 * 1024, 51);
  std::vector<u8> got;
  ASSERT_TRUE(server.stack
                  .listen(kPort,
                          [&](TcpConn& c) {
                            c.on_readable = [&](TcpConn& cc) {
                              std::vector<u8> buf(8192);
                              std::size_t n;
                              while ((n = cc.read(buf)) > 0) {
                                got.insert(got.end(), buf.begin(),
                                           buf.begin() + static_cast<long>(n));
                              }
                            };
                          })
                  .ok());
  TcpConn* c = client.stack.connect(kServerIp, kPort);
  c->on_established = [&](TcpConn& cc) { (void)cc.send(data); };
  env.engine.run_until_idle();
  EXPECT_EQ(got, data);
  EXPECT_GT(fabric.corrupted(), 0u);
  // Corruption is caught by either the NIC (TCP csum) or IP header check.
  EXPECT_GT(server.nic.rx_csum_errors() + server.nic.rx_drops() +
                client.nic.rx_csum_errors() + client.nic.rx_drops(),
            0u);
}

TEST_F(TcpE2E, SoftwareChecksumPathWorks) {
  sim::Env env2;
  nic::Fabric fabric2(env2);
  nic::Nic::Options no_offload;
  no_offload.csum_offload_tx = false;
  no_offload.csum_offload_rx = false;
  TestHost c2(env2, fabric2, kClientIp, false, no_offload);
  TestHost s2(env2, fabric2, kServerIp, true, no_offload);

  std::vector<u8> got;
  ASSERT_TRUE(s2.stack
                  .listen(kPort,
                          [&](TcpConn& c) {
                            c.on_readable = [&](TcpConn& cc) {
                              std::vector<u8> buf(4096);
                              std::size_t n;
                              while ((n = cc.read(buf)) > 0) {
                                got.insert(got.end(), buf.begin(),
                                           buf.begin() + static_cast<long>(n));
                              }
                            };
                          })
                  .ok());
  const auto data = rand_bytes(10 * 1024, 61);
  TcpConn* c = c2.stack.connect(kServerIp, kPort);
  c->on_established = [&](TcpConn& cc) { (void)cc.send(data); };
  env2.engine.run_until_idle();
  EXPECT_EQ(got, data);
}

TEST_F(TcpE2E, ZeroCopySendPkt) {
  std::vector<u8> got;
  ASSERT_TRUE(server.stack
                  .listen(kPort,
                          [&](TcpConn& c) {
                            c.on_readable = [&](TcpConn& cc) {
                              std::vector<u8> buf(4096);
                              std::size_t n;
                              while ((n = cc.read(buf)) > 0) {
                                got.insert(got.end(), buf.begin(),
                                           buf.begin() + static_cast<long>(n));
                              }
                            };
                          })
                  .ok());
  TcpConn* c = client.stack.connect(kServerIp, kPort);
  const auto payload = rand_bytes(900, 71);
  c->on_established = [&](TcpConn& cc) {
    PktBuf* pb = client.pool.alloc(static_cast<u32>(kAllHdrLen + payload.size()));
    ASSERT_NE(pb, nullptr);
    pb->len = static_cast<u32>(kAllHdrLen + payload.size());
    pb->payload_off = kAllHdrLen;
    std::memcpy(client.pool.writable(*pb, pb->len).data() + kAllHdrLen,
                payload.data(), payload.size());
    EXPECT_TRUE(cc.send_pkt(pb).ok());
  };
  env.engine.run_until_idle();
  EXPECT_EQ(got, payload);
}

TEST_F(TcpE2E, GracefulCloseBothDirections) {
  bool server_closed = false, client_closed = false;
  TcpConn* srv_conn = nullptr;
  ASSERT_TRUE(server.stack
                  .listen(kPort,
                          [&](TcpConn& c) {
                            srv_conn = &c;
                            c.on_closed = [&](TcpConn&) { server_closed = true; };
                            c.on_readable = [&](TcpConn& cc) {
                              // FIN arrived (EOF): close our side too.
                              if (cc.readable_bytes() == 0 &&
                                  cc.state() == TcpState::close_wait) {
                                cc.close();
                              }
                            };
                          })
                  .ok());
  TcpConn* c = client.stack.connect(kServerIp, kPort);
  c->on_closed = [&](TcpConn&) { client_closed = true; };
  c->on_established = [&](TcpConn& cc) { cc.close(); };
  env.engine.run_until_idle();
  EXPECT_EQ(c->state(), TcpState::closed);
  ASSERT_NE(srv_conn, nullptr);
  EXPECT_EQ(srv_conn->state(), TcpState::closed);
  EXPECT_TRUE(server_closed);
  EXPECT_TRUE(client_closed);
}

TEST_F(TcpE2E, RetransmissionClonesKeepDataIntact) {
  // 100% loss initially: the segment's clone must survive in the rtx
  // queue; when the fabric heals, RTO recovers delivery.
  fabric.set_options({.loss_p = 1.0});
  std::vector<u8> got;
  ASSERT_TRUE(server.stack
                  .listen(kPort,
                          [&](TcpConn& c) {
                            c.on_readable = [&](TcpConn& cc) {
                              std::vector<u8> buf(4096);
                              std::size_t n;
                              while ((n = cc.read(buf)) > 0) {
                                got.insert(got.end(), buf.begin(),
                                           buf.begin() + static_cast<long>(n));
                              }
                            };
                          })
                  .ok());
  TcpConn* c = client.stack.connect(kServerIp, kPort);
  env.engine.run_until(2 * kNsPerMs);
  EXPECT_EQ(c->state(), TcpState::syn_sent);
  EXPECT_GT(c->retransmits(), 0u);  // SYN retried
  fabric.set_options({});  // heal
  const auto data = rand_bytes(3000, 81);
  c->on_established = [&](TcpConn& cc) { (void)cc.send(data); };
  env.engine.run_until_idle();
  EXPECT_EQ(c->state(), TcpState::established);
  EXPECT_EQ(got, data);
}

// ---------- PASTE: RX directly into PM ----------

TEST(PastePm, ReceivedPayloadLandsInPmAndPersists) {
  sim::Env env;
  nic::Fabric fabric(env);
  // Client: ordinary DRAM host.
  TestHost client(env, fabric, kClientIp, false);
  // Server: packet buffers in PM (PASTE).
  pm::PmDevice dev(env, 8 << 20);
  auto pmpool = pm::PmPool::create(dev, "pkts", dev.data_base(), (8 << 20) - 4096);
  pmpool.set_charges(env.cost.pool_alloc_ns, env.cost.pool_alloc_ns / 2);
  PmArena arena(dev, pmpool);
  PktBufPool pool(env, arena);
  nic::Nic snic(env, fabric, kServerIp, pool);
  TcpStack::Options so;
  so.ip = kServerIp;
  so.busy_poll = true;
  TcpStack sstack(env, snic, pool, so);
  snic.set_sink([&](PktBuf* pb) { sstack.rx(pb); });

  std::vector<PktBuf*> got;
  ASSERT_TRUE(sstack
                  .listen(kPort,
                          [&](TcpConn& c) {
                            c.on_readable = [&](TcpConn& cc) {
                              for (PktBuf* pb : cc.read_pkts()) got.push_back(pb);
                            };
                          })
                  .ok());
  const auto payload = rand_bytes(1024, 91);
  TcpConn* c = client.stack.connect(kServerIp, kPort);
  c->on_established = [&](TcpConn& cc) { (void)cc.send(payload); };
  env.engine.run_until_idle();

  ASSERT_EQ(got.size(), 1u);
  PktBuf* pb = got[0];
  // The payload bytes are physically inside the PM device...
  const u64 pm_off = pb->data_h + pb->payload_off;
  EXPECT_EQ(std::memcmp(dev.at(pm_off, payload.size()), payload.data(),
                        payload.size()),
            0);
  // ...but not yet durable (DMA only dirtied the lines).
  // Persist, crash, and the bytes must survive.
  dev.persist(pb->data_h, pb->len);
  dev.crash();
  EXPECT_EQ(std::memcmp(dev.at(pm_off, payload.size()), payload.data(),
                        payload.size()),
            0);
  pool.free(pb);
}

}  // namespace
}  // namespace papm::net
