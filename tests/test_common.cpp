// Unit tests for common/: Result/Status, CRC32C, Internet checksum, RNG,
// stats. Checksum vectors come from the relevant RFCs and known-good
// implementations.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "common/crc32c.h"
#include "common/hexdump.h"
#include "common/inet_csum.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"

namespace papm {
namespace {

std::vector<u8> bytes(std::string_view s) {
  return {s.begin(), s.end()};
}

// ---------- Status / Result ----------

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.errc(), Errc::ok);
  EXPECT_TRUE(static_cast<bool>(s));
}

TEST(Status, CarriesError) {
  Status s = Errc::not_found;
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "not_found");
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.errc(), Errc::ok);
}

TEST(Result, HoldsError) {
  Result<int> r = Errc::corrupted;
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.errc(), Errc::corrupted);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  auto p = std::move(r).value();
  EXPECT_EQ(*p, 7);
}

TEST(ErrcToString, AllValuesNamed) {
  for (int i = 0; i <= static_cast<int>(Errc::internal); i++) {
    EXPECT_NE(to_string(static_cast<Errc>(i)), "unknown");
  }
}

// ---------- CRC32C ----------

TEST(Crc32c, KnownVectors) {
  // RFC 3720 (iSCSI) test vectors.
  std::vector<u8> zeros(32, 0x00);
  EXPECT_EQ(crc32c(zeros), 0x8a9136aau);
  std::vector<u8> ones(32, 0xff);
  EXPECT_EQ(crc32c(ones), 0x62a8ab43u);
  std::vector<u8> inc(32);
  std::iota(inc.begin(), inc.end(), u8{0});
  EXPECT_EQ(crc32c(inc), 0x46dd794eu);
  std::vector<u8> dec(32);
  for (int i = 0; i < 32; i++) dec[i] = static_cast<u8>(31 - i);
  EXPECT_EQ(crc32c(dec), 0x113fdb5cu);
}

TEST(Crc32c, Empty) { EXPECT_EQ(crc32c({}), 0u); }

TEST(Crc32c, StreamingMatchesOneShot) {
  const auto data = bytes("The quick brown fox jumps over the lazy dog");
  const u32 whole = crc32c(data);
  for (std::size_t split = 0; split <= data.size(); split += 7) {
    u32 crc = crc32c_extend(0, std::span(data).first(split));
    crc = crc32c_extend(crc, std::span(data).subspan(split));
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32c, MaskRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 100; i++) {
    const u32 v = static_cast<u32>(rng.next());
    EXPECT_EQ(crc32c_unmask(crc32c_mask(v)), v);
    EXPECT_NE(crc32c_mask(v), v);  // mask must change the value
  }
}

TEST(Crc32c, DetectsSingleBitFlips) {
  auto data = bytes("persistence requires integrity");
  const u32 orig = crc32c(data);
  for (std::size_t byte = 0; byte < data.size(); byte++) {
    for (int bit = 0; bit < 8; bit++) {
      data[byte] ^= static_cast<u8>(1u << bit);
      EXPECT_NE(crc32c(data), orig);
      data[byte] ^= static_cast<u8>(1u << bit);
    }
  }
}

// ---------- Internet checksum ----------

TEST(InetCsum, Rfc1071Example) {
  // RFC 1071 §3 worked example: bytes 00 01 f2 03 f4 f5 f6 f7.
  const std::vector<u8> data = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(inet_fold(inet_sum(data)), 0xddf2u);
  EXPECT_EQ(inet_checksum(data), static_cast<u16>(~0xddf2u & 0xffff));
}

TEST(InetCsum, ZeroBufferChecksumIsFFFF) {
  std::vector<u8> zeros(64, 0);
  EXPECT_EQ(inet_checksum(zeros), 0xffffu);
}

TEST(InetCsum, OddLengthPadsWithZero) {
  const std::vector<u8> odd = {0x12, 0x34, 0x56};
  const std::vector<u8> even = {0x12, 0x34, 0x56, 0x00};
  EXPECT_EQ(inet_checksum(odd), inet_checksum(even));
}

TEST(InetCsum, VerifyStyleSumIsZero) {
  // Appending the checksum to (even-length) data makes the folded sum
  // 0xffff (all-ones), the receiver-side validity condition.
  auto data = bytes("some tcp segment payload");
  const u16 csum = inet_checksum(data);
  data.push_back(static_cast<u8>(csum >> 8));
  data.push_back(static_cast<u8>(csum & 0xff));
  EXPECT_EQ(inet_fold(inet_sum(data)), 0xffffu);
}

TEST(InetCsum, ConcatEvenBoundary) {
  Rng rng(7);
  std::vector<u8> data(256);
  for (auto& b : data) b = static_cast<u8>(rng.next());
  for (std::size_t split : {2u, 64u, 128u, 254u}) {
    const u16 a = inet_checksum(std::span(data).first(split));
    const u16 b = inet_checksum(std::span(data).subspan(split));
    EXPECT_EQ(inet_csum_concat(a, split, b, data.size() - split),
              inet_checksum(data))
        << "split " << split;
  }
}

TEST(InetCsum, ConcatOddBoundary) {
  Rng rng(8);
  std::vector<u8> data(255);
  for (auto& b : data) b = static_cast<u8>(rng.next());
  for (std::size_t split : {1u, 3u, 63u, 127u, 253u}) {
    const u16 a = inet_checksum(std::span(data).first(split));
    const u16 b = inet_checksum(std::span(data).subspan(split));
    EXPECT_EQ(inet_csum_concat(a, split, b, data.size() - split),
              inet_checksum(data))
        << "split " << split;
  }
}

TEST(InetCsum, IncrementalUpdateRfc1624) {
  std::vector<u8> data(64);
  Rng rng(9);
  for (auto& b : data) b = static_cast<u8>(rng.next());
  const u16 before = inet_checksum(data);
  // Change the 16-bit word at offset 10.
  const u16 old_word = static_cast<u16>(data[10] << 8 | data[11]);
  data[10] = 0xde;
  data[11] = 0xad;
  const u16 new_word = 0xdead;
  EXPECT_EQ(inet_csum_update(before, old_word, new_word), inet_checksum(data));
}

// ---------- RNG ----------

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; i++) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; i++) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; i++) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(6);
  for (int i = 0; i < 10000; i++) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(7);
  int hits = 0;
  for (int i = 0; i < 100000; i++) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(8);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; i++) sum += rng.next_exponential(50.0);
  EXPECT_NEAR(sum / n, 50.0, 1.0);
}

TEST(Zipf, SkewsTowardLowIndices) {
  Zipf z(1000, 0.99, 42);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; i++) counts[z.next()]++;
  // Index 0 must be by far the most popular.
  EXPECT_GT(counts[0], counts[500] * 10);
  EXPECT_GT(counts[0], 1000);
}

TEST(Zipf, CoversRange) {
  Zipf z(10, 0.5, 43);
  std::vector<bool> seen(10, false);
  for (int i = 0; i < 10000; i++) seen[z.next()] = true;
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

// ---------- Stats ----------

TEST(Stats, BasicMoments) {
  Stats s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_NEAR(s.stddev(), 1.5811, 1e-3);
}

TEST(Stats, PercentileNearestRank) {
  Stats s;
  for (int i = 1; i <= 100; i++) s.add(i);
  // Nearest rank over {1..100}: rank = ceil(p), always an actual sample.
  EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(99.01), 100.0);  // ceil(99.01) = 100
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
}

TEST(Stats, PercentileEdgeCases) {
  Stats one;
  one.add(42.0);
  // A single sample answers every percentile query.
  EXPECT_DOUBLE_EQ(one.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(one.percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(one.percentile(100), 42.0);
  // Out-of-range p clamps instead of indexing past the ends.
  EXPECT_DOUBLE_EQ(one.percentile(-5), 42.0);
  EXPECT_DOUBLE_EQ(one.percentile(250), 42.0);

  Stats two;
  two.add(1.0);
  two.add(2.0);
  EXPECT_DOUBLE_EQ(two.percentile(0), 1.0);    // p=0 is the minimum
  EXPECT_DOUBLE_EQ(two.percentile(50), 1.0);   // rank ceil(0.5*2) = 1
  EXPECT_DOUBLE_EQ(two.percentile(50.1), 2.0);  // rank ceil(1.002) = 2
  EXPECT_DOUBLE_EQ(two.median(), 1.0);
}

TEST(Stats, EmptyIsZero) {
  Stats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 0.0);
  EXPECT_EQ(s.hist(), "(no samples)\n");
}

TEST(Stats, HistSketch) {
  Stats s;
  for (int i = 0; i < 90; i++) s.add(1.0);  // heavy low bucket
  s.add(100.0);                             // one high outlier
  const std::string h = s.hist(10, 20);
  // Ten rows, the low bucket at full width, the top bucket holding the
  // outlier, empty middle buckets barless.
  EXPECT_EQ(std::count(h.begin(), h.end(), '\n'), 10);
  EXPECT_NE(h.find(std::string(20, '#')), std::string::npos);
  EXPECT_NE(h.find(" 90\n"), std::string::npos);
  EXPECT_NE(h.find(" 1\n"), std::string::npos);

  Stats flat;  // all-equal samples: degenerate span must not divide by 0
  flat.add(5.0);
  flat.add(5.0);
  const std::string f = flat.hist(4, 8);
  EXPECT_EQ(std::count(f.begin(), f.end(), '\n'), 4);
  EXPECT_NE(f.find(" 2\n"), std::string::npos);
}

TEST(Stats, ClearResets) {
  Stats s;
  s.add(10);
  s.clear();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(FormatUs, RendersMicroseconds) {
  EXPECT_EQ(format_us(26710.0), "26.71");
  EXPECT_EQ(format_us(1940.0), "1.94");
  EXPECT_EQ(format_us(700.0, 1), "0.7");
}

// ---------- hexdump ----------

TEST(Hexdump, RendersPrintable) {
  const auto d = bytes("GET /key HTTP/1.1");
  const std::string out = hexdump(d);
  EXPECT_NE(out.find("47 45 54"), std::string::npos);  // "GET"
  EXPECT_NE(out.find("|GET /key HTTP/1.|"), std::string::npos);  // 16-byte row
  EXPECT_NE(out.find("|1|"), std::string::npos);                 // spillover row
}

TEST(Hexdump, TruncatesLongInput) {
  std::vector<u8> big(1024, 0xab);
  const std::string out = hexdump(big, 64);
  EXPECT_NE(out.find("truncated"), std::string::npos);
}

// ---------- alignment helpers ----------

TEST(Align, UpDown) {
  EXPECT_EQ(align_up(0, 64), 0u);
  EXPECT_EQ(align_up(1, 64), 64u);
  EXPECT_EQ(align_up(64, 64), 64u);
  EXPECT_EQ(align_up(65, 64), 128u);
  EXPECT_EQ(align_down(63, 64), 0u);
  EXPECT_EQ(align_down(64, 64), 64u);
  EXPECT_EQ(align_down(127, 64), 64u);
}

}  // namespace
}  // namespace papm
