// Additional edge-case and feature tests: checksum slice narrowing,
// TCP flow-control corner cases, the packet tap, and cross-cutting
// properties that earlier suites did not pin down.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "net/pkttap.h"
#include "net/tcp.h"
#include "nic/nic.h"

namespace papm {
namespace {

std::vector<u8> rand_bytes(std::size_t n, u64 seed) {
  Rng rng(seed);
  std::vector<u8> v(n);
  for (auto& b : v) b = static_cast<u8>(rng.next());
  return v;
}

// ---------- inet_csum_slice ----------

class CsumSlice : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CsumSlice, MatchesDirectComputation) {
  const auto [size, a, b] = GetParam();
  const auto data = rand_bytes(static_cast<std::size_t>(size), size * 7 + a);
  const u16 full = inet_checksum(data);
  const u16 derived = inet_csum_slice(data, full, static_cast<std::size_t>(a),
                                      static_cast<std::size_t>(b));
  const u16 direct = inet_checksum(
      std::span(data).subspan(static_cast<std::size_t>(a),
                              static_cast<std::size_t>(b - a)));
  EXPECT_EQ(inet_csum_canon(derived), inet_csum_canon(direct))
      << "size=" << size << " [" << a << "," << b << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, CsumSlice,
    ::testing::Values(std::make_tuple(100, 0, 100),   // whole block
                      std::make_tuple(100, 0, 50),    // prefix
                      std::make_tuple(100, 50, 100),  // suffix
                      std::make_tuple(100, 30, 70),   // middle, even offsets
                      std::make_tuple(101, 31, 70),   // odd start
                      std::make_tuple(101, 30, 71),   // odd end
                      std::make_tuple(101, 31, 72),   // both odd
                      std::make_tuple(1500, 61, 1085),  // HTTP-ish ranges
                      std::make_tuple(2, 1, 2),       // single byte
                      std::make_tuple(64, 13, 13)));  // empty slice

TEST(CsumSlice, RandomizedSweep) {
  Rng rng(4242);
  for (int i = 0; i < 500; i++) {
    const std::size_t size = 1 + rng.next_below(600);
    const auto data = rand_bytes(size, rng.next());
    const std::size_t a = rng.next_below(size + 1);
    const std::size_t b = a + rng.next_below(size - a + 1);
    const u16 full = inet_checksum(data);
    const u16 derived = inet_csum_slice(data, full, a, b);
    const u16 direct = inet_checksum(std::span(data).subspan(a, b - a));
    ASSERT_EQ(inet_csum_canon(derived), inet_csum_canon(direct))
        << "size=" << size << " [" << a << "," << b << ")";
  }
}

// ---------- TCP flow control ----------

struct TestHost {
  TestHost(sim::Env& env, nic::Fabric& fabric, u32 ip, bool busy_poll,
           u32 rcv_buf = 1 << 20)
      : arena(env),
        pool(env, arena),
        nic(env, fabric, ip, pool),
        stack(env, nic, pool, [&] {
          net::TcpStack::Options o;
          o.ip = ip;
          o.busy_poll = busy_poll;
          o.rcv_buf = rcv_buf;
          return o;
        }()) {
    nic.set_sink([this](net::PktBuf* pb) { stack.rx(pb); });
  }
  net::HeapArena arena;
  net::PktBufPool pool;
  nic::Nic nic;
  net::TcpStack stack;
};

TEST(TcpFlowControl, ZeroWindowStallsAndRecovers) {
  sim::Env env;
  nic::Fabric fabric(env);
  TestHost client(env, fabric, 1, false);
  // Tiny receive buffer; the app does not read until later.
  TestHost server(env, fabric, 2, true, /*rcv_buf=*/8 * 1024);

  net::TcpConn* srv_conn = nullptr;
  ASSERT_TRUE(server.stack.listen(80, [&](net::TcpConn& c) {
    srv_conn = &c;  // no on_readable: data piles up, window closes
  }).ok());

  const auto data = rand_bytes(64 * 1024, 1);
  net::TcpConn* c = client.stack.connect(2, 80);
  c->on_established = [&](net::TcpConn& cc) { (void)cc.send(data); };

  env.engine.run_until(5 * kNsPerMs);
  ASSERT_NE(srv_conn, nullptr);
  // Stalled: the receiver holds roughly its buffer, no more.
  EXPECT_LE(srv_conn->readable_bytes(), 16 * 1024u);
  EXPECT_GT(srv_conn->readable_bytes(), 0u);

  // Now the app drains; window reopens via probes/updates and the rest
  // flows. (Run in chunks so each read's window update propagates.)
  std::vector<u8> got;
  for (int rounds = 0; rounds < 200 && got.size() < data.size(); rounds++) {
    std::vector<u8> buf(8192);
    std::size_t n;
    while ((n = srv_conn->read(buf)) > 0) {
      got.insert(got.end(), buf.begin(), buf.begin() + static_cast<long>(n));
    }
    env.engine.run_until(env.now() + 2 * kNsPerMs);
  }
  EXPECT_EQ(got, data);
}

TEST(TcpFlowControl, ManyConnectionsShareOneServerCore) {
  sim::Env env;
  nic::Fabric fabric(env);
  TestHost client(env, fabric, 1, false);
  TestHost server(env, fabric, 2, true);
  sim::HostCpu one_core(env, 1);
  server.stack.attach_cpu(one_core);

  int echoes = 0;
  ASSERT_TRUE(server.stack.listen(80, [&](net::TcpConn& c) {
    c.on_readable = [&](net::TcpConn& cc) {
      std::vector<u8> buf(2048);
      std::size_t n;
      while ((n = cc.read(buf)) > 0) {
        echoes++;
        (void)cc.send(std::span<const u8>(buf.data(), n));
      }
    };
  }).ok());

  constexpr int kConns = 10;
  int replies = 0;
  for (int i = 0; i < kConns; i++) {
    net::TcpConn* c = client.stack.connect(2, 80);
    c->on_established = [&](net::TcpConn& cc) {
      (void)cc.send(rand_bytes(512, 99));
    };
    c->on_readable = [&](net::TcpConn& cc) {
      std::vector<u8> buf(2048);
      while (cc.read(buf) > 0) {
      }
      replies++;
    };
  }
  env.engine.run_until_idle();
  EXPECT_EQ(echoes, kConns);
  EXPECT_EQ(replies, kConns);
  EXPECT_GT(one_core.busy_ns(), 0);
}

// ---------- PktTap ----------

TEST(PktTap, CapturesClonesWithoutDisturbingDelivery) {
  sim::Env env;
  net::HeapArena arena(env);
  net::PktBufPool pool(env, arena);
  net::PktTap tap(pool, /*capacity=*/4);

  std::vector<net::PktBuf*> delivered;
  auto next = [&](net::PktBuf* pb) { delivered.push_back(pb); };

  for (int i = 0; i < 6; i++) {
    net::PktBuf* pb = pool.alloc(128);
    pb->len = 4;
    std::memcpy(pool.writable(*pb, 4).data(), &i, 4);
    tap.tap(pb, next);
  }
  ASSERT_EQ(delivered.size(), 6u);
  EXPECT_EQ(tap.size(), 4u);        // ring capacity
  EXPECT_EQ(tap.captured(), 6u);
  EXPECT_EQ(tap.evicted(), 2u);

  // The app frees its packets; the tap's clones keep the data alive.
  for (auto* pb : delivered) pool.free(pb);
  int expect = 2;  // oldest two evicted
  tap.each([&](const net::PktTap::Captured& c) {
    int v;
    std::memcpy(&v, pool.data(*c.clone), 4);
    EXPECT_EQ(v, expect++);
    return true;
  });
  EXPECT_EQ(expect, 6);

  tap.clear();
  EXPECT_EQ(pool.live_data_blocks(), 0u);  // nothing leaked
}

TEST(PktTap, DisabledTapPassesThrough) {
  sim::Env env;
  net::HeapArena arena(env);
  net::PktBufPool pool(env, arena);
  net::PktTap tap(pool, 4);
  tap.set_enabled(false);
  net::PktBuf* pb = pool.alloc(64);
  bool seen = false;
  tap.tap(pb, [&](net::PktBuf* p) {
    seen = true;
    pool.free(p);
  });
  EXPECT_TRUE(seen);
  EXPECT_EQ(tap.size(), 0u);
}

TEST(PktTap, DropsCaptureWhenClonePoolExhausted) {
  // The pool's metadata limit models a fixed driver descriptor pool; a
  // tap must stay best-effort when it is exhausted — the capture is
  // dropped and counted, the original still flows.
  sim::Env env;
  net::HeapArena arena(env);
  net::PktBufPool pool(env, arena);
  pool.set_meta_limit(2);  // room for the original + exactly one clone
  obs::MetricRegistry reg;
  net::PktTap tap(pool, 8);
  tap.set_metrics(&reg);

  std::vector<net::PktBuf*> delivered;
  auto next = [&](net::PktBuf* pb) { delivered.push_back(pb); };

  net::PktBuf* pb = pool.alloc(64);
  ASSERT_NE(pb, nullptr);
  tap.tap(pb, next);  // clone takes the last descriptor
  EXPECT_EQ(tap.captured(), 1u);
  EXPECT_EQ(tap.dropped(), 0u);

  tap.tap(pb, next);  // pool at the cap: capture dropped, delivery intact
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(tap.captured(), 1u);
  EXPECT_EQ(tap.size(), 1u);
  EXPECT_EQ(tap.dropped(), 1u);
  if (obs::kEnabled) {
    EXPECT_EQ(reg.counter("tap.captured").value(), 1u);
    EXPECT_EQ(reg.counter("tap.dropped").value(), 1u);
  }

  tap.clear();
  pool.free(pb);
  EXPECT_EQ(pool.live_data_blocks(), 0u);
}

TEST(PktTap, EndToEndCaptureOnServer) {
  // Tap between NIC and stack on a live connection: every segment of the
  // exchange shows up in the ring with metadata intact.
  sim::Env env;
  nic::Fabric fabric(env);
  TestHost client(env, fabric, 1, false);
  TestHost server(env, fabric, 2, true);
  net::PktTap tap(server.pool, 64);
  server.nic.set_sink([&](net::PktBuf* pb) {
    tap.tap(pb, [&](net::PktBuf* p) { server.stack.rx(p); });
  });

  ASSERT_TRUE(server.stack.listen(80, [&](net::TcpConn& c) {
    c.on_readable = [&](net::TcpConn& cc) {
      for (auto* pb : cc.read_pkts()) server.pool.free(pb);
    };
  }).ok());
  net::TcpConn* c = client.stack.connect(2, 80);
  c->on_established = [&](net::TcpConn& cc) {
    (void)cc.send(rand_bytes(2000, 5));
  };
  env.engine.run_until_idle();

  EXPECT_GE(tap.captured(), 3u);  // SYN, data segments, ...
  u64 data_segs = 0;
  tap.each([&](const net::PktTap::Captured& cap) {
    if (cap.clone->payload_len() > 0) data_segs++;
    EXPECT_GT(cap.clone->hw_tstamp, 0);  // NIC metadata rode along
    return true;
  });
  EXPECT_EQ(data_segs, 2u);  // 2000 B = 2 segments
}

// ---------- misc cross-cutting ----------

TEST(ZipfWorkload, SkewRespectedByClientRng) {
  // The workload generator dependency: Zipf skew produces hot keys.
  Zipf z(100, 0.99, 11);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; i++) counts[z.next()]++;
  int top10 = 0, total = 0;
  for (int i = 0; i < 100; i++) {
    if (i < 10) top10 += counts[i];
    total += counts[i];
  }
  EXPECT_GT(top10, total / 2);  // top 10% of keys get >50% of accesses
}

TEST(StatusResult, ErrcPropagation) {
  Result<std::vector<u8>> r = Errc::corrupted;
  EXPECT_EQ(r.status().errc(), Errc::corrupted);
  Status s = r.status();
  EXPECT_FALSE(s.ok());
}

}  // namespace
}  // namespace papm
