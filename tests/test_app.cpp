// Integration tests for the experiment harness: end-to-end client/server
// runs per backend, Table 1 / Figure 2 calibration properties, GET paths,
// and queueing behaviour — these are the properties the benches rely on.
#include <gtest/gtest.h>

#include <cstring>

#include "app/harness.h"

namespace papm::app {
namespace {

RunConfig base_config(Backend b, int conns = 1) {
  RunConfig cfg;
  cfg.backend = b;
  cfg.connections = conns;
  cfg.warmup_ns = 10 * kNsPerMs;
  cfg.measure_ns = 60 * kNsPerMs;
  return cfg;
}

TEST(Harness, DiscardRttMatchesPaperNetworkingRow) {
  const auto r = run_experiment(base_config(Backend::discard));
  // Table 1: networking-only RTT 26.71 us.
  EXPECT_NEAR(r.mean_rtt_us(), 26.71, 0.8);
  EXPECT_GT(r.ops, 1000u);
  EXPECT_EQ(r.server_errors, 0u);
}

TEST(Harness, LsmRttMatchesPaperTotalRow) {
  const auto r = run_experiment(base_config(Backend::lsm));
  // Table 1: total 34.79 us (we land within ~1 us).
  EXPECT_NEAR(r.mean_rtt_us(), 34.79, 1.2);
  EXPECT_EQ(r.server_errors, 0u);
  // Breakdown rows (generous tolerances; shape matters).
  EXPECT_NEAR(static_cast<double>(r.avg_breakdown.prep_ns), 700, 120);
  EXPECT_NEAR(static_cast<double>(r.avg_breakdown.checksum_ns), 1770, 200);
  EXPECT_NEAR(static_cast<double>(r.avg_breakdown.copy_ns), 1140, 150);
  EXPECT_NEAR(static_cast<double>(r.avg_breakdown.alloc_insert_ns), 2780, 700);
  EXPECT_NEAR(static_cast<double>(r.avg_breakdown.persist_ns), 1940, 250);
}

TEST(Harness, RawPersistSitsBetween) {
  const auto d = run_experiment(base_config(Backend::discard));
  const auto raw = run_experiment(base_config(Backend::raw_persist));
  const auto lsm = run_experiment(base_config(Backend::lsm));
  EXPECT_LT(d.rtt.mean(), raw.rtt.mean());
  EXPECT_LT(raw.rtt.mean(), lsm.rtt.mean());
  // raw = discard + copy + persist, within tolerance.
  EXPECT_NEAR(raw.mean_rtt_us() - d.mean_rtt_us(), 1.14 + 1.94, 0.5);
}

TEST(Harness, PktStoreBeatsLsmAndKeepsAllProperties) {
  const auto lsm = run_experiment(base_config(Backend::lsm));
  const auto pkt = run_experiment(base_config(Backend::pktstore));
  EXPECT_LT(pkt.rtt.mean(), lsm.rtt.mean());
  EXPECT_GT(pkt.kreq_per_s, lsm.kreq_per_s);
  // The reuse wins: checksum and copy effectively free.
  EXPECT_LT(pkt.avg_breakdown.checksum_ns, 200);
  EXPECT_LT(pkt.avg_breakdown.copy_ns, 100);
  // Persistence cannot be reused away.
  EXPECT_GT(pkt.avg_breakdown.persist_ns, 1700);
  EXPECT_EQ(pkt.server_errors, 0u);
}

TEST(Harness, KnobsRemoveExactlyTheirShare) {
  auto cfg = base_config(Backend::lsm);
  cfg.knobs.checksum = false;
  const auto no_csum = run_experiment(cfg);
  const auto full = run_experiment(base_config(Backend::lsm));
  // Removing the checksum removes ~1.77 us of RTT.
  EXPECT_NEAR(full.mean_rtt_us() - no_csum.mean_rtt_us(), 1.77, 0.5);
  EXPECT_EQ(no_csum.avg_breakdown.checksum_ns, 0);
}

TEST(Harness, Figure2QueueingShape) {
  // Latency grows ~linearly with connections once the single core
  // saturates; throughput plateaus; the data-management gap lands in the
  // paper's bands (tput -9..-28 %, latency +11..+42 %).
  auto raw1 = run_experiment(base_config(Backend::raw_persist, 1));
  auto lsm1 = run_experiment(base_config(Backend::lsm, 1));
  auto raw25 = run_experiment(base_config(Backend::raw_persist, 25));
  auto lsm25 = run_experiment(base_config(Backend::lsm, 25));

  // Saturation: 25 connections push throughput far above 1-connection.
  EXPECT_GT(raw25.kreq_per_s, raw1.kreq_per_s * 2);
  // Queueing: latency at 25 conns far exceeds the single-conn RTT.
  EXPECT_GT(raw25.rtt.mean(), 4 * raw1.rtt.mean());

  const double tput_gap1 = 1.0 - lsm1.kreq_per_s / raw1.kreq_per_s;
  const double tput_gap25 = 1.0 - lsm25.kreq_per_s / raw25.kreq_per_s;
  const double lat_gap1 = lsm1.rtt.mean() / raw1.rtt.mean() - 1.0;
  const double lat_gap25 = lsm25.rtt.mean() / raw25.rtt.mean() - 1.0;
  EXPECT_GT(tput_gap1, 0.08);
  EXPECT_LT(tput_gap25, 0.33);
  EXPECT_GT(lat_gap1, 0.10);
  EXPECT_LT(lat_gap25, 0.46);
  // The penalty grows with load (the paper's queueing argument).
  EXPECT_GT(lat_gap25, lat_gap1);
}

TEST(Harness, ServerCpuSaturatesUnderLoad) {
  const auto r1 = run_experiment(base_config(Backend::lsm, 1));
  const auto r25 = run_experiment(base_config(Backend::lsm, 25));
  EXPECT_LT(r1.server_cpu_util, 0.7);
  EXPECT_GT(r25.server_cpu_util, 0.95);
}

TEST(Harness, GetWorkloadRoundTrips) {
  auto cfg = base_config(Backend::lsm);
  cfg.get_ratio = 0.5;
  cfg.keyspace = 64;  // small keyspace so GETs mostly hit primed keys
  const auto r = run_experiment(cfg);
  EXPECT_GT(r.ops, 500u);
  // Early GETs may 404 before their key is primed; most must succeed.
  EXPECT_LT(static_cast<double>(r.server_errors) / static_cast<double>(r.ops),
            0.05);
}

TEST(Harness, PktStoreGetZeroCopyWorkload) {
  auto cfg = base_config(Backend::pktstore);
  cfg.get_ratio = 0.5;
  cfg.keyspace = 64;
  const auto r = run_experiment(cfg);
  EXPECT_GT(r.ops, 500u);
  EXPECT_LT(static_cast<double>(r.server_errors) / static_cast<double>(r.ops),
            0.05);
}

TEST(Harness, HomaLikeTransportShrinksNetworkingShare) {
  auto tcp_cfg = base_config(Backend::lsm);
  auto homa_cfg = tcp_cfg;
  homa_cfg.cost = sim::CostModel::homa_like();
  const auto tcp = run_experiment(tcp_cfg);
  const auto homa = run_experiment(homa_cfg);
  // Networking shrinks; the storage share is untouched, so its relative
  // weight grows — the §5.2 argument for the proposal.
  EXPECT_LT(homa.rtt.mean(), tcp.rtt.mean() - 10000.0);
  EXPECT_NEAR(static_cast<double>(homa.avg_breakdown.total_ns()),
              static_cast<double>(tcp.avg_breakdown.total_ns()), 500.0);
}

TEST(Harness, LossyFabricStillCompletes) {
  auto cfg = base_config(Backend::lsm);
  cfg.fabric.loss_p = 0.005;
  const auto r = run_experiment(cfg);
  EXPECT_GT(r.ops, 200u);
  EXPECT_GT(r.retransmits_hint, 0u);  // drops actually happened
  EXPECT_EQ(r.server_errors, 0u);     // but no request was lost
}

TEST(Harness, LargeValuesSpanSegments) {
  auto cfg = base_config(Backend::pktstore);
  cfg.value_size = 4000;  // 3 segments per request
  const auto r = run_experiment(cfg);
  EXPECT_GT(r.ops, 300u);
  EXPECT_EQ(r.server_errors, 0u);
  // More bytes => higher persist cost per op.
  EXPECT_GT(r.avg_breakdown.persist_ns, 3 * 1940 / 2);
}

TEST(Harness, LsmWithWalIsSlower) {
  auto wal_cfg = base_config(Backend::lsm);
  wal_cfg.lsm_wal = true;
  const auto with_wal = run_experiment(wal_cfg);
  const auto without = run_experiment(base_config(Backend::lsm));
  EXPECT_GT(with_wal.rtt.mean(), without.rtt.mean() + 2000.0);
}

// Range query end-to-end: prime keys through the harness-style server,
// then issue GET /scan/<from>/<to> on a raw connection and check the
// listing (the paper's "efficient range query support" property).
class ScanTest : public ::testing::TestWithParam<Backend> {};

TEST_P(ScanTest, RangeQueryListsKeysInOrder) {
  sim::Env env;
  nic::Fabric fabric(env);
  HostConfig scfg;
  scfg.ip = 2;
  scfg.cores = 1;
  scfg.busy_poll = true;
  scfg.pm_backed = true;
  Host server(env, fabric, scfg);
  HostConfig ccfg;
  ccfg.ip = 1;
  ccfg.cores = 0;
  Host client(env, fabric, ccfg);

  ServerConfig sc;
  sc.backend = GetParam();
  KvServer srv(server, sc);

  net::TcpConn* conn = client.stack().connect(2, 9000);
  http::ResponseParser parser;
  std::optional<http::Response> last;
  conn->on_readable = [&](net::TcpConn& c) {
    std::vector<u8> buf(8192);
    std::size_t n;
    while ((n = c.read(buf)) > 0) {
      auto r = parser.feed(std::span<const u8>(buf.data(), n));
      if (r.has_value()) last = std::move(r);
    }
  };
  auto request = [&](http::Method m, std::string target, std::vector<u8> body) {
    last.reset();
    http::Request req;
    req.method = m;
    req.target = std::move(target);
    req.body = std::move(body);
    (void)conn->send(http::serialize(req));
    env.engine.run_until_idle();
    ASSERT_TRUE(last.has_value());
  };
  env.engine.run_until_idle();
  ASSERT_EQ(conn->state(), net::TcpState::established);

  for (const char* k : {"apple", "banana", "cherry", "date", "elderberry"}) {
    request(http::Method::put, std::string("/kv/") + k,
            std::vector<u8>(std::strlen(k), 'x'));
    ASSERT_EQ(last->status, 201);
  }
  // [banana, date): two keys, ordered.
  request(http::Method::get, "/scan/banana/date", {});
  ASSERT_EQ(last->status, 200);
  const std::string listing(last->body.begin(), last->body.end());
  EXPECT_EQ(listing, "banana\t6\ncherry\t6\n");
  // Unbounded upper end.
  request(http::Method::get, "/scan/date/", {});
  EXPECT_EQ(std::string(last->body.begin(), last->body.end()),
            "date\t4\nelderberry\t10\n");
}

INSTANTIATE_TEST_SUITE_P(Backends, ScanTest,
                         ::testing::Values(Backend::lsm, Backend::pktstore));

TEST(Harness, DeterministicForSeed) {
  const auto a = run_experiment(base_config(Backend::lsm));
  const auto b = run_experiment(base_config(Backend::lsm));
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_DOUBLE_EQ(a.rtt.mean(), b.rtt.mean());
}

}  // namespace
}  // namespace papm::app
