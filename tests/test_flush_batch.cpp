// FlushBatcher unit tests: epoch sizing and deferral bounds, pass-through
// behaviour, deferred-publication masking, ack/quarantine ordering at
// epoch close, and the pool seal/restore hysteresis.
//
// Everything here observes the batcher through the PmDevice's lifetime
// flush counters (total_clwb/total_sfence — alive even under
// PAPM_OBS=OFF) and the batcher's own introspection accessors, so the
// suite runs identically in the noobs tier-1 stage. Tests that need the
// batched regime skip themselves under -DPAPM_GROUP_COMMIT=OFF, where
// begin_op(true) is defined to stay pass-through.

#include <gtest/gtest.h>

#include <vector>

#include "pm/flush_batch.h"
#include "pm/pm_device.h"
#include "pm/pm_pool.h"
#include "sim/env.h"

namespace papm {
namespace {

constexpr u64 kHuge = 1'000'000'000;  // deadline that never fires

pm::GroupCommitPolicy policy_of(u32 ops, u64 deferral_ns = kHuge) {
  pm::GroupCommitPolicy p;
  p.max_epoch_ops = ops;
  p.max_deferral_ns = deferral_ns;
  return p;
}

bool compiled() { return pm::kGroupCommitCompiled; }

TEST(FlushBatcher, PassThroughWhenNotBacklogged) {
  sim::Env env;
  pm::PmDevice dev(env, 1u << 16);
  pm::FlushBatcher b(dev, policy_of(8));
  const u64 off = dev.data_base();

  b.begin_op(/*backlogged=*/false, 0);
  EXPECT_FALSE(b.batching());
  const u64 sfence0 = dev.total_sfence();
  dev.store_u64(off, 1);
  b.persist(off, 8);  // must reach the device immediately
  EXPECT_EQ(dev.total_sfence(), sfence0 + 1);
  EXPECT_EQ(dev.pending_lines(), 0u);
  bool acked = false;
  b.on_committed([&] { acked = true; });
  EXPECT_TRUE(acked) << "pass-through acks must run inline";
  b.end_op();
  EXPECT_EQ(b.epochs_closed(), 0u);
}

TEST(FlushBatcher, RuntimeDisabledPolicyStaysPassThrough) {
  sim::Env env;
  pm::PmDevice dev(env, 1u << 16);
  pm::GroupCommitPolicy p = policy_of(8);
  p.enabled = false;
  pm::FlushBatcher b(dev, p);
  b.begin_op(/*backlogged=*/true, 0);
  EXPECT_FALSE(b.batching());
  b.end_op();
  EXPECT_EQ(b.epochs_closed(), 0u);
}

TEST(FlushBatcher, EpochClosesAtMaxOpsAndDefersFences) {
  if (!compiled()) GTEST_SKIP() << "built with PAPM_GROUP_COMMIT=OFF";
  sim::Env env;
  pm::PmDevice dev(env, 1u << 16);
  pm::FlushBatcher b(dev, policy_of(3));
  const u64 base = dev.data_base();

  int acks = 0;
  const u64 sfence0 = dev.total_sfence();
  for (int i = 0; i < 9; i++) {
    b.begin_op(true, 0);
    EXPECT_TRUE(b.batching());
    dev.store_u64(base + static_cast<u64>(i) * 64, 0x1000 + i);
    b.persist(base + static_cast<u64>(i) * 64, 8);  // fence deferred
    b.on_committed([&] { acks++; });
    // Acks of the epoch in flight must not have run yet; only whole
    // retired epochs ack (i/3*3 completed ops so far).
    EXPECT_EQ(acks, i / 3 * 3);
    b.end_op();
  }
  EXPECT_EQ(b.epochs_closed(), 3u);
  EXPECT_EQ(acks, 9);
  EXPECT_EQ(b.deferred_fences(), 9u);
  EXPECT_EQ(b.max_epoch_ops_seen(), 3u);
  // One real fence per epoch close (no publications, no pools): the 9
  // per-op fences collapsed to 3.
  EXPECT_EQ(dev.total_sfence(), sfence0 + 3);
  EXPECT_FALSE(b.epoch_open());
}

TEST(FlushBatcher, DeadlineClosesStaleEpochOnNextOp) {
  if (!compiled()) GTEST_SKIP() << "built with PAPM_GROUP_COMMIT=OFF";
  sim::Env env;
  pm::PmDevice dev(env, 1u << 16);
  pm::FlushBatcher b(dev, policy_of(100, /*deferral_ns=*/500));
  const u64 off = dev.data_base();

  b.begin_op(true, 1000);
  dev.store_u64(off, 7);
  b.persist(off, 8);
  b.end_op();
  EXPECT_TRUE(b.epoch_open()) << "1 of 100 ops: epoch must stay open";
  EXPECT_EQ(b.epoch_opened_ns(), 1000u);

  // Within the deadline: the same epoch absorbs the next op.
  b.begin_op(true, 1400);
  const u64 serial = b.epoch_serial();
  b.end_op();
  EXPECT_EQ(b.epochs_closed(), 0u);

  // Past the deadline: the stale epoch retires before the op joins a
  // fresh one.
  b.begin_op(true, 2000);
  EXPECT_EQ(b.epochs_closed(), 1u);
  EXPECT_NE(b.epoch_serial(), serial);
  b.end_op();
  b.close();
}

TEST(FlushBatcher, MaybeCloseHonorsDeadlineAndIdle) {
  if (!compiled()) GTEST_SKIP() << "built with PAPM_GROUP_COMMIT=OFF";
  sim::Env env;
  pm::PmDevice dev(env, 1u << 16);
  pm::FlushBatcher b(dev, policy_of(100, /*deferral_ns=*/500));
  b.begin_op(true, 0);
  b.fence();
  b.end_op();
  b.maybe_close(/*now_ns=*/100, /*idle=*/false);
  EXPECT_TRUE(b.epoch_open()) << "neither bound hit";
  b.maybe_close(/*now_ns=*/600, /*idle=*/false);
  EXPECT_FALSE(b.epoch_open()) << "deadline must close the epoch";
  b.begin_op(true, 700);
  b.end_op();
  b.maybe_close(/*now_ns=*/710, /*idle=*/true);
  EXPECT_FALSE(b.epoch_open()) << "idle must close the epoch";
}

TEST(FlushBatcher, DeferredPublicationMaskedFromCrashUntilClose) {
  if (!compiled()) GTEST_SKIP() << "built with PAPM_GROUP_COMMIT=OFF";
  // Phase 1: a withheld publication is visible to loads but survives no
  // crash — the old (zero) word is what recovery sees.
  {
    sim::Env env;
    pm::PmDevice dev(env, 1u << 16);
    pm::FlushBatcher b(dev, policy_of(8));
    const u64 content = dev.data_base();
    const u64 link = content + 1024;
    b.begin_op(true, 0);
    dev.store_u64(content, 0xc0ffee);
    b.persist(content, 8);
    b.publish_u64(link, content);
    EXPECT_EQ(dev.load_u64(link), content) << "loads must forward the store";
    EXPECT_EQ(dev.deferred_words(), 1u);
    dev.crash();
    EXPECT_EQ(dev.load_u64(link), 0u)
        << "unapplied publication must never become durable";
  }
  // Phase 2: after close() both the content and the publication are
  // durable — the link can never outlive a crash without its bytes.
  {
    sim::Env env;
    pm::PmDevice dev(env, 1u << 16);
    pm::FlushBatcher b(dev, policy_of(8));
    const u64 content = dev.data_base();
    const u64 link = content + 1024;
    b.begin_op(true, 0);
    dev.store_u64(content, 0xc0ffee);
    b.persist(content, 8);
    b.publish_u64(link, content);
    b.end_op();
    b.close();
    EXPECT_EQ(dev.deferred_words(), 0u);
    dev.crash();
    EXPECT_EQ(dev.load_u64(link), content);
    EXPECT_EQ(dev.load_u64(content), 0xc0ffeeu);
  }
}

TEST(FlushBatcher, CloseRunsAcksBeforeQuarantineInFifoOrder) {
  if (!compiled()) GTEST_SKIP() << "built with PAPM_GROUP_COMMIT=OFF";
  sim::Env env;
  pm::PmDevice dev(env, 1u << 16);
  pm::FlushBatcher b(dev, policy_of(8));
  std::vector<int> order;
  b.begin_op(true, 0);
  b.fence();
  b.on_committed([&] { order.push_back(1); });
  b.defer([&] { order.push_back(3); });
  b.on_committed([&] { order.push_back(2); });
  b.defer([&] { order.push_back(4); });
  b.end_op();
  b.close();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}))
      << "acks (FIFO) must precede quarantined frees (FIFO)";
}

TEST(FlushBatcher, PoolSealHysteresisRestoresOnlyAfterSustainedIdle) {
  if (!compiled()) GTEST_SKIP() << "built with PAPM_GROUP_COMMIT=OFF";
  sim::Env env;
  pm::PmDevice dev(env, 1u << 20);
  auto pool = pm::PmPool::create(dev, "p", dev.data_base(), 1u << 18);
  // A non-empty freelist, so sealing has something to zero.
  auto blk = pool.alloc(256);
  ASSERT_TRUE(blk.ok());
  pool.free(blk.value(), 256);

  pm::FlushBatcher b(dev, policy_of(4));
  b.register_pool(pool);
  b.begin_op(true, 0);
  EXPECT_TRUE(pool.in_commit_epoch()) << "activation must seal the pool";
  // Mid-epoch recycling is DRAM-only: a free + alloc round-trip issues no
  // persistence events beyond the bump frontier (already allocated here).
  const u64 sfence0 = dev.total_sfence();
  const u64 clwb0 = dev.total_clwb();
  auto blk2 = pool.alloc(256);
  ASSERT_TRUE(blk2.ok());
  EXPECT_EQ(blk2.value(), blk.value()) << "parked free block must recycle";
  pool.free(blk2.value(), 256);
  EXPECT_EQ(dev.total_sfence(), sfence0);
  EXPECT_EQ(dev.total_clwb(), clwb0);
  b.end_op();

  // A load dip shorter than the hysteresis window must not restore the
  // freelists (that would cost a clwb per parked free plus a re-seal).
  for (int i = 0; i < 63; i++) b.begin_op(false, 0);
  EXPECT_TRUE(pool.in_commit_epoch()) << "momentary dip must not deactivate";
  b.begin_op(false, 0);  // 64th consecutive pass-through op
  EXPECT_FALSE(pool.in_commit_epoch())
      << "sustained idle must restore the durable freelists";

  // The restored freelist serves the parked block again, durably.
  auto blk3 = pool.alloc(256);
  ASSERT_TRUE(blk3.ok());
  EXPECT_EQ(blk3.value(), blk.value());
}

}  // namespace
}  // namespace papm
