// Multi-host replication tests (src/repl/): quorum ack accounting,
// idempotent replay over an injected lossy fabric, promotion of the
// longest durable prefix, rejoin re-sync convergence, degraded-mode
// accounting, and whole-host crash sweeps proving I1 (every
// client-acked write survives failover) at every flush/fence boundary
// of the primary and of a replica.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/pktstore.h"
#include "crash_harness.h"
#include "net/udp.h"
#include "nic/fabric.h"
#include "nic/nic.h"
#include "pm/pm_pool.h"
#include "repl/replica.h"
#include "repl/replicator.h"

namespace papm::repl {
namespace {

constexpr u32 kPrimIp = 0x0a000001;
constexpr u32 kR1Ip = 0x0a0000f1;
constexpr u32 kR2Ip = 0x0a0000f2;

std::vector<u8> rand_bytes(std::size_t n, u64 seed) {
  Rng rng(seed);
  std::vector<u8> v(n);
  for (auto& b : v) b = static_cast<u8>(rng.next());
  return v;
}

// Scaled-down timers so retries, give-ups and failovers resolve within
// milliseconds of sim time instead of the production defaults.
ReplOptions fast_opts(u32 quorum) {
  ReplOptions o;
  o.quorum = quorum;
  o.retry_backoff_ns = 100 * kNsPerUs;
  o.max_peer_retries = 6;
  o.hb_interval_ns = 50 * kNsPerUs;
  o.hb_timeout_ns = 250 * kNsPerUs;
  o.homa.sender_timeout_ns = 50 * kNsPerUs;
  o.homa.backoff_mult = 2.0;
  o.homa.max_retries = 2;
  return o;
}

ReplicaConfig replica_cfg(u32 ip, const ReplOptions& opts) {
  ReplicaConfig c;
  c.ip = ip;
  c.primary_ip = kPrimIp;
  c.pm_size = 16u << 20;
  c.opts = opts;
  return c;
}

// The primary host, distilled to what the replication layer sees: a
// PM-backed packet pool (the gather ranges' physical home), a
// kernel-bypass UDP stack, a pass-through PktStore as the local durable
// copy, and the Replicator. Standing in for app::KvServer's datapath.
struct Primary {
  static constexpr u64 kDevSize = 32u << 20;

  Primary(sim::Env& env, nic::Fabric& fabric, const ReplOptions& opts,
          std::vector<u32> peers)
      : dev(env, kDevSize),
        pmpool(pm::PmPool::create(dev, "pkts", dev.data_base(),
                                  kDevSize - 4096)),
        arena(dev, pmpool),
        pool(env, arena),
        nic(env, fabric, kPrimIp, pool),
        udp(env, nic, pool,
            [] {
              net::UdpStack::Options o;
              o.ip = kPrimIp;
              o.kernel_bypass = true;
              return o;
            }()),
        store(core::PktStore::create(pool, "primary")),
        repl(env, udp, opts, std::move(peers)) {
    pmpool.set_charges(env.cost.pool_alloc_ns, env.cost.pool_alloc_ns / 2);
    nic.set_sink([this](net::PktBuf* pb) { udp.rx(pb); });
  }

  // Stages `val` in a pool block and submits it as a single gather range
  // — the unit-test analogue of repl::gather_from_pkts over a request's
  // TCP segments. The Replicator takes its own reference; ours drops.
  u64 submit_put(std::string_view key, std::span<const u8> val,
                 Replicator::Done done, u64 trace = 0) {
    net::PktBuf* pb = pool.alloc(static_cast<u32>(val.size()));
    EXPECT_NE(pb, nullptr);
    auto w = pool.writable(*pb, static_cast<u32>(val.size()));
    std::memcpy(w.data(), val.data(), val.size());
    pb->len = static_cast<u32>(val.size());
    const Replicator::GatherSeg seg{pb->data_h, 0, pb->len, pb->cap};
    const u64 seq =
        repl.submit_put(key, {&seg, 1}, static_cast<u32>(val.size()), pool,
                        std::move(done), trace);
    net::PktBufPool::release(pb);
    return seq;
  }

  pm::PmDevice dev;
  pm::PmPool pmpool;
  net::PmArena arena;
  net::PktBufPool pool;
  nic::Nic nic;
  net::UdpStack udp;
  core::PktStore store;
  Replicator repl;
};

void pump_for(sim::Env& env, SimTime d) {
  env.engine.run_until(env.now() + d);
}

// Advances the sim in fixed 20 us slices until `pred` holds. Slices keep
// the advance deterministic (event order never depends on the slicing)
// while self-rescheduling timers (heartbeats) can't spin run_until_idle.
template <class Pred>
[[nodiscard]] bool pump_until(sim::Env& env, Pred&& pred,
                              SimTime limit = 100 * kNsPerMs) {
  const SimTime end = env.now() + limit;
  while (!pred() && env.now() < end) {
    env.engine.run_until(env.now() + 20 * kNsPerUs);
  }
  return pred();
}

// ---------------------------------------------------------------------------
// Quorum accounting
// ---------------------------------------------------------------------------

TEST(Repl, QuorumAckAccounting) {
  sim::Env env;
  nic::Fabric fabric(env);
  const ReplOptions opts = fast_opts(/*quorum=*/3);  // primary + BOTH remotes
  ReplicaNode r1(env, fabric, replica_cfg(kR1Ip, opts));
  ReplicaNode r2(env, fabric, replica_cfg(kR2Ip, opts));
  Primary p(env, fabric, opts, {kR1Ip, kR2Ip});

  std::map<std::string, std::vector<u8>> written;
  int dones = 0;
  int degraded = 0;
  for (int i = 0; i < 5; i++) {
    const std::string key = "k" + std::to_string(i);
    const auto val = rand_bytes(200 + static_cast<std::size_t>(i) * 37,
                                100 + static_cast<u64>(i));
    written[key] = val;
    bool done = false;
    p.submit_put(key, val, [&](bool deg) {
      done = true;
      dones++;
      if (deg) degraded++;
    });
    ASSERT_TRUE(pump_until(env, [&] { return done; })) << "op " << i;
    // quorum=3: the ack cannot have fired before both replicas held the
    // write durably.
    EXPECT_GE(r1.durable_seq(), static_cast<u64>(i) + 1);
    EXPECT_GE(r2.durable_seq(), static_cast<u64>(i) + 1);
  }
  pump_for(env, 2 * kNsPerMs);  // let the trailing acks retire the records

  EXPECT_EQ(dones, 5);
  EXPECT_EQ(degraded, 0);
  EXPECT_EQ(p.repl.forwards(), 10u);  // 5 ops x 2 peers
  EXPECT_EQ(p.repl.acks_rx(), 10u);   // serial ops: one ack per op per peer
  EXPECT_EQ(p.repl.retransmits(), 0u);
  EXPECT_EQ(p.repl.peer_acked(kR1Ip), 5u);
  EXPECT_EQ(p.repl.peer_acked(kR2Ip), 5u);
  EXPECT_EQ(p.repl.inflight_records(), 0u);  // fully acked => retired
  EXPECT_EQ(r1.applies(), 5u);
  EXPECT_EQ(r2.applies(), 5u);
  for (const auto& [key, val] : written) {
    EXPECT_EQ(r1.store().get(key).value(), val) << key;
    EXPECT_EQ(r2.store().get(key).value(), val) << key;
  }
}

// ---------------------------------------------------------------------------
// Cross-host trace stitching
// ---------------------------------------------------------------------------

TEST(Repl, TraceIdStitchesReplicaApplySpans) {
  sim::Env env;
  nic::Fabric fabric(env);
  const ReplOptions opts = fast_opts(/*quorum=*/2);
  ReplicaConfig rc = replica_cfg(kR1Ip, opts);
  rc.index = 1;  // apply spans land on track kReplicaTrackBase + 1
  ReplicaNode r1(env, fabric, rc);
  Primary p(env, fabric, opts, {kR1Ip});

  // A traced op: the primary's trace id rides the kData header and the
  // replica's apply span is recorded under that id on its own track.
  const u64 trace_id = 0xabc123;
  bool done = false;
  p.submit_put("t", rand_bytes(128, 11), [&](bool) { done = true; },
               trace_id);
  ASSERT_TRUE(pump_until(env, [&] { return done; }));

  if (!obs::kEnabled) {
    EXPECT_EQ(r1.trace().size(), 0u);
    return;
  }
  ASSERT_EQ(r1.trace().size(), 1u);
  const obs::SpanEvent& e = r1.trace().events()[0];
  EXPECT_EQ(e.req, trace_id);
  EXPECT_EQ(e.stage, obs::Stage::repl_apply);
  EXPECT_EQ(e.track, obs::kReplicaTrackBase + 1);
  EXPECT_GT(e.dur, 0u);  // the span covers the durable apply work

  // An untraced op (trace id 0) records nothing on the replica.
  bool done2 = false;
  p.submit_put("u", rand_bytes(64, 12), [&](bool) { done2 = true; });
  ASSERT_TRUE(pump_until(env, [&] { return done2; }));
  EXPECT_EQ(r1.applies(), 2u);
  EXPECT_EQ(r1.trace().size(), 1u);
}

// ---------------------------------------------------------------------------
// Idempotent replay
// ---------------------------------------------------------------------------

TEST(Repl, IdempotentReplayAfterDuplicatedForward) {
  // Eat every frame towards the primary for the first 500 us: the
  // replica applies the forward but neither its Homa-level ack nor its
  // replication ack gets back. The primary's Homa sender gives up, the
  // repl layer retransmits, and the replica sees the same seq again —
  // which must be applied exactly once and re-acked.
  sim::Env env;
  nic::Fabric fabric(env);
  const ReplOptions opts = fast_opts(/*quorum=*/2);
  ReplicaNode r1(env, fabric, replica_cfg(kR1Ip, opts));
  Primary p(env, fabric, opts, {kR1Ip});

  fabric.set_drop_hook([&](u32 dst, const nic::WireFrame&) {
    return dst == kPrimIp && env.now() < 500 * kNsPerUs;
  });

  const auto val = rand_bytes(300, 7);
  bool done = false;
  bool deg = false;
  p.submit_put("dup", val, [&](bool d) {
    done = true;
    deg = d;
  });
  ASSERT_TRUE(pump_until(env, [&] { return done; }));
  EXPECT_FALSE(deg);
  EXPECT_GE(p.repl.retransmits(), 1u);  // the repl-layer replay happened
  EXPECT_EQ(r1.applies(), 1u);          // ...and was applied exactly once
  EXPECT_EQ(r1.applied_seq(), 1u);
  EXPECT_EQ(p.repl.peer_acked(kR1Ip), 1u);
  EXPECT_EQ(r1.store().get("dup").value(), val);

  // The fault window is over: a follow-up op flows clean.
  const auto val2 = rand_bytes(64, 8);
  bool done2 = false;
  p.submit_put("after", val2, [&](bool) { done2 = true; });
  ASSERT_TRUE(pump_until(env, [&] { return done2; }));
  EXPECT_EQ(r1.applies(), 2u);
  EXPECT_EQ(r1.store().get("after").value(), val2);
}

// ---------------------------------------------------------------------------
// Promotion
// ---------------------------------------------------------------------------

TEST(Repl, PromotionPicksLongestDurablePrefix) {
  // r2's ingress link is fully lossy, so every quorum is met via r1
  // alone. When the primary dies, failover must promote r1 (the longest
  // durable prefix) — and r1 must hold every client-acked write.
  sim::Env env;
  nic::Fabric fabric(env);
  const ReplOptions opts = fast_opts(/*quorum=*/2);
  ReplicaNode r1(env, fabric, replica_cfg(kR1Ip, opts));
  ReplicaNode r2(env, fabric, replica_cfg(kR2Ip, opts));
  Primary p(env, fabric, opts, {kR1Ip, kR2Ip});

  nic::Fabric::Options dead_link;
  dead_link.loss_p = 1.0;
  fabric.set_link_fault(kR2Ip, dead_link);

  bool suspected = false;
  r1.on_primary_suspect = [&] { suspected = true; };
  r1.monitor_primary();
  p.repl.start_heartbeats();

  std::map<std::string, std::vector<u8>> acked;
  for (int i = 0; i < 6; i++) {
    const std::string key = "p" + std::to_string(i);
    const auto val = rand_bytes(128, 200 + static_cast<u64>(i));
    bool done = false;
    p.submit_put(key, val, [&](bool) { done = true; });
    ASSERT_TRUE(pump_until(env, [&] { return done; })) << "op " << i;
    acked[key] = val;
  }
  EXPECT_EQ(r1.durable_seq(), 6u);
  EXPECT_EQ(r2.durable_seq(), 0u);  // partitioned the whole time

  // Whole-host cut of the primary: the heartbeat stream stops and r1's
  // monitor declares it suspect within the timeout.
  const SimTime t_cut = env.now();
  p.repl.stop();
  p.nic.set_link_up(false);
  ASSERT_TRUE(pump_until(env, [&] { return suspected; }));
  EXPECT_LE(env.now() - t_cut, 2 * opts.hb_timeout_ns + opts.hb_interval_ns);

  // Failover: promote the survivor with the longest durable prefix.
  ReplicaNode& winner = r1.durable_seq() >= r2.durable_seq() ? r1 : r2;
  EXPECT_EQ(&winner, &r1);
  winner.promote();
  EXPECT_TRUE(winner.promoted());
  for (const auto& [key, val] : acked) {
    EXPECT_EQ(winner.store().get(key).value(), val) << key;
  }
}

// ---------------------------------------------------------------------------
// Rejoin / re-sync
// ---------------------------------------------------------------------------

TEST(Repl, RejoinResyncConverges) {
  sim::Env env;
  nic::Fabric fabric(env);
  // quorum=1: the primary keeps acking alone while the replica is down,
  // building up exactly the divergence the snapshot must repair.
  const ReplOptions opts = fast_opts(/*quorum=*/1);
  const ReplicaConfig rc1 = replica_cfg(kR1Ip, opts);
  auto r1 = std::make_unique<ReplicaNode>(env, fabric, rc1);
  Primary p(env, fabric, opts, {kR1Ip});

  std::map<std::string, std::vector<u8>> state;
  auto put = [&](const std::string& key, u64 seed, std::size_t n) {
    const auto val = rand_bytes(n, seed);
    ASSERT_TRUE(p.store.put_bytes(key, val).ok());
    p.submit_put(key, val, {});
    state[key] = val;
  };
  auto erase = [&](const std::string& key) {
    p.store.erase(key);
    p.repl.submit_erase(key, {});
    state.erase(key);
  };

  // Phase A: both hosts live.
  put("a", 1, 150);
  put("b", 2, 90);
  put("c", 3, 260);
  put("b", 4, 120);  // overwrite
  erase("c");
  ASSERT_TRUE(pump_until(env, [&] { return r1->durable_seq() == 5; }));

  // Whole-host cut of the replica; its DIMMs (the persisted image) are
  // what a rejoin gets back.
  r1->kill();
  auto dimms = r1->device().clone_persisted();

  // Phase B: the primary keeps mutating while the replica is down.
  put("d", 5, 512);
  erase("a");
  put("e", 6, 40);
  EXPECT_EQ(p.repl.last_seq(), 8u);
  pump_for(env, 2 * kNsPerMs);  // forwards to the dead host give up

  // Rejoin: recover from the snapshot, then re-sync from the primary.
  ReplicaNode r1b(env, fabric, rc1, std::move(dimms));
  EXPECT_EQ(r1b.applied_seq(), 5u);  // what its DIMMs held
  send_snapshot(p.repl.homa(), p.store, kR1Ip, opts.port, p.repl.last_seq());
  ASSERT_TRUE(pump_until(env, [&] { return r1b.applied_seq() == 8; }));
  EXPECT_EQ(r1b.resync_items(), 3u);  // b, d, e
  p.repl.revive_peer(kR1Ip, p.repl.last_seq());

  // Converged: same keys, same values, deletions included.
  for (const auto& [key, val] : state) {
    EXPECT_EQ(r1b.store().get(key).value(), val) << key;
  }
  EXPECT_FALSE(r1b.store().get("a").ok());
  EXPECT_FALSE(r1b.store().get("c").ok());
  EXPECT_EQ(r1b.store().size(), state.size());

  // The revived peer takes the live stream again.
  put("f", 7, 75);
  ASSERT_TRUE(pump_until(env, [&] { return r1b.applied_seq() == 9; }));
  EXPECT_EQ(r1b.store().get("f").value(), state["f"]);
  EXPECT_EQ(p.repl.alive_peers(), 1u);
}

// ---------------------------------------------------------------------------
// Degraded mode
// ---------------------------------------------------------------------------

TEST(Repl, DegradedLocalAckWhenQuorumUnreachable) {
  sim::Env env;
  nic::Fabric fabric(env);
  ReplOptions opts = fast_opts(/*quorum=*/2);
  opts.degrade = DegradePolicy::local_ack;
  opts.degrade_after_ns = 300 * kNsPerUs;
  // No replica is attached at kR1Ip: the quorum is unreachable from the
  // first forward.
  Primary p(env, fabric, opts, {kR1Ip});

  bool done = false;
  bool deg = false;
  p.submit_put("k", rand_bytes(100, 9), [&](bool d) {
    done = true;
    deg = d;
  });
  const SimTime t0 = env.now();
  ASSERT_TRUE(pump_until(env, [&] { return done; }, 5 * kNsPerMs));
  EXPECT_TRUE(deg);                       // released as a degraded ack...
  EXPECT_GE(env.now() - t0, opts.degrade_after_ns);  // ...not before the
                                                     // deadline
  EXPECT_EQ(p.repl.degraded_acks(), 1u);  // ...and counted, never silent
}

TEST(Repl, StallPolicyHoldsAcksWhenQuorumUnreachable) {
  sim::Env env;
  nic::Fabric fabric(env);
  const ReplOptions opts = fast_opts(/*quorum=*/2);  // degrade = stall
  Primary p(env, fabric, opts, {kR1Ip});

  bool done = false;
  p.submit_put("k", rand_bytes(100, 10), [&](bool) { done = true; });
  EXPECT_FALSE(pump_until(env, [&] { return done; }, 10 * kNsPerMs));
  EXPECT_EQ(p.repl.degraded_acks(), 0u);
  EXPECT_EQ(p.repl.inflight_records(), 1u);  // held, not dropped
}

// ---------------------------------------------------------------------------
// Whole-host crash sweeps
// ---------------------------------------------------------------------------

// Primary + two replicas at quorum 2 — the bench_repl topology.
struct Cluster {
  sim::Env env;
  nic::Fabric fabric{env};
  ReplicaConfig rc1 = replica_cfg(kR1Ip, fast_opts(2));
  ReplicaConfig rc2 = replica_cfg(kR2Ip, fast_opts(2));
  std::optional<ReplicaNode> r1;
  std::optional<ReplicaNode> r2;
  std::optional<Primary> p;

  Cluster() {
    r1.emplace(env, fabric, rc1);
    r2.emplace(env, fabric, rc2);
    p.emplace(env, fabric, fast_opts(2), std::vector<u32>{kR1Ip, kR2Ip});
  }
};

struct WlOp {
  bool erase;
  const char* key;
  u64 seed;
  std::size_t len;
};

// Deterministic replicated workload: overwrites, an erase, and sizes
// spanning one to several Homa segments.
std::vector<WlOp> workload_ops() {
  return {{false, "alpha", 1, 180},
          {false, "beta", 2, 96},
          {false, "alpha", 3, 2400},
          {true, "beta", 0, 0},
          {false, "gamma", 4, 512},
          {false, "delta", 5, 64}};
}

// One client-visible op: local durable apply on the primary, forward,
// and the quorum-gated ack. `on_pump` lets the replica sweep catch the
// PowerFailure a replica's device throws mid-apply; the primary sweep
// lets it propagate (the primary is the host being cut).
void run_op(Cluster& c, crashtest::AckLog& log, const WlOp& op,
            const std::function<void()>& on_power_failure = {}) {
  bool done = false;
  if (op.erase) {
    log.begin_erase(op.key);
    c.p->store.erase(op.key);
    c.p->repl.submit_erase(op.key, [&](bool) { done = true; });
  } else {
    const auto val = rand_bytes(op.len, op.seed);
    log.begin_put(op.key, val);
    ASSERT_TRUE(c.p->store.put_bytes(op.key, val).ok());
    c.p->submit_put(op.key, val, [&](bool) { done = true; });
  }
  const SimTime end = c.env.now() + 200 * kNsPerMs;
  while (!done && c.env.now() < end) {
    if (on_power_failure) {
      try {
        c.env.engine.run_until(c.env.now() + 20 * kNsPerUs);
      } catch (const pm::PowerFailure&) {
        on_power_failure();
      }
    } else {
      c.env.engine.run_until(c.env.now() + 20 * kNsPerUs);
    }
  }
  ASSERT_TRUE(done) << "quorum ack never released for '" << op.key << "'";
  log.ack();
}

TEST(CrashSweep, ReplPrimaryCut) {
  // Size the sweep: count the primary device's flush/fence boundaries
  // across one clean run of the workload.
  u64 boundaries = 0;
  {
    Cluster c;
    pm::FaultPlan counting{};
    counting.crash_at_event = 0;
    c.p->dev.set_fault_plan(counting);
    crashtest::AckLog log;
    for (const auto& op : workload_ops()) {
      run_op(c, log, op);
      if (::testing::Test::HasFatalFailure()) return;
    }
    boundaries = c.p->dev.fault_events();
  }
  ASSERT_GT(boundaries, 0u);

  u64 points = 0;
  for (u64 k = 1; k <= boundaries; k++) {
    SCOPED_TRACE("primary cut at flush/fence event " + std::to_string(k) +
                 " of " + std::to_string(boundaries));
    Cluster c;
    pm::FaultPlan plan{};
    plan.crash_at_event = k;
    c.p->dev.set_fault_plan(plan);
    crashtest::AckLog log;
    bool cut = false;
    try {
      for (const auto& op : workload_ops()) {
        run_op(c, log, op);
        if (::testing::Test::HasFatalFailure()) return;
      }
    } catch (const pm::PowerFailure&) {
      cut = true;
    }
    ASSERT_TRUE(cut) << "workload not deterministic: event never reached";
    c.p->dev.clear_fault_plan();
    c.p->repl.stop();
    c.p->nic.set_link_up(false);
    // Frames already on the wire may still land; replicas drain their
    // open epochs. Either way I1 must hold afterwards.
    pump_for(c.env, 2 * kNsPerMs);

    ReplicaNode& winner =
        c.r1->durable_seq() >= c.r2->durable_seq() ? *c.r1 : *c.r2;
    winner.promote();
    crashtest::verify_kv(log, [&](const std::string& key) {
      return winner.store().get(key);
    });
    points++;
    if (::testing::Test::HasFatalFailure()) break;
  }
  EXPECT_EQ(points, boundaries);
}

TEST(CrashSweep, ReplReplicaCut) {
  // Same sweep, cutting replica r1 instead: the cluster must keep
  // acking through r2, and the cut host must rejoin via snapshot
  // re-sync and converge.
  u64 boundaries = 0;
  {
    Cluster c;
    pm::FaultPlan counting{};
    counting.crash_at_event = 0;
    c.r1->device().set_fault_plan(counting);
    crashtest::AckLog log;
    for (const auto& op : workload_ops()) {
      run_op(c, log, op);
      if (::testing::Test::HasFatalFailure()) return;
    }
    boundaries = c.r1->device().fault_events();
  }
  ASSERT_GT(boundaries, 0u);

  u64 points = 0;
  for (u64 k = 1; k <= boundaries; k++) {
    SCOPED_TRACE("replica cut at flush/fence event " + std::to_string(k) +
                 " of " + std::to_string(boundaries));
    Cluster c;
    pm::FaultPlan plan{};
    plan.crash_at_event = k;
    c.r1->device().set_fault_plan(plan);
    crashtest::AckLog log;
    bool cut = false;
    for (const auto& op : workload_ops()) {
      // The replica's PowerFailure surfaces out of the event loop; the
      // cluster kills the host and keeps serving on the quorum.
      run_op(c, log, op, [&] {
        cut = true;
        c.r1->kill();
      });
      if (::testing::Test::HasFatalFailure()) return;
    }
    ASSERT_TRUE(cut) << "workload not deterministic: event never reached";

    // Rejoin from the dead host's persisted image, re-sync, revive.
    auto dimms = c.r1->device().clone_persisted();
    ReplicaNode r1b(c.env, c.fabric, c.rc1, std::move(dimms));
    send_snapshot(c.p->repl.homa(), c.p->store, kR1Ip, c.rc1.opts.port,
                  c.p->repl.last_seq());
    ASSERT_TRUE(pump_until(c.env, [&] {
      return r1b.applied_seq() == c.p->repl.last_seq();
    })) << "re-sync did not converge";
    c.p->repl.revive_peer(kR1Ip, c.p->repl.last_seq());

    // One more replicated op proves the revived host takes the stream.
    run_op(c, log, {false, "omega", 9, 220});
    if (::testing::Test::HasFatalFailure()) return;
    ASSERT_TRUE(pump_until(c.env, [&] {
      return r1b.applied_seq() == c.p->repl.last_seq();
    }));

    // I1 against the rejoined host: every acked write, exactly.
    crashtest::verify_kv(log, [&](const std::string& key) {
      return r1b.store().get(key);
    });
    points++;
    if (::testing::Test::HasFatalFailure()) break;
  }
  EXPECT_EQ(points, boundaries);
}

}  // namespace
}  // namespace papm::repl
