// Tests for the volatile skip list, checked against std::map as model.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/rng.h"
#include "container/skiplist.h"

namespace papm::container {
namespace {

TEST(SkipList, EmptyLookup) {
  SkipList sl;
  EXPECT_EQ(sl.size(), 0u);
  EXPECT_EQ(sl.get("missing").errc(), Errc::not_found);
  EXPECT_FALSE(sl.erase("missing"));
}

TEST(SkipList, PutGetSingle) {
  SkipList sl;
  EXPECT_TRUE(sl.put("key", 42));
  EXPECT_EQ(sl.size(), 1u);
  EXPECT_EQ(sl.get("key").value(), 42u);
}

TEST(SkipList, PutOverwrites) {
  SkipList sl;
  EXPECT_TRUE(sl.put("key", 1));
  EXPECT_FALSE(sl.put("key", 2));  // existing key
  EXPECT_EQ(sl.size(), 1u);
  EXPECT_EQ(sl.get("key").value(), 2u);
}

TEST(SkipList, EraseRemovesOnlyTarget) {
  SkipList sl;
  sl.put("a", 1);
  sl.put("b", 2);
  sl.put("c", 3);
  EXPECT_TRUE(sl.erase("b"));
  EXPECT_EQ(sl.size(), 2u);
  EXPECT_EQ(sl.get("a").value(), 1u);
  EXPECT_EQ(sl.get("b").errc(), Errc::not_found);
  EXPECT_EQ(sl.get("c").value(), 3u);
  EXPECT_FALSE(sl.erase("b"));
}

TEST(SkipList, ScanRangeOrderedAndBounded) {
  SkipList sl;
  for (char c = 'a'; c <= 'z'; c++) {
    sl.put(std::string(1, c), static_cast<u64>(c));
  }
  std::string visited;
  sl.scan("d", "h", [&](std::string_view k, u64) {
    visited += k;
    return true;
  });
  EXPECT_EQ(visited, "defg");
}

TEST(SkipList, ScanUnboundedAndEarlyStop) {
  SkipList sl;
  for (int i = 0; i < 10; i++) sl.put("k" + std::to_string(i), i);
  int n = 0;
  sl.scan("", "", [&](std::string_view, u64) { return ++n < 4; });
  EXPECT_EQ(n, 4);
}

class SkipListFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(SkipListFuzz, MatchesMapModel) {
  SkipList sl;
  std::map<std::string, u64> model;
  Rng rng(GetParam());

  for (int step = 0; step < 5000; step++) {
    const std::string key = "k" + std::to_string(rng.next_below(300));
    const double dice = rng.next_double();
    if (dice < 0.5) {
      const u64 v = rng.next();
      sl.put(key, v);
      model[key] = v;
    } else if (dice < 0.75) {
      const auto got = sl.get(key);
      const auto mit = model.find(key);
      if (mit == model.end()) {
        EXPECT_FALSE(got.ok());
      } else {
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(got.value(), mit->second);
      }
    } else {
      EXPECT_EQ(sl.erase(key), model.erase(key) > 0);
    }
    ASSERT_EQ(sl.size(), model.size());
  }

  // Final full scan matches the model exactly, in order.
  auto mit = model.begin();
  sl.scan("", "", [&](std::string_view k, u64 v) {
    EXPECT_NE(mit, model.end());
    EXPECT_EQ(k, mit->first);
    EXPECT_EQ(v, mit->second);
    ++mit;
    return true;
  });
  EXPECT_EQ(mit, model.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkipListFuzz,
                         ::testing::Values(11, 22, 33, 44, 55, 666));

TEST(SkipList, VisitCountReasonable) {
  SkipList sl;
  for (int i = 0; i < 4096; i++) sl.put("key" + std::to_string(i), i);
  (void)sl.get("key2000");
  // O(log n): must touch far fewer nodes than a linear scan.
  EXPECT_LT(sl.last_visits(), 200u);
  EXPECT_GT(sl.last_visits(), 0u);
}

}  // namespace
}  // namespace papm::container
