// Crash-point sweep over every backend (ISSUE 2 tentpole).
//
// Each scenario below crashes its backend at *every* flush/fence boundary
// of a deterministic 1 KB-write workload (see tests/crash_harness.h for
// the driver and the invariants I1-I4), under two failure models:
//
//   drop-only  — unfenced lines race (the baseline crash() semantics);
//   tear+evict — the full DCPMM model: 8-byte-granularity torn lines plus
//                spontaneous eviction of never-flushed dirty lines.
//
// Backends: the raw-region publish protocol (the pattern every structure
// builds on), the LSM store (with and without WAL + rotation), PktStore,
// and two per-shard persistent skip lists with a cross-shard merge.
// Plus targeted unit tests for the FaultPlan semantics themselves and the
// satellite coverage: PmArena reuse-after-recovery and PktBufPool
// exhaustion/refill under an armed fault plan.

#include <gtest/gtest.h>

#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/inet_csum.h"
#include "container/pskiplist.h"
#include "core/pktstore.h"
#include "crash_harness.h"
#include "net/pktbuf.h"
#include "obs/flightrec.h"
#include "pm/fault_plan.h"
#include "pm/flush_batch.h"
#include "pm/pm_device.h"
#include "pm/pm_pool.h"
#include "sim/env.h"
#include "storage/lsm_store.h"

namespace papm {
namespace {

using crashtest::AckLog;
using crashtest::CrashScenario;
using crashtest::SweepOptions;

std::vector<u8> value_of(u64 tag, std::size_t len) {
  std::vector<u8> v(len);
  for (std::size_t i = 0; i < len; i++) {
    v[i] = static_cast<u8>((tag * 31 + i * 7 + 11) & 0xff);
  }
  return v;
}

std::string key_of(std::size_t i) {
  return "k" + std::string(i < 10 ? "0" : "") + std::to_string(i);
}

std::vector<u8> enc_u64(u64 v) {
  std::vector<u8> out(8);
  std::memcpy(out.data(), &v, 8);
  return out;
}

// The two failure models every sweep runs under.
std::vector<std::pair<std::string, pm::FaultPlan>> sweep_plans() {
  pm::FaultPlan drop;  // reorder/drop only (baseline semantics)
  drop.unfenced_drain_p = 0.5;
  pm::FaultPlan tear;  // full model: torn lines + dirty-line eviction
  tear.unfenced_drain_p = 0.4;
  tear.tear_p = 0.75;
  tear.evict_dirty_p = 0.35;
  tear.seed = 7;
  return {{"drop-only", drop}, {"tear+evict", tear}};
}

// --- FaultPlan semantics (unit level) ------------------------------------

TEST(FaultPlan, CountsEventsAndCutsAtScheduledBoundary) {
  sim::Env env;
  pm::PmDevice dev(env, 1u << 16);
  pm::FaultPlan plan;
  plan.crash_at_event = 3;
  dev.set_fault_plan(plan);
  const u64 off = dev.data_base();
  dev.store_u64(off, 0x1111);
  dev.store_u64(off + 64, 0x2222);
  dev.clwb(off, 1);       // event 1
  dev.clwb(off + 64, 1);  // event 2
  // Event 3 is the fence; it drains *before* the cut fires, so both
  // lines are durable even though the fence "crashed".
  EXPECT_THROW(dev.sfence(), pm::PowerFailure);
  EXPECT_EQ(dev.fault_events(), 3u);
  dev.clear_fault_plan();
  EXPECT_EQ(dev.load_u64(off), 0x1111u);
  EXPECT_EQ(dev.load_u64(off + 64), 0x2222u);
}

TEST(FaultPlan, UnfencedLinesVanishWhenDrainProbabilityZero) {
  sim::Env env;
  pm::PmDevice dev(env, 1u << 16);
  const u64 off = dev.data_base();
  dev.store_u64(off, 0xaaaa);
  dev.persist(off, 8);  // durable baseline
  pm::FaultPlan plan;
  plan.unfenced_drain_p = 0.0;
  dev.set_fault_plan(plan);
  dev.store_u64(off, 0xbbbb);
  dev.clwb(off, 8);  // in flight, never fenced
  dev.crash();       // plan semantics: the line must not drain
  dev.clear_fault_plan();
  EXPECT_EQ(dev.load_u64(off), 0xaaaau);
}

TEST(FaultPlan, TornLineNeverSplitsAlignedWords) {
  sim::Env env;
  pm::PmDevice dev(env, 1u << 16);
  const u64 off = dev.data_base();
  for (u64 w = 0; w < 8; w++) dev.store_u64(off + w * 8, 0xaaaa'0000 + w);
  dev.persist(off, 64);
  pm::FaultPlan plan;
  plan.unfenced_drain_p = 0.0;  // force the tear branch
  plan.tear_p = 1.0;
  for (u64 seed = 1; seed <= 16; seed++) {
    plan.seed = seed;
    for (u64 w = 0; w < 8; w++) dev.store_u64(off + w * 8, 0xbbbb'0000 + w);
    dev.clwb(off, 64);
    dev.set_fault_plan(plan);  // reset counter; next crash uses this seed
    dev.crash();
    dev.clear_fault_plan();
    for (u64 w = 0; w < 8; w++) {
      const u64 v = dev.load_u64(off + w * 8);
      // 8-byte persistence granularity: a word is old or new, never mixed.
      ASSERT_TRUE(v == 0xaaaa'0000 + w || v == 0xbbbb'0000 + w)
          << "word " << w << " torn mid-word";
    }
    // Restore a known-durable old image for the next round.
    for (u64 w = 0; w < 8; w++) dev.store_u64(off + w * 8, 0xaaaa'0000 + w);
    dev.persist(off, 64);
  }
}

TEST(FaultPlan, DirtyLinesMayEvictWithoutAnyFlush) {
  sim::Env env;
  pm::PmDevice dev(env, 1u << 16);
  const u64 off = dev.data_base();
  pm::FaultPlan evict;
  evict.evict_dirty_p = 1.0;
  dev.set_fault_plan(evict);
  dev.store_u64(off, 0xcccc);  // dirty, never clwb'd
  dev.crash();
  dev.clear_fault_plan();
  EXPECT_EQ(dev.load_u64(off), 0xccccu) << "eviction should have drained it";

  pm::FaultPlan noevict;
  noevict.evict_dirty_p = 0.0;
  dev.set_fault_plan(noevict);
  dev.store_u64(off, 0xdddd);
  dev.crash();
  dev.clear_fault_plan();
  EXPECT_EQ(dev.load_u64(off), 0xccccu) << "unflushed store must be lost";
}

// --- Backend scenarios ----------------------------------------------------

// The raw publish protocol every structure builds on: persist the value,
// then publish an 8-byte commit word, then persist the word. A slot is
// committed iff its seqno reads back as expected.
class RawRegionScenario final : public CrashScenario {
 public:
  static constexpr u64 kValLen = 1024;
  static constexpr u64 kStride = kValLen + kCacheLine;  // seq on its own line
  static std::size_t slots() { return crashtest::exhaustive() ? 8 : 4; }

  void format(pm::PmDevice& dev) override { base_ = dev.data_base(); }

  void workload(pm::PmDevice& dev, AckLog& log) override {
    for (std::size_t i = 0; i < slots(); i++) {
      auto val = value_of(i, kValLen);
      log.begin_put("slot" + std::to_string(i), val);
      const u64 off = base_ + i * kStride;
      dev.store(off, val);
      dev.persist(off, kValLen);  // value first ...
      dev.store_u64(off + kValLen, i + 1);
      dev.persist(off + kValLen, 8);  // ... then the atomic commit word
      log.ack();
    }
  }

  void verify(pm::PmDevice& dev, const AckLog& log) override {
    auto get = [&](const std::string& key) -> Result<std::vector<u8>> {
      const u64 i = std::stoull(key.substr(4));
      const u64 off = base_ + i * kStride;
      if (dev.load_u64(off + kValLen) != i + 1) return Errc::not_found;
      auto s = dev.span(off, kValLen);
      return std::vector<u8>(s.begin(), s.end());
    };
    crashtest::verify_kv(log, get);
    dev.crash();  // I4: a second cut right after recovery changes nothing
    crashtest::verify_kv(log, get);
  }

 private:
  u64 base_ = 0;
};

class LsmScenario final : public CrashScenario {
 public:
  LsmScenario(bool use_wal, u64 memtable_limit)
      : use_wal_(use_wal), limit_(memtable_limit) {}

  void format(pm::PmDevice& dev) override {
    pool_.emplace(pm::PmPool::create(dev, "pool", dev.data_base(), 1u << 20));
    store_.emplace(storage::LsmStore::create(dev, *pool_, "db", options()));
  }

  void workload(pm::PmDevice&, AckLog& log) override {
    const std::size_t n = crashtest::exhaustive() ? 9 : 5;
    for (std::size_t i = 0; i < n; i++) {
      auto val = value_of(i, 1024);
      log.begin_put(key_of(i), val);
      EXPECT_TRUE(store_->put(key_of(i), val).ok());
      log.ack();
    }
    auto over = value_of(100, 1024);  // overwrite an existing key
    log.begin_put(key_of(1), over);
    EXPECT_TRUE(store_->put(key_of(1), over).ok());
    log.ack();
    log.begin_erase(key_of(0));
    EXPECT_TRUE(store_->erase(key_of(0)).ok());
    log.ack();
    auto res = value_of(101, 200);  // resurrect the erased key
    log.begin_put(key_of(0), res);
    EXPECT_TRUE(store_->put(key_of(0), res).ok());
    log.ack();
  }

  void verify(pm::PmDevice& dev, const AckLog& log) override {
    std::size_t first_entries = 0;
    for (int round = 0; round < 2; round++) {
      SCOPED_TRACE(round == 0 ? "first recovery" : "re-recovery after re-crash");
      auto pool = pm::PmPool::recover(dev, "pool");
      ASSERT_TRUE(pool.ok());
      auto rec = storage::LsmStore::recover(dev, pool.value(), "db", options());
      ASSERT_TRUE(rec.ok()) << "I3: recovery failed";
      auto& store = rec.value();
      crashtest::verify_kv(
          log, [&](const std::string& k) { return store.get(k); });
      if (round == 0) {
        first_entries = store.entries();
        dev.crash();  // I4: idempotent re-recovery
      } else {
        EXPECT_EQ(store.entries(), first_entries) << "I4: state drifted";
      }
    }
  }

 private:
  [[nodiscard]] storage::LsmOptions options() const {
    storage::LsmOptions o;
    o.use_wal = use_wal_;
    o.memtable_limit_bytes = limit_;
    o.wal_bytes = 64u << 10;
    return o;
  }

  bool use_wal_;
  u64 limit_;
  std::optional<pm::PmPool> pool_;
  std::optional<storage::LsmStore> store_;
};

class PktStoreScenario final : public CrashScenario {
 public:
  void format(pm::PmDevice& dev) override {
    pool_.emplace(pm::PmPool::create(dev, "pkts", dev.data_base(), 1u << 20));
    arena_.emplace(dev, *pool_);
    pktpool_.emplace(dev.env(), *arena_);
    store_.emplace(core::PktStore::create(*pktpool_, "db"));
  }

  void workload(pm::PmDevice&, AckLog& log) override {
    const std::size_t n = crashtest::exhaustive() ? 8 : 4;
    for (std::size_t i = 0; i < n; i++) {
      auto val = value_of(i + 40, 1024);
      log.begin_put(key_of(i), val);
      EXPECT_TRUE(store_->put_bytes(key_of(i), val).ok());
      log.ack();
    }
    auto over = value_of(140, 1024);
    log.begin_put(key_of(1), over);
    EXPECT_TRUE(store_->put_bytes(key_of(1), over).ok());
    log.ack();
    log.begin_erase(key_of(0));
    EXPECT_TRUE(store_->erase(key_of(0)));
    log.ack();
    auto res = value_of(141, 300);
    log.begin_put(key_of(0), res);
    EXPECT_TRUE(store_->put_bytes(key_of(0), res).ok());
    log.ack();
  }

  void verify(pm::PmDevice& dev, const AckLog& log) override {
    std::size_t first_size = 0;
    for (int round = 0; round < 2; round++) {
      SCOPED_TRACE(round == 0 ? "first recovery" : "re-recovery after re-crash");
      auto pool = pm::PmPool::recover(dev, "pkts");
      ASSERT_TRUE(pool.ok());
      net::PmArena arena(dev, pool.value());
      net::PktBufPool pktpool(dev.env(), arena);
      auto rec = core::PktStore::recover(pktpool, "db");
      ASSERT_TRUE(rec.ok()) << "I3: recovery failed";
      auto& store = rec.value();
      EXPECT_TRUE(store.validate().ok()) << "I3: index invalid";
      crashtest::verify_kv(
          log, [&](const std::string& k) { return store.get(k); });
      if (round == 0) {
        first_size = store.size();
        dev.crash();
      } else {
        EXPECT_EQ(store.size(), first_size) << "I4: state drifted";
      }
    }
  }

 private:
  std::optional<pm::PmPool> pool_;
  std::optional<net::PmArena> arena_;
  std::optional<net::PktBufPool> pktpool_;
  std::optional<core::PktStore> store_;
};

// Sliced ingest: the NIC slicer has already DMA'd each payload into its
// final arena slot (PmDevice::store_dma — itself a swept fault boundary,
// so the sweep includes a cut landing exactly between payload placement
// and index publication) when the host's put adopts the slice and
// publishes. A cut there must leak the slot, never corrupt: the value is
// durable but unreachable, and recovery sees a store without the key.
// Packets are hand-built sliced descriptors because the harness runs on a
// bare PmDevice with no network stack.
class SlicedIngestScenario final : public CrashScenario {
 public:
  explicit SlicedIngestScenario(core::InsertPolicy insert) : insert_(insert) {}

  static constexpr u32 kHdr = 54;  // eth + ip + tcp

  void format(pm::PmDevice& dev) override {
    pool_.emplace(pm::PmPool::create(dev, "pkts", dev.data_base(), 1u << 20));
    arena_.emplace(dev, *pool_);
    pktpool_.emplace(dev.env(), *arena_);
    core::PktStoreOptions o;
    o.insert = insert_;
    store_.emplace(core::PktStore::create(*pktpool_, "db", o));
  }

  // Builds what the slicer's RX path would deliver: a header-only
  // descriptor whose payload the "NIC" already placed durably.
  net::PktBuf* make_sliced(std::span<const u8> payload) {
    net::PktBuf* pb = pktpool_->alloc(kHdr);
    if (pb == nullptr) return nullptr;
    if (!pktpool_->attach_slice(*pb, static_cast<u32>(payload.size()))) {
      pktpool_->free(pb);
      return nullptr;
    }
    arena_->store_dma(pb->slice_h, payload);  // placement (fault boundary)
    pb->payload_off = kHdr;
    pb->len = kHdr + static_cast<u32>(payload.size());
    pb->csum_verified = true;
    pb->payload_csum = inet_checksum(payload);
    return pb;
  }

  void workload(pm::PmDevice&, AckLog& log) override {
    const std::size_t n = crashtest::exhaustive() ? 6 : 3;
    for (std::size_t i = 0; i < n; i++) {
      auto val = value_of(i + 60, 1024);
      log.begin_put(key_of(i), val);
      net::PktBuf* pb = make_sliced(val);
      ASSERT_NE(pb, nullptr);
      EXPECT_TRUE(store_->put_pkt(key_of(i), *pb, kHdr, 1024).ok());
      pktpool_->free(pb);
      log.ack();
    }
    // A two-segment value: the engine/host appends a chain, and the cut
    // can land between the segments' placements.
    auto big = value_of(200, 2400);
    log.begin_put("big", big);
    net::PktBuf* s0 = make_sliced(std::span<const u8>(big).subspan(0, 1400));
    net::PktBuf* s1 = make_sliced(std::span<const u8>(big).subspan(1400));
    ASSERT_NE(s0, nullptr);
    ASSERT_NE(s1, nullptr);
    net::PktBuf* pkts[2] = {s0, s1};
    const u32 offs[2] = {kHdr, kHdr};
    const u32 lens[2] = {1400, 1000};
    EXPECT_TRUE(store_->put_pkts("big", pkts, offs, lens).ok());
    pktpool_->free(s0);
    pktpool_->free(s1);
    log.ack();
    // Overwrite through the same sliced path (old chain retired).
    auto over = value_of(201, 1024);
    log.begin_put(key_of(0), over);
    net::PktBuf* pb = make_sliced(over);
    ASSERT_NE(pb, nullptr);
    EXPECT_TRUE(store_->put_pkt(key_of(0), *pb, kHdr, 1024).ok());
    pktpool_->free(pb);
    log.ack();
  }

  void verify(pm::PmDevice& dev, const AckLog& log) override {
    std::size_t first_size = 0;
    for (int round = 0; round < 2; round++) {
      SCOPED_TRACE(round == 0 ? "first recovery" : "re-recovery after re-crash");
      auto pool = pm::PmPool::recover(dev, "pkts");
      ASSERT_TRUE(pool.ok());
      net::PmArena arena(dev, pool.value());
      net::PktBufPool pktpool(dev.env(), arena);
      auto rec = core::PktStore::recover(pktpool, "db");
      ASSERT_TRUE(rec.ok()) << "I3: recovery failed";
      auto& store = rec.value();
      EXPECT_TRUE(store.validate().ok()) << "I3: index invalid";
      crashtest::verify_kv(
          log, [&](const std::string& k) { return store.get(k); });
      if (round == 0) {
        first_size = store.size();
        dev.crash();
      } else {
        EXPECT_EQ(store.size(), first_size) << "I4: state drifted";
      }
    }
  }

 private:
  core::InsertPolicy insert_;
  std::optional<pm::PmPool> pool_;
  std::optional<net::PmArena> arena_;
  std::optional<net::PktBufPool> pktpool_;
  std::optional<core::PktStore> store_;
};

// --- Group/epoch commit (mid-epoch power cuts) ---------------------------
//
// The harness's AckLog models exactly one in-flight op; a commit epoch
// carries up to max_epoch_ops of them, all unacked until the epoch's
// second fence retires. These scenarios therefore keep their own log —
// committed_ holds ops whose on_committed callback ran (the ack boundary:
// by then the epoch is durably retired), pending_ the ops of the open or
// mid-close epoch — and verify the epoch-commit invariants directly:
//
//   * a committed op's effect survives exactly (I1);
//   * every pending op resolves to old/new/absent independently, never a
//     torn value or dangling link (I2; keys within one epoch are distinct
//     by construction, so resolutions are independent);
//   * recovery succeeds and is idempotent across a re-crash (I3, I4).
//
// The sweep cuts at every flush/fence boundary, which includes the epoch
// close sequence itself: pool-metadata clwb, content fence, publication
// applies, publication fence, and (at deactivation) the freelist restore.
// Under -DPAPM_GROUP_COMMIT=OFF begin_op never enters the batched regime,
// so the same scenarios degenerate to the legacy fence-per-op protocol.
struct GroupOp {
  enum Kind { kPut, kErase };
  Kind kind;
  std::string key;
  std::vector<u8> val;
};

class GroupCommitLog {
 public:
  // Bracket: pend() before the backend op, then hand ack() to
  // FlushBatcher::on_committed. Callbacks retire FIFO, matching the
  // batcher's ack order.
  void pend(GroupOp op) { pending_.push_back(std::move(op)); }
  std::function<void()> ack() {
    return [this] {
      ASSERT_FALSE(pending_.empty()) << "ack without a pending op";
      GroupOp op = std::move(pending_.front());
      pending_.pop_front();
      if (op.kind == GroupOp::kPut) {
        committed_[op.key] = std::move(op.val);
      } else {
        committed_.erase(op.key);
      }
    };
  }

  void verify(const std::function<Result<std::vector<u8>>(
                  const std::string&)>& get) const {
    std::set<std::string> pending_keys;
    for (const GroupOp& op : pending_) pending_keys.insert(op.key);
    for (const auto& [key, val] : committed_) {
      if (pending_keys.count(key) != 0) continue;
      auto r = get(key);
      ASSERT_TRUE(r.ok()) << "I1: acked key '" << key << "' lost ("
                          << to_string(r.errc()) << ")";
      EXPECT_EQ(r.value(), val) << "I1: acked value altered for '" << key
                                << "'";
    }
    for (const GroupOp& op : pending_) {
      const auto prior = committed_.find(op.key);
      const bool has_prior = prior != committed_.end();
      auto r = get(op.key);
      if (op.kind == GroupOp::kPut) {
        if (r.ok()) {
          EXPECT_TRUE(r.value() == op.val ||
                      (has_prior && r.value() == prior->second))
              << "I2: torn/mixed value for in-epoch put '" << op.key << "'";
        } else {
          EXPECT_EQ(r.errc(), Errc::not_found)
              << "I2: in-epoch put '" << op.key << "' read as corrupt";
          EXPECT_FALSE(has_prior)
              << "I1: in-epoch put '" << op.key << "' destroyed prior value";
        }
      } else {
        if (r.ok()) {
          ASSERT_TRUE(has_prior)
              << "I2: in-epoch erase '" << op.key << "' resurrected a value";
          EXPECT_EQ(r.value(), prior->second)
              << "I2: in-epoch erase '" << op.key << "' left a torn value";
        } else {
          EXPECT_EQ(r.errc(), Errc::not_found);
        }
      }
    }
  }

 private:
  std::map<std::string, std::vector<u8>> committed_;
  std::deque<GroupOp> pending_;
};

// Three ops per epoch; the op sequence crosses epoch boundaries with an
// overwrite, an erase and a resurrection so a cut can land between the
// epochs that created and replaced a value. All keys within one epoch are
// distinct.
pm::GroupCommitPolicy crash_test_policy() {
  pm::GroupCommitPolicy p;
  p.max_epoch_ops = 3;
  p.max_deferral_ns = 1'000'000'000;  // op count, never the deadline, closes
  return p;
}

class GroupCommitLsmScenario final : public CrashScenario {
 public:
  void format(pm::PmDevice& dev) override {
    pool_.emplace(pm::PmPool::create(dev, "pool", dev.data_base(), 1u << 20));
    store_.emplace(storage::LsmStore::create(dev, *pool_, "db"));
    batcher_.emplace(dev, crash_test_policy());
    batcher_->register_pool(*pool_);
    store_->set_batcher(&*batcher_);
  }

  void workload(pm::PmDevice&, AckLog&) override {
    auto put = [&](std::size_t i, u64 tag, std::size_t len) {
      auto val = value_of(tag, len);
      batcher_->begin_op(true, 0);
      log_.pend({GroupOp::kPut, key_of(i), val});
      EXPECT_TRUE(store_->put(key_of(i), val).ok());
      batcher_->on_committed(log_.ack());
      batcher_->end_op();
    };
    auto erase = [&](std::size_t i) {
      batcher_->begin_op(true, 0);
      log_.pend({GroupOp::kErase, key_of(i), {}});
      EXPECT_TRUE(store_->erase(key_of(i)).ok());
      batcher_->on_committed(log_.ack());
      batcher_->end_op();
    };
    // Epoch 1: three inserts. Epoch 2: insert + overwrite(k01) +
    // erase(k02). Epoch 3: resurrect(k02) + two inserts. Then leave the
    // batched regime (freelist restore, also swept).
    for (std::size_t i = 0; i < 3; i++) put(i, i, 1024);
    put(3, 3, 1024);
    put(1, 100, 1024);
    erase(2);
    put(2, 101, 300);
    const std::size_t extra = crashtest::exhaustive() ? 4 : 2;
    for (std::size_t i = 0; i < extra; i++) put(4 + i, 50 + i, 1024);
    batcher_->deactivate();
  }

  void verify(pm::PmDevice& dev, const AckLog&) override {
    std::size_t first_entries = 0;
    for (int round = 0; round < 2; round++) {
      SCOPED_TRACE(round == 0 ? "first recovery" : "re-recovery after re-crash");
      auto pool = pm::PmPool::recover(dev, "pool");
      ASSERT_TRUE(pool.ok());
      auto rec = storage::LsmStore::recover(dev, pool.value(), "db");
      ASSERT_TRUE(rec.ok()) << "I3: recovery failed";
      auto& store = rec.value();
      log_.verify([&](const std::string& k) { return store.get(k); });
      if (round == 0) {
        first_entries = store.entries();
        dev.crash();  // I4: idempotent re-recovery
      } else {
        EXPECT_EQ(store.entries(), first_entries) << "I4: state drifted";
      }
    }
  }

 private:
  std::optional<pm::PmPool> pool_;
  std::optional<storage::LsmStore> store_;
  std::optional<pm::FlushBatcher> batcher_;
  GroupCommitLog log_;
};

class GroupCommitPktScenario final : public CrashScenario {
 public:
  void format(pm::PmDevice& dev) override {
    pool_.emplace(pm::PmPool::create(dev, "pkts", dev.data_base(), 1u << 20));
    arena_.emplace(dev, *pool_);
    pktpool_.emplace(dev.env(), *arena_);
    store_.emplace(core::PktStore::create(*pktpool_, "db"));
    batcher_.emplace(dev, crash_test_policy());
    batcher_->register_pool(*pool_);
    store_->set_batcher(&*batcher_);
  }

  void workload(pm::PmDevice&, AckLog&) override {
    auto put = [&](std::size_t i, u64 tag, std::size_t len) {
      auto val = value_of(tag, len);
      batcher_->begin_op(true, 0);
      log_.pend({GroupOp::kPut, key_of(i), val});
      EXPECT_TRUE(store_->put_bytes(key_of(i), val).ok());
      batcher_->on_committed(log_.ack());
      batcher_->end_op();
    };
    auto erase = [&](std::size_t i) {
      batcher_->begin_op(true, 0);
      log_.pend({GroupOp::kErase, key_of(i), {}});
      EXPECT_TRUE(store_->erase(key_of(i)));
      batcher_->on_committed(log_.ack());
      batcher_->end_op();
    };
    for (std::size_t i = 0; i < 3; i++) put(i, i + 40, 1024);
    put(3, 43, 1024);
    put(1, 140, 1024);  // overwrite: old chain quarantined past the close
    erase(2);
    put(2, 141, 300);
    const std::size_t extra = crashtest::exhaustive() ? 4 : 2;
    for (std::size_t i = 0; i < extra; i++) put(4 + i, 90 + i, 1024);
    batcher_->deactivate();
  }

  void verify(pm::PmDevice& dev, const AckLog&) override {
    std::size_t first_size = 0;
    for (int round = 0; round < 2; round++) {
      SCOPED_TRACE(round == 0 ? "first recovery" : "re-recovery after re-crash");
      auto pool = pm::PmPool::recover(dev, "pkts");
      ASSERT_TRUE(pool.ok());
      net::PmArena arena(dev, pool.value());
      net::PktBufPool pktpool(dev.env(), arena);
      auto rec = core::PktStore::recover(pktpool, "db");
      ASSERT_TRUE(rec.ok()) << "I3: recovery failed";
      auto& store = rec.value();
      EXPECT_TRUE(store.validate().ok()) << "I3: index invalid";
      log_.verify([&](const std::string& k) { return store.get(k); });
      if (round == 0) {
        first_size = store.size();
        dev.crash();
      } else {
        EXPECT_EQ(store.size(), first_size) << "I4: state drifted";
      }
    }
  }

 private:
  std::optional<pm::PmPool> pool_;
  std::optional<net::PmArena> arena_;
  std::optional<net::PktBufPool> pktpool_;
  std::optional<core::PktStore> store_;
  std::optional<pm::FlushBatcher> batcher_;
  GroupCommitLog log_;
};

// The PM flight recorder (obs/flightrec.h), swept through every
// flush/fence boundary of a wrapping append workload under group-commit
// epochs. The ring's contract against the ack stream:
//
//   * an acked record survives byte-exact until a wrap reclaims its slot
//     (which takes `capacity` further appends — never mid-epoch, since
//     capacity > max_epoch_ops);
//   * recovery never surfaces a phantom (a seq that was never appended)
//     or a torn body (the seq-bound CRC rejects both);
//   * recovered seqs are distinct, and recovery is idempotent.
class FlightRecorderScenario final : public CrashScenario {
 public:
  static constexpr u32 kCap = 4;  // small ring: the sweep crosses wraps
  static std::size_t ops() { return crashtest::exhaustive() ? 14 : 10; }

  // Deterministic body for seq: recovery can check every surviving slot
  // byte-for-byte without carrying state across the cut.
  static obs::FlightRecord record_of(u64 seq) {
    obs::FlightRecord r;
    r.req = 1000 + seq;
    r.t0_ns = seq * 17;
    for (std::size_t s = 0; s < obs::kStages; s++) {
      r.stage_ns[s] = static_cast<u32>(seq * 100 + s);
    }
    r.result = 201;
    r.op = 'P';
    return r;
  }

  void format(pm::PmDevice& dev) override {
    pool_.emplace(pm::PmPool::create(dev, "pool", dev.data_base(), 1u << 20));
    auto fr = obs::FlightRecorder::create(dev, *pool_, 0, kCap);
    ASSERT_TRUE(fr.ok());
    fr_.emplace(std::move(fr.value()));
    batcher_.emplace(dev, crash_test_policy());
    batcher_->register_pool(*pool_);
    fr_->set_batcher(&*batcher_);
  }

  void workload(pm::PmDevice&, AckLog&) override {
    // The ack stream is the recorder's own: on_committed fires once the
    // epoch that carried the record's publication is durably retired —
    // the same boundary at which the server releases the client's ack.
    for (std::size_t i = 0; i < ops(); i++) {
      batcher_->begin_op(true, 0);
      appends_started_++;
      const u64 seq = fr_->append(record_of(appends_started_));
      EXPECT_EQ(seq, appends_started_);
      batcher_->on_committed([this, seq] { acked_.insert(seq); });
      batcher_->end_op();
    }
    batcher_->deactivate();
  }

  void verify(pm::PmDevice& dev, const AckLog&) override {
    auto rec = obs::FlightRecorder::recover(dev, 0);
    ASSERT_TRUE(rec.ok()) << "I3: flight recorder recovery failed";
    obs::FlightRecorder::ScanStats st;
    const auto flights = rec.value().scan(&st);
    EXPECT_LE(flights.size(), kCap);
    std::set<u64> seen;
    for (const auto& f : flights) {
      EXPECT_TRUE(seen.insert(f.seq).second) << "duplicate seq " << f.seq;
      ASSERT_LE(f.seq, appends_started_) << "phantom record " << f.seq;
      const obs::FlightRecord want = record_of(f.seq);
      EXPECT_EQ(f.rec.req, want.req) << "seq " << f.seq;
      EXPECT_EQ(f.rec.t0_ns, want.t0_ns) << "seq " << f.seq;
      EXPECT_EQ(std::memcmp(f.rec.stage_ns, want.stage_ns,
                            sizeof want.stage_ns),
                0)
          << "I2: torn stage table for seq " << f.seq;
      EXPECT_EQ(f.rec.result, want.result) << "seq " << f.seq;
      EXPECT_EQ(f.rec.op, want.op) << "seq " << f.seq;
    }
    // AckLog reconciliation (I1): every acked record whose slot no later
    // append could have reclaimed must be present.
    for (const u64 k : acked_) {
      if (k + kCap <= appends_started_) continue;  // slot reclaimed by wrap
      EXPECT_TRUE(seen.contains(k)) << "I1: acked record " << k << " lost";
    }
    // The attached recorder resumes past every survivor.
    EXPECT_EQ(rec.value().seq(), st.max_seq);
    // I4: a re-crash right after recovery (scan is read-only) changes
    // nothing.
    dev.crash();
    auto rec2 = obs::FlightRecorder::recover(dev, 0);
    ASSERT_TRUE(rec2.ok()) << "I4: re-recovery failed";
    const auto again = rec2.value().scan(nullptr);
    ASSERT_EQ(again.size(), flights.size()) << "I4: state drifted";
    for (std::size_t i = 0; i < again.size(); i++) {
      EXPECT_EQ(again[i].seq, flights[i].seq);
    }
  }

 private:
  std::optional<pm::PmPool> pool_;
  std::optional<obs::FlightRecorder> fr_;
  std::optional<pm::FlushBatcher> batcher_;
  u64 appends_started_ = 0;
  std::set<u64> acked_;
};

// Two datapath shards, each with a private PmPool slice and skip list
// (the PR-1 scale-out layout). Keys route by shard_of(); verification
// recovers both shards, checks shard isolation, and checks the merged
// view is identical across repeated crash+recover cycles.
class ShardedIndexScenario final : public CrashScenario {
 public:
  static int shard_of(const std::string& key) { return (key.back() - '0') % 2; }
  static u64 payload_of(std::size_t i) {
    return ((i + 1) * 0x9e3779b97f4a7c15ULL) | 1;
  }

  void format(pm::PmDevice& dev) override {
    const u64 span = 256u << 10;
    const u64 b0 = dev.data_base();
    const u64 b1 = align_up(b0 + span, kCacheLine);
    pool0_.emplace(pm::PmPool::create(dev, "p0", b0, span));
    pool1_.emplace(pm::PmPool::create(dev, "p1", b1, span));
    idx0_.emplace(container::PSkipList::create(dev, *pool0_, "s0"));
    idx1_.emplace(container::PSkipList::create(dev, *pool1_, "s1"));
  }

  void workload(pm::PmDevice&, AckLog& log) override {
    const std::size_t n = crashtest::exhaustive() ? 16 : 8;
    for (std::size_t i = 0; i < n; i++) {
      const std::string key = key_of(i);
      log.begin_put(key, enc_u64(payload_of(i)));
      EXPECT_TRUE(list(shard_of(key)).put(key, payload_of(i)).ok());
      log.ack();
    }
    const u64 upd = 0xfeed'beef'cafe'f00dULL | 1;  // update (shard 1)
    log.begin_put(key_of(1), enc_u64(upd));
    EXPECT_TRUE(list(shard_of(key_of(1))).put(key_of(1), upd).ok());
    log.ack();
    log.begin_erase(key_of(2));  // erase (shard 0)
    EXPECT_TRUE(list(shard_of(key_of(2))).erase(key_of(2)));
    log.ack();
  }

  void verify(pm::PmDevice& dev, const AckLog& log) override {
    std::map<std::string, u64> first_merge;
    for (int round = 0; round < 2; round++) {
      SCOPED_TRACE(round == 0 ? "first recovery" : "re-recovery after re-crash");
      auto p0 = pm::PmPool::recover(dev, "p0");
      auto p1 = pm::PmPool::recover(dev, "p1");
      ASSERT_TRUE(p0.ok() && p1.ok()) << "per-shard pool root inconsistent";
      auto s0 = container::PSkipList::recover(dev, p0.value(), "s0");
      auto s1 = container::PSkipList::recover(dev, p1.value(), "s1");
      ASSERT_TRUE(s0.ok() && s1.ok()) << "per-shard index root inconsistent";
      EXPECT_TRUE(s0.value().validate().ok());
      EXPECT_TRUE(s1.value().validate().ok());
      container::PSkipList* shards[2] = {&s0.value(), &s1.value()};
      crashtest::verify_kv(log,
                           [&](const std::string& k) -> Result<std::vector<u8>> {
                             auto r = shards[shard_of(k)]->get(k);
                             if (!r.ok()) return r.errc();
                             return enc_u64(r.value());
                           });
      // Shard isolation: no key leaks into the other shard.
      for (const auto& [k, v] : log.acked()) {
        EXPECT_FALSE(shards[1 - shard_of(k)]->get(k).ok())
            << "key '" << k << "' visible in the wrong shard";
      }
      // Cross-shard merge: the union view, newest-wins (keys are disjoint
      // across shards, so the merge is a plain union).
      std::map<std::string, u64> merged;
      for (auto* s : shards) {
        s->scan("", "", [&](std::string_view k, u64 p) {
          merged[std::string(k)] = p;
          return true;
        });
      }
      if (round == 0) {
        first_merge = std::move(merged);
        dev.crash();  // I4
      } else {
        EXPECT_EQ(merged, first_merge) << "I4: cross-shard merge not idempotent";
      }
    }
  }

 private:
  [[nodiscard]] container::PSkipList& list(int shard) {
    return shard == 0 ? *idx0_ : *idx1_;
  }

  std::optional<pm::PmPool> pool0_, pool1_;
  std::optional<container::PSkipList> idx0_, idx1_;
};

// --- The sweeps -----------------------------------------------------------

void run_all_plans(u64 dev_size, const crashtest::ScenarioFactory& make) {
  for (const auto& [name, plan] : sweep_plans()) {
    SCOPED_TRACE("failure model: " + name);
    SweepOptions opt;
    opt.dev_size = dev_size;
    opt.plan = plan;
    auto res = crashtest::run_crash_sweep(opt, make);
    if (!::testing::Test::HasFailure()) {
      EXPECT_EQ(res.points_tested, res.boundaries)
          << "sweep did not cover every flush/fence boundary";
    }
  }
}

TEST(CrashSweep, RawRegionPublishProtocol) {
  run_all_plans(1u << 20, [] { return std::make_unique<RawRegionScenario>(); });
}

TEST(CrashSweep, LsmStoreNoWal) {
  run_all_plans(2u << 20,
                [] { return std::make_unique<LsmScenario>(false, 0); });
}

TEST(CrashSweep, LsmStoreWalAndRotation) {
  run_all_plans(2u << 20,
                [] { return std::make_unique<LsmScenario>(true, 2600); });
}

TEST(CrashSweep, PktStore) {
  run_all_plans(2u << 20, [] { return std::make_unique<PktStoreScenario>(); });
}

TEST(CrashSweep, SlicedIngestHostInsert) {
  if (!net::kSlicerCompiled) GTEST_SKIP() << "slicer compiled out";
  run_all_plans(2u << 20, [] {
    return std::make_unique<SlicedIngestScenario>(core::InsertPolicy::host);
  });
}

TEST(CrashSweep, SlicedIngestNicInsert) {
  if (!net::kSlicerCompiled) GTEST_SKIP() << "slicer compiled out";
  run_all_plans(2u << 20, [] {
    return std::make_unique<SlicedIngestScenario>(core::InsertPolicy::nic);
  });
}

TEST(CrashSweep, ShardedSkipListsMergeIdempotent) {
  run_all_plans(2u << 20,
                [] { return std::make_unique<ShardedIndexScenario>(); });
}

TEST(CrashSweep, GroupCommitLsmEpochBoundaries) {
  run_all_plans(2u << 20,
                [] { return std::make_unique<GroupCommitLsmScenario>(); });
}

TEST(CrashSweep, GroupCommitPktStoreEpochBoundaries) {
  run_all_plans(2u << 20,
                [] { return std::make_unique<GroupCommitPktScenario>(); });
}

TEST(CrashSweep, FlightRecorder) {
  run_all_plans(1u << 20,
                [] { return std::make_unique<FlightRecorderScenario>(); });
}

// --- Satellite coverage ---------------------------------------------------

// PmArena reuse after recovery: allocations from a recovered pool must
// not collide with blocks still referenced by recovered structures, and
// freed blocks must be recyclable.
TEST(CrashRecovery, PmArenaReuseAfterRecovery) {
  sim::Env env;
  pm::PmDevice dev(env, 2u << 20);
  {
    auto pool = pm::PmPool::create(dev, "pkts", dev.data_base(), 1u << 20);
    net::PmArena arena(dev, pool);
    net::PktBufPool pktpool(env, arena);
    auto store = core::PktStore::create(pktpool, "db");
    for (std::size_t i = 0; i < 6; i++) {
      ASSERT_TRUE(store.put_bytes(key_of(i), value_of(i, 1024)).ok());
    }
  }
  dev.crash();

  auto pr = pm::PmPool::recover(dev, "pkts");
  ASSERT_TRUE(pr.ok());
  net::PmArena arena(dev, pr.value());
  net::PktBufPool pktpool(env, arena);
  auto rec = core::PktStore::recover(pktpool, "db");
  ASSERT_TRUE(rec.ok());
  auto& store = rec.value();

  // New allocations from the recovered arena (index nodes, metadata and
  // value blocks all come from it) must leave recovered values intact.
  for (std::size_t i = 6; i < 14; i++) {
    ASSERT_TRUE(store.put_bytes(key_of(i), value_of(i, 1024)).ok());
  }
  for (std::size_t i = 0; i < 14; i++) {
    auto r = store.get(key_of(i));
    ASSERT_TRUE(r.ok()) << key_of(i);
    EXPECT_EQ(r.value(), value_of(i, 1024)) << key_of(i);
  }
  EXPECT_TRUE(store.validate().ok());

  // Recycle: erase half, re-put through the freelists, verify everything.
  for (std::size_t i = 0; i < 14; i += 2) EXPECT_TRUE(store.erase(key_of(i)));
  for (std::size_t i = 0; i < 14; i += 2) {
    ASSERT_TRUE(store.put_bytes(key_of(i), value_of(i + 50, 512)).ok());
  }
  for (std::size_t i = 0; i < 14; i++) {
    auto r = store.get(key_of(i));
    ASSERT_TRUE(r.ok()) << key_of(i);
    EXPECT_EQ(r.value(), i % 2 == 0 ? value_of(i + 50, 512) : value_of(i, 1024));
  }
  EXPECT_TRUE(store.validate().ok());
}

// PktBufPool exhaustion and refill with a fault plan armed, including a
// power cut mid-churn: the pool must recover ("leak, never corrupt") and
// keep serving allocations.
TEST(CrashRecovery, PktBufPoolExhaustionRefillUnderFaultPlan) {
  sim::Env env;
  pm::PmDevice dev(env, 1u << 20);
  const u64 span = 64u << 10;
  auto pool = pm::PmPool::create(dev, "pkts", dev.data_base(), span);
  net::PmArena arena(dev, pool);
  net::PktBufPool pktpool(env, arena);

  pm::FaultPlan plan;
  plan.unfenced_drain_p = 0.4;
  plan.tear_p = 0.75;
  plan.evict_dirty_p = 0.35;
  dev.set_fault_plan(plan);  // crash_at_event = 0: count, never cut

  // Exhaust the arena.
  std::vector<net::PktBuf*> held;
  while (net::PktBuf* pb = pktpool.alloc(2048)) held.push_back(pb);
  ASSERT_GE(held.size(), 8u);
  EXPECT_EQ(pktpool.alloc(2048), nullptr) << "exhaustion must be sticky";

  // Refill: freeing makes allocation succeed again.
  const std::size_t half = held.size() / 2;
  for (std::size_t i = 0; i < half; i++) {
    pktpool.free(held.back());
    held.pop_back();
  }
  for (std::size_t i = 0; i < half; i++) {
    net::PktBuf* pb = pktpool.alloc(2048);
    ASSERT_NE(pb, nullptr) << "freelist refill failed at " << i;
    held.push_back(pb);
  }

  // Return everything to the freelists durably: blocks still *held* at a
  // cut are referenced only from DRAM, so they would (correctly) leak.
  const std::size_t returned = held.size();
  for (net::PktBuf* pb : held) pktpool.free(pb);
  held.clear();

  // Cut power mid-churn; the pool header/freelists must stay consistent
  // and lose at most the blocks in flight at the instant of the cut.
  pm::FaultPlan cutting = plan;
  cutting.crash_at_event = 5;
  dev.set_fault_plan(cutting);  // resets the event counter
  bool cut = false;
  try {
    for (;;) {
      net::PktBuf* pb = pktpool.alloc(2048);
      ASSERT_NE(pb, nullptr);
      pktpool.free(pb);
    }
  } catch (const pm::PowerFailure&) {
    cut = true;
  }
  ASSERT_TRUE(cut);
  dev.clear_fault_plan();

  auto pr = pm::PmPool::recover(dev, "pkts");
  ASSERT_TRUE(pr.ok()) << "pool header corrupt after mid-churn cut";
  net::PmArena arena2(dev, pr.value());
  net::PktBufPool pktpool2(env, arena2);
  std::set<u64> offsets;
  std::vector<net::PktBuf*> fresh;
  while (net::PktBuf* pb = pktpool2.alloc(2048)) {
    // Every block the recovered pool hands out is in-span, line-aligned
    // and distinct — a corrupt freelist would violate one of these.
    EXPECT_GE(pb->data_h, dev.data_base());
    EXPECT_LT(pb->data_h + 2048, dev.data_base() + span);
    EXPECT_EQ(pb->data_h % kCacheLine, 0u);
    EXPECT_TRUE(offsets.insert(pb->data_h).second)
        << "freelist loop: block handed out twice";
    fresh.push_back(pb);
  }
  // At most the churn's in-flight blocks (one popped, one mid-push)
  // leaked; every other returned block must be allocatable again.
  EXPECT_GE(fresh.size() + 2, returned);
  for (net::PktBuf* pb : fresh) pktpool2.free(pb);
}

}  // namespace
}  // namespace papm
