// Tests for the persistent skip list: model equivalence, structural
// validation, and — the part that matters for the paper — crash
// consistency under randomly injected crashes.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/rng.h"
#include "container/pskiplist.h"

namespace papm::container {
namespace {

constexpr u64 kDev = 8u << 20;

class PSkipListTest : public ::testing::Test {
 protected:
  sim::Env env;
  pm::PmDevice dev{env, kDev};
  pm::PmPool pool{pm::PmPool::create(dev, "pool", dev.data_base(), kDev - 4096)};
  PSkipList list{PSkipList::create(dev, pool, "index")};
};

TEST_F(PSkipListTest, EmptyLookup) {
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.get("nope").errc(), Errc::not_found);
  EXPECT_FALSE(list.erase("nope"));
  EXPECT_TRUE(list.validate().ok());
}

TEST_F(PSkipListTest, PutGetRoundTrip) {
  ASSERT_TRUE(list.put("alpha", 111).ok());
  ASSERT_TRUE(list.put("beta", 222).ok());
  EXPECT_EQ(list.get("alpha").value(), 111u);
  EXPECT_EQ(list.get("beta").value(), 222u);
  EXPECT_EQ(list.size(), 2u);
  EXPECT_TRUE(list.validate().ok());
}

TEST_F(PSkipListTest, UpdateRepublishesPayloadOnly) {
  ASSERT_TRUE(list.put("k", 1).ok());
  const std::size_t before = list.size();
  ASSERT_TRUE(list.put("k", 2).ok());
  EXPECT_EQ(list.size(), before);
  EXPECT_EQ(list.get("k").value(), 2u);
}

TEST_F(PSkipListTest, RejectsBadKeys) {
  EXPECT_EQ(list.put("", 1).errc(), Errc::invalid_argument);
}

TEST_F(PSkipListTest, EraseThenReinsert) {
  ASSERT_TRUE(list.put("x", 10).ok());
  EXPECT_TRUE(list.erase("x"));
  EXPECT_EQ(list.get("x").errc(), Errc::not_found);
  EXPECT_EQ(list.size(), 0u);
  ASSERT_TRUE(list.put("x", 20).ok());
  EXPECT_EQ(list.get("x").value(), 20u);
  EXPECT_TRUE(list.validate().ok());
}

TEST_F(PSkipListTest, ScanOrderedBounded) {
  for (char c = 'a'; c <= 'j'; c++) {
    ASSERT_TRUE(list.put(std::string(1, c), static_cast<u64>(c)).ok());
  }
  std::string visited;
  list.scan("c", "g", [&](std::string_view k, u64) {
    visited += k;
    return true;
  });
  EXPECT_EQ(visited, "cdef");
}

TEST_F(PSkipListTest, ChargesTimeForOperations) {
  const SimTime t0 = env.now();
  ASSERT_TRUE(list.put("cost", 1).ok());
  EXPECT_GT(env.now(), t0);  // alloc + node persist + publish
  const SimTime t1 = env.now();
  (void)list.get("cost");
  EXPECT_GT(env.now(), t1);  // traversal charge
}

TEST_F(PSkipListTest, SurvivesCleanCrash) {
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(list.put("key" + std::to_string(i), static_cast<u64>(i)).ok());
  }
  dev.crash();
  auto pool2 = pm::PmPool::recover(dev, "pool");
  ASSERT_TRUE(pool2.ok());
  auto rec = PSkipList::recover(dev, pool2.value(), "index");
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->size(), 200u);
  EXPECT_TRUE(rec->validate().ok());
  for (int i = 0; i < 200; i++) {
    EXPECT_EQ(rec->get("key" + std::to_string(i)).value(), static_cast<u64>(i)) << i;
  }
}

TEST_F(PSkipListTest, RecoverUnknownNameFails) {
  EXPECT_EQ(PSkipList::recover(dev, pool, "ghost").errc(), Errc::not_found);
}

TEST_F(PSkipListTest, RecoveryReclaimsDeadNodes) {
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(list.put("k" + std::to_string(i), static_cast<u64>(i)).ok());
  }
  for (int i = 0; i < 50; i += 2) EXPECT_TRUE(list.erase("k" + std::to_string(i)));
  dev.crash();
  auto pool2 = pm::PmPool::recover(dev, "pool");
  auto rec = PSkipList::recover(dev, pool2.value(), "index");
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->size(), 25u);
  for (int i = 0; i < 50; i++) {
    const auto got = rec->get("k" + std::to_string(i));
    if (i % 2 == 0) {
      EXPECT_FALSE(got.ok()) << i;
    } else {
      EXPECT_EQ(got.value(), static_cast<u64>(i)) << i;
    }
  }
  EXPECT_TRUE(rec->validate().ok());
}

// The core crash-consistency property: crash at a random point during a
// write burst; every key acknowledged (put returned) before the last
// fence is either fully present with its final value or — only for the
// in-flight unfenced operation — absent. Nothing is ever corrupted.
class PSkipListCrashFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(PSkipListCrashFuzz, CrashLeavesConsistentPrefix) {
  sim::Env env;
  env.rng = Rng(GetParam());
  pm::PmDevice dev(env, kDev);
  auto pool = pm::PmPool::create(dev, "pool", dev.data_base(), kDev - 4096);
  auto list = PSkipList::create(dev, pool, "index");

  Rng rng(GetParam() * 31 + 7);
  std::map<std::string, u64> acked;  // fully completed operations
  for (int i = 0; i < 300; i++) {
    const std::string key = "key" + std::to_string(rng.next_below(150));
    if (!acked.empty() && rng.chance(0.25)) {
      list.erase(key);
      acked.erase(key);
    } else {
      const u64 v = rng.next();
      ASSERT_TRUE(list.put(key, v).ok());
      acked[key] = v;
    }
  }
  // Every completed put/erase ended with a fence, so the whole model
  // must survive the crash.
  dev.crash();

  auto pool2 = pm::PmPool::recover(dev, "pool");
  ASSERT_TRUE(pool2.ok());
  auto rec = PSkipList::recover(dev, pool2.value(), "index");
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec->validate().ok());
  EXPECT_EQ(rec->size(), acked.size());
  for (const auto& [k, v] : acked) {
    const auto got = rec->get(k);
    ASSERT_TRUE(got.ok()) << k;
    EXPECT_EQ(got.value(), v) << k;
  }
  // Scan yields exactly the model, in order.
  auto mit = acked.begin();
  rec->scan("", "", [&](std::string_view k, u64 v) {
    EXPECT_NE(mit, acked.end());
    EXPECT_EQ(k, mit->first);
    EXPECT_EQ(v, mit->second);
    ++mit;
    return true;
  });
  EXPECT_EQ(mit, acked.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PSkipListCrashFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42));

// Model-equivalence fuzz without crashes (larger volume).
class PSkipListFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(PSkipListFuzz, MatchesMapModel) {
  sim::Env env;
  pm::PmDevice dev(env, kDev);
  auto pool = pm::PmPool::create(dev, "pool", dev.data_base(), kDev - 4096);
  auto list = PSkipList::create(dev, pool, "index");

  std::map<std::string, u64> model;
  Rng rng(GetParam());
  for (int step = 0; step < 2500; step++) {
    const std::string key = "k" + std::to_string(rng.next_below(400));
    const double dice = rng.next_double();
    if (dice < 0.55) {
      const u64 v = rng.next();
      ASSERT_TRUE(list.put(key, v).ok());
      model[key] = v;
    } else if (dice < 0.8) {
      const auto got = list.get(key);
      const auto mit = model.find(key);
      if (mit == model.end()) {
        EXPECT_FALSE(got.ok());
      } else {
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(got.value(), mit->second);
      }
    } else {
      EXPECT_EQ(list.erase(key), model.erase(key) > 0);
    }
  }
  EXPECT_EQ(list.size(), model.size());
  EXPECT_TRUE(list.validate().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PSkipListFuzz, ::testing::Values(101, 202, 303));

// Recovery-time regression guard for the selective-persistence split:
// rebuilding the DRAM-shadowed towers must not blow up recovery. The
// shadow-on recovery (backbone scan + volatile tower relink) has to stay
// within 2x of the persist-everything baseline's recovery on the same
// workload — in practice it is *faster*, since the baseline's rebuild
// re-fences its tower links while the shadow rebuild writes DRAM only.
TEST(PSkipListRecovery, ShadowTowerRebuildWithin2xOfBaseline) {
  SimTime elapsed[2] = {0, 0};  // [shadow on, shadow off]
  for (int shadow = 1; shadow >= 0; shadow--) {
    sim::Env env;
    pm::PmDevice dev(env, kDev);
    auto pool = pm::PmPool::create(dev, "pool", dev.data_base(), kDev - 4096);
    PSkipListOptions opts;
    opts.shadow_towers = shadow == 1;
    auto list = PSkipList::create(dev, pool, "index", opts);
    for (int i = 0; i < 1500; i++) {
      ASSERT_TRUE(list.put("key" + std::to_string(i), static_cast<u64>(i)).ok());
    }
    dev.crash();

    auto pool2 = pm::PmPool::recover(dev, "pool");
    ASSERT_TRUE(pool2.ok());
    const SimTime t0 = env.now();
    auto rec = PSkipList::recover(dev, pool2.value(), "index", opts);
    elapsed[shadow] = env.now() - t0;
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec->size(), 1500u);
    EXPECT_TRUE(rec->validate().ok());
    // The stats split must account for the whole recovery apart from the
    // root lookup, and the tower phase must actually be attributed.
    const auto& st = rec->recover_stats();
    EXPECT_GT(st.scan_ns, 0);
    EXPECT_GT(st.tower_ns, 0);
    EXPECT_LE(st.scan_ns + st.tower_ns, elapsed[shadow]);
  }
  EXPECT_LE(elapsed[1], 2 * elapsed[0])
      << "shadow-tower rebuild regressed recovery by more than 2x "
      << "(shadow on: " << elapsed[1] << " ns, off: " << elapsed[0] << " ns)";
}

TEST_F(PSkipListTest, LogarithmicVisits) {
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(list.put("key" + std::to_string(i), static_cast<u64>(i)).ok());
  }
  (void)list.get("key1000");
  EXPECT_LT(list.last_visits(), 150u);
}

}  // namespace
}  // namespace papm::container
