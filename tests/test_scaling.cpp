// Scale-out datapath (S1): pinned-core queueing, RSS steering balance,
// sharded-store correctness and recovery, and determinism + speedup of
// the multi-queue server.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "app/harness.h"
#include "core/pktstore.h"
#include "nic/nic.h"
#include "sim/cpu.h"

using namespace papm;

namespace {

// --- HostCpu pinned-core semantics -------------------------------------

TEST(HostCpuPinned, BacklogOnOneCoreDoesNotDelayAnother) {
  sim::Env env;
  sim::HostCpu cpu(env, 2);

  auto charge = [&](SimTime ns) {
    return [&env, ns] { env.clock().advance(ns); };
  };

  // Two work items pinned to core 0: the second queues behind the first.
  EXPECT_EQ(cpu.run_on(0, charge(1000)), 1000u);
  EXPECT_EQ(cpu.run_on(0, charge(1000)), 2000u);
  EXPECT_EQ(cpu.free_at(0), 2000u);

  // Core 1 is idle: work pinned there starts immediately despite core 0's
  // backlog — the per-core isolation the multi-queue datapath rests on.
  EXPECT_EQ(cpu.run_on(1, charge(500)), 500u);
  EXPECT_EQ(cpu.free_at(1), 500u);

  EXPECT_EQ(cpu.busy_ns(0), 2000u);
  EXPECT_EQ(cpu.busy_ns(1), 500u);
  EXPECT_EQ(cpu.busy_ns(), 2500u);

  // Earliest-free scheduling still works alongside pinning.
  EXPECT_EQ(cpu.run(charge(100)), 600u);  // picks core 1 (free at 500)
}

TEST(HostCpuPinned, PinWrapsAroundCoreCount) {
  sim::Env env;
  sim::HostCpu cpu(env, 2);
  auto charge = [&](SimTime ns) {
    return [&env, ns] { env.clock().advance(ns); };
  };
  // Core index 5 on a 2-core host lands on core 1.
  EXPECT_EQ(cpu.run_on(5, charge(300)), 300u);
  EXPECT_EQ(cpu.busy_ns(1), 300u);
  EXPECT_EQ(cpu.busy_ns(0), 0u);
}

TEST(HostCpuPinned, UnlimitedCpuIgnoresPinning) {
  sim::Env env;
  sim::HostCpu cpu(env, 0);  // the client machine
  auto charge = [&](SimTime ns) {
    return [&env, ns] { env.clock().advance(ns); };
  };
  // No queueing ever: both "pinned" items start at their arrival time.
  EXPECT_EQ(cpu.run_on(0, charge(1000)), 1000u);
  EXPECT_EQ(cpu.run_on(0, charge(1000)), 1000u);
}

// --- RSS steering -------------------------------------------------------

TEST(RssSteering, FlowsSpreadAcrossQueuesWithinImbalanceBound) {
  // 100 client connections as the harness creates them: one server
  // 4-tuple endpoint, consecutive client ephemeral ports.
  constexpr u32 kClientIp = 0x0a000001;
  constexpr u32 kServerIp = 0x0a000002;
  constexpr u16 kPort = 9000;
  constexpr u32 kQueues = 4;
  constexpr int kFlows = 100;

  std::vector<int> per_queue(kQueues, 0);
  for (int i = 0; i < kFlows; i++) {
    const u16 sport = static_cast<u16>(33000 + i);
    // Steering as the server NIC sees the flow: src = client.
    const u32 h = nic::rss_toeplitz(kClientIp, kServerIp, sport, kPort);
    per_queue[h % kQueues]++;
  }

  const int expected = kFlows / static_cast<int>(kQueues);
  for (u32 q = 0; q < kQueues; q++) {
    SCOPED_TRACE("queue " + std::to_string(q));
    // Within 2x of the even share, both ways — no starved or swamped
    // core for the bench's connection counts.
    EXPECT_LE(per_queue[q], 2 * expected);
    EXPECT_GE(per_queue[q], expected / 2);
  }
}

TEST(RssSteering, SameFlowAlwaysSameQueue) {
  const u32 a = nic::rss_toeplitz(0x0a000001, 0x0a000002, 40000, 9000);
  const u32 b = nic::rss_toeplitz(0x0a000001, 0x0a000002, 40000, 9000);
  EXPECT_EQ(a, b);
  // And distinct tuples do hash differently (sanity; not a guarantee).
  const u32 c = nic::rss_toeplitz(0x0a000001, 0x0a000002, 40001, 9000);
  EXPECT_NE(a, c);
}

// --- Multi-core server behaviour ---------------------------------------

app::RunConfig scaling_cfg(app::Backend backend, int cores) {
  app::RunConfig cfg;
  cfg.backend = backend;
  cfg.server_cores = cores;
  cfg.connections = 100;
  cfg.pm_size = 1u << 30;
  cfg.warmup_ns = 5 * kNsPerMs;
  cfg.measure_ns = 20 * kNsPerMs;
  cfg.keyspace = 2048;
  return cfg;
}

TEST(ScalingServer, FourCoresAtLeastTripleOneCoreRawPersist) {
  const auto one = app::run_experiment(scaling_cfg(app::Backend::raw_persist, 1));
  const auto four = app::run_experiment(scaling_cfg(app::Backend::raw_persist, 4));
  EXPECT_EQ(one.server_errors, 0u);
  EXPECT_EQ(four.server_errors, 0u);
  EXPECT_GE(four.kreq_per_s, 3.0 * one.kreq_per_s)
      << "1 core: " << one.kreq_per_s << " 4 cores: " << four.kreq_per_s;
}

TEST(ScalingServer, ThroughputMonotoneAcrossCoresAllBackends) {
  for (const auto backend : {app::Backend::lsm, app::Backend::pktstore}) {
    SCOPED_TRACE(std::string(to_string(backend)));
    double prev = 0.0;
    for (const int cores : {1, 2, 4}) {
      const auto r = app::run_experiment(scaling_cfg(backend, cores));
      EXPECT_EQ(r.server_errors, 0u) << cores << " cores";
      EXPECT_GT(r.kreq_per_s, prev) << cores << " cores";
      prev = r.kreq_per_s;
    }
  }
}

TEST(ScalingServer, SameSeedSameConfigBitIdenticalSummaries) {
  // The whole multi-queue pipeline — RSS steering, per-core busy-poll
  // loops, sharded stores — must stay deterministic: two runs of the
  // same seed and config agree on every summary number exactly.
  const auto cfg = scaling_cfg(app::Backend::pktstore, 4);
  auto a = app::run_experiment(cfg);
  auto b = app::run_experiment(cfg);
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.server_errors, b.server_errors);
  EXPECT_EQ(a.kreq_per_s, b.kreq_per_s);        // exact, not near
  EXPECT_EQ(a.rtt.count(), b.rtt.count());
  EXPECT_EQ(a.rtt.mean(), b.rtt.mean());
  EXPECT_EQ(a.rtt.percentile(99), b.rtt.percentile(99));
  EXPECT_EQ(a.server_cpu_util, b.server_cpu_util);
}

TEST(ScalingServer, MixedReadWriteAcrossShardsServesCorrectValues) {
  // GETs on a sharded pktstore cross shards (read-merge): a key PUT via
  // one ingress core must be readable via a connection landing on
  // another. The client verifies every GET body; early 404s (GET before
  // first PUT of a key) are the only tolerated errors.
  auto cfg = scaling_cfg(app::Backend::pktstore, 4);
  cfg.get_ratio = 0.5;
  cfg.keyspace = 512;  // revisit keys often: most GETs hit
  const auto r = app::run_experiment(cfg);
  EXPECT_GT(r.ops, 0u);
  EXPECT_LT(static_cast<double>(r.server_errors) / static_cast<double>(r.ops),
            0.1);
}

// --- Sharded pktstore recovery -----------------------------------------

TEST(ShardedPktStore, PerShardSkipListsMergeAtRecovery) {
  // Two datapath shards write disjoint key sets into their own stores
  // ("store", "store.s1") over their own PM pools on one device. After a
  // crash, recovering both shards yields the union — the per-shard skip
  // lists merged at recovery, as the scale-out index design requires.
  sim::Env env;
  pm::PmDevice dev(env, 64u << 20);
  const u64 base = dev.data_base();
  const u64 span = ((dev.size() - base) / 2) / kCacheLine * kCacheLine;

  auto pool_a = pm::PmPool::create(dev, "pkts", base, span);
  auto pool_b = pm::PmPool::create(dev, "pkts.s1", base + span, span);
  net::PmArena arena_a(dev, pool_a);
  net::PmArena arena_b(dev, pool_b);
  net::PktBufPool pkts_a(env, arena_a);
  net::PktBufPool pkts_b(env, arena_b);

  auto store_a = core::PktStore::create(pkts_a, "store");
  auto store_b = core::PktStore::create(pkts_b, "store.s1");

  std::map<std::string, std::vector<u8>> model;
  Rng rng(7);
  for (int i = 0; i < 40; i++) {
    std::vector<u8> v(64 + static_cast<std::size_t>(i) * 13);
    for (auto& byte : v) byte = static_cast<u8>(rng.next());
    const std::string key = "k" + std::to_string(i);
    auto& shard = (i % 2 == 0) ? store_a : store_b;
    ASSERT_TRUE(shard.put_bytes(key, v).ok());
    model[key] = std::move(v);
  }

  dev.crash();

  auto rp_a = pm::PmPool::recover(dev, "pkts");
  auto rp_b = pm::PmPool::recover(dev, "pkts.s1");
  ASSERT_TRUE(rp_a.ok());
  ASSERT_TRUE(rp_b.ok());
  net::PmArena rarena_a(dev, rp_a.value());
  net::PmArena rarena_b(dev, rp_b.value());
  net::PktBufPool rpkts_a(env, rarena_a);
  net::PktBufPool rpkts_b(env, rarena_b);
  auto rec_a = core::PktStore::recover(rpkts_a, "store");
  auto rec_b = core::PktStore::recover(rpkts_b, "store.s1");
  ASSERT_TRUE(rec_a.ok());
  ASSERT_TRUE(rec_b.ok());
  EXPECT_TRUE(rec_a->validate().ok());
  EXPECT_TRUE(rec_b->validate().ok());

  // Merge the two recovered indexes (scan is ordered; keys disjoint).
  std::map<std::string, u64> merged;
  for (auto* rec : {&rec_a.value(), &rec_b.value()}) {
    rec->scan("", "", [&](std::string_view k, const core::PktStore::ValueMeta& m) {
      merged.emplace(std::string(k), m.len);
      return true;
    });
  }
  ASSERT_EQ(merged.size(), model.size());
  for (const auto& [k, v] : model) {
    ASSERT_TRUE(merged.contains(k)) << k;
    EXPECT_EQ(merged[k], v.size()) << k;
    auto* rec = (merged[k] != 0 && rec_a->get(k).ok()) ? &rec_a.value()
                                                       : &rec_b.value();
    EXPECT_EQ(rec->get(k).value(), v) << k;
  }
}

}  // namespace
